package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Parse decodes a scenario spec from JSON or from the YAML subset
// (see yaml.go), autodetecting the format: input whose first non-space
// byte is '{' is JSON. Unknown fields are rejected — a typoed axis name
// must fail loudly, not silently collapse an axis — and the decoded spec
// is validated.
func Parse(data []byte) (*Spec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("scenario: empty spec")
	}
	if trimmed[0] != '{' {
		v, err := parseYAML(data)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		// Round through JSON so one strict decoder enforces the schema for
		// both formats.
		data, err = json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	spec := &Spec{}
	if err := dec.Decode(spec); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// Load reads and parses a scenario file. The format is detected from the
// content (extension is irrelevant), so .json, .yaml and .yml all work.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	spec, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, filepath.Base(path))
	}
	return spec, nil
}

// Marshal renders the spec as canonical indented JSON (the round-trip
// inverse of Parse for JSON input; YAML input marshals to its JSON form).
func (s *Spec) Marshal() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return buf.Bytes(), nil
}

// String summarizes the spec ("table1: 13 workloads × 1 user × 2 schemes").
func (s *Spec) String() string {
	var b strings.Builder
	name := s.Name
	if name == "" {
		name = "scenario"
	}
	wl, _ := s.workloadNames()
	pop, _ := s.populationUsers()
	schemes := len(s.Schemes)
	if schemes == 0 {
		schemes = 1
	}
	fmt.Fprintf(&b, "%s: %d workloads × %d users", name, len(wl), len(pop))
	if n := len(s.AmbientsC); n > 0 {
		fmt.Fprintf(&b, " × %d ambients", n)
	}
	if n := len(s.LimitsC); n > 0 {
		fmt.Fprintf(&b, " × %d limits", n)
	}
	fmt.Fprintf(&b, " × %d schemes", schemes)
	return b.String()
}
