package scenario

// A minimal YAML-subset reader, so scenario files can be written in the
// sweep-friendly YAML style without pulling a YAML dependency into the
// module. The subset covers what the schema needs and nothing more:
//
//   - nested mappings by indentation (spaces only)
//   - block sequences ("- item": scalars or nested mappings)
//   - flow sequences of scalars ("[15, 25, 35]")
//   - scalars: bool, int, float, null, single/double-quoted and bare strings
//   - comments (#) and blank lines
//
// Anchors, aliases, multi-document streams, flow mappings, multi-line
// strings and tabs are out of scope and rejected (or treated as plain
// text where harmless). Parse routes the result through the same strict
// JSON decoder as native JSON input, so both formats share one schema.

import (
	"fmt"
	"strconv"
	"strings"
)

// yamlLine is one significant (non-blank, non-comment) line.
type yamlLine struct {
	num    int // 1-based source line
	indent int
	text   string // content with indentation stripped
}

// parseYAML decodes the YAML subset into the generic map/slice/scalar
// shapes encoding/json produces.
func parseYAML(data []byte) (any, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("yaml line %d: tabs are not allowed for indentation", i+1)
		}
		text := stripComment(raw)
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		lines = append(lines, yamlLine{
			num:    i + 1,
			indent: len(text) - len(strings.TrimLeft(text, " ")),
			text:   trimmed,
		})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	v, rest, err := parseBlock(lines, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, fmt.Errorf("yaml line %d: unexpected dedent", rest[0].num)
	}
	return v, nil
}

// stripComment removes a trailing comment, respecting quoted strings.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || s[i-1] == ' ') {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses one mapping or sequence at the given indent, returning
// the remaining lines (the first line at a shallower indent).
func parseBlock(lines []yamlLine, indent int) (any, []yamlLine, error) {
	if len(lines) == 0 || lines[0].indent < indent {
		return nil, lines, fmt.Errorf("yaml: empty block")
	}
	if strings.HasPrefix(lines[0].text, "- ") || lines[0].text == "-" {
		return parseSequence(lines, indent)
	}
	return parseMapping(lines, indent)
}

// parseMapping parses "key: value" lines at exactly indent.
func parseMapping(lines []yamlLine, indent int) (any, []yamlLine, error) {
	m := map[string]any{}
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, nil, fmt.Errorf("yaml line %d: unexpected indent", ln.num)
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, nil, fmt.Errorf("yaml line %d: sequence item inside mapping", ln.num)
		}
		key, rest, ok := splitKey(ln.text)
		if !ok {
			return nil, nil, fmt.Errorf("yaml line %d: expected \"key: value\"", ln.num)
		}
		if _, dup := m[key]; dup {
			return nil, nil, fmt.Errorf("yaml line %d: duplicate key %q", ln.num, key)
		}
		lines = lines[1:]
		if rest != "" {
			v, err := parseScalar(rest, ln.num)
			if err != nil {
				return nil, nil, err
			}
			m[key] = v
			continue
		}
		// Block value: child lines indented deeper (absent child = null).
		if len(lines) == 0 || lines[0].indent <= indent {
			m[key] = nil
			continue
		}
		v, remaining, err := parseBlock(lines, lines[0].indent)
		if err != nil {
			return nil, nil, err
		}
		m[key] = v
		lines = remaining
	}
	return m, lines, nil
}

// parseSequence parses "- item" lines at exactly indent.
func parseSequence(lines []yamlLine, indent int) (any, []yamlLine, error) {
	var seq []any
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, nil, fmt.Errorf("yaml line %d: unexpected indent", ln.num)
		}
		if !strings.HasPrefix(ln.text, "- ") && ln.text != "-" {
			break
		}
		item := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		lines = lines[1:]
		if item == "" {
			// Nested block item.
			if len(lines) == 0 || lines[0].indent <= indent {
				seq = append(seq, nil)
				continue
			}
			v, remaining, err := parseBlock(lines, lines[0].indent)
			if err != nil {
				return nil, nil, err
			}
			seq = append(seq, v)
			lines = remaining
			continue
		}
		if key, rest, ok := splitKey(item); ok && !looksScalarOnly(item) {
			// "- key: value" starts an inline mapping; its remaining keys
			// sit indented under the dash.
			m := map[string]any{}
			if rest != "" {
				v, err := parseScalar(rest, ln.num)
				if err != nil {
					return nil, nil, err
				}
				m[key] = v
			} else {
				m[key] = nil
			}
			if len(lines) > 0 && lines[0].indent > indent {
				v, remaining, err := parseMapping(lines, lines[0].indent)
				if err != nil {
					return nil, nil, err
				}
				for k2, v2 := range v.(map[string]any) {
					if _, dup := m[k2]; dup {
						return nil, nil, fmt.Errorf("yaml line %d: duplicate key %q", ln.num, k2)
					}
					m[k2] = v2
				}
				lines = remaining
			}
			seq = append(seq, m)
			continue
		}
		v, err := parseScalar(item, ln.num)
		if err != nil {
			return nil, nil, err
		}
		seq = append(seq, v)
	}
	return seq, lines, nil
}

// splitKey splits "key: rest" (the colon must be followed by a space or
// end the line) respecting quoted keys.
func splitKey(s string) (key, rest string, ok bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == ':' && (i+1 == len(s) || s[i+1] == ' ') {
			key = strings.TrimSpace(s[:i])
			key = unquote(key)
			if key == "" {
				return "", "", false
			}
			return key, strings.TrimSpace(s[i+1:]), true
		}
		if s[i] == '"' || s[i] == '\'' {
			// Skip the quoted region.
			q := s[i]
			j := i + 1
			for j < len(s) && s[j] != q {
				j++
			}
			i = j
		}
	}
	return "", "", false
}

// looksScalarOnly reports whether the "key: value" shaped text is actually
// a plain scalar (a quoted string or a flow sequence).
func looksScalarOnly(s string) bool {
	return len(s) > 0 && (s[0] == '"' || s[0] == '\'' || s[0] == '[')
}

// parseScalar decodes one scalar (or flow sequence) value.
func parseScalar(s string, line int) (any, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("yaml line %d: unterminated flow sequence", line)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}, nil
		}
		var seq []any
		for _, part := range strings.Split(inner, ",") {
			v, err := parseScalar(strings.TrimSpace(part), line)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
		}
		return seq, nil
	}
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') {
		if s[len(s)-1] != s[0] {
			return nil, fmt.Errorf("yaml line %d: unterminated string", line)
		}
		return s[1 : len(s)-1], nil
	}
	switch s {
	case "null", "~":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

// unquote strips one level of matched quotes.
func unquote(s string) string {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') && s[len(s)-1] == s[0] {
		return s[1 : len(s)-1]
	}
	return s
}
