package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/users"
	"repro/internal/workload"
)

// TestParseMarshalRoundTrip pins the canonical JSON form: the golden file
// is Marshal output, so Parse → Marshal must reproduce it byte for byte,
// and Marshal → Parse must reproduce the spec.
func TestParseMarshalRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "table1_reduced.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(data) {
		t.Fatalf("Marshal is not the golden file's canonical form:\n--- got ---\n%s\n--- want ---\n%s", out, data)
	}
	spec2, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, spec2) {
		t.Fatalf("Parse(Marshal(spec)) != spec:\n%+v\n%+v", spec2, spec)
	}
}

// TestParseYAMLSweep decodes the YAML golden file and checks the decoded
// spec field by field, plus JSON/YAML equivalence through Marshal.
func TestParseYAMLSweep(t *testing.T) {
	spec, err := Load(filepath.Join("testdata", "sweep.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	want := &Spec{
		Version:     1,
		Name:        "ambient-limit-sweep",
		Description: "population x ambients x limits under USTA",
		Workloads:   []string{"skype", "game"},
		Population:  []string{"all"},
		AmbientsC:   []float64{15, 25, 35},
		LimitsC:     []float64{35, 37, 39},
		Schemes:     []Scheme{{Name: "usta", Controller: "usta"}},
		Duration:    Duration{Sec: 300},
		Seeds:       Seeds{Policy: "derived", Base: 7, Workload: 42},
		TraceFree:   true,
	}
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("YAML spec decoded as\n%+v\nwant\n%+v", spec, want)
	}
	// The YAML form must round-trip through the canonical JSON form.
	js, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := Parse(js)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, spec2) {
		t.Fatal("YAML → JSON round trip changed the spec")
	}
}

// TestParseErrors is the invalid-spec error-message table: every rejected
// shape must fail with a message that names the problem.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		wantErr string
	}{
		{"empty", "", "empty spec"},
		{"bad version", `{"version": 2, "workloads": ["skype"]}`, "unsupported version 2"},
		{"no workloads", `{"version": 1}`, "no workloads"},
		{"unknown workload", `{"version": 1, "workloads": ["fortnite"]}`, `unknown workload "fortnite"`},
		{"unknown user", `{"version": 1, "workloads": ["skype"], "population": ["z"]}`, `unknown user "z"`},
		{"bad ambient", `{"version": 1, "workloads": ["skype"], "ambients_c": [99]}`, "outside the calibrated range"},
		{"bad device ambient", `{"version": 1, "workloads": ["skype"], "device": {"ambient_c": -80}}`, "outside the calibrated range"},
		{"bad controller", `{"version": 1, "workloads": ["skype"], "schemes": [{"controller": "thermal-daemon"}]}`, `unknown controller "thermal-daemon"`},
		{"bad governor", `{"version": 1, "workloads": ["skype"], "schemes": [{"governor": "warpspeed"}]}`, "warpspeed"},
		{"duplicate scheme names", `{"version": 1, "workloads": ["skype"], "schemes": [{"name": "fast"}, {"name": "fast", "governor": "performance"}]}`, `share the label "fast"`},
		{"duplicate default scheme labels", `{"version": 1, "workloads": ["skype"], "schemes": [{"controller": "usta", "limit_c": 37}, {"controller": "usta", "limit_c": 39}]}`, `share the label "usta"`},
		{"bad seed policy", `{"version": 1, "workloads": ["skype"], "seeds": {"policy": "random"}}`, `unknown seed policy "random"`},
		{"negative duration", `{"version": 1, "workloads": ["skype"], "duration": {"sec": -5}}`, "negative duration"},
		{"non-positive limit", `{"version": 1, "workloads": ["skype"], "limits_c": [0]}`, "non-positive limit"},
		{"bad filter", `{"version": 1, "workloads": ["skype"], "include": ["[x"]}`, `bad filter pattern "[x"`},
		{"unknown field", `{"version": 1, "workloads": ["skype"], "worklods": ["game"]}`, "unknown field"},
		{"yaml tab", "version: 1\n\tworkloads: [skype]", "tabs are not allowed"},
		{"yaml duplicate key", "version: 1\nversion: 1", "duplicate key"},
		{"yaml unterminated string", `name: "oops`, "unterminated string"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.input))
			if err == nil {
				t.Fatalf("Parse accepted invalid spec %q", tc.input)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestExpandTable1Shape checks the reduced Table 1 grid expansion: 26 jobs
// with the scheme axis innermost, indexed seeds, and scaled durations.
func TestExpandTable1Shape(t *testing.T) {
	spec, err := Load(filepath.Join("testdata", "table1_reduced.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !spec.NeedsPredictor() {
		t.Fatal("table1 spec must need a predictor")
	}
	if _, err := spec.Expand(Env{}); err == nil || !strings.Contains(err.Error(), "no predictor") {
		t.Fatalf("expansion without a predictor must fail, got %v", err)
	}
	grid, err := spec.Expand(Env{Predictor: &core.Predictor{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Jobs) != 26 || len(grid.Points) != 26 {
		t.Fatalf("grid = %d jobs / %d points, want 26", len(grid.Jobs), len(grid.Points))
	}
	baseSeed := device.DefaultConfig().Seed
	for i, p := range grid.Points {
		wantWl := workload.BenchmarkNames[i/2]
		wantScheme := "baseline"
		if i%2 == 1 {
			wantScheme = "usta"
		}
		if p.Workload != wantWl || p.Scheme != wantScheme {
			t.Fatalf("point %d = %s/%s, want %s/%s", i, p.Workload, p.Scheme, wantWl, wantScheme)
		}
		if p.Name != wantWl+"/"+wantScheme {
			t.Fatalf("point %d name = %q", i, p.Name)
		}
		if want := baseSeed + 300 + int64(i); p.Seed != want || grid.Jobs[i].Seed != want {
			t.Fatalf("point %d seed = %d, want %d", i, p.Seed, want)
		}
		if p.Cell != i/2 {
			t.Fatalf("point %d cell = %d, want %d", i, p.Cell, i/2)
		}
		if p.LimitC != users.DefaultLimitC {
			t.Fatalf("point %d limit = %g, want %g", i, p.LimitC, users.DefaultLimitC)
		}
		full := workload.ByName(wantWl, 342).Duration()
		wantDur := full * 0.5
		if wantDur < 120 {
			wantDur = 120
		}
		if grid.Jobs[i].DurSec != wantDur {
			t.Fatalf("job %d dur = %g, want %g", i, grid.Jobs[i].DurSec, wantDur)
		}
		if (grid.Jobs[i].Controller != nil) != (wantScheme == "usta") {
			t.Fatalf("job %d controller presence wrong for %s", i, wantScheme)
		}
	}
	// The grid's workloads must be the exact Benchmarks(342) instances'
	// construction: same name and duration slot by slot.
	benches := workload.Benchmarks(342)
	for i, p := range grid.Points {
		if got, want := grid.Jobs[i].Workload.Duration(), benches[i/2].Duration(); got != want {
			t.Fatalf("point %s workload duration %g != Benchmarks slot %g", p.Name, got, want)
		}
	}
}

// TestExpandAxesAndLimits covers the population × ambients × limits axes:
// names carry the multi-valued axes, user limits resolve, and Limits()
// lines up with jobs.
func TestExpandAxesAndLimits(t *testing.T) {
	spec := &Spec{
		Version:    1,
		Workloads:  []string{"skype"},
		Population: []string{"b", "default"},
		AmbientsC:  []float64{15, 35},
		Schemes:    []Scheme{{Name: "usta", Controller: "usta"}},
		Duration:   Duration{Sec: 60},
	}
	grid, err := spec.Expand(Env{Predictor: &core.Predictor{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Jobs) != 4 {
		t.Fatalf("jobs = %d want 4 (1 workload × 2 ambients × 2 users)", len(grid.Jobs))
	}
	b, _ := users.ByID("b")
	wantLimits := []float64{b.SkinLimitC, users.DefaultLimitC, b.SkinLimitC, users.DefaultLimitC}
	if got := grid.Limits(); !reflect.DeepEqual(got, wantLimits) {
		t.Fatalf("Limits() = %v want %v", got, wantLimits)
	}
	if name := grid.Points[0].Name; name != "skype/usta/u=b/amb=15" {
		t.Fatalf("point 0 name = %q", name)
	}
	for i, p := range grid.Points {
		if got := grid.Jobs[i].Device.Thermal.Ambient; got != p.AmbientC {
			t.Fatalf("point %d job ambient %g != point ambient %g", i, got, p.AmbientC)
		}
	}

	// An explicit limit axis overrides user limits.
	spec.LimitsC = []float64{36, 40}
	grid, err = spec.Expand(Env{Predictor: &core.Predictor{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Jobs) != 8 {
		t.Fatalf("jobs = %d want 8 with the limit axis", len(grid.Jobs))
	}
	for _, p := range grid.Points {
		if p.LimitC != 36 && p.LimitC != 40 {
			t.Fatalf("point %s limit = %g, want axis value", p.Name, p.LimitC)
		}
		if !strings.Contains(p.Name, "lim=") {
			t.Fatalf("point name %q should carry the limit axis", p.Name)
		}
	}
}

// TestExpandFiltersKeepSeeds checks that include/exclude drop cells
// without renumbering the survivors' grid positions or seeds.
func TestExpandFiltersKeepSeeds(t *testing.T) {
	base := &Spec{
		Version:   1,
		Workloads: []string{"skype", "game"},
		Schemes:   []Scheme{{Name: "baseline"}, {Name: "usta", Controller: "usta", LimitC: 37}},
		Seeds:     Seeds{Policy: "indexed", Base: 100},
		Duration:  Duration{Sec: 60},
	}
	full, err := base.Expand(Env{Predictor: &core.Predictor{}})
	if err != nil {
		t.Fatal(err)
	}
	filtered := *base
	filtered.Exclude = []string{"usta"}
	grid, err := filtered.Expand(Env{Predictor: &core.Predictor{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Jobs) != 2 {
		t.Fatalf("filtered jobs = %d want 2", len(grid.Jobs))
	}
	for i, p := range grid.Points {
		if p.Scheme != "baseline" {
			t.Fatalf("exclude left a %s job", p.Scheme)
		}
		want := full.Points[p.GridIndex]
		if p.Seed != want.Seed || p.Name != want.Name {
			t.Fatalf("filtered point %d (grid %d) seed/name changed: %d/%q vs %d/%q",
				i, p.GridIndex, p.Seed, p.Name, want.Seed, want.Name)
		}
	}

	include := *base
	include.Include = []string{"game/*"}
	grid, err = include.Expand(Env{Predictor: &core.Predictor{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Jobs) != 2 {
		t.Fatalf("include kept %d jobs, want 2", len(grid.Jobs))
	}
	for _, p := range grid.Points {
		if p.Workload != "game" {
			t.Fatalf("include kept %q", p.Name)
		}
	}

	all := *base
	all.Include = []string{"vellamo"}
	if _, err := all.Expand(Env{Predictor: &core.Predictor{}}); err == nil || !strings.Contains(err.Error(), "excluded every job") {
		t.Fatalf("all-excluding filter should fail, got %v", err)
	}
}

// TestExpandDerivedSeeds checks the derived policy: every job's seed is
// pinned to the fleet's splitmix derivation of (base, grid position) —
// not left to the fleet at run time — so filters cannot renumber it.
func TestExpandDerivedSeeds(t *testing.T) {
	spec := &Spec{
		Version:   1,
		Workloads: []string{"skype", "game"},
		Schemes:   []Scheme{{Name: "baseline"}, {Name: "usta", Controller: "usta", LimitC: 37}},
		Seeds:     Seeds{Base: 9},
		Duration:  Duration{Sec: 60},
	}
	grid, err := spec.Expand(Env{Predictor: &core.Predictor{}})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range grid.Points {
		want := fleet.DeriveSeed(9, i)
		if grid.Jobs[i].Seed != want || p.Seed != want {
			t.Fatalf("job %d seed = %d/%d, want DeriveSeed(9, %d) = %d", i, grid.Jobs[i].Seed, p.Seed, i, want)
		}
	}
	// Filtering must keep the survivors' derived seeds: the same grid with
	// the usta half excluded reproduces the full grid's baseline seeds.
	filtered := *spec
	filtered.Exclude = []string{"usta"}
	fg, err := filtered.Expand(Env{Predictor: &core.Predictor{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fg.Jobs) != 2 {
		t.Fatalf("filtered jobs = %d want 2", len(fg.Jobs))
	}
	for i, p := range fg.Points {
		if want := grid.Points[p.GridIndex].Seed; fg.Jobs[i].Seed != want {
			t.Fatalf("filtered job %d seed = %d, full grid has %d", i, fg.Jobs[i].Seed, want)
		}
	}
}

// TestSpecString smoke-tests the summary line.
func TestSpecString(t *testing.T) {
	spec := &Spec{Version: 1, Name: "x", Workloads: []string{"all"}, Population: []string{"all"}, AmbientsC: []float64{15, 25}}
	s := spec.String()
	for _, want := range []string{"x:", "13 workloads", "10 users", "2 ambients", "1 schemes"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

// TestGridSubset pins the crash-recovery resume contract: a subset grid
// keeps each surviving cell's name, seed and GridIndex (so physics are
// byte-identical to the full run) while renumbering Index and the
// JobSpec's dispatch index to subset positions — on a copy, never the
// shared spec.
func TestGridSubset(t *testing.T) {
	spec := &Spec{
		Version:   1,
		Workloads: []string{"skype", "game"},
		Schemes:   []Scheme{{Name: "baseline"}, {Name: "usta", Controller: "usta", LimitC: 37}},
		Seeds:     Seeds{Policy: "indexed", Base: 100},
		Duration:  Duration{Sec: 60},
	}
	grid, err := spec.Expand(Env{Predictor: &core.Predictor{}})
	if err != nil {
		t.Fatal(err)
	}
	origSpecIdx := make([]int, len(grid.Jobs))
	for i, j := range grid.Jobs {
		origSpecIdx[i] = j.Spec.Index
	}
	sub, err := grid.Subset([]int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Jobs) != 2 || len(sub.Points) != 2 {
		t.Fatalf("subset size = %d/%d, want 2", len(sub.Jobs), len(sub.Points))
	}
	for i, src := range []int{3, 1} {
		p, orig := sub.Points[i], grid.Points[src]
		if p.Name != orig.Name || p.Seed != orig.Seed || p.GridIndex != orig.GridIndex {
			t.Fatalf("subset point %d lost identity: %+v vs %+v", i, p, orig)
		}
		if p.Index != i {
			t.Fatalf("subset point %d Index = %d", i, p.Index)
		}
		if sub.Jobs[i].Seed != grid.Jobs[src].Seed {
			t.Fatalf("subset job %d seed changed", i)
		}
		if sub.Jobs[i].Spec == nil || sub.Jobs[i].Spec.Index != i {
			t.Fatalf("subset job %d spec index = %v", i, sub.Jobs[i].Spec)
		}
		if sub.Jobs[i].Spec == grid.Jobs[src].Spec {
			t.Fatalf("subset job %d shares its JobSpec with the full grid", i)
		}
		if grid.Jobs[src].Spec.Index != origSpecIdx[src] {
			t.Fatalf("full grid job %d spec index mutated to %d", src, grid.Jobs[src].Spec.Index)
		}
	}
	if _, err := grid.Subset([]int{0, 4}); err == nil {
		t.Fatal("out-of-range subset index accepted")
	}
	if _, err := grid.Subset([]int{1, 1}); err == nil {
		t.Fatal("duplicate subset index accepted")
	}
}
