// Package scenario is the declarative front door of the fleet engine: a
// versioned JSON/YAML schema describing a sweep grid — population ×
// workloads × ambients × scheme (governor/controller/limit) — plus seeds,
// durations and trace policy, that expands deterministically into
// []fleet.Job. The paper's whole evaluation is such a grid (10 users × 13
// workloads × 2 DVFS schemes across ambient conditions); a scenario file
// makes that grid a first-class input instead of hand-assembled Go.
//
// Expansion is order-stable and position-seeded: the grid is walked
// workload-major with the scheme axis innermost, every cell gets its seed
// from its unfiltered grid position, and include/exclude filters only drop
// cells — they never renumber them. The same spec therefore produces
// byte-identical per-job physics whether it is run whole, filtered, or at
// any fleet worker count.
package scenario

import (
	"fmt"
	"path"
	"strings"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/governor"
	"repro/internal/users"
	"repro/internal/workload"
)

// Version is the schema version this package reads and writes.
const Version = 1

// ambient bounds mirror the session options: the RC network is calibrated
// for habitable conditions.
const (
	minAmbientC = -40
	maxAmbientC = 60
)

// Spec is one declarative sweep: the cartesian grid of its axes, filtered
// by Include/Exclude. Axes left empty collapse to a single default value
// (the default user, the device's own ambient, per-user limits, the
// baseline scheme), so a minimal spec is just a version and a workload
// list.
type Spec struct {
	// Version must equal 1.
	Version int `json:"version"`
	// Name labels the sweep in reports.
	Name string `json:"name,omitempty"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`

	// Workloads names the workload axis: entries from the thirteen paper
	// benchmarks (workload.BenchmarkNames), or the single entry "all" for
	// every one of them. Required.
	Workloads []string `json:"workloads"`
	// Population names the user axis: participant IDs ("a" through "j"),
	// "default" for the 37 °C default user, or the single entry "all" for
	// the whole study population. Empty means ["default"].
	Population []string `json:"population,omitempty"`
	// AmbientsC is the ambient-temperature axis in °C. Empty keeps the
	// device configuration's own ambient.
	AmbientsC []float64 `json:"ambients_c,omitempty"`
	// LimitsC is an explicit skin-limit axis in °C, overriding each user's
	// personal limit (heat-map sweeps). Empty uses per-user limits (the
	// default user gets users.DefaultLimitC). A scheme's own LimitC
	// overrides both.
	LimitsC []float64 `json:"limits_c,omitempty"`
	// Schemes is the governor/controller/limit axis. Empty means a single
	// stock baseline.
	Schemes []Scheme `json:"schemes,omitempty"`

	// Duration controls per-job run length.
	Duration Duration `json:"duration"`
	// Seeds controls workload construction and per-job device seeding.
	Seeds Seeds `json:"seeds"`
	// Device optionally overrides parts of the base device configuration.
	Device Device `json:"device"`
	// Predictor parameterizes self-training when a scheme needs one and the
	// caller does not supply it.
	Predictor PredictorSpec `json:"predictor"`
	// TraceFree runs every job without retaining Trace/Records — the O(1)
	// memory mode for large sweeps; pair with a streaming sink.
	TraceFree bool `json:"trace_free,omitempty"`

	// Include, when non-empty, keeps only jobs whose name (or any
	// '/'-separated name segment) matches one of these path.Match patterns.
	Include []string `json:"include,omitempty"`
	// Exclude drops jobs matching any of these patterns; it is applied
	// after Include. Filters never change surviving jobs' seeds.
	Exclude []string `json:"exclude,omitempty"`
}

// Scheme is one point on the governor/controller axis.
type Scheme struct {
	// Name labels the scheme in job names and analytics ("baseline",
	// "usta", ...). Empty defaults to the controller name, or "baseline".
	Name string `json:"name,omitempty"`
	// Governor is a cpufreq governor sysfs name ("ondemand", "interactive",
	// "conservative", "schedutil", "performance", "powersave"); empty keeps
	// the stock default (ondemand).
	Governor string `json:"governor,omitempty"`
	// Controller selects the thermal controller: "" or "none" for a stock
	// phone, "usta" for the paper's controller.
	Controller string `json:"controller,omitempty"`
	// LimitC pins this scheme's skin limit in °C, overriding both the
	// LimitsC axis and per-user limits (Table 1 runs USTA at the 37 °C
	// default for every workload).
	LimitC float64 `json:"limit_c,omitempty"`
}

// Label returns the scheme's effective name: Name when set, otherwise the
// controller name, with stock ("" / "none") schemes labelled "baseline".
// Expansion, analytics joins and the CLI all resolve labels through this
// one rule.
func (s Scheme) Label() string {
	if s.Name != "" {
		return s.Name
	}
	if s.Controller == "" || s.Controller == "none" {
		return "baseline"
	}
	return s.Controller
}

// Duration controls how long each job runs.
type Duration struct {
	// Sec, when positive, runs every job for exactly Sec seconds,
	// bypassing Scale and MinSec.
	Sec float64 `json:"sec,omitempty"`
	// Scale multiplies each workload's full duration, mirroring the
	// experiment pipeline's scaling: values outside (0, 1] are treated as
	// 1, and the result is floored at MinSec.
	Scale float64 `json:"scale,omitempty"`
	// MinSec floors scaled durations (default 120 s — long enough for
	// thermal dynamics to show up).
	MinSec float64 `json:"min_sec,omitempty"`
}

// Seeds controls the sweep's deterministic seeding.
type Seeds struct {
	// Policy selects per-job device seeding: "derived" (default) pins each
	// job's seed to the fleet's splitmix derivation of (Base, grid
	// position); "indexed" pins device seed + Base + grid position,
	// matching the pre-scenario experiment runners. Both derive from the
	// unfiltered grid position, so include/exclude filters never change a
	// surviving job's seed.
	Policy string `json:"policy,omitempty"`
	// Base seeds the policy above.
	Base int64 `json:"base,omitempty"`
	// Workload seeds workload construction (phase jitter); the i-th paper
	// benchmark is built with Workload+i+1, exactly like
	// workload.Benchmarks.
	Workload uint64 `json:"workload,omitempty"`
}

// Device optionally overrides the base device configuration.
type Device struct {
	// Seed overrides the device seed (0 keeps the base configuration's).
	Seed int64 `json:"seed,omitempty"`
	// AmbientC overrides the base ambient in °C (the AmbientsC axis, when
	// set, overrides this per job).
	AmbientC *float64 `json:"ambient_c,omitempty"`
}

// PredictorSpec parameterizes predictor self-training for schemes that
// need one (usta) when the runner is not handed a trained predictor: the
// corpus is the thirteen benchmarks executed on the stock phone, exactly
// like the experiment pipeline's.
type PredictorSpec struct {
	// CorpusSeed seeds corpus workload construction (default 42, the
	// experiment pipeline's default).
	CorpusSeed uint64 `json:"corpus_seed,omitempty"`
	// CorpusPerRunSec truncates each corpus-collection run (0 = full
	// length). Reduced sweeps use ~1200 s — long enough to cover the hot
	// regime.
	CorpusPerRunSec float64 `json:"corpus_per_run_sec,omitempty"`
}

// Point is one expanded grid cell: the axis coordinates behind a job,
// carried alongside Jobs so analytics can pivot results back onto the grid.
type Point struct {
	// Index is the job's position in Grid.Jobs (== JobResult.Index when the
	// jobs are run as one batch).
	Index int
	// GridIndex is the job's position in the unfiltered grid; seeds derive
	// from it, so filtered runs reproduce the full sweep's per-job physics.
	GridIndex int
	// Cell identifies the grid cell modulo the scheme axis (the scheme axis
	// is innermost, so Cell == GridIndex / len(schemes)); scheme-vs-scheme
	// analytics join runs of the same cell on it.
	Cell int
	// Name is the job's name: '/'-joined axis values, single-valued axes
	// omitted (e.g. "skype/usta", "skype/usta/u=c/amb=35").
	Name string
	// Workload is the workload name.
	Workload string
	// Scheme is the scheme label.
	Scheme string
	// UserID is the participant label, or "default".
	UserID string
	// User is the participant (zero value for the default user).
	User users.User
	// AmbientC is the job's ambient temperature in °C.
	AmbientC float64
	// LimitC is the effective skin limit for this cell (what a usta scheme
	// enforces and what violation analytics measure against).
	LimitC float64
	// Seed is the job's pinned device seed, computed from the unfiltered
	// grid position under either seed policy.
	Seed int64
}

// Grid is an expanded scenario: jobs ready for fleet.Run plus the axis
// coordinates of each.
type Grid struct {
	Spec   *Spec
	Jobs   []fleet.Job
	Points []Point
}

// Limits returns the per-job effective skin limits, indexed like Jobs —
// the shape analytics' streaming violation sink wants.
func (g *Grid) Limits() []float64 {
	out := make([]float64, len(g.Points))
	for i, p := range g.Points {
		out[i] = p.LimitC
	}
	return out
}

// Subset returns the grid restricted to the cells at the given Jobs
// indices, in the given order. Each surviving cell keeps its GridIndex,
// Cell, Name and — crucially — its pinned Seed, so its physics are
// byte-identical to a full-grid run; only Index (and the JobSpec's Index)
// is renumbered to the subset position. This is what crash-recovery
// resume runs: the unfinished cells of a journaled sweep, as a grid of
// their own. Job specs are copied, not shared, because runners stamp
// dispatch indices into them.
func (g *Grid) Subset(idxs []int) (*Grid, error) {
	sub := &Grid{Spec: g.Spec,
		Jobs:   make([]fleet.Job, 0, len(idxs)),
		Points: make([]Point, 0, len(idxs))}
	seen := make(map[int]bool, len(idxs))
	for _, idx := range idxs {
		if idx < 0 || idx >= len(g.Jobs) {
			return nil, fmt.Errorf("scenario: subset index %d outside the %d-job grid", idx, len(g.Jobs))
		}
		if seen[idx] {
			return nil, fmt.Errorf("scenario: subset index %d listed twice", idx)
		}
		seen[idx] = true
		job := g.Jobs[idx]
		if job.Spec != nil {
			specCopy := *job.Spec
			specCopy.Index = len(sub.Jobs)
			job.Spec = &specCopy
		}
		pt := g.Points[idx]
		pt.Index = len(sub.Points)
		sub.Jobs = append(sub.Jobs, job)
		sub.Points = append(sub.Points, pt)
	}
	return sub, nil
}

// Env supplies what a spec cannot carry in JSON: the base device
// configuration and a trained predictor for usta schemes.
type Env struct {
	// Device is the base handset configuration (nil: device.DefaultConfig).
	Device *device.Config
	// Predictor backs usta controllers. Required iff NeedsPredictor().
	Predictor *core.Predictor
}

// NeedsPredictor reports whether any scheme requires a trained predictor.
func (s *Spec) NeedsPredictor() bool {
	for _, sc := range s.Schemes {
		if sc.Controller == "usta" {
			return true
		}
	}
	return false
}

// Validate checks the spec without expanding it. Expand validates too;
// Validate exists so parsers can reject bad files before a predictor or
// device configuration is available.
func (s *Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("scenario: unsupported version %d (want %d)", s.Version, Version)
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("scenario: no workloads (name one of %s, or \"all\")", strings.Join(workload.BenchmarkNames, ", "))
	}
	if _, err := s.workloadNames(); err != nil {
		return err
	}
	if _, err := s.populationUsers(); err != nil {
		return err
	}
	for _, a := range s.AmbientsC {
		if a < minAmbientC || a > maxAmbientC {
			return fmt.Errorf("scenario: ambient %g °C outside the calibrated range [%g, %g]", a, float64(minAmbientC), float64(maxAmbientC))
		}
	}
	if s.Device.AmbientC != nil {
		if a := *s.Device.AmbientC; a < minAmbientC || a > maxAmbientC {
			return fmt.Errorf("scenario: device ambient %g °C outside the calibrated range [%g, %g]", a, float64(minAmbientC), float64(maxAmbientC))
		}
	}
	for _, l := range s.LimitsC {
		if l <= 0 {
			return fmt.Errorf("scenario: non-positive limit %g °C", l)
		}
	}
	labels := map[string]int{}
	for i, sc := range s.Schemes {
		switch sc.Controller {
		case "", "none", "usta":
		default:
			return fmt.Errorf("scenario: scheme %d: unknown controller %q (want \"usta\" or \"none\")", i, sc.Controller)
		}
		if sc.Governor != "" {
			if _, err := governor.ByName(sc.Governor, []float64{384, 1512}); err != nil {
				return fmt.Errorf("scenario: scheme %d: %w", i, err)
			}
		}
		if sc.LimitC < 0 {
			return fmt.Errorf("scenario: scheme %d: negative limit %g °C", i, sc.LimitC)
		}
		// Duplicate labels would collapse distinct schemes into
		// indistinguishable job names that filters cannot address and
		// scheme-vs-scheme analytics reject much later with a confusing
		// error; fail at validation instead.
		label := sc.Label()
		if prev, dup := labels[label]; dup {
			return fmt.Errorf("scenario: schemes %d and %d share the label %q (set distinct names)", prev, i, label)
		}
		labels[label] = i
	}
	switch s.Seeds.Policy {
	case "", "derived", "indexed":
	default:
		return fmt.Errorf("scenario: unknown seed policy %q (want \"derived\" or \"indexed\")", s.Seeds.Policy)
	}
	if d := s.Duration; d.Sec < 0 || d.Scale < 0 || d.MinSec < 0 {
		return fmt.Errorf("scenario: negative duration field (sec=%g scale=%g min_sec=%g)", d.Sec, d.Scale, d.MinSec)
	}
	for _, pats := range [][]string{s.Include, s.Exclude} {
		for _, p := range pats {
			if _, err := path.Match(p, "probe"); err != nil {
				return fmt.Errorf("scenario: bad filter pattern %q: %w", p, err)
			}
		}
	}
	return nil
}

// workloadNames resolves the workload axis to concrete benchmark names.
func (s *Spec) workloadNames() ([]string, error) {
	if len(s.Workloads) == 1 && s.Workloads[0] == "all" {
		return append([]string(nil), workload.BenchmarkNames...), nil
	}
	out := make([]string, 0, len(s.Workloads))
	for _, name := range s.Workloads {
		if workload.ByName(name, 0) == nil {
			return nil, fmt.Errorf("scenario: unknown workload %q (want one of %s, or \"all\")", name, strings.Join(workload.BenchmarkNames, ", "))
		}
		out = append(out, name)
	}
	return out, nil
}

// popEntry is one resolved population entry.
type popEntry struct {
	id   string
	user users.User // zero for "default"
}

// populationUsers resolves the population axis.
func (s *Spec) populationUsers() ([]popEntry, error) {
	pop := s.Population
	if len(pop) == 0 {
		pop = []string{"default"}
	}
	if len(pop) == 1 && pop[0] == "all" {
		all := users.StudyPopulation()
		out := make([]popEntry, len(all))
		for i, u := range all {
			out[i] = popEntry{id: u.ID, user: u}
		}
		return out, nil
	}
	out := make([]popEntry, 0, len(pop))
	for _, id := range pop {
		if id == "default" {
			out = append(out, popEntry{id: "default"})
			continue
		}
		u, ok := users.ByID(id)
		if !ok {
			return nil, fmt.Errorf("scenario: unknown user %q (want \"a\"–\"j\", \"default\", or \"all\")", id)
		}
		out = append(out, popEntry{id: id, user: u})
	}
	return out, nil
}

// jobDur computes one job's duration from the workload's full length,
// mirroring the experiment pipeline's scaling (scale clamped to (0,1],
// floored at MinSec, default floor 120 s). An explicit Sec wins outright.
func (s *Spec) jobDur(full float64) float64 {
	if s.Duration.Sec > 0 {
		return s.Duration.Sec
	}
	sc := s.Duration.Scale
	if sc <= 0 || sc > 1 {
		sc = 1
	}
	d := full * sc
	min := s.Duration.MinSec
	if min <= 0 {
		min = 120
	}
	if d < min {
		d = min
	}
	return d
}

// matches reports whether the job name survives the Include/Exclude
// filters: a pattern matches the whole name or any '/'-separated segment.
func matchesFilters(name string, include, exclude []string) bool {
	match := func(pats []string) bool {
		segs := strings.Split(name, "/")
		for _, p := range pats {
			if ok, _ := path.Match(p, name); ok {
				return true
			}
			for _, seg := range segs {
				if ok, _ := path.Match(p, seg); ok {
					return true
				}
			}
		}
		return false
	}
	if len(include) > 0 && !match(include) {
		return false
	}
	return !match(exclude)
}

// Expand resolves the spec against env into a runnable Grid. The walk
// order is workloads → ambients → users → limits → schemes (scheme axis
// innermost), and every cell's seed comes from its unfiltered grid
// position, so filters and worker counts never change a surviving job's
// physics.
func (s *Spec) Expand(env Env) (*Grid, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.NeedsPredictor() && env.Predictor == nil {
		return nil, fmt.Errorf("scenario: spec %q uses a usta scheme but no predictor was supplied", s.Name)
	}

	baseCfg := device.DefaultConfig()
	if env.Device != nil {
		baseCfg = *env.Device
	}
	if s.Device.Seed != 0 {
		baseCfg.Seed = s.Device.Seed
	}
	if s.Device.AmbientC != nil {
		baseCfg.Thermal.Ambient = *s.Device.AmbientC
	}

	wlNames, err := s.workloadNames()
	if err != nil {
		return nil, err
	}
	// Build each axis workload once per benchmark slot, the same
	// construction as workload.Benchmarks(Seeds.Workload).
	wls := make([]workload.Workload, len(wlNames))
	for i, name := range wlNames {
		wls[i] = workload.ByName(name, s.Seeds.Workload)
	}
	pop, err := s.populationUsers()
	if err != nil {
		return nil, err
	}
	ambients := s.AmbientsC
	ambientAxis := len(ambients) > 0
	if !ambientAxis {
		ambients = []float64{baseCfg.Thermal.Ambient}
	}
	limits := s.LimitsC
	limitAxis := len(limits) > 0
	if !limitAxis {
		limits = []float64{0} // placeholder: per-user limit
	}
	schemes := s.Schemes
	if len(schemes) == 0 {
		schemes = []Scheme{{Name: "baseline"}}
	}
	schemeNames := make([]string, len(schemes))
	for i, sc := range schemes {
		schemeNames[i] = sc.Label()
	}
	// Governor factories are resolved once per scheme against the base
	// OPP table; each job still gets its own instance (governors are
	// stateful).
	freqs := make([]float64, len(baseCfg.SoC.OPPs))
	for i, o := range baseCfg.SoC.OPPs {
		freqs[i] = o.FreqMHz
	}
	govFactories := make([]func() governor.Governor, len(schemes))
	for i, sc := range schemes {
		if sc.Governor == "" {
			continue
		}
		factory, err := fleet.GovernorFactory(sc.Governor, freqs)
		if err != nil {
			return nil, fmt.Errorf("scenario: scheme %q: %w", schemeNames[i], err)
		}
		govFactories[i] = factory
	}

	g := &Grid{Spec: s}
	gridIndex := 0
	for wi, wl := range wls {
		dur := s.jobDur(wl.Duration())
		for _, amb := range ambients {
			cfg := baseCfg
			cfg.Thermal.Ambient = amb
			cfgCopy := cfg // one shared copy per (workload, ambient) row
			for _, pe := range pop {
				for _, lim := range limits {
					for si, sc := range schemes {
						idx := gridIndex
						gridIndex++

						effLimit := lim
						if !limitAxis {
							if pe.id == "default" {
								effLimit = users.DefaultLimitC
							} else {
								effLimit = pe.user.SkinLimitC
							}
						}
						if sc.LimitC > 0 {
							effLimit = sc.LimitC
						}

						segs := []string{wlNames[wi], schemeNames[si]}
						if len(pop) > 1 {
							segs = append(segs, "u="+pe.id)
						}
						if len(ambients) > 1 {
							segs = append(segs, fmt.Sprintf("amb=%g", amb))
						}
						if limitAxis && len(limits) > 1 {
							// Name by the axis coordinate, not the effective
							// limit: a scheme-level LimitC override would
							// otherwise collapse distinct axis cells into
							// duplicate names that filters cannot address.
							segs = append(segs, fmt.Sprintf("lim=%g", lim))
						}
						name := strings.Join(segs, "/")
						if !matchesFilters(name, s.Include, s.Exclude) {
							continue
						}

						job := fleet.Job{
							Name:      name,
							User:      pe.user,
							Workload:  wls[wi],
							Device:    &cfgCopy,
							DurSec:    dur,
							TraceFree: s.TraceFree,
							// Spec is the job's serializable twin: the same
							// workload/governor/controller resolved by name
							// instead of closure, so shard workers rebuild
							// identical physics in another process.
							Spec: &fleet.JobSpec{
								Name:       name,
								User:       pe.user,
								Workload:   fleet.WorkloadRef{Name: wlNames[wi], Seed: s.Seeds.Workload},
								Device:     &cfgCopy,
								Governor:   sc.Governor,
								Controller: sc.Controller,
								LimitC:     effLimit,
								DurSec:     dur,
								TraceFree:  s.TraceFree,
							},
						}
						// Seeds pin to the unfiltered grid position under
						// both policies, so filters and worker counts never
						// change a surviving job's physics.
						var seed int64
						if s.Seeds.Policy == "indexed" {
							seed = baseCfg.Seed + s.Seeds.Base + int64(idx)
							if seed == 0 {
								// Zero reads as "unset" downstream (the
								// fleet would silently substitute another
								// seed); nudge it like fleet.DeriveSeed does.
								seed = 1
							}
						} else {
							seed = fleet.DeriveSeed(s.Seeds.Base, idx)
						}
						job.Seed = seed
						if govFactories[si] != nil {
							job.Governor = govFactories[si]
						}
						if sc.Controller == "usta" {
							pred, limit := env.Predictor, effLimit
							job.Controller = func(users.User) device.Controller {
								return core.NewUSTA(pred, limit)
							}
						}
						g.Points = append(g.Points, Point{
							Index:     len(g.Jobs),
							GridIndex: idx,
							Cell:      idx / len(schemes),
							Name:      name,
							Workload:  wlNames[wi],
							Scheme:    schemeNames[si],
							UserID:    pe.id,
							User:      pe.user,
							AmbientC:  amb,
							LimitC:    effLimit,
							Seed:      seed,
						})
						g.Jobs = append(g.Jobs, job)
					}
				}
			}
		}
	}
	if len(g.Jobs) == 0 {
		return nil, fmt.Errorf("scenario: filters excluded every job of %q", s.Name)
	}
	return g, nil
}
