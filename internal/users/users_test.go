package users

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPopulationMatchesPublishedEnvelope(t *testing.T) {
	pop := StudyPopulation()
	if len(pop) != 10 {
		t.Fatalf("population size = %d want 10", len(pop))
	}
	lo, hi, sum := math.Inf(1), math.Inf(-1), 0.0
	for _, u := range pop {
		lo = math.Min(lo, u.SkinLimitC)
		hi = math.Max(hi, u.SkinLimitC)
		sum += u.SkinLimitC
	}
	if lo != 34.0 {
		t.Fatalf("min skin limit = %v want 34.0 (paper Figure 1)", lo)
	}
	if hi != 42.8 {
		t.Fatalf("max skin limit = %v want 42.8 (paper Figure 1)", hi)
	}
	if math.Abs(sum/10-DefaultLimitC) > 1e-9 {
		t.Fatalf("mean skin limit = %v want exactly %v (the default user)", sum/10, DefaultLimitC)
	}
}

func TestHighThresholdUsersMatchNarrative(t *testing.T) {
	// Paper §IV-B: a, d, e, i saw no USTA action (high thresholds); g had
	// the very highest threshold. So {a,d,e,g,i} must be the top five.
	pop := StudyPopulation()
	type kv struct {
		id string
		v  float64
	}
	all := make([]kv, 0, 10)
	for _, u := range pop {
		all = append(all, kv{u.ID, u.SkinLimitC})
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].v > all[i].v {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	if all[0].id != "g" {
		t.Fatalf("highest threshold belongs to %q want g", all[0].id)
	}
	top5 := map[string]bool{}
	for _, e := range all[:5] {
		top5[e.id] = true
	}
	for _, id := range []string{"a", "d", "e", "g", "i"} {
		if !top5[id] {
			t.Fatalf("user %s missing from the top-5 thresholds: %+v", id, all[:5])
		}
	}
}

func TestScreenLimitsBelowSkinLimits(t *testing.T) {
	for _, u := range StudyPopulation() {
		if u.ScreenLimitC >= u.SkinLimitC {
			t.Fatalf("user %s screen limit %v not below skin limit %v", u.ID, u.ScreenLimitC, u.SkinLimitC)
		}
	}
}

func TestByID(t *testing.T) {
	u, ok := ByID("g")
	if !ok || u.SkinLimitC != 42.8 {
		t.Fatalf("ByID(g) = %+v, %v", u, ok)
	}
	if _, ok := ByID("z"); ok {
		t.Fatal("ByID(z) should not exist")
	}
}

func TestRatingPerfectComfort(t *testing.T) {
	if got := Rating(Comfort{}); got != 5 {
		t.Fatalf("no-discomfort rating = %v want 5", got)
	}
}

func TestRatingDiscomfortCosts(t *testing.T) {
	mild := Rating(Comfort{OverFrac: 0.1, MeanExcessC: 0.3})
	heavy := Rating(Comfort{OverFrac: 0.7, MeanExcessC: 3})
	if mild <= heavy {
		t.Fatalf("mild %v should beat heavy %v", mild, heavy)
	}
	if heavy >= 4.5 {
		t.Fatalf("70%% over-limit time should cost more than half a point: %v", heavy)
	}
}

func TestRatingPerformanceThreshold(t *testing.T) {
	// Below the 50% noticeability floor performance loss is free — the
	// paper's participants never noticed USTA's scaling.
	base := Rating(Comfort{OverFrac: 0.2})
	small := Rating(Comfort{OverFrac: 0.2, Slowdown: 0.45})
	if base != small {
		t.Fatalf("sub-threshold slowdown changed the rating: %v vs %v", base, small)
	}
	big := Rating(Comfort{OverFrac: 0.2, Slowdown: 0.9})
	if big >= base {
		t.Fatalf("90%% slowdown should hurt: %v vs %v", big, base)
	}
}

func TestRatingHalfPointGrid(t *testing.T) {
	for _, c := range []Comfort{{}, {OverFrac: 0.33, MeanExcessC: 1.1}, {OverFrac: 0.9, MeanExcessC: 4, Slowdown: 0.4}} {
		r := Rating(c)
		if math.Abs(r*2-math.Round(r*2)) > 1e-9 {
			t.Fatalf("rating %v not on the half-point grid", r)
		}
		if r < 1 || r > 5 {
			t.Fatalf("rating %v outside 1..5", r)
		}
	}
}

func TestPreferDerivedFromRatings(t *testing.T) {
	u, _ := ByID("b")
	if got := Prefer(u, 3.5, 4.5); got != PrefersUSTA {
		t.Fatalf("Prefer = %v want usta", got)
	}
	if got := Prefer(u, 4.5, 3.5); got != PrefersBaseline {
		t.Fatalf("Prefer = %v want baseline", got)
	}
	if got := Prefer(u, 4, 4); got != NoDifference {
		t.Fatalf("Prefer = %v want no-difference", got)
	}
}

func TestPreferQuirkUsers(t *testing.T) {
	// Paper: users c and g preferred the baseline regardless of ratings.
	for _, id := range []string{"c", "g"} {
		u, _ := ByID(id)
		if got := Prefer(u, 3, 5); got != PrefersBaseline {
			t.Fatalf("user %s: Prefer = %v want baseline (documented quirk)", id, got)
		}
	}
}

func TestPreferenceString(t *testing.T) {
	if NoDifference.String() != "no-difference" || PrefersUSTA.String() != "usta" || PrefersBaseline.String() != "baseline" {
		t.Fatal("Preference.String broken")
	}
}

// Property: ratings are monotone non-increasing in every discomfort
// dimension.
func TestRatingMonotoneProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		of := math.Mod(math.Abs(a), 1)
		ex := math.Mod(math.Abs(b), 5)
		sl := math.Mod(math.Abs(c), 1)
		base := Rating(Comfort{OverFrac: of, MeanExcessC: ex, Slowdown: sl})
		worse := Rating(Comfort{OverFrac: math.Min(1, of+0.1), MeanExcessC: ex + 0.5, Slowdown: math.Min(1, sl+0.1)})
		return worse <= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
