// Package users models the paper's ten-participant study population: the
// per-user skin and screen comfort limits of Figure 1, the "default user"
// (the 37 °C average limit USTA uses when not personalized), and the
// satisfaction-rating model behind Figure 5.
//
// The paper publishes the envelope of the comfort limits — minimum 34.0 °C,
// maximum 42.8 °C, average 37 °C (the configured default) — plus per-user
// narrative facts: participants a, d, e and i had thresholds high enough
// that USTA never acted for them, and participant g had the highest
// threshold of all. The population below satisfies every published
// constraint: it spans exactly [34.0, 42.8], averages exactly 37.0, and
// places a, d, e, g, i at the top of the range.
package users

import "math"

// User is one study participant.
type User struct {
	// ID is the participant label ("a" through "j", as in the paper).
	ID string
	// SkinLimitC is the back-cover temperature at which the participant
	// reported unacceptable discomfort.
	SkinLimitC float64
	// ScreenLimitC is the corresponding screen-side comfort limit. Screens
	// run cooler against the palm and fingers tolerate more, so these sit a
	// few degrees below the skin limits (Figure 1 shows both).
	ScreenLimitC float64
}

// StudyPopulation returns the ten participants. The skin limits sum to
// exactly 370.0 (average 37.0 — the paper's default-user limit), span
// exactly 34.0 to 42.8, and put participants a, d, e, g, i at the top five
// thresholds to match the paper's §IV-B observations.
func StudyPopulation() []User {
	return []User{
		{ID: "a", SkinLimitC: 39.1, ScreenLimitC: 36.4},
		{ID: "b", SkinLimitC: 34.0, ScreenLimitC: 31.6},
		{ID: "c", SkinLimitC: 35.2, ScreenLimitC: 32.5},
		{ID: "d", SkinLimitC: 38.2, ScreenLimitC: 35.8},
		{ID: "e", SkinLimitC: 37.4, ScreenLimitC: 34.7},
		{ID: "f", SkinLimitC: 34.6, ScreenLimitC: 32.0},
		{ID: "g", SkinLimitC: 42.8, ScreenLimitC: 40.5},
		{ID: "h", SkinLimitC: 35.7, ScreenLimitC: 33.1},
		{ID: "i", SkinLimitC: 36.8, ScreenLimitC: 34.2},
		{ID: "j", SkinLimitC: 36.2, ScreenLimitC: 33.6},
	}
}

// DefaultLimitC is the "default user" skin limit: the average of the ten
// reported discomfort limits, which the paper rounds to 37 °C and uses for
// all Table 1 USTA runs.
const DefaultLimitC = 37.0

// ByID returns the participant with the given label, or false.
func ByID(id string) (User, bool) {
	for _, u := range StudyPopulation() {
		if u.ID == id {
			return u, true
		}
	}
	return User{}, false
}

// Comfort summarises one scheme's thermal experience for a user.
type Comfort struct {
	// OverFrac is the fraction of time the skin temperature exceeded the
	// user's limit.
	OverFrac float64
	// MeanExcessC is the average number of degrees above the limit during
	// over-limit time (0 when never over).
	MeanExcessC float64
	// Slowdown is the fraction of demanded CPU work left unserved.
	Slowdown float64
}

// Rating converts a Comfort into the 1–5 satisfaction score of Figure 5.
//
// The model is a documented heuristic calibrated against the paper's
// aggregate outcomes (baseline average 4.0, USTA average 4.3, most users
// rating both schemes highly): discomfort dominates — sustained over-limit
// time and the severity of the excess each cost a fraction of a point —
// while performance only registers beyond a 50 % work loss. The high
// perception threshold encodes the paper's strongest human-factors
// finding: no participant noticed USTA's frequency scaling at all, even
// when it pinned the CPU at the minimum OPP for most of a video call
// (media workloads degrade gracefully). Scores are rounded to the nearest
// half point, mimicking survey granularity.
func Rating(c Comfort) float64 {
	r := 5.0
	r -= 0.8 * c.OverFrac
	r -= 0.10 * c.MeanExcessC
	if c.Slowdown > 0.5 {
		r -= 2 * (c.Slowdown - 0.5)
	}
	if r < 1 {
		r = 1
	}
	if r > 5 {
		r = 5
	}
	return math.Round(r*2) / 2
}

// Preference is a participant's stated choice between the two schemes.
type Preference int

// Preference values.
const (
	NoDifference Preference = iota
	PrefersUSTA
	PrefersBaseline
)

// String returns the human-readable preference.
func (p Preference) String() string {
	switch p {
	case PrefersUSTA:
		return "usta"
	case PrefersBaseline:
		return "baseline"
	default:
		return "no-difference"
	}
}

// baselinePreferrers records the paper's §IV-B human-factors quirk: users c
// and g chose the baseline without giving a reason (g's threshold was so
// high USTA never even acted). A rating model cannot derive that choice, so
// it is reproduced as data.
var baselinePreferrers = map[string]bool{"c": true, "g": true}

// Prefer derives a participant's preference from the two ratings, applying
// the documented c/g idiosyncrasy.
func Prefer(u User, baselineRating, ustaRating float64) Preference {
	if baselinePreferrers[u.ID] {
		return PrefersBaseline
	}
	switch {
	case ustaRating > baselineRating:
		return PrefersUSTA
	case ustaRating < baselineRating:
		return PrefersBaseline
	default:
		return NoDifference
	}
}
