package linreg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml"
)

func TestRecoversExactLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := ml.NewDataset("a", "b", "c")
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 5, rng.Float64()}
		d.Add(x, 7-3*x[0]+0.5*x[1]+2*x[2])
	}
	m := New()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	want := []float64{7, -3, 0.5, 2}
	for i, w := range want {
		if math.Abs(m.Coef[i]-w) > 1e-8 {
			t.Fatalf("coef[%d] = %v want %v", i, m.Coef[i], w)
		}
	}
	pred := m.Predict([]float64{1, 2, 3})
	if math.Abs(pred-(7-3+1+6)) > 1e-8 {
		t.Fatalf("Predict = %v want 11", pred)
	}
}

func TestNoisyFitIsUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := ml.NewDataset("x")
	for i := 0; i < 5000; i++ {
		x := rng.Float64() * 10
		d.Add([]float64{x}, 3+2*x+rng.NormFloat64()*0.5)
	}
	m := New()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-3) > 0.1 || math.Abs(m.Coef[1]-2) > 0.02 {
		t.Fatalf("coef = %v want ≈[3 2]", m.Coef)
	}
}

func TestCollinearFeaturesStillFit(t *testing.T) {
	d := ml.NewDataset("a", "b")
	for i := 0; i < 50; i++ {
		v := float64(i)
		d.Add([]float64{v, v}, 1+4*v) // perfectly collinear
	}
	m := New()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	pred := m.Predict([]float64{10, 10})
	if math.Abs(pred-41) > 0.5 {
		t.Fatalf("collinear prediction = %v want ≈41", pred)
	}
}

func TestRidgeShrinksCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := ml.NewDataset("a")
	for i := 0; i < 100; i++ {
		x := rng.Float64()
		d.Add([]float64{x}, 10*x)
	}
	ols := New()
	ridge := NewRidge(100)
	if err := ols.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := ridge.Fit(d); err != nil {
		t.Fatal(err)
	}
	if math.Abs(ridge.Coef[1]) >= math.Abs(ols.Coef[1]) {
		t.Fatalf("ridge slope %v not shrunk vs OLS %v", ridge.Coef[1], ols.Coef[1])
	}
}

func TestEmptyDataset(t *testing.T) {
	m := New()
	if err := m.Fit(ml.NewDataset("x")); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Predict([]float64{1})
}

func TestName(t *testing.T) {
	if New().Name() != "LinearRegression" {
		t.Fatalf("Name = %q", New().Name())
	}
}

func TestSingleInstance(t *testing.T) {
	d := ml.NewDataset("x")
	d.Add([]float64{2}, 7)
	m := New()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{2}); math.Abs(p-7) > 0.5 {
		t.Fatalf("single-instance prediction = %v want ≈7", p)
	}
}

func TestCrossValidationAccuracyOnLinearData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := ml.NewDataset("a", "b")
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64() * 40, rng.Float64() * 4}
		d.Add(x, 30+0.2*x[0]+1.5*x[1]+rng.NormFloat64()*0.1)
	}
	exp, pred, err := ml.CrossValidate(func() ml.Regressor { return New() }, d, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := ml.R2(exp, pred); r2 < 0.99 {
		t.Fatalf("CV R2 = %v want > 0.99 on near-noiseless linear data", r2)
	}
}
