// Package linreg implements ordinary least-squares linear regression with an
// optional ridge penalty — the "linear regression" entry among the paper's
// four WEKA candidates. WEKA's implementation falls back to a growing ridge
// when the normal equations are singular; mat.LeastSquares reproduces that
// behaviour.
package linreg

import (
	"repro/internal/mat"
	"repro/internal/ml"
)

// Model is a linear regression model. The zero value is ready to Fit; set
// Ridge for explicit regularization.
type Model struct {
	// Ridge is the L2 penalty added to the normal equations (0 = pure OLS
	// with automatic fallback on singularity).
	Ridge float64

	// Coef holds the fitted coefficients: Coef[0] is the intercept,
	// Coef[1:] align with the dataset attributes.
	Coef []float64
}

var _ ml.Regressor = (*Model)(nil)

// New returns an OLS model.
func New() *Model { return &Model{} }

// NewRidge returns a ridge-regularized model.
func NewRidge(lambda float64) *Model { return &Model{Ridge: lambda} }

// Name implements ml.Regressor.
func (m *Model) Name() string { return "LinearRegression" }

// Fit implements ml.Regressor by solving the (regularized) normal
// equations with an intercept column.
func (m *Model) Fit(d *ml.Dataset) error {
	if d.Len() == 0 {
		return ml.ErrEmptyDataset
	}
	cols := d.NumAttrs() + 1
	a := mat.NewDense(d.Len(), cols)
	for i, x := range d.X {
		row := a.Row(i)
		row[0] = 1
		copy(row[1:], x)
	}
	w, err := mat.LeastSquares(a, d.Y, m.Ridge)
	if err != nil {
		return err
	}
	m.Coef = w
	return nil
}

// Predict implements ml.Regressor.
func (m *Model) Predict(x []float64) float64 {
	if m.Coef == nil {
		panic("linreg: Predict before Fit")
	}
	y := m.Coef[0]
	for i, v := range x {
		y += m.Coef[i+1] * v
	}
	return y
}
