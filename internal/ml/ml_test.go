package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func makeLinear(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := NewDataset("a", "b")
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		d.Add(x, 5+2*x[0]-x[1])
	}
	return d
}

// meanModel is a trivial Regressor for framework tests.
type meanModel struct{ mean float64 }

func (m *meanModel) Name() string { return "mean" }
func (m *meanModel) Fit(d *Dataset) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	var s float64
	for _, y := range d.Y {
		s += y
	}
	m.mean = s / float64(d.Len())
	return nil
}
func (m *meanModel) Predict([]float64) float64 { return m.mean }

func TestDatasetAddLen(t *testing.T) {
	d := NewDataset("x")
	d.Add([]float64{1}, 2)
	d.Add([]float64{3}, 4)
	if d.Len() != 2 || d.NumAttrs() != 1 {
		t.Fatalf("Len=%d NumAttrs=%d", d.Len(), d.NumAttrs())
	}
}

func TestDatasetAddPanicsOnWidthMismatch(t *testing.T) {
	d := NewDataset("x", "y")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Add([]float64{1}, 2)
}

func TestSubset(t *testing.T) {
	d := makeLinear(10, 1)
	s := d.Subset([]int{0, 5, 9})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Y[1] != d.Y[5] {
		t.Fatal("Subset did not select the right instances")
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	d := makeLinear(50, 2)
	s := d.Shuffled(7)
	if s.Len() != d.Len() {
		t.Fatalf("Len changed: %d", s.Len())
	}
	var sumOrig, sumShuf float64
	for i := range d.Y {
		sumOrig += d.Y[i]
		sumShuf += s.Y[i]
	}
	if math.Abs(sumOrig-sumShuf) > 1e-9 {
		t.Fatal("Shuffled lost or duplicated instances")
	}
	// Same seed reproduces the permutation.
	s2 := d.Shuffled(7)
	for i := range s.Y {
		if s.Y[i] != s2.Y[i] {
			t.Fatal("Shuffled not deterministic")
		}
	}
}

func TestSplit(t *testing.T) {
	d := makeLinear(10, 3)
	head, tail := d.Split(0.7)
	if head.Len() != 7 || tail.Len() != 3 {
		t.Fatalf("split = %d/%d want 7/3", head.Len(), tail.Len())
	}
	head, tail = d.Split(0)
	if head.Len() != 0 || tail.Len() != 10 {
		t.Fatalf("split(0) = %d/%d", head.Len(), tail.Len())
	}
	head, tail = d.Split(1.5)
	if head.Len() != 10 || tail.Len() != 0 {
		t.Fatalf("split(1.5) = %d/%d", head.Len(), tail.Len())
	}
}

func TestTargetStats(t *testing.T) {
	d := NewDataset("x")
	for _, y := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		d.Add([]float64{0}, y)
	}
	mean, std := d.TargetStats()
	if mean != 5 || std != 2 {
		t.Fatalf("stats = %v,%v want 5,2", mean, std)
	}
}

func TestCrossValidateCoversEveryInstanceOnce(t *testing.T) {
	d := makeLinear(101, 4)
	exp, pred, err := CrossValidate(func() Regressor { return &meanModel{} }, d, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp) != d.Len() || len(pred) != d.Len() {
		t.Fatalf("CV returned %d/%d predictions for %d instances", len(exp), len(pred), d.Len())
	}
	// The multiset of expected values must equal the dataset targets.
	var sumD, sumE float64
	for i := range d.Y {
		sumD += d.Y[i]
		sumE += exp[i]
	}
	if math.Abs(sumD-sumE) > 1e-6 {
		t.Fatal("CV expected values do not cover the dataset")
	}
}

func TestCrossValidateErrors(t *testing.T) {
	d := makeLinear(10, 5)
	if _, _, err := CrossValidate(func() Regressor { return &meanModel{} }, d, 1, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	empty := NewDataset("x")
	if _, _, err := CrossValidate(func() Regressor { return &meanModel{} }, empty, 10, 1); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestCrossValidateKLargerThanN(t *testing.T) {
	d := makeLinear(5, 6)
	exp, _, err := CrossValidate(func() Regressor { return &meanModel{} }, d, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp) != 5 {
		t.Fatalf("leave-one-out fallback returned %d predictions", len(exp))
	}
}

func TestErrorRateEq1(t *testing.T) {
	// |40-39|/40*100 = 2.5 and |30-33|/30*100 = 10 -> mean 6.25.
	got := ErrorRate([]float64{40, 30}, []float64{39, 33})
	if math.Abs(got-6.25) > 1e-9 {
		t.Fatalf("ErrorRate = %v want 6.25", got)
	}
}

func TestErrorRatePerfect(t *testing.T) {
	if got := ErrorRate([]float64{40, 30}, []float64{40, 30}); got != 0 {
		t.Fatalf("perfect ErrorRate = %v", got)
	}
}

func TestErrorRateSkipsZeroExpected(t *testing.T) {
	got := ErrorRate([]float64{0, 40}, []float64{5, 38})
	if math.Abs(got-5) > 1e-9 {
		t.Fatalf("ErrorRate = %v want 5 (zero-expected skipped)", got)
	}
}

func TestGatedErrorRateZeroesSmallDiffs(t *testing.T) {
	// First error 0.5 °C < 1 gate -> 0; second 2 °C -> 2/40 = 5%.
	got := GatedErrorRate([]float64{40, 40}, []float64{39.5, 38}, 1.0)
	if math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("GatedErrorRate = %v want 2.5", got)
	}
	// Gate of 0 reduces to plain ErrorRate.
	a := ErrorRate([]float64{40, 40}, []float64{39.5, 38})
	b := GatedErrorRate([]float64{40, 40}, []float64{39.5, 38}, 0)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("gate 0 mismatch: %v vs %v", a, b)
	}
}

func TestGatedNeverExceedsUngated(t *testing.T) {
	exp := []float64{35, 36, 37, 40, 42}
	pred := []float64{34.2, 36.8, 36.9, 41.5, 42.05}
	if GatedErrorRate(exp, pred, 1) > ErrorRate(exp, pred)+1e-12 {
		t.Fatal("gated error rate must never exceed the plain error rate")
	}
}

func TestMAERMSE(t *testing.T) {
	exp := []float64{1, 2, 3}
	pred := []float64{2, 2, 5}
	if got := MAE(exp, pred); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MAE = %v want 1", got)
	}
	want := math.Sqrt((1.0 + 0 + 4) / 3)
	if got := RMSE(exp, pred); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %v want %v", got, want)
	}
	if MAE(nil, nil) != 0 || RMSE(nil, nil) != 0 {
		t.Fatal("empty metrics should be 0")
	}
}

func TestR2(t *testing.T) {
	exp := []float64{1, 2, 3, 4}
	if got := R2(exp, exp); got != 1 {
		t.Fatalf("perfect R2 = %v", got)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(exp, mean); math.Abs(got) > 1e-12 {
		t.Fatalf("mean-predictor R2 = %v want 0", got)
	}
}

func TestR2DegenerateTarget(t *testing.T) {
	exp := []float64{5, 5, 5}
	if got := R2(exp, []float64{5, 5, 5}); got != 1 {
		t.Fatalf("constant-perfect R2 = %v", got)
	}
	if got := R2(exp, []float64{4, 5, 6}); got != 0 {
		t.Fatalf("constant-imperfect R2 = %v", got)
	}
}

// Property: RMSE >= MAE always.
func TestRMSEDominatesMAEProperty(t *testing.T) {
	f := func(pairsRaw []float64) bool {
		if len(pairsRaw) < 2 {
			return true
		}
		n := len(pairsRaw) / 2
		exp := make([]float64, 0, n)
		pred := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			e, p := pairsRaw[2*i], pairsRaw[2*i+1]
			if math.IsNaN(e) || math.IsInf(e, 0) || math.IsNaN(p) || math.IsInf(p, 0) {
				continue
			}
			if math.Abs(e) > 1e8 || math.Abs(p) > 1e8 {
				continue
			}
			exp = append(exp, e)
			pred = append(pred, p)
		}
		if len(exp) == 0 {
			return true
		}
		return RMSE(exp, pred) >= MAE(exp, pred)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: GatedErrorRate is antitone in the gate.
func TestGatedAntitoneProperty(t *testing.T) {
	exp := []float64{35, 36, 37, 40, 42, 33, 39}
	pred := []float64{34.2, 36.8, 36.9, 41.5, 42.05, 35.1, 38.2}
	f := func(g1, g2 float64) bool {
		a, b := math.Abs(g1), math.Abs(g2)
		if a > b {
			a, b = b, a
		}
		return GatedErrorRate(exp, pred, a) >= GatedErrorRate(exp, pred, b)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
