package ml

import (
	"math/rand"
	"testing"
)

// linearModel is a fixed linear predictor for importance tests.
type linearModel struct{ coef []float64 }

func (m *linearModel) Name() string         { return "fixed-linear" }
func (m *linearModel) Fit(d *Dataset) error { return nil }
func (m *linearModel) Predict(x []float64) float64 {
	var s float64
	for i, c := range m.coef {
		s += c * x[i]
	}
	return s
}

func TestPermutationImportanceRanksSignalOverNoise(t *testing.T) {
	// y depends strongly on feature 0, weakly on feature 1, not at all on
	// feature 2; a perfect model's permutation scores must rank them so.
	rng := rand.New(rand.NewSource(1))
	d := NewDataset("strong", "weak", "noise")
	for i := 0; i < 500; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		d.Add(x, 5*x[0]+0.5*x[1])
	}
	m := &linearModel{coef: []float64{5, 0.5, 0}}
	imp, err := PermutationImportance(m, d, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != 3 {
		t.Fatalf("importance count = %d", len(imp))
	}
	if !(imp[0].Increase > imp[1].Increase && imp[1].Increase > imp[2].Increase) {
		t.Fatalf("ranking wrong: %+v", imp)
	}
	if imp[2].Increase > 1e-9 {
		t.Fatalf("irrelevant feature has importance %v", imp[2].Increase)
	}
	if imp[0].BaseMAE > 1e-9 {
		t.Fatalf("perfect model base MAE = %v", imp[0].BaseMAE)
	}
}

func TestPermutationImportanceEmptyDataset(t *testing.T) {
	if _, err := PermutationImportance(&linearModel{coef: []float64{1}}, NewDataset("x"), 1); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestImportanceString(t *testing.T) {
	im := Importance{Attr: "battery_temp_c", BaseMAE: 0.1, PermMAE: 0.9, Increase: 0.8}
	if s := im.String(); s == "" || s[0] != 'b' {
		t.Fatalf("String = %q", s)
	}
}

func TestPermutationImportanceDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDataset("a", "b")
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		d.Add(x, x[0])
	}
	m := &linearModel{coef: []float64{1, 0}}
	i1, err := PermutationImportance(m, d, 9)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := PermutationImportance(m, d, 9)
	if err != nil {
		t.Fatal(err)
	}
	for k := range i1 {
		if i1[k].PermMAE != i2[k].PermMAE {
			t.Fatal("same-seed importance diverged")
		}
	}
}
