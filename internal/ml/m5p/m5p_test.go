package m5p

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/tree"
)

func TestRecoversGlobalLinearFunction(t *testing.T) {
	// A single linear model fits globally, so pruning should collapse the
	// tree to (near) a stump and predictions should be near-exact.
	rng := rand.New(rand.NewSource(1))
	d := ml.NewDataset("a", "b")
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		d.Add(x, 3+2*x[0]-x[1])
	}
	m := New()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		want := 3 + 2*x[0] - x[1]
		if got := m.Predict(x); math.Abs(got-want) > 0.2 {
			t.Fatalf("Predict(%v) = %v want %v", x, got, want)
		}
	}
	if m.NumNodes() > 3 {
		t.Fatalf("globally linear data should prune hard, got %d nodes", m.NumNodes())
	}
}

func TestRecoversPiecewiseLinear(t *testing.T) {
	// Two linear regimes joined at x=5: the classic M5 showcase.
	rng := rand.New(rand.NewSource(2))
	d := ml.NewDataset("x")
	target := func(x float64) float64 {
		if x <= 5 {
			return 2 * x
		}
		return 10 - 3*(x-5)
	}
	for i := 0; i < 600; i++ {
		x := rng.Float64() * 10
		d.Add([]float64{x}, target(x)+rng.NormFloat64()*0.05)
	}
	m := New()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	var mae float64
	for i := 0; i < 100; i++ {
		x := rng.Float64() * 10
		mae += math.Abs(m.Predict([]float64{x}) - target(x))
	}
	mae /= 100
	if mae > 0.4 {
		t.Fatalf("piecewise-linear MAE = %v want < 0.4", mae)
	}
}

func TestBeatsREPTreeOnSmoothLinearData(t *testing.T) {
	// Leaf linear models extrapolate within a region; constant leaves
	// cannot. This is why M5P edges REPTree once sub-1 °C errors are
	// ignored (paper §IV-A).
	rng := rand.New(rand.NewSource(3))
	d := ml.NewDataset("a", "b")
	for i := 0; i < 500; i++ {
		x := []float64{rng.Float64() * 50, rng.Float64() * 2}
		d.Add(x, 25+0.3*x[0]+4*x[1]+rng.NormFloat64()*0.05)
	}
	expM, predM, err := ml.CrossValidate(func() ml.Regressor { return New() }, d, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	expT, predT, err := ml.CrossValidate(func() ml.Regressor { return tree.New(1) }, d, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	rmseM := ml.RMSE(expM, predM)
	rmseT := ml.RMSE(expT, predT)
	if rmseM >= rmseT {
		t.Fatalf("M5P RMSE %v should beat REPTree %v on smooth linear data", rmseM, rmseT)
	}
}

func TestSmoothingChangesPredictionsNearBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := ml.NewDataset("x")
	for i := 0; i < 400; i++ {
		x := rng.Float64() * 10
		y := 2 * x
		if x > 5 {
			y = 30 - x
		}
		d.Add([]float64{x}, y+rng.NormFloat64()*0.2)
	}
	smoothed := New()
	if err := smoothed.Fit(d); err != nil {
		t.Fatal(err)
	}
	raw := New()
	raw.Unsmoothed = true
	if err := raw.Fit(d); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64() * 10}
		if math.Abs(smoothed.Predict(x)-raw.Predict(x)) > 1e-9 {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("smoothing never changed a prediction on a multi-leaf tree")
	}
}

func TestConstantTarget(t *testing.T) {
	d := ml.NewDataset("x")
	for i := 0; i < 40; i++ {
		d.Add([]float64{float64(i)}, 9)
	}
	m := New()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{20}); math.Abs(p-9) > 1e-6 {
		t.Fatalf("Predict = %v want 9", p)
	}
}

func TestTinyDataset(t *testing.T) {
	d := ml.NewDataset("x")
	d.Add([]float64{1}, 2)
	d.Add([]float64{2}, 4)
	m := New()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	p := m.Predict([]float64{1.5})
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("tiny dataset produced %v", p)
	}
}

func TestCollinearFeatures(t *testing.T) {
	d := ml.NewDataset("a", "b")
	for i := 0; i < 100; i++ {
		v := float64(i) / 10
		d.Add([]float64{v, v}, 5*v)
	}
	m := New()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{5, 5}); math.Abs(p-25) > 1 {
		t.Fatalf("collinear prediction = %v want ≈25", p)
	}
}

func TestEmptyDataset(t *testing.T) {
	if err := New().Fit(ml.NewDataset("x")); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Predict([]float64{1})
}

func TestName(t *testing.T) {
	if New().Name() != "M5P" {
		t.Fatalf("Name = %q", New().Name())
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := ml.NewDataset("a")
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 10
		d.Add([]float64{x}, x*x)
	}
	a, b := New(), New()
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := []float64{float64(i) / 2}
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("M5P is not deterministic")
		}
	}
}
