// Package m5p implements the M5' model tree (Quinlan's M5 as refined by
// Wang & Witten), the second-best candidate in the paper's Figure 3 and the
// most accurate once sub-1 °C differences are ignored. The tree is grown by
// standard-deviation reduction (SDR), every node receives a linear model,
// pruning collapses subtrees whose complexity-compensated error estimate is
// no better than their node's linear model, and predictions are smoothed up
// the path with the classic (n·p + k·q)/(n + k) rule.
//
// Simplification relative to WEKA: node linear models use all attributes
// (no greedy attribute elimination). On the low-dimensional feature tuple
// used here (four features) elimination changes accuracy negligibly.
package m5p

import (
	"math"

	"repro/internal/mat"
	"repro/internal/ml"
)

// Model is an M5P model-tree regressor.
type Model struct {
	// MinInstances is the minimum leaf size (default 4, as in M5').
	MinInstances int
	// SmoothingK is the smoothing constant (default 15; set Unsmoothed to
	// bypass smoothing entirely).
	SmoothingK float64
	// Unsmoothed disables path smoothing (WEKA's -U).
	Unsmoothed bool
	// SDRStopRatio stops splitting when a node's target standard deviation
	// falls below this fraction of the root's (default 0.05).
	SDRStopRatio float64

	root     *node
	numAttrs int
}

var _ ml.Regressor = (*Model)(nil)

type node struct {
	attr      int
	threshold float64
	left      *node
	right     *node
	lm        []float64 // [intercept, coef...]; fitted at every node
	n         int
	leaf      bool
}

// New returns an M5P model with the standard defaults.
func New() *Model {
	return &Model{MinInstances: 4, SmoothingK: 15, SDRStopRatio: 0.05}
}

// Name implements ml.Regressor.
func (m *Model) Name() string { return "M5P" }

// Fit implements ml.Regressor.
func (m *Model) Fit(d *ml.Dataset) error {
	if d.Len() == 0 {
		return ml.ErrEmptyDataset
	}
	minInst := m.MinInstances
	if minInst < 1 {
		minInst = 4
	}
	stop := m.SDRStopRatio
	if stop <= 0 {
		stop = 0.05
	}
	m.numAttrs = d.NumAttrs()

	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	rootSD := sdOf(d, idx)
	b := &builder{d: d, minInst: minInst, sdFloor: rootSD * stop}
	m.root = b.grow(idx)
	b.fitModels(m.root, idx)
	b.prune(m.root, idx)
	return nil
}

type builder struct {
	d       *ml.Dataset
	minInst int
	sdFloor float64
}

func sdOf(d *ml.Dataset, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, i := range idx {
		sum += d.Y[i]
		sumSq += d.Y[i] * d.Y[i]
	}
	n := float64(len(idx))
	v := sumSq/n - (sum/n)*(sum/n)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

func (b *builder) grow(idx []int) *node {
	nd := &node{n: len(idx), leaf: true}
	if len(idx) < 2*b.minInst || sdOf(b.d, idx) <= b.sdFloor {
		return nd
	}
	attr, thr, ok := b.bestSDRSplit(idx)
	if !ok {
		return nd
	}
	var left, right []int
	for _, i := range idx {
		if b.d.X[i][attr] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.minInst || len(right) < b.minInst {
		return nd
	}
	nd.leaf = false
	nd.attr = attr
	nd.threshold = thr
	nd.left = b.grow(left)
	nd.right = b.grow(right)
	return nd
}

// bestSDRSplit maximizes sd(parent) − Σ |child|/|parent| · sd(child), which
// is equivalent to minimizing Σ n_c·sd(child); we minimize the weighted
// child SD sum via a prefix-sum sweep.
func (b *builder) bestSDRSplit(idx []int) (attr int, threshold float64, ok bool) {
	best := math.Inf(1)
	n := len(idx)
	order := make([]int, n)
	for a := 0; a < b.d.NumAttrs(); a++ {
		copy(order, idx)
		sortByAttr(order, b.d, a)
		var sumAll, sumSqAll float64
		for _, i := range order {
			sumAll += b.d.Y[i]
			sumSqAll += b.d.Y[i] * b.d.Y[i]
		}
		var sumL, sumSqL float64
		for p := 0; p < n-1; p++ {
			y := b.d.Y[order[p]]
			sumL += y
			sumSqL += y * y
			xCur := b.d.X[order[p]][a]
			xNext := b.d.X[order[p+1]][a]
			if xCur == xNext {
				continue
			}
			nl := float64(p + 1)
			nr := float64(n - p - 1)
			if p+1 < b.minInst || n-p-1 < b.minInst {
				continue
			}
			varL := sumSqL/nl - (sumL/nl)*(sumL/nl)
			sumR := sumAll - sumL
			sumSqR := sumSqAll - sumSqL
			varR := sumSqR/nr - (sumR/nr)*(sumR/nr)
			if varL < 0 {
				varL = 0
			}
			if varR < 0 {
				varR = 0
			}
			score := nl*math.Sqrt(varL) + nr*math.Sqrt(varR)
			if score < best {
				best = score
				attr = a
				threshold = (xCur + xNext) / 2
				ok = true
			}
		}
	}
	return attr, threshold, ok
}

func sortByAttr(order []int, d *ml.Dataset, a int) {
	if len(order) < 2 {
		return
	}
	quickSort(order, func(i, j int) bool { return d.X[i][a] < d.X[j][a] })
}

func quickSort(idx []int, less func(a, b int) bool) {
	if len(idx) < 12 {
		for i := 1; i < len(idx); i++ {
			for j := i; j > 0 && less(idx[j], idx[j-1]); j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
		return
	}
	pivot := idx[len(idx)/2]
	lo, hi := 0, len(idx)-1
	for lo <= hi {
		for less(idx[lo], pivot) {
			lo++
		}
		for less(pivot, idx[hi]) {
			hi--
		}
		if lo <= hi {
			idx[lo], idx[hi] = idx[hi], idx[lo]
			lo++
			hi--
		}
	}
	quickSort(idx[:hi+1], less)
	quickSort(idx[lo:], less)
}

// fitModels fits a ridge-stabilized linear model at every node.
func (b *builder) fitModels(nd *node, idx []int) {
	nd.lm = b.fitLM(idx)
	if nd.leaf {
		return
	}
	var left, right []int
	for _, i := range idx {
		if b.d.X[i][nd.attr] <= nd.threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	b.fitModels(nd.left, left)
	b.fitModels(nd.right, right)
}

func (b *builder) fitLM(idx []int) []float64 {
	cols := b.d.NumAttrs() + 1
	if len(idx) == 0 {
		return make([]float64, cols)
	}
	a := mat.NewDense(len(idx), cols)
	y := make([]float64, len(idx))
	for r, i := range idx {
		row := a.Row(r)
		row[0] = 1
		copy(row[1:], b.d.X[i])
		y[r] = b.d.Y[i]
	}
	w, err := mat.LeastSquares(a, y, 1e-8)
	if err != nil {
		// Degenerate node: fall back to the mean.
		w = make([]float64, cols)
		var s float64
		for _, i := range idx {
			s += b.d.Y[i]
		}
		w[0] = s / float64(len(idx))
	}
	return w
}

func evalLM(lm []float64, x []float64) float64 {
	y := lm[0]
	for i, v := range x {
		y += lm[i+1] * v
	}
	return y
}

// prune collapses subtrees whose complexity-compensated linear-model error
// is no worse than the subtree's, using Quinlan's (n+v)/(n−v) factor. It
// returns the node's final error estimate.
func (b *builder) prune(nd *node, idx []int) float64 {
	leafErr := b.estimatedError(nd.lm, idx)
	if nd.leaf {
		return leafErr
	}
	var left, right []int
	for _, i := range idx {
		if b.d.X[i][nd.attr] <= nd.threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	subErr := (b.prune(nd.left, left)*float64(len(left)) +
		b.prune(nd.right, right)*float64(len(right))) / float64(len(idx))
	if leafErr <= subErr {
		nd.leaf = true
		nd.left, nd.right = nil, nil
		return leafErr
	}
	return subErr
}

func (b *builder) estimatedError(lm []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var mae float64
	for _, i := range idx {
		mae += math.Abs(b.d.Y[i] - evalLM(lm, b.d.X[i]))
	}
	mae /= float64(len(idx))
	n := float64(len(idx))
	v := float64(len(lm))
	if n <= v {
		return mae * 10 // tiny node: strongly discourage keeping it
	}
	return mae * (n + v) / (n - v)
}

// Predict implements ml.Regressor.
func (m *Model) Predict(x []float64) float64 {
	if m.root == nil {
		panic("m5p: Predict before Fit")
	}
	if m.Unsmoothed {
		nd := m.root
		for !nd.leaf {
			if x[nd.attr] <= nd.threshold {
				nd = nd.left
			} else {
				nd = nd.right
			}
		}
		return evalLM(nd.lm, x)
	}
	return m.smoothedPredict(m.root, x)
}

// smoothedPredict implements the M5 smoothing rule: the value coming up
// from the child is blended with the current node's model as
// (n_child·p + k·q)/(n_child + k).
func (m *Model) smoothedPredict(nd *node, x []float64) float64 {
	if nd.leaf {
		return evalLM(nd.lm, x)
	}
	child := nd.left
	if x[nd.attr] > nd.threshold {
		child = nd.right
	}
	p := m.smoothedPredict(child, x)
	k := m.SmoothingK
	if k <= 0 {
		return p
	}
	q := evalLM(nd.lm, x)
	n := float64(child.n)
	return (n*p + k*q) / (n + k)
}

// NumNodes returns the node count of the fitted tree.
func (m *Model) NumNodes() int { return countNodes(m.root) }

func countNodes(nd *node) int {
	if nd == nil {
		return 0
	}
	if nd.leaf {
		return 1
	}
	return 1 + countNodes(nd.left) + countNodes(nd.right)
}
