package m5p

// JSON persistence for trained model trees (see tree/json.go for the
// rationale).

import (
	"encoding/json"
	"errors"
)

type jsonNode struct {
	Attr      int       `json:"attr,omitempty"`
	Threshold float64   `json:"thr,omitempty"`
	Left      *jsonNode `json:"l,omitempty"`
	Right     *jsonNode `json:"r,omitempty"`
	LM        []float64 `json:"lm"`
	N         int       `json:"n"`
	Leaf      bool      `json:"leaf"`
}

type jsonModel struct {
	MinInstances int       `json:"min_instances"`
	SmoothingK   float64   `json:"smoothing_k"`
	Unsmoothed   bool      `json:"unsmoothed"`
	SDRStopRatio float64   `json:"sdr_stop_ratio"`
	NumAttrs     int       `json:"num_attrs"`
	Root         *jsonNode `json:"root"`
}

func toJSONNode(nd *node) *jsonNode {
	if nd == nil {
		return nil
	}
	return &jsonNode{
		Attr: nd.attr, Threshold: nd.threshold,
		Left: toJSONNode(nd.left), Right: toJSONNode(nd.right),
		LM: nd.lm, N: nd.n, Leaf: nd.leaf,
	}
}

func fromJSONNode(jn *jsonNode) (*node, error) {
	if jn == nil {
		return nil, nil
	}
	if len(jn.LM) == 0 {
		return nil, errors.New("m5p: serialized node has no linear model")
	}
	nd := &node{attr: jn.Attr, threshold: jn.Threshold, lm: jn.LM, n: jn.N, leaf: jn.Leaf}
	if !nd.leaf {
		var err error
		if nd.left, err = fromJSONNode(jn.Left); err != nil {
			return nil, err
		}
		if nd.right, err = fromJSONNode(jn.Right); err != nil {
			return nil, err
		}
		if nd.left == nil || nd.right == nil {
			return nil, errors.New("m5p: interior node missing a child")
		}
	}
	return nd, nil
}

// MarshalJSON implements json.Marshaler for a fitted model.
func (m *Model) MarshalJSON() ([]byte, error) {
	if m.root == nil {
		return nil, errors.New("m5p: cannot marshal an unfitted model")
	}
	return json.Marshal(jsonModel{
		MinInstances: m.MinInstances, SmoothingK: m.SmoothingK,
		Unsmoothed: m.Unsmoothed, SDRStopRatio: m.SDRStopRatio,
		NumAttrs: m.numAttrs, Root: toJSONNode(m.root),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Model) UnmarshalJSON(data []byte) error {
	var jm jsonModel
	if err := json.Unmarshal(data, &jm); err != nil {
		return err
	}
	if jm.Root == nil {
		return errors.New("m5p: serialized model has no root")
	}
	root, err := fromJSONNode(jm.Root)
	if err != nil {
		return err
	}
	m.MinInstances = jm.MinInstances
	m.SmoothingK = jm.SmoothingK
	m.Unsmoothed = jm.Unsmoothed
	m.SDRStopRatio = jm.SDRStopRatio
	m.numAttrs = jm.NumAttrs
	m.root = root
	return nil
}
