// Package ml is the from-scratch machine-learning framework standing in for
// WEKA in the reproduction. It provides the dataset container, the
// Regressor interface implemented by the four algorithms the paper
// evaluates (linear regression, multilayer perceptron, M5P, REPTree), the
// 10-fold cross-validation protocol, and the paper's evaluation metrics —
// most importantly Eq. 1's percentage error rate:
//
//	error rate = |expected − predicted| / expected × 100
//
// averaged over all cross-validation predictions, plus the "ignore
// differences below 1 °C" gated variant discussed in §IV-A.
package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Dataset is a supervised regression dataset: one float feature vector and
// one target per instance.
type Dataset struct {
	// AttrNames names the feature columns.
	AttrNames []string
	// X holds one feature vector per instance.
	X [][]float64
	// Y holds one target per instance.
	Y []float64
}

// NewDataset creates an empty dataset with the given feature names.
func NewDataset(attrNames ...string) *Dataset {
	return &Dataset{AttrNames: attrNames}
}

// Add appends an instance. It panics if the feature vector width does not
// match the declared attributes — that is always a pipeline bug.
func (d *Dataset) Add(x []float64, y float64) {
	if len(x) != len(d.AttrNames) {
		panic(fmt.Sprintf("ml: instance has %d features, dataset declares %d", len(x), len(d.AttrNames)))
	}
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.X) }

// NumAttrs returns the number of features.
func (d *Dataset) NumAttrs() int { return len(d.AttrNames) }

// Subset returns a dataset containing the instances at the given indices.
// Feature slices are shared, not copied.
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{AttrNames: d.AttrNames, X: make([][]float64, 0, len(idx)), Y: make([]float64, 0, len(idx))}
	for _, i := range idx {
		s.X = append(s.X, d.X[i])
		s.Y = append(s.Y, d.Y[i])
	}
	return s
}

// Shuffled returns a copy of the dataset with instances permuted by the
// seeded RNG.
func (d *Dataset) Shuffled(seed int64) *Dataset {
	perm := rand.New(rand.NewSource(seed)).Perm(d.Len())
	return d.Subset(perm)
}

// Split partitions the dataset into a head of ceil(frac·n) instances and
// the remaining tail, preserving order. Use after Shuffled for a random
// split.
func (d *Dataset) Split(frac float64) (head, tail *Dataset) {
	n := d.Len()
	k := int(math.Ceil(frac * float64(n)))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	idxHead := make([]int, k)
	for i := range idxHead {
		idxHead[i] = i
	}
	idxTail := make([]int, n-k)
	for i := range idxTail {
		idxTail[i] = k + i
	}
	return d.Subset(idxHead), d.Subset(idxTail)
}

// TargetStats returns the mean and population standard deviation of Y.
func (d *Dataset) TargetStats() (mean, std float64) {
	if d.Len() == 0 {
		return 0, 0
	}
	for _, y := range d.Y {
		mean += y
	}
	mean /= float64(d.Len())
	for _, y := range d.Y {
		diff := y - mean
		std += diff * diff
	}
	std = math.Sqrt(std / float64(d.Len()))
	return mean, std
}

// Regressor is a trainable single-target regression model.
type Regressor interface {
	// Name identifies the algorithm in reports ("REPTree", "M5P", ...).
	Name() string
	// Fit trains the model on the dataset.
	Fit(d *Dataset) error
	// Predict returns the model output for one feature vector. Calling
	// Predict before a successful Fit is a programming error and may panic.
	Predict(x []float64) float64
}

// ErrEmptyDataset is returned by Fit implementations given no instances.
var ErrEmptyDataset = errors.New("ml: empty dataset")

// CrossValidate runs k-fold cross-validation: the dataset is shuffled with
// the seed, split into k folds, and each fold is predicted by a model
// trained on the other k−1. It returns (expected, predicted) pairs aligned
// with each other (in shuffled order).
func CrossValidate(factory func() Regressor, d *Dataset, k int, seed int64) (expected, predicted []float64, err error) {
	n := d.Len()
	if n == 0 {
		return nil, nil, ErrEmptyDataset
	}
	if k < 2 {
		return nil, nil, fmt.Errorf("ml: cross-validation needs k >= 2, got %d", k)
	}
	if k > n {
		k = n
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	for fi, test := range folds {
		var trainIdx []int
		for fj, f := range folds {
			if fj != fi {
				trainIdx = append(trainIdx, f...)
			}
		}
		m := factory()
		if err := m.Fit(d.Subset(trainIdx)); err != nil {
			return nil, nil, fmt.Errorf("ml: fold %d: %w", fi, err)
		}
		for _, ti := range test {
			expected = append(expected, d.Y[ti])
			predicted = append(predicted, m.Predict(d.X[ti]))
		}
	}
	return expected, predicted, nil
}

// ErrorRate is the paper's Eq. 1 averaged over all predictions:
// mean(|expected − predicted| / expected) × 100. Instances with an expected
// value of zero are skipped (the metric is undefined there; temperatures in
// °C never hit exactly zero in practice).
func ErrorRate(expected, predicted []float64) float64 {
	var sum float64
	n := 0
	for i := range expected {
		if expected[i] == 0 {
			continue
		}
		sum += math.Abs(expected[i]-predicted[i]) / math.Abs(expected[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n) * 100
}

// GatedErrorRate is ErrorRate with absolute errors below gate treated as
// zero — the paper's "ignore temperature differences less than 1 °C, as
// humans are less sensitive in that range" variant (§IV-A).
func GatedErrorRate(expected, predicted []float64, gate float64) float64 {
	var sum float64
	n := 0
	for i := range expected {
		if expected[i] == 0 {
			continue
		}
		if diff := math.Abs(expected[i] - predicted[i]); diff >= gate {
			sum += diff / math.Abs(expected[i])
		}
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n) * 100
}

// MAE returns the mean absolute error.
func MAE(expected, predicted []float64) float64 {
	if len(expected) == 0 {
		return 0
	}
	var s float64
	for i := range expected {
		s += math.Abs(expected[i] - predicted[i])
	}
	return s / float64(len(expected))
}

// RMSE returns the root mean squared error.
func RMSE(expected, predicted []float64) float64 {
	if len(expected) == 0 {
		return 0
	}
	var s float64
	for i := range expected {
		d := expected[i] - predicted[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(expected)))
}

// R2 returns the coefficient of determination (1 − SSres/SStot); 1 is a
// perfect fit, 0 matches predicting the mean.
func R2(expected, predicted []float64) float64 {
	if len(expected) == 0 {
		return 0
	}
	var mean float64
	for _, e := range expected {
		mean += e
	}
	mean /= float64(len(expected))
	var ssRes, ssTot float64
	for i := range expected {
		r := expected[i] - predicted[i]
		t := expected[i] - mean
		ssRes += r * r
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
