// Package tree implements REPTree: a fast variance-reduction regression
// tree with reduced-error pruning on a held-out subset, matching the WEKA
// algorithm the paper selects for its run-time predictor ("REPtree builds
// faster than M5P and does not cause halting", §IV-A).
//
// Growing minimizes the summed squared error of the two children over all
// (attribute, threshold) candidates; pruning holds out one fold of the
// training data (default one third) and collapses any subtree whose
// held-out error is no better than predicting its mean.
package tree

import (
	"math"
	"math/rand"

	"repro/internal/ml"
)

// Model is a REPTree regressor. The zero value uses the package defaults at
// Fit time; construct with New for explicit seeding.
type Model struct {
	// MinInstances is the minimum number of training instances in a leaf
	// (default 2, WEKA's -M).
	MinInstances int
	// MaxDepth limits tree depth; 0 or negative means unlimited (WEKA -L).
	MaxDepth int
	// PruneFolds controls reduced-error pruning: one fold in PruneFolds is
	// held out for pruning (default 3, WEKA -N). Set to 1 to disable
	// pruning and grow on all data.
	PruneFolds int
	// Seed drives the grow/prune shuffle.
	Seed int64

	root *node
}

var _ ml.Regressor = (*Model)(nil)

type node struct {
	attr      int
	threshold float64
	left      *node
	right     *node
	value     float64 // mean target of growing instances at this node
	leaf      bool
	n         int
}

// New returns a REPTree with WEKA-like defaults.
func New(seed int64) *Model {
	return &Model{MinInstances: 2, PruneFolds: 3, Seed: seed}
}

// Name implements ml.Regressor.
func (m *Model) Name() string { return "REPTree" }

// Fit implements ml.Regressor.
func (m *Model) Fit(d *ml.Dataset) error {
	if d.Len() == 0 {
		return ml.ErrEmptyDataset
	}
	minInst := m.MinInstances
	if minInst < 1 {
		minInst = 2
	}
	folds := m.PruneFolds
	if folds == 0 {
		folds = 3
	}

	growIdx := make([]int, 0, d.Len())
	pruneIdx := make([]int, 0, d.Len()/2)
	if folds > 1 && d.Len() >= 2*folds {
		perm := rand.New(rand.NewSource(m.Seed)).Perm(d.Len())
		for i, p := range perm {
			if i%folds == 0 {
				pruneIdx = append(pruneIdx, p)
			} else {
				growIdx = append(growIdx, p)
			}
		}
	} else {
		for i := 0; i < d.Len(); i++ {
			growIdx = append(growIdx, i)
		}
	}

	g := &grower{d: d, minInst: minInst, maxDepth: m.MaxDepth}
	m.root = g.grow(growIdx, 0)
	if len(pruneIdx) > 0 {
		pruneREP(m.root, d, pruneIdx)
	}
	return nil
}

type grower struct {
	d        *ml.Dataset
	minInst  int
	maxDepth int
}

func meanOf(d *ml.Dataset, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += d.Y[i]
	}
	return s / float64(len(idx))
}

func (g *grower) grow(idx []int, depth int) *node {
	nd := &node{value: meanOf(g.d, idx), n: len(idx), leaf: true}
	if len(idx) < 2*g.minInst {
		return nd
	}
	if g.maxDepth > 0 && depth >= g.maxDepth {
		return nd
	}
	attr, thr, ok := g.bestSplit(idx)
	if !ok {
		return nd
	}
	var left, right []int
	for _, i := range idx {
		if g.d.X[i][attr] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < g.minInst || len(right) < g.minInst {
		return nd
	}
	nd.leaf = false
	nd.attr = attr
	nd.threshold = thr
	nd.left = g.grow(left, depth+1)
	nd.right = g.grow(right, depth+1)
	return nd
}

// bestSplit scans every attribute with a sort + prefix-sum sweep, returning
// the (attribute, threshold) pair minimizing the children's summed squared
// error. ok is false when no split separates the data.
func (g *grower) bestSplit(idx []int) (attr int, threshold float64, ok bool) {
	bestSSE := math.Inf(1)
	n := len(idx)
	order := make([]int, n)
	for a := 0; a < g.d.NumAttrs(); a++ {
		copy(order, idx)
		sortByAttr(order, g.d, a)

		// Suffix statistics of the whole node.
		var sumAll, sumSqAll float64
		for _, i := range order {
			sumAll += g.d.Y[i]
			sumSqAll += g.d.Y[i] * g.d.Y[i]
		}
		var sumL, sumSqL float64
		for p := 0; p < n-1; p++ {
			y := g.d.Y[order[p]]
			sumL += y
			sumSqL += y * y
			xCur := g.d.X[order[p]][a]
			xNext := g.d.X[order[p+1]][a]
			if xCur == xNext {
				continue // can only split between distinct values
			}
			if p+1 < g.minInst || n-p-1 < g.minInst {
				continue
			}
			nl := float64(p + 1)
			nr := float64(n - p - 1)
			sumR := sumAll - sumL
			sumSqR := sumSqAll - sumSqL
			sse := (sumSqL - sumL*sumL/nl) + (sumSqR - sumR*sumR/nr)
			if sse < bestSSE {
				bestSSE = sse
				attr = a
				threshold = (xCur + xNext) / 2
				ok = true
			}
		}
	}
	return attr, threshold, ok
}

func sortByAttr(order []int, d *ml.Dataset, a int) {
	// Insertion-free: use sort.Slice equivalent via stdlib.
	quickSort(order, func(i, j int) bool { return d.X[i][a] < d.X[j][a] })
}

// quickSort sorts idx with the given less function. Extracted so the hot
// path avoids interface allocations in sort.Slice.
func quickSort(idx []int, less func(a, b int) bool) {
	if len(idx) < 12 {
		for i := 1; i < len(idx); i++ {
			for j := i; j > 0 && less(idx[j], idx[j-1]); j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
		return
	}
	pivot := idx[len(idx)/2]
	lo, hi := 0, len(idx)-1
	for lo <= hi {
		for less(idx[lo], pivot) {
			lo++
		}
		for less(pivot, idx[hi]) {
			hi--
		}
		if lo <= hi {
			idx[lo], idx[hi] = idx[hi], idx[lo]
			lo++
			hi--
		}
	}
	quickSort(idx[:hi+1], less)
	quickSort(idx[lo:], less)
}

// pruneREP performs bottom-up reduced-error pruning: a subtree collapses to
// a leaf when the held-out squared error of its mean is no worse than the
// subtree's. Nodes that receive no pruning instances are left as grown.
// It returns the subtree's held-out SSE after pruning.
func pruneREP(nd *node, d *ml.Dataset, idx []int) float64 {
	sseLeaf := 0.0
	for _, i := range idx {
		diff := d.Y[i] - nd.value
		sseLeaf += diff * diff
	}
	if nd.leaf {
		return sseLeaf
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][nd.attr] <= nd.threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	sseSub := pruneREP(nd.left, d, left) + pruneREP(nd.right, d, right)
	if len(idx) > 0 && sseLeaf <= sseSub {
		nd.leaf = true
		nd.left, nd.right = nil, nil
		return sseLeaf
	}
	return sseSub
}

// Predict implements ml.Regressor.
func (m *Model) Predict(x []float64) float64 {
	if m.root == nil {
		panic("tree: Predict before Fit")
	}
	nd := m.root
	for !nd.leaf {
		if x[nd.attr] <= nd.threshold {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.value
}

// NumNodes returns the node count of the fitted tree (0 before Fit).
func (m *Model) NumNodes() int { return countNodes(m.root) }

func countNodes(nd *node) int {
	if nd == nil {
		return 0
	}
	if nd.leaf {
		return 1
	}
	return 1 + countNodes(nd.left) + countNodes(nd.right)
}

// Depth returns the depth of the fitted tree (a lone leaf has depth 1).
func (m *Model) Depth() int { return depthOf(m.root) }

func depthOf(nd *node) int {
	if nd == nil {
		return 0
	}
	if nd.leaf {
		return 1
	}
	l, r := depthOf(nd.left), depthOf(nd.right)
	if l > r {
		return 1 + l
	}
	return 1 + r
}
