package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ml"
)

func TestFitsPiecewiseConstant(t *testing.T) {
	d := ml.NewDataset("x")
	for i := 0; i < 200; i++ {
		x := float64(i) / 200
		y := 10.0
		if x > 0.5 {
			y = 20
		}
		d.Add([]float64{x}, y)
	}
	m := New(1)
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{0.25}); math.Abs(p-10) > 0.01 {
		t.Fatalf("Predict(0.25) = %v want 10", p)
	}
	if p := m.Predict([]float64{0.75}); math.Abs(p-20) > 0.01 {
		t.Fatalf("Predict(0.75) = %v want 20", p)
	}
}

func TestMultiDimensionalSplit(t *testing.T) {
	// y depends only on the second attribute; the tree must find it.
	rng := rand.New(rand.NewSource(1))
	d := ml.NewDataset("noise", "signal")
	for i := 0; i < 400; i++ {
		noise := rng.Float64()
		sig := rng.Float64()
		y := 5.0
		if sig > 0.6 {
			y = 15
		}
		d.Add([]float64{noise, sig}, y)
	}
	m := New(2)
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{0.1, 0.9}); math.Abs(p-15) > 1 {
		t.Fatalf("Predict = %v want ≈15", p)
	}
	if p := m.Predict([]float64{0.9, 0.1}); math.Abs(p-5) > 1 {
		t.Fatalf("Predict = %v want ≈5", p)
	}
}

func TestPruningShrinksNoisyTree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := ml.NewDataset("x")
	for i := 0; i < 500; i++ {
		x := rng.Float64()
		d.Add([]float64{x}, 3+rng.NormFloat64()) // pure noise around 3
	}
	pruned := New(3)
	if err := pruned.Fit(d); err != nil {
		t.Fatal(err)
	}
	unpruned := New(3)
	unpruned.PruneFolds = 1 // disables pruning
	if err := unpruned.Fit(d); err != nil {
		t.Fatal(err)
	}
	if pruned.NumNodes() >= unpruned.NumNodes() {
		t.Fatalf("pruning did not shrink the tree: %d vs %d nodes",
			pruned.NumNodes(), unpruned.NumNodes())
	}
	// On pure noise the pruned tree should be close to a stump.
	if pruned.NumNodes() > unpruned.NumNodes()/4 {
		t.Fatalf("pruned tree still large on pure noise: %d nodes (unpruned %d)",
			pruned.NumNodes(), unpruned.NumNodes())
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := ml.NewDataset("x")
	for i := 0; i < 500; i++ {
		x := rng.Float64()
		d.Add([]float64{x}, math.Sin(10*x))
	}
	m := New(4)
	m.MaxDepth = 3
	m.PruneFolds = 1
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := m.Depth(); got > 4 { // depth counts nodes on the path, so limit+1
		t.Fatalf("Depth = %d exceeds MaxDepth", got)
	}
}

func TestMinInstancesRespected(t *testing.T) {
	d := ml.NewDataset("x")
	for i := 0; i < 20; i++ {
		d.Add([]float64{float64(i)}, float64(i%2)*10)
	}
	m := New(5)
	m.MinInstances = 10
	m.PruneFolds = 1
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() > 3 {
		t.Fatalf("MinInstances=10 on 20 rows allows at most one split, got %d nodes", m.NumNodes())
	}
}

func TestSingleInstance(t *testing.T) {
	d := ml.NewDataset("x")
	d.Add([]float64{1}, 5)
	m := New(6)
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{99}); p != 5 {
		t.Fatalf("Predict = %v want 5", p)
	}
}

func TestConstantTarget(t *testing.T) {
	d := ml.NewDataset("x")
	for i := 0; i < 50; i++ {
		d.Add([]float64{float64(i)}, 7)
	}
	m := New(7)
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 1 {
		t.Fatalf("constant target should give a stump, got %d nodes", m.NumNodes())
	}
	if p := m.Predict([]float64{25}); p != 7 {
		t.Fatalf("Predict = %v want 7", p)
	}
}

func TestDuplicateFeatureValuesNoSplit(t *testing.T) {
	d := ml.NewDataset("x")
	for i := 0; i < 50; i++ {
		d.Add([]float64{1}, float64(i)) // identical features, varied target
	}
	m := New(8)
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 1 {
		t.Fatalf("identical features cannot be split, got %d nodes", m.NumNodes())
	}
}

func TestEmptyDataset(t *testing.T) {
	if err := New(1).Fit(ml.NewDataset("x")); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Predict([]float64{1})
}

func TestDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := ml.NewDataset("a", "b")
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		d.Add(x, x[0]*10+rng.NormFloat64())
	}
	a, b := New(5), New(5)
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same-seed trees diverge")
		}
	}
}

func TestName(t *testing.T) {
	if New(1).Name() != "REPTree" {
		t.Fatalf("Name = %q", New(1).Name())
	}
}

// Property: predictions always lie within the training target range.
func TestPredictionRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := ml.NewDataset("a", "b")
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 500; i++ {
		x := []float64{rng.Float64() * 100, rng.Float64() * 10}
		y := x[0] - 3*x[1] + rng.NormFloat64()*5
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
		d.Add(x, y)
	}
	m := New(11)
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		x := []float64{math.Mod(math.Abs(a), 200) - 50, math.Mod(math.Abs(b), 20) - 5}
		p := m.Predict(x)
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a deeper tree (no pruning) never increases training error on
// clean (noise-free) data versus a pruned one.
func TestTrainingErrorImprovesWithGrowthProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := ml.NewDataset("x")
	for i := 0; i < 400; i++ {
		x := rng.Float64() * 10
		d.Add([]float64{x}, math.Floor(x)) // staircase, perfectly learnable
	}
	full := New(12)
	full.PruneFolds = 1
	if err := full.Fit(d); err != nil {
		t.Fatal(err)
	}
	var mae float64
	for i := range d.X {
		mae += math.Abs(full.Predict(d.X[i]) - d.Y[i])
	}
	mae /= float64(d.Len())
	if mae > 0.01 {
		t.Fatalf("unpruned tree should nail a staircase: MAE = %v", mae)
	}
}

func TestAccuracyBeatsLinearOnStepData(t *testing.T) {
	// A step function is trivially captured by a tree but poorly by a line —
	// the qualitative reason REPTree/M5P beat LinearRegression in Figure 3.
	rng := rand.New(rand.NewSource(12))
	d := ml.NewDataset("x")
	for i := 0; i < 600; i++ {
		x := rng.Float64()
		y := 30.0
		if x > 0.3 {
			y = 36
		}
		if x > 0.7 {
			y = 43
		}
		d.Add([]float64{x}, y+rng.NormFloat64()*0.1)
	}
	expT, predT, err := ml.CrossValidate(func() ml.Regressor { return New(13) }, d, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rmse := ml.RMSE(expT, predT); rmse > 0.5 {
		t.Fatalf("tree RMSE on step data = %v want < 0.5", rmse)
	}
}
