package tree

// JSON persistence for trained trees: a fitted REPTree is what the paper
// ships to the phone, so the model must be serializable independent of the
// training pipeline.

import (
	"encoding/json"
	"errors"
)

type jsonNode struct {
	Attr      int       `json:"attr,omitempty"`
	Threshold float64   `json:"thr,omitempty"`
	Left      *jsonNode `json:"l,omitempty"`
	Right     *jsonNode `json:"r,omitempty"`
	Value     float64   `json:"v"`
	Leaf      bool      `json:"leaf"`
	N         int       `json:"n,omitempty"`
}

type jsonModel struct {
	MinInstances int       `json:"min_instances"`
	MaxDepth     int       `json:"max_depth"`
	PruneFolds   int       `json:"prune_folds"`
	Seed         int64     `json:"seed"`
	Root         *jsonNode `json:"root"`
}

func toJSONNode(nd *node) *jsonNode {
	if nd == nil {
		return nil
	}
	return &jsonNode{
		Attr: nd.attr, Threshold: nd.threshold,
		Left: toJSONNode(nd.left), Right: toJSONNode(nd.right),
		Value: nd.value, Leaf: nd.leaf, N: nd.n,
	}
}

func fromJSONNode(jn *jsonNode) (*node, error) {
	if jn == nil {
		return nil, nil
	}
	nd := &node{attr: jn.Attr, threshold: jn.Threshold, value: jn.Value, leaf: jn.Leaf, n: jn.N}
	if !nd.leaf {
		var err error
		if nd.left, err = fromJSONNode(jn.Left); err != nil {
			return nil, err
		}
		if nd.right, err = fromJSONNode(jn.Right); err != nil {
			return nil, err
		}
		if nd.left == nil || nd.right == nil {
			return nil, errors.New("tree: interior node missing a child")
		}
	}
	return nd, nil
}

// MarshalJSON implements json.Marshaler for a fitted model.
func (m *Model) MarshalJSON() ([]byte, error) {
	if m.root == nil {
		return nil, errors.New("tree: cannot marshal an unfitted model")
	}
	return json.Marshal(jsonModel{
		MinInstances: m.MinInstances, MaxDepth: m.MaxDepth,
		PruneFolds: m.PruneFolds, Seed: m.Seed,
		Root: toJSONNode(m.root),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Model) UnmarshalJSON(data []byte) error {
	var jm jsonModel
	if err := json.Unmarshal(data, &jm); err != nil {
		return err
	}
	if jm.Root == nil {
		return errors.New("tree: serialized model has no root")
	}
	root, err := fromJSONNode(jm.Root)
	if err != nil {
		return err
	}
	m.MinInstances = jm.MinInstances
	m.MaxDepth = jm.MaxDepth
	m.PruneFolds = jm.PruneFolds
	m.Seed = jm.Seed
	m.root = root
	return nil
}
