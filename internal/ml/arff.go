package ml

// ARFF import/export. The paper's authors trained their models in WEKA,
// whose native corpus format is ARFF; supporting it lets a user move the
// simulated corpus into real WEKA (or a real device's WEKA-collected log
// into this library) unchanged. Only the numeric subset of ARFF is
// implemented — every attribute in this problem is numeric.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteARFF writes the dataset in ARFF format with the given relation name.
// The target is emitted as the final attribute, named "target".
func WriteARFF(w io.Writer, relation string, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if relation == "" {
		relation = "dataset"
	}
	fmt.Fprintf(bw, "@RELATION %s\n\n", sanitizeName(relation))
	for _, a := range d.AttrNames {
		fmt.Fprintf(bw, "@ATTRIBUTE %s NUMERIC\n", sanitizeName(a))
	}
	fmt.Fprintf(bw, "@ATTRIBUTE target NUMERIC\n\n@DATA\n")
	for i, x := range d.X {
		for _, v := range x {
			fmt.Fprintf(bw, "%g,", v)
		}
		fmt.Fprintf(bw, "%g\n", d.Y[i])
	}
	return bw.Flush()
}

func sanitizeName(s string) string {
	if strings.ContainsAny(s, " \t,") {
		return "'" + s + "'"
	}
	return s
}

// ReadARFF parses a numeric-only ARFF stream. The final attribute becomes
// the dataset target. Nominal attributes, sparse data and quoted strings
// with embedded commas are not supported and return an error.
func ReadARFF(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	var attrs []string
	inData := false
	var d *Dataset
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		lower := strings.ToLower(text)
		switch {
		case strings.HasPrefix(lower, "@relation"):
			// Name is informational only.
		case strings.HasPrefix(lower, "@attribute"):
			if inData {
				return nil, fmt.Errorf("ml: arff line %d: @attribute after @data", line)
			}
			fields := strings.Fields(text)
			if len(fields) < 3 {
				return nil, fmt.Errorf("ml: arff line %d: malformed @attribute", line)
			}
			typ := strings.ToLower(fields[len(fields)-1])
			if typ != "numeric" && typ != "real" && typ != "integer" {
				return nil, fmt.Errorf("ml: arff line %d: unsupported attribute type %q", line, fields[len(fields)-1])
			}
			attrs = append(attrs, strings.Trim(fields[1], "'"))
		case strings.HasPrefix(lower, "@data"):
			if len(attrs) < 2 {
				return nil, fmt.Errorf("ml: arff needs at least one feature and a target")
			}
			d = NewDataset(attrs[:len(attrs)-1]...)
			inData = true
		default:
			if !inData {
				return nil, fmt.Errorf("ml: arff line %d: data before @data", line)
			}
			parts := strings.Split(text, ",")
			if len(parts) != len(attrs) {
				return nil, fmt.Errorf("ml: arff line %d: %d values for %d attributes", line, len(parts), len(attrs))
			}
			row := make([]float64, len(parts)-1)
			for i, p := range parts[:len(parts)-1] {
				v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
				if err != nil {
					return nil, fmt.Errorf("ml: arff line %d: %w", line, err)
				}
				row[i] = v
			}
			y, err := strconv.ParseFloat(strings.TrimSpace(parts[len(parts)-1]), 64)
			if err != nil {
				return nil, fmt.Errorf("ml: arff line %d: %w", line, err)
			}
			d.Add(row, y)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if d == nil {
		return nil, fmt.Errorf("ml: arff stream has no @data section")
	}
	return d, nil
}
