package ml

// Permutation feature importance: how much does a fitted model's error grow
// when one feature column is shuffled? This quantifies which observables
// actually carry the skin-temperature signal — on the paper's feature
// tuple it shows the battery temperature dominating (it is physically
// adjacent to the back cover), with CPU temperature, frequency and
// utilization refining the transient.

import (
	"fmt"
	"math/rand"
)

// Importance is one feature's permutation score.
type Importance struct {
	Attr string
	// BaseMAE is the unpermuted error, PermMAE the error with this feature
	// shuffled; Increase = PermMAE − BaseMAE (bigger = more important).
	BaseMAE, PermMAE, Increase float64
}

// PermutationImportance evaluates a fitted model on d and returns one
// Importance per attribute, in attribute order. The model is not refit;
// predictions use a shuffled copy of each column in turn.
func PermutationImportance(m Regressor, d *Dataset, seed int64) ([]Importance, error) {
	if d.Len() == 0 {
		return nil, ErrEmptyDataset
	}
	base := 0.0
	for i, x := range d.X {
		diff := m.Predict(x) - d.Y[i]
		if diff < 0 {
			diff = -diff
		}
		base += diff
	}
	base /= float64(d.Len())

	out := make([]Importance, d.NumAttrs())
	rng := rand.New(rand.NewSource(seed))
	row := make([]float64, d.NumAttrs())
	for a := 0; a < d.NumAttrs(); a++ {
		perm := rng.Perm(d.Len())
		var mae float64
		for i, x := range d.X {
			copy(row, x)
			row[a] = d.X[perm[i]][a]
			diff := m.Predict(row) - d.Y[i]
			if diff < 0 {
				diff = -diff
			}
			mae += diff
		}
		mae /= float64(d.Len())
		out[a] = Importance{
			Attr:    d.AttrNames[a],
			BaseMAE: base, PermMAE: mae, Increase: mae - base,
		}
	}
	return out, nil
}

// String renders the score.
func (im Importance) String() string {
	return fmt.Sprintf("%s: +%.3f (%.3f -> %.3f MAE)", im.Attr, im.Increase, im.BaseMAE, im.PermMAE)
}
