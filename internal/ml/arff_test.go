package ml

import (
	"strings"
	"testing"
)

func TestARFFRoundTrip(t *testing.T) {
	d := NewDataset("cpu_temp_c", "cpu_util")
	d.Add([]float64{55.5, 0.8}, 38.2)
	d.Add([]float64{42.1, 0.3}, 33.0)

	var sb strings.Builder
	if err := WriteARFF(&sb, "usta corpus", d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadARFF(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if got.Len() != 2 || got.NumAttrs() != 2 {
		t.Fatalf("round trip shape: %d x %d", got.Len(), got.NumAttrs())
	}
	for i := range d.Y {
		if got.Y[i] != d.Y[i] {
			t.Fatalf("target[%d] = %v want %v", i, got.Y[i], d.Y[i])
		}
		for j := range d.X[i] {
			if got.X[i][j] != d.X[i][j] {
				t.Fatalf("X[%d][%d] = %v want %v", i, j, got.X[i][j], d.X[i][j])
			}
		}
	}
	if got.AttrNames[0] != "cpu_temp_c" {
		t.Fatalf("attr name = %q", got.AttrNames[0])
	}
}

func TestARFFQuotesSpacedNames(t *testing.T) {
	d := NewDataset("has space")
	d.Add([]float64{1}, 2)
	var sb strings.Builder
	if err := WriteARFF(&sb, "rel name", d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "'has space'") {
		t.Fatalf("spaced attribute not quoted:\n%s", sb.String())
	}
}

func TestARFFReadSkipsCommentsAndBlanks(t *testing.T) {
	in := `% a comment
@RELATION test

@ATTRIBUTE x NUMERIC
@ATTRIBUTE target NUMERIC

@DATA
% data comment
1.5, 3.0

2.5, 5.0
`
	d, err := ReadARFF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d want 2", d.Len())
	}
	if d.Y[1] != 5 {
		t.Fatalf("Y[1] = %v", d.Y[1])
	}
}

func TestARFFReadErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no data section", "@RELATION r\n@ATTRIBUTE x NUMERIC\n@ATTRIBUTE target NUMERIC\n"},
		{"nominal attribute", "@RELATION r\n@ATTRIBUTE x {a,b}\n@ATTRIBUTE target NUMERIC\n@DATA\na,1\n"},
		{"data before @data", "@RELATION r\n1,2\n"},
		{"arity mismatch", "@RELATION r\n@ATTRIBUTE x NUMERIC\n@ATTRIBUTE target NUMERIC\n@DATA\n1,2,3\n"},
		{"bad number", "@RELATION r\n@ATTRIBUTE x NUMERIC\n@ATTRIBUTE target NUMERIC\n@DATA\nfoo,2\n"},
		{"bad target", "@RELATION r\n@ATTRIBUTE x NUMERIC\n@ATTRIBUTE target NUMERIC\n@DATA\n1,bar\n"},
		{"attribute after data", "@RELATION r\n@ATTRIBUTE x NUMERIC\n@ATTRIBUTE target NUMERIC\n@DATA\n@ATTRIBUTE y NUMERIC\n"},
		{"too few attributes", "@RELATION r\n@ATTRIBUTE x NUMERIC\n@DATA\n1\n"},
		{"malformed attribute", "@RELATION r\n@ATTRIBUTE x\n"},
	}
	for _, tc := range cases {
		if _, err := ReadARFF(strings.NewReader(tc.in)); err == nil {
			t.Fatalf("%s: error expected", tc.name)
		}
	}
}

func TestARFFTrainableAfterImport(t *testing.T) {
	// End to end: a corpus exported and re-imported trains identically.
	d := NewDataset("x")
	for i := 0; i < 50; i++ {
		v := float64(i)
		d.Add([]float64{v}, 2*v+1)
	}
	var sb strings.Builder
	if err := WriteARFF(&sb, "lin", d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadARFF(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	m := &meanModel{}
	if err := m.Fit(back); err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, y := range d.Y {
		want += y
	}
	want /= float64(d.Len())
	if got := m.Predict(nil); got != want {
		t.Fatalf("mean after round trip = %v want %v", got, want)
	}
}
