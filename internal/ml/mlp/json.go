package mlp

// JSON persistence for trained networks.

import (
	"encoding/json"
	"errors"
)

type jsonModel struct {
	Hidden       int         `json:"hidden"`
	LearningRate float64     `json:"learning_rate"`
	Momentum     float64     `json:"momentum"`
	Epochs       int         `json:"epochs"`
	Seed         int64       `json:"seed"`
	WIn          [][]float64 `json:"w_in"`
	WOut         []float64   `json:"w_out"`
	InLo         []float64   `json:"in_lo"`
	InHi         []float64   `json:"in_hi"`
	YLo          float64     `json:"y_lo"`
	YHi          float64     `json:"y_hi"`
}

// MarshalJSON implements json.Marshaler for a fitted model.
func (m *Model) MarshalJSON() ([]byte, error) {
	if !m.ready {
		return nil, errors.New("mlp: cannot marshal an unfitted model")
	}
	return json.Marshal(jsonModel{
		Hidden: m.Hidden, LearningRate: m.LearningRate, Momentum: m.Momentum,
		Epochs: m.Epochs, Seed: m.Seed,
		WIn: m.wIn, WOut: m.wOut, InLo: m.inLo, InHi: m.inHi,
		YLo: m.yLo, YHi: m.yHi,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Model) UnmarshalJSON(data []byte) error {
	var jm jsonModel
	if err := json.Unmarshal(data, &jm); err != nil {
		return err
	}
	if len(jm.WIn) == 0 || len(jm.WOut) != len(jm.WIn)+1 {
		return errors.New("mlp: serialized weight shapes are inconsistent")
	}
	for _, row := range jm.WIn {
		if len(row) != len(jm.InLo)+1 {
			return errors.New("mlp: serialized input weights do not match normalization range")
		}
	}
	m.Hidden = jm.Hidden
	m.LearningRate = jm.LearningRate
	m.Momentum = jm.Momentum
	m.Epochs = jm.Epochs
	m.Seed = jm.Seed
	m.wIn = jm.WIn
	m.wOut = jm.WOut
	m.inLo = jm.InLo
	m.inHi = jm.InHi
	m.yLo = jm.YLo
	m.yHi = jm.YHi
	m.ready = true
	return nil
}
