package mlp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml"
)

func TestLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := ml.NewDataset("x")
	for i := 0; i < 300; i++ {
		x := rng.Float64() * 10
		d.Add([]float64{x}, 2*x+1)
	}
	m := New(1)
	m.Epochs = 200
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	var mae float64
	for i := 0; i < 50; i++ {
		x := rng.Float64() * 10
		mae += math.Abs(m.Predict([]float64{x}) - (2*x + 1))
	}
	mae /= 50
	if mae > 0.5 {
		t.Fatalf("MLP MAE on linear data = %v want < 0.5", mae)
	}
}

func TestLearnsNonlinearFunction(t *testing.T) {
	// A regression tree baseline (predict the mean) has RMSE ≈ std(y); the
	// MLP must beat predicting the mean on a smooth nonlinear target.
	rng := rand.New(rand.NewSource(2))
	d := ml.NewDataset("x")
	target := func(x float64) float64 { return math.Sin(x) * 5 }
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 6
		d.Add([]float64{x}, target(x))
	}
	m := New(3)
	m.Hidden = 8
	m.Epochs = 400
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	var ssRes, ssTot float64
	_, std := d.TargetStats()
	mean, _ := d.TargetStats()
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 6
		y := target(x)
		p := m.Predict([]float64{x})
		ssRes += (y - p) * (y - p)
		ssTot += (y - mean) * (y - mean)
	}
	if ssRes >= ssTot*0.3 {
		t.Fatalf("MLP failed to capture sin(x): ssRes=%v ssTot=%v (std=%v)", ssRes, ssTot, std)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	d := ml.NewDataset("x")
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		x := rng.Float64()
		d.Add([]float64{x}, x*x)
	}
	a := New(42)
	a.Epochs = 50
	b := New(42)
	b.Epochs = 50
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		x := []float64{float64(i) / 10}
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same-seed MLPs diverge")
		}
	}
	c := New(43)
	c.Epochs = 50
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 10; i++ {
		x := []float64{float64(i) / 10}
		if a.Predict(x) != c.Predict(x) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical MLPs")
	}
}

func TestDefaultHiddenSize(t *testing.T) {
	d := ml.NewDataset("a", "b", "c", "d")
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		d.Add(x, x[0])
	}
	m := New(1)
	m.Epochs = 10
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if len(m.wIn) != 2 { // (4+1)/2 = 2
		t.Fatalf("default hidden size = %d want 2", len(m.wIn))
	}
}

func TestConstantFeatureHandled(t *testing.T) {
	d := ml.NewDataset("const", "x")
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		x := rng.Float64()
		d.Add([]float64{7, x}, 3*x)
	}
	m := New(1)
	m.Epochs = 100
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	p := m.Predict([]float64{7, 0.5})
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("constant feature produced %v", p)
	}
}

func TestConstantTargetHandled(t *testing.T) {
	d := ml.NewDataset("x")
	for i := 0; i < 20; i++ {
		d.Add([]float64{float64(i)}, 42)
	}
	m := New(1)
	m.Epochs = 10
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{5}); p != 42 {
		t.Fatalf("constant target prediction = %v want 42", p)
	}
}

func TestEmptyDataset(t *testing.T) {
	if err := New(1).Fit(ml.NewDataset("x")); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Predict([]float64{1})
}

func TestName(t *testing.T) {
	if New(1).Name() != "MultilayerPerceptron" {
		t.Fatalf("Name = %q", New(1).Name())
	}
}
