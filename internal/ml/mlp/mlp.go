// Package mlp implements a single-hidden-layer multilayer perceptron
// regressor with stochastic gradient descent and momentum — the paper's
// "multilayer perceptron" candidate, with WEKA's defaults: learning rate
// 0.3, momentum 0.2, 500 epochs, hidden size (attributes+1)/2, inputs and
// target min-max normalized to [−1,1], sigmoid hidden units and a linear
// output unit.
package mlp

import (
	"math"
	"math/rand"

	"repro/internal/ml"
)

// Model is an MLP regressor. Construct with New for WEKA-like defaults.
type Model struct {
	// Hidden is the hidden-layer width; 0 selects (attributes+1)/2, min 2.
	Hidden int
	// LearningRate is the SGD step size.
	LearningRate float64
	// Momentum is the SGD momentum coefficient.
	Momentum float64
	// Epochs is the number of full passes over the training data.
	Epochs int
	// Seed drives weight initialization and per-epoch shuffling.
	Seed int64

	// fitted state
	wIn   [][]float64 // [hidden][inputs+1], last column is bias
	wOut  []float64   // [hidden+1], last entry is bias
	inLo  []float64
	inHi  []float64
	yLo   float64
	yHi   float64
	ready bool
}

var _ ml.Regressor = (*Model)(nil)

// New returns an MLP with the WEKA defaults.
func New(seed int64) *Model {
	return &Model{LearningRate: 0.3, Momentum: 0.2, Epochs: 500, Seed: seed}
}

// Name implements ml.Regressor.
func (m *Model) Name() string { return "MultilayerPerceptron" }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Fit implements ml.Regressor.
func (m *Model) Fit(d *ml.Dataset) error {
	if d.Len() == 0 {
		return ml.ErrEmptyDataset
	}
	nin := d.NumAttrs()
	hidden := m.Hidden
	if hidden <= 0 {
		hidden = (nin + 1) / 2
		if hidden < 2 {
			hidden = 2
		}
	}
	epochs := m.Epochs
	if epochs <= 0 {
		epochs = 500
	}

	// Normalization ranges.
	m.inLo = make([]float64, nin)
	m.inHi = make([]float64, nin)
	for j := 0; j < nin; j++ {
		lo, hi := d.X[0][j], d.X[0][j]
		for _, x := range d.X {
			if x[j] < lo {
				lo = x[j]
			}
			if x[j] > hi {
				hi = x[j]
			}
		}
		m.inLo[j], m.inHi[j] = lo, hi
	}
	m.yLo, m.yHi = d.Y[0], d.Y[0]
	for _, y := range d.Y {
		if y < m.yLo {
			m.yLo = y
		}
		if y > m.yHi {
			m.yHi = y
		}
	}

	rng := rand.New(rand.NewSource(m.Seed))
	m.wIn = make([][]float64, hidden)
	dwIn := make([][]float64, hidden)
	for h := range m.wIn {
		m.wIn[h] = make([]float64, nin+1)
		dwIn[h] = make([]float64, nin+1)
		for j := range m.wIn[h] {
			m.wIn[h][j] = rng.Float64() - 0.5
		}
	}
	m.wOut = make([]float64, hidden+1)
	dwOut := make([]float64, hidden+1)
	for j := range m.wOut {
		m.wOut[j] = rng.Float64() - 0.5
	}

	xn := make([]float64, nin)
	act := make([]float64, hidden)
	order := make([]int, d.Len())
	for i := range order {
		order[i] = i
	}

	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			m.normalize(d.X[idx], xn)
			yt := m.normTarget(d.Y[idx])

			// Forward.
			out := m.wOut[hidden]
			for h := 0; h < hidden; h++ {
				s := m.wIn[h][nin]
				for j := 0; j < nin; j++ {
					s += m.wIn[h][j] * xn[j]
				}
				act[h] = sigmoid(s)
				out += m.wOut[h] * act[h]
			}

			// Backward (linear output, squared error).
			errOut := yt - out
			for h := 0; h < hidden; h++ {
				gOut := errOut * act[h]
				dwOut[h] = m.LearningRate*gOut + m.Momentum*dwOut[h]
				m.wOut[h] += dwOut[h]

				gHidden := errOut * m.wOut[h] * act[h] * (1 - act[h])
				for j := 0; j < nin; j++ {
					dwIn[h][j] = m.LearningRate*gHidden*xn[j] + m.Momentum*dwIn[h][j]
					m.wIn[h][j] += dwIn[h][j]
				}
				dwIn[h][nin] = m.LearningRate*gHidden + m.Momentum*dwIn[h][nin]
				m.wIn[h][nin] += dwIn[h][nin]
			}
			dwOut[hidden] = m.LearningRate*errOut + m.Momentum*dwOut[hidden]
			m.wOut[hidden] += dwOut[hidden]
		}
	}
	m.ready = true
	return nil
}

func (m *Model) normalize(x, dst []float64) {
	for j := range dst {
		lo, hi := m.inLo[j], m.inHi[j]
		if hi == lo {
			dst[j] = 0
			continue
		}
		dst[j] = 2*(x[j]-lo)/(hi-lo) - 1
	}
}

func (m *Model) normTarget(y float64) float64 {
	if m.yHi == m.yLo {
		return 0
	}
	return 2*(y-m.yLo)/(m.yHi-m.yLo) - 1
}

func (m *Model) denormTarget(t float64) float64 {
	if m.yHi == m.yLo {
		return m.yLo
	}
	return (t+1)/2*(m.yHi-m.yLo) + m.yLo
}

// Predict implements ml.Regressor.
func (m *Model) Predict(x []float64) float64 {
	if !m.ready {
		panic("mlp: Predict before Fit")
	}
	nin := len(m.inLo)
	xn := make([]float64, nin)
	m.normalize(x, xn)
	hidden := len(m.wIn)
	out := m.wOut[hidden]
	for h := 0; h < hidden; h++ {
		s := m.wIn[h][nin]
		for j := 0; j < nin; j++ {
			s += m.wIn[h][j] * xn[j]
		}
		out += m.wOut[h] * sigmoid(s)
	}
	return m.denormTarget(out)
}
