package governor

import (
	"math"
	"testing"
	"testing/quick"
)

var freqs = []float64{384, 486, 594, 702, 810, 918, 1026, 1134, 1242, 1350, 1458, 1512}

func TestOndemandJumpsToMaxAboveThreshold(t *testing.T) {
	g := NewOndemand(freqs)
	got := g.NextLevel(State{Util: 0.95, CurrentLevel: 2})
	if got != len(freqs)-1 {
		t.Fatalf("NextLevel = %d want top (%d)", got, len(freqs)-1)
	}
}

func TestOndemandExactThresholdDoesNotJump(t *testing.T) {
	g := NewOndemand(freqs)
	// Util exactly at the threshold uses the proportional path (matches the
	// kernel's strict ">" comparison).
	got := g.NextLevel(State{Util: 0.80, CurrentLevel: 11})
	if got == len(freqs)-1 {
		// From the top level, 0.80 util targets 1512*0.8/0.7 > 1512, so the
		// proportional path also lands on top; use a mid level instead.
		got = g.NextLevel(State{Util: 0.80, CurrentLevel: 5})
		if got == len(freqs)-1 {
			t.Fatalf("exact-threshold util from L5 should not jump to max, got %d", got)
		}
	}
}

func TestOndemandScalesDownProportionally(t *testing.T) {
	g := NewOndemand(freqs)
	// At the top level with 35% util: need = 1512*0.35/0.70 = 756 -> the
	// lowest OPP >= 756 is 810 (level 4).
	got := g.NextLevel(State{Util: 0.35, CurrentLevel: 11})
	if got != 4 {
		t.Fatalf("NextLevel = %d want 4", got)
	}
}

func TestOndemandSteepDropWhenIdle(t *testing.T) {
	g := NewOndemand(freqs)
	got := g.NextLevel(State{Util: 0.02, CurrentLevel: 11})
	if got != 0 {
		t.Fatalf("near-idle from top should fall to the floor, got L%d", got)
	}
}

func TestOndemandStaysWhenLoadMatches(t *testing.T) {
	g := NewOndemand(freqs)
	// Util just at the down-target from a mid level: need = f_cur, stays.
	got := g.NextLevel(State{Util: 0.70, CurrentLevel: 5})
	if got != 5 {
		t.Fatalf("NextLevel = %d want 5 (hold)", got)
	}
}

func TestOndemandClampsBadCurrentLevel(t *testing.T) {
	g := NewOndemand(freqs)
	if got := g.NextLevel(State{Util: 0.5, CurrentLevel: -7}); got < 0 || got >= len(freqs) {
		t.Fatalf("NextLevel out of range: %d", got)
	}
	if got := g.NextLevel(State{Util: 0.5, CurrentLevel: 99}); got < 0 || got >= len(freqs) {
		t.Fatalf("NextLevel out of range: %d", got)
	}
}

func TestOndemandConvergesToServingFrequency(t *testing.T) {
	// Closed loop: demand of 2400 core-MHz on a 4-core chip. Simulate the
	// util feedback and check ondemand settles on a level that serves the
	// demand below the up-threshold but without gross over-provisioning.
	g := NewOndemand(freqs)
	demand := 2400.0 // aggregate core-MHz
	level := 0
	for i := 0; i < 50; i++ {
		capacity := freqs[level] * 4
		util := demand / capacity
		if util > 1 {
			util = 1
		}
		level = g.NextLevel(State{Util: util, CurrentLevel: level})
	}
	capacity := freqs[level] * 4
	util := demand / capacity
	if util > 0.80 {
		t.Fatalf("converged level %d leaves util %.2f above the up-threshold", level, util)
	}
	if freqs[level] > 1242 {
		t.Fatalf("converged level %d (%v MHz) grossly over-provisions a 600 MHz/core demand", level, freqs[level])
	}
}

func TestPerformanceGovernor(t *testing.T) {
	g := &Performance{NumLevels: 12}
	if got := g.NextLevel(State{Util: 0}); got != 11 {
		t.Fatalf("NextLevel = %d want 11", got)
	}
	if g.Name() != "performance" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestPowersaveGovernor(t *testing.T) {
	g := &Powersave{}
	if got := g.NextLevel(State{Util: 1}); got != 0 {
		t.Fatalf("NextLevel = %d want 0", got)
	}
}

func TestConservativeStepsUpAndDown(t *testing.T) {
	g := NewConservative(12)
	if got := g.NextLevel(State{Util: 0.9, CurrentLevel: 5}); got != 6 {
		t.Fatalf("step up: got %d want 6", got)
	}
	if got := g.NextLevel(State{Util: 0.1, CurrentLevel: 5}); got != 4 {
		t.Fatalf("step down: got %d want 4", got)
	}
	if got := g.NextLevel(State{Util: 0.5, CurrentLevel: 5}); got != 5 {
		t.Fatalf("hold: got %d want 5", got)
	}
}

func TestConservativeSaturates(t *testing.T) {
	g := NewConservative(12)
	if got := g.NextLevel(State{Util: 0.9, CurrentLevel: 11}); got != 11 {
		t.Fatalf("top saturation: got %d", got)
	}
	if got := g.NextLevel(State{Util: 0.05, CurrentLevel: 0}); got != 0 {
		t.Fatalf("bottom saturation: got %d", got)
	}
}

func TestUserspacePins(t *testing.T) {
	g := &Userspace{Level: 7}
	if got := g.NextLevel(State{Util: 1}); got != 7 {
		t.Fatalf("NextLevel = %d want 7", got)
	}
	if g.Name() != "userspace(L7)" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestResetIsSafe(t *testing.T) {
	for _, g := range []Governor{
		NewOndemand(freqs), &Performance{NumLevels: 12}, &Powersave{},
		NewConservative(12), &Userspace{Level: 3},
	} {
		g.Reset()
		if lvl := g.NextLevel(State{Util: 0.5, CurrentLevel: 5}); lvl < 0 || lvl >= 12 {
			t.Fatalf("%s returned out-of-range level %d after Reset", g.Name(), lvl)
		}
	}
}

// Property: ondemand's decision is monotone in utilization for a fixed
// current level.
func TestOndemandMonotoneInUtilProperty(t *testing.T) {
	g := NewOndemand(freqs)
	f := func(rawU1, rawU2 float64, rawLvl uint8) bool {
		u1 := clamp01(rawU1)
		u2 := clamp01(rawU2)
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		lvl := int(rawLvl) % 12
		l1 := g.NextLevel(State{Util: u1, CurrentLevel: lvl})
		l2 := g.NextLevel(State{Util: u2, CurrentLevel: lvl})
		return l1 <= l2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every governor returns a level inside the table for any input.
func TestGovernorRangeProperty(t *testing.T) {
	govs := []Governor{
		NewOndemand(freqs), &Performance{NumLevels: 12}, &Powersave{},
		NewConservative(12), &Userspace{Level: 5},
	}
	f := func(rawU float64, rawLvl int16, which uint8) bool {
		g := govs[int(which)%len(govs)]
		lvl := g.NextLevel(State{Util: clamp01(rawU), CurrentLevel: int(rawLvl) % 14})
		return lvl >= 0 && lvl < 12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0.5
	}
	return math.Mod(math.Abs(v), 1)
}
