package governor

// Interactive reimplements the Android "interactive" cpufreq policy that
// succeeded ondemand on later handsets: on a load spike it jumps to an
// intermediate "hispeed" frequency rather than the maximum, holds a new
// frequency for a minimum dwell before ramping down, and otherwise scales
// to hold a target load. It is included as an additional baseline for
// governor-comparison studies; the paper's experiments all use ondemand.
type Interactive struct {
	// FreqsMHz is the ascending OPP frequency table.
	FreqsMHz []float64
	// GoHispeedLoad is the utilization that triggers the hispeed jump
	// (Android default 0.85).
	GoHispeedLoad float64
	// HispeedFreqMHz is the jump target (typically a upper-middle OPP).
	HispeedFreqMHz float64
	// TargetLoad is the utilization the governor tries to hold (0.90).
	TargetLoad float64
	// MinSampleTimeSec is the minimum dwell at a frequency before the
	// governor may lower it (Android default 80 ms... held at 20 ms here
	// to match the 100 ms sampling grid).
	MinSampleTimeSec float64

	lastChange float64
	lastLevel  int
}

// NewInteractive returns an interactive governor with Android-like
// defaults: hispeed at the 3/4 point of the table.
func NewInteractive(freqsMHz []float64) *Interactive {
	his := freqsMHz[len(freqsMHz)*3/4]
	return &Interactive{
		FreqsMHz:         freqsMHz,
		GoHispeedLoad:    0.85,
		HispeedFreqMHz:   his,
		TargetLoad:       0.90,
		MinSampleTimeSec: 0.2,
	}
}

// Name implements Governor.
func (g *Interactive) Name() string { return "interactive" }

// Reset implements Governor.
func (g *Interactive) Reset() {
	g.lastChange = 0
	g.lastLevel = 0
}

// NextLevel implements Governor.
func (g *Interactive) NextLevel(s State) int {
	top := len(g.FreqsMHz) - 1
	cur := s.CurrentLevel
	if cur < 0 {
		cur = 0
	}
	if cur > top {
		cur = top
	}

	// Desired frequency to hold the target load at the present demand.
	need := g.FreqsMHz[cur] * s.Util / g.TargetLoad
	want := top
	for lvl, f := range g.FreqsMHz {
		if f >= need {
			want = lvl
			break
		}
	}

	// Load spike: jump at least to hispeed immediately.
	if s.Util > g.GoHispeedLoad {
		his := 0
		for lvl, f := range g.FreqsMHz {
			if f >= g.HispeedFreqMHz {
				his = lvl
				break
			}
		}
		if want < his {
			want = his
		}
	}

	switch {
	case want > cur:
		// Raising is always allowed.
		g.lastChange = s.TimeSec
		g.lastLevel = want
		return want
	case want < cur:
		// Lowering requires the dwell to have expired.
		if s.TimeSec-g.lastChange < g.MinSampleTimeSec {
			return cur
		}
		g.lastChange = s.TimeSec
		g.lastLevel = want
		return want
	default:
		return cur
	}
}
