package governor

// Schedutil reimplements the modern kernel's utilization-driven policy:
// next_freq = C · util · f_current (C = 1.25), resolved upward in the OPP
// table. Included as the "what replaced ondemand" comparison point; the
// paper's platform predates it.
type Schedutil struct {
	// FreqsMHz is the ascending OPP frequency table.
	FreqsMHz []float64
	// Headroom is the overprovisioning factor C (kernel default 1.25).
	Headroom float64
}

// NewSchedutil returns a schedutil governor with the kernel defaults.
func NewSchedutil(freqsMHz []float64) *Schedutil {
	return &Schedutil{FreqsMHz: freqsMHz, Headroom: 1.25}
}

// Name implements Governor.
func (g *Schedutil) Name() string { return "schedutil" }

// Reset implements Governor; schedutil is stateless.
func (g *Schedutil) Reset() {}

// NextLevel implements Governor.
func (g *Schedutil) NextLevel(s State) int {
	top := len(g.FreqsMHz) - 1
	cur := s.CurrentLevel
	if cur < 0 {
		cur = 0
	}
	if cur > top {
		cur = top
	}
	need := g.Headroom * s.Util * g.FreqsMHz[cur]
	for lvl, f := range g.FreqsMHz {
		if f >= need {
			return lvl
		}
	}
	return top
}
