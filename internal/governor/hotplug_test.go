package governor

import "testing"

func TestHotplugBringsCoresUpUnderLoad(t *testing.T) {
	h := NewHotplug(4)
	got := h.NextOnline(2.0, 0.95, 2)
	if got != 3 {
		t.Fatalf("NextOnline = %d want 3", got)
	}
}

func TestHotplugOfflinesWhenIdle(t *testing.T) {
	h := NewHotplug(4)
	got := h.NextOnline(2.0, 0.1, 3)
	if got != 2 {
		t.Fatalf("NextOnline = %d want 2", got)
	}
}

func TestHotplugHoldsInMidBand(t *testing.T) {
	h := NewHotplug(4)
	if got := h.NextOnline(2.0, 0.5, 2); got != 2 {
		t.Fatalf("NextOnline = %d want 2 (hold)", got)
	}
}

func TestHotplugDwellPreventsThrash(t *testing.T) {
	h := NewHotplug(4)
	first := h.NextOnline(2.0, 0.95, 1)
	if first != 2 {
		t.Fatalf("first action = %d want 2", first)
	}
	// 0.3 s later, still above threshold: dwell must block the next step.
	if got := h.NextOnline(2.3, 0.95, first); got != first {
		t.Fatalf("dwell violated: %d", got)
	}
	// After the dwell expires, the next core comes up.
	if got := h.NextOnline(3.1, 0.95, first); got != 3 {
		t.Fatalf("post-dwell action = %d want 3", got)
	}
}

func TestHotplugSaturates(t *testing.T) {
	h := NewHotplug(4)
	if got := h.NextOnline(2.0, 0.95, 4); got != 4 {
		t.Fatalf("above max: %d", got)
	}
	h2 := NewHotplug(4)
	if got := h2.NextOnline(2.0, 0.05, 1); got != 1 {
		t.Fatalf("below min: %d", got)
	}
	h3 := NewHotplug(4)
	if got := h3.NextOnline(2.0, 0.5, 99); got != 4 {
		t.Fatalf("bad input not clamped: %d", got)
	}
	h4 := NewHotplug(4)
	if got := h4.NextOnline(2.0, 0.5, 0); got != 1 {
		t.Fatalf("zero input not clamped: %d", got)
	}
}

func TestHotplugReset(t *testing.T) {
	h := NewHotplug(4)
	h.NextOnline(5.0, 0.95, 1)
	h.Reset()
	// After reset the dwell anchor is cleared, so an immediate action at
	// t >= DwellSec succeeds.
	if got := h.NextOnline(1.5, 0.95, 1); got != 2 {
		t.Fatalf("post-reset action = %d want 2", got)
	}
}
