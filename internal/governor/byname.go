package governor

import "fmt"

// Names lists the governors constructible via ByName, in the order the
// paper's platform exposes them in sysfs.
var Names = []string{"ondemand", "interactive", "conservative", "schedutil", "performance", "powersave"}

// ByName constructs a cpufreq governor by its sysfs name over the given
// ascending OPP frequency table. The empty name selects the platform
// default (ondemand). Unknown names return an error rather than a nil
// governor, so callers can surface typos instead of silently simulating the
// wrong policy.
func ByName(name string, freqsMHz []float64) (Governor, error) {
	if len(freqsMHz) == 0 {
		return nil, fmt.Errorf("governor: empty OPP frequency table")
	}
	switch name {
	case "", "ondemand":
		return NewOndemand(freqsMHz), nil
	case "interactive":
		return NewInteractive(freqsMHz), nil
	case "conservative":
		return NewConservative(len(freqsMHz)), nil
	case "schedutil":
		return NewSchedutil(freqsMHz), nil
	case "performance":
		return &Performance{NumLevels: len(freqsMHz)}, nil
	case "powersave":
		return &Powersave{}, nil
	}
	return nil, fmt.Errorf("governor: unknown governor %q (choose from %v)", name, Names)
}
