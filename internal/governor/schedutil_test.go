package governor

import "testing"

func TestSchedutilScalesWithUtil(t *testing.T) {
	g := NewSchedutil(freqs)
	// util 0.5 at 1026 MHz: need 1.25·0.5·1026 = 641 -> 702 (level 3).
	if got := g.NextLevel(State{Util: 0.5, CurrentLevel: 6}); got != 3 {
		t.Fatalf("NextLevel = %d want 3", got)
	}
}

func TestSchedutilSaturatesAtMax(t *testing.T) {
	g := NewSchedutil(freqs)
	if got := g.NextLevel(State{Util: 1.0, CurrentLevel: 11}); got != 11 {
		t.Fatalf("NextLevel = %d want 11", got)
	}
}

func TestSchedutilIdleFallsToFloor(t *testing.T) {
	g := NewSchedutil(freqs)
	if got := g.NextLevel(State{Util: 0.0, CurrentLevel: 11}); got != 0 {
		t.Fatalf("NextLevel = %d want 0", got)
	}
}

func TestSchedutilConvergesWithFeedback(t *testing.T) {
	g := NewSchedutil(freqs)
	demand := 2400.0
	level := 11
	for i := 0; i < 50; i++ {
		capacity := freqs[level] * 4
		util := demand / capacity
		if util > 1 {
			util = 1
		}
		level = g.NextLevel(State{Util: util, CurrentLevel: level})
	}
	// Converged frequency must serve the demand with the 1.25 headroom:
	// demand/4 = 600 MHz/core -> need ≈ 750 -> 810 (level 4).
	if level < 3 || level > 5 {
		t.Fatalf("converged at level %d, want 3-5", level)
	}
}

func TestSchedutilClampsBadCurrentLevel(t *testing.T) {
	g := NewSchedutil(freqs)
	for _, cl := range []int{-5, 50} {
		if got := g.NextLevel(State{Util: 0.5, CurrentLevel: cl}); got < 0 || got > 11 {
			t.Fatalf("out-of-range result %d", got)
		}
	}
	if g.Name() != "schedutil" {
		t.Fatalf("Name = %q", g.Name())
	}
	g.Reset() // must not panic
}
