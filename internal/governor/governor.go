// Package governor implements CPU frequency governors with the semantics of
// the Linux cpufreq policies shipped on the paper's Android 4.3 platform.
// The baseline for every experiment is the ondemand governor, which the
// paper describes as: jump to the maximum frequency when utilization is at
// its peak, scale down steeply when utilization is very low, and step down
// proportionally when utilization sits between roughly 20 % and 80 %.
//
// Governors select a DVFS *level* (an index into the SoC's OPP table); the
// device layer applies it through the CPU's clamp (scaling_max_freq), which
// the USTA controller in package core manipulates.
package governor

import "fmt"

// State is the per-sampling-window observation a governor reacts to.
type State struct {
	// TimeSec is the simulation time at the end of the window.
	TimeSec float64
	// Util is the CPU utilization over the window in [0,1].
	Util float64
	// CurrentLevel is the DVFS level that was in effect during the window.
	CurrentLevel int
}

// Governor decides the next DVFS level from the current state.
type Governor interface {
	// Name identifies the governor in logs and reports.
	Name() string
	// NextLevel returns the desired level for the next window. The device
	// layer saturates the result into the valid, clamped range.
	NextLevel(s State) int
	// Reset clears any internal state so the governor can be reused for a
	// fresh run.
	Reset()
}

// Ondemand reimplements the classic Linux/Android ondemand policy.
type Ondemand struct {
	// FreqsMHz is the ascending OPP frequency table.
	FreqsMHz []float64
	// UpThreshold is the utilization above which the governor jumps straight
	// to the maximum frequency (Linux default 0.80 on this platform).
	UpThreshold float64
	// DownDifferential is subtracted from UpThreshold to form the target
	// operating point when scaling down (Linux default 0.10).
	DownDifferential float64
}

// NewOndemand returns an ondemand governor with the platform defaults.
func NewOndemand(freqsMHz []float64) *Ondemand {
	return &Ondemand{FreqsMHz: freqsMHz, UpThreshold: 0.80, DownDifferential: 0.10}
}

// Name implements Governor.
func (o *Ondemand) Name() string { return "ondemand" }

// Reset implements Governor; ondemand is stateless between windows.
func (o *Ondemand) Reset() {}

// NextLevel implements the ondemand policy: above UpThreshold, jump to the
// top level; otherwise pick the lowest frequency that would serve the
// observed load at (UpThreshold − DownDifferential) utilization.
func (o *Ondemand) NextLevel(s State) int {
	top := len(o.FreqsMHz) - 1
	if s.Util > o.UpThreshold {
		return top
	}
	cur := s.CurrentLevel
	if cur < 0 {
		cur = 0
	}
	if cur > top {
		cur = top
	}
	// Required frequency so the present demand would load the CPU to the
	// down-target utilization.
	target := o.UpThreshold - o.DownDifferential
	if target <= 0 {
		target = o.UpThreshold
	}
	need := o.FreqsMHz[cur] * s.Util / target
	for lvl, f := range o.FreqsMHz {
		if f >= need {
			return lvl
		}
	}
	return top
}

// Performance always selects the highest level.
type Performance struct{ NumLevels int }

// Name implements Governor.
func (p *Performance) Name() string { return "performance" }

// Reset implements Governor.
func (p *Performance) Reset() {}

// NextLevel implements Governor.
func (p *Performance) NextLevel(State) int { return p.NumLevels - 1 }

// Powersave always selects the lowest level.
type Powersave struct{}

// Name implements Governor.
func (p *Powersave) Name() string { return "powersave" }

// Reset implements Governor.
func (p *Powersave) Reset() {}

// NextLevel implements Governor.
func (p *Powersave) NextLevel(State) int { return 0 }

// Conservative steps one level at a time: up when utilization exceeds
// UpThreshold, down when it falls below DownThreshold.
type Conservative struct {
	NumLevels     int
	UpThreshold   float64
	DownThreshold float64
}

// NewConservative returns a conservative governor with the Linux defaults
// (up 0.80, down 0.20).
func NewConservative(numLevels int) *Conservative {
	return &Conservative{NumLevels: numLevels, UpThreshold: 0.80, DownThreshold: 0.20}
}

// Name implements Governor.
func (c *Conservative) Name() string { return "conservative" }

// Reset implements Governor.
func (c *Conservative) Reset() {}

// NextLevel implements Governor.
func (c *Conservative) NextLevel(s State) int {
	lvl := s.CurrentLevel
	switch {
	case s.Util > c.UpThreshold && lvl < c.NumLevels-1:
		lvl++
	case s.Util < c.DownThreshold && lvl > 0:
		lvl--
	}
	if lvl < 0 {
		lvl = 0
	}
	if lvl >= c.NumLevels {
		lvl = c.NumLevels - 1
	}
	return lvl
}

// Userspace pins the CPU at a fixed, externally chosen level.
type Userspace struct {
	// Level is the pinned DVFS level.
	Level int
}

// Name implements Governor.
func (u *Userspace) Name() string { return fmt.Sprintf("userspace(L%d)", u.Level) }

// Reset implements Governor.
func (u *Userspace) Reset() {}

// NextLevel implements Governor.
func (u *Userspace) NextLevel(State) int { return u.Level }
