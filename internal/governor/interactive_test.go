package governor

import "testing"

func TestInteractiveJumpsToHispeedOnSpike(t *testing.T) {
	g := NewInteractive(freqs)
	lvl := g.NextLevel(State{TimeSec: 1, Util: 0.95, CurrentLevel: 0})
	if got := freqs[lvl]; got < g.HispeedFreqMHz {
		t.Fatalf("spike from idle landed at %v MHz, want >= hispeed %v", got, g.HispeedFreqMHz)
	}
	if lvl == len(freqs)-1 {
		t.Fatalf("spike from idle should hit hispeed, not max (got top level)")
	}
}

func TestInteractiveRampsToMaxUnderSustainedLoad(t *testing.T) {
	g := NewInteractive(freqs)
	level := 0
	demand := 5800.0 // aggregate core-MHz, near the 6048 max
	now := 0.0
	for i := 0; i < 100; i++ {
		now += 0.1
		capacity := freqs[level] * 4
		util := demand / capacity
		if util > 1 {
			util = 1
		}
		level = g.NextLevel(State{TimeSec: now, Util: util, CurrentLevel: level})
	}
	if level != len(freqs)-1 {
		t.Fatalf("sustained saturating load should reach the top level, got %d", level)
	}
}

func TestInteractiveHoldsBeforeRampDown(t *testing.T) {
	g := NewInteractive(freqs)
	// Jump up at t=1.
	lvl := g.NextLevel(State{TimeSec: 1.0, Util: 0.95, CurrentLevel: 2})
	// Load vanishes 50 ms later: dwell (200 ms) not expired, must hold.
	hold := g.NextLevel(State{TimeSec: 1.05, Util: 0.05, CurrentLevel: lvl})
	if hold != lvl {
		t.Fatalf("ramp-down before dwell expiry: %d -> %d", lvl, hold)
	}
	// After the dwell it may fall.
	down := g.NextLevel(State{TimeSec: 1.5, Util: 0.05, CurrentLevel: lvl})
	if down >= lvl {
		t.Fatalf("no ramp-down after dwell: %d -> %d", lvl, down)
	}
}

func TestInteractiveStableAtTargetLoad(t *testing.T) {
	g := NewInteractive(freqs)
	// Just below the hispeed trigger, a load whose target frequency maps
	// back to the current OPP must hold (0.84·1026/0.90 = 957 → 1026).
	lvl := g.NextLevel(State{TimeSec: 5, Util: 0.84, CurrentLevel: 6})
	if lvl != 6 {
		t.Fatalf("target-load hold broken: %d", lvl)
	}
}

func TestInteractiveRangeAndReset(t *testing.T) {
	g := NewInteractive(freqs)
	for _, u := range []float64{0, 0.2, 0.5, 0.86, 1} {
		for _, cl := range []int{-3, 0, 5, 11, 40} {
			lvl := g.NextLevel(State{TimeSec: 9, Util: u, CurrentLevel: cl})
			if lvl < 0 || lvl >= len(freqs) {
				t.Fatalf("out-of-range level %d for util %v cur %d", lvl, u, cl)
			}
		}
	}
	g.Reset()
	if g.lastChange != 0 || g.lastLevel != 0 {
		t.Fatal("Reset did not clear state")
	}
	if g.Name() != "interactive" {
		t.Fatalf("Name = %q", g.Name())
	}
}
