package governor

// Hotplug reimplements the essentials of Qualcomm's mpdecision daemon,
// which managed core onlining on the paper's platform: cores come online
// when sustained utilization is high and are power-gated when it falls.
// It is a separate decision layer from the frequency governor and is
// consulted on the same sampling grid.
type Hotplug struct {
	// MaxCores is the core count of the SoC.
	MaxCores int
	// UpThreshold brings another core online when exceeded (0.80).
	UpThreshold float64
	// DownThreshold offlines a core when utilization falls below it (0.30).
	DownThreshold float64
	// DwellSec is the minimum time between hotplug actions (1 s —
	// mpdecision was deliberately sluggish to avoid thrash).
	DwellSec float64

	lastAction float64
}

// NewHotplug returns an mpdecision-like policy for the given core count.
func NewHotplug(maxCores int) *Hotplug {
	return &Hotplug{MaxCores: maxCores, UpThreshold: 0.80, DownThreshold: 0.30, DwellSec: 1.0}
}

// Reset clears the dwell timer.
func (h *Hotplug) Reset() { h.lastAction = 0 }

// NextOnline returns the desired online-core count given the current
// count and the window's utilization (measured against the *online*
// capacity).
func (h *Hotplug) NextOnline(timeSec, util float64, online int) int {
	if online < 1 {
		online = 1
	}
	if online > h.MaxCores {
		online = h.MaxCores
	}
	if timeSec-h.lastAction < h.DwellSec {
		return online
	}
	switch {
	case util > h.UpThreshold && online < h.MaxCores:
		h.lastAction = timeSec
		return online + 1
	case util < h.DownThreshold && online > 1:
		h.lastAction = timeSec
		return online - 1
	}
	return online
}
