package device

// JSON run reports: a machine-readable summary of a RunResult for scripted
// analysis pipelines (the trace itself is exported separately as CSV).

import (
	"encoding/json"
	"io"
)

// Report is the serializable summary of a run.
type Report struct {
	Workload    string  `json:"workload"`
	Governor    string  `json:"governor"`
	Controller  string  `json:"controller,omitempty"`
	DurSec      float64 `json:"dur_sec"`
	MaxSkinC    float64 `json:"max_skin_c"`
	MaxScreenC  float64 `json:"max_screen_c"`
	MaxDieC     float64 `json:"max_die_c"`
	MaxBatteryC float64 `json:"max_battery_c"`
	AvgFreqGHz  float64 `json:"avg_freq_ghz"`
	AvgUtil     float64 `json:"avg_util"`
	EnergyJ     float64 `json:"energy_j"`
	Slowdown    float64 `json:"slowdown"`
	StartSoC    float64 `json:"start_soc"`
	EndSoC      float64 `json:"end_soc"`
	Samples     int     `json:"samples"`
}

// Report summarizes the run for serialization.
func (r *RunResult) Report() Report {
	return Report{
		Workload:    r.Workload,
		Governor:    r.Governor,
		Controller:  r.Ctrl,
		DurSec:      r.DurSec,
		MaxSkinC:    r.MaxSkinC,
		MaxScreenC:  r.MaxScreenC,
		MaxDieC:     r.MaxDieC,
		MaxBatteryC: r.MaxBatteryC,
		AvgFreqGHz:  r.AvgFreqMHz / 1000,
		AvgUtil:     r.AvgUtil,
		EnergyJ:     r.EnergyJ,
		Slowdown:    r.Slowdown(),
		StartSoC:    r.StartSoC,
		EndSoC:      r.EndSoC,
		Samples:     r.Trace.Len(),
	}
}

// WriteReportJSON writes the run summary as indented JSON.
func (r *RunResult) WriteReportJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Report())
}
