package device

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestRunReportJSON(t *testing.T) {
	p := MustNew(DefaultConfig(), nil)
	res := p.Run(workload.YouTube(1), 60)

	var sb strings.Builder
	if err := res.WriteReportJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, sb.String())
	}
	if rep.Workload != "youtube" || rep.Governor != "ondemand" {
		t.Fatalf("report identity wrong: %+v", rep)
	}
	if rep.MaxSkinC != res.MaxSkinC || rep.EnergyJ != res.EnergyJ {
		t.Fatal("report values diverge from the result")
	}
	if rep.Samples < 55 || rep.Samples > 65 {
		t.Fatalf("samples = %d want ≈60", rep.Samples)
	}
	if rep.AvgFreqGHz <= 0 {
		t.Fatal("avg freq missing")
	}
}

func TestDailyMixEndToEnd(t *testing.T) {
	w := workload.DailyMix(9)
	if w.Duration() < 5000 {
		t.Fatalf("daily mix too short: %v s", w.Duration())
	}
	cfg := DefaultConfig()
	cfg.InitialSoC = 0.7
	p := MustNew(cfg, nil)
	res := p.Run(w, 0)
	// The session includes a gaming + call stretch that must warm the
	// phone well past idle, and a charging tail that must add charge.
	if res.MaxSkinC < 33 {
		t.Fatalf("daily mix peaked at only %.1f °C", res.MaxSkinC)
	}
	if res.EndSoC <= 0.3 {
		t.Fatalf("battery fully drained: %v", res.EndSoC)
	}
	// Charging tail: the last trace samples must be cool-ish and screen-off
	// (frequency parked).
	freqs := res.Trace.Lookup("freq_mhz").Values
	tail := freqs[len(freqs)-60:]
	for _, f := range tail {
		if f > 600 {
			t.Fatalf("charging tail running at %v MHz", f)
		}
	}
}
