package device

import (
	"context"
	"math"
	"testing"

	"repro/internal/workload"
)

// eventDiffWorkloads are the differential corpus: jittered phone
// benchmarks (slot boundaries every second), bursty synthetics
// (sub-second burst edges), touch-flipping gameplay, charging (canonical
// segments), idle, and the multi-hour daily mix.
func eventDiffWorkloads() map[string]workload.Workload {
	return map[string]workload.Workload{
		"skype":      workload.Skype(7),
		"youtube":    workload.YouTube(3),
		"antutu":     workload.AnTuTuFull(5),
		"game-touch": workload.Game(9),
		"charging":   workload.Charging(2),
		"idle":       workload.Idle(120),
		"square":     workload.SquareWave(1, 10, 0.3, 0.95, 0.05, 180),
		"daily":      workload.Truncated{W: workload.DailyMix(4), Dur: 600},
	}
}

// runOracle runs the plain fixed-tick loop.
func runOracle(t *testing.T, cfg Config, w workload.Workload, dur float64, ctrl Controller) *RunResult {
	t.Helper()
	p := MustNew(cfg, nil)
	if ctrl != nil {
		p.SetController(ctrl)
	}
	return p.Run(w, dur)
}

// runEvent runs the event engine in the given mode.
func runEvent(t *testing.T, cfg Config, w workload.Workload, dur float64, ctrl Controller, mode EventMode) *RunResult {
	t.Helper()
	p := MustNew(cfg, nil)
	if ctrl != nil {
		p.SetController(ctrl)
	}
	res, err := p.RunEventContext(context.Background(), w, dur, mode)
	if err != nil {
		t.Fatalf("event run (%v): %v", mode, err)
	}
	return res
}

func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// requireIdentical asserts full byte-identity: every aggregate, every
// record field, every trace cell.
func requireIdentical(t *testing.T, label string, want, got *RunResult) {
	t.Helper()
	requireSchedulingIdentical(t, label, want, got)
	cells := []struct {
		name string
		w, g float64
	}{
		{"MaxSkinC", want.MaxSkinC, got.MaxSkinC},
		{"MaxScreenC", want.MaxScreenC, got.MaxScreenC},
		{"MaxDieC", want.MaxDieC, got.MaxDieC},
		{"MaxBatteryC", want.MaxBatteryC, got.MaxBatteryC},
		{"EnergyJ", want.EnergyJ, got.EnergyJ},
		{"EndSoC", want.EndSoC, got.EndSoC},
	}
	for _, c := range cells {
		if !bitsEq(c.w, c.g) {
			t.Errorf("%s: %s = %v, oracle %v", label, c.name, c.g, c.w)
		}
	}
	if len(want.Records) != len(got.Records) {
		t.Fatalf("%s: %d records, oracle %d", label, len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		if want.Records[i] != got.Records[i] {
			t.Fatalf("%s: record %d diverged:\noracle %+v\nevent  %+v", label, i, want.Records[i], got.Records[i])
		}
	}
	if (want.Trace == nil) != (got.Trace == nil) {
		t.Fatalf("%s: trace presence differs", label)
	}
	if want.Trace != nil {
		if want.Trace.Len() != got.Trace.Len() {
			t.Fatalf("%s: trace rows %d, oracle %d", label, got.Trace.Len(), want.Trace.Len())
		}
		for i := range want.Trace.TimeSec {
			if !bitsEq(want.Trace.TimeSec[i], got.Trace.TimeSec[i]) {
				t.Fatalf("%s: trace time %d diverged", label, i)
			}
		}
		for si, ws := range want.Trace.Series {
			gs := got.Trace.Series[si]
			for i := range ws.Values {
				if !bitsEq(ws.Values[i], gs.Values[i]) {
					t.Fatalf("%s: trace %q row %d = %v, oracle %v", label, ws.Name, i, gs.Values[i], ws.Values[i])
				}
			}
		}
	}
}

// requireSchedulingIdentical asserts the scheduling plane bit for bit:
// frequency/utilization aggregates, work accounting, record timing and
// window averages, and the trace's freq/util/level columns.
func requireSchedulingIdentical(t *testing.T, label string, want, got *RunResult) {
	t.Helper()
	cells := []struct {
		name string
		w, g float64
	}{
		{"DurSec", want.DurSec, got.DurSec},
		{"AvgFreqMHz", want.AvgFreqMHz, got.AvgFreqMHz},
		{"AvgUtil", want.AvgUtil, got.AvgUtil},
		{"WorkDone", want.WorkDone, got.WorkDone},
		{"WorkDemanded", want.WorkDemanded, got.WorkDemanded},
		{"StartSoC", want.StartSoC, got.StartSoC},
	}
	for _, c := range cells {
		if !bitsEq(c.w, c.g) {
			t.Errorf("%s: %s = %v, oracle %v", label, c.name, c.g, c.w)
		}
	}
	if len(want.Records) != len(got.Records) {
		t.Fatalf("%s: %d records, oracle %d", label, len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		w, g := want.Records[i], got.Records[i]
		if !bitsEq(w.TimeSec, g.TimeSec) || !bitsEq(w.Util, g.Util) || !bitsEq(w.FreqMHz, g.FreqMHz) {
			t.Fatalf("%s: record %d scheduling fields diverged:\noracle t=%v u=%v f=%v\nevent  t=%v u=%v f=%v",
				label, i, w.TimeSec, w.Util, w.FreqMHz, g.TimeSec, g.Util, g.FreqMHz)
		}
	}
	if want.Trace != nil && got.Trace != nil {
		for _, col := range []string{"freq_mhz", "util", "max_level"} {
			ws, gs := want.Trace.Lookup(col), got.Trace.Lookup(col)
			if ws == nil || gs == nil || len(ws.Values) != len(gs.Values) {
				t.Fatalf("%s: trace column %q missing or length mismatch", label, col)
			}
			for i := range ws.Values {
				if !bitsEq(ws.Values[i], gs.Values[i]) {
					t.Fatalf("%s: trace %q row %d = %v, oracle %v", label, col, i, gs.Values[i], ws.Values[i])
				}
			}
		}
	}
}

// requireThermalClose asserts the thermal plane within the held-input
// discretization tolerance.
func requireThermalClose(t *testing.T, label string, want, got *RunResult, tempTol, relTol float64) {
	t.Helper()
	temps := []struct {
		name string
		w, g float64
	}{
		{"MaxSkinC", want.MaxSkinC, got.MaxSkinC},
		{"MaxScreenC", want.MaxScreenC, got.MaxScreenC},
		{"MaxDieC", want.MaxDieC, got.MaxDieC},
		{"MaxBatteryC", want.MaxBatteryC, got.MaxBatteryC},
	}
	for _, c := range temps {
		if d := math.Abs(c.w - c.g); d > tempTol {
			t.Errorf("%s: %s off by %.6f °C (oracle %.4f, event %.4f; tol %g)", label, c.name, d, c.w, c.g, tempTol)
		}
	}
	rel := func(name string, w, g float64) {
		t.Helper()
		denom := math.Abs(w)
		if denom < 1 {
			denom = 1
		}
		if d := math.Abs(w-g) / denom; d > relTol {
			t.Errorf("%s: %s rel err %.2e (oracle %v, event %v; tol %g)", label, name, d, w, g, relTol)
		}
	}
	rel("EnergyJ", want.EnergyJ, got.EnergyJ)
	rel("EndSoC", want.EndSoC, got.EndSoC)
	// Record temperatures pass through the sensors' 0.1 °C quantizer: a
	// millikelvin-level held-input difference that straddles a bin edge
	// reads one full bin apart, so records get one bin of extra slack on
	// top of the true-temperature tolerance.
	recTol := tempTol + 0.1
	for i := range want.Records {
		w, g := want.Records[i], got.Records[i]
		pairs := []struct {
			name string
			a, b float64
		}{
			{"CPUTempC", w.CPUTempC, g.CPUTempC},
			{"BatteryTempC", w.BatteryTempC, g.BatteryTempC},
			{"SkinTempC", w.SkinTempC, g.SkinTempC},
			{"ScreenTempC", w.ScreenTempC, g.ScreenTempC},
		}
		for _, p := range pairs {
			if math.IsNaN(p.a) && math.IsNaN(p.b) {
				continue
			}
			if d := math.Abs(p.a - p.b); d > recTol {
				t.Fatalf("%s: record %d %s off by %.6f °C (tol %g)", label, i, p.name, d, recTol)
			}
		}
	}
}

// TestEventTickByteIdentical pins the event plumbing itself: EventTick
// routes every tick through the canonical path and must be byte-identical
// to the plain loop on every workload, including charging and touch.
func TestEventTickByteIdentical(t *testing.T) {
	cfg := DefaultConfig()
	for name, w := range eventDiffWorkloads() {
		oracle := runOracle(t, cfg, w, 0, nil)
		tick := runEvent(t, cfg, w, 0, nil, EventTick)
		requireIdentical(t, name+"/tick", oracle, tick)
	}
}

// TestEventJumpSchedulingExactThermalClose is the headline differential:
// EventJump must replay the scheduling plane bit for bit (governor-driven
// runs read only utilization) while the thermal plane stays within the
// held-input discretization tolerance.
func TestEventJumpSchedulingExactThermalClose(t *testing.T) {
	cfg := DefaultConfig()
	for name, w := range eventDiffWorkloads() {
		oracle := runOracle(t, cfg, w, 0, nil)
		jump := runEvent(t, cfg, w, 0, nil, EventJump)
		requireSchedulingIdentical(t, name+"/jump", oracle, jump)
		requireThermalClose(t, name+"/jump", oracle, jump, 0.05, 2e-3)
	}
}

// TestEventJumpMatchesEventOracle pins the ladder against the decomposed
// per-tick oracle: identical held-input segmentation, so the only
// difference is floating-point summation order inside the physics.
func TestEventJumpMatchesEventOracle(t *testing.T) {
	cfg := DefaultConfig()
	for name, w := range eventDiffWorkloads() {
		oracle := runEvent(t, cfg, w, 0, nil, EventOracle)
		jump := runEvent(t, cfg, w, 0, nil, EventJump)
		requireSchedulingIdentical(t, name+"/jump-vs-oracle", oracle, jump)
		requireThermalClose(t, name+"/jump-vs-oracle", oracle, jump, 1e-6, 1e-9)
	}
}

// TestEventControllerEpochsCanonical pins controller handling: epochs are
// canonical ticks, so a deterministic (non-thermal-reading) controller
// fires at exactly the oracle's times with exactly the oracle's effect.
func TestEventControllerEpochsCanonical(t *testing.T) {
	cfg := DefaultConfig()
	w := workload.Skype(7)
	oracle := runOracle(t, cfg, w, 240, &clampController{level: 2})
	tick := runEvent(t, cfg, w, 240, &clampController{level: 2}, EventTick)
	requireIdentical(t, "ctrl/tick", oracle, tick)
	jump := runEvent(t, cfg, w, 240, &clampController{level: 2}, EventJump)
	requireSchedulingIdentical(t, "ctrl/jump", oracle, jump)
	requireThermalClose(t, "ctrl/jump", oracle, jump, 0.05, 2e-3)
	if oracle.Ctrl != jump.Ctrl || jump.Ctrl != "clamp" {
		t.Fatalf("controller name lost: oracle %q jump %q", oracle.Ctrl, jump.Ctrl)
	}
}

// TestEventHotplugFallsBackToTick pins the degradation rule: hotplugged
// devices cannot hold capacity across a segment, so folding modes degrade
// to EventTick and stay byte-identical.
func TestEventHotplugFallsBackToTick(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableHotplug = true
	w := workload.SquareWave(1, 20, 0.5, 0.9, 0.05, 240)
	p := MustNew(cfg, nil)
	e := p.StartEventRun(w, 0, EventJump)
	if e.Mode() != EventTick {
		t.Fatalf("hotplug event mode = %v, want EventTick", e.Mode())
	}
	for e.Active() {
		e.Segment()
	}
	got, err := e.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	oracle := runOracle(t, cfg, w, 0, nil)
	requireIdentical(t, "hotplug", oracle, got)
}

// TestEventOpaqueWorkloadFallsBackToTick pins the other degradation rule:
// a workload without a boundary query cannot be folded.
func TestEventOpaqueWorkloadFallsBackToTick(t *testing.T) {
	w := opaqueWorkload{}
	p := MustNew(DefaultConfig(), nil)
	e := p.StartEventRun(w, 60, EventJump)
	if e.Mode() != EventTick {
		t.Fatalf("opaque workload event mode = %v, want EventTick", e.Mode())
	}
	for e.Active() {
		e.Segment()
	}
	got, err := e.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	oracle := runOracle(t, DefaultConfig(), w, 60, nil)
	requireIdentical(t, "opaque", oracle, got)
}

type opaqueWorkload struct{}

func (opaqueWorkload) Name() string      { return "opaque" }
func (opaqueWorkload) Duration() float64 { return 60 }
func (opaqueWorkload) At(t float64) workload.Sample {
	return workload.Sample{CPUFrac: 0.4, Display: 0.5}
}

// TestEventRK4FallbackHeldParity pins the ladder-unavailable path: with
// the network forced to RK4, LadderFor returns nil and EventJump's
// physics degrades to the sequential held-input path — byte-identical to
// EventOracle under the same forcing.
func TestEventRK4FallbackHeldParity(t *testing.T) {
	cfg := DefaultConfig()
	w := workload.Skype(7)
	mk := func(mode EventMode) *RunResult {
		p := MustNew(cfg, nil)
		p.net.UseRK4(true)
		res, err := p.RunEventContext(context.Background(), w, 180, mode)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	oracle := mk(EventOracle)
	jump := mk(EventJump)
	requireIdentical(t, "rk4-fallback", oracle, jump)
}

// TestEventTouchFlipSplitsGap pins mid-gap touch handling: a workload
// whose touch flips between records forces a segment split with a
// network reconfiguration, and the jump engine must re-derive the ladder
// for each contact configuration (its two-slot memo covers both).
func TestEventTouchFlipSplitsGap(t *testing.T) {
	// Touch flips every 2.6 s — never aligned with the 1 s record grid, so
	// flips land mid-gap.
	phases := make([]workload.Phase, 0, 64)
	for i := 0; i < 60; i++ {
		phases = append(phases, workload.Phase{
			Name: "p", Dur: 2.6, CPU: 0.55, Display: 0.6, Touch: i%2 == 1,
		})
	}
	w := workload.New("touchflip", 0, phases...)
	cfg := DefaultConfig()
	oracle := runOracle(t, cfg, w, 0, nil)
	jump := runEvent(t, cfg, w, 0, nil, EventJump)
	requireSchedulingIdentical(t, "touchflip/jump", oracle, jump)
	requireThermalClose(t, "touchflip/jump", oracle, jump, 0.05, 2e-3)
	// The flip must actually couple the hand: skin peaks above an
	// untouched copy of the same load.
	if oracle.MaxSkinC <= 26 {
		t.Fatalf("touch workload barely warmed the cover (%.2f °C); flip not exercised", oracle.MaxSkinC)
	}
}

// TestEventRunCancellation pins segment-granular cancellation: a
// cancelled context finishes with partial aggregates, like RunContext.
func TestEventRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := MustNew(DefaultConfig(), nil)
	res, err := p.RunEventContext(ctx, workload.Skype(7), 120, EventJump)
	if err == nil {
		t.Fatal("cancelled event run reported no error")
	}
	if res == nil || res.DurSec != 0 {
		t.Fatalf("pre-cancelled run should have zero duration, got %+v", res)
	}
}

// TestEventCounterNoiseVersion pins the versioned noise plumbing at the
// device level: NoiseVersionCounter changes the draws (different records)
// but the event engine stays exact against its own oracle, and the
// default zero value keeps the legacy stream.
func TestEventCounterNoiseVersion(t *testing.T) {
	legacy := DefaultConfig()
	counter := DefaultConfig()
	counter.NoiseVersion = 1 // sensors.NoiseVersionCounter
	w := workload.Skype(7)

	lg := runOracle(t, legacy, w, 120, nil)
	ct := runOracle(t, counter, w, 120, nil)
	if len(lg.Records) == 0 || len(lg.Records) != len(ct.Records) {
		t.Fatalf("record counts: legacy %d counter %d", len(lg.Records), len(ct.Records))
	}
	same := true
	for i := range lg.Records {
		if lg.Records[i].CPUTempC != ct.Records[i].CPUTempC {
			same = false
			break
		}
	}
	if same {
		t.Fatal("counter noise stream produced the legacy draw sequence")
	}
	// The event engine is stream-agnostic: byte-identical under EventTick
	// for the counter stream too.
	tick := runEvent(t, counter, w, 120, nil, EventTick)
	requireIdentical(t, "counter/tick", ct, tick)
}

var _ = math.MaxFloat64
