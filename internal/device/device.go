// Package device assembles the simulated handset: the SoC model, the phone
// thermal network, the sensor/logging chain, a cpufreq governor, and an
// optional thermal controller (USTA) that manipulates the maximum-frequency
// clamp. It advances everything on a fixed-step engine with per-component
// periods that mirror the paper's setup: 50 ms thermal integration, 100 ms
// governor sampling, 1 s logging, and a controller period of the caller's
// choosing (USTA uses 3 s).
package device

import (
	"context"
	"fmt"

	"repro/internal/battery"
	"repro/internal/governor"
	"repro/internal/sensors"
	"repro/internal/soc"
	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Controller is a thermal-management hook driven at its own period. USTA
// (package core) implements it; a nil controller reproduces the stock
// phone.
type Controller interface {
	// Name identifies the controller in reports.
	Name() string
	// PeriodSec is how often Act runs (USTA: every 3 s).
	PeriodSec() float64
	// Act observes the phone and may adjust the CPU's max-level clamp.
	Act(p *Phone)
	// Reset clears controller state between runs.
	Reset()
}

// Config parameterizes a Phone.
type Config struct {
	Thermal thermal.PhoneConfig
	SoC     soc.Config

	// StepSec is the base simulation step (thermal integration). The
	// governor and logger periods must be multiples of it.
	StepSec float64
	// GovernorPeriodSec is the cpufreq sampling period.
	GovernorPeriodSec float64
	// LoggerPeriodSec is the logging-app period.
	LoggerPeriodSec float64
	// RecordPeriodSec is how often a row is appended to the run trace.
	RecordPeriodSec float64
	// DisplayMaxWatts is display power at full brightness.
	DisplayMaxWatts float64
	// Battery parameterizes the pack model.
	Battery battery.Config
	// InitialSoC is the battery state of charge at power-on.
	InitialSoC float64
	// EnableHotplug runs an mpdecision-like core-hotplug policy alongside
	// the frequency governor (off by default; the paper's experiments pin
	// all four cores online).
	EnableHotplug bool
	// Seed drives every stochastic element (sensor noise).
	Seed int64
	// NoiseVersion selects the sensor noise stream implementation
	// (sensors.NoiseVersionLegacy keeps the math/rand stream every
	// committed golden was generated with; sensors.NoiseVersionCounter is
	// the counter-based stream with O(1) reseed and position seeking).
	// The zero value is the legacy stream, so existing configurations and
	// goldens are unaffected.
	NoiseVersion int
}

// DefaultConfig returns the calibrated Nexus-4-like device configuration.
func DefaultConfig() Config {
	return Config{
		Thermal:           thermal.DefaultPhoneConfig(),
		SoC:               soc.Nexus4Config(),
		StepSec:           0.05,
		GovernorPeriodSec: 0.1,
		LoggerPeriodSec:   1.0,
		RecordPeriodSec:   1.0,
		DisplayMaxWatts:   0.55,
		Battery:           battery.Nexus4Config(),
		InitialSoC:        0.6,
		Seed:              1,
	}
}

// Phone is the assembled simulated handset.
type Phone struct {
	cfg     Config
	net     *thermal.Network
	nodes   thermal.PhoneNodes
	cpu     *soc.CPU
	gov     governor.Governor
	ctrl    Controller
	pack    *battery.Pack
	hotplug *governor.Hotplug

	cpuSensor   *sensors.Sensor
	batSensor   *sensors.Sensor
	skinTherm   *sensors.Sensor
	screenTherm *sensors.Sensor
	logger      *sensors.Logger
	observer    func(Sample)

	timeSec   float64
	touching  bool
	traceFree bool

	// governor window accumulation
	govWinUtil    float64
	govWinSamples int
	lastGovSec    float64
	lastCtrlSec   float64

	// instantaneous observables
	utilNow   float64
	powerNowW float64 // total dissipation set by the last step
}

// New creates a phone with the given configuration and governor. The
// governor may be nil, in which case ondemand is used.
func New(cfg Config, gov governor.Governor) (*Phone, error) {
	if cfg.StepSec <= 0 {
		return nil, fmt.Errorf("device: StepSec must be positive, got %v", cfg.StepSec)
	}
	if cfg.GovernorPeriodSec < cfg.StepSec {
		return nil, fmt.Errorf("device: governor period %v below step %v", cfg.GovernorPeriodSec, cfg.StepSec)
	}
	cpu, err := soc.New(cfg.SoC)
	if err != nil {
		return nil, err
	}
	pack, err := battery.New(cfg.Battery, cfg.InitialSoC)
	if err != nil {
		return nil, err
	}
	net, nodes := thermal.NewPhone(cfg.Thermal)
	if gov == nil {
		gov = governor.NewOndemand(freqTable(cfg.SoC))
	}
	p := &Phone{
		cfg:         cfg,
		net:         net,
		nodes:       nodes,
		cpu:         cpu,
		gov:         gov,
		pack:        pack,
		cpuSensor:   sensors.BuiltinTempSensorV(cfg.Seed+11, cfg.NoiseVersion),
		batSensor:   sensors.BuiltinTempSensorV(cfg.Seed+13, cfg.NoiseVersion),
		skinTherm:   sensors.ThermistorV(cfg.Seed+17, cfg.NoiseVersion),
		screenTherm: sensors.ThermistorV(cfg.Seed+19, cfg.NoiseVersion),
		logger:      sensors.NewLogger(cfg.LoggerPeriodSec),
	}
	if cfg.EnableHotplug {
		p.hotplug = governor.NewHotplug(cfg.SoC.NumCores)
	}
	return p, nil
}

// Reset returns the phone to its power-on state under its existing
// configuration, with a new device seed and governor, reusing every
// allocation: thermal nodes back at the ambient, battery at the initial
// state of charge, CPU at the lowest OPP with no clamp, sensors reseeded
// (seed+11/13/17/19, exactly like New), logs cleared, controller and
// observer detached, trace retention back on. A reset phone is
// behaviorally byte-identical to device.New with the same configuration
// and seed — the fleet's phone pool relies on that equivalence, and the
// device tests pin it. A nil governor selects stock ondemand, like New.
func (p *Phone) Reset(gov governor.Governor, seed int64) {
	p.cfg.Seed = seed
	if gov == nil {
		gov = governor.NewOndemand(freqTable(p.cfg.SoC))
	}
	p.gov = gov
	p.ctrl = nil
	p.observer = nil
	p.cpu.Reset()
	p.pack.Reset(p.cfg.InitialSoC)
	p.net.ResetState()
	p.touching = false
	thermal.ApplyTouch(p.net, p.nodes, p.cfg.Thermal, false)
	p.cpuSensor.Reseed(seed + 11)
	p.batSensor.Reseed(seed + 13)
	p.skinTherm.Reseed(seed + 17)
	p.screenTherm.Reseed(seed + 19)
	p.logger.Reset()
	p.logger.SetRetainLatestOnly(false)
	p.traceFree = false
	if p.hotplug != nil {
		p.hotplug = governor.NewHotplug(p.cfg.SoC.NumCores)
	}
	p.timeSec = 0
	p.govWinUtil, p.govWinSamples = 0, 0
	p.lastGovSec, p.lastCtrlSec = 0, 0
	p.utilNow, p.powerNowW = 0, 0
}

// MustNew is New that panics on error; for hard-coded configurations.
func MustNew(cfg Config, gov governor.Governor) *Phone {
	p, err := New(cfg, gov)
	if err != nil {
		panic(err)
	}
	return p
}

func freqTable(cfg soc.Config) []float64 {
	fs := make([]float64, len(cfg.OPPs))
	for i, o := range cfg.OPPs {
		fs[i] = o.FreqMHz
	}
	return fs
}

// SetController installs (or clears, with nil) the thermal controller.
func (p *Phone) SetController(c Controller) {
	p.ctrl = c
	p.lastCtrlSec = p.timeSec
}

// Sample is one telemetry point streamed to a run observer. It carries the
// same columns as the run trace, so callers can consume live what they would
// otherwise read back from RunResult.Trace.
type Sample struct {
	// TimeSec is the simulation time of the sample.
	TimeSec float64
	// SkinC / ScreenC / DieC / BatteryC are the ground-truth temperatures.
	SkinC, ScreenC, DieC, BatteryC float64
	// FreqMHz is the current effective CPU frequency.
	FreqMHz float64
	// Util is the instantaneous CPU utilization in [0,1].
	Util float64
	// MaxLevel is the DVFS clamp currently imposed (by USTA or thermal
	// engine); the table's top index when unclamped.
	MaxLevel int
}

// SetObserver installs (or clears, with nil) a per-sample telemetry hook.
// The observer fires once per trace row (every RecordPeriodSec of simulated
// time) from the goroutine executing Run; it must not retain the Sample
// beyond the call if it needs to stay allocation-free.
func (p *Phone) SetObserver(fn func(Sample)) { p.observer = fn }

// SetTraceFree toggles trace-free runs: RunResult.Trace and
// RunResult.Records stay nil and the logger retains only its latest record
// (the run-time predictor still works), while every aggregate — peak
// temperatures, averages, energy, work — is computed exactly as before.
// Observers still fire, so callers can stream instead of buffering. This is
// the memory diet for fleet-scale population sweeps.
//
// Controllers that read only LatestRecord (USTA) behave identically;
// controllers that consume the full Records history — e.g. the
// recalibrating wrapper, which needs minutes of log to refit — never see
// enough history in trace-free mode and effectively stay dormant, so keep
// such runs traced.
func (p *Phone) SetTraceFree(on bool) {
	p.traceFree = on
	p.logger.SetRetainLatestOnly(on)
}

// Governor returns the active cpufreq governor.
func (p *Phone) Governor() governor.Governor { return p.gov }

// CPU exposes the SoC model (the controller uses SetMaxLevel on it).
func (p *Phone) CPU() *soc.CPU { return p.cpu }

// Battery exposes the pack model.
func (p *Phone) Battery() *battery.Pack { return p.pack }

// Network exposes the thermal network (read-mostly; tests use it).
func (p *Phone) Network() *thermal.Network { return p.net }

// Nodes returns the thermal node handles.
func (p *Phone) Nodes() thermal.PhoneNodes { return p.nodes }

// Time returns the current simulation time in seconds.
func (p *Phone) Time() float64 { return p.timeSec }

// LatestRecord returns the most recent logger record, if any. This is the
// only observable interface the run-time predictor is allowed to use — it
// contains exactly the paper's feature tuple.
func (p *Phone) LatestRecord() (sensors.Record, bool) { return p.logger.Latest() }

// Records returns the full log collected so far.
func (p *Phone) Records() []sensors.Record { return p.logger.Records() }

// SkinTempC returns the physical back-cover-midsection temperature. Ground
// truth — for evaluation only, never for control.
func (p *Phone) SkinTempC() float64 { return p.net.Temp(p.nodes.CoverMid) }

// ScreenTempC returns the physical mid-screen temperature (ground truth).
func (p *Phone) ScreenTempC() float64 { return p.net.Temp(p.nodes.Screen) }

// DieTempC returns the physical die temperature (ground truth).
func (p *Phone) DieTempC() float64 { return p.net.Temp(p.nodes.Die) }

// RunResult aggregates one workload execution.
type RunResult struct {
	Workload    string
	Governor    string
	Ctrl        string
	DurSec      float64
	Trace       *trace.TimeSeries
	Records     []sensors.Record
	MaxSkinC    float64
	MaxScreenC  float64
	MaxDieC     float64
	MaxBatteryC float64
	AvgFreqMHz  float64
	AvgUtil     float64
	EnergyJ     float64
	// WorkDone / WorkDemanded are in core-MHz·s (≈ Mcycles).
	WorkDone     float64
	WorkDemanded float64
	// StartSoC / EndSoC are the battery state of charge at the run
	// boundaries.
	StartSoC float64
	EndSoC   float64
}

// Slowdown returns the fraction of demanded work left unserved (0 = no
// performance loss).
func (r *RunResult) Slowdown() float64 {
	if r.WorkDemanded <= 0 {
		return 0
	}
	return 1 - r.WorkDone/r.WorkDemanded
}

// Run executes the workload for min(dur, workload duration) seconds and
// returns the aggregated result. Pass dur <= 0 to run the workload's full
// duration. Run never stops early; use RunContext for cancellable runs.
func (p *Phone) Run(w workload.Workload, dur float64) *RunResult {
	res, _ := p.RunContext(context.Background(), w, dur)
	return res
}

// RunContext is Run with step-granular cancellation: the context is checked
// between simulation steps, so cancellation or a deadline stops the run
// within one StepSec of simulated progress. On early stop it returns the
// partial result aggregated over the steps that did execute, together with
// the context's error. The loop body lives in StepRun — the same ticks the
// fleet's batched runner drives in lockstep.
func (p *Phone) RunContext(ctx context.Context, w workload.Workload, dur float64) (*RunResult, error) {
	r := p.StartRun(w, dur)
	for r.Done() < r.Steps() {
		if err := ctx.Err(); err != nil {
			return r.Finish(err)
		}
		r.PreStep()
		p.net.Step(r.dt)
		r.PostStep()
	}
	return r.Finish(nil)
}

// step advances one base tick, sampling the workload through the run's
// sampler (a Cursored fast path when the workload offers one). It returns
// the workload's CPU demand in aggregate core-MHz so RunContext can
// account work without re-sampling the workload. The tick is split around
// the thermal integration — stepPre (demand, power injection, touch),
// Network.Step, stepPost (clock, sensors, governor, controller) — so the
// fleet's lockstep batch engine can advance many phones' thermal networks
// with one fused kernel while running the exact same pre/post code per
// phone.
func (p *Phone) step(at func(float64) workload.Sample, dt float64) (demandMHz float64) {
	demand := p.stepPre(at(p.timeSec), dt)
	p.net.Step(dt)
	p.stepPost(dt)
	return demand
}

// stepPre runs everything that precedes the tick's thermal integration:
// workload demand → utilization, power computation and injection, battery
// thermals, and hand-contact switching. It returns the workload's CPU
// demand in aggregate core-MHz.
func (p *Phone) stepPre(sample workload.Sample, dt float64) (demandMHz float64) {
	// 1. Demand → utilization at the current operating point.
	demand := sample.CPUFrac * p.cpu.MaxCapacityMHz()
	capacity := p.cpu.CapacityMHz()
	util := 0.0
	if capacity > 0 {
		util = demand / capacity
	}
	if util > 1 {
		util = 1
	}
	p.utilNow = util

	// 2. Power injection. Battery heat comes from the pack model: a
	// connected charger (ChargeWatts > 0 signals one, scaled by the
	// workload's charger duty) dissipates CC/CV inefficiency heat; on
	// discharge the pack adds its I²R losses — the AP↔battery thermal
	// coupling of Xie et al. (ICCAD'13), which the paper cites.
	dieT := p.net.Temp(p.nodes.Die)
	cpuPower := p.cpu.Power(util, dieT)
	gpuPower := p.cpu.GPUPower(sample.GPULoad)
	auxPower := sample.AuxWatts
	displayPower := sample.Display * p.cfg.DisplayMaxWatts

	var batteryHeat float64
	if sample.ChargeWatts > 0 {
		heat, _ := p.pack.Charge(dt)
		// The workload's ChargeWatts acts as a charger-duty scale relative
		// to the pack's nominal CC heat, so profiles can model slow/fast
		// chargers without knowing pack internals.
		batteryHeat = heat * sample.ChargeWatts / 0.9
	} else {
		batteryHeat = p.pack.Discharge(cpuPower+gpuPower+auxPower+displayPower, dt)
	}

	p.net.SetPower(p.nodes.Die, cpuPower)
	p.net.SetPower(p.nodes.Pkg, gpuPower)
	p.net.SetPower(p.nodes.PCB, auxPower)
	p.net.SetPower(p.nodes.Battery, batteryHeat)
	p.net.SetPower(p.nodes.Screen, displayPower)
	// Summed in node order, matching a sweep over the network's power
	// vector, so energy accounting is bit-identical to summing the nodes.
	p.powerNowW = cpuPower + gpuPower + auxPower + batteryHeat + displayPower

	// 3. Hand contact (palm coupling + blocked convection).
	if sample.Touch != p.touching {
		p.touching = sample.Touch
		thermal.ApplyTouch(p.net, p.nodes, p.cfg.Thermal, p.touching)
	}
	return demand
}

// stepPost runs everything that follows the tick's thermal integration
// (step 4, owned by the caller): the simulation clock, sensors and
// logging, the governor sampling window, and the thermal controller.
func (p *Phone) stepPost(dt float64) {
	p.timeSec += dt

	// 5. Sensors + logging. The lag filters advance every tick; the ADC
	// conversion (noise + quantization) happens inside the logger, once per
	// log line.
	p.cpuSensor.Advance(p.net.Temp(p.nodes.Die), dt)
	p.batSensor.Advance(p.net.Temp(p.nodes.Battery), dt)
	p.skinTherm.Advance(p.net.Temp(p.nodes.CoverMid), dt)
	p.screenTherm.Advance(p.net.Temp(p.nodes.Screen), dt)
	p.logger.Observe(p.timeSec, p.utilNow, p.cpu.FreqMHz(), p.cpuSensor, p.batSensor, p.skinTherm, p.screenTherm)

	// 6. Governor sampling window.
	p.govWinUtil += p.utilNow
	p.govWinSamples++
	if p.timeSec-p.lastGovSec+1e-9 >= p.cfg.GovernorPeriodSec {
		avg := p.govWinUtil / float64(p.govWinSamples)
		lvl := p.gov.NextLevel(governor.State{
			TimeSec:      p.timeSec,
			Util:         avg,
			CurrentLevel: p.cpu.Level(),
		})
		p.cpu.SetLevel(lvl)
		if p.hotplug != nil {
			p.cpu.SetOnlineCores(p.hotplug.NextOnline(p.timeSec, avg, p.cpu.OnlineCores()))
		}
		p.govWinUtil, p.govWinSamples = 0, 0
		p.lastGovSec = p.timeSec
	}

	// 7. Thermal controller (USTA).
	if p.ctrl != nil && p.timeSec-p.lastCtrlSec+1e-9 >= p.ctrl.PeriodSec() {
		p.ctrl.Act(p)
		p.lastCtrlSec = p.timeSec
	}
}
