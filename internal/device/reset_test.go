package device

import (
	"testing"

	"repro/internal/governor"
	"repro/internal/workload"
)

// runFresh builds a phone from cfg and runs w, returning the result.
func runFresh(t *testing.T, cfg Config, gov governor.Governor, w workload.Workload) *RunResult {
	t.Helper()
	p, err := New(cfg, gov)
	if err != nil {
		t.Fatal(err)
	}
	return p.Run(w, 0)
}

// sameRun asserts two results are byte-identical in every aggregate and in
// the full trace.
func sameRun(t *testing.T, label string, got, want *RunResult) {
	t.Helper()
	if got.MaxSkinC != want.MaxSkinC || got.MaxScreenC != want.MaxScreenC ||
		got.MaxDieC != want.MaxDieC || got.MaxBatteryC != want.MaxBatteryC {
		t.Fatalf("%s: peak temperatures diverged:\ngot  %+v\nwant %+v", label, got, want)
	}
	if got.AvgFreqMHz != want.AvgFreqMHz || got.AvgUtil != want.AvgUtil ||
		got.EnergyJ != want.EnergyJ || got.WorkDone != want.WorkDone ||
		got.EndSoC != want.EndSoC {
		t.Fatalf("%s: aggregates diverged:\ngot  %+v\nwant %+v", label, got, want)
	}
	if (got.Trace == nil) != (want.Trace == nil) {
		t.Fatalf("%s: trace retention differs", label)
	}
	if got.Trace != nil {
		if got.Trace.Len() != want.Trace.Len() {
			t.Fatalf("%s: trace rows %d vs %d", label, got.Trace.Len(), want.Trace.Len())
		}
		for _, s := range want.Trace.Series {
			g := got.Trace.Lookup(s.Name)
			if g == nil {
				t.Fatalf("%s: trace lost column %s", label, s.Name)
			}
			for i, v := range s.Values {
				if g.Values[i] != v {
					t.Fatalf("%s: trace %s row %d: %v vs %v", label, s.Name, i, g.Values[i], v)
				}
			}
		}
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("%s: %d records vs %d", label, len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		if got.Records[i] != want.Records[i] {
			t.Fatalf("%s: record %d diverged: %+v vs %+v", label, i, got.Records[i], want.Records[i])
		}
	}
}

// TestPhoneResetMatchesFreshConstruction is the contract behind the
// fleet's phone pool: a phone Reset to (gov, seed) must behave
// byte-identically — every aggregate, every trace row, every noisy sensor
// record — to a phone freshly constructed with the same configuration and
// seed, regardless of what ran on it before.
func TestPhoneResetMatchesFreshConstruction(t *testing.T) {
	cfg := DefaultConfig()
	dirty := workload.SquareWave(7, 10, 0.7, 0.95, 0.1, 180) // heats the phone, drains the pack
	target := workload.ByName("skype", 11)

	for _, seed := range []int64{1, 42, -9} {
		cfgSeed := cfg
		cfgSeed.Seed = seed
		want := runFresh(t, cfgSeed, nil, target)

		// Dirty a phone under a different seed, governor and controller
		// state, then Reset it to the target identity.
		dirtyCfg := cfg
		dirtyCfg.Seed = seed + 1000
		p, err := New(dirtyCfg, &governor.Performance{NumLevels: len(dirtyCfg.SoC.OPPs)})
		if err != nil {
			t.Fatal(err)
		}
		p.SetTraceFree(true)
		p.Run(dirty, 0)

		p.Reset(nil, seed)
		got := p.Run(target, 0)
		sameRun(t, "reset after dirty run", got, want)

		// A second reset on the same phone must be just as clean.
		p.Reset(nil, seed)
		sameRun(t, "second reset", p.Run(target, 0), want)
	}
}

// TestPhoneResetRestoresTouchCoupling: a run that ends mid-touch mutates
// the hand-bath coupling; Reset must restore the untouched configuration
// or the next job starts with a phantom palm on the cover.
func TestPhoneResetRestoresTouchCoupling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 5
	// Constant touch: the run ends while the phone is held.
	held := workload.New("held", 1, workload.Phase{Name: "hold", Dur: 60, CPU: 0.8, Touch: true})
	want := runFresh(t, cfg, nil, workload.Idle(60))

	p, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(held, 0)
	p.Reset(nil, 5)
	sameRun(t, "reset after touched run", p.Run(workload.Idle(60), 0), want)
}
