package device

import (
	"math"
	"testing"

	"repro/internal/governor"
	"repro/internal/workload"
)

func TestNewValidatesConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StepSec = 0
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("zero StepSec accepted")
	}
	cfg = DefaultConfig()
	cfg.GovernorPeriodSec = 0.01
	cfg.StepSec = 0.05
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("governor period below step accepted")
	}
	cfg = DefaultConfig()
	cfg.SoC.NumCores = 0
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("invalid SoC config accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.StepSec = -1
	MustNew(cfg, nil)
}

func TestDefaultGovernorIsOndemand(t *testing.T) {
	p := MustNew(DefaultConfig(), nil)
	if p.Governor().Name() != "ondemand" {
		t.Fatalf("default governor = %q want ondemand", p.Governor().Name())
	}
}

func TestIdleRunStaysCool(t *testing.T) {
	p := MustNew(DefaultConfig(), nil)
	res := p.Run(workload.Idle(300), 0)
	if res.MaxSkinC > 28 {
		t.Fatalf("idle phone skin peaked at %.1f °C", res.MaxSkinC)
	}
	if res.AvgFreqMHz > 600 {
		t.Fatalf("idle phone averaged %.0f MHz; ondemand should park near 384", res.AvgFreqMHz)
	}
}

func TestHeavyRunHeatsUpAndRunsFast(t *testing.T) {
	p := MustNew(DefaultConfig(), nil)
	res := p.Run(workload.SquareWave(1, 10, 1.0, 0.95, 0.95, 600), 0) // constant 95 %
	if res.MaxSkinC < 33 {
		t.Fatalf("10 min of saturating load only reached %.1f °C skin", res.MaxSkinC)
	}
	if res.AvgFreqMHz < 1400 {
		t.Fatalf("ondemand under saturating load averaged %.0f MHz, want near max", res.AvgFreqMHz)
	}
	if res.MaxDieC <= res.MaxSkinC {
		t.Fatal("die must run hotter than the cover")
	}
	if res.AvgUtil < 0.8 {
		t.Fatalf("avg util = %.2f want near 1", res.AvgUtil)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a := MustNew(cfg, nil).Run(workload.Skype(7), 120)
	b := MustNew(cfg, nil).Run(workload.Skype(7), 120)
	if a.MaxSkinC != b.MaxSkinC || a.AvgFreqMHz != b.AvgFreqMHz || a.EnergyJ != b.EnergyJ {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestRunSeedChangesSensorNoise(t *testing.T) {
	cfg := DefaultConfig()
	a := MustNew(cfg, nil).Run(workload.Skype(7), 60)
	cfg.Seed = 999
	b := MustNew(cfg, nil).Run(workload.Skype(7), 60)
	if len(a.Records) == 0 || len(b.Records) == 0 {
		t.Fatal("no logger records")
	}
	same := true
	for i := range a.Records {
		if a.Records[i].CPUTempC != b.Records[i].CPUTempC {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different sensor seeds produced identical logs")
	}
}

func TestRunTraceAndRecordsPopulated(t *testing.T) {
	p := MustNew(DefaultConfig(), nil)
	res := p.Run(workload.YouTube(3), 90)
	if res.Trace.Len() < 85 || res.Trace.Len() > 95 {
		t.Fatalf("trace rows = %d want ≈90 at 1 Hz", res.Trace.Len())
	}
	if len(res.Records) < 85 {
		t.Fatalf("logger records = %d want ≈90", len(res.Records))
	}
	if res.Trace.Lookup("skin_c") == nil || res.Trace.Lookup("freq_mhz") == nil {
		t.Fatal("trace missing standard columns")
	}
}

func TestPowersaveCoolerAndSlowerThanPerformance(t *testing.T) {
	w := workload.SquareWave(1, 10, 1.0, 0.9, 0.9, 420)
	perf := MustNew(DefaultConfig(), &governor.Performance{NumLevels: 12}).Run(w, 0)
	save := MustNew(DefaultConfig(), &governor.Powersave{}).Run(w, 0)
	if save.MaxSkinC >= perf.MaxSkinC {
		t.Fatalf("powersave (%.1f) must be cooler than performance (%.1f)", save.MaxSkinC, perf.MaxSkinC)
	}
	if save.AvgFreqMHz >= perf.AvgFreqMHz {
		t.Fatal("powersave must run slower than performance")
	}
	if save.Slowdown() <= perf.Slowdown() {
		t.Fatalf("powersave must lose more work: %.3f vs %.3f", save.Slowdown(), perf.Slowdown())
	}
	if save.EnergyJ >= perf.EnergyJ {
		t.Fatal("powersave must use less energy on a fixed-duration run")
	}
}

func TestSlowdownZeroWhenUnconstrained(t *testing.T) {
	// A light workload served at any frequency loses no work under
	// performance governor.
	p := MustNew(DefaultConfig(), &governor.Performance{NumLevels: 12})
	res := p.Run(workload.YouTube(1), 120)
	if res.Slowdown() > 1e-9 {
		t.Fatalf("slowdown = %v want 0", res.Slowdown())
	}
}

func TestSlowdownEmptyResult(t *testing.T) {
	r := &RunResult{}
	if r.Slowdown() != 0 {
		t.Fatal("zero-demand slowdown must be 0")
	}
}

// clampController pins the max level; used to verify the controller hook
// and the clamp plumbing end to end.
type clampController struct {
	level int
	calls int
}

func (c *clampController) Name() string       { return "clamp" }
func (c *clampController) PeriodSec() float64 { return 3 }
func (c *clampController) Act(p *Phone) {
	c.calls++
	p.CPU().SetMaxLevel(c.level)
}
func (c *clampController) Reset() { c.calls = 0 }

func TestControllerHookRunsAtItsPeriod(t *testing.T) {
	p := MustNew(DefaultConfig(), nil)
	ctrl := &clampController{level: 0}
	p.SetController(ctrl)
	res := p.Run(workload.SquareWave(1, 10, 1.0, 0.95, 0.95, 60), 0)
	if ctrl.calls < 18 || ctrl.calls > 21 {
		t.Fatalf("controller ran %d times in 60 s at 3 s period", ctrl.calls)
	}
	// Clamped to the bottom level, the CPU must never exceed 384 MHz after
	// the first controller action.
	freqs := res.Trace.Lookup("freq_mhz").Values
	for i, f := range freqs {
		if res.Trace.TimeSec[i] > 4 && f > 384+1 {
			t.Fatalf("clamp violated at t=%v: %v MHz", res.Trace.TimeSec[i], f)
		}
	}
	if res.Ctrl != "clamp" {
		t.Fatalf("result Ctrl = %q", res.Ctrl)
	}
}

func TestControllerClampReducesHeatAndWork(t *testing.T) {
	w := workload.SquareWave(1, 10, 1.0, 0.95, 0.95, 600)
	free := MustNew(DefaultConfig(), nil).Run(w, 0)
	clamped := MustNew(DefaultConfig(), nil)
	clamped.SetController(&clampController{level: 2})
	cres := clamped.Run(w, 0)
	if cres.MaxSkinC >= free.MaxSkinC {
		t.Fatalf("clamped run must be cooler: %.1f vs %.1f", cres.MaxSkinC, free.MaxSkinC)
	}
	if cres.AvgFreqMHz >= free.AvgFreqMHz {
		t.Fatal("clamped run must be slower on average")
	}
	if cres.Slowdown() <= free.Slowdown() {
		t.Fatal("clamped run must sacrifice work")
	}
}

func TestLatestRecordMatchesPaperFeatures(t *testing.T) {
	p := MustNew(DefaultConfig(), nil)
	p.Run(workload.Skype(3), 10)
	rec, ok := p.LatestRecord()
	if !ok {
		t.Fatal("no record after 10 s")
	}
	f := rec.Features()
	if len(f) != 4 {
		t.Fatalf("feature vector length = %d want 4", len(f))
	}
	if rec.CPUTempC < 20 || rec.CPUTempC > 100 {
		t.Fatalf("implausible CPU temp %v", rec.CPUTempC)
	}
	if rec.FreqMHz < 384 || rec.FreqMHz > 1512 {
		t.Fatalf("implausible freq %v", rec.FreqMHz)
	}
	if rec.Util < 0 || rec.Util > 1 {
		t.Fatalf("implausible util %v", rec.Util)
	}
}

func TestTouchCouplingActivates(t *testing.T) {
	// Same workload with and without touch: a held cold phone warms faster
	// because the palm is warmer than ambient.
	held := workload.New("held", 1, workload.Phase{Name: "h", Dur: 300, CPU: 0.02, Touch: true})
	loose := workload.New("loose", 1, workload.Phase{Name: "l", Dur: 300, CPU: 0.02})
	a := MustNew(DefaultConfig(), nil).Run(held, 0)
	b := MustNew(DefaultConfig(), nil).Run(loose, 0)
	if a.MaxSkinC <= b.MaxSkinC {
		t.Fatalf("held idle phone (%.2f) should warm above untouched (%.2f)", a.MaxSkinC, b.MaxSkinC)
	}
}

func TestChargingWorkloadWarmsBattery(t *testing.T) {
	p := MustNew(DefaultConfig(), nil)
	res := p.Run(workload.Charging(1), 900)
	if res.MaxBatteryC < 27 {
		t.Fatalf("charging battery peaked at %.1f °C, want a visible rise", res.MaxBatteryC)
	}
	if res.AvgFreqMHz > 500 {
		t.Fatalf("charging run averaged %.0f MHz; CPU should idle", res.AvgFreqMHz)
	}
}

func TestEnergyAccountingPositiveAndScales(t *testing.T) {
	short := MustNew(DefaultConfig(), nil).Run(workload.Skype(5), 60)
	long := MustNew(DefaultConfig(), nil).Run(workload.Skype(5), 120)
	if short.EnergyJ <= 0 {
		t.Fatal("energy must be positive")
	}
	if long.EnergyJ <= short.EnergyJ*1.5 {
		t.Fatalf("doubling duration should roughly double energy: %v vs %v", short.EnergyJ, long.EnergyJ)
	}
}

func TestBatteryDrainsUnderLoad(t *testing.T) {
	p := MustNew(DefaultConfig(), nil)
	res := p.Run(workload.SquareWave(1, 10, 1.0, 0.9, 0.9, 600), 0)
	if res.EndSoC >= res.StartSoC {
		t.Fatalf("10 min of heavy load should drain the pack: %v -> %v", res.StartSoC, res.EndSoC)
	}
	// ~3.5 W for 10 min ≈ 0.58 Wh ≈ 7 % of an 8 Wh pack.
	drop := res.StartSoC - res.EndSoC
	if drop < 0.03 || drop > 0.2 {
		t.Fatalf("implausible SoC drop %.3f for a 10-min heavy run", drop)
	}
}

func TestBatteryChargesDuringChargingWorkload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialSoC = 0.3
	p := MustNew(cfg, nil)
	res := p.Run(workload.Charging(1), 1800)
	if res.EndSoC <= res.StartSoC {
		t.Fatalf("charging workload should fill the pack: %v -> %v", res.StartSoC, res.EndSoC)
	}
}

func TestBatteryChargeHeatTapersWhenNearlyFull(t *testing.T) {
	// A nearly full pack tapers into CV: less heat, cooler battery node
	// than a low pack on the same charging workload.
	low := DefaultConfig()
	low.InitialSoC = 0.2
	full := DefaultConfig()
	full.InitialSoC = 0.97
	rLow := MustNew(low, nil).Run(workload.Charging(1), 1200)
	rFull := MustNew(full, nil).Run(workload.Charging(1), 1200)
	if rFull.MaxBatteryC >= rLow.MaxBatteryC {
		t.Fatalf("CV-phase charging should run cooler: %.2f vs %.2f", rFull.MaxBatteryC, rLow.MaxBatteryC)
	}
}

func TestRunHonorsExplicitDuration(t *testing.T) {
	p := MustNew(DefaultConfig(), nil)
	res := p.Run(workload.Skype(1), 45)
	if res.DurSec != 45 {
		t.Fatalf("DurSec = %v want 45", res.DurSec)
	}
	if math.Abs(p.Time()-45) > 0.1 {
		t.Fatalf("phone time = %v want 45", p.Time())
	}
}

func TestRunCapsAtWorkloadDuration(t *testing.T) {
	p := MustNew(DefaultConfig(), nil)
	w := workload.Idle(30)
	res := p.Run(w, 500)
	if res.DurSec != 30 {
		t.Fatalf("DurSec = %v want 30 (workload length)", res.DurSec)
	}
}
