package device

import (
	"context"
	"fmt"

	"repro/internal/governor"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// EventMode selects the stepping engine for a run.
//
// The fixed-tick oracle recomputes every input every 50 ms even though the
// workload sample — the only *external* input — is piecewise-constant
// between events (phase boundaries, burst edges, jitter slots, touch
// flips). The event modes exploit that: a run is cut into segments at
// every point where an input may change or an observation must happen
// (logger emission, trace record, controller epoch), the segment's inputs
// are frozen, and the per-tick *scheduling* arithmetic (utilization,
// governor windows and fires, aggregate sums) is replayed exactly while
// the *physics* (thermal network + sensor lags) advances under the frozen
// drive — sequentially in EventOracle, in O(log ticks) matrix jumps in
// EventJump.
//
// What is exact and what is approximate, precisely:
//
//   - EventTick runs the event machinery but takes every tick canonically;
//     it is byte-identical to the plain tick loop (EventOff) and exists to
//     pin exactly that in CI.
//   - EventOracle and EventJump hold each segment's power/battery inputs
//     at segment-start values (a zero-order hold at event resolution,
//     instead of tick resolution). Frequency, utilization, governor-level
//     trajectories, work aggregates and record Util/FreqMHz averages are
//     replayed bit-exactly for governor-driven runs; thermal-plane values
//     (temperatures, energy, state of charge, sensor readings) differ
//     from the tick oracle only by the held-input discretization, which
//     the differential suite bounds to millikelvins on the paper's
//     workloads. A controller that *reads* thermal observations (USTA)
//     can therefore occasionally clamp one decision differently; runs
//     without a controller stay exact on the whole scheduling plane.
//   - EventJump vs EventOracle differ only by floating-point summation
//     order in the physics (≈1e-9 °C); everything else is identical.
//
// Ticks where draws, emissions or decisions happen — logger emissions,
// trace records, controller epochs — close their segment: the physics
// jump lands exactly on them and their emission/decision arithmetic is
// replayed from the jumped state in the oracle's order, so every
// sensor-noise draw happens at exactly the tick the oracle draws it and
// the noise streams never desynchronize. A close-out may be a segment of
// one tick (a level change landing just before an emission); only the
// run's first tick and charging ticks stay fully canonical.
type EventMode int

const (
	// EventOff is the plain fixed-tick loop (no event machinery).
	EventOff EventMode = iota
	// EventTick drives the event engine with every tick canonical:
	// byte-identical to EventOff, the CI pin for the event plumbing.
	EventTick
	// EventOracle folds held-input segments but advances the physics
	// tick by tick: the differential midpoint between EventTick and
	// EventJump.
	EventOracle
	// EventJump folds held-input segments and advances the physics with
	// power-of-two propagator-ladder jumps (thermal.Ladder): O(log gap)
	// matrix applications per segment. The production event engine.
	EventJump
)

// String returns the CLI spelling of the mode.
func (m EventMode) String() string {
	switch m {
	case EventOff:
		return "off"
	case EventTick:
		return "tick"
	case EventOracle:
		return "oracle"
	case EventJump:
		return "jump"
	}
	return fmt.Sprintf("EventMode(%d)", int(m))
}

// ParseEventMode parses the CLI spelling of an event mode.
func ParseEventMode(s string) (EventMode, error) {
	switch s {
	case "", "off":
		return EventOff, nil
	case "tick":
		return EventTick, nil
	case "oracle":
		return EventOracle, nil
	case "jump":
		return EventJump, nil
	}
	return EventOff, fmt.Errorf("device: unknown event mode %q (want off|tick|oracle|jump)", s)
}

// EventRun drives a StepRun segment by segment instead of tick by tick.
// Construct with NewEventRun (or Phone.StartEventRun) and call Segment
// until Active reports false, then Finish.
type EventRun struct {
	r    *StepRun
	mode EventMode

	// boundary is the workload's next-change query; nil degrades the
	// effective mode to EventTick (every tick canonical — correct for any
	// workload, just without the speedup).
	boundary func(float64) float64

	// taps couple the four sensor lag filters to their thermal nodes for
	// the jump ladder, in the exact order stepPost advances them.
	taps   []thermal.Tap
	states []float64
	sc     thermal.LadderScratch

	// Two-slot ladder memo keyed by the network fingerprint: a run
	// alternates between at most the touching / not-touching
	// configurations, and the memo keeps the per-segment lookup off the
	// shared cache's mutex.
	ladSig [2]uint64
	lad    [2]*thermal.Ladder
}

// NewEventRun wraps an open StepRun in the event engine. w must be the
// workload the run was started with (it supplies the boundary query).
// Modes that fold segments degrade to EventTick when the workload has no
// boundary query or the device runs the hotplug policy (whose online-core
// changes invalidate held capacity).
func NewEventRun(r *StepRun, w workload.Workload, mode EventMode) *EventRun {
	e := &EventRun{r: r, mode: mode}
	if mode >= EventOracle {
		e.boundary = workload.NextChangeOf(w)
		if e.boundary == nil || r.p.hotplug != nil {
			e.mode = EventTick
		}
	}
	if e.mode >= EventOracle {
		p := r.p
		dt := r.dt
		e.taps = []thermal.Tap{
			{Node: p.nodes.Die, Alpha: p.cpuSensor.Alpha(dt)},
			{Node: p.nodes.Battery, Alpha: p.batSensor.Alpha(dt)},
			{Node: p.nodes.CoverMid, Alpha: p.skinTherm.Alpha(dt)},
			{Node: p.nodes.Screen, Alpha: p.screenTherm.Alpha(dt)},
		}
		e.states = make([]float64, len(e.taps))
	}
	return e
}

// StartEventRun opens a tick-controlled run of w (StartRun) and wraps it
// in the event engine.
func (p *Phone) StartEventRun(w workload.Workload, dur float64, mode EventMode) *EventRun {
	return NewEventRun(p.StartRun(w, dur), w, mode)
}

// Run returns the underlying StepRun.
func (e *EventRun) Run() *StepRun { return e.r }

// Mode returns the effective mode (after any degradation to EventTick).
func (e *EventRun) Mode() EventMode { return e.mode }

// Active reports whether ticks remain.
func (e *EventRun) Active() bool { return e.r.done < e.r.steps }

// Finish closes the run (StepRun.Finish).
func (e *EventRun) Finish(err error) (*RunResult, error) { return e.r.Finish(err) }

// RunEventContext is RunContext on the event engine: segment-granular
// cancellation (a segment is at most one record period of simulated time).
// mode EventOff delegates to the plain tick loop.
func (p *Phone) RunEventContext(ctx context.Context, w workload.Workload, dur float64, mode EventMode) (*RunResult, error) {
	if mode == EventOff {
		return p.RunContext(ctx, w, dur)
	}
	e := p.StartEventRun(w, dur, mode)
	for e.Active() {
		if err := ctx.Err(); err != nil {
			return e.Finish(err)
		}
		e.Segment()
	}
	return e.Finish(nil)
}

// canonicalTick advances exactly one oracle tick.
func (e *EventRun) canonicalTick() {
	r := e.r
	r.PreStep()
	r.p.net.Step(r.dt)
	r.PostStep()
}

// Segment advances the run by one unit: a single canonical tick when the
// mode demands it (EventTick, the run's first tick, charging), otherwise
// one held-input segment of up to a record period's worth of folded
// ticks, closed by the next observing/deciding tick.
func (e *EventRun) Segment() {
	r := e.r
	if r.done >= r.steps {
		return
	}
	// The first tick is always canonical: it primes the sensor lags,
	// opens the logger window and emits the initial record, exactly like
	// the oracle.
	if e.mode == EventTick || r.done == 0 {
		e.canonicalTick()
		return
	}
	e.runHeld()
}

// runHeld folds one held-input segment: inputs frozen at segment start,
// per-tick scheduling arithmetic replayed exactly, physics advanced under
// the frozen drive at the end (sequentially in EventOracle, by ladder
// jump in EventJump).
func (e *EventRun) runHeld() {
	r := e.r
	p := r.p
	res := r.res
	dt := r.dt

	sample := r.at(p.timeSec)
	if sample.ChargeWatts > 0 {
		// Charging mutates the pack's CC/CV state nonlinearly per tick;
		// keep those ticks canonical (exact). Only the Charging workload
		// has them, for a fraction of its duration.
		e.canonicalTick()
		return
	}
	nextChange := e.boundary(p.timeSec)

	// Freeze the segment inputs — the same arithmetic as stepPre, with
	// the battery heat peeked instead of drained (the drain happens once,
	// below, when the segment length is known).
	if sample.Touch != p.touching {
		p.touching = sample.Touch
		thermal.ApplyTouch(p.net, p.nodes, p.cfg.Thermal, p.touching)
	}
	demand := sample.CPUFrac * p.cpu.MaxCapacityMHz()
	capacity := p.cpu.CapacityMHz()
	util := 0.0
	if capacity > 0 {
		util = demand / capacity
	}
	if util > 1 {
		util = 1
	}
	p.utilNow = util
	r.demand = demand

	dieT := p.net.Temp(p.nodes.Die)
	cpuPower := p.cpu.Power(util, dieT)
	gpuPower := p.cpu.GPUPower(sample.GPULoad)
	auxPower := sample.AuxWatts
	displayPower := sample.Display * p.cfg.DisplayMaxWatts
	load := cpuPower + gpuPower + auxPower + displayPower
	batteryHeat := p.pack.DischargeHeat(load)
	powerNow := cpuPower + gpuPower + auxPower + batteryHeat + displayPower

	// Fold ticks while the frozen inputs stay truthful: stop at the
	// workload's next change, at a governor level change, or at the run's
	// end. An observing/deciding tick (logger emission, trace record,
	// controller epoch) that is still covered by the frozen inputs does
	// not end the fold — it becomes the segment's close-out tick: the
	// physics jump lands exactly on it and its emission arithmetic is
	// replayed from the jumped state below. The loop body replays
	// stepPost's scheduling arithmetic (logger accumulation BEFORE the
	// governor block, aggregate frequency AFTER it — PostStep's order)
	// add for add, so every accumulator sees the identical float sequence
	// the oracle would produce.
	// Per-tick constants and accumulators hoisted to locals: the governor
	// interface call inside the loop could alias anything as far as the
	// compiler knows, so field-resident accumulators would be reloaded
	// and re-stored every tick. The products powerNow·dt and demand·dt
	// are bitwise the same every tick, so computing them once preserves
	// the oracle's exact add sequence.
	level := p.cpu.Level()
	maxSteps := r.steps - r.done
	powerDt := powerNow * dt
	demandDt := demand * dt
	govPeriod := p.cfg.GovernorPeriodSec
	recPeriod := p.cfg.RecordPeriodSec
	lastRec := r.lastRecord
	hasCtrl := p.ctrl != nil
	var ctrlPeriod, lastCtrl float64
	if hasCtrl {
		ctrlPeriod = p.ctrl.PeriodSec()
		lastCtrl = p.lastCtrlSec
	}
	timeSec := p.timeSec
	lastGov := p.lastGovSec
	govUtil := p.govWinUtil
	govN := p.govWinSamples
	freqSum := r.freqSum
	utilSum := r.utilSum
	energy := res.EnergyJ
	workDem := res.WorkDemanded
	workDone := res.WorkDone
	k := 0
	closeOut := false
	for {
		if k > 0 {
			if k >= maxSteps || timeSec >= nextChange || p.cpu.Level() != level {
				break
			}
		}
		t1 := timeSec + dt
		if p.logger.WouldEmit(t1) || t1-lastRec+1e-9 >= recPeriod ||
			(hasCtrl && t1-lastCtrl+1e-9 >= ctrlPeriod) {
			// The tick is within the frozen inputs' validity (checked
			// above for k > 0; at k == 0 the freeze just happened), so it
			// joins the physics jump; its scheduling/emission replay runs
			// post-jump, because emission samples the sensors at the
			// jumped state. A segment can therefore be a single close-out
			// tick — e.g. when a governor level change lands right before
			// an emission.
			closeOut = true
			k++
			break
		}
		timeSec += dt
		p.logger.ObserveHeld(timeSec, util, p.cpu.FreqMHz())
		govUtil += util
		govN++
		if timeSec-lastGov+1e-9 >= govPeriod {
			avg := govUtil / float64(govN)
			lvl := p.gov.NextLevel(governor.State{
				TimeSec:      timeSec,
				Util:         avg,
				CurrentLevel: p.cpu.Level(),
			})
			p.cpu.SetLevel(lvl)
			govUtil, govN = 0, 0
			lastGov = timeSec
		}
		freqSum += p.cpu.FreqMHz()
		utilSum += util
		energy += powerDt
		capNow := p.cpu.CapacityMHz()
		workDem += demandDt
		if capNow < demand {
			workDone += capNow * dt
		} else {
			workDone += demandDt
		}
		k++
	}
	p.timeSec = timeSec
	p.lastGovSec = lastGov
	p.govWinUtil = govUtil
	p.govWinSamples = govN
	r.freqSum = freqSum
	r.utilSum = utilSum
	res.EnergyJ = energy
	res.WorkDemanded = workDem
	res.WorkDone = workDone

	// One held-model drain for the whole segment: the heat rate matches
	// the peek above (same load, same segment-start SoC), so powerNow was
	// consistent with the drain.
	p.pack.Discharge(load, float64(k)*dt)

	p.net.SetPower(p.nodes.Die, cpuPower)
	p.net.SetPower(p.nodes.Pkg, gpuPower)
	p.net.SetPower(p.nodes.PCB, auxPower)
	p.net.SetPower(p.nodes.Battery, batteryHeat)
	p.net.SetPower(p.nodes.Screen, displayPower)
	p.powerNowW = powerNow

	if e.mode == EventJump {
		if l := e.ladderFor(dt); l != nil {
			e.states[0] = p.cpuSensor.LagState()
			e.states[1] = p.batSensor.LagState()
			e.states[2] = p.skinTherm.LagState()
			e.states[3] = p.screenTherm.LagState()
			l.AdvanceComposite(p.net, e.states, k, &e.sc)
			p.cpuSensor.SetLagState(e.states[0])
			p.batSensor.SetLagState(e.states[1])
			p.skinTherm.SetLagState(e.states[2])
			p.screenTherm.SetLagState(e.states[3])
		} else {
			e.seqPhysics(k)
		}
	} else {
		e.seqPhysics(k)
	}

	// Close-out tick: replay the observing/deciding tick's scheduling and
	// emission arithmetic from the jumped state, in stepPost/PostStep's
	// order — logger accumulation and emission (the noise draws happen
	// here, at exactly the tick the oracle draws them), governor window,
	// controller epoch, then the post-decision frequency into the
	// aggregates and the trace record.
	var freqOut float64
	if closeOut {
		p.timeSec += dt
		p.logger.ObserveHeld(p.timeSec, util, p.cpu.FreqMHz())
		p.logger.EmitHeld(p.timeSec, p.cpuSensor, p.batSensor, p.skinTherm, p.screenTherm)
		p.govWinUtil += util
		p.govWinSamples++
		if p.timeSec-p.lastGovSec+1e-9 >= p.cfg.GovernorPeriodSec {
			avg := p.govWinUtil / float64(p.govWinSamples)
			lvl := p.gov.NextLevel(governor.State{
				TimeSec:      p.timeSec,
				Util:         avg,
				CurrentLevel: p.cpu.Level(),
			})
			p.cpu.SetLevel(lvl)
			p.govWinUtil, p.govWinSamples = 0, 0
			p.lastGovSec = p.timeSec
		}
		if p.ctrl != nil && p.timeSec-p.lastCtrlSec+1e-9 >= p.ctrl.PeriodSec() {
			p.ctrl.Act(p)
			p.lastCtrlSec = p.timeSec
		}
		freqOut = p.cpu.FreqMHz()
		r.freqSum += freqOut
		r.utilSum += util
		res.EnergyJ += powerNow * dt
		capNow := p.cpu.CapacityMHz()
		res.WorkDemanded += demand * dt
		served := demand
		if capNow < served {
			served = capNow
		}
		res.WorkDone += served * dt
	}

	// Peak tracking from the segment-end state. Between two records the
	// oracle checks every tick; under monotone intra-segment transients
	// (the common case — segments are sub-second) the end state is the
	// extremum, and the record ticks closing each segment replay the
	// oracle's record arithmetic either way. The differential suite bounds
	// the residual.
	skin := p.net.Temp(p.nodes.CoverMid)
	screen := p.net.Temp(p.nodes.Screen)
	die := p.net.Temp(p.nodes.Die)
	bat := p.net.Temp(p.nodes.Battery)
	if skin > res.MaxSkinC {
		res.MaxSkinC = skin
	}
	if screen > res.MaxScreenC {
		res.MaxScreenC = screen
	}
	if die > res.MaxDieC {
		res.MaxDieC = die
	}
	if bat > res.MaxBatteryC {
		res.MaxBatteryC = bat
	}

	// Trace record + telemetry observer at the close-out tick, exactly
	// PostStep's record block.
	if closeOut && p.timeSec-r.lastRecord+1e-9 >= p.cfg.RecordPeriodSec {
		if res.Trace != nil {
			res.Trace.Append(p.timeSec,
				skin, screen, die, bat,
				freqOut, p.utilNow, float64(p.cpu.MaxLevel()),
			)
		}
		r.lastRecord = p.timeSec
		if p.observer != nil {
			p.observer(Sample{
				TimeSec:  p.timeSec,
				SkinC:    skin,
				ScreenC:  screen,
				DieC:     die,
				BatteryC: bat,
				FreqMHz:  freqOut,
				Util:     p.utilNow,
				MaxLevel: p.cpu.MaxLevel(),
			})
		}
	}
	r.done += k
}

// seqPhysics advances the physics k ticks under the already-injected
// frozen drive: the per-tick propagator step plus the sensor lag
// recurrence, exactly the oracle's physics path with held inputs
// (EventOracle, and EventJump's fallback when no ladder is available —
// e.g. RK4-forced networks).
func (e *EventRun) seqPhysics(k int) {
	p := e.r.p
	dt := e.r.dt
	for i := 0; i < k; i++ {
		p.net.Step(dt)
		p.cpuSensor.Advance(p.net.Temp(p.nodes.Die), dt)
		p.batSensor.Advance(p.net.Temp(p.nodes.Battery), dt)
		p.skinTherm.Advance(p.net.Temp(p.nodes.CoverMid), dt)
		p.screenTherm.Advance(p.net.Temp(p.nodes.Screen), dt)
	}
}

// ladderFor returns the jump ladder for the network's current
// configuration through the run's two-slot memo (touching / not).
func (e *EventRun) ladderFor(dt float64) *thermal.Ladder {
	sig := e.r.p.net.Fingerprint()
	if e.lad[0] != nil && e.ladSig[0] == sig {
		return e.lad[0]
	}
	if e.lad[1] != nil && e.ladSig[1] == sig {
		e.lad[0], e.lad[1] = e.lad[1], e.lad[0]
		e.ladSig[0], e.ladSig[1] = e.ladSig[1], e.ladSig[0]
		return e.lad[0]
	}
	l := e.r.p.net.LadderFor(dt, e.taps)
	if l != nil {
		e.lad[1], e.ladSig[1] = e.lad[0], e.ladSig[0]
		e.lad[0], e.ladSig[0] = l, sig
	}
	return l
}
