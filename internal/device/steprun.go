package device

import (
	"math"

	"repro/internal/trace"
	"repro/internal/workload"
)

// StepRun is one workload execution under external tick control: the same
// loop RunContext runs, opened up so a caller can interleave the phone's
// per-tick work with its own scheduling. The fleet's batched runner drives
// a whole cohort of StepRuns in lockstep — PreStep on every phone, one
// batched thermal advance (thermal.Lockstep.Step), PostStep on every
// phone — and RunContext itself is implemented on a StepRun, so the two
// paths cannot drift: a lockstep run is byte-identical to a solo run by
// construction.
//
// The tick protocol per step is PreStep → advance p.Network() by Dt —
// either Network.Step or a lockstep batch — → PostStep. Finish closes the
// run (idempotent) and returns the aggregated result.
type StepRun struct {
	p   *Phone
	res *RunResult
	at  func(float64) workload.Sample

	dt         float64
	steps      int
	done       int
	freqSum    float64
	utilSum    float64
	lastRecord float64
	demand     float64
	finished   bool
}

// StartRun opens a tick-controlled run of w for min(dur, workload
// duration) seconds (dur <= 0: the workload's full duration), performing
// exactly RunContext's setup: trace preallocation, aggregate
// initialization from the phone's current state, and the per-run workload
// cursor.
func (p *Phone) StartRun(w workload.Workload, dur float64) *StepRun {
	if dur <= 0 || dur > w.Duration() {
		dur = w.Duration()
	}
	res := &RunResult{
		Workload: w.Name(),
		Governor: p.gov.Name(),
		DurSec:   dur,
	}
	dt := p.cfg.StepSec
	r := &StepRun{
		p:          p,
		res:        res,
		at:         workload.SamplerOf(w),
		dt:         dt,
		steps:      int(math.Round(dur / dt)),
		lastRecord: -math.MaxFloat64,
	}
	if !p.traceFree {
		// Preallocate the row capacity the record period implies, so the
		// hot loop never regrows a column.
		rows := 0
		if p.cfg.RecordPeriodSec > 0 {
			rows = int(dur/p.cfg.RecordPeriodSec) + 2
		}
		res.Trace = trace.NewWithCap(rows,
			"skin_c", "screen_c", "die_c", "battery_c",
			"freq_mhz", "util", "max_level",
		)
	}
	if p.ctrl != nil {
		res.Ctrl = p.ctrl.Name()
	}
	res.MaxSkinC = p.SkinTempC()
	res.MaxScreenC = p.ScreenTempC()
	res.MaxDieC = p.DieTempC()
	res.MaxBatteryC = p.net.Temp(p.nodes.Battery)
	res.StartSoC = p.pack.SoC()
	return r
}

// Steps returns the total tick count of the run.
func (r *StepRun) Steps() int { return r.steps }

// Done returns how many ticks have completed (PreStep+PostStep pairs).
func (r *StepRun) Done() int { return r.done }

// Dt returns the base tick length in seconds.
func (r *StepRun) Dt() float64 { return r.dt }

// Phone returns the phone this run drives.
func (r *StepRun) Phone() *Phone { return r.p }

// PreStep runs the pre-thermal half of the next tick: workload sampling,
// power injection and touch switching. The caller must advance the
// phone's thermal network by Dt before calling PostStep.
func (r *StepRun) PreStep() {
	r.demand = r.p.stepPre(r.at(r.p.timeSec), r.dt)
}

// PostStep runs the post-thermal half of the tick — clock, sensors,
// governor, controller — and folds the tick into the run aggregates.
func (r *StepRun) PostStep() {
	p := r.p
	res := r.res
	p.stepPost(r.dt)

	freq := p.cpu.FreqMHz()
	r.freqSum += freq
	r.utilSum += p.utilNow
	res.EnergyJ += p.powerNowW * r.dt
	capNow := p.cpu.CapacityMHz()
	res.WorkDemanded += r.demand * r.dt
	served := r.demand
	if capNow < served {
		served = capNow
	}
	res.WorkDone += served * r.dt

	skin := p.net.Temp(p.nodes.CoverMid)
	screen := p.net.Temp(p.nodes.Screen)
	die := p.net.Temp(p.nodes.Die)
	bat := p.net.Temp(p.nodes.Battery)
	if skin > res.MaxSkinC {
		res.MaxSkinC = skin
	}
	if screen > res.MaxScreenC {
		res.MaxScreenC = screen
	}
	if die > res.MaxDieC {
		res.MaxDieC = die
	}
	if bat > res.MaxBatteryC {
		res.MaxBatteryC = bat
	}
	if p.timeSec-r.lastRecord+1e-9 >= p.cfg.RecordPeriodSec {
		if res.Trace != nil {
			res.Trace.Append(p.timeSec,
				skin, screen, die, bat,
				freq, p.utilNow, float64(p.cpu.MaxLevel()),
			)
		}
		r.lastRecord = p.timeSec
		if p.observer != nil {
			p.observer(Sample{
				TimeSec:  p.timeSec,
				SkinC:    skin,
				ScreenC:  screen,
				DieC:     die,
				BatteryC: bat,
				FreqMHz:  freq,
				Util:     p.utilNow,
				MaxLevel: p.cpu.MaxLevel(),
			})
		}
	}
	r.done++
}

// Finish closes the run and returns the aggregated result together with
// err (a context error for cancelled runs, nil otherwise). A run stopped
// before its last tick reports the simulated time it actually covered.
// Finish is idempotent; ticking a finished run is a caller bug.
func (r *StepRun) Finish(err error) (*RunResult, error) {
	if r.finished {
		return r.res, err
	}
	r.finished = true
	p, res := r.p, r.res
	if r.done > 0 {
		res.AvgFreqMHz = r.freqSum / float64(r.done)
		res.AvgUtil = r.utilSum / float64(r.done)
	}
	if r.done < r.steps { // cancelled: report actual simulated time
		res.DurSec = float64(r.done) * r.dt
	}
	if !p.traceFree {
		res.Records = p.logger.Records()
	}
	res.EndSoC = p.pack.SoC()
	return res, err
}
