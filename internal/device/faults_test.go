package device

import (
	"math"
	"testing"

	"repro/internal/governor"
	"repro/internal/workload"
)

// rogueGovernor returns wildly out-of-range levels; the device must
// saturate them through the CPU instead of crashing or mis-indexing.
type rogueGovernor struct{ calls int }

func (g *rogueGovernor) Name() string { return "rogue" }
func (g *rogueGovernor) Reset()       {}
func (g *rogueGovernor) NextLevel(governor.State) int {
	g.calls++
	if g.calls%2 == 0 {
		return -99
	}
	return 99
}

func TestRogueGovernorIsSaturated(t *testing.T) {
	g := &rogueGovernor{}
	p := MustNew(DefaultConfig(), g)
	res := p.Run(workload.Skype(1), 30)
	for i, f := range res.Trace.Lookup("freq_mhz").Values {
		if f < 384 || f > 1512 {
			t.Fatalf("row %d: frequency %v outside the OPP table", i, f)
		}
	}
	if g.calls == 0 {
		t.Fatal("governor never consulted")
	}
}

func TestOverdemandedWorkloadClampsUtil(t *testing.T) {
	// CPUFrac 2.0 demands twice the hardware's capacity.
	w := workload.New("overdemand", 1, workload.Phase{Name: "x", Dur: 60, CPU: 2.0})
	p := MustNew(DefaultConfig(), nil)
	res := p.Run(w, 0)
	if res.AvgUtil < 0.95 || res.AvgUtil > 1.0 {
		t.Fatalf("avg util = %v want ≈1", res.AvgUtil)
	}
	if math.IsNaN(res.MaxSkinC) || res.MaxSkinC > 60 {
		t.Fatalf("overdemand produced implausible skin %v", res.MaxSkinC)
	}
	if res.Slowdown() < 0.4 {
		t.Fatalf("serving half the demand must show as slowdown, got %v", res.Slowdown())
	}
}

// stallController takes no action; verifies a nil-op controller changes
// nothing relative to no controller at all.
type stallController struct{}

func (stallController) Name() string       { return "stall" }
func (stallController) PeriodSec() float64 { return 3 }
func (stallController) Act(*Phone)         {}
func (stallController) Reset()             {}

func TestNoopControllerMatchesBaseline(t *testing.T) {
	w := workload.Skype(5)
	a := MustNew(DefaultConfig(), nil).Run(w, 120)
	b := MustNew(DefaultConfig(), nil)
	b.SetController(stallController{})
	rb := b.Run(w, 120)
	if a.MaxSkinC != rb.MaxSkinC || a.AvgFreqMHz != rb.AvgFreqMHz {
		t.Fatalf("no-op controller changed the run: %v/%v vs %v/%v",
			a.MaxSkinC, a.AvgFreqMHz, rb.MaxSkinC, rb.AvgFreqMHz)
	}
}

func TestExtremeAmbientStaysFinite(t *testing.T) {
	for _, amb := range []float64{-10, 0, 45, 60} {
		cfg := DefaultConfig()
		cfg.Thermal.Ambient = amb
		p := MustNew(cfg, nil)
		res := p.Run(workload.Skype(2), 120)
		if math.IsNaN(res.MaxSkinC) || math.IsInf(res.MaxSkinC, 0) {
			t.Fatalf("ambient %v: non-finite skin", amb)
		}
		if res.MaxSkinC < amb-1 {
			t.Fatalf("ambient %v: skin %v below ambient with power applied", amb, res.MaxSkinC)
		}
	}
}

func TestTinyAndCoarseStepsAgree(t *testing.T) {
	// The fixed-step engine must be insensitive to the base step within
	// reason: a 10 ms step and a 100 ms step land within a tenth of a
	// degree on a deterministic (noise-free sensors don't exist here, so
	// compare physical peaks which do not depend on sensor noise).
	w := workload.SquareWave(1, 20, 0.5, 0.9, 0.1, 300)
	fine := DefaultConfig()
	fine.StepSec = 0.01
	fine.GovernorPeriodSec = 0.1
	coarse := DefaultConfig()
	coarse.StepSec = 0.1
	coarse.GovernorPeriodSec = 0.1
	a := MustNew(fine, nil).Run(w, 0)
	b := MustNew(coarse, nil).Run(w, 0)
	if math.Abs(a.MaxSkinC-b.MaxSkinC) > 0.15 {
		t.Fatalf("step-size sensitivity: %.3f vs %.3f", a.MaxSkinC, b.MaxSkinC)
	}
}

func TestGovernorPeriodMultipleOfStepEnforced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StepSec = 0.05
	cfg.GovernorPeriodSec = 0.05 // equal is allowed
	if _, err := New(cfg, nil); err != nil {
		t.Fatalf("equal periods rejected: %v", err)
	}
}

func TestHotplugSavesEnergyOnLightLoad(t *testing.T) {
	// A light load with hotplug gates cores (less leakage + idle overhead);
	// performance must not suffer because one core amply serves the demand.
	w := workload.YouTube(6)
	off := DefaultConfig()
	on := DefaultConfig()
	on.EnableHotplug = true
	rOff := MustNew(off, nil).Run(w, 600)
	rOn := MustNew(on, nil).Run(w, 600)
	if rOn.EnergyJ >= rOff.EnergyJ {
		t.Fatalf("hotplug did not save energy on a light load: %.0f vs %.0f J", rOn.EnergyJ, rOff.EnergyJ)
	}
	if rOn.Slowdown() > rOff.Slowdown()+0.02 {
		t.Fatalf("hotplug hurt a light load: slowdown %.3f vs %.3f", rOn.Slowdown(), rOff.Slowdown())
	}
}

func TestHotplugRestoresCapacityUnderHeavyLoad(t *testing.T) {
	// A saturating load must pull every core back online.
	w := workload.SquareWave(2, 10, 1.0, 0.95, 0.95, 300)
	cfg := DefaultConfig()
	cfg.EnableHotplug = true
	p := MustNew(cfg, nil)
	res := p.Run(w, 0)
	if p.CPU().OnlineCores() != 4 {
		t.Fatalf("heavy load left %d cores online", p.CPU().OnlineCores())
	}
	if res.Slowdown() > 0.15 {
		t.Fatalf("hotplug starved a heavy load: slowdown %.3f", res.Slowdown())
	}
}

func TestInteractiveGovernorRunsEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	freqs := make([]float64, len(cfg.SoC.OPPs))
	for i, o := range cfg.SoC.OPPs {
		freqs[i] = o.FreqMHz
	}
	p := MustNew(cfg, governor.NewInteractive(freqs))
	res := p.Run(workload.AnTuTuUserExp(3), 300)
	if res.Governor != "interactive" {
		t.Fatalf("governor = %q", res.Governor)
	}
	if res.AvgFreqMHz <= 384 || res.AvgFreqMHz >= 1512 {
		t.Fatalf("bursty workload under interactive averaged %v MHz", res.AvgFreqMHz)
	}
}
