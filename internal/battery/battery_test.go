package battery

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNexus4ConfigValid(t *testing.T) {
	if err := Nexus4Config().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	good := Nexus4Config()
	cases := []func(*Config){
		func(c *Config) { c.CapacityWh = 0 },
		func(c *Config) { c.NominalV = 0 },
		func(c *Config) { c.InternalOhm = -1 },
		func(c *Config) { c.ChargeEff = 0 },
		func(c *Config) { c.ChargeEff = 1.5 },
		func(c *Config) { c.CVThreshold = 0 },
		func(c *Config) { c.CVThreshold = 1 },
	}
	for i, mutate := range cases {
		c := good
		mutate(&c)
		if c.Validate() == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestNewClampsSoC(t *testing.T) {
	p := MustNew(Nexus4Config(), 1.7)
	if p.SoC() != 1 {
		t.Fatalf("SoC = %v want 1", p.SoC())
	}
	p = MustNew(Nexus4Config(), -0.3)
	if p.SoC() != 0 {
		t.Fatalf("SoC = %v want 0", p.SoC())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Config{}, 0.5)
}

func TestOCVMonotoneInSoC(t *testing.T) {
	p := MustNew(Nexus4Config(), 0)
	prev := -1.0
	for s := 0.0; s <= 1.0; s += 0.01 {
		p.SetSoC(s)
		v := p.OCV()
		if v < prev {
			t.Fatalf("OCV not monotone at SoC %.2f: %v < %v", s, v, prev)
		}
		if v < 3.2 || v > 4.4 {
			t.Fatalf("implausible OCV %v at SoC %.2f", v, s)
		}
		prev = v
	}
}

func TestDischargeDrainsAndHeats(t *testing.T) {
	p := MustNew(Nexus4Config(), 1.0)
	heat := p.Discharge(3.0, 60)
	if p.SoC() >= 1.0 {
		t.Fatal("discharge did not drain the pack")
	}
	if heat <= 0 {
		t.Fatal("discharge should dissipate I²R heat")
	}
	// 3 W at ~4.3 V is ~0.7 A -> I²R ≈ 0.06 W; sanity band.
	if heat > 0.3 {
		t.Fatalf("discharge heat %v W implausibly high", heat)
	}
}

func TestDischargeHeatGrowsWithLoad(t *testing.T) {
	p1 := MustNew(Nexus4Config(), 0.8)
	p2 := MustNew(Nexus4Config(), 0.8)
	if p1.Discharge(1, 1) >= p2.Discharge(4, 1) {
		t.Fatal("heavier load must dissipate more heat in the pack")
	}
}

func TestDischargeZeroLoadNoop(t *testing.T) {
	p := MustNew(Nexus4Config(), 0.5)
	if h := p.Discharge(0, 60); h != 0 {
		t.Fatalf("zero-load heat = %v", h)
	}
	if p.SoC() != 0.5 {
		t.Fatal("zero load drained the pack")
	}
}

func TestDischargeEmptyPackClamps(t *testing.T) {
	p := MustNew(Nexus4Config(), 0.001)
	for i := 0; i < 100; i++ {
		p.Discharge(5, 60)
	}
	if p.SoC() != 0 {
		t.Fatalf("SoC = %v want 0", p.SoC())
	}
}

func TestChargeFillsAndHeats(t *testing.T) {
	p := MustNew(Nexus4Config(), 0.2)
	heat, stored := p.Charge(60)
	if p.SoC() <= 0.2 {
		t.Fatal("charge did not fill the pack")
	}
	if heat <= 0 || stored <= 0 {
		t.Fatalf("charge heat=%v stored=%v, want both positive", heat, stored)
	}
	// At 1.2 A / ~3.7 V / 88 % efficiency the pack heat is ~0.7–1 W: the
	// regime that warms the cover in the paper's Charging workload.
	if heat < 0.3 || heat > 1.5 {
		t.Fatalf("CC charge heat = %v W, want 0.3–1.5", heat)
	}
}

func TestChargeTapersAboveCVThreshold(t *testing.T) {
	cfg := Nexus4Config()
	low := MustNew(cfg, 0.5)
	high := MustNew(cfg, 0.95)
	heatLow, storedLow := low.Charge(1)
	heatHigh, storedHigh := high.Charge(1)
	if storedHigh >= storedLow {
		t.Fatalf("CV-phase charging should taper: %v vs %v stored", storedHigh, storedLow)
	}
	if heatHigh >= heatLow {
		t.Fatalf("CV-phase heat should taper: %v vs %v", heatHigh, heatLow)
	}
}

func TestChargeFullPackNoop(t *testing.T) {
	p := MustNew(Nexus4Config(), 1.0)
	heat, stored := p.Charge(60)
	if heat != 0 || stored != 0 {
		t.Fatalf("full pack charged: heat=%v stored=%v", heat, stored)
	}
}

func TestChargeReachesFull(t *testing.T) {
	p := MustNew(Nexus4Config(), 0.1)
	for i := 0; i < 5*3600; i++ {
		p.Charge(1)
	}
	if p.SoC() < 0.999 {
		t.Fatalf("pack not full after 5 h: SoC = %v", p.SoC())
	}
}

func TestTimeToFull(t *testing.T) {
	p := MustNew(Nexus4Config(), 0.2)
	sec := p.TimeToFullSec()
	if sec < 1800 || sec > 5*3600 {
		t.Fatalf("time-to-full = %v s, want between 0.5 h and 5 h", sec)
	}
	// Estimation must not mutate the pack.
	if p.SoC() != 0.2 {
		t.Fatalf("TimeToFullSec mutated SoC to %v", p.SoC())
	}
	full := MustNew(Nexus4Config(), 1.0)
	if full.TimeToFullSec() != 0 {
		t.Fatal("full pack time-to-full should be 0")
	}
}

func TestChargeFasterFromLowerSoC(t *testing.T) {
	lo := MustNew(Nexus4Config(), 0.1)
	hi := MustNew(Nexus4Config(), 0.7)
	if lo.TimeToFullSec() <= hi.TimeToFullSec() {
		t.Fatal("fuller pack should finish sooner")
	}
}

// Property: SoC stays in [0,1] under any interleaving of charge and
// discharge.
func TestSoCBoundsProperty(t *testing.T) {
	f := func(ops []bool, load float64) bool {
		p := MustNew(Nexus4Config(), 0.5)
		w := math.Mod(math.Abs(load), 6)
		for _, charge := range ops {
			if charge {
				p.Charge(30)
			} else {
				p.Discharge(w, 30)
			}
			if p.SoC() < 0 || p.SoC() > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: energy bookkeeping — charging then discharging the same energy
// never leaves the pack fuller than it started plus round-trip losses.
func TestNoFreeEnergyProperty(t *testing.T) {
	f := func(seed uint8) bool {
		p := MustNew(Nexus4Config(), 0.5)
		start := p.SoC()
		// Charge for n seconds, then discharge the stored energy at 2 W.
		n := 10 + int(seed)%50
		var stored float64
		for i := 0; i < n; i++ {
			_, s := p.Charge(1)
			stored += s / 3600
		}
		for drained := 0.0; drained < stored; {
			p.Discharge(2, 1)
			drained += 2.0 / 3600
		}
		return p.SoC() <= start+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
