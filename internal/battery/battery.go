// Package battery models the handset's lithium-polymer pack: state of
// charge, open-circuit voltage, internal-resistance losses, and a CC/CV
// charging profile. Two of its behaviours matter to the reproduction:
//
//   - Charging dissipates real heat in the pack (I²R plus charge
//     inefficiency), which is what warms the back cover in the paper's
//     "Charging" workload — heat the DVFS governor cannot remove.
//   - Discharge losses grow with load, adding a small thermal coupling
//     between the application processor's power draw and the battery
//     temperature (the coupling studied by Xie et al., ICCAD 2013, which
//     the paper cites).
//
// The model is deliberately lumped (single-cell equivalent): the paper's
// controller never observes battery current, only battery temperature, so
// pack-internal detail beyond the heat term would be invisible.
package battery

import (
	"fmt"
	"math"
)

// Config parameterizes a pack.
type Config struct {
	// CapacityWh is the energy capacity at a nominal voltage.
	CapacityWh float64
	// NominalV is the nominal cell voltage.
	NominalV float64
	// InternalOhm is the lumped internal resistance.
	InternalOhm float64
	// ChargeCurrentA is the constant-current phase current.
	ChargeCurrentA float64
	// CVThreshold is the state of charge where charging tapers from CC to
	// CV (current decays exponentially above it).
	CVThreshold float64
	// ChargeEff is the coulombic+conversion efficiency of charging; the
	// remainder dissipates as heat in the pack.
	ChargeEff float64
}

// Nexus4Config returns a 2100 mAh / 3.8 V pack, 1.2 A charger.
func Nexus4Config() Config {
	return Config{
		CapacityWh:     8.0,
		NominalV:       3.8,
		InternalOhm:    0.12,
		ChargeCurrentA: 1.2,
		CVThreshold:    0.8,
		ChargeEff:      0.88,
	}
}

// Validate reports whether the configuration is well formed.
func (c Config) Validate() error {
	if c.CapacityWh <= 0 {
		return fmt.Errorf("battery: CapacityWh must be positive")
	}
	if c.NominalV <= 0 {
		return fmt.Errorf("battery: NominalV must be positive")
	}
	if c.InternalOhm < 0 {
		return fmt.Errorf("battery: InternalOhm must be non-negative")
	}
	if c.ChargeEff <= 0 || c.ChargeEff > 1 {
		return fmt.Errorf("battery: ChargeEff must be in (0,1]")
	}
	if c.CVThreshold <= 0 || c.CVThreshold >= 1 {
		return fmt.Errorf("battery: CVThreshold must be in (0,1)")
	}
	return nil
}

// Pack is the runtime state of a battery.
type Pack struct {
	cfg Config
	soc float64 // state of charge in [0,1]

	// invCapJ is 1/(3600·CapacityWh): Wh-per-joule of pack capacity,
	// precomputed so the per-tick drain update is division-free.
	invCapJ float64
}

// New creates a pack at the given initial state of charge (clamped to
// [0,1]).
func New(cfg Config, initialSoC float64) (*Pack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Pack{cfg: cfg, soc: clamp01(initialSoC), invCapJ: 1 / (3600 * cfg.CapacityWh)}, nil
}

// Reset returns the pack to the given state of charge, as if freshly
// constructed; the fleet's phone pool uses it to recycle packs across
// jobs.
func (p *Pack) Reset(initialSoC float64) { p.soc = clamp01(initialSoC) }

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config, initialSoC float64) *Pack {
	p, err := New(cfg, initialSoC)
	if err != nil {
		panic(err)
	}
	return p
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Config returns the pack configuration.
func (p *Pack) Config() Config { return p.cfg }

// SoC returns the state of charge in [0,1].
func (p *Pack) SoC() float64 { return p.soc }

// SetSoC overrides the state of charge (clamped).
func (p *Pack) SetSoC(v float64) { p.soc = clamp01(v) }

// OCV returns the open-circuit voltage for the current state of charge — a
// simple two-knee lithium curve between 3.3 V (empty) and 4.35 V (full).
func (p *Pack) OCV() float64 {
	s := p.soc
	switch {
	case s < 0.1:
		return 3.3 + s/0.1*0.3
	case s < 0.9:
		return 3.6 + (s-0.1)/0.8*0.5
	default:
		return 4.1 + (s-0.9)/0.1*0.25
	}
}

// Discharge drains loadWatts for dt seconds and returns the heat generated
// inside the pack over that interval, in watts. Heat comes from I²R at the
// pack's internal resistance. An empty pack still reports the load's heat
// but cannot go below 0 % (a real phone would have shut down; the
// simulation keeps running so thermal experiments do not truncate).
func (p *Pack) Discharge(loadWatts, dt float64) (heatWatts float64) {
	if loadWatts <= 0 || dt <= 0 {
		return 0
	}
	i := loadWatts / p.OCV()
	heat := i * i * p.cfg.InternalOhm
	p.soc = clamp01(p.soc - (loadWatts+heat)*dt*p.invCapJ)
	return heat
}

// DischargeHeat returns the I²R heat rate (watts) a Discharge of
// loadWatts would report at the pack's current state of charge, without
// draining anything. The heat rate depends only on the load and the SoC,
// so callers that hold a load constant over a window can peek the rate up
// front and apply one Discharge(loadWatts, window) afterwards: the drain
// and the returned heat match a peek-then-drain exactly (the event engine
// relies on this to freeze battery heat across a held segment).
func (p *Pack) DischargeHeat(loadWatts float64) (heatWatts float64) {
	if loadWatts <= 0 {
		return 0
	}
	i := loadWatts / p.OCV()
	return i * i * p.cfg.InternalOhm
}

// Charge advances a charging interval of dt seconds and returns the heat
// dissipated in the pack (inefficiency + I²R) and the electrical power
// actually stored. Charging follows CC below CVThreshold and an
// exponential taper above it; a full pack draws (and dissipates) nothing.
func (p *Pack) Charge(dt float64) (heatWatts, storedWatts float64) {
	if dt <= 0 || p.soc >= 1 {
		return 0, 0
	}
	current := p.cfg.ChargeCurrentA
	if p.soc > p.cfg.CVThreshold {
		// Exponential taper: current falls to ~10 % across the CV region.
		frac := (p.soc - p.cfg.CVThreshold) / (1 - p.cfg.CVThreshold)
		current *= math.Exp(-2.3 * frac)
	}
	inPower := current * p.OCV() / p.cfg.ChargeEff
	stored := current * p.OCV()
	heat := (inPower - stored) + current*current*p.cfg.InternalOhm
	p.soc = clamp01(p.soc + stored*dt/3600/p.cfg.CapacityWh)
	return heat, stored
}

// TimeToFullSec estimates the remaining charge time at the current state,
// by simulating the charge curve forward at 1 s resolution. Returns 0 for
// a full pack.
func (p *Pack) TimeToFullSec() float64 {
	if p.soc >= 1 {
		return 0
	}
	clone := *p
	const maxSec = 6 * 3600
	for s := 1.0; s <= maxSec; s++ {
		clone.Charge(1)
		if clone.soc >= 0.999 {
			return s
		}
	}
	return maxSec
}
