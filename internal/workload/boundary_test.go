package workload

import (
	"math"
	"testing"
)

// sampleEq compares samples exactly: the boundary contract promises bit
// constancy between change points, not approximate constancy.
func sampleEq(a, b Sample) bool { return a == b }

// checkConstancyContract walks w at a fine probe step and asserts the two
// halves of the BoundaryQueried contract: NextChange(t) > t everywhere
// inside the workload, and At is constant on [t, NextChange(t)).
func checkConstancyContract(t *testing.T, w Workload) {
	t.Helper()
	next := NextChangeOf(w)
	if next == nil {
		t.Fatalf("%s: no boundary query", w.Name())
	}
	const probe = 0.05 // the simulator's StepSec
	dur := w.Duration()
	if dur > 700 {
		dur = 700 // 90-minute programs: the first phases exercise everything
	}
	segStart := 0.0
	segEnd := next(0)
	ref := w.At(0)
	checked := 0
	for k := 1; ; k++ {
		tm := float64(k) * probe
		if tm >= dur {
			break
		}
		if tm >= segEnd {
			if segEnd <= segStart {
				t.Fatalf("%s: NextChange(%v) = %v, not after t", w.Name(), segStart, segEnd)
			}
			segStart = tm
			segEnd = next(tm)
			ref = w.At(tm)
			continue
		}
		if got := w.At(tm); !sampleEq(got, ref) {
			t.Fatalf("%s: sample changed inside segment [%v,%v): At(%v)=%+v, segment ref %+v",
				w.Name(), segStart, segEnd, tm, got, ref)
		}
		checked++
	}
	if checked == 0 {
		t.Fatalf("%s: contract never exercised", w.Name())
	}
}

// TestNextChangeConstancyBenchmarks pins the held-sample contract on every
// benchmark program the paper evaluates (plus the daily mix), at two seeds.
func TestNextChangeConstancyBenchmarks(t *testing.T) {
	for _, seed := range []uint64{1, 77} {
		for _, p := range Benchmarks(seed) {
			checkConstancyContract(t, p)
		}
		checkConstancyContract(t, DailyMix(seed))
	}
}

// TestNextChangeSyntheticBursts stresses the burst-edge inverse mapping
// with awkward (non-dyadic) periods and duties, including duty 0 and
// duty >= 1 degenerate shapes.
func TestNextChangeSyntheticBursts(t *testing.T) {
	progs := []*Program{
		New("burst-odd", 3,
			Phase{Name: "a", Dur: 30, BurstPeriod: 0.7, BurstDuty: 0.3, BurstHigh: 1.2, BurstLow: 0.1},
			Phase{Name: "b", Dur: 30, BurstPeriod: 1.3, BurstDuty: 0.61, BurstHigh: 0.9, BurstLow: 0.2, CPUJitter: 0.05},
		),
		New("burst-deg", 9,
			Phase{Name: "never", Dur: 20, BurstPeriod: 2, BurstDuty: 0, BurstHigh: 1, BurstLow: 0.3},
			Phase{Name: "always", Dur: 20, BurstPeriod: 2, BurstDuty: 1, BurstHigh: 1, BurstLow: 0.3},
		),
		New("jitter-only", 4,
			Phase{Name: "j", Dur: 45, CPU: 0.4, CPUJitter: 0.1, GPUJitter: 0.2, GPU: 0.5},
		),
	}
	for _, p := range progs {
		checkConstancyContract(t, p)
	}
}

// TestNextChangeEdges pins the out-of-range behaviour and the Truncated
// delegation (clip point becomes a boundary; unsupported inner → nil).
func TestNextChangeEdges(t *testing.T) {
	p := Skype(5)
	if got := p.NextChange(-3); got != 0 {
		t.Fatalf("NextChange(-3) = %v, want 0", got)
	}
	if got := p.NextChange(p.Duration()); !math.IsInf(got, 1) {
		t.Fatalf("NextChange(end) = %v, want +Inf", got)
	}
	// A jitter-free constant inner program: its only change point is far
	// beyond the clip, so the clip itself must surface as the boundary.
	flat := New("flat", 1, Phase{Name: "on", Dur: 100, CPU: 0.5})
	tr := Truncated{W: flat, Dur: 10}
	next := NextChangeOf(tr)
	if next == nil {
		t.Fatal("Truncated over Program lost the boundary query")
	}
	if got := next(9.99); got != 10 {
		t.Fatalf("truncated NextChange(9.99) = %v, want clip point 10", got)
	}
	if got := next(10); !math.IsInf(got, 1) {
		t.Fatalf("truncated NextChange(10) = %v, want +Inf", got)
	}
	// An At-only workload has no boundary query, truncated or not.
	if NextChangeOf(opaque{}) != nil || NextChangeOf(Truncated{W: opaque{}, Dur: 5}) != nil {
		t.Fatal("opaque workload unexpectedly reports a boundary query")
	}
}

type opaque struct{}

func (opaque) Name() string      { return "opaque" }
func (opaque) Duration() float64 { return 100 }
func (opaque) At(float64) Sample { return Sample{CPUFrac: 0.5} }
