package workload

import (
	"strings"
	"testing"
)

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestReplayBasics(t *testing.T) {
	r, err := NewReplay("trace", []TracePoint{
		{TimeSec: 0, Sample: Sample{CPUFrac: 0.2}},
		{TimeSec: 10, Sample: Sample{CPUFrac: 0.8}},
		{TimeSec: 20, Sample: Sample{CPUFrac: 0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "trace" || r.Duration() != 20 {
		t.Fatalf("identity: %q %v", r.Name(), r.Duration())
	}
	if got := r.At(5).CPUFrac; got != 0.2 {
		t.Fatalf("At(5) = %v want 0.2 (zero-order hold)", got)
	}
	if got := r.At(10).CPUFrac; got != 0.8 {
		t.Fatalf("At(10) = %v want 0.8", got)
	}
	if got := r.At(19.9).CPUFrac; got != 0.8 {
		t.Fatalf("At(19.9) = %v want 0.8", got)
	}
	if r.At(-1) != (Sample{}) || r.At(20) != (Sample{}) {
		t.Fatal("outside-range samples must be idle")
	}
}

func TestReplaySortsPoints(t *testing.T) {
	r, err := NewReplay("x", []TracePoint{
		{TimeSec: 10, Sample: Sample{CPUFrac: 0.9}},
		{TimeSec: 0, Sample: Sample{CPUFrac: 0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.At(1).CPUFrac; got != 0.1 {
		t.Fatalf("At(1) = %v want 0.1 after sorting", got)
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := NewReplay("x", []TracePoint{{TimeSec: 0}}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := NewReplay("x", []TracePoint{{TimeSec: -5}, {TimeSec: 1}}); err == nil {
		t.Fatal("negative timestamp accepted")
	}
}

func TestReplayCSVRoundTrip(t *testing.T) {
	orig := Skype(3)
	var sb strings.Builder
	if err := WriteReplayCSV(&sb, Truncated{W: orig, Dur: 120}, 1); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReplayCSV("skype-replay", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	// The replayed workload must match the original at the sampled grid up
	// to the CSV's 4-decimal rounding.
	const tol = 5e-5
	for tt := 0.0; tt < 119; tt += 1 {
		a := orig.At(tt)
		b := back.At(tt)
		if abs(a.CPUFrac-b.CPUFrac) > tol || a.Touch != b.Touch || abs(a.AuxWatts-b.AuxWatts) > tol {
			t.Fatalf("replay diverges at t=%v: %+v vs %+v", tt, a, b)
		}
	}
}

func TestReadReplayCSVErrors(t *testing.T) {
	cases := []string{
		"time_s,cpu_frac,gpu_load,aux_w,charge_w,display,touch\n1,2,3\n",         // arity
		"time_s,cpu_frac,gpu_load,aux_w,charge_w,display,touch\nx,0,0,0,0,0,0\n", // bad number
		"time_s,cpu_frac,gpu_load,aux_w,charge_w,display,touch\n0,0,0,0,0,0,0\n", // single point
	}
	for i, in := range cases {
		if _, err := ReadReplayCSV("bad", strings.NewReader(in)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestReadReplayCSVSkipsCommentsAndHeader(t *testing.T) {
	in := `# exported trace
time_s,cpu_frac,gpu_load,aux_w,charge_w,display,touch
0,0.5,0,0,0,0.7,1

10,0.1,0,0,0,0.7,0
`
	r, err := ReadReplayCSV("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if r.Duration() != 10 {
		t.Fatalf("Duration = %v", r.Duration())
	}
	if !r.At(0).Touch {
		t.Fatal("touch flag lost")
	}
}

func TestDailyMixShape(t *testing.T) {
	w := DailyMix(1)
	if w.Name() != "daily-mix" {
		t.Fatalf("Name = %q", w.Name())
	}
	// The charging tail must be screen-off with charge heat.
	tail := w.At(w.Duration() - 100)
	if tail.ChargeWatts <= 0 || tail.Display != 0 {
		t.Fatalf("charging tail sample = %+v", tail)
	}
	// The call phase must be the warm middle stretch.
	call := w.At(2500)
	if call.AuxWatts < 0.5 || !call.Touch {
		t.Fatalf("call-phase sample = %+v", call)
	}
}
