package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProgramDuration(t *testing.T) {
	p := New("x", 1,
		Phase{Name: "a", Dur: 10, CPU: 0.5},
		Phase{Name: "b", Dur: 20, CPU: 0.1},
	)
	if p.Duration() != 30 {
		t.Fatalf("Duration = %v want 30", p.Duration())
	}
	if p.Name() != "x" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestProgramPhaseLookup(t *testing.T) {
	p := New("x", 1,
		Phase{Name: "a", Dur: 10, CPU: 0.5},
		Phase{Name: "b", Dur: 20, CPU: 0.1},
		Phase{Name: "c", Dur: 5, CPU: 0.9},
	)
	cases := []struct {
		t    float64
		want string
	}{
		{0, "a"}, {9.99, "a"}, {10, "b"}, {29.99, "b"}, {30, "c"}, {34.9, "c"}, {35, ""}, {-1, ""},
	}
	for _, tc := range cases {
		if got := p.PhaseAt(tc.t); got != tc.want {
			t.Fatalf("PhaseAt(%v) = %q want %q", tc.t, got, tc.want)
		}
	}
}

func TestProgramOutsideDurationIsIdle(t *testing.T) {
	p := New("x", 1, Phase{Name: "a", Dur: 10, CPU: 0.5, GPU: 0.5, Aux: 1, Display: 1, Touch: true})
	for _, tt := range []float64{-0.5, 10, 100} {
		s := p.At(tt)
		if s != (Sample{}) {
			t.Fatalf("At(%v) = %+v want zero sample", tt, s)
		}
	}
}

func TestProgramDeterminism(t *testing.T) {
	a := Skype(42)
	b := Skype(42)
	for tt := 0.0; tt < a.Duration(); tt += 37.3 {
		if a.At(tt) != b.At(tt) {
			t.Fatalf("same-seed programs diverge at t=%v", tt)
		}
	}
}

func TestProgramSeedChangesJitter(t *testing.T) {
	a := Skype(1)
	b := Skype(2)
	diff := 0
	for tt := 0.5; tt < 600; tt += 1 {
		if a.At(tt).CPUFrac != b.At(tt).CPUFrac {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestBurstPattern(t *testing.T) {
	p := New("b", 0, Phase{Name: "burst", Dur: 100, BurstPeriod: 10, BurstDuty: 0.3, BurstHigh: 0.9, BurstLow: 0.1})
	if got := p.At(1).CPUFrac; got != 0.9 {
		t.Fatalf("burst high = %v want 0.9", got)
	}
	if got := p.At(5).CPUFrac; got != 0.1 {
		t.Fatalf("burst low = %v want 0.1", got)
	}
	// Second period behaves identically.
	if got := p.At(11).CPUFrac; got != 0.9 {
		t.Fatalf("second period high = %v want 0.9", got)
	}
}

func TestJitterBounds(t *testing.T) {
	p := New("j", 7, Phase{Name: "a", Dur: 1000, CPU: 0.5, CPUJitter: 0.1, GPU: 0.5, GPUJitter: 0.2})
	for tt := 0.0; tt < 1000; tt += 0.7 {
		s := p.At(tt)
		if s.CPUFrac < 0.4-1e-9 || s.CPUFrac > 0.6+1e-9 {
			t.Fatalf("CPU jitter out of bounds at t=%v: %v", tt, s.CPUFrac)
		}
		if s.GPULoad < 0.3-1e-9 || s.GPULoad > 0.7+1e-9 {
			t.Fatalf("GPU jitter out of bounds at t=%v: %v", tt, s.GPULoad)
		}
	}
}

func TestNegativeDemandClamped(t *testing.T) {
	p := New("n", 3, Phase{Name: "a", Dur: 100, CPU: 0.01, CPUJitter: 0.5, GPU: 0.01, GPUJitter: 0.5})
	for tt := 0.0; tt < 100; tt += 0.5 {
		s := p.At(tt)
		if s.CPUFrac < 0 || s.GPULoad < 0 || s.GPULoad > 1 {
			t.Fatalf("demand out of range at t=%v: %+v", tt, s)
		}
	}
}

func TestRepeat(t *testing.T) {
	p := New("r", 1, Phase{Name: "a", Dur: 10, CPU: 0.7})
	r := p.Repeat(3)
	if r.Duration() != 30 {
		t.Fatalf("Repeat duration = %v want 30", r.Duration())
	}
	if r.At(25).CPUFrac == 0 {
		t.Fatal("repeated phase should be active at t=25")
	}
}

func TestRepeatPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("r", 1, Phase{Name: "a", Dur: 1, CPU: 0.5}).Repeat(0)
}

func TestNewPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("empty", 1)
}

func TestNewPanicsOnNonPositiveDur(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("bad", 1, Phase{Name: "a", Dur: 0})
}

func TestTruncated(t *testing.T) {
	p := Skype(1)
	tr := Truncated{W: p, Dur: 60}
	if tr.Duration() != 60 {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	if tr.At(30) != p.At(30) {
		t.Fatal("Truncated must pass through inside the window")
	}
	if tr.At(61) != (Sample{}) {
		t.Fatal("Truncated must be idle past its duration")
	}
	if tr.Name() != p.Name() {
		t.Fatal("Truncated must keep the name")
	}
}

func TestAllThirteenBenchmarksPresent(t *testing.T) {
	bs := Benchmarks(99)
	if len(bs) != 13 {
		t.Fatalf("Benchmarks returned %d workloads, want 13", len(bs))
	}
	if len(BenchmarkNames) != 13 {
		t.Fatalf("BenchmarkNames has %d entries, want 13", len(BenchmarkNames))
	}
	for i, b := range bs {
		if b.Name() != BenchmarkNames[i] {
			t.Fatalf("benchmark %d = %q want %q", i, b.Name(), BenchmarkNames[i])
		}
		if b.Duration() < 300 {
			t.Fatalf("%s is implausibly short: %v s", b.Name(), b.Duration())
		}
	}
}

func TestByName(t *testing.T) {
	w := ByName("skype", 5)
	if w == nil || w.Name() != "skype" {
		t.Fatalf("ByName(skype) = %v", w)
	}
	if ByName("nope", 5) != nil {
		t.Fatal("ByName must return nil for unknown names")
	}
}

func TestBenchmarkThermalClasses(t *testing.T) {
	// Average total demand proxy (CPU + aux + GPU + charge) must respect the
	// paper's ordering: the hot workloads demand more sustained power than
	// the mild ones.
	avgPower := func(w Workload) float64 {
		var s float64
		n := 0
		for tt := 0.5; tt < w.Duration(); tt += 5 {
			sm := w.At(tt)
			s += sm.CPUFrac*3.2 + sm.GPULoad*1.3 + sm.AuxWatts + sm.ChargeWatts + sm.Display*0.55
			n++
		}
		return s / float64(n)
	}
	hot := []Workload{AnTuTuTester(1), Skype(2)}
	mild := []Workload{YouTube(3), Charging(4), AnTuTuUserExp(5)}
	for _, h := range hot {
		for _, m := range mild {
			if avgPower(h) <= avgPower(m) {
				t.Fatalf("%s (%.2f W proxy) should exceed %s (%.2f W proxy)",
					h.Name(), avgPower(h), m.Name(), avgPower(m))
			}
		}
	}
}

func TestSkypeIsHeldAndOnScreen(t *testing.T) {
	s := Skype(1).At(100)
	if !s.Touch {
		t.Fatal("Skype call must have Touch set (user holds the phone)")
	}
	if s.Display <= 0 {
		t.Fatal("Skype call must keep the display on")
	}
	if s.AuxWatts < 0.9 {
		t.Fatalf("Skype aux power = %v, want camera+radio dominated (≈1 W)", s.AuxWatts)
	}
}

func TestChargingIsScreenOffAndWarmsBattery(t *testing.T) {
	s := Charging(1).At(100)
	if s.Display != 0 {
		t.Fatal("Charging must keep the display off")
	}
	if s.ChargeWatts <= 0 {
		t.Fatal("Charging must dissipate heat in the battery")
	}
	if s.Touch {
		t.Fatal("Charging phone is on the desk, not in a hand")
	}
}

func TestStaircaseRampMonotone(t *testing.T) {
	p := StaircaseRamp(1, 0.1, 0.9, 9, 10)
	prev := -1.0
	for i := 0; i < 9; i++ {
		v := p.At(float64(i)*10 + 5).CPUFrac
		if v <= prev-0.05 {
			t.Fatalf("ramp not increasing at step %d: %v after %v", i, v, prev)
		}
		prev = v
	}
}

func TestStaircaseRampPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StaircaseRamp(1, 0, 1, 1, 10)
}

func TestRandomPhasesDeterministic(t *testing.T) {
	a := RandomPhases(5, 10, 30)
	b := RandomPhases(5, 10, 30)
	if a.Duration() != 300 {
		t.Fatalf("Duration = %v", a.Duration())
	}
	for tt := 0.0; tt < 300; tt += 7 {
		if a.At(tt) != b.At(tt) {
			t.Fatalf("RandomPhases not deterministic at t=%v", tt)
		}
	}
}

func TestRandomPhasesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandomPhases(1, 0, 10)
}

func TestIdleWorkload(t *testing.T) {
	w := Idle(100)
	s := w.At(50)
	if s.CPUFrac > 0.05 || s.Display != 0 {
		t.Fatalf("idle sample = %+v", s)
	}
}

// Property: At is a pure function — calling it repeatedly in any order
// yields identical samples.
func TestAtPurityProperty(t *testing.T) {
	w := AnTuTuFull(123)
	f := func(rawT float64) bool {
		tt := math.Mod(math.Abs(rawT), w.Duration())
		first := w.At(tt)
		w.At(math.Mod(tt*7, w.Duration())) // interleave another query
		return w.At(tt) == first
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: samples are always physically sane.
func TestSampleSanityProperty(t *testing.T) {
	ws := Benchmarks(7)
	f := func(rawT float64, idx uint8) bool {
		w := ws[int(idx)%len(ws)]
		tt := math.Mod(math.Abs(rawT), w.Duration())
		s := w.At(tt)
		return s.CPUFrac >= 0 && s.GPULoad >= 0 && s.GPULoad <= 1 &&
			s.AuxWatts >= 0 && s.ChargeWatts >= 0 && s.Display >= 0 && s.Display <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCursorMatchesAt: the Cursored fast path must reproduce At exactly —
// over every built-in benchmark program, at tick granularity, including
// phase boundaries and jitter-slot edges.
func TestCursorMatchesAt(t *testing.T) {
	progs := append([]*Program{}, Benchmarks(7)...)
	progs = append(progs, Skype(77), New("edge", 3,
		Phase{Name: "burst", Dur: 2.5, BurstPeriod: 0.7, BurstDuty: 0.4, BurstHigh: 1.2, BurstLow: 0.1, CPUJitter: 0.2},
		Phase{Name: "calm", Dur: 1.5, CPU: 0.3, GPU: 0.5, GPUJitter: 0.3},
	))
	for _, p := range progs {
		at := SamplerOf(p)
		dur := p.Duration()
		for tm := -0.05; tm <= dur+1; tm += 0.05 {
			want := p.At(tm)
			if got := at(tm); got != want {
				t.Fatalf("%s: cursor(%v) = %+v, At = %+v", p.Name(), tm, got, want)
			}
		}
	}
}

// TestCursorHandlesBackwardTime: a cursor must survive time moving
// backwards (a caller restarting a run) by falling back to a fresh lookup.
func TestCursorHandlesBackwardTime(t *testing.T) {
	p := Skype(5)
	c := SamplerOf(p)
	mid := p.Duration() / 2
	if got, want := c(mid), p.At(mid); got != want {
		t.Fatalf("forward: %+v vs %+v", got, want)
	}
	if got, want := c(1.0), p.At(1.0); got != want {
		t.Fatalf("backward: %+v vs %+v", got, want)
	}
}

// TestTruncatedCursorClips: the truncating wrapper's cursor idles past the
// clip exactly like its At.
func TestTruncatedCursorClips(t *testing.T) {
	tr := Truncated{W: Skype(5), Dur: 10}
	c := SamplerOf(tr)
	if got := c(11); got != (Sample{}) {
		t.Fatalf("cursor past clip = %+v, want idle", got)
	}
	if got, want := c(9.5), tr.At(9.5); got != want {
		t.Fatalf("cursor(9.5) = %+v, want %+v", got, want)
	}
}
