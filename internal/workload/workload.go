// Package workload generates the demand traces the simulated phone executes.
//
// A workload is a pure function of time: At(t) returns the instantaneous
// resource demand (CPU work, GPU load, board-level "aux" power for camera /
// radio / flashlight, battery charging heat, display brightness, and whether
// the user is holding the device). Determinism matters — every experiment in
// the reproduction is seeded — so stochastic jitter is computed from a hash
// of (seed, time slot) rather than from mutable RNG state.
//
// The package ships phase-structured models of the paper's thirteen
// evaluation workloads (AnTuTu variants, AnTuTu Tester, GFXBench, Vellamo,
// Skype, YouTube, Record, Charging, and a game) plus synthetic generators
// used to diversify the ML training corpus.
package workload

import (
	"fmt"
	"math"
)

// Sample is the instantaneous demand of a workload.
type Sample struct {
	// CPUFrac is the requested CPU work as a fraction of the SoC's maximum
	// aggregate capacity (all cores at top frequency). Values above 1 are
	// legal (the workload wants more than the hardware can deliver).
	CPUFrac float64
	// GPULoad is the GPU busy fraction in [0,1].
	GPULoad float64
	// AuxWatts is board-level power: camera, ISP, radio, GPS, flashlight.
	AuxWatts float64
	// ChargeWatts is heat dissipated inside the battery by charging.
	ChargeWatts float64
	// Display is the screen brightness in [0,1]; 0 means screen off.
	Display float64
	// Touch reports whether the user's palm is on the back cover.
	Touch bool
}

// Phase is one segment of a workload program. CPU demand is Base unless
// BurstPeriod > 0, in which case it alternates between BurstHigh (for
// BurstDuty of each period) and BurstLow. Uniform jitter of ±CPUJitter
// (±GPUJitter) is added on top, re-rolled every jitter slot (1 s).
type Phase struct {
	Name string
	Dur  float64 // seconds; must be positive

	CPU       float64
	CPUJitter float64
	GPU       float64
	GPUJitter float64

	BurstPeriod float64
	BurstDuty   float64
	BurstHigh   float64
	BurstLow    float64

	Aux     float64
	Charge  float64
	Display float64
	Touch   bool
}

// Workload is a deterministic demand trace.
type Workload interface {
	// Name identifies the workload in logs and reports.
	Name() string
	// Duration returns the trace length in seconds.
	Duration() float64
	// At returns the demand at time t seconds. Beyond Duration the workload
	// is idle (zero demand, screen off).
	At(t float64) Sample
}

// Program is a seeded, phase-structured Workload.
type Program struct {
	name     string
	seed     uint64
	phases   []Phase
	offsets  []float64 // cumulative start time of each phase
	burstInv []float64 // 1/BurstPeriod per phase (0 when no burst)
	total    float64
}

// New builds a Program from phases. It panics if any phase has a
// non-positive duration, since that is always a programming error in a
// hard-coded profile.
func New(name string, seed uint64, phases ...Phase) *Program {
	if len(phases) == 0 {
		panic("workload: program needs at least one phase")
	}
	p := &Program{name: name, seed: seed, phases: phases}
	p.offsets = make([]float64, len(phases))
	p.burstInv = make([]float64, len(phases))
	var acc float64
	for i, ph := range phases {
		if ph.Dur <= 0 {
			panic(fmt.Sprintf("workload: phase %q has non-positive duration %v", ph.Name, ph.Dur))
		}
		p.offsets[i] = acc
		if ph.BurstPeriod > 0 {
			p.burstInv[i] = 1 / ph.BurstPeriod
		}
		acc += ph.Dur
	}
	p.total = acc
	return p
}

// Name implements Workload.
func (p *Program) Name() string { return p.name }

// Duration implements Workload.
func (p *Program) Duration() float64 { return p.total }

// splitmix64 is the 64-bit finalizer used for deterministic value noise.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// noise returns a deterministic uniform value in [0,1) for (seed, slot, lane).
func noise(seed uint64, slot int64, lane uint64) float64 {
	h := splitmix64(seed ^ splitmix64(uint64(slot)+lane*0x9e3779b97f4a7c15))
	return float64(h>>11) / float64(1<<53)
}

// At implements Workload.
func (p *Program) At(t float64) Sample {
	if t < 0 || t >= p.total {
		return Sample{}
	}
	// Locate the phase by binary search over the offsets.
	lo, hi := 0, len(p.phases)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.offsets[mid] <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	ph := p.phases[lo]
	local := t - p.offsets[lo]

	cpu := ph.CPU
	if ph.BurstPeriod > 0 {
		// Fractional burst position without math.Mod: this runs once per
		// simulation tick, and Mod's exact range reduction costs more than
		// the rest of the sampling combined.
		f := local * p.burstInv[lo]
		pos := f - math.Floor(f)
		if pos < ph.BurstDuty {
			cpu = ph.BurstHigh
		} else {
			cpu = ph.BurstLow
		}
	}
	slot := int64(math.Floor(t)) // jitter re-rolled each second
	if ph.CPUJitter > 0 {
		cpu += ph.CPUJitter * (2*noise(p.seed, slot, uint64(lo)*3+1) - 1)
	}
	gpu := ph.GPU
	if ph.GPUJitter > 0 {
		gpu += ph.GPUJitter * (2*noise(p.seed, slot, uint64(lo)*3+2) - 1)
	}
	if cpu < 0 {
		cpu = 0
	}
	if gpu < 0 {
		gpu = 0
	}
	if gpu > 1 {
		gpu = 1
	}
	return Sample{
		CPUFrac:     cpu,
		GPULoad:     gpu,
		AuxWatts:    ph.Aux,
		ChargeWatts: ph.Charge,
		Display:     ph.Display,
		Touch:       ph.Touch,
	}
}

// Cursored is an optional fast-path interface: workloads whose sampling
// can be made cheaper under (mostly) monotone time access return a per-run
// cursor function. The cursor must produce exactly the samples At would —
// it may only cache work across calls, never change results — and it must
// tolerate time moving backwards by falling back to a full lookup. Each
// cursor is private to one run; workload values themselves stay immutable
// and shareable across concurrent runs.
type Cursored interface {
	Cursor() func(t float64) Sample
}

// SamplerOf returns the cheapest per-run sampling function for w: the
// cursor if w provides one, otherwise w.At.
func SamplerOf(w Workload) func(t float64) Sample {
	if c, ok := w.(Cursored); ok {
		return c.Cursor()
	}
	return w.At
}

// Cursor implements Cursored: the returned sampler tracks the active phase
// and the current jitter slot instead of re-deriving both on every call,
// which removes the phase search and two hash chains from the simulator's
// per-tick cost.
func (p *Program) Cursor() func(t float64) Sample {
	idx := 0
	haveSlot := false
	var slot int64
	var jCPU, jGPU float64
	return func(t float64) Sample {
		if t < 0 || t >= p.total {
			return Sample{}
		}
		if t < p.offsets[idx] { // time went backwards: restart the scan
			idx = 0
			haveSlot = false
		}
		for idx+1 < len(p.phases) && p.offsets[idx+1] <= t {
			idx++
			haveSlot = false
		}
		ph := &p.phases[idx]
		local := t - p.offsets[idx]

		cpu := ph.CPU
		if ph.BurstPeriod > 0 {
			f := local * p.burstInv[idx]
			pos := f - math.Floor(f)
			if pos < ph.BurstDuty {
				cpu = ph.BurstHigh
			} else {
				cpu = ph.BurstLow
			}
		}
		gpu := ph.GPU
		if ph.CPUJitter > 0 || ph.GPUJitter > 0 {
			s := int64(math.Floor(t))
			if !haveSlot || s != slot {
				slot, haveSlot = s, true
				jCPU, jGPU = 0, 0
				if ph.CPUJitter > 0 {
					jCPU = ph.CPUJitter * (2*noise(p.seed, s, uint64(idx)*3+1) - 1)
				}
				if ph.GPUJitter > 0 {
					jGPU = ph.GPUJitter * (2*noise(p.seed, s, uint64(idx)*3+2) - 1)
				}
			}
			cpu += jCPU
			gpu += jGPU
		}
		if cpu < 0 {
			cpu = 0
		}
		if gpu < 0 {
			gpu = 0
		}
		if gpu > 1 {
			gpu = 1
		}
		return Sample{
			CPUFrac:     cpu,
			GPULoad:     gpu,
			AuxWatts:    ph.Aux,
			ChargeWatts: ph.Charge,
			Display:     ph.Display,
			Touch:       ph.Touch,
		}
	}
}

// boundaryMargin is subtracted from every NextChange result. Burst edges
// are recovered by inverse-mapping the fractional burst position back to a
// time, which can land a few ulp after the instant where At's forward
// comparison actually flips; reporting the boundary marginally early is
// always safe (the caller re-samples sooner than strictly necessary),
// while reporting it late would let a held sample outlive its truth.
const boundaryMargin = 1e-9

// NextChange returns the earliest time u > t at which the program's sample
// may differ from At(t): the end of the active phase, the next jitter slot
// (jitter re-rolls each second), or the next burst edge. Between t and the
// returned time, At is constant. Outside the program it returns 0 (for
// t < 0, where the next change is the program start) or +Inf (at or past
// the end, where the sample is zero forever).
func (p *Program) NextChange(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t >= p.total {
		return math.Inf(1)
	}
	lo, hi := 0, len(p.phases)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.offsets[mid] <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	ph := &p.phases[lo]
	next := p.offsets[lo] + ph.Dur // phase end (== p.total for the last phase)
	if ph.CPUJitter > 0 || ph.GPUJitter > 0 {
		if u := math.Floor(t) + 1; u < next {
			next = u
		}
	}
	if ph.BurstPeriod > 0 {
		f := (t - p.offsets[lo]) * p.burstInv[lo]
		base := math.Floor(f)
		var edge float64
		if f-base < ph.BurstDuty {
			edge = base + ph.BurstDuty // high → low within this period
		} else {
			edge = base + 1 // low → high at the next period
		}
		u := p.offsets[lo] + edge*ph.BurstPeriod
		if u <= t {
			// The inverse map rounded the edge onto (or below) t itself:
			// the flip is imminent, within a few ulp. The smallest honest
			// answer is the very next representable time.
			u = math.Nextafter(t, math.Inf(1))
		}
		if u < next {
			next = u
		}
	}
	if u := next - boundaryMargin; u > t {
		return u
	}
	return next
}

// BoundaryQueried is the optional event-engine interface: workloads that
// can report the next time their sample may change admit held-input
// segment folding (see device.EventRun). The contract is conservative:
// At must be constant on [t, NextChange(t)), and NextChange(t) > t for
// every t inside the workload. Reporting a change that doesn't happen is
// legal (it only costs a shorter segment); missing one is not.
type BoundaryQueried interface {
	NextChange(t float64) float64
}

// NextChangeOf returns w's boundary query, or nil when w doesn't support
// one (callers fall back to tick-by-tick stepping). Truncated wrappers
// delegate to the inner workload and add the clip point itself as a final
// boundary.
func NextChangeOf(w Workload) func(t float64) float64 {
	switch x := w.(type) {
	case Truncated:
		return truncatedNextChange(x)
	case *Truncated:
		return truncatedNextChange(*x)
	case BoundaryQueried:
		return x.NextChange
	}
	return nil
}

func truncatedNextChange(tr Truncated) func(t float64) float64 {
	inner := NextChangeOf(tr.W)
	if inner == nil {
		return nil
	}
	dur := tr.Dur
	return func(t float64) float64 {
		if t >= dur {
			return math.Inf(1)
		}
		u := inner(t)
		if u > dur {
			u = dur // the clip itself is a change point (sample drops to zero)
		}
		return u
	}
}

// PhaseAt returns the name of the phase active at time t, or "" outside the
// program.
func (p *Program) PhaseAt(t float64) string {
	if t < 0 || t >= p.total {
		return ""
	}
	for i := len(p.offsets) - 1; i >= 0; i-- {
		if p.offsets[i] <= t {
			return p.phases[i].Name
		}
	}
	return ""
}

// Repeat returns a program consisting of n back-to-back copies of p's
// phases.
func (p *Program) Repeat(n int) *Program {
	if n <= 0 {
		panic("workload: Repeat needs n >= 1")
	}
	phases := make([]Phase, 0, len(p.phases)*n)
	for i := 0; i < n; i++ {
		phases = append(phases, p.phases...)
	}
	return New(p.name, p.seed, phases...)
}

// Truncated wraps a workload, clipping it to the given duration.
type Truncated struct {
	W   Workload
	Dur float64
}

// Name implements Workload.
func (tr Truncated) Name() string { return tr.W.Name() }

// Duration implements Workload.
func (tr Truncated) Duration() float64 { return tr.Dur }

// At implements Workload.
func (tr Truncated) At(t float64) Sample {
	if t < 0 || t >= tr.Dur {
		return Sample{}
	}
	return tr.W.At(t)
}

// Cursor implements Cursored, delegating to the wrapped workload's fast
// path when it has one.
func (tr Truncated) Cursor() func(t float64) Sample {
	inner := SamplerOf(tr.W)
	dur := tr.Dur
	return func(t float64) Sample {
		if t < 0 || t >= dur {
			return Sample{}
		}
		return inner(t)
	}
}
