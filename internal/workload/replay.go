package workload

// Trace replay: turn a logged demand trace (e.g. utilization sampled from
// a real phone, or a trace exported from another simulator) into a
// Workload. Samples are held piecewise-constant between timestamps.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// TracePoint is one sample of a replayed trace.
type TracePoint struct {
	TimeSec float64
	Sample  Sample
}

// Replay is a Workload that plays back a recorded trace.
type Replay struct {
	name   string
	points []TracePoint
	dur    float64
}

// NewReplay builds a replay workload from trace points. Points are sorted
// by time; the workload ends at the last point's timestamp (its sample is
// held for zero duration — append a final point to extend). At least two
// points are required.
func NewReplay(name string, points []TracePoint) (*Replay, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: replay needs at least 2 points, got %d", len(points))
	}
	ps := append([]TracePoint(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].TimeSec < ps[j].TimeSec })
	if ps[0].TimeSec < 0 {
		return nil, fmt.Errorf("workload: replay has negative timestamp %v", ps[0].TimeSec)
	}
	return &Replay{name: name, points: ps, dur: ps[len(ps)-1].TimeSec}, nil
}

// Name implements Workload.
func (r *Replay) Name() string { return r.name }

// Duration implements Workload.
func (r *Replay) Duration() float64 { return r.dur }

// At implements Workload with piecewise-constant (zero-order) hold.
func (r *Replay) At(t float64) Sample {
	if t < 0 || t >= r.dur {
		return Sample{}
	}
	// Binary search for the last point with TimeSec <= t.
	lo, hi := 0, len(r.points)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if r.points[mid].TimeSec <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return r.points[lo].Sample
}

// ReadReplayCSV parses a replay trace from CSV with the header
//
//	time_s,cpu_frac,gpu_load,aux_w,charge_w,display,touch
//
// where touch is 0 or 1. Blank lines and lines starting with '#' are
// skipped.
func ReadReplayCSV(name string, r io.Reader) (*Replay, error) {
	sc := bufio.NewScanner(r)
	var points []TracePoint
	line := 0
	headerSeen := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if !headerSeen {
			headerSeen = true
			if strings.HasPrefix(strings.ToLower(text), "time_s") {
				continue // header row
			}
		}
		parts := strings.Split(text, ",")
		if len(parts) != 7 {
			return nil, fmt.Errorf("workload: replay line %d: want 7 fields, got %d", line, len(parts))
		}
		vals := make([]float64, 7)
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("workload: replay line %d field %d: %w", line, i+1, err)
			}
			vals[i] = v
		}
		points = append(points, TracePoint{
			TimeSec: vals[0],
			Sample: Sample{
				CPUFrac:     vals[1],
				GPULoad:     vals[2],
				AuxWatts:    vals[3],
				ChargeWatts: vals[4],
				Display:     vals[5],
				Touch:       vals[6] != 0,
			},
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewReplay(name, points)
}

// WriteReplayCSV samples any workload at the given interval and writes it
// in the replay CSV format — useful for exporting the synthetic profiles
// to other tools or for regression-pinning a profile.
func WriteReplayCSV(w io.Writer, wl Workload, intervalSec float64) error {
	if intervalSec <= 0 {
		intervalSec = 1
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "time_s,cpu_frac,gpu_load,aux_w,charge_w,display,touch")
	for t := 0.0; t <= wl.Duration(); t += intervalSec {
		s := wl.At(t)
		touch := 0
		if s.Touch {
			touch = 1
		}
		fmt.Fprintf(bw, "%.3f,%.4f,%.4f,%.4f,%.4f,%.4f,%d\n",
			t, s.CPUFrac, s.GPULoad, s.AuxWatts, s.ChargeWatts, s.Display, touch)
	}
	return bw.Flush()
}
