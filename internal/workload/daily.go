package workload

// DailyMix composes a realistic usage session from the building blocks the
// paper evaluates in isolation: idle pocket time, bursts of browsing,
// video playback, a video call, gaming, and a charging top-up. It is used
// to diversify the ML training corpus beyond the benchmark profiles and as
// an end-to-end scenario for the examples.

// DailyMix returns a ~100-minute mixed-usage trace.
func DailyMix(seed uint64) *Program {
	return New("daily-mix", seed,
		// Pocket idle, screen off.
		Phase{Name: "idle", Dur: 600, CPU: 0.02, CPUJitter: 0.01},
		// Messaging / browsing: short interactive bursts, held.
		Phase{Name: "browse", Dur: 900, BurstPeriod: 5, BurstDuty: 0.25, BurstHigh: 0.8, BurstLow: 0.06,
			CPUJitter: 0.05, Aux: 0.35, Display: 0.7, Touch: true},
		// Short video.
		Phase{Name: "video", Dur: 600, CPU: 0.14, CPUJitter: 0.04, GPU: 0.08, Aux: 0.5, Display: 0.8, Touch: true},
		// Video call.
		Phase{Name: "call", Dur: 1200, BurstPeriod: 6, BurstDuty: 0.5, BurstHigh: 0.85, BurstLow: 0.33,
			CPUJitter: 0.08, GPU: 0.18, GPUJitter: 0.04, Aux: 0.97, Display: 0.8, Touch: true},
		// A round of gaming.
		Phase{Name: "game", Dur: 900, CPU: 0.48, CPUJitter: 0.08, GPU: 0.52, GPUJitter: 0.08,
			Aux: 0.3, Display: 0.9, Touch: true},
		// Cool-down browse.
		Phase{Name: "wind-down", Dur: 300, BurstPeriod: 6, BurstDuty: 0.2, BurstHigh: 0.6, BurstLow: 0.05,
			CPUJitter: 0.04, Aux: 0.3, Display: 0.6, Touch: true},
		// On the charger, screen off.
		Phase{Name: "top-up", Dur: 1500, CPU: 0.03, CPUJitter: 0.02, Charge: 0.9},
	)
}
