package workload

// This file models the paper's thirteen evaluation workloads (Table 1).
// Each profile is shaped to land in the same thermal class the paper
// measured on the instrumented Nexus 4 under the baseline ondemand
// governor:
//
//   hot sustained   — AnTuTu Tester (42.8 °C peak skin), Skype video call
//                     (42.8 °C), AnTuTu CPU 1.5 h (39.3 °C)
//   warm            — AnTuTu CPU (37.9), Record (37.1), Game (36.6),
//                     AnTuTu CPU-GPU-RAM (36.3)
//   mild            — AnTuTu Full (34.0), AnTuTu UserExp (31.9),
//                     Charging (31.7), Vellamo (31.0), YouTube (30.4),
//                     GFXBench (29.3)
//
// Skype and AnTuTu Tester are hot at *moderate* average frequency because
// much of their dissipation is board-level (camera + ISP + radio for the
// video call; screen, flashlight, sensors for the hardware tester), not
// CPU-core switching power. That distinction is load-bearing for the
// paper's argument: a skin-temperature limit cannot be enforced by looking
// at CPU frequency alone.

// BenchmarkNames lists the thirteen Table 1 workloads in column order.
var BenchmarkNames = []string{
	"antutu-cpu",
	"antutu-cpu-gpu-ram",
	"antutu-userexp",
	"antutu-full",
	"antutu-cpu-90min",
	"antutu-tester",
	"gfxbench",
	"vellamo",
	"skype",
	"youtube",
	"record",
	"charging",
	"game",
}

// Benchmarks returns all thirteen paper workloads, seeded deterministically
// from the given base seed.
func Benchmarks(seed uint64) []*Program {
	return []*Program{
		AnTuTuCPU(seed + 1),
		AnTuTuCPUGPURAM(seed + 2),
		AnTuTuUserExp(seed + 3),
		AnTuTuFull(seed + 4),
		AnTuTuCPU90Min(seed + 5),
		AnTuTuTester(seed + 6),
		GFXBench(seed + 7),
		Vellamo(seed + 8),
		Skype(seed + 9),
		YouTube(seed + 10),
		Record(seed + 11),
		Charging(seed + 12),
		Game(seed + 13),
	}
}

// ByName returns the named paper workload (one of BenchmarkNames), seeded
// from seed, or nil if the name is unknown.
func ByName(name string, seed uint64) *Program {
	for i, n := range BenchmarkNames {
		if n == name {
			return Benchmarks(seed)[i]
		}
	}
	return nil
}

// AnTuTuCPU models the CPU-only AnTuTu subset: compute sections separated
// by score screens, repeated for ~25 minutes.
func AnTuTuCPU(seed uint64) *Program {
	cycle := []Phase{
		{Name: "compute", Dur: 75, CPU: 0.88, CPUJitter: 0.06, GPU: 0.05, Aux: 0.15, Display: 0.7, Touch: true},
		{Name: "score", Dur: 30, CPU: 0.12, CPUJitter: 0.05, Aux: 0.15, Display: 0.7, Touch: true},
	}
	return New("antutu-cpu", seed, cycle...).Repeat(14) // ~24.5 min
}

// AnTuTuCPUGPURAM models the combined CPU+GPU+memory AnTuTu subset.
func AnTuTuCPUGPURAM(seed uint64) *Program {
	cycle := []Phase{
		{Name: "cpu", Dur: 55, CPU: 0.85, CPUJitter: 0.06, GPU: 0.05, Aux: 0.15, Display: 0.7, Touch: true},
		{Name: "gpu", Dur: 50, CPU: 0.30, CPUJitter: 0.05, GPU: 0.65, GPUJitter: 0.1, Aux: 0.15, Display: 0.7, Touch: true},
		{Name: "ram", Dur: 35, CPU: 0.55, CPUJitter: 0.08, GPU: 0.05, Aux: 0.15, Display: 0.7, Touch: true},
		{Name: "score", Dur: 25, CPU: 0.10, CPUJitter: 0.04, Aux: 0.15, Display: 0.7, Touch: true},
	}
	return New("antutu-cpu-gpu-ram", seed, cycle...).Repeat(9) // ~24.8 min
}

// AnTuTuUserExp models the user-experience AnTuTu subset: short interactive
// bursts that kick ondemand to the top level without sustained dissipation.
func AnTuTuUserExp(seed uint64) *Program {
	cycle := []Phase{
		{Name: "burst", Dur: 60, BurstPeriod: 4, BurstDuty: 0.3, BurstHigh: 0.92, BurstLow: 0.08,
			CPUJitter: 0.04, GPU: 0.15, GPUJitter: 0.05, Aux: 0.15, Display: 0.7, Touch: true},
		{Name: "settle", Dur: 20, CPU: 0.1, CPUJitter: 0.04, Aux: 0.15, Display: 0.7, Touch: true},
	}
	return New("antutu-userexp", seed, cycle...).Repeat(12) // 16 min
}

// AnTuTuFull models the complete AnTuTu benchmark set run.
func AnTuTuFull(seed uint64) *Program {
	cycle := []Phase{
		{Name: "cpu", Dur: 70, CPU: 0.80, CPUJitter: 0.06, Aux: 0.15, Display: 0.7, Touch: true},
		{Name: "gpu", Dur: 60, CPU: 0.25, GPU: 0.60, GPUJitter: 0.1, Aux: 0.15, Display: 0.7, Touch: true},
		{Name: "ux", Dur: 50, BurstPeriod: 4, BurstDuty: 0.3, BurstHigh: 0.85, BurstLow: 0.1, Aux: 0.15, Display: 0.7, Touch: true},
		{Name: "io-score", Dur: 60, CPU: 0.18, CPUJitter: 0.06, Aux: 0.2, Display: 0.7, Touch: true},
	}
	return New("antutu-full", seed, cycle...).Repeat(5) // 20 min
}

// AnTuTuCPU90Min models the customized 1.5-hour AnTuTu CPU loop the paper
// uses as its longest soak.
func AnTuTuCPU90Min(seed uint64) *Program {
	cycle := []Phase{
		{Name: "compute", Dur: 85, CPU: 0.90, CPUJitter: 0.05, GPU: 0.05, Aux: 0.15, Display: 0.7, Touch: true},
		{Name: "score", Dur: 23, CPU: 0.12, CPUJitter: 0.05, Aux: 0.15, Display: 0.7, Touch: true},
	}
	return New("antutu-cpu-90min", seed, cycle...).Repeat(50) // 90 min
}

// AnTuTuTester models the hardware tester app used in the user study: a
// moderate CPU load plus heavy board-level dissipation (full-brightness
// screen pattern tests, flashlight, vibration motor, sensor sweeps). This is
// the workload that drove every participant past their comfort limit.
func AnTuTuTester(seed uint64) *Program {
	cycle := []Phase{
		{Name: "screen-test", Dur: 120, CPU: 0.45, CPUJitter: 0.08, GPU: 0.25, GPUJitter: 0.05, Aux: 1.35, Display: 1.0, Touch: true},
		{Name: "hw-test", Dur: 120, CPU: 0.55, CPUJitter: 0.08, GPU: 0.10, Aux: 1.55, Display: 1.0, Touch: true},
	}
	return New("antutu-tester", seed, cycle...).Repeat(8) // 32 min
}

// GFXBench models the offscreen GPU benchmark suite: GPU-bound, short run.
func GFXBench(seed uint64) *Program {
	cycle := []Phase{
		{Name: "scene", Dur: 100, CPU: 0.28, CPUJitter: 0.05, GPU: 0.85, GPUJitter: 0.08, Aux: 0.15, Display: 0.7, Touch: true},
		{Name: "load", Dur: 25, CPU: 0.35, CPUJitter: 0.05, GPU: 0.1, Aux: 0.15, Display: 0.7, Touch: true},
	}
	return New("gfxbench", seed, cycle...).Repeat(5) // ~10.4 min
}

// Vellamo models the browser/metal benchmark: bursty medium CPU.
func Vellamo(seed uint64) *Program {
	cycle := []Phase{
		{Name: "html5", Dur: 90, BurstPeriod: 5, BurstDuty: 0.45, BurstHigh: 0.75, BurstLow: 0.12,
			CPUJitter: 0.05, GPU: 0.1, Aux: 0.25, Display: 0.7, Touch: true},
		{Name: "metal", Dur: 60, CPU: 0.6, CPUJitter: 0.08, Aux: 0.15, Display: 0.7, Touch: true},
	}
	return New("vellamo", seed, cycle...).Repeat(6) // 15 min
}

// Skype models the 30-minute video call of Figures 2 and 4: sustained
// moderate CPU (capture + encode + decode), light GPU compositing, and the
// large board-level dissipation of camera, ISP and the radio uplink. The
// display stays on at call brightness and the phone is held throughout.
func Skype(seed uint64) *Program {
	// The CPU/board power split matters for USTA's authority: encode/decode
	// CPU work dominates (clampable), while camera + ISP + radio contribute
	// ≈1 W the governor cannot touch. At the minimum OPP the residual board
	// power settles the skin just below 37 °C — the regime of Figure 4,
	// where USTA holds a steady temperature near the default limit. The
	// encoder is bursty (group-of-pictures cadence), which is what keeps
	// the paper's baseline *average* frequency near 1.1 GHz even though the
	// call saturates the thermal envelope.
	return New("skype", seed, Phase{
		Name: "call", Dur: 1800,
		BurstPeriod: 6, BurstDuty: 0.5, BurstHigh: 0.85, BurstLow: 0.33,
		CPUJitter: 0.08,
		GPU:       0.18, GPUJitter: 0.04,
		Aux: 0.97, Display: 0.8, Touch: true,
	})
}

// YouTube models 30 minutes of hardware-decoded video playback.
func YouTube(seed uint64) *Program {
	return New("youtube", seed, Phase{
		Name: "playback", Dur: 1800,
		CPU: 0.14, CPUJitter: 0.05,
		GPU: 0.08, GPUJitter: 0.02,
		Aux: 0.5, Display: 0.8, Touch: true,
	})
}

// Record models 30 minutes of camcorder recording: camera + ISP + hardware
// encoder dominate, with moderate CPU.
func Record(seed uint64) *Program {
	return New("record", seed, Phase{
		Name: "record", Dur: 1800,
		CPU: 0.34, CPUJitter: 0.06,
		GPU: 0.10, GPUJitter: 0.03,
		Aux: 1.15, Display: 0.75, Touch: true,
	})
}

// Charging models an hour on the charger with the screen off: the CPU
// idles while the charger dissipates heat in the battery.
func Charging(seed uint64) *Program {
	return New("charging", seed, Phase{
		Name: "charge", Dur: 3600,
		CPU: 0.03, CPUJitter: 0.02,
		Charge: 0.9, Display: 0,
	})
}

// Game models 30 minutes of "The Legend of Holy Archer": steady mixed
// CPU+GPU with the screen bright and the phone held.
func Game(seed uint64) *Program {
	return New("game", seed, Phase{
		Name: "play", Dur: 1800,
		CPU: 0.48, CPUJitter: 0.08,
		GPU: 0.52, GPUJitter: 0.08,
		Aux: 0.3, Display: 0.9, Touch: true,
	})
}

// --- Synthetic generators (ML-corpus diversity and tests) ---

// SquareWave returns a workload alternating between high and low CPU demand.
func SquareWave(seed uint64, period, duty, high, low, dur float64) *Program {
	return New("square-wave", seed, Phase{
		Name: "square", Dur: dur,
		BurstPeriod: period, BurstDuty: duty, BurstHigh: high, BurstLow: low,
		Display: 0.7,
	})
}

// StaircaseRamp returns a workload stepping CPU demand from lo to hi in
// steps of the given length — useful for sweeping the governor's operating
// points during ML data collection.
func StaircaseRamp(seed uint64, lo, hi float64, steps int, stepDur float64) *Program {
	if steps < 2 {
		panic("workload: StaircaseRamp needs at least 2 steps")
	}
	phases := make([]Phase, steps)
	for i := range phases {
		frac := lo + (hi-lo)*float64(i)/float64(steps-1)
		phases[i] = Phase{
			Name: "step", Dur: stepDur,
			CPU: frac, CPUJitter: 0.03,
			Display: 0.7,
		}
	}
	return New("staircase-ramp", seed, phases...)
}

// RandomPhases returns a workload of n phases with demand levels drawn
// deterministically from the seed — a Markov-ish surrogate for mixed daily
// use in the training corpus.
func RandomPhases(seed uint64, n int, phaseDur float64) *Program {
	if n < 1 {
		panic("workload: RandomPhases needs n >= 1")
	}
	phases := make([]Phase, n)
	for i := range phases {
		cpu := noise(seed, int64(i), 11)
		gpu := noise(seed, int64(i), 13) * 0.7
		aux := noise(seed, int64(i), 17) * 0.8
		phases[i] = Phase{
			Name: "rand", Dur: phaseDur,
			CPU: cpu, CPUJitter: 0.08,
			GPU: gpu, GPUJitter: 0.05,
			Aux: aux, Display: 0.7,
			Touch: noise(seed, int64(i), 19) > 0.5,
		}
	}
	return New("random-phases", seed, phases...)
}

// Idle returns a screen-off idle workload.
func Idle(dur float64) *Program {
	return New("idle", 0, Phase{Name: "idle", Dur: dur, CPU: 0.015, Display: 0})
}
