// Package analytics turns fleet sweep output into the paper-shaped
// aggregates the ROADMAP asks for: per-user comfort/violation
// distributions, ambient × limit violation heat maps, and scheme-vs-scheme
// energy/QoS deltas, rendered to CSV or markdown. It consumes the
// (Grid, []JobResult) pair a scenario run produces — or, for trace-free
// sweeps, a streaming ViolationSink that accumulates over-limit statistics
// on the fly with O(jobs) memory.
package analytics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/scenario"
	"repro/internal/sink"
	"repro/internal/users"
)

// JobStat is one job's grid coordinates joined with its run outcome and
// violation statistics.
type JobStat struct {
	scenario.Point
	// Result is the job's aggregate outcome (nil when the job failed).
	Result *device.RunResult
	// Err is the job's failure, if any.
	Err error
	// OverFrac is the fraction of telemetry samples with skin temperature
	// strictly above LimitC; MeanExcessC is the average excess over those
	// samples. NaN when no violation data is available (trace-free run
	// without a ViolationSink).
	OverFrac    float64
	MeanExcessC float64
}

// HasViolationData reports whether OverFrac/MeanExcessC are populated.
func (j *JobStat) HasViolationData() bool { return !math.IsNaN(j.OverFrac) }

// Flatten joins an expanded grid with its fleet results into per-job
// stats, computing violation statistics from each job's trace when one was
// retained. Results must be the output of running grid.Jobs as one batch
// (same order, same length).
func Flatten(grid *scenario.Grid, results []fleet.JobResult) ([]JobStat, error) {
	if len(results) != len(grid.Jobs) {
		return nil, fmt.Errorf("analytics: %d results for %d jobs", len(results), len(grid.Jobs))
	}
	stats := make([]JobStat, len(results))
	for i, jr := range results {
		st := JobStat{
			Point:    grid.Points[i],
			Result:   jr.Result,
			Err:      jr.Err,
			OverFrac: math.NaN(), MeanExcessC: math.NaN(),
		}
		if jr.Result != nil && jr.Result.Trace != nil {
			if s := jr.Result.Trace.Lookup("skin_c"); s != nil {
				over, excess := 0, 0.0
				for _, v := range s.Values {
					if v > st.LimitC {
						over++
						excess += v - st.LimitC
					}
				}
				if n := len(s.Values); n > 0 {
					st.OverFrac = float64(over) / float64(n)
					if over > 0 {
						st.MeanExcessC = excess / float64(over)
					} else {
						st.MeanExcessC = 0
					}
				}
			}
		}
		stats[i] = st
	}
	return stats, nil
}

// FirstError returns the first job error in the stats, or nil.
func FirstError(stats []JobStat) error {
	for _, st := range stats {
		if st.Err != nil {
			return fmt.Errorf("analytics: job %d (%s): %w", st.Index, st.Name, st.Err)
		}
	}
	return nil
}

// ViolationAccum is the incremental per-job over-limit counter behind
// ViolationSink — one job's running (samples, over-limit samples, summed
// excess) triple, folded one skin sample at a time. It is exported so live
// aggregators (internal/obs) fold the exact same arithmetic, in the exact
// same order, as the post-hoc path: equality of the two is what pins the
// streaming dashboard to the repo's determinism guarantees. The zero value
// is ready to use; the caller owns synchronization.
type ViolationAccum struct {
	N      int
	Over   int
	Excess float64
}

// Add folds one skin-temperature sample measured against limitC.
func (a *ViolationAccum) Add(skinC, limitC float64) {
	a.N++
	if skinC > limitC {
		a.Over++
		a.Excess += skinC - limitC
	}
}

// ApplyTo fills st's OverFrac/MeanExcessC from the accumulated counters —
// the same reduction Flatten performs over a retained trace. A counter
// that saw no samples leaves st untouched (OverFrac stays NaN).
func (a *ViolationAccum) ApplyTo(st *JobStat) {
	if a.N == 0 {
		return
	}
	st.OverFrac = float64(a.Over) / float64(a.N)
	if a.Over > 0 {
		st.MeanExcessC = a.Excess / float64(a.Over)
	} else {
		st.MeanExcessC = 0
	}
}

// ViolationSink accumulates per-job over-limit statistics from a telemetry
// stream — the trace-free path to OverFrac/MeanExcessC. Construct it from
// the grid's per-job limits, wire it as (or into) the fleet sink, then
// Apply it to the flattened stats.
//
// Accept is deliberately lock-free: concurrent calls for different jobs
// touch disjoint counters, and the fleet delivers each job's samples from
// a single goroutine with Fleet.Run's return ordering every write before
// Apply. Do not call Accept concurrently for the same job.
type ViolationSink struct {
	limits []float64
	acc    []ViolationAccum
}

// NewViolationSink creates a sink measuring each job's skin samples
// against limits[job] (typically grid.Limits()).
func NewViolationSink(limits []float64) *ViolationSink {
	return &ViolationSink{
		limits: limits,
		acc:    make([]ViolationAccum, len(limits)),
	}
}

// Accept folds one sample into the job's violation counters. Samples for
// jobs outside the limit table are ignored.
func (v *ViolationSink) Accept(job sink.JobID, s device.Sample) {
	i := int(job)
	if i < 0 || i >= len(v.limits) {
		return
	}
	v.acc[i].Add(s.SkinC, v.limits[i])
}

// Close is a no-op; the sink holds no external resources.
func (v *ViolationSink) Close() error { return nil }

// Accum returns job i's accumulated counters (zero outside the table).
// Durability ledgers journal it per completed cell so a resumed trace-free
// sweep restores the exact violation statistics the lost stream produced.
// Like Apply, call it only after the job's samples are all delivered
// (Fleet.Run's OnResult callback, or after Run returns).
func (v *ViolationSink) Accum(i int) ViolationAccum {
	if i < 0 || i >= len(v.acc) {
		return ViolationAccum{}
	}
	return v.acc[i]
}

// Apply fills each stat's OverFrac/MeanExcessC from the accumulated
// stream, keyed by job index. Call it after the run completes (Fleet.Run's
// return is the ordering barrier); stats whose job saw no samples are left
// untouched.
func (v *ViolationSink) Apply(stats []JobStat) {
	for i := range stats {
		idx := stats[i].Index
		if idx < 0 || idx >= len(v.acc) {
			continue
		}
		v.acc[idx].ApplyTo(&stats[i])
	}
}

// UserComfort is one user's violation/comfort distribution over every job
// they appear in — the fleet-scale generalization of the paper's per-user
// comfort results.
type UserComfort struct {
	UserID string
	// LimitC is the user's personal skin limit (the default user's 37 °C).
	LimitC float64
	// N is the number of jobs aggregated; NViolation counts jobs with any
	// violation data at all.
	N          int
	NViolation int
	// MeanOverFrac / MaxOverFrac summarize the violation distribution over
	// jobs with violation data.
	MeanOverFrac float64
	MaxOverFrac  float64
	// MeanExcessC is the mean per-job excess while over the limit.
	MeanExcessC float64
	// MeanSlowdown / MeanEnergyJ summarize QoS and energy over all jobs.
	MeanSlowdown float64
	MeanEnergyJ  float64
}

// ComfortByUser aggregates stats into one row per user, ordered by user ID
// (with "default" last). Failed jobs are skipped.
func ComfortByUser(stats []JobStat) []UserComfort {
	byID := map[string]*UserComfort{}
	var order []string
	for _, st := range stats {
		if st.Err != nil || st.Result == nil {
			continue
		}
		uc := byID[st.UserID]
		if uc == nil {
			lim := users.DefaultLimitC
			if u, ok := users.ByID(st.UserID); ok {
				lim = u.SkinLimitC
			}
			uc = &UserComfort{UserID: st.UserID, LimitC: lim}
			byID[st.UserID] = uc
			order = append(order, st.UserID)
		}
		uc.N++
		uc.MeanSlowdown += st.Result.Slowdown()
		uc.MeanEnergyJ += st.Result.EnergyJ
		if st.HasViolationData() {
			uc.NViolation++
			uc.MeanOverFrac += st.OverFrac
			uc.MeanExcessC += st.MeanExcessC
			if st.OverFrac > uc.MaxOverFrac {
				uc.MaxOverFrac = st.OverFrac
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if (a == "default") != (b == "default") {
			return b == "default"
		}
		return a < b
	})
	out := make([]UserComfort, 0, len(order))
	for _, id := range order {
		uc := byID[id]
		if uc.N > 0 {
			uc.MeanSlowdown /= float64(uc.N)
			uc.MeanEnergyJ /= float64(uc.N)
		}
		if uc.NViolation > 0 {
			uc.MeanOverFrac /= float64(uc.NViolation)
			uc.MeanExcessC /= float64(uc.NViolation)
		}
		out = append(out, *uc)
	}
	return out
}

// Quantile returns the q-quantile (q in [0,1]) of vs by linear
// interpolation between order statistics (the numpy/R type-7 estimator).
// vs need not be sorted; an empty input returns NaN.
func Quantile(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted is Quantile over an already-sorted non-empty slice, so
// multi-quantile reductions (Summarize, Pivot cells) sort once.
func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Summary is a distribution summary over a set of per-job values — the
// shape the ROADMAP's "percentile distributions" item asks heat-map cells
// to carry beyond the mean.
type Summary struct {
	N                        int
	Mean, P50, P95, P99, Max float64
}

// Summarize reduces values to a Summary (an empty input yields NaN
// statistics).
func Summarize(vs []float64) Summary {
	s := Summary{N: len(vs), Mean: math.NaN(), P50: math.NaN(), P95: math.NaN(), P99: math.NaN(), Max: math.NaN()}
	if len(vs) == 0 {
		return s
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(len(sorted))
	s.P50 = quantileSorted(sorted, 0.5)
	s.P95 = quantileSorted(sorted, 0.95)
	s.P99 = quantileSorted(sorted, 0.99)
	s.Max = sorted[len(sorted)-1]
	return s
}

// HeatMap is a dense row × column matrix of cell distribution summaries —
// the ambient × limit violation surface of the ROADMAP, but generic over
// the two numeric axes.
type HeatMap struct {
	// RowLabel / ColLabel name the axes (e.g. "ambient_c", "limit_c").
	RowLabel, ColLabel string
	// ValueLabel names the aggregated quantity (e.g. "over_frac").
	ValueLabel string
	// Rows / Cols are the sorted distinct axis values.
	Rows, Cols []float64
	// Cells[r][c] is the mean value over jobs in that bucket (NaN when the
	// bucket is empty); Counts[r][c] is the bucket population.
	Cells  [][]float64
	Counts [][]int
	// P95/P99[r][c] are the bucket's distribution percentiles (NaN when
	// empty; equal to the value when the bucket holds one job).
	P95, P99 [][]float64
}

// HasDistribution reports whether any bucket aggregates more than one job
// — i.e. whether the percentile surfaces carry information beyond Cells.
func (h *HeatMap) HasDistribution() bool {
	for _, row := range h.Counts {
		for _, n := range row {
			if n > 1 {
				return true
			}
		}
	}
	return false
}

// ViolationHeatMap pivots stats into an ambient × limit map of mean
// OverFrac. Jobs without violation data (or failed jobs) are skipped.
func ViolationHeatMap(stats []JobStat) *HeatMap {
	return Pivot(stats, "ambient_c", "limit_c", "over_frac",
		func(st *JobStat) (float64, float64, float64, bool) {
			if st.Err != nil || !st.HasViolationData() {
				return 0, 0, 0, false
			}
			return st.AmbientC, st.LimitC, st.OverFrac, true
		})
}

// Pivot builds a heat map from an arbitrary (row, col, value) projection;
// cells average every accepted job that lands in them.
func Pivot(stats []JobStat, rowLabel, colLabel, valueLabel string, project func(*JobStat) (row, col, value float64, ok bool)) *HeatMap {
	rowSet := map[float64]bool{}
	colSet := map[float64]bool{}
	cells := map[[2]float64][]float64{}
	for i := range stats {
		r, c, v, ok := project(&stats[i])
		if !ok {
			continue
		}
		rowSet[r] = true
		colSet[c] = true
		key := [2]float64{r, c}
		cells[key] = append(cells[key], v)
	}
	h := &HeatMap{RowLabel: rowLabel, ColLabel: colLabel, ValueLabel: valueLabel}
	for r := range rowSet {
		h.Rows = append(h.Rows, r)
	}
	for c := range colSet {
		h.Cols = append(h.Cols, c)
	}
	sort.Float64s(h.Rows)
	sort.Float64s(h.Cols)
	h.Cells = make([][]float64, len(h.Rows))
	h.Counts = make([][]int, len(h.Rows))
	h.P95 = make([][]float64, len(h.Rows))
	h.P99 = make([][]float64, len(h.Rows))
	for ri, r := range h.Rows {
		h.Cells[ri] = make([]float64, len(h.Cols))
		h.Counts[ri] = make([]int, len(h.Cols))
		h.P95[ri] = make([]float64, len(h.Cols))
		h.P99[ri] = make([]float64, len(h.Cols))
		for ci, c := range h.Cols {
			s := Summarize(cells[[2]float64{r, c}])
			h.Cells[ri][ci] = s.Mean
			h.Counts[ri][ci] = s.N
			h.P95[ri][ci] = s.P95
			h.P99[ri][ci] = s.P99
		}
	}
	return h
}

// SchemePair joins the two runs of one grid cell under two schemes.
type SchemePair struct {
	Workload string
	UserID   string
	AmbientC float64
	LimitC   float64
	Base     *JobStat
	Alt      *JobStat
}

// PairSchemes joins stats of the same grid cell (Point.Cell — the scheme
// axis is the grid's innermost, so two schemes of one cell share it)
// across the base and alt schemes, in first-appearance order. Every cell
// must appear under both schemes exactly once.
func PairSchemes(stats []JobStat, base, alt string) ([]SchemePair, error) {
	pairs := map[int]*SchemePair{}
	var order []int
	for i := range stats {
		st := &stats[i]
		if st.Scheme != base && st.Scheme != alt {
			continue
		}
		p := pairs[st.Cell]
		if p == nil {
			p = &SchemePair{Workload: st.Workload, UserID: st.UserID, AmbientC: st.AmbientC, LimitC: st.LimitC}
			pairs[st.Cell] = p
			order = append(order, st.Cell)
		}
		slot := &p.Base
		if st.Scheme == alt {
			slot = &p.Alt
			p.LimitC = st.LimitC // the controlled scheme's limit is the cell's
		}
		if *slot != nil {
			return nil, fmt.Errorf("analytics: duplicate %s run for %s", st.Scheme, st.Name)
		}
		*slot = st
	}
	out := make([]SchemePair, 0, len(order))
	for _, cell := range order {
		p := pairs[cell]
		if p.Base == nil || p.Alt == nil {
			return nil, fmt.Errorf("analytics: cell %s/u=%s/amb=%g missing a %s or %s run", p.Workload, p.UserID, p.AmbientC, base, alt)
		}
		out = append(out, *p)
	}
	return out, nil
}

// Delta is one cell's scheme-vs-scheme outcome: alt minus base (negative
// energy/peak deltas mean the alternative improved on the baseline).
type Delta struct {
	Workload string
	UserID   string
	AmbientC float64
	LimitC   float64
	// DMaxSkinC / DMaxScreenC are peak-temperature deltas in °C.
	DMaxSkinC   float64
	DMaxScreenC float64
	// DAvgFreqMHz is the average-frequency delta.
	DAvgFreqMHz float64
	// DEnergyPct is the energy delta as a percentage of the base run's.
	DEnergyPct float64
	// DSlowdown is the QoS delta (fraction of demanded work unserved).
	DSlowdown float64
	// DOverFrac is the violation-time delta (NaN without violation data).
	DOverFrac float64
}

// CompareSchemes reduces paired runs to per-cell deltas (alt − base).
// Cells whose runs failed are reported as an error.
func CompareSchemes(stats []JobStat, base, alt string) ([]Delta, error) {
	pairs, err := PairSchemes(stats, base, alt)
	if err != nil {
		return nil, err
	}
	out := make([]Delta, 0, len(pairs))
	for _, p := range pairs {
		if p.Base.Err != nil {
			return nil, fmt.Errorf("analytics: %s run of %s failed: %w", base, p.Workload, p.Base.Err)
		}
		if p.Alt.Err != nil {
			return nil, fmt.Errorf("analytics: %s run of %s failed: %w", alt, p.Workload, p.Alt.Err)
		}
		b, a := p.Base.Result, p.Alt.Result
		d := Delta{
			Workload:    p.Workload,
			UserID:      p.UserID,
			AmbientC:    p.AmbientC,
			LimitC:      p.LimitC,
			DMaxSkinC:   a.MaxSkinC - b.MaxSkinC,
			DMaxScreenC: a.MaxScreenC - b.MaxScreenC,
			DAvgFreqMHz: a.AvgFreqMHz - b.AvgFreqMHz,
			DSlowdown:   a.Slowdown() - b.Slowdown(),
			DOverFrac:   math.NaN(),
		}
		if b.EnergyJ != 0 {
			d.DEnergyPct = (a.EnergyJ - b.EnergyJ) / b.EnergyJ * 100
		}
		if p.Base.HasViolationData() && p.Alt.HasViolationData() {
			d.DOverFrac = p.Alt.OverFrac - p.Base.OverFrac
		}
		out = append(out, d)
	}
	return out, nil
}
