package analytics_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/scenario"
	"repro/internal/sink"
	"repro/internal/workload"
)

// paperGrid expands the Table 1 grid (no simulation — the jobs are never
// run) and synthesizes JobResults from the paper's published cells, so the
// analytics pipeline can be tested against known-good numbers.
func paperGrid(t *testing.T) (*scenario.Grid, []fleet.JobResult) {
	t.Helper()
	spec := experiments.Table1Spec(experiments.DefaultConfig())
	grid, err := spec.Expand(scenario.Env{Predictor: &core.Predictor{}})
	if err != nil {
		t.Fatal(err)
	}
	results := make([]fleet.JobResult, len(grid.Jobs))
	for i, p := range grid.Points {
		base, usta, ok := experiments.PaperTable1(p.Workload)
		if !ok {
			t.Fatalf("no paper cell for %q", p.Workload)
		}
		cell := base
		if p.Scheme == "usta" {
			cell = usta
		}
		results[i] = fleet.JobResult{
			Index: i,
			Name:  p.Name,
			Result: &device.RunResult{
				Workload:     p.Workload,
				MaxScreenC:   cell.MaxScreenC,
				MaxSkinC:     cell.MaxSkinC,
				AvgFreqMHz:   cell.AvgFreqGHz * 1000,
				EnergyJ:      cell.AvgFreqGHz * 100, // stand-in: ∝ frequency
				WorkDemanded: 100,
				WorkDone:     90,
			},
		}
	}
	return grid, results
}

// TestCompareSchemesPaperTable1Golden feeds the published Table 1 cells
// through Flatten + CompareSchemes and checks the paper's headline deltas.
func TestCompareSchemesPaperTable1Golden(t *testing.T) {
	grid, results := paperGrid(t)
	stats, err := analytics.Flatten(grid, results)
	if err != nil {
		t.Fatal(err)
	}
	deltas, err := analytics.CompareSchemes(stats, "baseline", "usta")
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 13 {
		t.Fatalf("deltas = %d want 13", len(deltas))
	}
	byWl := map[string]analytics.Delta{}
	for _, d := range deltas {
		byWl[d.Workload] = d
	}
	// The paper's headline: USTA cuts the Skype peak by 4.1 °C at a 34 %
	// lower average frequency (1.09 → 0.72 GHz).
	skype := byWl["skype"]
	if math.Abs(skype.DMaxSkinC+4.1) > 1e-9 {
		t.Fatalf("skype Δpeak = %v want -4.1", skype.DMaxSkinC)
	}
	if math.Abs(skype.DAvgFreqMHz+370) > 1e-9 {
		t.Fatalf("skype Δfreq = %v want -370 MHz", skype.DAvgFreqMHz)
	}
	// AnTuTu Tester: 42.8 → 41.1.
	if d := byWl["antutu-tester"].DMaxSkinC; math.Abs(d+1.7) > 1e-9 {
		t.Fatalf("antutu-tester Δpeak = %v want -1.7", d)
	}
	// Energy delta is relative to baseline: skype −34 % (the stand-in
	// energy is proportional to frequency).
	if math.Abs(skype.DEnergyPct-(0.72-1.09)/1.09*100) > 1e-9 {
		t.Fatalf("skype Δenergy%% = %v", skype.DEnergyPct)
	}
	// Rendering must carry every workload.
	md := analytics.DeltasMarkdown(deltas, "baseline", "usta")
	var csv strings.Builder
	if err := analytics.WriteDeltasCSV(&csv, deltas); err != nil {
		t.Fatal(err)
	}
	for _, wl := range workload.BenchmarkNames {
		if !strings.Contains(md, wl) || !strings.Contains(csv.String(), wl) {
			t.Fatalf("rendered deltas missing %q", wl)
		}
	}
}

// TestPairSchemesErrors covers the join failure modes.
func TestPairSchemesErrors(t *testing.T) {
	grid, results := paperGrid(t)
	stats, err := analytics.Flatten(grid, results)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := analytics.PairSchemes(stats[:1], "baseline", "usta"); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("unpaired cell should fail, got %v", err)
	}
	dup := append(append([]analytics.JobStat(nil), stats...), stats[0])
	if _, err := analytics.PairSchemes(dup, "baseline", "usta"); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate run should fail, got %v", err)
	}
	if _, err := analytics.Flatten(grid, results[:3]); err == nil {
		t.Fatal("mismatched result count should fail")
	}
}

// TestViolationSinkMatchesTraceAnalytics runs one tiny grid twice — traced
// and trace-free with a ViolationSink — and checks both paths produce the
// same violation statistics.
func TestViolationSinkMatchesTraceAnalytics(t *testing.T) {
	mk := func(traceFree bool) *scenario.Spec {
		return &scenario.Spec{
			Version:   1,
			Workloads: []string{"skype"},
			AmbientsC: []float64{25, 40},
			LimitsC:   []float64{34},
			Duration:  scenario.Duration{Sec: 90},
			TraceFree: traceFree,
		}
	}
	run := func(spec *scenario.Spec, s sink.Sink) ([]analytics.JobStat, *scenario.Grid) {
		grid, err := spec.Expand(scenario.Env{})
		if err != nil {
			t.Fatal(err)
		}
		fl := fleet.New(fleet.Config{Workers: 2, Sink: s})
		results := fl.Run(nil, grid.Jobs)
		if err := fleet.FirstError(results); err != nil {
			t.Fatal(err)
		}
		stats, err := analytics.Flatten(grid, results)
		if err != nil {
			t.Fatal(err)
		}
		return stats, grid
	}

	traced, _ := run(mk(false), nil)
	freeSpec := mk(true)
	grid, err := freeSpec.Expand(scenario.Env{})
	if err != nil {
		t.Fatal(err)
	}
	vs := analytics.NewViolationSink(grid.Limits())
	free, _ := run(freeSpec, vs)
	vs.Apply(free)

	for i := range traced {
		if !traced[i].HasViolationData() || !free[i].HasViolationData() {
			t.Fatalf("job %d missing violation data (traced=%v free=%v)",
				i, traced[i].HasViolationData(), free[i].HasViolationData())
		}
		if traced[i].OverFrac != free[i].OverFrac {
			t.Fatalf("job %d OverFrac: traced %v vs streamed %v", i, traced[i].OverFrac, free[i].OverFrac)
		}
		if traced[i].MeanExcessC != free[i].MeanExcessC {
			t.Fatalf("job %d MeanExcessC: traced %v vs streamed %v", i, traced[i].MeanExcessC, free[i].MeanExcessC)
		}
	}
	// The hot ambient must violate the 34 °C limit more than the mild one.
	if free[1].OverFrac <= free[0].OverFrac {
		t.Fatalf("40 °C ambient should violate more than 25 °C: %v vs %v", free[1].OverFrac, free[0].OverFrac)
	}
}

// TestComfortByUserAggregates checks per-user aggregation and ordering.
func TestComfortByUserAggregates(t *testing.T) {
	stats := []analytics.JobStat{
		{Point: scenario.Point{UserID: "default", LimitC: 37}, Result: &device.RunResult{EnergyJ: 10, WorkDemanded: 100, WorkDone: 100}, OverFrac: 0.2, MeanExcessC: 1},
		{Point: scenario.Point{UserID: "b", LimitC: 34}, Result: &device.RunResult{EnergyJ: 20, WorkDemanded: 100, WorkDone: 50}, OverFrac: 0.5, MeanExcessC: 2},
		{Point: scenario.Point{UserID: "b", LimitC: 34}, Result: &device.RunResult{EnergyJ: 40, WorkDemanded: 100, WorkDone: 100}, OverFrac: math.NaN(), MeanExcessC: math.NaN()},
		{Point: scenario.Point{UserID: "x"}, Err: context.DeadlineExceeded}, // skipped
	}
	rows := analytics.ComfortByUser(stats)
	if len(rows) != 2 {
		t.Fatalf("rows = %d want 2", len(rows))
	}
	if rows[0].UserID != "b" || rows[1].UserID != "default" {
		t.Fatalf("order = %s,%s want b,default (default last)", rows[0].UserID, rows[1].UserID)
	}
	b := rows[0]
	if b.N != 2 || b.NViolation != 1 {
		t.Fatalf("b N=%d NViolation=%d want 2/1", b.N, b.NViolation)
	}
	if b.MeanOverFrac != 0.5 || b.MaxOverFrac != 0.5 || b.MeanExcessC != 2 {
		t.Fatalf("b violation stats wrong: %+v", b)
	}
	if b.MeanEnergyJ != 30 || b.MeanSlowdown != 0.25 {
		t.Fatalf("b means wrong: %+v", b)
	}
	if b.LimitC != 34 {
		t.Fatalf("b limit = %v want the user's own 34", b.LimitC)
	}
	md := analytics.ComfortMarkdown(rows)
	if !strings.Contains(md, "| b |") || !strings.Contains(md, "| default |") {
		t.Fatalf("markdown missing users:\n%s", md)
	}
	var csv strings.Builder
	if err := analytics.WriteComfortCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "user,limit_c,jobs,") {
		t.Fatalf("csv header wrong:\n%s", csv.String())
	}
}

// TestPivotHeatMap checks bucketing, means, empty cells and rendering.
func TestPivotHeatMap(t *testing.T) {
	stats := []analytics.JobStat{
		{Point: scenario.Point{AmbientC: 15, LimitC: 35}, OverFrac: 0.2},
		{Point: scenario.Point{AmbientC: 15, LimitC: 35}, OverFrac: 0.4},
		{Point: scenario.Point{AmbientC: 35, LimitC: 35}, OverFrac: 0.8},
		{Point: scenario.Point{AmbientC: 35, LimitC: 39}, OverFrac: 0.1},
	}
	h := analytics.ViolationHeatMap(stats)
	if len(h.Rows) != 2 || len(h.Cols) != 2 {
		t.Fatalf("dims %dx%d want 2x2", len(h.Rows), len(h.Cols))
	}
	if math.Abs(h.Cells[0][0]-0.3) > 1e-12 || h.Counts[0][0] != 2 {
		t.Fatalf("cell (15,35) = %v/%d want 0.3/2", h.Cells[0][0], h.Counts[0][0])
	}
	if !math.IsNaN(h.Cells[0][1]) || h.Counts[0][1] != 0 {
		t.Fatalf("cell (15,39) should be empty, got %v/%d", h.Cells[0][1], h.Counts[0][1])
	}
	// Per-cell percentiles: cell (15,35) holds {0.2, 0.4}, so the type-7
	// p95 interpolates to 0.2 + 0.95·0.2 = 0.39; one-job cells collapse to
	// their value; empty cells stay NaN.
	if got := h.P95[0][0]; math.Abs(got-0.39) > 1e-12 {
		t.Fatalf("p95 (15,35) = %v want 0.39", got)
	}
	if got := h.P99[1][0]; got != 0.8 {
		t.Fatalf("p99 of a one-job cell = %v want its value 0.8", got)
	}
	if !math.IsNaN(h.P95[0][1]) {
		t.Fatalf("p95 of an empty cell = %v want NaN", h.P95[0][1])
	}
	if !h.HasDistribution() {
		t.Fatal("a cell aggregates two jobs; HasDistribution should be true")
	}
	md := h.Markdown()
	if !strings.Contains(md, "—") || !strings.Contains(md, "30.0%") {
		t.Fatalf("markdown rendering wrong:\n%s", md)
	}
	if !strings.Contains(md, "p95") || !strings.Contains(md, "39.0%") || !strings.Contains(md, "p99") {
		t.Fatalf("markdown missing percentile surfaces:\n%s", md)
	}
	var csv strings.Builder
	if err := h.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 9 { // mean, p95, p99 matrices × (header + 2 rows)
		t.Fatalf("csv rows = %d want 9:\n%s", len(lines), csv.String())
	}
	if !strings.HasSuffix(lines[1], "0.3000,") {
		t.Fatalf("empty cell should render empty: %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "ambient_c p95\\limit_c") || !strings.HasSuffix(lines[4], "0.3900,") {
		t.Fatalf("p95 block wrong: %q / %q", lines[3], lines[4])
	}
}

// TestQuantileAndSummarize pins the percentile estimator: type-7 linear
// interpolation, edge clamping, NaN for empty input.
func TestQuantileAndSummarize(t *testing.T) {
	vs := []float64{4, 1, 3, 2} // unsorted on purpose
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.95, 3.85}, {-1, 1}, {2, 4},
	}
	for _, tc := range cases {
		if got := analytics.Quantile(vs, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v, %g) = %v want %v", vs, tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(analytics.Quantile(nil, 0.5)) {
		t.Error("Quantile of empty input should be NaN")
	}
	s := analytics.Summarize(vs)
	if s.N != 4 || s.Mean != 2.5 || s.Max != 4 || s.P50 != 2.5 {
		t.Errorf("Summarize(%v) = %+v", vs, s)
	}
	if math.Abs(s.P99-3.97) > 1e-12 {
		t.Errorf("p99 = %v want 3.97", s.P99)
	}
	if e := analytics.Summarize(nil); e.N != 0 || !math.IsNaN(e.Mean) {
		t.Errorf("Summarize(nil) = %+v", e)
	}
}
