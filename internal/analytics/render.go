package analytics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// fmtCell renders a float for tables, writing empty cells for NaN.
func fmtCell(v float64, format string) string {
	if math.IsNaN(v) {
		return ""
	}
	return fmt.Sprintf(format, v)
}

// WriteComfortCSV renders per-user comfort rows as CSV.
func WriteComfortCSV(w io.Writer, rows []UserComfort) error {
	if _, err := fmt.Fprintln(w, "user,limit_c,jobs,mean_over_frac,max_over_frac,mean_excess_c,mean_slowdown,mean_energy_j"); err != nil {
		return err
	}
	for _, r := range rows {
		over, max, exc := "", "", ""
		if r.NViolation > 0 {
			over = fmt.Sprintf("%.4f", r.MeanOverFrac)
			max = fmt.Sprintf("%.4f", r.MaxOverFrac)
			exc = fmt.Sprintf("%.3f", r.MeanExcessC)
		}
		if _, err := fmt.Fprintf(w, "%s,%.1f,%d,%s,%s,%s,%.4f,%.1f\n",
			r.UserID, r.LimitC, r.N, over, max, exc, r.MeanSlowdown, r.MeanEnergyJ); err != nil {
			return err
		}
	}
	return nil
}

// ComfortMarkdown renders per-user comfort rows as a markdown table.
func ComfortMarkdown(rows []UserComfort) string {
	var b strings.Builder
	b.WriteString("| user | limit °C | jobs | mean over | max over | mean excess °C | mean slowdown | mean energy J |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		over, max, exc := "—", "—", "—"
		if r.NViolation > 0 {
			over = fmt.Sprintf("%.1f%%", r.MeanOverFrac*100)
			max = fmt.Sprintf("%.1f%%", r.MaxOverFrac*100)
			exc = fmt.Sprintf("%.2f", r.MeanExcessC)
		}
		fmt.Fprintf(&b, "| %s | %.1f | %d | %s | %s | %s | %.1f%% | %.0f |\n",
			r.UserID, r.LimitC, r.N, over, max, exc, r.MeanSlowdown*100, r.MeanEnergyJ)
	}
	return b.String()
}

// WriteCSV renders the heat map as CSV: one header row of column values,
// one row per row value, empty buckets as empty cells. When any bucket
// aggregates more than one job, the mean matrix is followed by p95 and p99
// matrices (separated by a labelled header row), closing the ROADMAP's
// per-cell percentile-distribution item.
func (h *HeatMap) WriteCSV(w io.Writer) error {
	writeMatrix := func(label string, cells [][]float64) error {
		cols := make([]string, 0, len(h.Cols)+1)
		cols = append(cols, label+`\`+h.ColLabel)
		for _, c := range h.Cols {
			cols = append(cols, fmt.Sprintf("%g", c))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
			return err
		}
		for ri, r := range h.Rows {
			row := make([]string, 0, len(h.Cols)+1)
			row = append(row, fmt.Sprintf("%g", r))
			for ci := range h.Cols {
				row = append(row, fmtCell(cells[ri][ci], "%.4f"))
			}
			if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeMatrix(h.RowLabel, h.Cells); err != nil {
		return err
	}
	if h.HasDistribution() && h.P95 != nil {
		if err := writeMatrix(h.RowLabel+" p95", h.P95); err != nil {
			return err
		}
		if err := writeMatrix(h.RowLabel+" p99", h.P99); err != nil {
			return err
		}
	}
	return nil
}

// Markdown renders the heat map as markdown tables with percentage cells
// (the violation surface reads naturally as % of time over the limit):
// the mean surface always, and the per-cell p95/p99 surfaces whenever any
// bucket aggregates more than one job.
func (h *HeatMap) Markdown() string {
	var b strings.Builder
	table := func(label string, cells [][]float64) {
		fmt.Fprintf(&b, "| %s \\ %s |", label, h.ColLabel)
		for _, c := range h.Cols {
			fmt.Fprintf(&b, " %g |", c)
		}
		b.WriteString("\n|---|")
		for range h.Cols {
			b.WriteString("---|")
		}
		b.WriteString("\n")
		for ri, r := range h.Rows {
			fmt.Fprintf(&b, "| %g |", r)
			for ci := range h.Cols {
				v := cells[ri][ci]
				if math.IsNaN(v) {
					b.WriteString(" — |")
				} else {
					fmt.Fprintf(&b, " %.1f%% |", v*100)
				}
			}
			b.WriteString("\n")
		}
	}
	table(h.RowLabel, h.Cells)
	if h.HasDistribution() && h.P95 != nil {
		b.WriteString("\n")
		table(h.RowLabel+" p95", h.P95)
		b.WriteString("\n")
		table(h.RowLabel+" p99", h.P99)
	}
	return b.String()
}

// WriteDeltasCSV renders scheme-vs-scheme deltas as CSV.
func WriteDeltasCSV(w io.Writer, deltas []Delta) error {
	if _, err := fmt.Fprintln(w, "workload,user,ambient_c,limit_c,d_max_skin_c,d_max_screen_c,d_avg_freq_mhz,d_energy_pct,d_slowdown,d_over_frac"); err != nil {
		return err
	}
	for _, d := range deltas {
		if _, err := fmt.Fprintf(w, "%s,%s,%g,%g,%.4f,%.4f,%.2f,%.2f,%.4f,%s\n",
			d.Workload, d.UserID, d.AmbientC, d.LimitC,
			d.DMaxSkinC, d.DMaxScreenC, d.DAvgFreqMHz, d.DEnergyPct, d.DSlowdown,
			fmtCell(d.DOverFrac, "%.4f")); err != nil {
			return err
		}
	}
	return nil
}

// DeltasMarkdown renders scheme-vs-scheme deltas as a markdown table.
func DeltasMarkdown(deltas []Delta, base, alt string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s − %s per grid cell (negative peak/energy deltas favor %s):\n\n", alt, base, alt)
	b.WriteString("| workload | user | amb °C | Δ peak skin °C | Δ avg MHz | Δ energy % | Δ slowdown | Δ time-over |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, d := range deltas {
		over := "—"
		if !math.IsNaN(d.DOverFrac) {
			over = fmt.Sprintf("%+.1f%%", d.DOverFrac*100)
		}
		fmt.Fprintf(&b, "| %s | %s | %g | %+.2f | %+.0f | %+.1f | %+.1f%% | %s |\n",
			d.Workload, d.UserID, d.AmbientC, d.DMaxSkinC, d.DAvgFreqMHz, d.DEnergyPct, d.DSlowdown*100, over)
	}
	return b.String()
}
