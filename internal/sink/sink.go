// Package sink is the streaming back door of the fleet engine: a Sink
// receives every telemetry Sample a run emits, tagged with the job that
// produced it, so population-scale sweeps can stream results to disk (or an
// aggregator) with O(1) memory instead of buffering RunResult.Trace per job.
//
// Built-ins cover the common shapes: CSV and JSONL appenders, a bounded
// ring buffer, a per-job downsampler, and a fan-out Tee. All built-ins are
// safe for concurrent Accept calls — the fleet delivers samples from worker
// goroutines — and latch their first I/O error for Close to report.
//
// A Sink is wired into a single run via fleet.WithSink, or into a whole
// batch via fleet.Config.Sink. The legacy func(Sample) observer remains the
// low-level escape hatch; FromFunc adapts it.
package sink

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"

	"repro/internal/device"
)

// JobID identifies the job a sample belongs to: the job's index in the
// submitted batch (0 for single-session runs), matching JobResult.Index.
type JobID int

// Sink consumes a stream of per-job telemetry samples. Accept may be called
// concurrently from fleet worker goroutines; implementations must
// synchronize internally. Close flushes buffered output and reports the
// first error encountered anywhere in the stream. The fleet never closes a
// sink — the caller that built it owns its lifecycle.
type Sink interface {
	Accept(job JobID, s device.Sample)
	Close() error
}

// Func adapts a per-sample function into a Sink with a no-op Close. The
// function must be safe for concurrent calls.
func Func(fn func(JobID, device.Sample)) Sink { return funcSink(fn) }

type funcSink func(JobID, device.Sample)

func (f funcSink) Accept(job JobID, s device.Sample) { f(job, s) }
func (f funcSink) Close() error                      { return nil }

// FromFunc adapts a legacy func(Sample) observer into a Sink, dropping the
// job tag and serializing calls — the backward-compatibility bridge from
// the WithObserver era.
func FromFunc(fn func(device.Sample)) Sink {
	var mu sync.Mutex
	return Func(func(_ JobID, s device.Sample) {
		mu.Lock()
		fn(s)
		mu.Unlock()
	})
}

// csvColumns is the header shared by the CSV appender; the column set and
// order mirror the run trace plus the leading job tag.
const csvHeader = "job,time_s,skin_c,screen_c,die_c,battery_c,freq_mhz,util,max_level"

// CSV streams samples as CSV rows (one header, then one row per sample)
// with the same numeric formatting as trace.WriteCSV. Rows from concurrent
// jobs interleave; the leading job column keys them back apart.
type CSV struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
	hdr bool
}

// NewCSV creates a CSV appender over w. The caller owns w; Close flushes
// the sink's buffer but does not close w.
func NewCSV(w io.Writer) *CSV { return &CSV{w: bufio.NewWriter(w)} }

// Accept appends one CSV row; after the first write error it is a no-op.
func (c *CSV) Accept(job JobID, s device.Sample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	if !c.hdr {
		c.hdr = true
		if _, err := c.w.WriteString(csvHeader + "\n"); err != nil {
			c.err = err
			return
		}
	}
	_, err := fmt.Fprintf(c.w, "%d,%.3f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%d\n",
		int(job), s.TimeSec, s.SkinC, s.ScreenC, s.DieC, s.BatteryC,
		s.FreqMHz, s.Util, s.MaxLevel)
	if err != nil {
		c.err = err
	}
}

// Close flushes the buffer and returns the first error of the stream.
func (c *CSV) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	c.err = c.w.Flush()
	return c.err
}

// JSONL streams samples as one JSON object per line:
//
//	{"job":3,"t":12.05,"skin_c":31.2,...,"max_level":11}
//
// The encoding is hand-rolled (fixed key order, strconv floats) so a
// million-sample sweep does not pay reflection per line.
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte
	err error
}

// NewJSONL creates a JSONL appender over w. The caller owns w; Close
// flushes the sink's buffer but does not close w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: bufio.NewWriter(w)} }

// Accept appends one JSON line; after the first write error it is a no-op.
func (j *JSONL) Accept(job JobID, s device.Sample) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.buf = AppendJSONL(j.buf[:0], job, s)
	if _, err := j.w.Write(j.buf); err != nil {
		j.err = err
	}
}

// AppendJSONL appends one sample's JSONL line (newline included) to b and
// returns the extended slice — the shared line encoding behind the JSONL
// sink and the fleet service's telemetry endpoints.
func AppendJSONL(b []byte, job JobID, s device.Sample) []byte {
	b = append(b, `{"job":`...)
	b = strconv.AppendInt(b, int64(job), 10)
	b = appendField(b, "t", s.TimeSec)
	b = appendField(b, "skin_c", s.SkinC)
	b = appendField(b, "screen_c", s.ScreenC)
	b = appendField(b, "die_c", s.DieC)
	b = appendField(b, "battery_c", s.BatteryC)
	b = appendField(b, "freq_mhz", s.FreqMHz)
	b = appendField(b, "util", s.Util)
	b = append(b, `,"max_level":`...)
	b = strconv.AppendInt(b, int64(s.MaxLevel), 10)
	b = append(b, '}', '\n')
	return b
}

func appendField(b []byte, key string, v float64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Close flushes the buffer and returns the first error of the stream.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}

// Remote forwards every sample into a transport encoder — the
// process-boundary half of the fleet's telemetry bus. A shard worker wires
// one as its local fleet sink with an encoder that writes wire sample
// frames to its stdout pipe; the coordinator decodes the frames and
// replays them into the caller's real sink, so FleetConfig.Sink works
// transparently across process boundaries. Accept calls are serialized
// (the transport is a single stream) and the first encoder error latches:
// later samples are dropped and Close reports it.
type Remote struct {
	mu   sync.Mutex
	send func(JobID, device.Sample) error
	err  error
}

// NewRemote creates a remote sink over the given encoder.
func NewRemote(send func(JobID, device.Sample) error) *Remote {
	return &Remote{send: send}
}

// Accept encodes one sample; after the first transport error it is a no-op.
func (r *Remote) Accept(job JobID, s device.Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	r.err = r.send(job, s)
}

// Close reports the first transport error of the stream. The transport
// itself (a pipe, a socket) belongs to whoever opened it.
func (r *Remote) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Entry is one buffered (job, sample) pair.
type Entry struct {
	Job    JobID
	Sample device.Sample
}

// Ring keeps the most recent n samples across all jobs — the
// fixed-footprint tail a live dashboard or a post-mortem wants from an
// arbitrarily long sweep.
type Ring struct {
	mu    sync.Mutex
	buf   []Entry
	next  int
	total int
}

// NewRing creates a ring buffer holding the last n samples (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Entry, n)}
}

// Accept records the sample, overwriting the oldest once full.
func (r *Ring) Accept(job JobID, s device.Sample) {
	r.mu.Lock()
	r.buf[r.next] = Entry{Job: job, Sample: s}
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// Close is a no-op; the ring holds no external resources.
func (r *Ring) Close() error { return nil }

// Total reports how many samples were ever accepted.
func (r *Ring) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the buffered samples, oldest first.
func (r *Ring) Snapshot() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	if n > len(r.buf) {
		n = len(r.buf)
	}
	out := make([]Entry, 0, n)
	start := (r.next - n + len(r.buf)) % len(r.buf)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Downsampler forwards at most one sample per job per periodSec of
// simulated time (the first sample of each job always passes). It thins
// 1 Hz telemetry to dashboard rates before an expensive downstream sink.
type Downsampler struct {
	mu     sync.Mutex
	period float64
	last   map[JobID]float64
	next   Sink
}

// NewDownsampler creates a downsampler forwarding to next every periodSec
// of per-job simulated time (periodSec <= 0 forwards everything).
func NewDownsampler(periodSec float64, next Sink) *Downsampler {
	return &Downsampler{period: periodSec, last: make(map[JobID]float64), next: next}
}

// Accept forwards the sample if the job's downsampling period has elapsed.
func (d *Downsampler) Accept(job JobID, s device.Sample) {
	d.mu.Lock()
	last, seen := d.last[job]
	pass := !seen || d.period <= 0 || s.TimeSec-last+1e-9 >= d.period
	if pass {
		d.last[job] = s.TimeSec
	}
	d.mu.Unlock()
	if pass {
		d.next.Accept(job, s)
	}
}

// Close closes the downstream sink.
func (d *Downsampler) Close() error { return d.next.Close() }

// MeterSnapshot is a point-in-time view of the stream a Meter has passed
// through.
type MeterSnapshot struct {
	// Samples is the total sample count accepted so far.
	Samples int64
	// Jobs is the number of distinct jobs seen (max JobID + 1 — job IDs are
	// batch positions, so the count needs no set).
	Jobs int
	// LastTimeSec is the largest simulated timestamp seen (0 before any
	// sample).
	LastTimeSec float64
}

// Meter is a transparent tee for live observability: it forwards every
// sample to the wrapped sink unchanged while maintaining an O(1) snapshot
// of the stream (sample count, job frontier, simulated-time high-water
// mark) that dashboards and /metrics endpoints can poll mid-run without
// touching the data path's buffers. A nil next sink just counts.
type Meter struct {
	mu   sync.Mutex
	snap MeterSnapshot
	next Sink
}

// NewMeter creates a metering tee over next (nil: count only).
func NewMeter(next Sink) *Meter { return &Meter{next: next} }

// Accept updates the counters and forwards the sample.
func (m *Meter) Accept(job JobID, s device.Sample) {
	m.mu.Lock()
	m.snap.Samples++
	if n := int(job) + 1; n > m.snap.Jobs {
		m.snap.Jobs = n
	}
	if s.TimeSec > m.snap.LastTimeSec {
		m.snap.LastTimeSec = s.TimeSec
	}
	m.mu.Unlock()
	if m.next != nil {
		m.next.Accept(job, s)
	}
}

// Close closes the wrapped sink.
func (m *Meter) Close() error {
	if m.next == nil {
		return nil
	}
	return m.next.Close()
}

// Snapshot returns the current stream counters.
func (m *Meter) Snapshot() MeterSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snap
}

// Tee fans every sample out to all child sinks, in order.
type Tee struct {
	sinks []Sink
}

// NewTee creates a fan-out multiplexer over the given sinks.
func NewTee(sinks ...Sink) *Tee { return &Tee{sinks: sinks} }

// Accept forwards the sample to every child sink.
func (t *Tee) Accept(job JobID, s device.Sample) {
	for _, s2 := range t.sinks {
		s2.Accept(job, s)
	}
}

// Close closes every child and joins their errors.
func (t *Tee) Close() error {
	var errs []error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
