package sink

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/device"
)

func sample(t float64) device.Sample {
	return device.Sample{TimeSec: t, SkinC: 30 + t, ScreenC: 29, DieC: 50, BatteryC: 31, FreqMHz: 1026, Util: 0.5, MaxLevel: 11}
}

func TestCSVHeaderAndRows(t *testing.T) {
	var b strings.Builder
	c := NewCSV(&b)
	c.Accept(3, sample(1))
	c.Accept(4, sample(2))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d want header + 2 rows", len(lines))
	}
	if lines[0] != csvHeader {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "3,1.000,31.0000") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestJSONLShape(t *testing.T) {
	var b strings.Builder
	j := NewJSONL(&b)
	j.Accept(7, sample(2))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(b.String())
	for _, want := range []string{`"job":7`, `"t":2`, `"skin_c":32`, `"max_level":11`} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
	if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
		t.Fatalf("not a JSON object: %q", line)
	}
}

func TestRingKeepsTail(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Accept(JobID(i), sample(float64(i)))
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d want 5", r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %d entries want 3", len(snap))
	}
	for i, e := range snap {
		if int(e.Job) != i+2 {
			t.Fatalf("snapshot[%d].Job = %d want %d (oldest first)", i, e.Job, i+2)
		}
	}
}

func TestDownsamplerPerJobPeriod(t *testing.T) {
	r := NewRing(100)
	d := NewDownsampler(10, r)
	for _, ts := range []float64{0, 1, 9.5, 10, 15, 20} {
		d.Accept(1, sample(ts))
	}
	d.Accept(2, sample(3)) // independent job: first sample passes
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	var job1 []float64
	job2 := 0
	for _, e := range r.Snapshot() {
		switch e.Job {
		case 1:
			job1 = append(job1, e.Sample.TimeSec)
		case 2:
			job2++
		}
	}
	want := []float64{0, 10, 20}
	if len(job1) != len(want) {
		t.Fatalf("job 1 passed %v want %v", job1, want)
	}
	for i := range want {
		if job1[i] != want[i] {
			t.Fatalf("job 1 passed %v want %v", job1, want)
		}
	}
	if job2 != 1 {
		t.Fatalf("job 2 passed %d samples want 1", job2)
	}
}

func TestTeeFansOut(t *testing.T) {
	a, b := NewRing(10), NewRing(10)
	tee := NewTee(a, b)
	tee.Accept(0, sample(1))
	if err := tee.Close(); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatalf("fan-out totals = %d/%d want 1/1", a.Total(), b.Total())
	}
}

func TestFromFuncSerializes(t *testing.T) {
	n := 0
	s := FromFunc(func(device.Sample) { n++ }) // unsynchronized on purpose
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Accept(0, sample(float64(i)))
			}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 800 {
		t.Fatalf("observer saw %d calls want 800 (FromFunc must serialize)", n)
	}
}

// errWriter fails after the first write.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, &writeErr{}
	}
	return len(p), nil
}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestCSVLatchesWriteError(t *testing.T) {
	c := NewCSV(&errWriter{})
	// Overflow the 4 KiB bufio buffer so the underlying writer is hit.
	for i := 0; i < 200; i++ {
		c.Accept(0, sample(float64(i)))
	}
	if err := c.Close(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Close = %v, want the latched write error", err)
	}
}
