package sink

import (
	"testing"

	"repro/internal/device"
)

// recorder captures forwarded (job, sample) pairs.
type recorder struct {
	jobs   []JobID
	closed int
}

func (r *recorder) Accept(job JobID, s device.Sample) { r.jobs = append(r.jobs, job) }
func (r *recorder) Close() error                      { r.closed++; return nil }

func TestRemapTranslatesAndDrops(t *testing.T) {
	rec := &recorder{}
	rm := NewRemap(rec, []int{4, 7})
	rm.Accept(0, device.Sample{})
	rm.Accept(1, device.Sample{})
	rm.Accept(2, device.Sample{})  // outside the table: dropped
	rm.Accept(-1, device.Sample{}) // negative: dropped
	if len(rec.jobs) != 2 || rec.jobs[0] != 4 || rec.jobs[1] != 7 {
		t.Fatalf("forwarded jobs = %v, want [4 7]", rec.jobs)
	}
	if err := rm.Close(); err != nil {
		t.Fatal(err)
	}
	if rec.closed != 0 {
		t.Fatal("Remap must not close the wrapped sink")
	}
}
