package sink

import "repro/internal/device"

// Remap translates job IDs through a table before forwarding to the next
// sink: sample for subset job i arrives at next tagged toOuter[i]. It is
// the adapter that lets a partial re-run of a larger grid — a
// crash-recovery resume dispatching only unfinished cells — feed
// consumers (telemetry buses, live aggregators, violation sinks) that are
// sized and indexed for the full grid. Samples outside the table are
// dropped. Remap adds no synchronization of its own; next sees the same
// concurrency Accept sees.
type Remap struct {
	next    Sink
	toOuter []int
}

// NewRemap wraps next with the subset→outer index table.
func NewRemap(next Sink, toOuter []int) *Remap {
	return &Remap{next: next, toOuter: toOuter}
}

// Accept forwards the sample under its outer job ID.
func (r *Remap) Accept(job JobID, s device.Sample) {
	i := int(job)
	if i < 0 || i >= len(r.toOuter) {
		return
	}
	r.next.Accept(JobID(r.toOuter[i]), s)
}

// Close closes nothing: the wrapped sink's owner closes it.
func (r *Remap) Close() error { return nil }
