package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/users"
)

// testPipeline is shared across the experiment tests: a reduced-scale but
// hot-regime-covering configuration.
var (
	tpOnce sync.Once
	tp     *Pipeline
)

func pipeline(t *testing.T) *Pipeline {
	t.Helper()
	tpOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Scale = 0.5
		cfg.CorpusPerRunSec = 1200
		cfg.MLPEpochs = 30
		tp = NewPipeline(cfg)
	})
	return tp
}

func TestPipelineCorpusCoversHotRegime(t *testing.T) {
	pl := pipeline(t)
	corpus := pl.Corpus()
	if len(corpus) < 5000 {
		t.Fatalf("corpus = %d records, want thousands", len(corpus))
	}
	maxSkin := 0.0
	for _, r := range corpus {
		if r.SkinTempC > maxSkin {
			maxSkin = r.SkinTempC
		}
	}
	if maxSkin < 38 {
		t.Fatalf("corpus max skin = %.1f °C; must cover the hot regime", maxSkin)
	}
}

func TestPipelineCachesCorpusAndPredictor(t *testing.T) {
	pl := pipeline(t)
	c1 := pl.Corpus()
	c2 := pl.Corpus()
	if &c1[0] != &c2[0] {
		t.Fatal("corpus rebuilt instead of cached")
	}
	if pl.Predictor() != pl.Predictor() {
		t.Fatal("predictor rebuilt instead of cached")
	}
}

func TestScaledFloorsAndCaps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.01
	if got := cfg.scaled(1800); got != 120 {
		t.Fatalf("scaled floor = %v want 120", got)
	}
	cfg.Scale = 0 // treated as 1
	if got := cfg.scaled(1800); got != 1800 {
		t.Fatalf("scaled(0) = %v want full duration", got)
	}
	cfg.Scale = 2 // >1 treated as 1
	if got := cfg.scaled(1800); got != 1800 {
		t.Fatalf("scaled(2) = %v want full duration", got)
	}
}

func TestFig1ThresholdOrdering(t *testing.T) {
	pl := pipeline(t)
	res := RunFig1(pl)
	if len(res.Rows) != 10 {
		t.Fatalf("fig1 rows = %d want 10", len(res.Rows))
	}
	// Monotonicity: on one shared session, a higher limit can never be
	// crossed earlier than a lower one.
	for _, a := range res.Rows {
		for _, b := range res.Rows {
			if a.Crossed && b.Crossed && a.SkinLimitC < b.SkinLimitC && a.CrossSec > b.CrossSec {
				t.Fatalf("user %s (%.1f °C) crossed after user %s (%.1f °C)",
					a.UserID, a.SkinLimitC, b.UserID, b.SkinLimitC)
			}
		}
	}
	// The most sensitive user (34.0 °C) must cross even in a reduced run.
	for _, row := range res.Rows {
		if row.UserID == "b" && !row.Crossed {
			t.Fatal("user b (34.0 °C) did not cross during the stressor session")
		}
	}
	if !strings.Contains(res.String(), "user") {
		t.Fatal("String() broken")
	}
}

func TestFig2LowLimitsSufferMore(t *testing.T) {
	pl := pipeline(t)
	res := RunFig2(pl)
	if len(res.Rows) != 11 {
		t.Fatalf("fig2 rows = %d want 11 (10 users + default)", len(res.Rows))
	}
	var b, g Fig2Row
	for _, row := range res.Rows {
		switch row.Label {
		case "b":
			b = row
		case "g":
			g = row
		}
	}
	// The 34.0 °C user cannot be fully protected (board-level heat alone
	// exceeds that limit); the 42.8 °C user should see almost no violation.
	if b.OverFrac <= g.OverFrac {
		t.Fatalf("over-limit fractions should fall with the limit: b=%.2f g=%.2f", b.OverFrac, g.OverFrac)
	}
	if g.OverFrac > 0.01 {
		t.Fatalf("user g (42.8 °C) spent %.1f%% over limit, want ≈0", g.OverFrac*100)
	}
	def := res.DefaultRow()
	if def.LimitC != users.DefaultLimitC {
		t.Fatalf("default row limit = %v", def.LimitC)
	}
	// The paper reports 15.6 % for the default user; our cleaner predictor
	// holds the call at or below the limit, so anything from ~0 to a modest
	// share is in-shape — but it must stay far below the sensitive users'.
	if def.OverFrac > 0.45 {
		t.Fatalf("default user over-limit fraction = %.3f, want a modest share (paper: 15.6%%)", def.OverFrac)
	}
	if b.OverFrac < def.OverFrac+0.2 {
		t.Fatalf("user b (34.0 °C) should suffer far more than the default user: %.2f vs %.2f",
			b.OverFrac, def.OverFrac)
	}
}

func TestFig3ModelOrdering(t *testing.T) {
	pl := pipeline(t)
	res := RunFig3(pl)
	if len(res.Rows) != 4 {
		t.Fatalf("fig3 rows = %d want 4", len(res.Rows))
	}
	rep, ok := res.Row("REPTree")
	if !ok {
		t.Fatal("REPTree row missing")
	}
	m5, _ := res.Row("M5P")
	lr, _ := res.Row("LinearRegression")

	// Paper shape: tree models are ≈1 % error; linear regression is
	// clearly worse.
	if rep.SkinErrPct > 2.0 {
		t.Fatalf("REPTree skin error = %.2f%%, want ≈1%%", rep.SkinErrPct)
	}
	if m5.SkinErrPct > 2.0 {
		t.Fatalf("M5P skin error = %.2f%%, want ≈1%%", m5.SkinErrPct)
	}
	if lr.SkinErrPct <= rep.SkinErrPct {
		t.Fatalf("LinearRegression (%.2f%%) should be worse than REPTree (%.2f%%)",
			lr.SkinErrPct, rep.SkinErrPct)
	}
	// The 1 °C gate must help (paper: M5P 0.96 → 0.26).
	if m5.SkinGatedPct >= m5.SkinErrPct {
		t.Fatal("gated error should be below the plain error")
	}
	if !strings.Contains(res.String(), "REPTree") {
		t.Fatal("String() broken")
	}
}

func TestFig4USTAReducesPeakAndFrequency(t *testing.T) {
	pl := pipeline(t)
	res := RunFig4(pl)
	if res.PeakDeltaC < 1.0 {
		t.Fatalf("USTA peak reduction = %.2f °C, want clearly positive (paper: 4.1)", res.PeakDeltaC)
	}
	if res.FreqReduction < 0.05 {
		t.Fatalf("USTA frequency reduction = %.1f%%, want noticeable (paper: 34%%)", res.FreqReduction*100)
	}
	if res.USTAOverFrac >= res.BaselineOverFrac {
		t.Fatal("USTA should spend less time above the limit than baseline")
	}
	if res.USTA.MaxSkinC > res.LimitC+1.5 {
		t.Fatalf("USTA peak %.1f °C strays too far above the %.0f °C limit", res.USTA.MaxSkinC, res.LimitC)
	}
	if !strings.Contains(res.String(), "peak skin") {
		t.Fatal("String() broken")
	}
}

func TestFig5RatingsAndPreferences(t *testing.T) {
	pl := pipeline(t)
	res := RunFig5(pl)
	if len(res.Rows) != 10 {
		t.Fatalf("fig5 rows = %d want 10", len(res.Rows))
	}
	if res.USTAAvg <= res.BaselineAvg {
		t.Fatalf("USTA average rating %.2f should beat baseline %.2f (paper: 4.3 vs 4.0)",
			res.USTAAvg, res.BaselineAvg)
	}
	if res.PreferUSTA <= res.PreferBaseline {
		t.Fatalf("more users should prefer USTA: %d vs %d", res.PreferUSTA, res.PreferBaseline)
	}
	if res.PreferUSTA+res.PreferBaseline+res.NoDifference != 10 {
		t.Fatal("preferences do not add up to 10")
	}
	// High-threshold users see far less USTA intervention than sensitive
	// ones (the paper's a, d, e, i barely noticed it; b at 34.0 °C lives
	// pinned at the minimum OPP).
	var actB, actG int
	for _, row := range res.Rows {
		switch row.UserID {
		case "b":
			actB = row.USTAActivations
		case "g":
			actG = row.USTAActivations
		}
	}
	if actG >= actB {
		t.Fatalf("user g (42.8 °C) saw %d activations vs user b (34.0 °C) %d; want far fewer", actG, actB)
	}
	if !strings.Contains(res.String(), "average") {
		t.Fatal("String() broken")
	}
}

func TestTable1USTAReducesHotWorkloads(t *testing.T) {
	pl := pipeline(t)
	res := RunTable1(pl)
	if len(res.Rows) != 13 {
		t.Fatalf("table1 rows = %d want 13", len(res.Rows))
	}
	// The paper's claim: in all applications where the baseline comes
	// within 2 °C of (or exceeds) the 37 °C limit, USTA reduces the peak.
	for _, row := range res.Rows {
		if row.Baseline.MaxSkinC >= res.LimitC-2+0.8 { // 0.8 °C of slack for jitter
			if row.USTA.MaxSkinC >= row.Baseline.MaxSkinC {
				t.Fatalf("%s: USTA peak %.1f did not improve baseline %.1f",
					row.Bench, row.USTA.MaxSkinC, row.Baseline.MaxSkinC)
			}
		}
	}
	// Skype and AnTuTu Tester must be among the hottest baseline workloads
	// (at full scale they are the top two, as in the paper; the reduced
	// test scale truncates Skype before its 30-min peak, so allow third
	// place for the 45-min soak).
	type peak struct {
		bench string
		v     float64
	}
	peaks := make([]peak, 0, len(res.Rows))
	for _, row := range res.Rows {
		peaks = append(peaks, peak{row.Bench, row.Baseline.MaxSkinC})
	}
	for i := 0; i < len(peaks); i++ {
		for j := i + 1; j < len(peaks); j++ {
			if peaks[j].v > peaks[i].v {
				peaks[i], peaks[j] = peaks[j], peaks[i]
			}
		}
	}
	top3 := map[string]bool{peaks[0].bench: true, peaks[1].bench: true, peaks[2].bench: true}
	if !top3["skype"] || !top3["antutu-tester"] {
		t.Fatalf("hottest three = %v; want skype and antutu-tester among them", peaks[:3])
	}
	if _, ok := res.Row("skype"); !ok {
		t.Fatal("Row lookup broken")
	}
	if !strings.Contains(res.String(), "skype") {
		t.Fatal("String() broken")
	}
}

func TestPaperTable1Embedded(t *testing.T) {
	base, usta, ok := PaperTable1("skype")
	if !ok {
		t.Fatal("paper values for skype missing")
	}
	if base.MaxSkinC != 42.8 || usta.MaxSkinC != 38.7 {
		t.Fatalf("skype paper values wrong: %+v %+v", base, usta)
	}
	if d := base.MaxSkinC - usta.MaxSkinC; d < 4.09 || d > 4.11 {
		t.Fatalf("the published Skype delta must be 4.1 °C, got %v", d)
	}
	if _, _, ok := PaperTable1("nope"); ok {
		t.Fatal("unknown bench should not resolve")
	}
}
