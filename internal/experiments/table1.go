package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analytics"
	"repro/internal/scenario"
	"repro/internal/users"
)

// Table1Cell is one scheme's outcome on one workload.
type Table1Cell struct {
	MaxScreenC float64
	MaxSkinC   float64
	AvgFreqGHz float64
}

// Table1Row is one workload (column of the paper's Table 1).
type Table1Row struct {
	Bench    string
	Baseline Table1Cell
	USTA     Table1Cell
	// PaperBaseline / PaperUSTA are the values published in Table 1, for
	// side-by-side comparison in reports.
	PaperBaseline Table1Cell
	PaperUSTA     Table1Cell
}

// Table1Result reproduces Table 1: all thirteen workloads under the
// baseline ondemand governor and under USTA with the default 37 °C limit.
type Table1Result struct {
	Rows   []Table1Row
	LimitC float64
}

// paperTable1 holds the published numbers in BenchmarkNames order.
var paperTable1 = map[string][2]Table1Cell{
	// name: {baseline{screen, skin, GHz}, usta{screen, skin, GHz}}
	"antutu-cpu":         {{33.4, 37.9, 1.04}, {31.7, 35.1, 1.22}},
	"antutu-cpu-gpu-ram": {{32.5, 36.3, 1.01}, {31.4, 35.1, 0.91}},
	"antutu-userexp":     {{28.5, 31.9, 1.22}, {29.2, 32.7, 1.05}},
	"antutu-full":        {{30.5, 34.0, 1.11}, {31.5, 34.0, 0.99}},
	"antutu-cpu-90min":   {{35.1, 39.3, 1.09}, {34.9, 38.8, 0.69}},
	"antutu-tester":      {{34.3, 42.8, 1.16}, {34.9, 41.1, 0.89}},
	"gfxbench":           {{26.3, 29.3, 0.85}, {28.5, 34.8, 1.16}},
	"vellamo":            {{28.6, 31.0, 0.97}, {29.7, 32.1, 0.96}},
	"skype":              {{40.5, 42.8, 1.09}, {35.4, 38.7, 0.72}},
	"youtube":            {{28.0, 30.4, 0.80}, {30.0, 32.9, 0.64}},
	"record":             {{32.8, 37.1, 0.86}, {32.5, 36.6, 0.81}},
	"charging":           {{29.0, 31.7, 0.45}, {29.9, 32.3, 0.39}},
	"game":               {{33.3, 36.6, 1.14}, {31.7, 35.1, 0.63}},
}

// PaperTable1 returns the published cell pair for a workload name.
func PaperTable1(bench string) (baseline, usta Table1Cell, ok bool) {
	v, ok := paperTable1[bench]
	return v[0], v[1], ok
}

// Table1Spec is the paper's Table 1 grid as a scenario: all thirteen
// workloads × {baseline, USTA@37 °C}, seeds pinned to the pre-scenario
// runner's offsets (workload construction at Seed+300, indexed per-job
// device seeds from base 300 with the scheme axis innermost), so the
// declarative path reproduces the hand-built one bit for bit.
func Table1Spec(cfg Config) *scenario.Spec {
	return &scenario.Spec{
		Version:   scenario.Version,
		Name:      "table1",
		Workloads: []string{"all"},
		Schemes: []scenario.Scheme{
			{Name: "baseline"},
			{Name: "usta", Controller: "usta", LimitC: users.DefaultLimitC},
		},
		Duration: scenario.Duration{Scale: cfg.Scale},
		Seeds: scenario.Seeds{
			Policy:   "indexed",
			Base:     300,
			Workload: uint64(cfg.Seed) + 300,
		},
	}
}

// RunTable1 executes all 26 runs (13 workloads × 2 schemes) as one fleet
// batch, expanded from the declarative Table1Spec grid. The spec pins the
// seeds the pre-scenario implementation used, so the table is unchanged.
func RunTable1(pl *Pipeline) *Table1Result {
	grid, err := Table1Spec(pl.Cfg).Expand(scenarioEnv(pl))
	if err != nil {
		// The spec is code-built and the pipeline config is validated by
		// the experiment entry points; failure is a programming error.
		panic(err)
	}
	stats, err := analytics.Flatten(grid, pl.mustRun(grid.Jobs))
	if err != nil {
		panic(err)
	}
	pairs, err := analytics.PairSchemes(stats, "baseline", "usta")
	if err != nil {
		panic(err)
	}

	out := &Table1Result{LimitC: users.DefaultLimitC}
	for _, p := range pairs {
		base, usta := p.Base.Result, p.Alt.Result
		row := Table1Row{
			Bench: p.Workload,
			Baseline: Table1Cell{
				MaxScreenC: base.MaxScreenC,
				MaxSkinC:   base.MaxSkinC,
				AvgFreqGHz: base.AvgFreqMHz / 1000,
			},
			USTA: Table1Cell{
				MaxScreenC: usta.MaxScreenC,
				MaxSkinC:   usta.MaxSkinC,
				AvgFreqGHz: usta.AvgFreqMHz / 1000,
			},
		}
		row.PaperBaseline, row.PaperUSTA, _ = PaperTable1(p.Workload)
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Row returns the named workload's row.
func (r *Table1Result) Row(bench string) (Table1Row, bool) {
	for _, row := range r.Rows {
		if row.Bench == bench {
			return row, true
		}
	}
	return Table1Row{}, false
}

// String renders the result as the harness table.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — baseline vs USTA (limit %.0f °C); paper values in parentheses\n", r.LimitC)
	fmt.Fprintf(&b, "%-20s | %-32s | %-32s\n", "", "baseline  scrn / skin / GHz", "USTA  scrn / skin / GHz")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-20s | %4.1f (%4.1f) %4.1f (%4.1f) %4.2f (%4.2f) | %4.1f (%4.1f) %4.1f (%4.1f) %4.2f (%4.2f)\n",
			row.Bench,
			row.Baseline.MaxScreenC, row.PaperBaseline.MaxScreenC,
			row.Baseline.MaxSkinC, row.PaperBaseline.MaxSkinC,
			row.Baseline.AvgFreqGHz, row.PaperBaseline.AvgFreqGHz,
			row.USTA.MaxScreenC, row.PaperUSTA.MaxScreenC,
			row.USTA.MaxSkinC, row.PaperUSTA.MaxSkinC,
			row.USTA.AvgFreqGHz, row.PaperUSTA.AvgFreqGHz,
		)
	}
	return b.String()
}
