// Package experiments reproduces every table and figure of the paper's
// evaluation. Each Run* function regenerates one artifact:
//
//	RunFig1   — per-user comfort-limit crossings during the AnTuTu Tester
//	            user study (Figure 1)
//	RunFig2   — % of a 30-min Skype call spent above the limit for the ten
//	            user-specific limits plus the 37 °C default (Figure 2)
//	RunFig3   — 10-fold cross-validated error rates of the four prediction
//	            models for skin and screen temperature (Figure 3)
//	RunFig4   — baseline vs USTA temperature traces for the 30-min Skype
//	            call (Figure 4)
//	RunFig5   — user satisfaction ratings and preferences (Figure 5)
//	RunTable1 — max screen/skin temperature and average frequency for all
//	            thirteen workloads under baseline and USTA (Table 1)
//
// A Pipeline caches the two expensive shared artifacts — the training
// corpus (every workload executed once under the stock governor on the
// thermistor-instrumented phone) and the REPTree predictor trained on it.
package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/scenario"
	"repro/internal/sensors"
	"repro/internal/users"
	"repro/internal/workload"
)

// Config parameterizes an experiment pipeline.
type Config struct {
	// Device is the simulated handset configuration.
	Device device.Config
	// Seed drives workload jitter and ML shuffling.
	Seed int64
	// Scale multiplies evaluation run durations (1.0 = paper-scale runs;
	// tests use smaller values). The training corpus is never scaled: the
	// predictor must see the hot regime regardless.
	Scale float64
	// MLPEpochs overrides the MLP training epochs in Fig3 (0 = 150; the
	// WEKA default of 500 changes accuracy marginally at 3x the cost).
	MLPEpochs int
	// CorpusPerRunSec truncates each corpus-collection run (0 = full
	// length). Must stay long enough (>= ~1200 s) for the corpus to cover
	// the hot regime, or the tree predictors saturate low and USTA
	// under-reacts; tests use 1200, paper-scale runs use 0.
	CorpusPerRunSec float64
	// Workers bounds the simulation worker pool the experiments fan out on
	// (<= 0: GOMAXPROCS). Results are worker-count-independent: every run
	// is seeded by its position in the experiment, not by scheduling.
	Workers int
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{Device: device.DefaultConfig(), Seed: 42, Scale: 1.0}
}

func (c Config) scaled(durSec float64) float64 {
	s := c.Scale
	if s <= 0 || s > 1 {
		s = 1
	}
	d := durSec * s
	if d < 120 { // keep at least two minutes so thermal dynamics show up
		d = 120
	}
	return d
}

// Pipeline carries the shared corpus and predictor across experiments.
type Pipeline struct {
	Cfg Config

	corpus []sensors.Record
	pred   *core.Predictor
}

// NewPipeline creates a pipeline; the corpus and predictor are built
// lazily on first use.
func NewPipeline(cfg Config) *Pipeline { return &Pipeline{Cfg: cfg} }

// Corpus returns the training corpus: the full-length log of all thirteen
// paper workloads executed under the stock ondemand governor, collected in
// parallel across the pipeline's worker pool.
func (pl *Pipeline) Corpus() []sensors.Record {
	if pl.corpus == nil {
		loads := make([]workload.Workload, 0, 13)
		for _, w := range workload.Benchmarks(uint64(pl.Cfg.Seed)) {
			loads = append(loads, w)
		}
		corpus, err := core.CollectCorpusContext(context.Background(), pl.Cfg.Device, loads, pl.Cfg.CorpusPerRunSec, pl.Cfg.Workers)
		if err != nil {
			// The device config is validated by every experiment entry
			// point before reaching here; failure is a programming error.
			panic(err)
		}
		pl.corpus = corpus
	}
	return pl.corpus
}

// Predictor returns the REPTree predictor trained on Corpus — the model the
// paper deploys at run time.
func (pl *Pipeline) Predictor() *core.Predictor {
	if pl.pred == nil {
		p, err := core.Train(pl.Corpus(), nil)
		if err != nil {
			// The corpus is generated, non-empty by construction; failure
			// here is a programming error, not an input error.
			panic(err)
		}
		pl.pred = p
	}
	return pl.pred
}

// newPhone builds a fresh baseline phone with a per-run seed offset so
// independent runs see independent sensor noise.
func (pl *Pipeline) newPhone(seedOffset int64) *device.Phone {
	cfg := pl.Cfg.Device
	cfg.Seed = cfg.Seed + seedOffset
	return device.MustNew(cfg, nil)
}

// fleet returns the batch engine the experiments fan out on.
func (pl *Pipeline) fleet() *fleet.Fleet {
	return fleet.New(fleet.Config{Workers: pl.Cfg.Workers, Seed: pl.Cfg.Seed})
}

// ustaFactory builds per-job USTA controllers at a fixed limit against the
// shared predictor. Call Predictor() before fanning out: the factory runs
// on worker goroutines and the lazy build is not concurrency-safe.
func (pl *Pipeline) ustaFactory(limitC float64) func(users.User) device.Controller {
	pred := pl.Predictor()
	return func(users.User) device.Controller { return core.NewUSTA(pred, limitC) }
}

// scenarioEnv is the expansion environment for the pipeline's code-built
// scenario grids: its device configuration and shared predictor. Like
// ustaFactory, it builds the predictor eagerly — the lazy build is not
// concurrency-safe under fleet fan-out.
func scenarioEnv(pl *Pipeline) scenario.Env {
	return scenario.Env{Device: &pl.Cfg.Device, Predictor: pl.Predictor()}
}

// mustRun executes the jobs on the pipeline's fleet and panics on the first
// job error — experiment jobs are constructed from validated configs, so a
// failure is a programming error, matching the pipeline's panic policy.
func (pl *Pipeline) mustRun(jobs []fleet.Job) []fleet.JobResult {
	results := pl.fleet().Run(context.Background(), jobs)
	if err := fleet.FirstError(results); err != nil {
		panic(err)
	}
	return results
}
