package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/trace"
	"repro/internal/users"
	"repro/internal/workload"
)

// Fig5Row is one participant's closing-study outcome.
type Fig5Row struct {
	UserID         string
	SkinLimitC     float64
	BaselineRating float64
	USTARating     float64
	Preference     users.Preference
	// USTAActivations counts USTA interventions during the user's call
	// (zero for high-threshold users — the paper's a, d, e, i).
	USTAActivations int
}

// Fig5Result reproduces Figure 5 and the §IV-B preference study: each
// participant holds the phone through a 30-minute Skype call under each
// scheme (USTA personalized to their own limit) and rates both on a 1–5
// scale. Paper anchors: baseline averages 4.0, USTA 4.3; four participants
// prefer USTA, two the baseline, four report no difference.
type Fig5Result struct {
	Rows        []Fig5Row
	BaselineAvg float64
	USTAAvg     float64

	PreferUSTA     int
	PreferBaseline int
	NoDifference   int
}

// RunFig5 executes the twenty calls — ten participants × two schemes — as
// one fleet batch, with each participant's USTA personalized through the
// job's controller factory. Jobs 2i / 2i+1 are user i's baseline and USTA
// calls.
func RunFig5(pl *Pipeline) *Fig5Result {
	pop := users.StudyPopulation()
	w := workload.Skype(uint64(pl.Cfg.Seed) + 500)
	dur := pl.Cfg.scaled(w.Duration())
	pred := pl.Predictor()

	// Per-user controllers are created on worker goroutines; each factory
	// deposits its USTA at the user's index so activation counts survive
	// the run. Distinct indices, so no synchronization is needed.
	ctrls := make([]*core.USTA, len(pop))
	jobs := make([]fleet.Job, 0, 2*len(pop))
	for i, u := range pop {
		i := i
		jobs = append(jobs, fleet.Job{
			Name:     u.ID + "/baseline",
			User:     u,
			Workload: w,
			Device:   &pl.Cfg.Device,
			DurSec:   dur,
			Seed:     pl.Cfg.Device.Seed + int64(500+2*i),
		}, fleet.Job{
			Name:     u.ID + "/usta",
			User:     u,
			Workload: w,
			Device:   &pl.Cfg.Device,
			Controller: func(u users.User) device.Controller {
				ctrls[i] = core.NewUSTA(pred, u.SkinLimitC)
				return ctrls[i]
			},
			DurSec: dur,
			Seed:   pl.Cfg.Device.Seed + int64(501+2*i),
		})
	}
	results := pl.mustRun(jobs)

	out := &Fig5Result{}
	for i, u := range pop {
		base, usta := results[2*i].Result, results[2*i+1].Result

		baseRating := users.Rating(comfortOf(base, u.SkinLimitC))
		ustaRating := users.Rating(comfortOf(usta, u.SkinLimitC))

		row := Fig5Row{
			UserID:          u.ID,
			SkinLimitC:      u.SkinLimitC,
			BaselineRating:  baseRating,
			USTARating:      ustaRating,
			Preference:      users.Prefer(u, baseRating, ustaRating),
			USTAActivations: ctrls[i].Activations,
		}
		out.Rows = append(out.Rows, row)
		out.BaselineAvg += baseRating
		out.USTAAvg += ustaRating
		switch row.Preference {
		case users.PrefersUSTA:
			out.PreferUSTA++
		case users.PrefersBaseline:
			out.PreferBaseline++
		default:
			out.NoDifference++
		}
	}
	out.BaselineAvg /= float64(len(out.Rows))
	out.USTAAvg /= float64(len(out.Rows))
	return out
}

// comfortOf summarizes a run against a user's limit.
func comfortOf(res *device.RunResult, limitC float64) users.Comfort {
	skin := res.Trace.Lookup("skin_c").Values
	over := trace.FractionAbove(skin, limitC)
	var excess float64
	n := 0
	for _, v := range skin {
		if v > limitC {
			excess += v - limitC
			n++
		}
	}
	if n > 0 {
		excess /= float64(n)
	}
	return users.Comfort{OverFrac: over, MeanExcessC: excess, Slowdown: res.Slowdown()}
}

// String renders the result as the harness table.
func (r *Fig5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5 — user ratings, baseline vs USTA (paper: avg 4.0 vs 4.3)\n")
	fmt.Fprintf(&b, "%-5s %8s %9s %6s %12s %12s\n", "user", "limit", "baseline", "usta", "preference", "activations")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-5s %5.1f °C %9.1f %6.1f %12s %12d\n",
			row.UserID, row.SkinLimitC, row.BaselineRating, row.USTARating,
			row.Preference, row.USTAActivations)
	}
	fmt.Fprintf(&b, "average: baseline %.2f vs USTA %.2f; prefer USTA %d, baseline %d, no difference %d\n",
		r.BaselineAvg, r.USTAAvg, r.PreferUSTA, r.PreferBaseline, r.NoDifference)
	return b.String()
}
