package experiments

import (
	"fmt"
	"strings"

	"repro/internal/device"
	"repro/internal/trace"
	"repro/internal/users"
	"repro/internal/workload"
)

// Fig5Row is one participant's closing-study outcome.
type Fig5Row struct {
	UserID         string
	SkinLimitC     float64
	BaselineRating float64
	USTARating     float64
	Preference     users.Preference
	// USTAActivations counts USTA interventions during the user's call
	// (zero for high-threshold users — the paper's a, d, e, i).
	USTAActivations int
}

// Fig5Result reproduces Figure 5 and the §IV-B preference study: each
// participant holds the phone through a 30-minute Skype call under each
// scheme (USTA personalized to their own limit) and rates both on a 1–5
// scale. Paper anchors: baseline averages 4.0, USTA 4.3; four participants
// prefer USTA, two the baseline, four report no difference.
type Fig5Result struct {
	Rows        []Fig5Row
	BaselineAvg float64
	USTAAvg     float64

	PreferUSTA     int
	PreferBaseline int
	NoDifference   int
}

// RunFig5 executes the twenty calls and derives ratings and preferences.
func RunFig5(pl *Pipeline) *Fig5Result {
	out := &Fig5Result{}
	for i, u := range users.StudyPopulation() {
		w := workload.Skype(uint64(pl.Cfg.Seed) + 500)
		dur := pl.Cfg.scaled(w.Duration())

		base := pl.newPhone(int64(500+2*i)).Run(w, dur)
		ustaPhone, ctrl := pl.newUSTAPhone(u.SkinLimitC, int64(501+2*i))
		usta := ustaPhone.Run(w, dur)

		baseRating := users.Rating(comfortOf(base, u.SkinLimitC))
		ustaRating := users.Rating(comfortOf(usta, u.SkinLimitC))

		row := Fig5Row{
			UserID:          u.ID,
			SkinLimitC:      u.SkinLimitC,
			BaselineRating:  baseRating,
			USTARating:      ustaRating,
			Preference:      users.Prefer(u, baseRating, ustaRating),
			USTAActivations: ctrl.Activations,
		}
		out.Rows = append(out.Rows, row)
		out.BaselineAvg += baseRating
		out.USTAAvg += ustaRating
		switch row.Preference {
		case users.PrefersUSTA:
			out.PreferUSTA++
		case users.PrefersBaseline:
			out.PreferBaseline++
		default:
			out.NoDifference++
		}
	}
	out.BaselineAvg /= float64(len(out.Rows))
	out.USTAAvg /= float64(len(out.Rows))
	return out
}

// comfortOf summarizes a run against a user's limit.
func comfortOf(res *device.RunResult, limitC float64) users.Comfort {
	skin := res.Trace.Lookup("skin_c").Values
	over := trace.FractionAbove(skin, limitC)
	var excess float64
	n := 0
	for _, v := range skin {
		if v > limitC {
			excess += v - limitC
			n++
		}
	}
	if n > 0 {
		excess /= float64(n)
	}
	return users.Comfort{OverFrac: over, MeanExcessC: excess, Slowdown: res.Slowdown()}
}

// String renders the result as the harness table.
func (r *Fig5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5 — user ratings, baseline vs USTA (paper: avg 4.0 vs 4.3)\n")
	fmt.Fprintf(&b, "%-5s %8s %9s %6s %12s %12s\n", "user", "limit", "baseline", "usta", "preference", "activations")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-5s %5.1f °C %9.1f %6.1f %12s %12d\n",
			row.UserID, row.SkinLimitC, row.BaselineRating, row.USTARating,
			row.Preference, row.USTAActivations)
	}
	fmt.Fprintf(&b, "average: baseline %.2f vs USTA %.2f; prefer USTA %d, baseline %d, no difference %d\n",
		r.BaselineAvg, r.USTAAvg, r.PreferUSTA, r.PreferBaseline, r.NoDifference)
	return b.String()
}
