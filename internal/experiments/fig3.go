package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/ml"
	"repro/internal/ml/linreg"
	"repro/internal/ml/m5p"
	"repro/internal/ml/mlp"
	"repro/internal/ml/tree"
)

// Fig3Row is one prediction model's cross-validated scores.
type Fig3Row struct {
	Model string
	// SkinErrPct / ScreenErrPct are the paper's Eq. 1 average error rates.
	SkinErrPct   float64
	ScreenErrPct float64
	// SkinGatedPct / ScreenGatedPct ignore sub-1 °C differences (§IV-A).
	SkinGatedPct   float64
	ScreenGatedPct float64
	// SkinMAE / ScreenMAE in °C, for context.
	SkinMAE   float64
	ScreenMAE float64
}

// Fig3Result reproduces Figure 3: 10-fold cross-validated error rates for
// the four prediction models on the pooled 13-benchmark corpus (a single
// global model, as the paper stresses). Paper anchors: REPTree 0.95 %
// skin / 0.86 % screen; M5P 0.96 % / 0.89 %, improving to 0.26 % / 0.17 %
// with the 1 °C gate; linear regression and the MLP are visibly worse.
type Fig3Result struct {
	Rows      []Fig3Row
	CorpusLen int
}

// RunFig3 trains and cross-validates all four models on both targets. The
// eight (model, target) sweeps are independent — seeded shuffles over a
// read-only corpus — so they fan out on the fleet's scheduling primitive;
// the MLP's training time no longer serializes the figure.
func RunFig3(pl *Pipeline) *Fig3Result {
	epochs := pl.Cfg.MLPEpochs
	if epochs <= 0 {
		epochs = 150
	}
	seed := pl.Cfg.Seed
	factories := []struct {
		name string
		mk   func() ml.Regressor
	}{
		{"LinearRegression", func() ml.Regressor { return linreg.New() }},
		{"MultilayerPerceptron", func() ml.Regressor {
			m := mlp.New(seed)
			m.Epochs = epochs
			return m
		}},
		{"M5P", func() ml.Regressor { return m5p.New() }},
		{"REPTree", func() ml.Regressor { return tree.New(seed) }},
	}

	corpus := pl.Corpus()
	datasets := []*ml.Dataset{
		core.DatasetFromRecords(corpus, core.SkinTarget),
		core.DatasetFromRecords(corpus, core.ScreenTarget),
	}

	rows := make([]Fig3Row, len(factories))
	for i, f := range factories {
		rows[i].Model = f.name
	}
	errs := make([]error, len(factories)*len(datasets))
	fleet.ForEach(len(factories)*len(datasets), pl.Cfg.Workers, func(i int) {
		f, target := factories[i/len(datasets)], i%len(datasets)
		exp, pred, err := ml.CrossValidate(f.mk, datasets[target], 10, seed)
		if err != nil {
			errs[i] = fmt.Errorf("experiments: fig3 %s %s CV: %v", f.name, core.Target(target), err)
			return
		}
		// Concurrent tasks touch disjoint fields of the row: task parity
		// selects the target, and each target writes only its own columns.
		row := &rows[i/len(datasets)]
		if core.Target(target) == core.SkinTarget {
			row.SkinErrPct = ml.ErrorRate(exp, pred)
			row.SkinGatedPct = ml.GatedErrorRate(exp, pred, 1.0)
			row.SkinMAE = ml.MAE(exp, pred)
		} else {
			row.ScreenErrPct = ml.ErrorRate(exp, pred)
			row.ScreenGatedPct = ml.GatedErrorRate(exp, pred, 1.0)
			row.ScreenMAE = ml.MAE(exp, pred)
		}
	})
	for _, err := range errs {
		if err != nil {
			panic(err)
		}
	}
	return &Fig3Result{Rows: rows, CorpusLen: len(corpus)}
}

// Row returns the named model's row.
func (r *Fig3Result) Row(model string) (Fig3Row, bool) {
	for _, row := range r.Rows {
		if row.Model == model {
			return row, true
		}
	}
	return Fig3Row{}, false
}

// String renders the result as the harness table.
func (r *Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — 10-fold CV error rates on the pooled corpus (%d records)\n", r.CorpusLen)
	fmt.Fprintf(&b, "%-22s %10s %10s %12s %12s %9s %9s\n",
		"model", "skin err%", "scrn err%", "skin gated%", "scrn gated%", "skin MAE", "scrn MAE")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %10.2f %10.2f %12.2f %12.2f %8.3f° %8.3f°\n",
			row.Model, row.SkinErrPct, row.ScreenErrPct,
			row.SkinGatedPct, row.ScreenGatedPct, row.SkinMAE, row.ScreenMAE)
	}
	b.WriteString("(paper: REPTree 0.95/0.86, M5P 0.96/0.89, gated M5P 0.26/0.17; LR and MLP worse)\n")
	return b.String()
}
