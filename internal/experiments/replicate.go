package experiments

// Replication: the paper reports single measurements; the simulator can
// afford to repeat each headline experiment across independent seeds and
// report a mean with a bootstrap confidence interval, quantifying how much
// of the result is physics and how much is noise.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Replicate summarizes a metric across replications.
type Replicate struct {
	Name   string
	Values []float64
	Mean   float64
	// CILo / CIHi bound the 95 % bootstrap confidence interval of the mean.
	CILo, CIHi float64
}

// NewReplicate computes the summary for a set of replicated values.
func NewReplicate(name string, values []float64, seed int64) Replicate {
	r := Replicate{Name: name, Values: values}
	if len(values) == 0 {
		return r
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	r.Mean = sum / float64(len(values))
	if len(values) == 1 {
		r.CILo, r.CIHi = r.Mean, r.Mean
		return r
	}
	const resamples = 2000
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	for b := 0; b < resamples; b++ {
		var s float64
		for i := 0; i < len(values); i++ {
			s += values[rng.Intn(len(values))]
		}
		means[b] = s / float64(len(values))
	}
	sort.Float64s(means)
	r.CILo = means[int(0.025*resamples)]
	r.CIHi = means[int(math.Min(0.975*resamples, resamples-1))]
	return r
}

// Fig4Replication holds the replicated Figure 4 headline metrics.
type Fig4Replication struct {
	N             int
	PeakDelta     Replicate
	FreqReduction Replicate
	USTAOverFrac  Replicate
}

// ReplicateFig4 repeats the Figure 4 experiment across n seeds. The shared
// predictor is reused (training is seed-independent given the corpus); the
// workload jitter and sensor noise vary per replication.
func ReplicateFig4(pl *Pipeline, n int) *Fig4Replication {
	if n < 1 {
		n = 1
	}
	deltas := make([]float64, 0, n)
	freqs := make([]float64, 0, n)
	overs := make([]float64, 0, n)
	baseSeed := pl.Cfg.Seed
	for i := 0; i < n; i++ {
		sub := *pl
		sub.Cfg.Seed = baseSeed + int64(1000*(i+1))
		// Share the expensive artifacts; only run-time seeds differ.
		sub.corpus = pl.Corpus()
		sub.pred = pl.Predictor()
		res := RunFig4(&sub)
		deltas = append(deltas, res.PeakDeltaC)
		freqs = append(freqs, res.FreqReduction)
		overs = append(overs, res.USTAOverFrac)
	}
	return &Fig4Replication{
		N:             n,
		PeakDelta:     NewReplicate("peak-delta-C", deltas, baseSeed+1),
		FreqReduction: NewReplicate("freq-reduction", freqs, baseSeed+2),
		USTAOverFrac:  NewReplicate("usta-over-frac", overs, baseSeed+3),
	}
}

// String renders the replication summary.
func (r *Fig4Replication) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 replicated over %d seeds (mean [95%% CI]):\n", r.N)
	fmt.Fprintf(&b, "  peak skin reduction: %.2f [%.2f, %.2f] °C (paper: 4.1)\n",
		r.PeakDelta.Mean, r.PeakDelta.CILo, r.PeakDelta.CIHi)
	fmt.Fprintf(&b, "  frequency reduction: %.0f%% [%.0f%%, %.0f%%] (paper: 34%%)\n",
		r.FreqReduction.Mean*100, r.FreqReduction.CILo*100, r.FreqReduction.CIHi*100)
	fmt.Fprintf(&b, "  USTA time over limit: %.1f%% [%.1f%%, %.1f%%]\n",
		r.USTAOverFrac.Mean*100, r.USTAOverFrac.CILo*100, r.USTAOverFrac.CIHi*100)
	return b.String()
}
