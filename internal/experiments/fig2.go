package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fleet"
	"repro/internal/trace"
	"repro/internal/users"
	"repro/internal/workload"
)

// Fig2Row is one limit setting of Figure 2.
type Fig2Row struct {
	// Label is the participant label, or "default" for the 37 °C setting.
	Label string
	// LimitC is the configured USTA skin limit.
	LimitC float64
	// OverFrac is the fraction of the call spent above the limit.
	OverFrac float64
	// AvgFreqMHz is the resulting average CPU frequency.
	AvgFreqMHz float64
}

// Fig2Result reproduces Figure 2: the percentage of a 30-minute Skype video
// call spent above the comfort threshold for eleven USTA limit settings
// (ten participants plus the default user; the paper reports 15.6 % for
// the default).
type Fig2Result struct {
	Rows []Fig2Row
}

// RunFig2 executes the eleven USTA-controlled Skype calls as one fleet
// batch: every limit setting is an independent job, so the wall-clock cost
// is one call, not eleven, on a multicore host. Seeds are pinned per
// setting (the pre-fleet offsets), keeping the output identical at any
// worker count.
func RunFig2(pl *Pipeline) *Fig2Result {
	type setting struct {
		label string
		limit float64
	}
	settings := make([]setting, 0, 11)
	for _, u := range users.StudyPopulation() {
		settings = append(settings, setting{u.ID, u.SkinLimitC})
	}
	settings = append(settings, setting{"default", users.DefaultLimitC})

	w := workload.Skype(uint64(pl.Cfg.Seed) + 200)
	dur := pl.Cfg.scaled(w.Duration())
	jobs := make([]fleet.Job, len(settings))
	for i, s := range settings {
		jobs[i] = fleet.Job{
			Name:       s.label,
			Workload:   w,
			Device:     &pl.Cfg.Device,
			Controller: pl.ustaFactory(s.limit),
			DurSec:     dur,
			Seed:       pl.Cfg.Device.Seed + int64(100+i),
		}
	}

	out := &Fig2Result{}
	for i, jr := range pl.mustRun(jobs) {
		skin := jr.Result.Trace.Lookup("skin_c").Values
		out.Rows = append(out.Rows, Fig2Row{
			Label:      settings[i].label,
			LimitC:     settings[i].limit,
			OverFrac:   trace.FractionAbove(skin, settings[i].limit),
			AvgFreqMHz: jr.Result.AvgFreqMHz,
		})
	}
	return out
}

// DefaultRow returns the default-user row.
func (r *Fig2Result) DefaultRow() Fig2Row {
	for _, row := range r.Rows {
		if row.Label == "default" {
			return row
		}
	}
	return Fig2Row{}
}

// String renders the result as the harness table.
func (r *Fig2Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 2 — % of 30-min Skype call above the USTA limit (paper: 15.6% for default)\n")
	fmt.Fprintf(&b, "%-8s %10s %12s %12s\n", "setting", "limit", "time over", "avg freq")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %7.1f °C %11.1f%% %8.0f MHz\n", row.Label, row.LimitC, row.OverFrac*100, row.AvgFreqMHz)
	}
	return b.String()
}
