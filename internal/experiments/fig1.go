package experiments

import (
	"fmt"
	"strings"

	"repro/internal/trace"
	"repro/internal/users"
	"repro/internal/workload"
)

// Fig1Row is one participant of the user study.
type Fig1Row struct {
	UserID       string
	SkinLimitC   float64
	ScreenLimitC float64
	// CrossSec is when the back cover first exceeded the participant's
	// limit during the AnTuTu Tester session (the moment the paper's
	// participants reported unacceptable discomfort and stopped).
	CrossSec float64
	Crossed  bool
}

// Fig1Result reproduces Figure 1: the per-user comfort limits, plus the
// discomfort-onset times our simulated session produces for them.
type Fig1Result struct {
	Rows []Fig1Row
	// SessionMaxSkinC is the hottest skin temperature the study session
	// reached.
	SessionMaxSkinC float64
}

// RunFig1 reproduces the §III user study: all participants hold the phone
// while the AnTuTu Tester hardware stressor runs; each reports discomfort
// when the skin temperature crosses their personal limit.
func RunFig1(pl *Pipeline) *Fig1Result {
	w := workload.AnTuTuTester(uint64(pl.Cfg.Seed) + 600)
	phone := pl.newPhone(61)
	res := phone.Run(w, pl.Cfg.scaled(w.Duration()))

	skin := res.Trace.Lookup("skin_c").Values
	out := &Fig1Result{SessionMaxSkinC: res.MaxSkinC}
	for _, u := range users.StudyPopulation() {
		at, ok := trace.FirstCrossing(res.Trace.TimeSec, skin, u.SkinLimitC)
		out.Rows = append(out.Rows, Fig1Row{
			UserID:       u.ID,
			SkinLimitC:   u.SkinLimitC,
			ScreenLimitC: u.ScreenLimitC,
			CrossSec:     at,
			Crossed:      ok,
		})
	}
	return out
}

// String renders the result as the harness table.
func (r *Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — per-user comfort limits (AnTuTu Tester session, peak skin %.1f °C)\n", r.SessionMaxSkinC)
	fmt.Fprintf(&b, "%-5s %12s %13s %16s\n", "user", "skin limit", "screen limit", "discomfort at")
	for _, row := range r.Rows {
		when := "not reached"
		if row.Crossed {
			when = fmt.Sprintf("%.0f s", row.CrossSec)
		}
		fmt.Fprintf(&b, "%-5s %9.1f °C %10.1f °C %16s\n", row.UserID, row.SkinLimitC, row.ScreenLimitC, when)
	}
	return b.String()
}
