package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestNewReplicateStatistics(t *testing.T) {
	r := NewReplicate("m", []float64{4, 5, 6, 5, 5}, 1)
	if r.Mean != 5 {
		t.Fatalf("Mean = %v want 5", r.Mean)
	}
	if r.CILo > r.Mean || r.CIHi < r.Mean {
		t.Fatalf("CI [%v, %v] does not bracket the mean %v", r.CILo, r.CIHi, r.Mean)
	}
	if r.CILo < 4 || r.CIHi > 6 {
		t.Fatalf("CI [%v, %v] outside the data range", r.CILo, r.CIHi)
	}
}

func TestNewReplicateEdgeCases(t *testing.T) {
	if r := NewReplicate("empty", nil, 1); r.Mean != 0 {
		t.Fatalf("empty Mean = %v", r.Mean)
	}
	r := NewReplicate("single", []float64{3.5}, 1)
	if r.Mean != 3.5 || r.CILo != 3.5 || r.CIHi != 3.5 {
		t.Fatalf("single-value replicate = %+v", r)
	}
}

func TestNewReplicateDeterministicPerSeed(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6}
	a := NewReplicate("x", vals, 7)
	b := NewReplicate("x", vals, 7)
	if a.CILo != b.CILo || a.CIHi != b.CIHi {
		t.Fatal("bootstrap not deterministic per seed")
	}
}

func TestReplicateFig4AcrossSeeds(t *testing.T) {
	pl := pipeline(t)
	rep := ReplicateFig4(pl, 3)
	if rep.N != 3 || len(rep.PeakDelta.Values) != 3 {
		t.Fatalf("replication shape: %+v", rep)
	}
	// Every replication must show USTA winning (positive peak reduction).
	for i, v := range rep.PeakDelta.Values {
		if v < 0.5 {
			t.Fatalf("seed %d: peak delta %.2f — USTA failed to win", i, v)
		}
	}
	if rep.FreqReduction.Mean <= 0 {
		t.Fatalf("mean frequency reduction %v", rep.FreqReduction.Mean)
	}
	// Seed-to-seed spread should be modest: the effect is physics, not
	// noise.
	spread := 0.0
	for _, v := range rep.PeakDelta.Values {
		spread = math.Max(spread, math.Abs(v-rep.PeakDelta.Mean))
	}
	if spread > 1.5 {
		t.Fatalf("peak-delta spread %.2f °C across seeds is implausibly wide", spread)
	}
	if !strings.Contains(rep.String(), "replicated") {
		t.Fatal("String() broken")
	}
}

func TestReplicateFig4ClampsN(t *testing.T) {
	pl := pipeline(t)
	rep := ReplicateFig4(pl, 0)
	if rep.N != 1 {
		t.Fatalf("n=0 should clamp to 1, got %d", rep.N)
	}
}
