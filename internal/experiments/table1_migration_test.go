package experiments

import (
	"testing"

	"repro/internal/fleet"
	"repro/internal/users"
	"repro/internal/workload"
)

// TestTable1SpecMatchesHandBuiltJobs pins the scenario migration: the
// declarative Table1Spec grid must reproduce the pre-scenario hand-built
// job list — same workloads, durations, seeds and schemes — and therefore
// byte-identical table cells. The hand-built construction below is the
// legacy RunTable1 implementation, kept as the reference.
func TestTable1SpecMatchesHandBuiltJobs(t *testing.T) {
	pl := pipeline(t)

	benches := workload.Benchmarks(uint64(pl.Cfg.Seed) + 300)
	usta := pl.ustaFactory(users.DefaultLimitC)
	legacy := make([]fleet.Job, 0, 2*len(benches))
	for i, w := range benches {
		dur := pl.Cfg.scaled(w.Duration())
		legacy = append(legacy, fleet.Job{
			Name:     w.Name() + "/baseline",
			Workload: w,
			Device:   &pl.Cfg.Device,
			DurSec:   dur,
			Seed:     pl.Cfg.Device.Seed + int64(300+2*i),
		}, fleet.Job{
			Name:       w.Name() + "/usta",
			Workload:   w,
			Device:     &pl.Cfg.Device,
			Controller: usta,
			DurSec:     dur,
			Seed:       pl.Cfg.Device.Seed + int64(301+2*i),
		})
	}
	legacyResults := pl.mustRun(legacy)

	res := RunTable1(pl)
	if len(res.Rows) != len(benches) {
		t.Fatalf("rows = %d want %d", len(res.Rows), len(benches))
	}
	for i, w := range benches {
		row := res.Rows[i]
		if row.Bench != w.Name() {
			t.Fatalf("row %d = %q want %q (grid order changed)", i, row.Bench, w.Name())
		}
		base, usta := legacyResults[2*i].Result, legacyResults[2*i+1].Result
		if row.Baseline.MaxSkinC != base.MaxSkinC ||
			row.Baseline.MaxScreenC != base.MaxScreenC ||
			row.Baseline.AvgFreqGHz != base.AvgFreqMHz/1000 {
			t.Fatalf("%s baseline cell diverged from the hand-built path:\n got %+v\nwant {%.6f %.6f %.6f}",
				row.Bench, row.Baseline, base.MaxScreenC, base.MaxSkinC, base.AvgFreqMHz/1000)
		}
		if row.USTA.MaxSkinC != usta.MaxSkinC ||
			row.USTA.MaxScreenC != usta.MaxScreenC ||
			row.USTA.AvgFreqGHz != usta.AvgFreqMHz/1000 {
			t.Fatalf("%s usta cell diverged from the hand-built path:\n got %+v\nwant {%.6f %.6f %.6f}",
				row.Bench, row.USTA, usta.MaxScreenC, usta.MaxSkinC, usta.AvgFreqMHz/1000)
		}
	}

	// The grid's own metadata must agree with the legacy job list too.
	grid, err := Table1Spec(pl.Cfg).Expand(scenarioEnv(pl))
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Jobs) != len(legacy) {
		t.Fatalf("grid jobs = %d want %d", len(grid.Jobs), len(legacy))
	}
	for i := range legacy {
		g, l := grid.Jobs[i], legacy[i]
		if g.Name != l.Name || g.DurSec != l.DurSec || g.Seed != l.Seed {
			t.Fatalf("job %d: grid (name=%q dur=%g seed=%d) vs legacy (name=%q dur=%g seed=%d)",
				i, g.Name, g.DurSec, g.Seed, l.Name, l.DurSec, l.Seed)
		}
		if g.Workload.Name() != l.Workload.Name() {
			t.Fatalf("job %d workload %q vs %q", i, g.Workload.Name(), l.Workload.Name())
		}
	}
}
