package experiments

import (
	"fmt"
	"strings"

	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/trace"
	"repro/internal/users"
	"repro/internal/workload"
)

// Fig4Result reproduces Figure 4: recorded temperatures during a 30-minute
// Skype video call under the baseline ondemand governor and under USTA
// configured for the default user (37 °C). The paper's anchors: USTA holds
// the skin near the limit while the baseline peaks 4.1 °C higher, with the
// average frequency about a third lower.
type Fig4Result struct {
	Baseline *device.RunResult
	USTA     *device.RunResult
	LimitC   float64

	// PeakDeltaC = baseline peak skin − USTA peak skin.
	PeakDeltaC float64
	// FreqReduction = 1 − USTA avg freq / baseline avg freq.
	FreqReduction float64
	// BaselineOverFrac / USTAOverFrac are fractions of the call above the
	// limit.
	BaselineOverFrac float64
	USTAOverFrac     float64
}

// RunFig4 executes the two 30-minute Skype calls concurrently.
func RunFig4(pl *Pipeline) *Fig4Result {
	w := workload.Skype(uint64(pl.Cfg.Seed) + 400)
	dur := pl.Cfg.scaled(w.Duration())

	results := pl.mustRun([]fleet.Job{
		{Name: "baseline", Workload: w, Device: &pl.Cfg.Device, DurSec: dur, Seed: pl.Cfg.Device.Seed + 41},
		{Name: "usta", Workload: w, Device: &pl.Cfg.Device, Controller: pl.ustaFactory(users.DefaultLimitC), DurSec: dur, Seed: pl.Cfg.Device.Seed + 42},
	})
	base, usta := results[0].Result, results[1].Result

	return &Fig4Result{
		Baseline:         base,
		USTA:             usta,
		LimitC:           users.DefaultLimitC,
		PeakDeltaC:       base.MaxSkinC - usta.MaxSkinC,
		FreqReduction:    1 - usta.AvgFreqMHz/base.AvgFreqMHz,
		BaselineOverFrac: trace.FractionAbove(base.Trace.Lookup("skin_c").Values, users.DefaultLimitC),
		USTAOverFrac:     trace.FractionAbove(usta.Trace.Lookup("skin_c").Values, users.DefaultLimitC),
	}
}

// String renders the traces and summary for the harness.
func (r *Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — 30-min Skype call, baseline vs USTA (limit %.0f °C)\n", r.LimitC)
	b.WriteString("baseline skin trace:\n")
	b.WriteString(trace.Chart(r.Baseline.Trace.Lookup("skin_c").Values, 72, 10))
	b.WriteString("USTA skin trace:\n")
	b.WriteString(trace.Chart(r.USTA.Trace.Lookup("skin_c").Values, 72, 10))
	fmt.Fprintf(&b, "peak skin: baseline %.1f °C vs USTA %.1f °C  (Δ %.1f °C; paper: 4.1 °C)\n",
		r.Baseline.MaxSkinC, r.USTA.MaxSkinC, r.PeakDeltaC)
	fmt.Fprintf(&b, "avg freq:  baseline %.2f GHz vs USTA %.2f GHz (−%.0f%%; paper: −34%%)\n",
		r.Baseline.AvgFreqMHz/1000, r.USTA.AvgFreqMHz/1000, r.FreqReduction*100)
	fmt.Fprintf(&b, "time above limit: baseline %.1f%% vs USTA %.1f%%\n",
		r.BaselineOverFrac*100, r.USTAOverFrac*100)
	return b.String()
}
