// Package soc models the application processor of the simulated handset: a
// DVFS-capable multi-core CPU with the Nexus 4's twelve operating
// performance points (OPPs) between 384 MHz and 1.512 GHz, a
// voltage-dependent dynamic power model, temperature-dependent leakage, and
// a GPU power envelope.
//
// The governor-facing contract matches a Linux cpufreq device: a discrete
// table of frequency levels, a current level, and an externally imposed
// maximum level (the scaling_max_freq clamp that USTA manipulates).
package soc

import (
	"fmt"
	"math"
)

// OPP is one operating performance point of the CPU.
type OPP struct {
	FreqMHz  float64 // core clock in MHz
	VoltageV float64 // supply voltage in volts
}

// Config holds the physical parameters of the SoC model.
type Config struct {
	// OPPs must be sorted by ascending frequency.
	OPPs []OPP
	// NumCores is the number of identical CPU cores.
	NumCores int
	// CeffPerCore is the effective switched capacitance per core in farads;
	// dynamic power is NumCores·Ceff·V²·f·util.
	CeffPerCore float64
	// LeakRefWatts is the total leakage power at LeakRefTempC and the top
	// OPP voltage.
	LeakRefWatts float64
	// LeakRefTempC is the reference temperature for LeakRefWatts.
	LeakRefTempC float64
	// LeakDoubleC is the die-temperature increase that doubles leakage.
	LeakDoubleC float64
	// GPUMaxWatts is the GPU power at 100 % GPU load.
	GPUMaxWatts float64
	// IdleWatts is the floor power of the always-on domain (buses, caches,
	// rail overheads) attributed to the die even at zero utilization.
	IdleWatts float64
}

// Nexus4Config returns the APQ8064-like parameter set: twelve OPPs from
// 384 MHz to 1.512 GHz (the paper's "twelve frequency levels between 384MHz
// and 1.512GHz"), four cores, and power constants calibrated so a fully
// loaded CPU at the top OPP dissipates ≈3.2 W dynamic + temperature-
// dependent leakage.
func Nexus4Config() Config {
	freqs := []float64{384, 486, 594, 702, 810, 918, 1026, 1134, 1242, 1350, 1458, 1512}
	volts := []float64{0.950, 0.975, 1.000, 1.025, 1.050, 1.075, 1.100, 1.125, 1.175, 1.200, 1.225, 1.250}
	opps := make([]OPP, len(freqs))
	for i := range freqs {
		opps[i] = OPP{FreqMHz: freqs[i], VoltageV: volts[i]}
	}
	return Config{
		OPPs:         opps,
		NumCores:     4,
		CeffPerCore:  0.34e-9,
		LeakRefWatts: 0.15,
		LeakRefTempC: 25,
		LeakDoubleC:  25,
		GPUMaxWatts:  1.3,
		IdleWatts:    0.06,
	}
}

// Validate reports whether the configuration is well formed.
func (c Config) Validate() error {
	if len(c.OPPs) == 0 {
		return fmt.Errorf("soc: config needs at least one OPP")
	}
	for i := 1; i < len(c.OPPs); i++ {
		if c.OPPs[i].FreqMHz <= c.OPPs[i-1].FreqMHz {
			return fmt.Errorf("soc: OPPs must be strictly ascending in frequency (index %d)", i)
		}
		if c.OPPs[i].VoltageV < c.OPPs[i-1].VoltageV {
			return fmt.Errorf("soc: OPP voltage must be non-decreasing with frequency (index %d)", i)
		}
	}
	if c.NumCores <= 0 {
		return fmt.Errorf("soc: NumCores must be positive")
	}
	if c.CeffPerCore <= 0 {
		return fmt.Errorf("soc: CeffPerCore must be positive")
	}
	if c.LeakDoubleC <= 0 {
		return fmt.Errorf("soc: LeakDoubleC must be positive")
	}
	return nil
}

// CPU is the runtime state of the processor: its configuration, the
// current DVFS level, the current maximum-level clamp, and the number of
// online cores (the Nexus 4's mpdecision hotplugs cores at runtime).
type CPU struct {
	cfg      Config
	level    int
	maxLevel int
	online   int
}

// New creates a CPU at the lowest OPP with no frequency clamp and all
// cores online.
func New(cfg Config) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &CPU{cfg: cfg, level: 0, maxLevel: len(cfg.OPPs) - 1, online: cfg.NumCores}, nil
}

// MustNew is New that panics on configuration errors; intended for
// hard-coded configurations.
func MustNew(cfg Config) *CPU {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the CPU's configuration.
func (c *CPU) Config() Config { return c.cfg }

// NumLevels returns the number of OPPs.
func (c *CPU) NumLevels() int { return len(c.cfg.OPPs) }

// Reset returns the CPU to its power-on state — lowest OPP, no frequency
// clamp, all cores online — exactly the state New constructs. The fleet's
// phone pool uses it to recycle CPUs across jobs.
func (c *CPU) Reset() {
	c.level = 0
	c.maxLevel = len(c.cfg.OPPs) - 1
	c.online = c.cfg.NumCores
}

// Level returns the current DVFS level index (0 = slowest).
func (c *CPU) Level() int { return c.level }

// MaxLevel returns the current clamp: the highest level the governor may
// select (scaling_max_freq).
func (c *CPU) MaxLevel() int { return c.maxLevel }

// SetMaxLevel clamps future level selections to at most lvl (and lowers the
// current level immediately if it now exceeds the clamp). Values are
// saturated into the valid range.
func (c *CPU) SetMaxLevel(lvl int) {
	if lvl < 0 {
		lvl = 0
	}
	if lvl >= len(c.cfg.OPPs) {
		lvl = len(c.cfg.OPPs) - 1
	}
	c.maxLevel = lvl
	if c.level > lvl {
		c.level = lvl
	}
}

// ClearMaxLevel removes the frequency clamp.
func (c *CPU) ClearMaxLevel() { c.maxLevel = len(c.cfg.OPPs) - 1 }

// SetLevel requests DVFS level lvl; the effective level is saturated into
// [0, MaxLevel]. It returns the level actually applied.
func (c *CPU) SetLevel(lvl int) int {
	if lvl < 0 {
		lvl = 0
	}
	if lvl > c.maxLevel {
		lvl = c.maxLevel
	}
	c.level = lvl
	return lvl
}

// FreqMHz returns the frequency of the current level.
func (c *CPU) FreqMHz() float64 { return c.cfg.OPPs[c.level].FreqMHz }

// FreqAtLevel returns the frequency of an arbitrary level.
func (c *CPU) FreqAtLevel(lvl int) float64 { return c.cfg.OPPs[lvl].FreqMHz }

// Voltage returns the supply voltage of the current level.
func (c *CPU) Voltage() float64 { return c.cfg.OPPs[c.level].VoltageV }

// LevelForFreq returns the lowest level whose frequency is >= freqMHz, or
// the top level if freqMHz exceeds the table. This mirrors cpufreq's
// CPUFREQ_RELATION_L frequency resolution.
func (c *CPU) LevelForFreq(freqMHz float64) int {
	for i, opp := range c.cfg.OPPs {
		if opp.FreqMHz >= freqMHz {
			return i
		}
	}
	return len(c.cfg.OPPs) - 1
}

// OnlineCores returns the number of cores currently online.
func (c *CPU) OnlineCores() int { return c.online }

// SetOnlineCores hotplugs cores: the count is clamped to [1, NumCores].
func (c *CPU) SetOnlineCores(n int) {
	if n < 1 {
		n = 1
	}
	if n > c.cfg.NumCores {
		n = c.cfg.NumCores
	}
	c.online = n
}

// CapacityMHz returns the total compute capacity at the current level in
// aggregate core-MHz (frequency × online cores). Workload demand is
// expressed in the same unit, so utilization = demand / capacity.
func (c *CPU) CapacityMHz() float64 {
	return c.cfg.OPPs[c.level].FreqMHz * float64(c.online)
}

// CapacityAtLevelMHz returns capacity for an arbitrary level at the
// current online-core count.
func (c *CPU) CapacityAtLevelMHz(lvl int) float64 {
	return c.cfg.OPPs[lvl].FreqMHz * float64(c.online)
}

// MaxCapacityMHz returns capacity at the top OPP with every core online,
// ignoring the clamp. This is the demand-normalization reference, so it is
// intentionally independent of the hotplug state.
func (c *CPU) MaxCapacityMHz() float64 {
	return c.cfg.OPPs[len(c.cfg.OPPs)-1].FreqMHz * float64(c.cfg.NumCores)
}

// DynamicPower returns the switching power in watts at the current level
// for the given aggregate utilization in [0,1], across the online cores.
func (c *CPU) DynamicPower(util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	opp := c.cfg.OPPs[c.level]
	fHz := opp.FreqMHz * 1e6
	return float64(c.online) * c.cfg.CeffPerCore * opp.VoltageV * opp.VoltageV * fHz * util
}

// exp2fast computes 2^x for the moderate exponents leakage scaling
// produces (|x| ≤ 16 covers any physical die temperature). It splits x
// into integer and fractional parts, evaluates e^(f·ln2) by a short
// Taylor series and applies the integer exponent by constructing the
// float's exponent bits directly. Relative error is below 1e-10 —
// orders of magnitude inside the leakage model's own fidelity — while
// costing a fraction of the library call that dominates the simulator's
// per-tick power model otherwise. Out-of-range inputs fall back to
// math.Exp2.
func exp2fast(x float64) float64 {
	if x < -16 || x > 16 {
		return math.Exp2(x)
	}
	k := math.Floor(x)
	y := (x - k) * math.Ln2 // in [0, ln2)
	// e^y via a degree-10 Taylor sum in Estrin form: the truncated term
	// y¹¹/11! is < 5e-10 at y = ln2, and the tree-shaped evaluation keeps
	// the dependency chain short.
	const (
		c2  = 1.0 / 2
		c3  = 1.0 / 6
		c4  = 1.0 / 24
		c5  = 1.0 / 120
		c6  = 1.0 / 720
		c7  = 1.0 / 5040
		c8  = 1.0 / 40320
		c9  = 1.0 / 362880
		c10 = 1.0 / 3628800
	)
	y2 := y * y
	y4 := y2 * y2
	p := (1 + y) + y2*(c2+c3*y) +
		y4*((c4+c5*y)+y2*(c6+c7*y)+y4*((c8+c9*y)+y2*c10))
	scale := math.Float64frombits(uint64(1023+int64(k)) << 52)
	return p * scale
}

// LeakagePower returns the leakage power in watts at the current voltage
// and the given die temperature in °C. Leakage scales linearly with
// voltage, exponentially (base-2 per LeakDoubleC) with temperature, and
// proportionally with the online-core count (offline cores are
// power-gated).
func (c *CPU) LeakagePower(dieTempC float64) float64 {
	vTop := c.cfg.OPPs[len(c.cfg.OPPs)-1].VoltageV
	vScale := c.cfg.OPPs[c.level].VoltageV / vTop
	tScale := exp2fast((dieTempC - c.cfg.LeakRefTempC) / c.cfg.LeakDoubleC)
	coreScale := float64(c.online) / float64(c.cfg.NumCores)
	return c.cfg.LeakRefWatts * vScale * tScale * coreScale
}

// Power returns total die power (dynamic + leakage + idle floor) in watts
// for the given utilization and die temperature.
func (c *CPU) Power(util, dieTempC float64) float64 {
	return c.DynamicPower(util) + c.LeakagePower(dieTempC) + c.cfg.IdleWatts
}

// GPUPower returns GPU power in watts for a GPU load in [0,1].
func (c *CPU) GPUPower(load float64) float64 {
	if load < 0 {
		load = 0
	}
	if load > 1 {
		load = 1
	}
	return c.cfg.GPUMaxWatts * load
}
