package soc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNexus4ConfigShape(t *testing.T) {
	cfg := Nexus4Config()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cfg.OPPs) != 12 {
		t.Fatalf("Nexus 4 must expose 12 OPPs, got %d", len(cfg.OPPs))
	}
	if cfg.OPPs[0].FreqMHz != 384 {
		t.Fatalf("bottom OPP = %v MHz want 384", cfg.OPPs[0].FreqMHz)
	}
	if cfg.OPPs[11].FreqMHz != 1512 {
		t.Fatalf("top OPP = %v MHz want 1512", cfg.OPPs[11].FreqMHz)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	good := Nexus4Config()

	c := good
	c.OPPs = nil
	if c.Validate() == nil {
		t.Fatal("empty OPP table accepted")
	}

	c = good
	c.OPPs = []OPP{{1000, 1.0}, {900, 1.1}}
	if c.Validate() == nil {
		t.Fatal("descending frequencies accepted")
	}

	c = good
	c.OPPs = []OPP{{900, 1.1}, {1000, 1.0}}
	if c.Validate() == nil {
		t.Fatal("decreasing voltage accepted")
	}

	c = good
	c.NumCores = 0
	if c.Validate() == nil {
		t.Fatal("zero cores accepted")
	}

	c = good
	c.CeffPerCore = 0
	if c.Validate() == nil {
		t.Fatal("zero Ceff accepted")
	}

	c = good
	c.LeakDoubleC = 0
	if c.Validate() == nil {
		t.Fatal("zero leak doubling accepted")
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted empty config")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Config{})
}

func TestLevelSaturation(t *testing.T) {
	c := MustNew(Nexus4Config())
	if got := c.SetLevel(-3); got != 0 {
		t.Fatalf("SetLevel(-3) applied %d want 0", got)
	}
	if got := c.SetLevel(99); got != 11 {
		t.Fatalf("SetLevel(99) applied %d want 11", got)
	}
	if c.FreqMHz() != 1512 {
		t.Fatalf("FreqMHz = %v want 1512", c.FreqMHz())
	}
}

func TestMaxLevelClampLowersCurrentLevel(t *testing.T) {
	c := MustNew(Nexus4Config())
	c.SetLevel(11)
	c.SetMaxLevel(4)
	if c.Level() != 4 {
		t.Fatalf("clamp should drag current level down, got %d", c.Level())
	}
	if got := c.SetLevel(10); got != 4 {
		t.Fatalf("SetLevel above clamp applied %d want 4", got)
	}
	c.ClearMaxLevel()
	if got := c.SetLevel(10); got != 10 {
		t.Fatalf("after ClearMaxLevel SetLevel applied %d want 10", got)
	}
}

func TestSetMaxLevelSaturates(t *testing.T) {
	c := MustNew(Nexus4Config())
	c.SetMaxLevel(-5)
	if c.MaxLevel() != 0 {
		t.Fatalf("MaxLevel = %d want 0", c.MaxLevel())
	}
	c.SetMaxLevel(100)
	if c.MaxLevel() != 11 {
		t.Fatalf("MaxLevel = %d want 11", c.MaxLevel())
	}
}

func TestLevelForFreq(t *testing.T) {
	c := MustNew(Nexus4Config())
	cases := []struct {
		mhz  float64
		want int
	}{
		{0, 0}, {384, 0}, {385, 1}, {486, 1}, {1000, 6}, {1512, 11}, {9999, 11},
	}
	for _, tc := range cases {
		if got := c.LevelForFreq(tc.mhz); got != tc.want {
			t.Fatalf("LevelForFreq(%v) = %d want %d", tc.mhz, got, tc.want)
		}
	}
}

func TestCapacityScalesWithFreqAndCores(t *testing.T) {
	c := MustNew(Nexus4Config())
	c.SetLevel(0)
	if got := c.CapacityMHz(); got != 384*4 {
		t.Fatalf("capacity at L0 = %v want %v", got, 384*4)
	}
	c.SetLevel(11)
	if got := c.CapacityMHz(); got != 1512*4 {
		t.Fatalf("capacity at L11 = %v want %v", got, 1512*4)
	}
	if c.MaxCapacityMHz() != 1512*4 {
		t.Fatalf("MaxCapacityMHz = %v", c.MaxCapacityMHz())
	}
	if c.CapacityAtLevelMHz(3) != 702*4 {
		t.Fatalf("CapacityAtLevelMHz(3) = %v", c.CapacityAtLevelMHz(3))
	}
}

func TestDynamicPowerCalibration(t *testing.T) {
	c := MustNew(Nexus4Config())
	c.SetLevel(11)
	p := c.DynamicPower(1)
	if p < 2.8 || p > 3.6 {
		t.Fatalf("full-load dynamic power = %.2f W, want ≈3.2", p)
	}
	if got := c.DynamicPower(0); got != 0 {
		t.Fatalf("zero-util dynamic power = %v want 0", got)
	}
	if got := c.DynamicPower(0.5); math.Abs(got-p/2) > 1e-9 {
		t.Fatalf("dynamic power must be linear in util: %v vs %v", got, p/2)
	}
}

func TestDynamicPowerUtilClamped(t *testing.T) {
	c := MustNew(Nexus4Config())
	c.SetLevel(5)
	if c.DynamicPower(2) != c.DynamicPower(1) {
		t.Fatal("util > 1 must clamp")
	}
	if c.DynamicPower(-1) != 0 {
		t.Fatal("util < 0 must clamp to 0")
	}
}

func TestDynamicPowerMonotoneInLevel(t *testing.T) {
	c := MustNew(Nexus4Config())
	prev := -1.0
	for l := 0; l < c.NumLevels(); l++ {
		c.SetLevel(l)
		p := c.DynamicPower(1)
		if p <= prev {
			t.Fatalf("dynamic power not increasing at level %d: %v <= %v", l, p, prev)
		}
		prev = p
	}
}

func TestLeakageDoublesPerConfiguredDelta(t *testing.T) {
	c := MustNew(Nexus4Config())
	c.SetLevel(11)
	l25 := c.LeakagePower(25)
	l50 := c.LeakagePower(50)
	if math.Abs(l50/l25-2) > 1e-9 {
		t.Fatalf("leakage at +25 °C should double: %v -> %v", l25, l50)
	}
	if math.Abs(l25-0.15) > 1e-9 {
		t.Fatalf("reference leakage = %v want 0.15", l25)
	}
}

func TestLeakageLowerAtLowerVoltage(t *testing.T) {
	c := MustNew(Nexus4Config())
	c.SetLevel(11)
	top := c.LeakagePower(60)
	c.SetLevel(0)
	bottom := c.LeakagePower(60)
	if bottom >= top {
		t.Fatalf("leakage at 0.95 V (%v) should be below 1.25 V (%v)", bottom, top)
	}
}

func TestTotalPowerIncludesIdleFloor(t *testing.T) {
	c := MustNew(Nexus4Config())
	c.SetLevel(0)
	p := c.Power(0, 25)
	if p <= 0 {
		t.Fatal("idle power must be positive")
	}
	floor := c.Config().IdleWatts
	if p < floor {
		t.Fatalf("total power %v below idle floor %v", p, floor)
	}
}

func TestGPUPower(t *testing.T) {
	c := MustNew(Nexus4Config())
	if c.GPUPower(0) != 0 {
		t.Fatal("GPU idle power must be 0")
	}
	if got := c.GPUPower(1); got != c.Config().GPUMaxWatts {
		t.Fatalf("GPU full power = %v want %v", got, c.Config().GPUMaxWatts)
	}
	if c.GPUPower(2) != c.GPUPower(1) || c.GPUPower(-1) != 0 {
		t.Fatal("GPU load must clamp to [0,1]")
	}
}

// Property: power is monotone non-decreasing in utilization at any level and
// temperature.
func TestPowerMonotoneInUtilProperty(t *testing.T) {
	c := MustNew(Nexus4Config())
	f := func(rawLevel int, u1, u2, temp float64) bool {
		lvl := ((rawLevel % 12) + 12) % 12
		c.SetMaxLevel(11)
		c.SetLevel(lvl)
		a, b := math.Mod(math.Abs(u1), 1), math.Mod(math.Abs(u2), 1)
		if a > b {
			a, b = b, a
		}
		tc := 20 + math.Mod(math.Abs(temp), 80)
		return c.Power(a, tc) <= c.Power(b, tc)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the level actually applied never exceeds the clamp.
func TestClampInvariantProperty(t *testing.T) {
	c := MustNew(Nexus4Config())
	f := func(clamp, req int) bool {
		c.SetMaxLevel(clamp)
		applied := c.SetLevel(req)
		return applied <= c.MaxLevel() && applied >= 0 && applied < c.NumLevels()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExp2FastAccuracy(t *testing.T) {
	for x := -16.0; x <= 16.0; x += 0.0137 {
		want := math.Exp2(x)
		got := exp2fast(x)
		if rel := math.Abs(got-want) / want; rel > 1e-9 {
			t.Fatalf("exp2fast(%v) = %v want %v (rel err %.2e)", x, got, want, rel)
		}
	}
	// Out-of-range inputs must fall back to the library implementation.
	if got := exp2fast(40); got != math.Exp2(40) {
		t.Fatalf("fallback broken: %v", got)
	}
	if got := exp2fast(-40); got != math.Exp2(-40) {
		t.Fatalf("fallback broken: %v", got)
	}
}
