package sensors

import (
	"math"
	"math/rand"
	"testing"
)

// TestLegacyStreamReproducible pins the compat shim: a NoiseVersionLegacy
// sensor must consume exactly the math/rand stream the pre-versioning code
// consumed, so every committed golden stays valid.
func TestLegacyStreamReproducible(t *testing.T) {
	const seed = 421
	s := NewSensorV(0, 1.0, 0, seed, NoiseVersionLegacy) // no quant, unit noise, no lag
	ref := rand.New(rand.NewSource(seed))
	s.Advance(10, 0.05)
	for i := 0; i < 50; i++ {
		want := 10 + ref.NormFloat64()
		if got := s.Sample(); got != want {
			t.Fatalf("draw %d: legacy sensor %v, raw math/rand %v", i, got, want)
		}
	}
	// Reseed restores the exact just-constructed stream.
	s.Reseed(seed)
	ref2 := rand.New(rand.NewSource(seed))
	s.Advance(10, 0.05)
	for i := 0; i < 10; i++ {
		if got, want := s.Sample(), 10+ref2.NormFloat64(); got != want {
			t.Fatalf("post-reseed draw %d: %v != %v", i, got, want)
		}
	}
}

// TestCounterStreamDeterministic pins the counter stream identity: equal
// seeds give equal sequences, Seed is a full restart, and distinct seeds
// decorrelate.
func TestCounterStreamDeterministic(t *testing.T) {
	a, b := NewCounterStream(7), NewCounterStream(7)
	seq := make([]float64, 64)
	for i := range seq {
		seq[i] = a.NormFloat64()
		if got := b.NormFloat64(); got != seq[i] {
			t.Fatalf("draw %d diverged: %v vs %v", i, got, seq[i])
		}
	}
	a.Seed(7)
	for i := range seq {
		if got := a.NormFloat64(); got != seq[i] {
			t.Fatalf("post-Seed draw %d: %v, want %v", i, got, seq[i])
		}
	}
	c := NewCounterStream(8)
	same := 0
	for i := range seq {
		if c.NormFloat64() == seq[i] {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("seed 8 repeated %d draws of seed 7", same)
	}
}

// TestCounterStreamSeek pins position seeking at both spare parities —
// the property replay/checkpointing builds on.
func TestCounterStreamSeek(t *testing.T) {
	s := NewCounterStream(99)
	var draws []float64
	var poss []uint64
	for i := 0; i < 21; i++ {
		poss = append(poss, s.Pos())
		draws = append(draws, s.NormFloat64())
	}
	for i, pos := range poss {
		r := NewCounterStream(99)
		r.Seek(pos)
		for j := i; j < len(draws); j++ {
			if got := r.NormFloat64(); got != draws[j] {
				t.Fatalf("seek to pos[%d]=%d: draw %d = %v, want %v", i, pos, j, got, draws[j])
			}
		}
	}
}

// TestCounterStreamMoments sanity-checks the Box-Muller output: mean ~0,
// variance ~1, all values finite.
func TestCounterStreamMoments(t *testing.T) {
	s := NewCounterStream(3)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("draw %d not finite: %v", i, v)
		}
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 || math.Abs(variance-1) > 0.02 {
		t.Fatalf("mean %v variance %v, want ~0 / ~1", mean, variance)
	}
}

// TestCounterSensorDeterministic pins the versioned constructor: two
// NoiseVersionCounter sensors with one seed agree sample for sample, and
// Reseed restarts the stream exactly.
func TestCounterSensorDeterministic(t *testing.T) {
	mk := func() *Sensor { return BuiltinTempSensorV(11, NoiseVersionCounter) }
	a, b := mk(), mk()
	a.Advance(35, 0.05)
	b.Advance(35, 0.05)
	var first []float64
	for i := 0; i < 20; i++ {
		v := a.Sample()
		if w := b.Sample(); w != v {
			t.Fatalf("sample %d diverged: %v vs %v", i, v, w)
		}
		first = append(first, v)
	}
	a.Reseed(11)
	a.Advance(35, 0.05)
	for i := 0; i < 20; i++ {
		if got := a.Sample(); got != first[i] {
			t.Fatalf("post-Reseed sample %d: %v, want %v", i, got, first[i])
		}
	}
}

// TestObserveHeldMatchesObserve pins the event engine's logger contract:
// feeding non-emitting ticks through ObserveHeld and emitting ticks
// through Observe produces records bit-identical to feeding every tick
// through Observe.
func TestObserveHeldMatchesObserve(t *testing.T) {
	const dt = 0.05
	mkSensors := func() (cpu, bat, skin, screen *Sensor) {
		return BuiltinTempSensor(1), BuiltinTempSensor(2), Thermistor(3), Thermistor(4)
	}
	temp := func(k int) float64 { return 30 + 0.01*float64(k) }

	oracle := NewLogger(1.0)
	oc, ob, os, osc := mkSensors()
	held := NewLogger(1.0)
	hc, hb, hs, hsc := mkSensors()

	for k := 1; k <= 200; k++ {
		tm := float64(k) * dt
		util := 0.5 + 0.001*float64(k%7)
		freq := 1000 + float64(k%5)
		tc := temp(k)
		oc.Advance(tc, dt)
		ob.Advance(tc+1, dt)
		os.Advance(tc+2, dt)
		osc.Advance(tc+3, dt)
		oracle.Observe(tm, util, freq, oc, ob, os, osc)

		hc.Advance(tc, dt)
		hb.Advance(tc+1, dt)
		hs.Advance(tc+2, dt)
		hsc.Advance(tc+3, dt)
		if held.WouldEmit(tm) || !heldStarted(held) {
			held.Observe(tm, util, freq, hc, hb, hs, hsc)
		} else {
			held.ObserveHeld(tm, util, freq)
		}
	}
	or, hr := oracle.Records(), held.Records()
	if len(or) == 0 || len(or) != len(hr) {
		t.Fatalf("record counts: oracle %d, held %d", len(or), len(hr))
	}
	for i := range or {
		if or[i] != hr[i] {
			t.Fatalf("record %d diverged:\noracle %+v\nheld   %+v", i, or[i], hr[i])
		}
	}
}

// heldStarted mirrors the engine's "first tick is canonical" rule: before
// the logger has started, route through Observe so the window opens the
// same way. (ObserveHeld opens it identically; this just keeps the test's
// routing faithful to the engine.)
func heldStarted(l *Logger) bool { return l.started }

// TestSensorAlphaAccessors pins the externally-integrated-lag contract:
// Alpha returns the exact coefficient Advance uses, and
// LagState/SetLagState round-trip the recurrence.
func TestSensorAlphaAccessors(t *testing.T) {
	const dt = 0.05
	s := BuiltinTempSensor(5)
	s.Advance(30, dt) // primes: state = 30
	alpha := s.Alpha(dt)
	if want := 1 - math.Exp(-dt/s.LagTau); alpha != want {
		t.Fatalf("Alpha(%v) = %v, want %v", dt, alpha, want)
	}
	ref := BuiltinTempSensor(5)
	ref.Advance(30, dt)
	ext := s.LagState()
	for k := 0; k < 40; k++ {
		tc := 31 + 0.1*float64(k)
		ref.Advance(tc, dt)
		ext += alpha * (tc - ext)
	}
	s.SetLagState(ext)
	if got, want := s.LagState(), ref.LagState(); got != want {
		t.Fatalf("external recurrence %v != Advance %v", got, want)
	}
	// Degenerate lags report alpha 1 (state tracks input exactly).
	d := NewSensor(0, 0, 0, 1)
	if got := d.Alpha(dt); got != 1 {
		t.Fatalf("degenerate Alpha = %v, want 1", got)
	}
}
