package sensors

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSensorPrimesOnFirstRead(t *testing.T) {
	s := NewSensor(0, 0, 10, 1)
	if got := s.Read(40, 0.1); got != 40 {
		t.Fatalf("first read = %v want 40 (primed)", got)
	}
}

func TestSensorLagApproachesTrueValue(t *testing.T) {
	s := NewSensor(0, 0, 2.0, 1)
	s.Read(20, 0.1) // prime at 20
	var v float64
	for i := 0; i < 100; i++ { // 10 s at dt=0.1 with tau=2
		v = s.Read(40, 0.1)
	}
	if math.Abs(v-40) > 0.5 {
		t.Fatalf("after 5 tau reading = %v want ≈40", v)
	}
}

func TestSensorLagIsFirstOrder(t *testing.T) {
	s := NewSensor(0, 0, 2.0, 1)
	s.Read(0, 0.1) // prime at 0
	var v float64
	for i := 0; i < 20; i++ { // exactly one tau (2 s)
		v = s.Read(10, 0.1)
	}
	want := 10 * (1 - math.Exp(-1))
	if math.Abs(v-want) > 0.1 {
		t.Fatalf("after one tau = %v want %v", v, want)
	}
}

func TestSensorQuantization(t *testing.T) {
	s := NewSensor(0.1, 0, 0, 1)
	got := s.Read(36.34999, 1)
	if math.Abs(got-36.3) > 1e-9 {
		t.Fatalf("quantized read = %v want 36.3", got)
	}
	got = s.Read(36.35001, 1)
	if math.Abs(got-36.4) > 1e-9 {
		t.Fatalf("quantized read = %v want 36.4", got)
	}
}

func TestSensorNoiseIsDeterministicPerSeed(t *testing.T) {
	a := NewSensor(0, 0.2, 0, 42)
	b := NewSensor(0, 0.2, 0, 42)
	for i := 0; i < 10; i++ {
		if a.Read(30, 1) != b.Read(30, 1) {
			t.Fatal("same-seed sensors diverged")
		}
	}
	c := NewSensor(0, 0.2, 0, 43)
	diff := false
	for i := 0; i < 10; i++ {
		if a.Read(30, 1) != c.Read(30, 1) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestSensorNoiseStatistics(t *testing.T) {
	s := NewSensor(0, 0.15, 0, 7)
	var sum, sumSq float64
	n := 20000
	for i := 0; i < n; i++ {
		v := s.Read(35, 1) - 35
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.01 {
		t.Fatalf("noise mean = %v want ≈0", mean)
	}
	if math.Abs(std-0.15) > 0.01 {
		t.Fatalf("noise std = %v want ≈0.15", std)
	}
}

func TestSensorReset(t *testing.T) {
	s := NewSensor(0, 0, 5, 1)
	s.Read(10, 1)
	s.Read(50, 1) // lagging well below 50
	s.Reset()
	if got := s.Read(50, 1); got != 50 {
		t.Fatalf("after Reset first read = %v want 50", got)
	}
}

func TestBuiltinAndThermistorPresets(t *testing.T) {
	b := BuiltinTempSensor(1)
	th := Thermistor(2)
	if b.QuantC <= th.QuantC {
		t.Fatal("builtin sensor should be coarser than a thermistor")
	}
	if b.NoiseStd <= th.NoiseStd {
		t.Fatal("builtin sensor should be noisier than a thermistor")
	}
}

func TestRecordFeatures(t *testing.T) {
	r := Record{CPUTempC: 55, BatteryTempC: 33, Util: 0.7, FreqMHz: 1134}
	f := r.Features()
	want := []float64{55, 33, 0.7, 1134}
	if len(f) != len(FeatureNames) {
		t.Fatalf("feature count %d != name count %d", len(f), len(FeatureNames))
	}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("feature[%d] = %v want %v", i, f[i], want[i])
		}
	}
}

// fixedSensor returns an ideal sensor pinned at v, for logger tests.
func fixedSensor(v float64) *Sensor {
	s := NewSensor(0, 0, 0, 1)
	s.Advance(v, 1)
	return s
}

func TestLoggerEmitsAtPeriod(t *testing.T) {
	l := NewLogger(1.0)
	cpu, bat, skin, screen := fixedSensor(50), fixedSensor(32), fixedSensor(38), fixedSensor(36)
	dt := 0.1
	for i := 0; i <= 50; i++ {
		tt := float64(i) * dt
		l.Observe(tt, 0.5, 1000, cpu, bat, skin, screen)
	}
	recs := l.Records()
	if len(recs) < 4 || len(recs) > 6 {
		t.Fatalf("5 s at 1 Hz logging should yield ~5 records, got %d", len(recs))
	}
	if recs[0].CPUTempC != 50 || recs[0].ScreenTempC != 36 {
		t.Fatalf("record did not sample the sensors: %+v", recs[0])
	}
}

func TestLoggerRetainLatestOnly(t *testing.T) {
	l := NewLogger(1.0)
	l.SetRetainLatestOnly(true)
	cpu, bat, skin, screen := fixedSensor(50), fixedSensor(32), fixedSensor(38), fixedSensor(36)
	for i := 0; i <= 100; i++ {
		l.Observe(float64(i)*0.1, 0.5, 1000, cpu, bat, skin, screen)
	}
	if got := len(l.Records()); got != 1 {
		t.Fatalf("retain-latest logger kept %d records, want 1", got)
	}
	rec, ok := l.Latest()
	if !ok || rec.TimeSec < 9 {
		t.Fatalf("Latest should be the final window, got %+v ok=%v", rec, ok)
	}
}

func TestLoggerAveragesWindow(t *testing.T) {
	l := NewLogger(1.0)
	cpu, bat, skin, screen := fixedSensor(50), fixedSensor(32), fixedSensor(38), fixedSensor(36)
	// Ten samples of alternating utilization 0.2/0.8 average to 0.5.
	for i := 0; i <= 10; i++ {
		u := 0.2
		if i%2 == 1 {
			u = 0.8
		}
		l.Observe(float64(i)*0.1, u, 1000, cpu, bat, skin, screen)
	}
	rec, ok := l.Latest()
	if !ok {
		t.Fatal("no record emitted")
	}
	if math.Abs(rec.Util-0.5) > 0.06 {
		t.Fatalf("window-averaged util = %v want ≈0.5", rec.Util)
	}
}

func TestLoggerLatestEmpty(t *testing.T) {
	l := NewLogger(1.0)
	if _, ok := l.Latest(); ok {
		t.Fatal("Latest on empty logger must report false")
	}
}

func TestLoggerReset(t *testing.T) {
	l := NewLogger(1.0)
	cpu, bat, skin, screen := fixedSensor(50), fixedSensor(32), fixedSensor(38), fixedSensor(36)
	for i := 0; i <= 20; i++ {
		l.Observe(float64(i)*0.1, 0.5, 1000, cpu, bat, skin, screen)
	}
	l.Reset()
	if len(l.Records()) != 0 {
		t.Fatal("Reset did not clear records")
	}
}

func TestLoggerDefaultPeriod(t *testing.T) {
	l := NewLogger(0)
	if l.PeriodSec != 1 {
		t.Fatalf("default period = %v want 1", l.PeriodSec)
	}
}

// Property: a noiseless, unquantized, lag-free sensor is the identity.
func TestIdentitySensorProperty(t *testing.T) {
	s := NewSensor(0, 0, 0, 1)
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		return s.Read(v, 1) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantized readings are always integer multiples of the step.
func TestQuantizationGridProperty(t *testing.T) {
	s := NewSensor(0.1, 0, 0, 1)
	f := func(raw float64) bool {
		v := math.Mod(math.Abs(raw), 100)
		got := s.Read(v, 1)
		_, frac := math.Modf(math.Abs(got) / 0.1)
		return frac < 1e-6 || frac > 1-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRetainLatestTrimsExistingHistory(t *testing.T) {
	l := NewLogger(1.0)
	cpu, bat, skin, screen := fixedSensor(50), fixedSensor(32), fixedSensor(38), fixedSensor(36)
	for i := 0; i <= 50; i++ {
		l.Observe(float64(i)*0.1, 0.5, 1000, cpu, bat, skin, screen)
	}
	if len(l.Records()) < 2 {
		t.Fatal("setup: expected history")
	}
	last, _ := l.Latest()
	l.SetRetainLatestOnly(true)
	if got := len(l.Records()); got != 1 {
		t.Fatalf("enable did not trim history: %d records", got)
	}
	if rec, _ := l.Latest(); rec != last {
		t.Fatalf("trim kept %+v, want the latest record %+v", rec, last)
	}
	// New windows must keep flowing into Latest after the toggle.
	for i := 51; i <= 80; i++ {
		l.Observe(float64(i)*0.1, 0.9, 1500, cpu, bat, skin, screen)
	}
	rec, _ := l.Latest()
	if rec.TimeSec <= last.TimeSec || len(l.Records()) != 1 {
		t.Fatalf("Latest frozen after toggle: %+v", rec)
	}
}
