// Package sensors models the measurement chain of the instrumented phone:
// the built-in CPU and battery temperature sensors the predictor reads at
// run time, the external thermistors that supplied ground-truth skin and
// screen temperatures during training, and the periodic logging application
// that assembles the paper's feature tuple {CPU temperature, battery
// temperature, CPU utilization, CPU frequency}.
//
// Real packaged sensors differ from the physical node temperature in three
// ways that matter to the learned predictor: first-order thermal lag,
// additive noise, and ADC quantization. All three are modelled and seeded.
package sensors

import (
	"math"
	"math/rand"
)

// Stream is the Gaussian noise source behind a Sensor. Two
// implementations exist: the legacy *math/rand.Rand (NoiseVersionLegacy —
// the stream every committed golden was recorded against) and the
// counter-based CounterStream (NoiseVersionCounter — O(1) seeding and
// position seeking, the stream replay/checkpointing and the event engine
// version against). Both are deterministic functions of their seed.
type Stream interface {
	NormFloat64() float64
	Seed(seed int64)
}

// Noise stream versions for the versioned constructors. The version is
// part of an experiment's reproducibility contract: changing it changes
// every sampled reading, so it is carried explicitly (device.Config)
// rather than flipped globally.
const (
	// NoiseVersionLegacy is math/rand.Rand — bit-compatible with every
	// result recorded before versioning existed.
	NoiseVersionLegacy = 0
	// NoiseVersionCounter is the splitmix64 counter stream.
	NoiseVersionCounter = 1
)

// Sensor converts a physical node temperature into a measured reading.
type Sensor struct {
	// QuantC is the quantization step in °C (0 disables quantization).
	QuantC float64
	// NoiseStd is the standard deviation of additive Gaussian noise in °C.
	NoiseStd float64
	// LagTau is the first-order lag time constant in seconds (0 = no lag).
	LagTau float64

	rng    Stream
	state  float64
	primed bool

	// alphaDt/alpha cache the lag coefficient 1−e^(−dt/τ) for the last dt,
	// so fixed-step simulations do not pay a math.Exp per tick.
	alphaDt float64
	alpha   float64
}

// NewSensor creates a sensor with the given quantization, noise, and lag,
// using the legacy deterministic noise stream derived from seed.
func NewSensor(quantC, noiseStd, lagTau float64, seed int64) *Sensor {
	return NewSensorV(quantC, noiseStd, lagTau, seed, NoiseVersionLegacy)
}

// NewSensorV is NewSensor with an explicit noise stream version.
func NewSensorV(quantC, noiseStd, lagTau float64, seed int64, version int) *Sensor {
	// alphaDt = -1 guarantees the cached-coefficient fast path can only
	// match real (positive) step sizes.
	return &Sensor{QuantC: quantC, NoiseStd: noiseStd, LagTau: lagTau, alphaDt: -1, rng: newStream(seed, version)}
}

// newStream builds the noise stream for a version; unknown versions take
// the newest stream (forward compatibility for configs written later).
func newStream(seed int64, version int) Stream {
	if version == NoiseVersionLegacy {
		return rand.New(rand.NewSource(seed))
	}
	return NewCounterStream(seed)
}

// BuiltinTempSensor returns the model of an on-SoC/battery temperature
// sensor: 0.1 °C quantization, mild noise, ~2 s lag.
func BuiltinTempSensor(seed int64) *Sensor { return NewSensor(0.1, 0.15, 2.0, seed) }

// BuiltinTempSensorV is BuiltinTempSensor with an explicit noise version.
func BuiltinTempSensorV(seed int64, version int) *Sensor {
	return NewSensorV(0.1, 0.15, 2.0, seed, version)
}

// Thermistor returns the model of an attached external thermistor used to
// collect training labels: fine quantization, low noise, ~1 s lag from the
// adhesive pad.
func Thermistor(seed int64) *Sensor { return NewSensor(0.02, 0.05, 1.0, seed) }

// ThermistorV is Thermistor with an explicit noise version.
func ThermistorV(seed int64, version int) *Sensor {
	return NewSensorV(0.02, 0.05, 1.0, seed, version)
}

// Advance propagates the first-order lag by dt seconds with the physical
// temperature trueC. No measurement is taken — pair with Sample, which
// models the ADC conversion. Splitting the two matches the real chain (the
// package lags continuously; the logging app converts once per log line)
// and keeps the per-simulation-tick cost to one multiply-add.
func (s *Sensor) Advance(trueC, dt float64) {
	if s.primed && dt == s.alphaDt {
		// Fast path for fixed-step callers: the coefficient is cached and
		// this body is small enough to inline into the simulation tick.
		s.state += s.alpha * (trueC - s.state)
		return
	}
	s.advanceSlow(trueC, dt)
}

// advanceSlow handles priming, degenerate lags, and dt changes.
func (s *Sensor) advanceSlow(trueC, dt float64) {
	if !s.primed {
		s.state = trueC
		s.primed = true
		// Prime the coefficient cache so the next call takes the fast path.
		if s.LagTau > 0 && dt > 0 {
			s.alphaDt = dt
			s.alpha = 1 - math.Exp(-dt/s.LagTau)
		}
		return
	}
	if s.LagTau <= 0 || dt <= 0 {
		// Degenerate lag or step: the reading tracks the input exactly. The
		// cache is left untouched (it only ever holds positive steps).
		s.state = trueC
		return
	}
	s.alphaDt = dt
	s.alpha = 1 - math.Exp(-dt/s.LagTau)
	s.state += s.alpha * (trueC - s.state)
}

// Sample converts the current lagged temperature into a measured value:
// additive Gaussian noise, then ADC quantization.
func (s *Sensor) Sample() float64 {
	v := s.state
	if s.NoiseStd > 0 {
		v += s.rng.NormFloat64() * s.NoiseStd
	}
	if s.QuantC > 0 {
		v = math.Round(v/s.QuantC) * s.QuantC
	}
	return v
}

// Read advances the sensor by dt seconds with the physical temperature
// trueC and returns the measured value (Advance + Sample).
func (s *Sensor) Read(trueC, dt float64) float64 {
	s.Advance(trueC, dt)
	return s.Sample()
}

// Reset clears the lag state so the next Read primes from the physical
// temperature.
func (s *Sensor) Reset() { s.primed = false }

// Reseed restores the sensor to its just-constructed state under a new
// noise seed: lag state and coefficient cache cleared, RNG reseeded. A
// reseeded sensor produces the exact reading stream a NewSensor with the
// same parameters and seed would — device.Phone.Reset (the fleet's phone
// pool) relies on that.
func (s *Sensor) Reseed(seed int64) {
	s.rng.Seed(seed)
	s.primed = false
	s.state = 0
	s.alphaDt = -1
	s.alpha = 0
}

// Alpha returns the lag coefficient 1−e^(−dt/τ) the sensor applies per
// Advance at step dt (1 for degenerate lags or steps, where the reading
// tracks the input exactly). It uses — and primes — the same coefficient
// cache as Advance, so the value is bitwise the one Advance multiplies by.
func (s *Sensor) Alpha(dt float64) float64 {
	if s.LagTau <= 0 || dt <= 0 {
		return 1
	}
	if dt != s.alphaDt {
		s.alphaDt = dt
		s.alpha = 1 - math.Exp(-dt/s.LagTau)
	}
	return s.alpha
}

// LagState returns the current lagged temperature (the value Sample adds
// noise to). Only meaningful once primed.
func (s *Sensor) LagState() float64 { return s.state }

// SetLagState overwrites the lagged temperature — the write-back half of
// an externally integrated lag (the event engine folds the lag recurrence
// into its jump matrix and stores the result here).
func (s *Sensor) SetLagState(v float64) { s.state = v }

// Primed reports whether the sensor has seen its first Advance.
func (s *Sensor) Primed() bool { return s.primed }

// Record is one line of the logging application: the observables available
// on a stock phone plus, during training runs, the thermistor ground truth.
type Record struct {
	TimeSec float64
	// On-device observables (model features).
	CPUTempC     float64
	BatteryTempC float64
	Util         float64 // average utilization over the logging window
	FreqMHz      float64 // average frequency over the logging window
	// Thermistor ground truth (model labels; NaN when thermistors absent).
	SkinTempC   float64
	ScreenTempC float64
}

// Features returns the paper's feature vector in canonical order:
// CPU temperature, battery temperature, utilization, frequency.
func (r Record) Features() []float64 {
	return []float64{r.CPUTempC, r.BatteryTempC, r.Util, r.FreqMHz}
}

// FeatureNames lists the canonical feature order used across the
// reproduction.
var FeatureNames = []string{"cpu_temp_c", "battery_temp_c", "cpu_util", "cpu_freq_mhz"}

// Logger accumulates Records at a fixed period, averaging utilization and
// frequency over each window the way the paper's logging app does.
type Logger struct {
	// PeriodSec is the logging period (the paper logs every second).
	PeriodSec float64

	records []Record

	winStart     float64
	utilSum      float64
	freqSum      float64
	winSamples   int
	started      bool
	retainLatest bool
}

// NewLogger creates a logger with the given period in seconds.
func NewLogger(periodSec float64) *Logger {
	if periodSec <= 0 {
		periodSec = 1
	}
	return &Logger{PeriodSec: periodSec}
}

// SetRetainLatestOnly switches the logger to keep only the most recent
// record instead of the full history. LatestRecord consumers (the run-time
// predictor) are unaffected; Records returns at most one entry — any
// history already accumulated is trimmed to its latest record on enable.
// Intended for trace-free fleet runs where per-second history would
// dominate memory.
func (l *Logger) SetRetainLatestOnly(on bool) {
	l.retainLatest = on
	if on && len(l.records) > 1 {
		l.records[0] = l.records[len(l.records)-1]
		l.records = l.records[:1]
	}
}

// Observe feeds one simulation step into the logger. util and freqMHz are
// accumulated; when a logging window closes, a Record is emitted by
// sampling the four attached sensors — the ADC conversion (noise +
// quantization) happens once per log line, exactly like the real logging
// app, so ticks inside a window cost only the accumulation.
func (l *Logger) Observe(t, util, freqMHz float64, cpu, bat, skin, screen *Sensor) {
	if !l.started {
		l.started = true
		l.winStart = t
	}
	l.utilSum += util
	l.freqSum += freqMHz
	l.winSamples++
	if t-l.winStart+1e-9 >= l.PeriodSec {
		rec := Record{
			TimeSec:      t,
			CPUTempC:     cpu.Sample(),
			BatteryTempC: bat.Sample(),
			Util:         l.utilSum / float64(l.winSamples),
			FreqMHz:      l.freqSum / float64(l.winSamples),
			SkinTempC:    skin.Sample(),
			ScreenTempC:  screen.Sample(),
		}
		if n := len(l.records); l.retainLatest && n > 0 {
			l.records[n-1] = rec // invariant: n == 1 while retaining latest
		} else {
			l.records = append(l.records, rec)
		}
		l.winStart = t
		l.utilSum, l.freqSum, l.winSamples = 0, 0, 0
	}
}

// ObserveHeld accumulates one simulation step into the current logging
// window without the emission check. The event engine replays folded
// (held-input) ticks through it — one float add per accumulator, the
// identical adds Observe performs — and routes every tick that WouldEmit
// through the full Observe, so window sums, sample counts and therefore
// the averages in every emitted Record stay bit-identical to a tick-by-
// tick run.
func (l *Logger) ObserveHeld(t, util, freqMHz float64) {
	if !l.started {
		l.started = true
		l.winStart = t
	}
	l.utilSum += util
	l.freqSum += freqMHz
	l.winSamples++
}

// WouldEmit reports whether an Observe at time t would close the current
// logging window and emit a Record. Emission samples the attached sensors
// (consuming noise-stream draws), so the event engine routes such ticks
// through its close-out path: it asks WouldEmit before folding a tick
// into the interior of a held segment.
func (l *Logger) WouldEmit(t float64) bool {
	return l.started && t-l.winStart+1e-9 >= l.PeriodSec
}

// EmitHeld closes the current logging window at time t when due, emitting
// a Record exactly as Observe's emission branch would — same sensor
// sampling order (same noise-stream draws), same averages from the
// accumulated sums. The event engine pairs it with ObserveHeld: folded
// ticks accumulate, the segment's physics jump advances the sensor lags,
// and the close-out tick emits from the jumped state. A no-op when the
// window is still open.
func (l *Logger) EmitHeld(t float64, cpu, bat, skin, screen *Sensor) {
	if !l.started || t-l.winStart+1e-9 < l.PeriodSec {
		return
	}
	rec := Record{
		TimeSec:      t,
		CPUTempC:     cpu.Sample(),
		BatteryTempC: bat.Sample(),
		Util:         l.utilSum / float64(l.winSamples),
		FreqMHz:      l.freqSum / float64(l.winSamples),
		SkinTempC:    skin.Sample(),
		ScreenTempC:  screen.Sample(),
	}
	if n := len(l.records); l.retainLatest && n > 0 {
		l.records[n-1] = rec // invariant: n == 1 while retaining latest
	} else {
		l.records = append(l.records, rec)
	}
	l.winStart = t
	l.utilSum, l.freqSum, l.winSamples = 0, 0, 0
}

// Records returns the accumulated log.
func (l *Logger) Records() []Record { return l.records }

// Latest returns the most recent record and whether one exists.
func (l *Logger) Latest() (Record, bool) {
	if len(l.records) == 0 {
		return Record{}, false
	}
	return l.records[len(l.records)-1], true
}

// Reset clears the log and windowing state.
func (l *Logger) Reset() {
	l.records = nil
	l.started = false
	l.utilSum, l.freqSum, l.winSamples = 0, 0, 0
}
