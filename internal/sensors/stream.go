package sensors

import "math"

// CounterStream is a counter-based Gaussian noise stream: raw word i is a
// pure function of (seed, i) — a finalized splitmix64 counter — and draws
// are ziggurat transforms of those words. Compared to the legacy
// math/rand stream it seeds in O(1) (no 607-word lagged-Fibonacci warmup —
// the reseed cost the fleet's phone pool pays per job) and supports
// position seeking, which is what makes noise reproducible under replay,
// checkpointing, and event-driven runs that need to consume exactly the
// draws a tick-by-tick run would have.
//
// The stream identity is (seed, position): two streams with equal seeds
// produce equal draw sequences regardless of how the draws are grouped
// across calls.
type CounterStream struct {
	key uint64
	ctr uint64
}

// NewCounterStream returns a stream for the given seed.
func NewCounterStream(seed int64) *CounterStream {
	return &CounterStream{key: splitmix64(uint64(seed))}
}

// splitmix64 is the 64-bit finalizer (same construction the workload and
// thermal packages use for value noise and fingerprints).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// next returns the next raw 64-bit word.
func (c *CounterStream) next() uint64 {
	c.ctr++
	return splitmix64(c.key ^ c.ctr*0x9e3779b97f4a7c15)
}

// Ziggurat tables for the standard normal (Marsaglia–Tsang, 128 strips),
// computed once at package init so the common draw path is one counter
// word, one table compare, and one multiply. The strip boundary r and the
// rectangle area are the canonical 128-strip constants.
const zigR = 3.442619855899

var (
	zigKn [128]uint32
	zigWn [128]float64
	zigFn [128]float64
)

func init() {
	const m1 = 1 << 31
	dn, tn, vn := zigR, zigR, 9.91256303526217e-3
	q := vn / math.Exp(-0.5*dn*dn)
	zigKn[0] = uint32(dn / q * m1)
	zigKn[1] = 0
	zigWn[0] = q / m1
	zigWn[127] = dn / m1
	zigFn[0] = 1
	zigFn[127] = math.Exp(-0.5 * dn * dn)
	for i := 126; i >= 1; i-- {
		dn = math.Sqrt(-2 * math.Log(vn/dn+math.Exp(-0.5*dn*dn)))
		zigKn[i+1] = uint32(dn / tn * m1)
		tn = dn
		zigFn[i] = math.Exp(-0.5 * dn * dn)
		zigWn[i] = dn / m1
	}
}

// uniOpen returns the next uniform in (0,1] (never zero, so logs stay
// finite); uniHalf returns the next uniform in [0,1).
func (c *CounterStream) uniOpen() float64 { return (float64(c.next()>>11) + 1) / (1 << 53) }
func (c *CounterStream) uniHalf() float64 { return float64(c.next()>>11) / (1 << 53) }

// NormFloat64 implements Stream: standard normal draws via the ziggurat.
// Word consumption per draw varies (one word on the ~99% fast path, more
// on edge/tail rejections), but it is a pure function of the stream
// position, so equal-seed streams stay in lockstep however their draws
// are grouped across calls.
func (c *CounterStream) NormFloat64() float64 {
	for {
		hz := int32(uint32(c.next()))
		iz := uint32(hz) & 127
		ahz := uint32(hz)
		if hz < 0 {
			ahz = uint32(-int64(hz))
		}
		if ahz < zigKn[iz] {
			return float64(hz) * zigWn[iz]
		}
		if iz == 0 {
			// Tail beyond r: Marsaglia's exponential wedge rejection.
			for {
				x := -math.Log(c.uniOpen()) / zigR
				y := -math.Log(c.uniOpen())
				if y+y >= x*x {
					if hz > 0 {
						return zigR + x
					}
					return -(zigR + x)
				}
			}
		}
		x := float64(hz) * zigWn[iz]
		if zigFn[iz]+c.uniHalf()*(zigFn[iz-1]-zigFn[iz]) < math.Exp(-0.5*x*x) {
			return x
		}
	}
}

// Seed implements Stream: restores the just-constructed state for seed.
// O(1), unlike math/rand's Seed.
func (c *CounterStream) Seed(seed int64) {
	c.key = splitmix64(uint64(seed))
	c.ctr = 0
}

// Pos returns the stream position (counter words consumed, shifted for
// compatibility with the historical spare-flag encoding) so that
// Seek(Pos()) is an exact resume point.
func (c *CounterStream) Pos() uint64 {
	return c.ctr << 1
}

// Seek repositions the stream to a position previously obtained from Pos
// on a stream with the same seed.
func (c *CounterStream) Seek(pos uint64) {
	c.ctr = pos >> 1
}
