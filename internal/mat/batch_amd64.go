//go:build amd64

package mat

// mulPair8SSE is the packed-double form of mulPair8Go: each xmm lane
// carries one column, every packed multiply/add applies the identical
// IEEE-754 double operation to both lanes in the exact per-column order
// of the scalar schedule, so results stay bit-for-bit equal to MulAddVec
// per column (TestMulPair8AsmMatchesGo pins it against the portable
// twin). Packing halves the arithmetic-port pressure the scalar kernel
// saturates. It uses MOVDDUP (SSE3) for coefficient broadcasts.
//
//go:noescape
func mulPair8SSE(a, b *[64]float64, u, v *[8]float64, sc0, sc1 float64,
	x0, y0, o0, x1, y1, o1 *[8]float64)

// sse3Supported reports MOVDDUP availability (CPUID.1:ECX bit 0). Every
// amd64 CPU since ~2004 has it; the check keeps the SSE2-only baseline
// honest.
func sse3Supported() bool

var useSSE3 = sse3Supported()

// mulPair8 dispatches to the packed kernel when the CPU supports it.
func mulPair8(a, b *[64]float64, u, v *[8]float64, sc0, sc1 float64,
	x0, y0, o0, x1, y1, o1 *[8]float64) {
	if useSSE3 {
		mulPair8SSE(a, b, u, v, sc0, sc1, x0, y0, o0, x1, y1, o1)
		return
	}
	mulPair8Go(a, b, u, v, sc0, sc1, x0, y0, o0, x1, y1, o1)
}
