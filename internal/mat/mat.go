// Package mat provides the small dense linear-algebra kernel used by the
// machine-learning regressors in this repository. It implements only what
// the regressors need — dense matrices, Gaussian elimination with partial
// pivoting, Cholesky factorization, and (ridge-regularized) least squares —
// with no external dependencies.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: dimension mismatch")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates an r×c zero matrix.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData wraps data (row-major, length r*c) in a Dense without copying.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns a*b as a new matrix.
func Mul(a, b *Dense) (*Dense, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: (%dx%d)*(%dx%d)", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += aik * brow[j]
			}
		}
	}
	return out, nil
}

// MulVec returns a*x as a new vector.
func MulVec(a *Dense, x []float64) ([]float64, error) {
	if a.cols != len(x) {
		return nil, fmt.Errorf("%w: (%dx%d)*vec(%d)", ErrShape, a.rows, a.cols, len(x))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// AtA returns aᵀa (the Gram matrix), exploiting symmetry.
func AtA(a *Dense) *Dense {
	out := NewDense(a.cols, a.cols)
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		for p := 0; p < a.cols; p++ {
			vp := row[p]
			if vp == 0 {
				continue
			}
			orow := out.Row(p)
			for q := p; q < a.cols; q++ {
				orow[q] += vp * row[q]
			}
		}
	}
	for p := 0; p < a.cols; p++ {
		for q := p + 1; q < a.cols; q++ {
			out.Set(q, p, out.At(p, q))
		}
	}
	return out
}

// AtVec returns aᵀy.
func AtVec(a *Dense, y []float64) ([]float64, error) {
	if a.rows != len(y) {
		return nil, fmt.Errorf("%w: (%dx%d)ᵀ*vec(%d)", ErrShape, a.rows, a.cols, len(y))
	}
	out := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		row := a.Row(i)
		for j, v := range row {
			out[j] += v * yi
		}
	}
	return out, nil
}

// Solve solves a*x = b for square a using Gaussian elimination with partial
// pivoting. a and b are not modified.
func Solve(a *Dense, b []float64) ([]float64, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: Solve needs a square matrix, got %dx%d", ErrShape, a.rows, a.cols)
	}
	if a.rows != len(b) {
		return nil, fmt.Errorf("%w: matrix %dx%d vs rhs %d", ErrShape, a.rows, a.cols, len(b))
	}
	n := a.rows
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot: largest |value| in this column at or below the diagonal.
		piv := col
		maxAbs := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > maxAbs {
				maxAbs, piv = v, r
			}
		}
		if maxAbs < 1e-300 {
			return nil, ErrSingular
		}
		if piv != col {
			pr, cr := m.Row(piv), m.Row(col)
			for j := col; j < n; j++ {
				pr[j], cr[j] = cr[j], pr[j]
			}
			x[piv], x[col] = x[col], x[piv]
		}
		d := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / d
			if f == 0 {
				continue
			}
			rr, cr := m.Row(r), m.Row(col)
			for j := col; j < n; j++ {
				rr[j] -= f * cr[j]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		row := m.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// Cholesky factors the symmetric positive-definite matrix a as LLᵀ and
// returns the lower-triangular factor L.
func Cholesky(a *Dense) (*Dense, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: Cholesky needs a square matrix", ErrShape)
	}
	n := a.rows
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			lrow, jrow := l.Row(i), l.Row(j)
			for k := 0; k < j; k++ {
				s -= lrow[k] * jrow[k]
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves a*x = b for SPD a via Cholesky factorization.
func SolveCholesky(a *Dense, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	if len(b) != n {
		return nil, ErrShape
	}
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Back: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min‖a·x − y‖² via the normal equations with ridge
// regularization λ ≥ 0 on the Gram matrix diagonal. If the regularized
// system is still singular, λ is increased geometrically until it is
// solvable (matching WEKA's LinearRegression fallback behaviour).
func LeastSquares(a *Dense, y []float64, lambda float64) ([]float64, error) {
	if a.rows != len(y) {
		return nil, fmt.Errorf("%w: design %dx%d vs target %d", ErrShape, a.rows, a.cols, len(y))
	}
	gram := AtA(a)
	rhs, err := AtVec(a, y)
	if err != nil {
		return nil, err
	}
	if lambda < 0 {
		lambda = 0
	}
	ridge := lambda
	for attempt := 0; attempt < 20; attempt++ {
		g := gram.Clone()
		for i := 0; i < g.rows; i++ {
			g.Set(i, i, g.At(i, i)+ridge)
		}
		x, err := SolveCholesky(g, rhs)
		if err == nil {
			return x, nil
		}
		if ridge == 0 {
			ridge = 1e-8
		} else {
			ridge *= 10
		}
	}
	return nil, ErrSingular
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than one
// element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
