package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestExpIdentityAndZero(t *testing.T) {
	z := NewDense(3, 3)
	e, err := Exp(z)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(e.At(i, j)-want) > 1e-15 {
				t.Fatalf("exp(0)[%d][%d] = %v want %v", i, j, e.At(i, j), want)
			}
		}
	}
}

func TestExpDiagonal(t *testing.T) {
	d := NewDense(3, 3)
	vals := []float64{-2.5, 0.3, 1.7}
	for i, v := range vals {
		d.Set(i, i, v)
	}
	e, err := Exp(d)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if math.Abs(e.At(i, i)-math.Exp(v)) > 1e-12*math.Exp(v) {
			t.Fatalf("exp(diag)[%d] = %v want %v", i, e.At(i, i), math.Exp(v))
		}
	}
}

func TestExpNilpotent(t *testing.T) {
	// For strictly upper-triangular N with N² = 0: exp(N) = I + N.
	m := NewDense(2, 2)
	m.Set(0, 1, 3.25)
	e, err := Exp(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.At(0, 0)-1) > 1e-14 || math.Abs(e.At(1, 1)-1) > 1e-14 ||
		math.Abs(e.At(0, 1)-3.25) > 1e-13 || math.Abs(e.At(1, 0)) > 1e-14 {
		t.Fatalf("exp(nilpotent) = %v", e.data)
	}
}

func TestExpRotation(t *testing.T) {
	// exp([[0,-θ],[θ,0]]) is the rotation matrix by θ.
	theta := 1.1
	m := NewDense(2, 2)
	m.Set(0, 1, -theta)
	m.Set(1, 0, theta)
	e, err := Exp(m)
	if err != nil {
		t.Fatal(err)
	}
	c, s := math.Cos(theta), math.Sin(theta)
	want := [][]float64{{c, -s}, {s, c}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(e.At(i, j)-want[i][j]) > 1e-12 {
				t.Fatalf("rotation exp[%d][%d] = %v want %v", i, j, e.At(i, j), want[i][j])
			}
		}
	}
}

func TestExpAdditionPropertyRandom(t *testing.T) {
	// exp(2X) = exp(X)·exp(X) exercises scaling-and-squaring consistency,
	// including norms above the scaling threshold.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(5)
		x := NewDense(n, n)
		for i := range x.data {
			x.data[i] = (rng.Float64() - 0.5) * 2
		}
		x2 := x.Clone()
		for i := range x2.data {
			x2.data[i] *= 2
		}
		e2, err := Exp(x2)
		if err != nil {
			t.Fatal(err)
		}
		e, err := Exp(x)
		if err != nil {
			t.Fatal(err)
		}
		ee, _ := Mul(e, e)
		for i := range ee.data {
			if diff := math.Abs(ee.data[i] - e2.data[i]); diff > 1e-9*(1+math.Abs(e2.data[i])) {
				t.Fatalf("trial %d: exp(2X) vs exp(X)² differ by %v at %d", trial, diff, i)
			}
		}
	}
}

func TestExpRejectsNonSquare(t *testing.T) {
	if _, err := Exp(NewDense(2, 3)); err == nil {
		t.Fatal("expected shape error")
	}
}
