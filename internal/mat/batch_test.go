package mat

import (
	"math"
	"math/rand"
	"testing"
)

// refAdvance is an order-naive reference of the fused map out = a·x + b·y +
// u*s + v, used only to pin MulAddVec's value to within rounding slack.
func refAdvance(n int, a, b, u, v []float64, s float64, x, y []float64) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		acc := u[i]*s + v[i]
		for j := 0; j < n; j++ {
			acc += a[i*n+j]*x[j] + b[i*n+j]*y[j]
		}
		out[i] = acc
	}
	return out
}

func randSlice(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 50
	}
	return out
}

// TestMulAddVecMatchesReference checks the 4-accumulator kernel against the
// naive sum within rounding tolerance across sizes (including the n = 8
// phone case and the j-tail sizes around it).
func TestMulAddVecMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 13} {
		a, b := randSlice(rng, n*n), randSlice(rng, n*n)
		u, v := randSlice(rng, n), randSlice(rng, n)
		x, y := randSlice(rng, n), randSlice(rng, n)
		s := rng.NormFloat64()
		out := make([]float64, n)
		MulAddVec(n, a, b, u, v, s, x, y, out)
		want := refAdvance(n, a, b, u, v, s, x, y)
		for i := range out {
			if d := math.Abs(out[i] - want[i]); d > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d out[%d] = %v, reference %v (Δ %g)", n, i, out[i], want[i], d)
			}
		}
	}
}

// TestMulBatchBitIdenticalToMulAddVec is the contract the fleet's batched
// runner stands on: every column of the pair-blocked batch kernel must be
// bit-for-bit the single-column advance, including signed zeros, exact
// cancellations and denormals. Odd column counts exercise the scalar tail.
func TestMulBatchBitIdenticalToMulAddVec(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	adversarial := func(xs []float64) {
		// Sprinkle values that expose order- and zero-sensitivity.
		specials := []float64{0, math.Copysign(0, -1), 1e-310, -1e-310, 1e300, -1e300}
		for i := range xs {
			if rng.Intn(3) == 0 {
				xs[i] = specials[rng.Intn(len(specials))]
			}
		}
	}
	for _, n := range []int{3, 8} {
		for _, cols := range []int{1, 2, 3, 5, 8, 17} {
			a, b := randSlice(rng, n*n), randSlice(rng, n*n)
			u, v := randSlice(rng, n), randSlice(rng, n)
			adversarial(a)
			adversarial(b)
			s := randSlice(rng, cols)
			xs := make([][]float64, cols)
			ys := make([][]float64, cols)
			outs := make([][]float64, cols)
			wants := make([][]float64, cols)
			for c := 0; c < cols; c++ {
				xs[c] = randSlice(rng, n)
				ys[c] = randSlice(rng, n)
				adversarial(xs[c])
				adversarial(ys[c])
				outs[c] = make([]float64, n)
				wants[c] = make([]float64, n)
				MulAddVec(n, a, b, u, v, s[c], xs[c], ys[c], wants[c])
			}
			MulBatch(n, a, b, u, v, s, xs, ys, outs, nil)
			for c := 0; c < cols; c++ {
				for i := 0; i < n; i++ {
					if math.Float64bits(outs[c][i]) != math.Float64bits(wants[c][i]) {
						t.Fatalf("n=%d cols=%d: column %d element %d = %x, single-column %x",
							n, cols, c, i,
							math.Float64bits(outs[c][i]), math.Float64bits(wants[c][i]))
					}
				}
			}
			// The idx path (sub-cohort advance) must agree with the full
			// pass on the selected columns and leave the rest untouched.
			sel := make([]int, 0, cols)
			for c := 0; c < cols; c += 2 {
				sel = append(sel, c)
			}
			outsIdx := make([][]float64, cols)
			for c := range outsIdx {
				outsIdx[c] = make([]float64, n)
				for i := range outsIdx[c] {
					outsIdx[c][i] = -12345
				}
			}
			MulBatch(n, a, b, u, v, s, xs, ys, outsIdx, sel)
			for c := 0; c < cols; c++ {
				selected := c%2 == 0
				for i := 0; i < n; i++ {
					if selected && math.Float64bits(outsIdx[c][i]) != math.Float64bits(wants[c][i]) {
						t.Fatalf("idx path: n=%d cols=%d column %d element %d diverged", n, cols, c, i)
					}
					if !selected && outsIdx[c][i] != -12345 {
						t.Fatalf("idx path wrote to unselected column %d", c)
					}
				}
			}
		}
	}
}

// TestMulPair8AsmMatchesGo pins the platform pair kernel (SSE2 on amd64)
// against the portable Go twin bit for bit, including signed zeros,
// denormals and huge magnitudes. On architectures without an assembly
// kernel the two are the same function and this trivially passes.
func TestMulPair8AsmMatchesGo(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	specials := []float64{0, math.Copysign(0, -1), 1e-310, -1e-310, 1e300, -1e300, 1, -1}
	fill := func(xs []float64) {
		for i := range xs {
			if rng.Intn(4) == 0 {
				xs[i] = specials[rng.Intn(len(specials))]
			} else {
				xs[i] = rng.NormFloat64() * 100
			}
		}
	}
	for trial := 0; trial < 200; trial++ {
		var a, b [64]float64
		var u, v, x0, y0, x1, y1, oAsm0, oAsm1, oGo0, oGo1 [8]float64
		fill(a[:])
		fill(b[:])
		fill(u[:])
		fill(v[:])
		fill(x0[:])
		fill(y0[:])
		fill(x1[:])
		fill(y1[:])
		sc0, sc1 := rng.NormFloat64(), rng.NormFloat64()
		mulPair8(&a, &b, &u, &v, sc0, sc1, &x0, &y0, &oAsm0, &x1, &y1, &oAsm1)
		mulPair8Go(&a, &b, &u, &v, sc0, sc1, &x0, &y0, &oGo0, &x1, &y1, &oGo1)
		for i := 0; i < 8; i++ {
			if math.Float64bits(oAsm0[i]) != math.Float64bits(oGo0[i]) ||
				math.Float64bits(oAsm1[i]) != math.Float64bits(oGo1[i]) {
				t.Fatalf("trial %d element %d: asm (%x,%x) vs go (%x,%x)", trial, i,
					math.Float64bits(oAsm0[i]), math.Float64bits(oAsm1[i]),
					math.Float64bits(oGo0[i]), math.Float64bits(oGo1[i]))
			}
		}
	}
}

// TestMulBatchShapeMismatchPanics pins the column-count guard.
func TestMulBatchShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulBatch with mismatched column counts did not panic")
		}
	}()
	MulBatch(2, make([]float64, 4), make([]float64, 4), make([]float64, 2), make([]float64, 2),
		[]float64{1, 2}, [][]float64{{1, 2}}, [][]float64{{1, 2}}, [][]float64{{0, 0}}, nil)
}
