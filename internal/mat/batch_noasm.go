//go:build !amd64

package mat

// mulPair8 dispatches to the portable pair kernel on architectures
// without an assembly twin.
func mulPair8(a, b *[64]float64, u, v *[8]float64, sc0, sc1 float64,
	x0, y0, o0, x1, y1, o1 *[8]float64) {
	mulPair8Go(a, b, u, v, sc0, sc1, x0, y0, o0, x1, y1, o1)
}
