package mat

import "math"

// Exp returns the matrix exponential e^A of a square matrix, computed by
// scaling-and-squaring with a 6th-order diagonal Padé approximant: A is
// scaled by 2^-s until its infinity norm is at most 1/2, the approximant
// r(A) = p(A)/p(-A) is evaluated, and the result is squared s times. For
// the small, well-conditioned generator matrices of the thermal propagator
// (‖A‖ ≪ 1 after scaling) the approximant is accurate to machine precision.
// a is not modified.
func Exp(a *Dense) (*Dense, error) {
	if a.rows != a.cols {
		return nil, ErrShape
	}
	n := a.rows

	// Infinity norm → scaling exponent s with ‖A/2^s‖∞ ≤ 1/2.
	var norm float64
	for i := 0; i < n; i++ {
		var s float64
		for _, v := range a.Row(i) {
			s += math.Abs(v)
		}
		if s > norm {
			norm = s
		}
	}
	s := 0
	if norm > 0.5 {
		s = int(math.Ceil(math.Log2(norm / 0.5)))
	}
	b := a.Clone()
	if s > 0 {
		scale := math.Ldexp(1, -s)
		for i := range b.data {
			b.data[i] *= scale
		}
	}

	// Padé(6,6): p(x) = Σ c_k x^k, r(B) = p(B)·p(−B)⁻¹.
	c := [7]float64{1, 1.0 / 2, 5.0 / 44, 1.0 / 66, 1.0 / 792, 1.0 / 15840, 1.0 / 665280}
	b2, _ := Mul(b, b)
	b4, _ := Mul(b2, b2)
	// U = B·(c1·I + c3·B² + c5·B⁴), V = c0·I + c2·B² + c4·B⁴ + c6·B⁶.
	inner := NewDense(n, n)
	for i := range inner.data {
		inner.data[i] = c[3]*b2.data[i] + c[5]*b4.data[i]
	}
	for i := 0; i < n; i++ {
		inner.data[i*n+i] += c[1]
	}
	u, _ := Mul(b, inner)
	b6, _ := Mul(b4, b2)
	v := NewDense(n, n)
	for i := range v.data {
		v.data[i] = c[2]*b2.data[i] + c[4]*b4.data[i] + c[6]*b6.data[i]
	}
	for i := 0; i < n; i++ {
		v.data[i*n+i] += c[0]
	}

	// r(B) solves (V−U)·X = (V+U), column by column.
	num := NewDense(n, n)
	den := NewDense(n, n)
	for i := range v.data {
		num.data[i] = v.data[i] + u.data[i]
		den.data[i] = v.data[i] - u.data[i]
	}
	x := NewDense(n, n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			col[i] = num.data[i*n+j]
		}
		sol, err := Solve(den, col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			x.data[i*n+j] = sol[i]
		}
	}

	for k := 0; k < s; k++ {
		x, _ = Mul(x, x)
	}
	return x, nil
}
