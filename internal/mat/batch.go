package mat

// This file is the batched kernel behind the thermal engine's cohort
// advance: many independent state columns pushed through the same fused
// affine map
//
//	out_c = a·x_c + b·y_c + u·s_c + v
//
// (a, b n×n row-major; u, v length-n vectors; s_c a per-column scalar).
// MulAddVec is the single-column form — the exact per-step propagator
// advance — and MulBatch is the register-blocked many-column form. The two
// MUST stay bit-identical per column: the fleet's batched runner advances
// cohorts with MulBatch while the local runner advances phones one at a
// time with MulAddVec, and the batch engine's whole determinism contract
// is that the two paths produce byte-equal trajectories. Every accumulator
// in this file therefore follows the same scheme: four independent partial
// sums striding the columns of a and b by four, combined as
// (s0+s1)+(s2+s3), with s0 seeded by u[i]*s_c + v[i]. Keep the expression
// shapes identical between the kernels — compilers fuse a*x + b*y
// per-expression (FMA on arm64), so a reshaped expression is a different
// rounding.

// MulAddVec computes out = a·x + b·y + u*s + v for one n-vector column:
// the fused dense advance of a linear time-invariant step. out must not
// alias x or y. Slices may be longer than required; only the leading n
// (n×n for a and b) elements are read.
func MulAddVec(n int, a, b, u, v []float64, s float64, x, y, out []float64) {
	for i := 0; i < n; i++ {
		ar := a[i*n : i*n+n : i*n+n]
		br := b[i*n : i*n+n : i*n+n]
		// Four independent accumulators break the floating-point add
		// dependency chain; single-column advances are latency-bound.
		s0 := u[i]*s + v[i]
		var s1, s2, s3 float64
		j := 0
		for ; j+3 < n; j += 4 {
			s0 += ar[j]*x[j] + br[j]*y[j]
			s1 += ar[j+1]*x[j+1] + br[j+1]*y[j+1]
			s2 += ar[j+2]*x[j+2] + br[j+2]*y[j+2]
			s3 += ar[j+3]*x[j+3] + br[j+3]*y[j+3]
		}
		for ; j < n; j++ {
			s0 += ar[j]*x[j] + br[j]*y[j]
		}
		out[i] = (s0 + s1) + (s2 + s3)
	}
}

// MulBatch computes outs[c] = a·xs[c] + b·ys[c] + u*s[c] + v for every
// selected column c — one fused mat-mat over a batch of independent states
// sharing one map. idx selects the columns to advance (nil: all of them),
// which lets a caller keep persistent column views and advance arbitrary
// sub-cohorts without rebuilding slices. Columns are register-blocked in
// pairs so the coefficient loads amortize and the two columns' accumulator
// chains interleave for instruction-level parallelism; n == 8 (the phone
// thermal network) takes a fully unrolled bounds-check-free path. Each
// column's result is bit-identical to MulAddVec on that column. outs[c]
// must not alias xs[c] or ys[c]; len(s), len(xs), len(ys), len(outs) must
// match.
func MulBatch(n int, a, b, u, v, s []float64, xs, ys, outs [][]float64, idx []int) {
	if len(xs) != len(s) || len(ys) != len(s) || len(outs) != len(s) {
		panic("mat: MulBatch column counts disagree")
	}
	wide := n == 8 && len(a) >= 64 && len(b) >= 64 && len(u) >= 8 && len(v) >= 8
	if idx == nil {
		k := 0
		if wide {
			a8, b8 := (*[64]float64)(a), (*[64]float64)(b)
			u8, v8 := (*[8]float64)(u), (*[8]float64)(v)
			for ; k+1 < len(s); k += 2 {
				mulPair8(a8, b8, u8, v8, s[k], s[k+1],
					(*[8]float64)(xs[k]), (*[8]float64)(ys[k]), (*[8]float64)(outs[k]),
					(*[8]float64)(xs[k+1]), (*[8]float64)(ys[k+1]), (*[8]float64)(outs[k+1]))
			}
		}
		for ; k < len(s); k++ {
			MulAddVec(n, a, b, u, v, s[k], xs[k], ys[k], outs[k])
		}
		return
	}
	k := 0
	if wide {
		a8, b8 := (*[64]float64)(a), (*[64]float64)(b)
		u8, v8 := (*[8]float64)(u), (*[8]float64)(v)
		for ; k+1 < len(idx); k += 2 {
			c0, c1 := idx[k], idx[k+1]
			mulPair8(a8, b8, u8, v8, s[c0], s[c1],
				(*[8]float64)(xs[c0]), (*[8]float64)(ys[c0]), (*[8]float64)(outs[c0]),
				(*[8]float64)(xs[c1]), (*[8]float64)(ys[c1]), (*[8]float64)(outs[c1]))
		}
	}
	for ; k < len(idx); k++ {
		c := idx[k]
		MulAddVec(n, a, b, u, v, s[c], xs[c], ys[c], outs[c])
	}
}

// mulPair8Go advances two 8-columns through the same map with interleaved
// accumulator chains — the portable implementation behind mulPair8 (amd64
// carries an SSE2 twin that computes one column per xmm lane). The
// per-column arithmetic replays MulAddVec's n == 8 schedule exactly: s0
// seeded with u[i]*s + v[i] then fed j = 0 and 4, s1..s3 starting from
// zero fed j = 1..3 and 5..7, combined as (s0+s1)+(s2+s3).
func mulPair8Go(a, b *[64]float64, u, v *[8]float64, sc0, sc1 float64,
	x0, y0, o0, x1, y1, o1 *[8]float64) {
	for i := 0; i < 8; i++ {
		r := i * 8
		a0, a1, a2, a3 := a[r], a[r+1], a[r+2], a[r+3]
		b0, b1, b2, b3 := b[r], b[r+1], b[r+2], b[r+3]
		p0 := u[i]*sc0 + v[i]
		q0 := u[i]*sc1 + v[i]
		var p1, p2, p3, q1, q2, q3 float64
		p0 += a0*x0[0] + b0*y0[0]
		q0 += a0*x1[0] + b0*y1[0]
		p1 += a1*x0[1] + b1*y0[1]
		q1 += a1*x1[1] + b1*y1[1]
		p2 += a2*x0[2] + b2*y0[2]
		q2 += a2*x1[2] + b2*y1[2]
		p3 += a3*x0[3] + b3*y0[3]
		q3 += a3*x1[3] + b3*y1[3]
		a0, a1, a2, a3 = a[r+4], a[r+5], a[r+6], a[r+7]
		b0, b1, b2, b3 = b[r+4], b[r+5], b[r+6], b[r+7]
		p0 += a0*x0[4] + b0*y0[4]
		q0 += a0*x1[4] + b0*y1[4]
		p1 += a1*x0[5] + b1*y0[5]
		q1 += a1*x1[5] + b1*y1[5]
		p2 += a2*x0[6] + b2*y0[6]
		q2 += a2*x1[6] + b2*y1[6]
		p3 += a3*x0[7] + b3*y0[7]
		q3 += a3*x1[7] + b3*y1[7]
		o0[i] = (p0 + p1) + (p2 + p3)
		o1[i] = (q0 + q1) + (q2 + q3)
	}
}
