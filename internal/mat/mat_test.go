package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("fresh matrix not zeroed at %d,%d", i, j)
			}
		}
	}
}

func TestNewDensePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0x3 matrix")
		}
	}()
	NewDense(0, 3)
}

func TestNewDenseDataPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 42.5)
	if got := m.At(1, 2); got != 42.5 {
		t.Fatalf("At(1,2) = %v want 42.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v want 0", got)
	}
}

func TestRowIsView(t *testing.T) {
	m := NewDense(2, 2)
	m.Row(1)[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must be a shared view of the storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	r, c := tr.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("transpose dims = %d,%d want 3,2", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if got.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v want %v", i, j, got.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	if _, err := Mul(a, b); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMulVec(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 0, -1, 2, 2, 2})
	got, err := MulVec(a, []float64{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != -2 || got[1] != 24 {
		t.Fatalf("MulVec = %v want [-2 24]", got)
	}
	if _, err := MulVec(a, []float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestAtAMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewDense(7, 4)
	for i := range a.data {
		a.data[i] = rng.NormFloat64()
	}
	want, err := Mul(a.T(), a)
	if err != nil {
		t.Fatal(err)
	}
	got := AtA(a)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !almostEq(got.At(i, j), want.At(i, j), 1e-12) {
				t.Fatalf("AtA[%d][%d] = %v want %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestAtVecMatchesExplicit(t *testing.T) {
	a := NewDenseData(3, 2, []float64{1, 2, 3, 4, 5, 6})
	y := []float64{1, -1, 2}
	got, err := AtVec(a, y)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MulVec(a.T(), y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("AtVec[%d] = %v want %v", i, got[i], want[i])
		}
	}
	if _, err := AtVec(a, []float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	a := NewDenseData(2, 2, []float64{2, 1, 1, 3})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("Solve = %v want [1 3]", x)
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := NewDenseData(2, 2, []float64{0, 1, 1, 0})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 3, 1e-12) || !almostEq(x[1], 2, 1e-12) {
		t.Fatalf("Solve = %v want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 4})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve(NewDense(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("expected shape error for non-square matrix")
	}
	if _, err := Solve(NewDense(2, 2), []float64{1}); err == nil {
		t.Fatal("expected shape error for rhs length")
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := NewDenseData(2, 2, []float64{2, 1, 1, 3})
	b := []float64{5, 10}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 2 || a.At(1, 1) != 3 || b[0] != 5 || b[1] != 10 {
		t.Fatal("Solve mutated its inputs")
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	// SPD matrix.
	a := NewDenseData(3, 3, []float64{4, 2, 0.6, 2, 5, 1.5, 0.6, 1.5, 3})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	llt, err := Mul(l, l.T())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEq(llt.At(i, j), a.At(i, j), 1e-10) {
				t.Fatalf("LLᵀ[%d][%d] = %v want %v", i, j, llt.At(i, j), a.At(i, j))
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrSingular for indefinite matrix")
	}
}

func TestSolveCholeskyMatchesSolve(t *testing.T) {
	a := NewDenseData(3, 3, []float64{4, 2, 0.6, 2, 5, 1.5, 0.6, 1.5, 3})
	b := []float64{1, 2, 3}
	x1, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := SolveCholesky(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if !almostEq(x1[i], x2[i], 1e-10) {
			t.Fatalf("SolveCholesky[%d] = %v want %v", i, x2[i], x1[i])
		}
	}
}

func TestLeastSquaresRecoversExactLinear(t *testing.T) {
	// y = 3 + 2a - b with intercept column in the design matrix.
	rng := rand.New(rand.NewSource(7))
	n := 50
	a := NewDense(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		f1, f2 := rng.Float64()*10, rng.Float64()*10
		a.Set(i, 0, 1)
		a.Set(i, 1, f1)
		a.Set(i, 2, f2)
		y[i] = 3 + 2*f1 - f2
	}
	w, err := LeastSquares(a, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1}
	for i := range want {
		if !almostEq(w[i], want[i], 1e-8) {
			t.Fatalf("coef[%d] = %v want %v", i, w[i], want[i])
		}
	}
}

func TestLeastSquaresRankDeficientFallsBackToRidge(t *testing.T) {
	// Duplicate column -> singular normal equations; ridge fallback must
	// still return a finite solution that fits the data.
	n := 20
	a := NewDense(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i)
		a.Set(i, 0, 1)
		a.Set(i, 1, v)
		a.Set(i, 2, v) // identical to column 1
		y[i] = 5 + 4*v
	}
	w, err := LeastSquares(a, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range w {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("coef[%d] = %v not finite", i, c)
		}
	}
	// Prediction at v=10 should be close to 45 despite the degeneracy.
	pred := w[0] + w[1]*10 + w[2]*10
	if !almostEq(pred, 45, 0.5) {
		t.Fatalf("ridge-fallback prediction = %v want ≈45", pred)
	}
}

func TestStats(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v want 2", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-slice stats must be 0")
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v want 32", got)
	}
}

func TestDotPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

// Property: Solve(a, b) returns x with a*x ≈ b for random well-conditioned
// systems.
func TestSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			// Diagonal dominance keeps the system well conditioned.
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 5
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		ax, err := MulVec(a, x)
		if err != nil {
			return false
		}
		for i := range b {
			if !almostEq(ax[i], b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transposing twice is the identity.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewDense(r, c)
		for i := range m.data {
			m.data[i] = rng.NormFloat64()
		}
		tt := m.T().T()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if tt.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
