//go:build amd64

#include "textflag.h"

// mulPair8SSE advances two 8-element state columns through the fused
// affine map out = a·x + b·y + u*s + v with packed doubles: lane 0 of
// every xmm register carries column 0, lane 1 column 1. Each packed op
// performs the same IEEE-754 double operation on both lanes, and the
// instruction order replays the scalar 4-accumulator schedule of
// MulAddVec exactly (s0 = u*s + v, then j and j+4 feeding accumulator
// j%4, combined as (s0+s1)+(s2+s3)), so every lane is bit-identical to
// the scalar kernel. The two x columns are preloaded into X7–X14 once and
// reused by all eight rows; coefficient broadcasts use MOVDDUP from
// memory (a pure load on modern cores — no shuffle-port pressure), which
// is SSE3: callers must check sse3Supported and fall back to mulPair8Go.

// STEP accumulates a[off]·x(j) + b[off]·y(j) into acc, with x(j) held in
// xreg and y(j) gathered as [y0[j], y1[j]]:
//   X4 = bcast a[off]; X4 = a·x; X5 = bcast b[off]; X6 = [y0,y1];
//   X5 = b·y; X4 = a·x + b·y; acc += X4
// matching the scalar "acc += ar[j]*x[j] + br[j]*y[j]".
#define STEP(off, xreg, acc) \
	MOVDDUP off(SI), X4    \
	MULPD   xreg, X4       \
	MOVDDUP off(DI), X5    \
	MOVSD   off(R12), X6   \
	MOVHPD  off(R13), X6   \
	MULPD   X6, X5         \
	ADDPD   X5, X4         \
	ADDPD   X4, acc

// func mulPair8SSE(a, b *[64]float64, u, v *[8]float64, sc0, sc1 float64, x0, y0, o0, x1, y1, o1 *[8]float64)
TEXT ·mulPair8SSE(SB), NOSPLIT, $0-96
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ u+16(FP), R8
	MOVQ v+24(FP), R9

	// X15 = [sc0, sc1]
	MOVSD  sc0+32(FP), X15
	MOVHPD sc1+40(FP), X15

	MOVQ x0+48(FP), R10
	MOVQ y0+56(FP), R12
	MOVQ o0+64(FP), R14
	MOVQ x1+72(FP), R11
	MOVQ y1+80(FP), R13
	MOVQ o1+88(FP), R15

	// Preload the x column pair: X7..X14 = [x0[j], x1[j]] for j = 0..7.
	MOVSD  0(R10), X7
	MOVHPD 0(R11), X7
	MOVSD  8(R10), X8
	MOVHPD 8(R11), X8
	MOVSD  16(R10), X9
	MOVHPD 16(R11), X9
	MOVSD  24(R10), X10
	MOVHPD 24(R11), X10
	MOVSD  32(R10), X11
	MOVHPD 32(R11), X11
	MOVSD  40(R10), X12
	MOVHPD 40(R11), X12
	MOVSD  48(R10), X13
	MOVHPD 48(R11), X13
	MOVSD  56(R10), X14
	MOVHPD 56(R11), X14

	MOVQ $8, CX

row:
	// s0 = u[i]*[sc0,sc1] + v[i]; s1 = s2 = s3 = 0
	MOVDDUP (R8), X0
	MULPD   X15, X0
	MOVDDUP (R9), X4
	ADDPD   X4, X0
	XORPS   X1, X1
	XORPS   X2, X2
	XORPS   X3, X3

	STEP(0, X7, X0)
	STEP(8, X8, X1)
	STEP(16, X9, X2)
	STEP(24, X10, X3)
	STEP(32, X11, X0)
	STEP(40, X12, X1)
	STEP(48, X13, X2)
	STEP(56, X14, X3)

	// out = (s0+s1) + (s2+s3); low lane -> o0[i], high lane -> o1[i]
	ADDPD    X1, X0
	ADDPD    X3, X2
	ADDPD    X2, X0
	MOVSD    X0, (R14)
	UNPCKHPD X0, X0
	MOVSD    X0, (R15)

	ADDQ $64, SI
	ADDQ $64, DI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R14
	ADDQ $8, R15
	DECQ CX
	JNZ  row
	RET

// func sse3Supported() bool
TEXT ·sse3Supported(SB), NOSPLIT, $0-1
	MOVL  $1, AX
	CPUID
	TESTL $1, CX
	SETNE ret+0(FP)
	RET
