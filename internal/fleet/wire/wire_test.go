package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/users"
)

// writeRaw frames an arbitrary payload with a length prefix.
func writeRaw(payload []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	return append(hdr[:], payload...)
}

// TestFrameRoundTrip: every frame type survives WriteFrame → ReadFrame.
func TestFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{V: Version, Type: TypeShard, Shard: &ShardRequest{
			Workers: 3, WantSamples: true,
			Jobs: []fleet.JobSpec{{
				Index:    7,
				Name:     "skype/usta",
				User:     users.User{ID: "c", SkinLimitC: 35.2, ScreenLimitC: 32.5},
				Workload: fleet.WorkloadRef{Name: "skype", Seed: 342},
				Seed:     301, DurSec: 60, TraceFree: true,
				Controller: "usta", LimitC: 37,
			}},
		}},
		{V: Version, Type: TypeSample, Sample: &SampleFrame{
			Job: 12, Sample: device.Sample{TimeSec: 1.5, SkinC: 31.25, FreqMHz: 1512, MaxLevel: 11},
		}},
		{V: Version, Type: TypeResult, Result: &ResultFrame{Index: 4, Name: "glbench", SeedUsed: 99}},
		{V: Version, Type: TypeDone},
		{V: Version, Type: TypeError, Err: "boom"},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("write %s: %v", f.Type, err)
		}
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", want.Type, err)
		}
		if got.Type != want.Type {
			t.Fatalf("type %q, want %q", got.Type, want.Type)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
}

// TestFrameShardPayloadRoundTrip pins that job specs cross the boundary
// intact, floats bit-exact.
func TestFrameShardPayloadRoundTrip(t *testing.T) {
	cfg := device.DefaultConfig()
	cfg.Thermal.Ambient = 33.3000000000001
	spec := fleet.JobSpec{
		Index:    3,
		Workload: fleet.WorkloadRef{Name: "angrybirds", Seed: 9},
		Device:   &cfg,
		Seed:     -77,
		DurSec:   123.456789012345,
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{V: Version, Type: TypeShard, Shard: &ShardRequest{Jobs: []fleet.JobSpec{spec}}}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Shard.Jobs[0]
	if got.Device.Thermal.Ambient != cfg.Thermal.Ambient {
		t.Fatalf("ambient %v, want bit-exact %v", got.Device.Thermal.Ambient, cfg.Thermal.Ambient)
	}
	if got.Seed != spec.Seed || got.DurSec != spec.DurSec || got.Workload != spec.Workload {
		t.Fatalf("spec diverged: %+v vs %+v", got, spec)
	}
}

// TestReadFrameMalformed is the decode error table: every way a frame can
// be broken must map to a descriptive error, never a mis-decode or a hang.
func TestReadFrameMalformed(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		WriteFrame(&buf, &Frame{V: Version, Type: TypeDone})
		return buf.Bytes()
	}()
	cases := []struct {
		name  string
		input []byte
		want  error
	}{
		{"empty stream", nil, io.EOF},
		{"truncated header", good[:2], io.ErrUnexpectedEOF},
		{"truncated payload", good[:len(good)-3], io.ErrUnexpectedEOF},
		{"oversized length prefix", func() []byte {
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
			return hdr[:]
		}(), ErrFrameTooLarge},
		{"invalid json", writeRaw([]byte(`{"v":1,`)), ErrBadFrame},
		{"unknown field", writeRaw([]byte(`{"v":1,"type":"done","zzz":true}`)), ErrBadFrame},
		{"wrong version", writeRaw([]byte(`{"v":2,"type":"done"}`)), ErrVersion},
		{"newer version with unknown envelope fields", writeRaw([]byte(`{"v":2,"type":"done","future":{}}`)), ErrVersion},
		{"unknown type", writeRaw([]byte(`{"v":1,"type":"gossip"}`)), ErrBadFrame},
		{"shard frame without payload", writeRaw([]byte(`{"v":1,"type":"shard"}`)), ErrBadFrame},
		{"sample frame without payload", writeRaw([]byte(`{"v":1,"type":"sample"}`)), ErrBadFrame},
		{"result frame without payload", writeRaw([]byte(`{"v":1,"type":"result"}`)), ErrBadFrame},
		{"error frame without message", writeRaw([]byte(`{"v":1,"type":"error"}`)), ErrBadFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadFrame(bytes.NewReader(tc.input))
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestMaterializeErrors is the spec-validation error table.
func TestMaterializeErrors(t *testing.T) {
	ok := fleet.JobSpec{Workload: fleet.WorkloadRef{Name: "skype"}, Seed: 1}
	cases := []struct {
		name string
		spec func(fleet.JobSpec) fleet.JobSpec
		want string
	}{
		{"no workload", func(s fleet.JobSpec) fleet.JobSpec { s.Workload.Name = ""; return s }, "no workload"},
		{"unknown workload", func(s fleet.JobSpec) fleet.JobSpec { s.Workload.Name = "crysis"; return s }, "unknown workload"},
		{"unknown controller", func(s fleet.JobSpec) fleet.JobSpec { s.Controller = "magic"; return s }, "unknown controller"},
		{"usta without limit", func(s fleet.JobSpec) fleet.JobSpec { s.Controller = "usta"; return s }, "positive limit"},
		{"usta without predictor", func(s fleet.JobSpec) fleet.JobSpec { s.Controller = "usta"; s.LimitC = 37; return s }, "no predictor"},
		{"unpinned seed", func(s fleet.JobSpec) fleet.JobSpec { s.Seed = 0; return s }, "no pinned seed"},
		{"unknown governor", func(s fleet.JobSpec) fleet.JobSpec { s.Governor = "warp"; return s }, "unknown governor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Materialize(tc.spec(ok), nil)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
	if _, err := Materialize(ok, nil); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestMaterializedJobRunsLikeLocal: a spec materialized in-process must
// reproduce the exact result of the hand-built job it describes.
func TestMaterializedJobRunsLikeLocal(t *testing.T) {
	spec := fleet.JobSpec{
		Name:     "w",
		Workload: fleet.WorkloadRef{Name: "skype", Seed: 3},
		Governor: "conservative",
		Seed:     55,
		DurSec:   40,
	}
	job, err := Materialize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := fleet.LocalRunner{}.Run(context.Background(), fleet.Config{Workers: 1}, []fleet.Job{job})[0]
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	ref := fleet.LocalRunner{}.Run(context.Background(), fleet.Config{Workers: 1}, []fleet.Job{job})[0]
	if got.Result.EnergyJ != ref.Result.EnergyJ || got.Result.MaxSkinC != ref.Result.MaxSkinC {
		t.Fatal("materialized job is not deterministic")
	}
	if got.SeedUsed != 55 {
		t.Fatalf("seed %d, want the spec's 55", got.SeedUsed)
	}
	if got.Result.Governor != "conservative" {
		t.Fatalf("governor %q, want conservative", got.Result.Governor)
	}
}

// TestResultFrameRoundTripWithTrace: traced results survive the boundary
// with a working trace index on the far side.
func TestResultFrameRoundTripWithTrace(t *testing.T) {
	job, err := Materialize(fleet.JobSpec{
		Workload: fleet.WorkloadRef{Name: "skype", Seed: 3}, Seed: 9, DurSec: 30,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := fleet.LocalRunner{}.Run(context.Background(), fleet.Config{Workers: 1}, []fleet.Job{job})[0]
	if res.Err != nil || res.Result.Trace == nil {
		t.Fatalf("reference run broken: %+v", res)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{V: Version, Type: TypeResult, Result: EncodeResult(res)}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Result.Decode()
	if got.Result.EnergyJ != res.Result.EnergyJ || got.SeedUsed != res.SeedUsed {
		t.Fatal("aggregates diverged across the boundary")
	}
	skin := got.Result.Trace.Lookup("skin_c")
	wantSkin := res.Result.Trace.Lookup("skin_c")
	if skin == nil {
		t.Fatal("decoded trace lost its index (Reindex not applied)")
	}
	if len(skin.Values) != len(wantSkin.Values) || skin.Values[3] != wantSkin.Values[3] {
		t.Fatal("trace values diverged across the boundary")
	}
	if len(got.Result.Records) != len(res.Result.Records) {
		t.Fatal("records diverged across the boundary")
	}
}
