// Package wire is the serialization layer of the sharded fleet: versioned
// codecs for the job contract (fleet.JobSpec in, fleet.JobResult and
// telemetry samples out) carried as length-prefixed JSON frames over a
// byte stream — the stdin/stdout pipes of a worker subprocess today, a
// socket when the fleet grows multi-host.
//
// Every frame is a Frame envelope: {"v":1,"type":...} plus exactly one
// payload field matching the type. Readers reject unknown versions,
// unknown types, oversized frames and truncated streams with descriptive
// errors; the shard coordinator turns those into per-job errors instead of
// batch failures.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/sink"
	"repro/internal/users"
	"repro/internal/workload"
)

// Version is the protocol version this package reads and writes. A worker
// and coordinator from the same build always agree; mixed builds fail fast
// with ErrVersion instead of mis-decoding.
const Version = 1

// MaxFrame bounds a single frame's payload (64 MiB). Traced results of
// very long runs are the largest frames in practice (a few MB); anything
// near the cap indicates a corrupt length prefix, not a real payload.
const MaxFrame = 64 << 20

// Frame types.
const (
	// TypeShard carries a ShardRequest, coordinator → worker.
	TypeShard = "shard"
	// TypeSample carries one telemetry sample, worker → coordinator.
	TypeSample = "sample"
	// TypeResult carries one finished job, worker → coordinator.
	TypeResult = "result"
	// TypeDone marks the end of a worker's stream (of the current shard, on
	// a long-lived daemon connection that serves several).
	TypeDone = "done"
	// TypeError aborts the shard with a worker-side failure.
	TypeError = "error"
	// TypeHello is a worker daemon's handshake, sent once per accepted
	// connection before anything else: protocol version (the envelope's V)
	// plus the daemon's shard capacity (internal/fleet/net).
	TypeHello = "hello"
	// TypeHeartbeat is a worker's liveness pulse, emitted periodically
	// while a shard executes so the coordinator's read deadline can tell a
	// slow shard from a dead worker. It carries no payload.
	TypeHeartbeat = "heartbeat"
	// TypeCancel asks the worker to abandon the in-flight shard,
	// coordinator → worker. It carries no payload.
	TypeCancel = "cancel"
)

// Sentinel errors for malformed streams.
var (
	// ErrVersion marks a frame from an incompatible protocol version.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrFrameTooLarge marks a length prefix beyond MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrBadFrame marks an undecodable or ill-formed frame.
	ErrBadFrame = errors.New("wire: malformed frame")
)

// Frame is the versioned envelope every message travels in. Exactly one
// payload field is set, matching Type.
type Frame struct {
	V    int    `json:"v"`
	Type string `json:"type"`

	Shard  *ShardRequest `json:"shard,omitempty"`
	Sample *SampleFrame  `json:"sample,omitempty"`
	Result *ResultFrame  `json:"result,omitempty"`
	Hello  *HelloFrame   `json:"hello,omitempty"`
	Err    string        `json:"err,omitempty"`
}

// HelloFrame is a worker daemon's self-description: the protocol version it
// speaks (redundant with the envelope's V, but recorded explicitly so a
// future multi-version coordinator can negotiate) and how many shards it is
// willing to execute concurrently — the coordinator's per-worker in-flight
// cap.
type HelloFrame struct {
	// Proto is the wire protocol version the daemon speaks.
	Proto int `json:"proto"`
	// Capacity is the daemon's concurrent-shard limit (>= 1).
	Capacity int `json:"capacity"`
}

// ShardRequest is the coordinator's single message to a worker: the
// shard's job specs (seeds already resolved, indices global), the
// in-process pool width, an optional serialized predictor backing "usta"
// specs, and whether to stream telemetry samples back.
type ShardRequest struct {
	Jobs []fleet.JobSpec `json:"jobs"`
	// Workers is the worker process's in-process pool width (<= 0:
	// GOMAXPROCS, via fleet.NormalizeWorkers).
	Workers int `json:"workers,omitempty"`
	// Predictor is a core.SavePredictor document, decoded once per shard.
	Predictor json.RawMessage `json:"predictor,omitempty"`
	// WantSamples asks the worker to forward every telemetry sample as a
	// TypeSample frame tagged with the spec's global index.
	WantSamples bool `json:"want_samples,omitempty"`
	// Batched asks the worker to execute its shard on the cohort-batched
	// lockstep runner (fleet.BatchRunner) instead of the per-job pool.
	// Results are byte-identical either way; this is purely a throughput
	// knob for shards whose jobs share device configurations.
	Batched bool `json:"batched,omitempty"`
	// Event selects the worker's stepping engine (a device.EventMode
	// value; 0 is the plain fixed-tick loop). Carried as an int so the
	// wire package stays free of behavioral coupling; the worker converts
	// it back and applies it to its fleet config, which is what keeps a
	// sharded event run equal to a local run under the same mode.
	Event int `json:"event,omitempty"`
}

// SampleFrame is one telemetry point crossing the process boundary.
type SampleFrame struct {
	// Job is the global job index (fleet.JobSpec.Index).
	Job int `json:"job"`
	// Sample is the telemetry point, verbatim.
	Sample device.Sample `json:"sample"`
}

// ResultFrame is a fleet.JobResult in serializable form: the error
// flattened to its message, everything else carried structurally
// (device.RunResult, including any retained trace and records, is plain
// exported data).
type ResultFrame struct {
	Index    int               `json:"index"`
	Name     string            `json:"name,omitempty"`
	User     users.User        `json:"user,omitempty"`
	SeedUsed int64             `json:"seed_used,omitempty"`
	Result   *device.RunResult `json:"result,omitempty"`
	Err      string            `json:"err,omitempty"`
}

// EncodeResult converts a job result to its wire form.
func EncodeResult(r fleet.JobResult) *ResultFrame {
	rf := &ResultFrame{
		Index:    r.Index,
		Name:     r.Name,
		User:     r.User,
		SeedUsed: r.SeedUsed,
		Result:   r.Result,
	}
	if r.Err != nil {
		rf.Err = r.Err.Error()
	}
	return rf
}

// Decode converts the wire form back to a fleet.JobResult. Retained traces
// are reindexed so Lookup works on the receiving side; flattened errors
// come back as opaque error values (error identity does not survive the
// boundary — the coordinator re-marks cancellations itself).
func (rf *ResultFrame) Decode() fleet.JobResult {
	r := fleet.JobResult{
		Index:    rf.Index,
		Name:     rf.Name,
		User:     rf.User,
		SeedUsed: rf.SeedUsed,
		Result:   rf.Result,
	}
	if r.Result != nil && r.Result.Trace != nil {
		r.Result.Trace.Reindex()
	}
	if rf.Err != "" {
		r.Err = errors.New(rf.Err)
	}
	return r
}

// WriteFrame writes one envelope as a 4-byte big-endian length followed by
// its JSON encoding. Writers must serialize calls on a shared stream.
func WriteFrame(w io.Writer, f *Frame) error {
	b, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("wire: encode %s frame: %w", f.Type, err)
	}
	if len(b) > MaxFrame {
		return fmt.Errorf("%w: %s frame is %d bytes", ErrFrameTooLarge, f.Type, len(b))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadFrame reads and validates one envelope. A clean end of stream
// returns io.EOF; a stream cut mid-frame returns io.ErrUnexpectedEOF;
// ill-formed frames return errors wrapping ErrBadFrame, ErrVersion or
// ErrFrameTooLarge.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err // io.EOF for a clean end of stream
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: length prefix %d", ErrFrameTooLarge, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF // cut mid-frame, never clean
		}
		return nil, err
	}
	// Check the version with a lenient decode first: a newer build's frame
	// may carry envelope fields this build does not know, and that must
	// read as a version mismatch, not a malformed frame.
	var ver struct {
		V int `json:"v"`
	}
	if err := json.Unmarshal(buf, &ver); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if ver.V != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, ver.V, Version)
	}
	var f Frame
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	switch f.Type {
	case TypeShard:
		if f.Shard == nil {
			return nil, fmt.Errorf("%w: shard frame without payload", ErrBadFrame)
		}
	case TypeSample:
		if f.Sample == nil {
			return nil, fmt.Errorf("%w: sample frame without payload", ErrBadFrame)
		}
	case TypeResult:
		if f.Result == nil {
			return nil, fmt.Errorf("%w: result frame without payload", ErrBadFrame)
		}
	case TypeDone, TypeHeartbeat, TypeCancel:
	case TypeHello:
		if f.Hello == nil {
			return nil, fmt.Errorf("%w: hello frame without payload", ErrBadFrame)
		}
		if f.Hello.Capacity < 1 {
			return nil, fmt.Errorf("%w: hello frame with capacity %d", ErrBadFrame, f.Hello.Capacity)
		}
	case TypeError:
		if f.Err == "" {
			return nil, fmt.Errorf("%w: error frame without message", ErrBadFrame)
		}
	default:
		return nil, fmt.Errorf("%w: unknown frame type %q", ErrBadFrame, f.Type)
	}
	return &f, nil
}

// EncodePredictor serializes a trained predictor for a ShardRequest (nil
// predictors encode as nil).
func EncodePredictor(p *core.Predictor) (json.RawMessage, error) {
	if p == nil {
		return nil, nil
	}
	var buf bytes.Buffer
	if err := core.SavePredictor(&buf, p); err != nil {
		return nil, fmt.Errorf("wire: encode predictor: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodePredictor loads a ShardRequest predictor (empty input decodes as
// nil).
func DecodePredictor(raw json.RawMessage) (*core.Predictor, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	p, err := core.LoadPredictor(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("wire: decode predictor: %w", err)
	}
	return p, nil
}

// Materialize rebuilds a runnable fleet.Job from its serializable spec,
// resolving the workload by name, the governor against the device's OPP
// table, and a "usta" controller against the shard's predictor. It mirrors
// exactly what the scenario expander wires into the in-process Job, so a
// worker-built job runs the same physics the local runner would.
func Materialize(spec fleet.JobSpec, pred *core.Predictor) (fleet.Job, error) {
	if err := spec.Validate(); err != nil {
		return fleet.Job{}, err
	}
	wl := workload.ByName(spec.Workload.Name, spec.Workload.Seed)
	job := fleet.Job{
		Name:        spec.Name,
		User:        spec.User,
		Workload:    wl,
		Device:      spec.Device,
		DurSec:      spec.DurSec,
		DeadlineSec: spec.DeadlineSec,
		TraceFree:   spec.TraceFree,
		Seed:        spec.Seed,
	}
	if spec.Governor != "" {
		devCfg := device.DefaultConfig()
		if spec.Device != nil {
			devCfg = *spec.Device
		}
		freqs := make([]float64, len(devCfg.SoC.OPPs))
		for i, o := range devCfg.SoC.OPPs {
			freqs[i] = o.FreqMHz
		}
		factory, err := fleet.GovernorFactory(spec.Governor, freqs)
		if err != nil {
			return fleet.Job{}, fmt.Errorf("fleet: job spec %d: %w", spec.Index, err)
		}
		job.Governor = factory
	}
	if spec.Controller == "usta" {
		if pred == nil {
			return fleet.Job{}, fmt.Errorf("fleet: job spec %d uses a usta controller but the shard request carries no predictor", spec.Index)
		}
		limit := spec.LimitC
		job.Controller = func(users.User) device.Controller {
			return core.NewUSTA(pred, limit)
		}
	}
	return job, nil
}

// SampleWriter returns a sink.Remote that forwards every sample as a
// TypeSample frame through write, mapping the local runner's job tags to
// global indices via toGlobal. write must serialize access to the
// underlying stream (the worker shares it with result frames).
func SampleWriter(write func(*Frame) error, toGlobal func(sink.JobID) int) *sink.Remote {
	return sink.NewRemote(func(id sink.JobID, s device.Sample) error {
		return write(&Frame{V: Version, Type: TypeSample,
			Sample: &SampleFrame{Job: toGlobal(id), Sample: s}})
	})
}
