// Package shard executes fleet batches across worker subprocesses: the
// coordinator partitions a job slice into contiguous shards, ships each as
// a wire.ShardRequest to one worker over stdin, and merges the result and
// telemetry frames streaming back over stdout into submission order. The
// Job/JobResult contract was designed to survive serialization — seeds are
// resolved from grid position before dispatch, results carry their global
// index — so a sharded run is byte-identical to a local one at any process
// count. Swapping the pipe transport for a socket is all that separates
// this from multi-host execution.
package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/fleet/wire"
	"repro/internal/sink"
)

// Runner is the multi-process fleet.Runner. The zero value is not useful;
// construct with New.
type Runner struct {
	// Procs is the number of worker processes (normalized like every other
	// parallelism knob: <= 0 means GOMAXPROCS). Each process receives one
	// contiguous shard of the batch.
	Procs int
	// Command launches one worker: argv[0] plus arguments. Nil re-executes
	// the current binary with the worker environment variable set, which
	// requires main (or TestMain) to call Main early — cmd/ustasim and
	// cmd/ustaworker both do. Point it at a ustaworker binary to decouple
	// coordinator and worker builds.
	Command []string
	// Predictor backs "usta" job specs in the workers; it is serialized
	// once per run and shipped inside every shard request.
	Predictor *core.Predictor
	// Batched makes every worker process execute its shard on the
	// cohort-batched lockstep runner (fleet.BatchRunner) instead of the
	// per-job pool — the two perf layers compose: shards fan jobs across
	// processes, batching fuses the thermal advance inside each. Output is
	// byte-identical either way.
	Batched bool
}

// New creates a shard runner with n worker processes (<= 0: GOMAXPROCS).
func New(n int) *Runner { return &Runner{Procs: n} }

// errNoSpec marks jobs that cannot cross a process boundary.
var errNoSpec = errors.New("shard: job has no serializable spec (Job.Spec); only scenario-expanded or spec-carrying jobs can run on a shard runner")

// Run implements fleet.Runner: it partitions jobs into contiguous shards,
// one per worker process, and merges the streams back. Seeds are resolved
// coordinator-side through fleet.EffectiveSeed, so output is byte-identical
// to LocalRunner at any process count. Failures degrade per job: a spec-less
// job, a crashed worker or a cancelled context mark the affected results
// with errors while every other shard completes.
func (r *Runner) Run(ctx context.Context, cfg fleet.Config, jobs []fleet.Job) []fleet.JobResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]fleet.JobResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	report := fleet.ResultReporter(cfg, len(jobs))
	pred, err := wire.EncodePredictor(r.Predictor)
	if err != nil {
		for i := range jobs {
			results[i] = errResult(i, &jobs[i], err)
			report(results[i])
		}
		return results
	}
	procs := fleet.NormalizeWorkers(r.Procs)
	if procs > len(jobs) {
		procs = len(jobs)
	}
	// Per-process pool width: an explicit Workers is taken as given; unset
	// splits the machine's cores across the shard processes so the default
	// does not oversubscribe procs × GOMAXPROCS.
	if cfg.Workers <= 0 {
		cfg.Workers = (fleet.NormalizeWorkers(0) + procs - 1) / procs
	}
	var wg sync.WaitGroup
	for s := 0; s < procs; s++ {
		start := s * len(jobs) / procs
		end := (s + 1) * len(jobs) / procs
		wg.Add(1)
		go func(shardID, start, end int) {
			defer wg.Done()
			r.runShard(ctx, cfg, pred, shardID, start, jobs[start:end], results[start:end], report)
		}(s, start, end)
	}
	wg.Wait()
	return results
}

// errResult builds the failed JobResult for job i, matching the local
// runner's name synthesis.
func errResult(i int, job *fleet.Job, err error) fleet.JobResult {
	res := fleet.JobResult{Index: i, Name: job.Name, User: job.User, Err: err}
	if res.Name == "" && job.Workload != nil {
		res.Name = job.Workload.Name()
	}
	return res
}

// runShard dispatches jobs[0:n] (global indices start..start+n) to one
// worker process and fills results as frames arrive.
func (r *Runner) runShard(ctx context.Context, cfg fleet.Config, pred []byte, shardID, start int, jobs []fleet.Job, results []fleet.JobResult, report func(fleet.JobResult)) {
	// Build the request: spec-less jobs fail here, spec'd jobs get their
	// seed resolved exactly like the local runner would have.
	req := &wire.ShardRequest{Workers: cfg.Workers, Predictor: pred, WantSamples: cfg.Sink != nil, Batched: r.Batched, Event: int(cfg.Event)}
	received := make([]bool, len(jobs))
	for i := range jobs {
		if jobs[i].Spec == nil {
			results[i] = errResult(start+i, &jobs[i], errNoSpec)
			received[i] = true
			report(results[i])
			continue
		}
		spec := *jobs[i].Spec
		spec.Index = start + i
		spec.Seed = fleet.EffectiveSeed(cfg.Seed, start+i, &jobs[i])
		req.Jobs = append(req.Jobs, spec)
	}
	if len(req.Jobs) == 0 {
		return
	}

	shardErr := r.streamShard(ctx, shardID, req, func(f *wire.Frame) error {
		switch f.Type {
		case wire.TypeSample:
			if cfg.Sink != nil {
				cfg.Sink.Accept(sink.JobID(f.Sample.Job), f.Sample.Sample)
			}
		case wire.TypeResult:
			i := f.Result.Index - start
			if i < 0 || i >= len(jobs) {
				return fmt.Errorf("shard %d: result for job %d outside shard [%d,%d)", shardID, f.Result.Index, start, start+len(jobs))
			}
			results[i] = f.Result.Decode()
			received[i] = true
			report(results[i])
		}
		return nil
	})

	// Anything the worker never reported fails with the shard's error; a
	// cancelled context takes precedence so callers see the same
	// context-error marking the local runner produces.
	if shardErr == nil {
		shardErr = fmt.Errorf("shard %d: worker finished without reporting every job", shardID)
	}
	if err := ctx.Err(); err != nil {
		shardErr = err
	}
	for i := range jobs {
		if !received[i] {
			results[i] = errResult(start+i, &jobs[i], shardErr)
			report(results[i])
		}
	}
}

// streamShard spawns one worker, writes the request and dispatches every
// incoming frame to handle until the worker reports done. It returns nil
// after a clean done frame, or the stream/process failure.
func (r *Runner) streamShard(ctx context.Context, shardID int, req *wire.ShardRequest, handle func(*wire.Frame) error) (err error) {
	argv := r.Command
	if len(argv) == 0 {
		exe, exeErr := os.Executable()
		if exeErr != nil {
			return fmt.Errorf("shard %d: resolve worker binary: %w", shardID, exeErr)
		}
		argv = []string{exe}
	}
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), workerEnv+"=1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return fmt.Errorf("shard %d: %w", shardID, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("shard %d: %w", shardID, err)
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("shard %d: start worker: %w", shardID, err)
	}
	defer func() {
		// On a stream error the worker may still be alive and blocked
		// writing into the full stdout pipe; kill it or Wait would block
		// forever on a process that never exits.
		if err != nil && cmd.Process != nil {
			cmd.Process.Kill()
		}
		// Reap the process; surface its failure (with stderr) only when the
		// stream didn't already explain the problem.
		waitErr := cmd.Wait()
		if err != nil && waitErr != nil {
			err = fmt.Errorf("%w (worker: %v%s)", err, waitErr, stderrSuffix(&stderr))
		} else if err == nil && waitErr != nil {
			err = fmt.Errorf("shard %d: worker failed: %w%s", shardID, waitErr, stderrSuffix(&stderr))
		}
	}()

	writeErr := wire.WriteFrame(stdin, &wire.Frame{V: wire.Version, Type: wire.TypeShard, Shard: req})
	stdin.Close()
	if writeErr != nil {
		return fmt.Errorf("shard %d: send request: %w", shardID, writeErr)
	}
	for {
		f, ferr := wire.ReadFrame(stdout)
		if ferr != nil {
			if errors.Is(ferr, io.EOF) || errors.Is(ferr, io.ErrUnexpectedEOF) {
				return fmt.Errorf("shard %d: worker stream ended before done frame", shardID)
			}
			return fmt.Errorf("shard %d: %w", shardID, ferr)
		}
		switch f.Type {
		case wire.TypeDone:
			// Drain any trailing output so Wait doesn't block on the pipe.
			io.Copy(io.Discard, stdout)
			return nil
		case wire.TypeError:
			return fmt.Errorf("shard %d: worker: %s", shardID, f.Err)
		default:
			if herr := handle(f); herr != nil {
				return herr
			}
		}
	}
}

// stderrSuffix formats captured worker stderr for error messages.
func stderrSuffix(b *bytes.Buffer) string {
	s := bytes.TrimSpace(b.Bytes())
	if len(s) == 0 {
		return ""
	}
	const max = 512
	if len(s) > max {
		s = s[len(s)-max:]
	}
	return fmt.Sprintf("; stderr: %s", s)
}
