package shard

import (
	"context"
	"fmt"
	"io"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync"

	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/fleet/wire"
	"repro/internal/sink"
)

// workerEnv marks a process as a shard worker. The coordinator sets it on
// every worker it spawns; Main checks it.
const workerEnv = "USTA_SHARD_WORKER"

// crashEnv is a test-only fault injector: a worker exits abruptly (code 3,
// no done frame) right after reporting the job with this global index. The
// failure-path tests use it to simulate a worker crash mid-shard.
const crashEnv = "USTA_SHARD_CRASH_ON_INDEX"

// IsWorker reports whether this process was spawned as a shard worker.
func IsWorker() bool { return os.Getenv(workerEnv) == "1" }

// batchedRunner is shared by every batched shard this process serves: a
// long-lived worker daemon recycles phone allocations across requests
// instead of rebuilding each cohort from scratch. (One-shot pipe workers
// serve a single request; they neither gain nor lose.)
var batchedRunner = fleet.NewBatchRunner()

// Main serves one shard over stdin/stdout and exits, when the current
// process was spawned as a shard worker; otherwise it is a no-op. Call it
// at the top of main() — before flag parsing — in any binary that
// coordinates shard runs with the default self-exec Command (cmd/ustasim
// does), and in TestMain of packages whose tests shard.
func Main() {
	if !IsWorker() {
		return
	}
	if err := Serve(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "shard worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// Serve handles one shard request read from r: it materializes the specs,
// runs them on the in-process LocalRunner, and streams sample and result
// frames to w, ending with a done frame. Request-level failures (malformed
// frame, undecodable predictor) produce an error frame and a non-nil
// return; per-job failures (bad spec, bad device config) travel as
// individual result frames and leave the shard alive.
func Serve(r io.Reader, w io.Writer) error {
	var wmu sync.Mutex // one stream, many writers (samples + results)
	write := func(f *wire.Frame) error {
		wmu.Lock()
		defer wmu.Unlock()
		return wire.WriteFrame(w, f)
	}
	fail := func(err error) error {
		write(&wire.Frame{V: wire.Version, Type: wire.TypeError, Err: err.Error()})
		return err
	}
	f, err := wire.ReadFrame(r)
	if err != nil {
		return fail(fmt.Errorf("read request: %w", err))
	}
	if f.Type != wire.TypeShard {
		return fail(fmt.Errorf("expected a %s frame, got %s", wire.TypeShard, f.Type))
	}
	if err := ServeRequest(context.Background(), f.Shard, write); err != nil {
		return fail(err)
	}
	return write(&wire.Frame{V: wire.Version, Type: wire.TypeDone})
}

// ServeRequest executes one already-decoded shard request, streaming sample
// and result frames through write (which must serialize access to the
// underlying stream). It is the execution core shared by the pipe worker
// (Serve) and the TCP daemon (internal/fleet/net): request-level failures —
// an undecodable predictor, a broken transport — return a non-nil error for
// the caller to encode; per-job failures travel as individual result frames
// and leave the shard alive. A cancelled ctx degrades to per-job context
// errors on the unfinished jobs, exactly like the local runner; the done
// (or error) frame stays the caller's responsibility.
func ServeRequest(ctx context.Context, req *wire.ShardRequest, write func(*wire.Frame) error) error {
	pred, err := wire.DecodePredictor(req.Predictor)
	if err != nil {
		return err
	}
	canonicalizeDevices(req.Jobs)

	// Materialize the runnable jobs; specs that fail report immediately as
	// per-job errors and stay out of the batch.
	jobs := make([]fleet.Job, 0, len(req.Jobs))
	global := make([]int, 0, len(req.Jobs)) // local batch index → global index
	for i := range req.Jobs {
		spec := &req.Jobs[i]
		job, merr := wire.Materialize(*spec, pred)
		if merr != nil {
			rf := &wire.ResultFrame{Index: spec.Index, Name: spec.Name, User: spec.User, Err: merr.Error()}
			if rf.Name == "" {
				rf.Name = spec.Workload.Name
			}
			if err := write(&wire.Frame{V: wire.Version, Type: wire.TypeResult, Result: rf}); err != nil {
				return err
			}
			continue
		}
		jobs = append(jobs, job)
		global = append(global, spec.Index)
	}

	crashOn, crashArmed := crashIndex()
	cfg := fleet.Config{Workers: req.Workers, Event: device.EventMode(req.Event)}
	var remote *sink.Remote
	if req.WantSamples {
		remote = wire.SampleWriter(write, func(id sink.JobID) int { return global[int(id)] })
		cfg.Sink = remote
	}
	var mu sync.Mutex
	var resErr error
	cfg.OnResult = func(res fleet.JobResult) {
		// Stream each result as it completes so the coordinator's progress
		// is live and a crash loses only unreported jobs.
		idx := global[res.Index]
		rf := wire.EncodeResult(res)
		rf.Index = idx
		err := write(&wire.Frame{V: wire.Version, Type: wire.TypeResult, Result: rf})
		mu.Lock()
		if err != nil && resErr == nil {
			resErr = err
		}
		mu.Unlock()
		if crashArmed && idx == crashOn {
			os.Exit(3)
		}
	}
	var runner fleet.Runner = fleet.LocalRunner{}
	if req.Batched {
		runner = batchedRunner
	}
	runner.Run(ctx, cfg, jobs)
	mu.Lock()
	err = resErr
	mu.Unlock()
	if err != nil {
		return err
	}
	if remote != nil {
		if err := remote.Close(); err != nil {
			return fmt.Errorf("telemetry stream: %w", err)
		}
	}
	return nil
}

// canonicalizeDevices aliases value-identical device configurations to
// one pointer. JSON decoding gives every spec its own Device copy, but the
// local runner's phone pool is keyed by the Job.Device pointer — without
// re-aliasing, a shard sweeping one configuration would never reuse a
// phone and lose the pool's allocation win. Shards carry few distinct
// configurations (one per scenario workload × ambient row), so the
// quadratic-in-unique-configs scan is cheap.
func canonicalizeDevices(specs []fleet.JobSpec) {
	var uniq []*device.Config
	for i := range specs {
		d := specs[i].Device
		if d == nil {
			continue
		}
		matched := false
		for _, u := range uniq {
			if reflect.DeepEqual(*u, *d) {
				specs[i].Device = u
				matched = true
				break
			}
		}
		if !matched {
			uniq = append(uniq, d)
		}
	}
}

// crashIndex reads the fault-injection env knob. It is honored only when
// the worker is a Go test binary, so a stray environment variable can
// never kill production workers (the coordinator forwards its whole
// environment to every worker it spawns).
func crashIndex() (int, bool) {
	if !strings.HasSuffix(os.Args[0], ".test") {
		return 0, false
	}
	v := os.Getenv(crashEnv)
	if v == "" {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return n, true
}
