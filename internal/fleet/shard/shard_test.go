package shard_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/fleet/shard"
	"repro/internal/sink"
	"repro/internal/workload"
)

// TestMain lets the test binary double as the shard worker: the runner's
// default Command re-executes the current executable with the worker
// environment set, and shard.Main serves the shard instead of running
// tests.
func TestMain(m *testing.M) {
	shard.Main()
	os.Exit(m.Run())
}

// specJobs builds n spec-carrying benchmark jobs (no predictor needed).
// Seeds are left unpinned so the tests exercise coordinator-side seed
// resolution against the local runner's.
func specJobs(n int, traceFree bool) []fleet.Job {
	jobs := make([]fleet.Job, n)
	for i := range jobs {
		spec := &fleet.JobSpec{
			Name:      fmt.Sprintf("job-%d", i),
			Workload:  fleet.WorkloadRef{Name: "skype", Seed: uint64(i)},
			DurSec:    30,
			TraceFree: traceFree,
		}
		jobs[i] = fleet.Job{
			Name:      spec.Name,
			Workload:  workload.ByName(spec.Workload.Name, spec.Workload.Seed),
			DurSec:    spec.DurSec,
			TraceFree: traceFree,
			Spec:      spec,
		}
	}
	return jobs
}

// tally accumulates per-job sample counts and skin-value sums — an
// order-insensitive fingerprint of the telemetry stream (per-job delivery
// order is FIFO on both paths, so the float sums are bit-comparable).
type tally struct {
	mu     sync.Mutex
	counts map[int]int
	sums   map[int]float64
}

func (t *tally) sink() sink.Sink {
	return sink.Func(func(id sink.JobID, s device.Sample) {
		t.mu.Lock()
		t.counts[int(id)]++
		t.sums[int(id)] += s.SkinC
		t.mu.Unlock()
	})
}

// TestShardRunnerMatchesLocal is the shard determinism contract: the same
// batch through 1-or-many worker processes must be byte-identical to the
// in-process pool — results, seeds, and the telemetry stream.
func TestShardRunnerMatchesLocal(t *testing.T) {
	const n = 6
	cfg := fleet.Config{Workers: 2, Seed: 42}

	run := func(r fleet.Runner) ([]fleet.JobResult, *tally) {
		tl := &tally{counts: map[int]int{}, sums: map[int]float64{}}
		c := cfg
		c.Sink = tl.sink()
		if r == nil {
			r = fleet.LocalRunner{}
		}
		return r.Run(context.Background(), c, specJobs(n, true)), tl
	}

	ref, refTally := run(nil)
	if err := fleet.FirstError(ref); err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 2, 4} {
		got, gotTally := run(shard.New(procs))
		if err := fleet.FirstError(got); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		for i := range ref {
			a, b := ref[i], got[i]
			if b.Index != a.Index || b.Name != a.Name || b.SeedUsed != a.SeedUsed {
				t.Fatalf("procs=%d job %d: metadata diverged: %+v vs %+v", procs, i, b, a)
			}
			if b.Result.EnergyJ != a.Result.EnergyJ || b.Result.MaxSkinC != a.Result.MaxSkinC ||
				b.Result.AvgFreqMHz != a.Result.AvgFreqMHz || b.Result.WorkDone != a.Result.WorkDone {
				t.Fatalf("procs=%d job %d: aggregates diverged", procs, i)
			}
		}
		for i := 0; i < n; i++ {
			if gotTally.counts[i] != refTally.counts[i] || gotTally.sums[i] != refTally.sums[i] {
				t.Fatalf("procs=%d job %d: telemetry diverged: %d/%v samples vs local %d/%v",
					procs, i, gotTally.counts[i], gotTally.sums[i], refTally.counts[i], refTally.sums[i])
			}
		}
	}
}

// TestShardRunnerProgress: OnProgress and OnResult fire once per job across
// all shards, serialized, ending at (total, total).
func TestShardRunnerProgress(t *testing.T) {
	jobs := specJobs(5, true)
	var dones []int
	var names []string
	cfg := fleet.Config{
		Workers:    1,
		Seed:       7,
		OnProgress: func(done, total int) { dones = append(dones, done*100+total) },
		OnResult:   func(r fleet.JobResult) { names = append(names, r.Name) },
	}
	results := shard.New(2).Run(context.Background(), cfg, jobs)
	if err := fleet.FirstError(results); err != nil {
		t.Fatal(err)
	}
	if len(dones) != len(jobs) || len(names) != len(jobs) {
		t.Fatalf("progress %d / results %d callbacks, want %d", len(dones), len(names), len(jobs))
	}
	for i, d := range dones {
		if d != (i+1)*100+len(jobs) {
			t.Fatalf("progress call %d = %d, want done=%d total=%d", i, d, i+1, len(jobs))
		}
	}
}

// TestShardRunnerSpeclessJobs: jobs without a serializable spec fail alone
// with a descriptive error while spec'd neighbors complete.
func TestShardRunnerSpeclessJobs(t *testing.T) {
	jobs := specJobs(4, true)
	jobs[2].Spec = nil
	results := shard.New(2).Run(context.Background(), fleet.Config{Workers: 1, Seed: 1}, jobs)
	for i, r := range results {
		if i == 2 {
			if r.Err == nil || !strings.Contains(r.Err.Error(), "no serializable spec") {
				t.Fatalf("spec-less job err = %v", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("job %d should have survived: %v", i, r.Err)
		}
	}
}

// TestShardRunnerWorkerCrash: a worker dying mid-shard surfaces as per-job
// errors on that shard's unreported jobs — jobs it already reported keep
// their results — while the other shard completes untouched.
func TestShardRunnerWorkerCrash(t *testing.T) {
	const n = 6 // 2 shards of 3
	r := shard.New(2)
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	r.Command = []string{exe}
	// The fault injector kills the worker right after it reports global
	// job 0, which lives in shard 0; shard 1 (jobs 3-5) must be untouched.
	t.Setenv("USTA_SHARD_CRASH_ON_INDEX", "0")
	// Workers=1 makes shard 0's reporting order deterministic: job 0
	// first, then the crash.
	results := r.Run(context.Background(), fleet.Config{Workers: 1, Seed: 42}, specJobs(n, true))

	if results[0].Err != nil || results[0].Result == nil {
		t.Fatalf("job 0 was reported before the crash; want its result kept, got err=%v", results[0].Err)
	}
	for i := 1; i < 3; i++ {
		if results[i].Err == nil {
			t.Fatalf("job %d belongs to the crashed shard; want an error", i)
		}
		if !strings.Contains(results[i].Err.Error(), "shard 0") {
			t.Fatalf("job %d error should name the failed shard: %v", i, results[i].Err)
		}
		if results[i].Name == "" {
			t.Fatalf("job %d error result lost its name", i)
		}
	}
	for i := 3; i < n; i++ {
		if results[i].Err != nil || results[i].Result == nil {
			t.Fatalf("job %d on the healthy shard failed: %v", i, results[i].Err)
		}
	}
}

// TestShardRunnerCancellation: a cancelled context tears the workers down
// and marks every unfinished job with the context error, matching the
// local runner's semantics (finished jobs keep their results).
func TestShardRunnerCancellation(t *testing.T) {
	longJobs := func(n int) []fleet.Job {
		jobs := make([]fleet.Job, n)
		for i := range jobs {
			spec := &fleet.JobSpec{
				Workload:  fleet.WorkloadRef{Name: "skype", Seed: 1},
				DurSec:    1800,
				TraceFree: true,
			}
			jobs[i] = fleet.Job{
				Workload:  workload.ByName(spec.Workload.Name, spec.Workload.Seed),
				DurSec:    spec.DurSec,
				TraceFree: true,
				Spec:      spec,
			}
		}
		return jobs
	}

	// Pre-cancelled context: nothing runs, every job carries the context
	// error — deterministic.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, r := range shard.New(2).Run(ctx, fleet.Config{Workers: 1, Seed: 1}, longJobs(4)) {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("pre-cancelled: job %d err = %v, want context.Canceled", i, r.Err)
		}
	}

	// Mid-run cancellation: the simulator may finish some jobs before the
	// deadline fires (it runs far faster than wall-clock), so assert the
	// invariant, not the count — every job either completed cleanly or was
	// cancelled, and the run returned promptly after the cancel.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel2()
	}()
	start := time.Now()
	results := shard.New(2).Run(ctx2, fleet.Config{Workers: 1, Seed: 1}, longJobs(400))
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("run took %v after cancellation; workers were not torn down", elapsed)
	}
	cancelled := 0
	for i, r := range results {
		switch {
		case r.Err == nil && r.Result != nil:
		case errors.Is(r.Err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("job %d: unexpected outcome err=%v result=%v", i, r.Err, r.Result != nil)
		}
	}
	if cancelled == 0 {
		t.Fatal("400 long jobs all finished before a 30ms cancel; expected at least one cancellation")
	}
}

// TestShardRunnerBadCommand: an unlaunchable worker fails its shard's jobs
// with the spawn error instead of hanging or panicking.
func TestShardRunnerBadCommand(t *testing.T) {
	r := shard.New(1)
	r.Command = []string{"/nonexistent/ustaworker"}
	results := r.Run(context.Background(), fleet.Config{Seed: 1}, specJobs(2, true))
	for i, res := range results {
		if res.Err == nil {
			t.Fatalf("job %d should carry the spawn failure", i)
		}
	}
}
