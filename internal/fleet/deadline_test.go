package fleet

import (
	"context"
	"errors"
	"testing"

	"repro/internal/workload"
)

// TestJobDeadlineExpires pins Job.DeadlineSec: a job whose wall-clock
// budget is vanishingly small is cancelled with DeadlineExceeded and
// returns a partial result, while an undeadlined sibling in the same batch
// completes normally.
func TestJobDeadlineExpires(t *testing.T) {
	jobs := []Job{
		{Workload: workload.ByName("game", 1), DeadlineSec: 1e-9},
		{Workload: workload.ByName("game", 2)},
	}
	results := New(Config{Workers: 2}).Run(context.Background(), jobs)
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("deadlined job err = %v, want DeadlineExceeded", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("undeadlined job failed: %v", results[1].Err)
	}
	if results[1].Result == nil || results[1].Result.DurSec <= 0 {
		t.Fatal("undeadlined job produced no result")
	}
}

// TestJobDeadlineBatchRoutesSolo checks the batch runner contract: a
// deadlined job cannot join a lockstep wave (one member's expiry would
// stall the cohort), so it runs solo — the wave members still finish and
// only the deadlined job carries the context error.
func TestJobDeadlineBatchRoutesSolo(t *testing.T) {
	jobs := []Job{
		{Workload: workload.ByName("game", 1)},
		{Workload: workload.ByName("game", 2), DeadlineSec: 1e-9},
		{Workload: workload.ByName("game", 3)},
	}
	results := New(Config{Workers: 2, Runner: BatchRunner{}}).Run(context.Background(), jobs)
	if !errors.Is(results[1].Err, context.DeadlineExceeded) {
		t.Fatalf("deadlined job err = %v, want DeadlineExceeded", results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Fatalf("wave job %d failed: %v", i, results[i].Err)
		}
	}
	// The generous-deadline case: far from expiry, results are identical to
	// an undeadlined run (the timeout context changes nothing but the bound).
	relaxed := []Job{{Workload: workload.ByName("game", 7), DeadlineSec: 3600}}
	plain := []Job{{Workload: workload.ByName("game", 7)}}
	rr := New(Config{Workers: 1}).Run(context.Background(), relaxed)
	rp := New(Config{Workers: 1}).Run(context.Background(), plain)
	if rr[0].Err != nil || rp[0].Err != nil {
		t.Fatalf("errs: %v / %v", rr[0].Err, rp[0].Err)
	}
	if rr[0].Result.MaxSkinC != rp[0].Result.MaxSkinC || rr[0].Result.EnergyJ != rp[0].Result.EnergyJ {
		t.Fatal("a generous deadline changed the physics")
	}
}
