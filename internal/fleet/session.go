// Package fleet is the concurrency layer of the reproduction: Session wraps
// one simulated handset behind functional-options construction and
// context-aware execution, and Fleet fans many independent (user, workload,
// device, controller) jobs out across a worker pool with deterministic
// per-job seeding. The paper's evaluation pipeline (internal/experiments)
// and every cmd/ tool are consumers; nothing here knows about USTA
// specifically — controllers arrive through the device.Controller interface.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/governor"
	"repro/internal/sink"
	"repro/internal/workload"
)

// ambient bounds: the RC network is calibrated for habitable conditions;
// far outside them the fitted conductances stop meaning anything.
const (
	minAmbientC = -40
	maxAmbientC = 60
)

// sessionConfig accumulates option state before the phone is assembled.
type sessionConfig struct {
	device    device.Config
	gov       governor.Governor
	govName   string
	govSet    bool
	ctrl      device.Controller
	observer  func(device.Sample)
	sink      sink.Sink
	ambient   *float64
	seed      *int64
	traceFree bool
	deadline  time.Duration
}

// Option configures a Session under construction. Options validate eagerly
// and return errors instead of panicking; NewSession reports the first
// failure.
type Option func(*sessionConfig) error

// WithDevice sets the handset configuration (default: device.DefaultConfig).
// The configuration itself is validated when the phone is assembled.
func WithDevice(cfg device.Config) Option {
	return func(sc *sessionConfig) error {
		sc.device = cfg
		return nil
	}
}

// WithGovernor installs a specific cpufreq governor instance. Mutually
// exclusive with WithGovernorName.
func WithGovernor(g governor.Governor) Option {
	return func(sc *sessionConfig) error {
		if g == nil {
			return errors.New("fleet: WithGovernor(nil)")
		}
		if sc.govSet {
			return errors.New("fleet: governor configured twice")
		}
		sc.gov = g
		sc.govSet = true
		return nil
	}
}

// WithGovernorName selects a governor by its sysfs name ("ondemand",
// "interactive", "conservative", "schedutil", "performance", "powersave"),
// resolved against the device's OPP table at construction time. Mutually
// exclusive with WithGovernor.
func WithGovernorName(name string) Option {
	return func(sc *sessionConfig) error {
		if sc.govSet {
			return errors.New("fleet: governor configured twice")
		}
		sc.govName = name
		sc.govSet = true
		return nil
	}
}

// WithController attaches a thermal controller (e.g. core.NewUSTA) to the
// session's phone.
func WithController(c device.Controller) Option {
	return func(sc *sessionConfig) error {
		if c == nil {
			return errors.New("fleet: WithController(nil)")
		}
		sc.ctrl = c
		return nil
	}
}

// WithAmbientC overrides the ambient temperature of the device's thermal
// environment.
func WithAmbientC(c float64) Option {
	return func(sc *sessionConfig) error {
		if c < minAmbientC || c > maxAmbientC {
			return fmt.Errorf("fleet: ambient %.1f °C outside the calibrated range [%g, %g]", c, float64(minAmbientC), float64(maxAmbientC))
		}
		sc.ambient = &c
		return nil
	}
}

// WithSeed overrides the device seed driving sensor noise.
func WithSeed(seed int64) Option {
	return func(sc *sessionConfig) error {
		sc.seed = &seed
		return nil
	}
}

// WithObserver installs a per-sample telemetry hook fired once per trace
// row during Run, so callers can stream live telemetry instead of waiting
// for the aggregate RunResult. This is the low-level escape hatch; prefer
// WithSink for anything that writes, buffers, or fans out.
//
// The observer is independent of trace retention: under WithTraceFree it
// still fires for every sample the trace would have recorded (one per
// RecordPeriodSec), so streaming consumers lose nothing when the in-memory
// Trace is turned off.
func WithObserver(fn func(device.Sample)) Option {
	return func(sc *sessionConfig) error {
		if fn == nil {
			return errors.New("fleet: WithObserver(nil)")
		}
		sc.observer = fn
		return nil
	}
}

// WithSink streams the session's telemetry into a sink (job tag 0).
// Composable with WithObserver: the observer fires first, then the sink.
// Like WithObserver, the sink receives every sample even under
// WithTraceFree. The session does not close the sink; the caller does.
func WithSink(s sink.Sink) Option {
	return func(sc *sessionConfig) error {
		if s == nil {
			return errors.New("fleet: WithSink(nil)")
		}
		if sc.sink != nil {
			return errors.New("fleet: sink configured twice")
		}
		sc.sink = s
		return nil
	}
}

// WithTraceFree runs the session trace-free: RunResult.Trace and
// RunResult.Records stay nil while all aggregates (peak temperatures,
// averages, energy, work) are computed exactly as in a traced run.
// WithObserver hooks and WithSink sinks still receive every sample, one
// per RecordPeriodSec — exactly the rows the trace would have held — so
// telemetry can be streamed instead of buffered. Use for long or many runs
// where the per-second history would dominate memory. Controllers that
// consume the full Records history (the recalibrating wrapper) need traced
// runs; see device.Phone.SetTraceFree.
func WithTraceFree() Option {
	return func(sc *sessionConfig) error {
		sc.traceFree = true
		return nil
	}
}

// WithDeadline bounds each Run/RunFor call's wall-clock execution time:
// the run is cancelled with context.DeadlineExceeded once it has been
// executing that long, returning the partial result like any other
// cancellation. The session-level twin of fleet.Job.DeadlineSec — use it
// so one wedged run cannot pin a pipeline (or a crash-recovered
// coordinator) forever. It composes with a caller-supplied context; the
// earlier deadline wins.
func WithDeadline(d time.Duration) Option {
	return func(sc *sessionConfig) error {
		if d <= 0 {
			return fmt.Errorf("fleet: WithDeadline(%v): deadline must be positive", d)
		}
		sc.deadline = d
		return nil
	}
}

// Session is one simulated handset plus its run policy. Consecutive Run
// calls continue on the same phone: thermal state, battery charge and the
// controller's history carry over, exactly like back-to-back apps on a real
// device. Build a fresh Session for statistically independent runs.
type Session struct {
	phone    *device.Phone
	deadline time.Duration
}

// NewSession assembles a simulated handset from the options. It never
// panics: invalid configurations (bad step sizes, unknown governor names,
// implausible ambients, nil hooks) are reported as errors.
func NewSession(opts ...Option) (*Session, error) {
	sc := sessionConfig{device: device.DefaultConfig()}
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("fleet: nil Option")
		}
		if err := opt(&sc); err != nil {
			return nil, err
		}
	}
	if sc.ambient != nil {
		sc.device.Thermal.Ambient = *sc.ambient
	}
	if sc.seed != nil {
		sc.device.Seed = *sc.seed
	}
	gov := sc.gov
	if gov == nil && sc.govName != "" {
		freqs := make([]float64, len(sc.device.SoC.OPPs))
		for i, o := range sc.device.SoC.OPPs {
			freqs[i] = o.FreqMHz
		}
		g, err := governor.ByName(sc.govName, freqs)
		if err != nil {
			return nil, err
		}
		gov = g
	}
	phone, err := device.New(sc.device, gov)
	if err != nil {
		return nil, err
	}
	if sc.ctrl != nil {
		phone.SetController(sc.ctrl)
	}
	switch {
	case sc.observer != nil && sc.sink != nil:
		obs, sk := sc.observer, sc.sink
		phone.SetObserver(func(s device.Sample) {
			obs(s)
			sk.Accept(0, s)
		})
	case sc.observer != nil:
		phone.SetObserver(sc.observer)
	case sc.sink != nil:
		sk := sc.sink
		phone.SetObserver(func(s device.Sample) { sk.Accept(0, s) })
	}
	if sc.traceFree {
		phone.SetTraceFree(true)
	}
	return &Session{phone: phone, deadline: sc.deadline}, nil
}

// Phone exposes the underlying handset for inspection (temperatures, trace
// internals); mutate it between runs at your own risk.
func (s *Session) Phone() *device.Phone { return s.phone }

// Run executes the workload in full, honoring context cancellation and
// deadlines between simulation steps. On early stop it returns the partial
// result together with the context's error.
func (s *Session) Run(ctx context.Context, w workload.Workload) (*device.RunResult, error) {
	return s.RunFor(ctx, w, 0)
}

// RunFor is Run truncated to durSec seconds of simulated time (<= 0 runs
// the workload's full duration).
func (s *Session) RunFor(ctx context.Context, w workload.Workload, durSec float64) (*device.RunResult, error) {
	if w == nil {
		return nil, errors.New("fleet: Run with nil workload")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if s.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.deadline)
		defer cancel()
	}
	return s.phone.RunContext(ctx, w, durSec)
}
