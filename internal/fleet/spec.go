package fleet

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/governor"
	"repro/internal/users"
	"repro/internal/workload"
)

// WorkloadRef names a workload reconstructible by workload.ByName — the
// serializable form of the workload axis. Only the thirteen paper
// benchmarks have names; synthetic workloads cannot cross a process
// boundary and keep their jobs on the local runner.
type WorkloadRef struct {
	// Name is one of workload.BenchmarkNames.
	Name string `json:"name"`
	// Seed is the construction seed (phase jitter), passed to
	// workload.ByName exactly as the originating side did.
	Seed uint64 `json:"seed,omitempty"`
}

// JobSpec is the serializable description of a Job: everything a worker
// process needs to rebuild and run the job — workload by name, device
// configuration by value, governor and controller by name — without the
// closures the in-process Job carries. The scenario expander attaches one
// to every job it emits; hand-built jobs opt in to sharding by attaching
// their own. Specs travel inside wire.ShardRequest frames
// (internal/fleet/wire).
type JobSpec struct {
	// Index is the job's position in the whole submitted batch. The shard
	// coordinator stamps it before dispatch; workers tag results and
	// telemetry samples with it so the coordinator can merge streams from
	// every shard back into submission order.
	Index int `json:"index"`
	// Name labels the job (empty: synthesized from the workload).
	Name string `json:"name,omitempty"`
	// User is the participant, by value (users.User is plain data).
	User users.User `json:"user,omitempty"`
	// Workload names the demand trace.
	Workload WorkloadRef `json:"workload"`
	// Device is the handset configuration (nil: device.DefaultConfig).
	Device *device.Config `json:"device,omitempty"`
	// Governor is a cpufreq governor sysfs name ("" keeps the stock
	// default).
	Governor string `json:"governor,omitempty"`
	// Controller selects the thermal controller: "" or "none" for a stock
	// phone, "usta" for the paper's controller built against the shard
	// request's predictor.
	Controller string `json:"controller,omitempty"`
	// LimitC is the skin limit a "usta" controller enforces.
	LimitC float64 `json:"limit_c,omitempty"`
	// DurSec truncates the run (<= 0: full workload duration).
	DurSec float64 `json:"dur_sec,omitempty"`
	// DeadlineSec mirrors Job.DeadlineSec (wall-clock bound; 0 = none).
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
	// TraceFree mirrors Job.TraceFree.
	TraceFree bool `json:"trace_free,omitempty"`
	// Seed is the pinned device seed. The coordinator resolves it through
	// EffectiveSeed before dispatch, so it is always non-zero on the wire —
	// the worker never re-derives seeds, which is what keeps a sharded
	// batch byte-identical to a local one.
	Seed int64 `json:"seed,omitempty"`
}

// Validate reports whether the spec can be materialized into a runnable
// job. It checks the declarative fields only; predictor availability for
// "usta" controllers is the materializer's concern.
func (s *JobSpec) Validate() error {
	if s.Workload.Name == "" {
		return fmt.Errorf("fleet: job spec %d has no workload", s.Index)
	}
	// Membership check by name only: workload.ByName would construct all
	// thirteen benchmark programs per call, and Validate runs once per job
	// on the worker's startup path.
	known := false
	for _, n := range workload.BenchmarkNames {
		if n == s.Workload.Name {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("fleet: job spec %d: unknown workload %q", s.Index, s.Workload.Name)
	}
	switch s.Controller {
	case "", "none", "usta":
	default:
		return fmt.Errorf("fleet: job spec %d: unknown controller %q", s.Index, s.Controller)
	}
	if s.Controller == "usta" && s.LimitC <= 0 {
		return fmt.Errorf("fleet: job spec %d: usta controller needs a positive limit, got %g", s.Index, s.LimitC)
	}
	if s.Seed == 0 {
		return fmt.Errorf("fleet: job spec %d has no pinned seed (the coordinator resolves seeds before dispatch)", s.Index)
	}
	return nil
}

// GovernorFactory resolves a cpufreq governor name against an OPP
// frequency table into a per-job factory (governors are stateful; each
// job needs its own instance). The scenario expander and the shard
// worker's materializer both build factories through this one helper, so
// the in-process and cross-process jobs cannot drift apart.
func GovernorFactory(name string, freqs []float64) (func() governor.Governor, error) {
	if _, err := governor.ByName(name, freqs); err != nil {
		return nil, err
	}
	return func() governor.Governor {
		g, err := governor.ByName(name, freqs)
		if err != nil { // validated above; unreachable
			panic(err)
		}
		return g
	}, nil
}
