package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/device"
	"repro/internal/governor"
	"repro/internal/sink"
	"repro/internal/users"
	"repro/internal/workload"
)

// Config parameterizes a Fleet.
type Config struct {
	// Workers bounds simultaneous simulations (<= 0: GOMAXPROCS).
	Workers int
	// Seed is the base for derived per-job seeds (jobs with an explicit
	// Seed ignore it). Deriving from (Seed, job index) — never from worker
	// identity or scheduling — is what makes Run's output independent of
	// Workers.
	Seed int64
	// OnProgress, when set, is called after each job completes with the
	// number of finished jobs and the batch size. Calls are serialized.
	OnProgress func(done, total int)
	// Sink, when set, receives every telemetry sample of every job, tagged
	// with the job's index (sink.JobID matches JobResult.Index). Accept is
	// called concurrently from worker goroutines; the built-ins in package
	// sink synchronize internally. Combined with Job.TraceFree this is the
	// O(1)-memory path for large sweeps: samples stream out as they are
	// produced and no per-job Trace is retained. The fleet never closes the
	// sink — the caller owns its lifecycle.
	Sink sink.Sink
}

// Job is one unit of fleet work: a user running a workload on a device
// under an optional governor and thermal controller.
type Job struct {
	// Name labels the job in results; empty names are synthesized from the
	// workload and controller.
	Name string
	// User is the participant this run simulates. Controller factories
	// receive it, so per-user personalization (the paper's whole point)
	// lives in one place. The zero User means "default user".
	User users.User
	// Workload is the demand trace to execute (required).
	Workload workload.Workload
	// Device is the handset configuration; nil selects
	// device.DefaultConfig. A non-nil config is used as given (and
	// validated by the device layer), so partial configs fail with a
	// descriptive per-job error instead of being silently replaced.
	Device *device.Config
	// Governor, when non-nil, builds the job's cpufreq governor. A factory
	// rather than an instance: governors are stateful and each job needs
	// its own.
	Governor func() governor.Governor
	// Controller, when non-nil, builds the job's thermal controller from
	// the job's user (return nil for a stock phone).
	Controller func(u users.User) device.Controller
	// DurSec truncates the run (<= 0: full workload duration).
	DurSec float64
	// TraceFree skips Trace and Records retention on the result while
	// keeping every aggregate (peak temperatures, averages, energy, work)
	// bit-identical to a traced run. Population sweeps that only consume
	// aggregates should set it: per-second history dominates the memory of
	// large batches. Controllers that consume the full Records history
	// (the recalibrating wrapper) need traced runs; see
	// device.Phone.SetTraceFree.
	TraceFree bool
	// Seed, when non-zero, pins the device seed (zero is "unset"
	// throughout this codebase, so a literal zero seed cannot be pinned
	// here — set Device.Seed for that). When zero, a non-zero
	// Device.Seed is honored as given, matching Session semantics;
	// otherwise the fleet derives a seed from its base seed and the job
	// index.
	Seed int64
}

// JobResult is one job's outcome. Failures are per-job: a bad device config
// or a cancelled context yields an Err on the affected results instead of
// aborting the batch.
type JobResult struct {
	// Index is the job's position in the submitted slice; Run returns
	// results in submission order regardless of scheduling.
	Index int
	// Name echoes (or synthesizes) the job label.
	Name string
	// User echoes the job's participant.
	User users.User
	// SeedUsed is the device seed the run actually used, for reproducing a
	// single job outside the fleet.
	SeedUsed int64
	// Result is the aggregate run outcome (partial when Err is a context
	// error, nil when construction failed).
	Result *device.RunResult
	// Err is the job's failure, if any.
	Err error
}

// Fleet executes batches of independent simulation jobs on a worker pool.
type Fleet struct {
	cfg Config
}

// New creates a fleet; a zero Config is valid and uses GOMAXPROCS workers.
func New(cfg Config) *Fleet {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Fleet{cfg: cfg}
}

// Workers reports the configured worker-pool width.
func (f *Fleet) Workers() int { return f.cfg.Workers }

// Run executes all jobs and returns one result per job, in submission
// order. Output is deterministic: per-job seeds derive from the job index,
// so the same jobs produce identical results at any worker count. A
// cancelled context marks the remaining jobs' results with the context
// error rather than failing the batch.
func (f *Fleet) Run(ctx context.Context, jobs []Job) []JobResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]JobResult, len(jobs))
	var mu sync.Mutex
	done := 0
	ForEach(len(jobs), f.cfg.Workers, func(i int) {
		results[i] = f.runJob(ctx, i, jobs[i])
		if f.cfg.OnProgress != nil {
			mu.Lock()
			done++
			f.cfg.OnProgress(done, len(jobs))
			mu.Unlock()
		}
	})
	return results
}

// runJob builds and executes one job's phone.
func (f *Fleet) runJob(ctx context.Context, i int, job Job) JobResult {
	r := JobResult{Index: i, Name: job.Name, User: job.User}
	if job.Workload == nil {
		r.Err = fmt.Errorf("fleet: job %d has no workload", i)
		return r
	}
	if r.Name == "" {
		r.Name = job.Workload.Name()
	}
	if err := ctx.Err(); err != nil {
		r.Err = err
		return r
	}
	cfg := device.DefaultConfig()
	pinnedByConfig := false
	if job.Device != nil {
		cfg = *job.Device
		// Only a caller-provided config can pin the seed; the fallback
		// default config's own seed must not suppress per-job derivation,
		// or every nil-Device job in a population would share one noise
		// stream.
		pinnedByConfig = cfg.Seed != 0
	}
	seed := job.Seed
	if seed == 0 {
		if pinnedByConfig { // honor the config's own seed, like Session
			seed = cfg.Seed
		} else {
			seed = DeriveSeed(f.cfg.Seed, i)
		}
	}
	cfg.Seed = seed
	r.SeedUsed = seed
	var gov governor.Governor
	if job.Governor != nil {
		gov = job.Governor()
	}
	phone, err := device.New(cfg, gov)
	if err != nil {
		r.Err = err
		return r
	}
	if job.Controller != nil {
		if c := job.Controller(job.User); c != nil {
			phone.SetController(c)
		}
	}
	if f.cfg.Sink != nil {
		id := sink.JobID(i)
		phone.SetObserver(func(s device.Sample) { f.cfg.Sink.Accept(id, s) })
	}
	if job.TraceFree {
		phone.SetTraceFree(true)
	}
	r.Result, r.Err = phone.RunContext(ctx, job.Workload, job.DurSec)
	return r
}

// DeriveSeed maps (base, index) to a device seed via a splitmix64 mix, the
// same construction package workload uses for jitter. The result depends
// only on its arguments — never on scheduling — and is never zero (zero
// would read as "unset" downstream).
func DeriveSeed(base int64, index int) int64 {
	x := uint64(base)*0x9e3779b97f4a7c15 + uint64(index+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	s := int64(x)
	if s == 0 {
		s = 1
	}
	return s
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines (<= 0: GOMAXPROCS). It is the fleet's scheduling primitive,
// exported for phone-free fan-out such as cross-validating prediction
// models or collecting training corpora. fn must handle its own
// synchronization for shared state; writing to element i of a pre-sized
// slice is safe.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// FirstError returns the first job error in index order, or nil.
func FirstError(results []JobResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("fleet: job %d (%s): %w", r.Index, r.Name, r.Err)
		}
	}
	return nil
}
