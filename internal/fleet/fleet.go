package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/device"
	"repro/internal/governor"
	"repro/internal/sink"
	"repro/internal/users"
	"repro/internal/workload"
)

// Config parameterizes a batch run. It is shared by every Runner: the
// in-process LocalRunner consumes all of it directly, while multi-process
// runners (internal/fleet/shard) forward Workers to each worker process and
// service Sink/OnProgress/OnResult on the coordinator side.
type Config struct {
	// Workers bounds simultaneous simulations (<= 0: GOMAXPROCS; see
	// NormalizeWorkers). Under a sharding runner a positive value is the
	// pool width inside each worker process; left unset, the machine's
	// cores are split across the shard processes instead of oversubscribed
	// procs × GOMAXPROCS wide.
	Workers int
	// Seed is the base for derived per-job seeds (jobs with an explicit
	// Seed ignore it). Deriving from (Seed, job index) — never from worker
	// identity or scheduling — is what makes Run's output independent of
	// Workers, and of how jobs are partitioned across processes.
	Seed int64
	// OnProgress, when set, is called after each job completes with the
	// number of finished jobs and the batch size. Calls are serialized.
	OnProgress func(done, total int)
	// OnResult, when set, receives each JobResult as its job completes, in
	// completion order (Run's return value stays in submission order).
	// Calls are serialized with OnProgress; the result passed is the same
	// value Run will return for that index.
	OnResult func(JobResult)
	// Sink, when set, receives every telemetry sample of every job, tagged
	// with the job's index (sink.JobID matches JobResult.Index). Accept is
	// called concurrently from worker goroutines; the built-ins in package
	// sink synchronize internally. Combined with Job.TraceFree this is the
	// O(1)-memory path for large sweeps: samples stream out as they are
	// produced and no per-job Trace is retained. The fleet never closes the
	// sink — the caller owns its lifecycle. Sharding runners deliver the
	// same stream: workers forward samples over their pipe and the
	// coordinator replays them into this sink.
	Sink sink.Sink
	// Runner executes the batch (nil: LocalRunner). Runners must honor the
	// determinism contract: same jobs, same Seed → byte-identical results
	// at any parallelism.
	Runner Runner
	// Event selects the stepping engine for every job in the batch (the
	// zero value is the plain fixed-tick loop; see device.EventMode for
	// the modes and their exactness guarantees). Every runner honors it —
	// local, batched, sharded and networked — so a mode choice cannot
	// change results across deployment shapes beyond what the mode itself
	// guarantees.
	Event device.EventMode
}

// Runner executes a batch of jobs under a batch configuration and returns
// one result per job in submission order. LocalRunner is the in-process
// worker pool; internal/fleet/shard adds a multi-process implementation.
type Runner interface {
	Run(ctx context.Context, cfg Config, jobs []Job) []JobResult
}

// Job is one unit of fleet work: a user running a workload on a device
// under an optional governor and thermal controller.
type Job struct {
	// Name labels the job in results; empty names are synthesized from the
	// workload and controller.
	Name string
	// User is the participant this run simulates. Controller factories
	// receive it, so per-user personalization (the paper's whole point)
	// lives in one place. The zero User means "default user".
	User users.User
	// Workload is the demand trace to execute (required).
	Workload workload.Workload
	// Device is the handset configuration; nil selects
	// device.DefaultConfig. A non-nil config is used as given (and
	// validated by the device layer), so partial configs fail with a
	// descriptive per-job error instead of being silently replaced. The
	// pointed-to config must not be mutated while the batch runs: the
	// fleet keys its phone-allocation pool on it.
	Device *device.Config
	// Governor, when non-nil, builds the job's cpufreq governor. A factory
	// rather than an instance: governors are stateful and each job needs
	// its own.
	Governor func() governor.Governor
	// Controller, when non-nil, builds the job's thermal controller from
	// the job's user (return nil for a stock phone).
	Controller func(u users.User) device.Controller
	// DurSec truncates the run (<= 0: full workload duration).
	DurSec float64
	// TraceFree skips Trace and Records retention on the result while
	// keeping every aggregate (peak temperatures, averages, energy, work)
	// bit-identical to a traced run. Population sweeps that only consume
	// aggregates should set it: per-second history dominates the memory of
	// large batches. Controllers that consume the full Records history
	// (the recalibrating wrapper) need traced runs; see
	// device.Phone.SetTraceFree.
	TraceFree bool
	// DeadlineSec, when positive, bounds the job's wall-clock execution
	// time: the run is cancelled with context.DeadlineExceeded once it has
	// been executing that long, yielding a partial result like any other
	// cancellation. It exists so one wedged job (a pathological workload, a
	// starved host) cannot pin a sweep — or a crash-recovered coordinator —
	// forever. Wall-clock bounds are inherently nondeterministic; jobs that
	// hit them report the deadline error rather than silently truncating.
	// Under BatchRunner a deadline job runs on the solo path (a lockstep
	// wave advances members together and cannot expire one mid-wave).
	DeadlineSec float64
	// Seed, when non-zero, pins the device seed (zero is "unset"
	// throughout this codebase, so a literal zero seed cannot be pinned
	// here — set Device.Seed for that). When zero, a non-zero
	// Device.Seed is honored as given, matching Session semantics;
	// otherwise the fleet derives a seed from its base seed and the job
	// index.
	Seed int64
	// Spec, when non-nil, is the serializable description of this job —
	// what a shard worker needs to rebuild it in another process. The
	// scenario expander populates it; hand-built jobs only need one to run
	// under a sharding runner (LocalRunner ignores it). The closures above
	// stay authoritative for in-process runs; Spec must describe the same
	// job.
	Spec *JobSpec
}

// JobResult is one job's outcome. Failures are per-job: a bad device config
// or a cancelled context yields an Err on the affected results instead of
// aborting the batch.
type JobResult struct {
	// Index is the job's position in the submitted slice; Run returns
	// results in submission order regardless of scheduling.
	Index int
	// Name echoes (or synthesizes) the job label.
	Name string
	// User echoes the job's participant.
	User users.User
	// SeedUsed is the device seed the run actually used, for reproducing a
	// single job outside the fleet.
	SeedUsed int64
	// Result is the aggregate run outcome (partial when Err is a context
	// error, nil when construction failed).
	Result *device.RunResult
	// Err is the job's failure, if any.
	Err error
}

// Fleet executes batches of independent simulation jobs on a Runner.
type Fleet struct {
	cfg Config
}

// New creates a fleet; a zero Config is valid and uses GOMAXPROCS workers
// on the in-process LocalRunner. Config.Workers is kept as configured —
// each Runner normalizes it at execution time, which lets a sharding
// runner distinguish "unset" (split the machine across processes) from an
// explicit per-process width.
func New(cfg Config) *Fleet {
	return &Fleet{cfg: cfg}
}

// Workers reports the effective worker-pool width.
func (f *Fleet) Workers() int { return NormalizeWorkers(f.cfg.Workers) }

// Run executes all jobs on the configured Runner (default: the in-process
// LocalRunner) and returns one result per job, in submission order. Output
// is deterministic: per-job seeds derive from the job index, so the same
// jobs produce identical results at any worker count — or any shard
// partitioning. A cancelled context marks the remaining jobs' results with
// the context error rather than failing the batch.
func (f *Fleet) Run(ctx context.Context, jobs []Job) []JobResult {
	r := f.cfg.Runner
	if r == nil {
		r = LocalRunner{}
	}
	return r.Run(ctx, f.cfg, jobs)
}

// NormalizeWorkers resolves a configured parallelism knob — a worker-pool
// width or a shard count. Zero and negative values mean "one per available
// CPU" (GOMAXPROCS); positive values are taken as given. Every layer that
// accepts such a knob (fleet.Config.Workers, ForEach, the shard runner's
// process count) normalizes through this one helper so the semantics
// cannot drift between call sites.
func NormalizeWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// LocalRunner is the in-process Runner: a bounded goroutine pool with
// per-job position-derived seeding and sync.Pool-backed phone reuse across
// jobs that share a device configuration.
type LocalRunner struct{}

// Run executes the batch on a goroutine pool of cfg.Workers.
func (LocalRunner) Run(ctx context.Context, cfg Config, jobs []Job) []JobResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]JobResult, len(jobs))
	pool := newPhonePool()
	report := ResultReporter(cfg, len(jobs))
	ForEach(len(jobs), cfg.Workers, func(i int) {
		results[i] = runJob(ctx, &cfg, pool, i, jobs[i])
		report(results[i])
	})
	return results
}

// ResultReporter returns the serialized completion-callback dispatcher for
// a batch of total jobs: each call delivers the result to OnResult, then
// the incremented done count to OnProgress, under one lock. Every Runner
// reports through it, so the documented callback contract lives in one
// place. The returned function is a no-op when the config has no
// callbacks.
func ResultReporter(cfg Config, total int) func(JobResult) {
	if cfg.OnResult == nil && cfg.OnProgress == nil {
		return func(JobResult) {}
	}
	var mu sync.Mutex
	done := 0
	return func(res JobResult) {
		mu.Lock()
		done++
		if cfg.OnResult != nil {
			cfg.OnResult(res)
		}
		if cfg.OnProgress != nil {
			cfg.OnProgress(done, total)
		}
		mu.Unlock()
	}
}

// EffectiveSeed resolves the device seed job i of a batch will use under
// the given base seed: an explicit Job.Seed wins, then a caller-pinned
// Device.Seed (Session semantics), then the position-derived seed. Both the
// local pool and the shard coordinator resolve seeds through this one
// function — that shared resolution is what keeps sharded runs
// byte-identical to local ones.
func EffectiveSeed(base int64, i int, job *Job) int64 {
	if job.Seed != 0 {
		return job.Seed
	}
	// Only a caller-provided config can pin the seed; the fallback default
	// config's own seed must not suppress per-job derivation, or every
	// nil-Device job in a population would share one noise stream.
	if job.Device != nil && job.Device.Seed != 0 {
		return job.Device.Seed
	}
	return DeriveSeed(base, i)
}

// runJob builds and executes one job's phone, recycling phone allocations
// through the batch's pool.
func runJob(ctx context.Context, cfg *Config, pool *phonePool, i int, job Job) JobResult {
	r := JobResult{Index: i, Name: job.Name, User: job.User}
	if job.Workload == nil {
		r.Err = fmt.Errorf("fleet: job %d has no workload", i)
		return r
	}
	if r.Name == "" {
		r.Name = job.Workload.Name()
	}
	if err := ctx.Err(); err != nil {
		r.Err = err
		return r
	}
	if job.DeadlineSec > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(job.DeadlineSec*float64(time.Second)))
		defer cancel()
	}
	phone, seed, err := preparePhone(cfg, pool, i, &job)
	r.SeedUsed = seed
	if err != nil {
		r.Err = err
		return r
	}
	if cfg.Event != device.EventOff {
		r.Result, r.Err = phone.RunEventContext(ctx, job.Workload, job.DurSec, cfg.Event)
	} else {
		r.Result, r.Err = phone.RunContext(ctx, job.Workload, job.DurSec)
	}
	pool.put(job.Device, phone)
	return r
}

// preparePhone resolves job i's seed and builds (or recycles through the
// batch pool) its fully configured phone: governor, controller, sink
// observer and trace mode installed. Both the local and the batched runner
// construct phones through this one function, so a batched job's physics
// cannot drift from a local one's.
func preparePhone(cfg *Config, pool *phonePool, i int, job *Job) (*device.Phone, int64, error) {
	seed := EffectiveSeed(cfg.Seed, i, job)
	var gov governor.Governor
	if job.Governor != nil {
		gov = job.Governor()
	}
	phone := pool.get(job.Device)
	if phone != nil {
		phone.Reset(gov, seed)
	} else {
		// Pool miss: materialize the device configuration only here — the
		// reuse path needs just the seed, and copying DefaultConfig per
		// job would undercut the pool's allocation win.
		devCfg := device.DefaultConfig()
		if job.Device != nil {
			devCfg = *job.Device
		}
		devCfg.Seed = seed
		var err error
		phone, err = device.New(devCfg, gov)
		if err != nil {
			return nil, seed, err
		}
	}
	if job.Controller != nil {
		if c := job.Controller(job.User); c != nil {
			phone.SetController(c)
		}
	}
	if cfg.Sink != nil {
		id := sink.JobID(i)
		phone.SetObserver(func(s device.Sample) { cfg.Sink.Accept(id, s) })
	}
	if job.TraceFree {
		phone.SetTraceFree(true)
	}
	return phone, seed, nil
}

// DeriveSeed maps (base, index) to a device seed via a splitmix64 mix, the
// same construction package workload uses for jitter. The result depends
// only on its arguments — never on scheduling — and is never zero (zero
// would read as "unset" downstream).
func DeriveSeed(base int64, index int) int64 {
	x := uint64(base)*0x9e3779b97f4a7c15 + uint64(index+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	s := int64(x)
	if s == 0 {
		s = 1
	}
	return s
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines (normalized via NormalizeWorkers). It is the fleet's
// scheduling primitive, exported for phone-free fan-out such as
// cross-validating prediction models or collecting training corpora. fn
// must handle its own synchronization for shared state; writing to element
// i of a pre-sized slice is safe.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = NormalizeWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// FirstError returns the first job error in index order, or nil.
func FirstError(results []JobResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("fleet: job %d (%s): %w", r.Index, r.Name, r.Err)
		}
	}
	return nil
}
