package fleet

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/governor"
	"repro/internal/sink"
	"repro/internal/users"
	"repro/internal/workload"
)

// batchTestJobs builds a population batch mixing workloads (with and
// without touch phases, so cohorts split into sub-cohorts mid-run),
// governors and users across a shared default device.
func batchTestJobs(t *testing.T, traceFree bool) []Job {
	t.Helper()
	pop := users.StudyPopulation()
	names := []string{"skype", "antutu-cpu", "youtube", "game"}
	jobs := make([]Job, 10)
	for i := range jobs {
		wl := workload.ByName(names[i%len(names)], uint64(i))
		if wl == nil {
			t.Fatalf("workload %q unknown", names[i%len(names)])
		}
		jobs[i] = Job{
			Name:      names[i%len(names)],
			User:      pop[i%len(pop)],
			Workload:  wl,
			DurSec:    40 + float64(i%3)*0, // same duration → one cohort per (sig, dt)
			TraceFree: traceFree,
		}
		if i%2 == 1 {
			jobs[i].Governor = func() governor.Governor { return governor.NewConservative(12) }
		}
	}
	return jobs
}

// requireSameResults asserts got is byte-identical to want: every
// aggregate, record and retained trace bit for bit.
func requireSameResults(t *testing.T, label string, got, want []JobResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Index != w.Index || g.Name != w.Name || g.SeedUsed != w.SeedUsed {
			t.Fatalf("%s: job %d identity diverged: %+v vs %+v", label, i, g, w)
		}
		if (g.Err == nil) != (w.Err == nil) {
			t.Fatalf("%s: job %d error diverged: %v vs %v", label, i, g.Err, w.Err)
		}
		if g.Err != nil && g.Err.Error() != w.Err.Error() {
			t.Fatalf("%s: job %d error text diverged: %q vs %q", label, i, g.Err, w.Err)
		}
		if (g.Result == nil) != (w.Result == nil) {
			t.Fatalf("%s: job %d result presence diverged", label, i)
		}
		if g.Result == nil {
			continue
		}
		gr, wr := g.Result, w.Result
		scalars := [][2]float64{
			{gr.MaxSkinC, wr.MaxSkinC}, {gr.MaxScreenC, wr.MaxScreenC},
			{gr.MaxDieC, wr.MaxDieC}, {gr.MaxBatteryC, wr.MaxBatteryC},
			{gr.AvgFreqMHz, wr.AvgFreqMHz}, {gr.AvgUtil, wr.AvgUtil},
			{gr.EnergyJ, wr.EnergyJ}, {gr.WorkDone, wr.WorkDone},
			{gr.WorkDemanded, wr.WorkDemanded}, {gr.DurSec, wr.DurSec},
			{gr.StartSoC, wr.StartSoC}, {gr.EndSoC, wr.EndSoC},
		}
		for si, pair := range scalars {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("%s: job %d scalar %d diverged: %v vs %v", label, i, si, pair[0], pair[1])
			}
		}
		if (gr.Trace == nil) != (wr.Trace == nil) {
			t.Fatalf("%s: job %d trace presence diverged", label, i)
		}
		if gr.Trace != nil {
			if gr.Trace.Len() != wr.Trace.Len() {
				t.Fatalf("%s: job %d trace rows %d vs %d", label, i, gr.Trace.Len(), wr.Trace.Len())
			}
			for ci, gs := range gr.Trace.Series {
				ws := wr.Trace.Series[ci]
				for ri := range gs.Values {
					if math.Float64bits(gs.Values[ri]) != math.Float64bits(ws.Values[ri]) {
						t.Fatalf("%s: job %d trace %s row %d: %v vs %v",
							label, i, gs.Name, ri, gs.Values[ri], ws.Values[ri])
					}
				}
			}
		}
		if len(gr.Records) != len(wr.Records) {
			t.Fatalf("%s: job %d records %d vs %d", label, i, len(gr.Records), len(wr.Records))
		}
		for ri := range gr.Records {
			if gr.Records[ri] != wr.Records[ri] {
				t.Fatalf("%s: job %d record %d diverged", label, i, ri)
			}
		}
	}
}

// sumSink is an order-insensitive bit-exact fingerprint of a telemetry
// stream (per-job delivery is FIFO on every runner).
type sumSink struct {
	mu     sync.Mutex
	counts map[int]int
	sums   map[int]float64
}

func newSumSink() *sumSink { return &sumSink{counts: map[int]int{}, sums: map[int]float64{}} }

func (c *sumSink) Accept(job sink.JobID, s device.Sample) {
	c.mu.Lock()
	c.counts[int(job)]++
	c.sums[int(job)] += s.SkinC + s.FreqMHz
	c.mu.Unlock()
}
func (c *sumSink) Close() error { return nil }

// TestBatchRunnerMatchesLocal pins the batched engine's whole contract:
// traced and trace-free batches, with streamed telemetry, at several
// worker counts and wave widths, byte-identical to LocalRunner.
func TestBatchRunnerMatchesLocal(t *testing.T) {
	for _, traceFree := range []bool{false, true} {
		jobs := batchTestJobs(t, traceFree)
		refSink := newSumSink()
		ref := LocalRunner{}.Run(context.Background(),
			Config{Workers: 1, Seed: 7, Sink: refSink}, jobs)
		for _, tc := range []struct {
			label   string
			workers int
			width   int
		}{
			{"batched w=1", 1, 0},
			{"batched w=all", 0, 0},
			{"batched width=1", 2, 1},
			{"batched width=3", 2, 3},
		} {
			gotSink := newSumSink()
			got := BatchRunner{Width: tc.width}.Run(context.Background(),
				Config{Workers: tc.workers, Seed: 7, Sink: gotSink}, jobs)
			label := tc.label
			if traceFree {
				label += " trace-free"
			}
			requireSameResults(t, label, got, ref)
			for i := range jobs {
				if gotSink.counts[i] != refSink.counts[i] || gotSink.sums[i] != refSink.sums[i] {
					t.Fatalf("%s: job %d telemetry diverged: %d/%v vs %d/%v", label, i,
						gotSink.counts[i], gotSink.sums[i], refSink.counts[i], refSink.sums[i])
				}
				if refSink.counts[i] == 0 {
					t.Fatalf("job %d streamed no samples", i)
				}
			}
		}
	}
}

// TestBatchRunnerPersistentPoolIdentical pins the cross-run pool's
// contract: a NewBatchRunner reused for several consecutive Runs — the
// later ones recycling every phone of the earlier ones — stays
// byte-identical to LocalRunner on each, including telemetry.
func TestBatchRunnerPersistentPoolIdentical(t *testing.T) {
	jobs := batchTestJobs(t, true)
	refSink := newSumSink()
	ref := LocalRunner{}.Run(context.Background(),
		Config{Workers: 1, Seed: 7, Sink: refSink}, jobs)
	br := NewBatchRunner()
	for round := 0; round < 3; round++ {
		gotSink := newSumSink()
		got := br.Run(context.Background(), Config{Workers: 2, Seed: 7, Sink: gotSink}, jobs)
		label := fmt.Sprintf("persistent pool round %d", round)
		requireSameResults(t, label, got, ref)
		for i := range jobs {
			if gotSink.counts[i] != refSink.counts[i] || gotSink.sums[i] != refSink.sums[i] {
				t.Fatalf("%s: job %d telemetry diverged", label, i)
			}
		}
	}
}

// TestBatchRunnerSingleJobCohorts gives every job its own duration so each
// cohort holds exactly one job — the degenerate shape must still match the
// local runner.
func TestBatchRunnerSingleJobCohorts(t *testing.T) {
	jobs := batchTestJobs(t, false)[:4]
	for i := range jobs {
		jobs[i].DurSec = 20 + 5*float64(i)
	}
	ref := LocalRunner{}.Run(context.Background(), Config{Workers: 1, Seed: 3}, jobs)
	got := BatchRunner{}.Run(context.Background(), Config{Workers: 2, Seed: 3}, jobs)
	requireSameResults(t, "single-job cohorts", got, ref)
}

// TestBatchRunnerMixedDtAndDevices mixes device configurations with
// different base steps and thermal parameters in one batch: cohorts must
// split by (fingerprint, dt) and still match the local runner bit for bit.
func TestBatchRunnerMixedDtAndDevices(t *testing.T) {
	fast := device.DefaultConfig()
	fast.StepSec = 0.025
	hot := device.DefaultConfig()
	hot.Thermal.ResAmbCoverMid *= 1.5
	jobs := batchTestJobs(t, false)[:6]
	jobs[1].Device = &fast
	jobs[3].Device = &fast
	jobs[2].Device = &hot
	jobs[5].Device = &hot
	ref := LocalRunner{}.Run(context.Background(), Config{Workers: 1, Seed: 5}, jobs)
	got := BatchRunner{}.Run(context.Background(), Config{Workers: 3, Seed: 5}, jobs)
	requireSameResults(t, "mixed dt", got, ref)
}

// TestBatchRunnerTouchSplitsSubCohorts forces mid-run signature changes:
// jobs running touch-phase workloads with different phase jitter flip
// their propagators at different ticks, splitting the cohort per tick. A
// paranoid double-check on top of TestBatchRunnerMatchesLocal (whose
// workloads already touch): this one isolates a touch-heavy cohort.
func TestBatchRunnerTouchSplitsSubCohorts(t *testing.T) {
	jobs := make([]Job, 5)
	for i := range jobs {
		jobs[i] = Job{
			Workload: workload.ByName("game", uint64(100+i*17)),
			DurSec:   45,
		}
	}
	ref := LocalRunner{}.Run(context.Background(), Config{Workers: 1, Seed: 9}, jobs)
	got := BatchRunner{}.Run(context.Background(), Config{Workers: 1, Seed: 9}, jobs)
	requireSameResults(t, "touch sub-cohorts", got, ref)
}

// TestBatchRunnerPerJobErrors pins the degraded paths: nil workloads and
// invalid device configurations fail per job with exactly the local
// runner's errors while the rest of the batch completes.
func TestBatchRunnerPerJobErrors(t *testing.T) {
	bad := device.DefaultConfig()
	bad.StepSec = -1
	jobs := batchTestJobs(t, false)[:4]
	jobs[1] = Job{}                 // no workload
	jobs[2].Device = &bad           // invalid config
	jobs[3].DurSec = jobs[0].DurSec // keep a real cohort of two
	ref := LocalRunner{}.Run(context.Background(), Config{Workers: 1, Seed: 2}, jobs)
	got := BatchRunner{}.Run(context.Background(), Config{Workers: 2, Seed: 2}, jobs)
	requireSameResults(t, "per-job errors", got, ref)
	if got[1].Err == nil || !strings.Contains(got[1].Err.Error(), "no workload") {
		t.Fatalf("nil-workload error = %v", got[1].Err)
	}
	if got[2].Err == nil || !strings.Contains(got[2].Err.Error(), "StepSec") {
		t.Fatalf("bad-device error = %v", got[2].Err)
	}
}

// cancelSink cancels a context after n accepted samples — a deterministic
// mid-cohort cancellation trigger.
type cancelSink struct {
	mu     sync.Mutex
	left   int
	cancel context.CancelFunc
}

func (c *cancelSink) Accept(sink.JobID, device.Sample) {
	c.mu.Lock()
	c.left--
	if c.left == 0 {
		c.cancel()
	}
	c.mu.Unlock()
}
func (c *cancelSink) Close() error { return nil }

// TestBatchRunnerCancellation cancels mid-cohort (triggered from the
// telemetry stream, so the lockstep is provably mid-flight): every
// unfinished job must carry the context error with its partial result.
func TestBatchRunnerCancellation(t *testing.T) {
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = Job{Workload: workload.ByName("antutu-cpu-90min", uint64(i))}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results := BatchRunner{}.Run(ctx,
		Config{Workers: 2, Seed: 1, Sink: &cancelSink{left: 40, cancel: cancel}}, jobs)
	cancelled := 0
	for i, r := range results {
		if r.Err != nil {
			if r.Err != context.Canceled {
				t.Fatalf("job %d failed with %v, want context.Canceled", i, r.Err)
			}
			if r.Result == nil {
				t.Fatalf("job %d cancelled without a partial result", i)
			}
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("cancellation marked no jobs")
	}
}

// TestBatchRunnerPreCancelled runs an already-cancelled context: every job
// reports the context error immediately, as with the local runner.
func TestBatchRunnerPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := batchTestJobs(t, false)[:3]
	results := BatchRunner{}.Run(ctx, Config{Seed: 1}, jobs)
	for i, r := range results {
		if r.Err != context.Canceled {
			t.Fatalf("job %d err = %v, want context.Canceled", i, r.Err)
		}
	}
}
