package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeTestWAL creates a WAL with n small records and returns its path and
// the records written.
func writeTestWAL(t *testing.T, dir string, n int) (string, []Record) {
	t.Helper()
	path := filepath.Join(dir, "t.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf(`{"cell":%d,"data":"abcdefgh"}`, i))
		typ := byte(1 + i%4)
		if err := w.Append(typ, payload); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, Record{Type: typ, Payload: payload})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, recs
}

func sameRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type || !bytes.Equal(a[i].Payload, b[i].Payload) {
			return false
		}
	}
	return true
}

func TestWALRoundTrip(t *testing.T) {
	path, want := writeTestWAL(t, t.TempDir(), 5)
	w, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRecords(got, want) {
		t.Fatalf("replay mismatch: got %d records, want %d", len(got), len(want))
	}
	// The reopened log must be appendable, and a second replay must see
	// the extension.
	if err := w.Append(0x07, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, got2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(want)+1 || got2[len(want)].Type != 0x07 {
		t.Fatalf("post-append replay: got %d records", len(got2))
	}
}

// TestWALTruncationSweep simulates a crash at every possible byte length:
// every prefix of a valid log must open without error, replay some prefix
// of the records, and remain appendable. This is the torn-tail contract —
// SIGKILL mid-append never makes a log unreadable.
func TestWALTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	path, want := writeTestWAL(t, dir, 4)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(full); cut++ {
		p := filepath.Join(dir, fmt.Sprintf("cut%d.wal", cut))
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs, err := Open(p)
		if err != nil {
			t.Fatalf("cut at %d bytes: open: %v", cut, err)
		}
		if !sameRecords(recs, want[:len(recs)]) {
			t.Fatalf("cut at %d bytes: replay is not a prefix of the original", cut)
		}
		// The truncated log must accept appends, and the union must replay.
		if err := w.Append(0x09, []byte("resume")); err != nil {
			t.Fatalf("cut at %d bytes: append: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		_, recs2, err := Open(p)
		if err != nil {
			t.Fatalf("cut at %d bytes: reopen: %v", cut, err)
		}
		if len(recs2) != len(recs)+1 || recs2[len(recs)].Type != 0x09 {
			t.Fatalf("cut at %d bytes: appended record lost (%d vs %d+1)", cut, len(recs2), len(recs))
		}
	}
}

// TestWALCorruptMidFile flips one byte in every record except the last:
// damage with intact data behind it is corruption, not a torn tail, and
// must fail loudly instead of silently dropping acknowledged records.
func TestWALCorruptMidFile(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeTestWAL(t, dir, 4)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte well inside the first record.
	corrupt := append([]byte(nil), full...)
	corrupt[walHeaderLen+8] ^= 0xFF
	p := filepath.Join(dir, "corrupt.wal")
	if err := os.WriteFile(p, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(p); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-file corruption: err = %v, want ErrCorrupt", err)
	}
}

// TestWALCorruptFinalRecord flips a byte in the last record: with nothing
// behind it this is indistinguishable from a torn append and must be
// truncated away, keeping the earlier records.
func TestWALCorruptFinalRecord(t *testing.T) {
	dir := t.TempDir()
	path, want := writeTestWAL(t, dir, 4)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-6] ^= 0xFF // inside the final record's payload
	p := filepath.Join(dir, "torn.wal")
	if err := os.WriteFile(p, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	w, recs, err := Open(p)
	if err != nil {
		t.Fatalf("torn final record: %v", err)
	}
	defer w.Close()
	if !sameRecords(recs, want[:3]) {
		t.Fatalf("torn final record: replayed %d records, want the first 3", len(recs))
	}
}

func TestWALEmptyFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "empty.wal")
	if err := os.WriteFile(p, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	w, recs, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("empty file replayed %d records", len(recs))
	}
	if err := w.Append(0x01, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, recs, err = Open(p); err != nil || len(recs) != 1 {
		t.Fatalf("reinitialized file: recs=%d err=%v", len(recs), err)
	}
}

func TestWALUnknownVersion(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeTestWAL(t, dir, 2)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full[len(walMagicPrefix)] = walVersion + 1
	p := filepath.Join(dir, "future.wal")
	if err := os.WriteFile(p, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(p); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: err = %v, want ErrVersion", err)
	}
}

func TestWALBadMagic(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "foreign.wal")
	if err := os.WriteFile(p, []byte("NOTAWAL0 some bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(p); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign file: err = %v, want ErrCorrupt", err)
	}
}

func TestCreateExclusive(t *testing.T) {
	p := filepath.Join(t.TempDir(), "x.wal")
	w, err := CreateExclusive(p)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := CreateExclusive(p); err == nil {
		t.Fatal("second CreateExclusive on the same path must fail")
	}
}

// TestWALSyncBatching checks the batching arithmetic: with SyncEvery=3,
// appends 1 and 2 stay unsynced, append 3 flushes.
func TestWALSyncBatching(t *testing.T) {
	p := filepath.Join(t.TempDir(), "b.wal")
	w, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.SyncEvery = 3
	for i := 0; i < 2; i++ {
		if err := w.Append(0x01, []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if w.unsynced != 2 {
		t.Fatalf("unsynced = %d, want 2", w.unsynced)
	}
	if err := w.Append(0x01, []byte("r")); err != nil {
		t.Fatal(err)
	}
	if w.unsynced != 0 {
		t.Fatalf("after batch fsync: unsynced = %d, want 0", w.unsynced)
	}
}
