package durable

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analytics"
	"repro/internal/fleet"
	"repro/internal/scenario"
)

// testGrid builds a minimal 4-cell grid (names a..d, seeds 10..13).
func testGrid() *scenario.Grid {
	g := &scenario.Grid{}
	for i, name := range []string{"a", "b", "c", "d"} {
		g.Points = append(g.Points, scenario.Point{
			Index: i, GridIndex: i, Cell: i, Name: name,
			Seed: int64(10 + i), LimitC: 37})
		g.Jobs = append(g.Jobs, fleet.Job{Seed: int64(10 + i)})
	}
	return g
}

func TestNewPlanVerification(t *testing.T) {
	grid := testGrid()
	cells := GridCells(grid)
	done := map[int]CellResult{1: {Index: 1, Name: "b", SeedUsed: 11}}

	plan, err := NewPlan(grid, cells, done)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Todo) != 3 || plan.Todo[0] != 0 || plan.Todo[1] != 2 || plan.Todo[2] != 3 {
		t.Fatalf("Todo = %v, want [0 2 3]", plan.Todo)
	}
	if plan.Complete() {
		t.Fatal("plan with 3 todo cells reports complete")
	}

	// Mismatched seed: the spec no longer expands to the journaled sweep.
	bad := append([]CellRef(nil), cells...)
	bad[2].Seed = 999
	if _, err := NewPlan(grid, bad, nil); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("seed mismatch: err = %v", err)
	}
	// Wrong cell count.
	if _, err := NewPlan(grid, cells[:3], nil); err == nil {
		t.Fatal("short cell table accepted")
	}
	// Ledger entry with no table.
	if _, err := NewPlan(grid, nil, done); err == nil {
		t.Fatal("ledger without cell table accepted")
	}
	// Ledger entry out of range.
	if _, err := NewPlan(grid, cells, map[int]CellResult{9: {Index: 9}}); err == nil {
		t.Fatal("out-of-range ledger entry accepted")
	}
	// Ledger entry naming the wrong cell.
	if _, err := NewPlan(grid, cells, map[int]CellResult{0: {Index: 0, Name: "zzz"}}); err == nil {
		t.Fatal("misnamed ledger entry accepted")
	}
}

func TestPlanSubGridAndMerge(t *testing.T) {
	grid := testGrid()
	cells := GridCells(grid)
	done := map[int]CellResult{
		0: {Index: 0, Name: "a", SeedUsed: 10},
		2: {Index: 2, Name: "c", SeedUsed: 12, Error: "cell failed"},
	}
	plan, err := NewPlan(grid, cells, done)
	if err != nil {
		t.Fatal(err)
	}
	sub, remap, err := plan.SubGrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Jobs) != 2 || remap[0] != 1 || remap[1] != 3 {
		t.Fatalf("subset: %d jobs, remap %v", len(sub.Jobs), remap)
	}
	if sub.Points[0].Name != "b" || sub.Points[0].Seed != 11 || sub.Points[0].Index != 0 {
		t.Fatalf("subset point 0: %+v", sub.Points[0])
	}

	results := make([]fleet.JobResult, 4)
	results[1] = fleet.JobResult{Index: 1, Name: "b"}
	results[3] = fleet.JobResult{Index: 3, Name: "d"}
	plan.MergeInto(results)
	if results[0].Name != "a" || results[0].SeedUsed != 10 {
		t.Fatalf("merged cell 0: %+v", results[0])
	}
	if results[2].Err == nil || results[2].Err.Error() != "cell failed" {
		t.Fatalf("merged cell 2 error: %v", results[2].Err)
	}

	// A plan with nothing done short-circuits: full grid, nil remap.
	all, err := NewPlan(grid, cells, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, remap2, err := all.SubGrid()
	if err != nil {
		t.Fatal(err)
	}
	if full != grid || remap2 != nil {
		t.Fatal("empty-done plan must return the full grid with nil remap")
	}
}

func TestApplyViolations(t *testing.T) {
	grid := testGrid()
	plan, err := NewPlan(grid, GridCells(grid), map[int]CellResult{
		1: {Index: 1, Name: "b", Violation: analytics.ViolationAccum{N: 10, Over: 5, Excess: 2.0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := []analytics.JobStat{{Point: scenario.Point{Index: 0}}, {Point: scenario.Point{Index: 1}}}
	plan.ApplyViolations(stats)
	if got := stats[1].OverFrac; got != 0.5 {
		t.Fatalf("restored OverFrac = %v, want 0.5", got)
	}
	if got := stats[1].MeanExcessC; got != 0.4 {
		t.Fatalf("restored MeanExcessC = %v, want 0.4", got)
	}
}

func TestOpenSweepLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.wal")
	grid := testGrid()
	spec := json.RawMessage(`{"version":1}`)

	// Fresh: all cells todo.
	l, plan, err := OpenSweep(path, grid, spec, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Todo) != 4 {
		t.Fatalf("fresh plan: %d todo, want 4", len(plan.Todo))
	}
	if err := l.CellDone(CellResult{Index: 2, Name: "c", SeedUsed: 12}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Existing non-empty log without resume: refused, not overwritten.
	if _, _, err := OpenSweep(path, grid, spec, 3, false); err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("overwrite refusal: err = %v", err)
	}

	// Event-mode mismatch: refused.
	if _, _, err := OpenSweep(path, grid, spec, 0, true); err == nil || !strings.Contains(err.Error(), "event mode") {
		t.Fatalf("event mismatch: err = %v", err)
	}

	// Resume: cell 2 restored, three to run.
	l, plan, err = OpenSweep(path, grid, spec, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Todo) != 3 || len(plan.Done) != 1 {
		t.Fatalf("resumed plan: todo %v done %d", plan.Todo, len(plan.Done))
	}
	if err := l.Finish(Status{Status: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenSweepGridDrift resumes under a grid whose seeds changed: the
// journal must refuse rather than mix physics.
func TestOpenSweepGridDrift(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.wal")
	grid := testGrid()
	l, _, err := OpenSweep(path, grid, json.RawMessage(`{}`), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	drift := testGrid()
	drift.Points[3].Seed = 777
	if _, _, err := OpenSweep(path, drift, json.RawMessage(`{}`), 0, true); err == nil {
		t.Fatal("seed drift accepted on resume")
	}
}
