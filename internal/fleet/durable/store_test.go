package durable

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analytics"
	"repro/internal/device"
)

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sub := Submission{ID: "j3", Spec: json.RawMessage(`{"version":1}`), DeadlineSec: 60, Event: 2}
	l, err := st.Begin(sub)
	if err != nil {
		t.Fatal(err)
	}
	cells := []CellRef{{Name: "a", Seed: 101}, {Name: "b", Seed: 102}, {Name: "c", Seed: 103}}
	if err := l.Cells(cells); err != nil {
		t.Fatal(err)
	}
	done := CellResult{Index: 1, Name: "b", SeedUsed: 102,
		Result:    &device.RunResult{MaxSkinC: 39.25, EnergyJ: 1234.5},
		Violation: analytics.ViolationAccum{N: 30, Over: 4, Excess: 1.5}}
	if err := l.CellDone(done); err != nil {
		t.Fatal(err)
	}
	if err := l.Finish(Status{Status: "failed", Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	jobs, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(jobs))
	}
	rj := jobs[0]
	if rj.Err != nil {
		t.Fatal(rj.Err)
	}
	if rj.ID != "j3" || rj.Sub == nil || rj.Sub.DeadlineSec != 60 || rj.Sub.Event != 2 {
		t.Fatalf("submission mismatch: %+v", rj.Sub)
	}
	if len(rj.Cells) != 3 || rj.Cells[2].Seed != 103 {
		t.Fatalf("cell table mismatch: %+v", rj.Cells)
	}
	got, ok := rj.Done[1]
	if !ok || got.Result == nil || got.Result.MaxSkinC != 39.25 || got.Violation.Over != 4 {
		t.Fatalf("ledger mismatch: %+v", got)
	}
	if rj.Status == nil || rj.Status.Status != "failed" || rj.Status.Error != "boom" {
		t.Fatalf("status mismatch: %+v", rj.Status)
	}
	if rj.Log != nil {
		t.Fatal("terminal job must not carry an open log")
	}
}

func TestStoreRecoverNonTerminal(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := st.Begin(Submission{ID: "j1", Spec: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Cells([]CellRef{{Name: "a", Seed: 1}}); err != nil {
		t.Fatal(err)
	}
	// No Finish: simulate the crash by dropping the handle without Close
	// (the records above are already synced).
	jobs, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Status != nil || jobs[0].Log == nil {
		t.Fatalf("non-terminal job not resumable: %+v", jobs[0])
	}
	// The recovered log accepts the rest of the run.
	if err := jobs[0].Log.CellDone(CellResult{Index: 0, Name: "a", SeedUsed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := jobs[0].Log.Finish(Status{Status: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := jobs[0].Log.Close(); err != nil {
		t.Fatal(err)
	}
	jobs, err = st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Status == nil || jobs[0].Status.Status != "done" || len(jobs[0].Done) != 1 {
		t.Fatalf("resumed job did not seal: %+v", jobs[0])
	}
}

// TestStoreDoubleReplayIdempotent replays a log with a duplicate ledger
// entry for the same cell: the last record wins and the map holds one
// entry, so re-journaling a cell (crash between append and ack) is safe.
func TestStoreDoubleReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenStore(dir)
	l, err := st.Begin(Submission{ID: "j1", Spec: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	l.Cells([]CellRef{{Name: "a", Seed: 1}})
	l.CellDone(CellResult{Index: 0, Name: "a", SeedUsed: 1, Error: "first"})
	l.CellDone(CellResult{Index: 0, Name: "a", SeedUsed: 1, Error: "second"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		jobs, err := st.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if len(jobs[0].Done) != 1 || jobs[0].Done[0].Error != "second" {
			t.Fatalf("round %d: duplicate ledger entries not last-wins: %+v", round, jobs[0].Done)
		}
	}
}

func TestStoreUnknownRecordType(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenStore(dir)
	l, err := st.Begin(Submission{ID: "j1", Spec: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	l.mu.Lock()
	l.wal.Append(0x7F, []byte(`{}`)) // a record type this version never writes
	l.mu.Unlock()
	l.Close()
	jobs, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Err == nil || !strings.Contains(jobs[0].Err.Error(), "unknown record type") {
		t.Fatalf("unknown record type: err = %v", jobs[0].Err)
	}
}

func TestStoreIDMismatch(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenStore(dir)
	l, err := st.Begin(Submission{ID: "j1", Spec: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Rename the file so its name no longer matches the journaled ID.
	if err := os.Rename(filepath.Join(dir, "j1.wal"), filepath.Join(dir, "j9.wal")); err != nil {
		t.Fatal(err)
	}
	jobs, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Err == nil || !strings.Contains(jobs[0].Err.Error(), "claims ID") {
		t.Fatalf("ID mismatch: err = %v", jobs[0].Err)
	}
}

func TestStoreBeginCollision(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	l, err := st.Begin(Submission{ID: "j1", Spec: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := st.Begin(Submission{ID: "j1", Spec: json.RawMessage(`{}`)}); err == nil {
		t.Fatal("Begin with a duplicate ID must fail")
	}
}

func TestStoreUnsafeIDs(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	for _, id := range []string{"", ".", "..", "a/b", `a\b`} {
		if _, err := st.Begin(Submission{ID: id}); err == nil {
			t.Fatalf("unsafe ID %q accepted", id)
		}
	}
}

func TestMaxSeqAndOrdering(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenStore(dir)
	for _, id := range []string{"j2", "j10", "j1"} {
		l, err := st.Begin(Submission{ID: id, Spec: json.RawMessage(`{}`)})
		if err != nil {
			t.Fatal(err)
		}
		l.Close()
	}
	jobs, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, rj := range jobs {
		order = append(order, rj.ID)
		if rj.Log != nil {
			rj.Log.Close()
		}
	}
	if got := strings.Join(order, ","); got != "j1,j2,j10" {
		t.Fatalf("recovery order = %s, want numeric j1,j2,j10", got)
	}
	if got := MaxSeq(jobs); got != 10 {
		t.Fatalf("MaxSeq = %d, want 10", got)
	}
}

// TestJobLogErrorLatch points a log at a closed file: the first append
// fails, and every later operation returns the same latched error without
// touching the file again.
func TestJobLogErrorLatch(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	l, err := st.Begin(Submission{ID: "j1", Spec: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	l.wal.f.Close() // simulate the disk dying under the log
	first := l.CellDone(CellResult{Index: 0})
	if first == nil {
		t.Fatal("append on closed file must fail")
	}
	if second := l.Finish(Status{Status: "done"}); second == nil {
		t.Fatal("latched log must keep failing")
	}
	if l.Err() == nil {
		t.Fatal("Err() must report the latched failure")
	}
}
