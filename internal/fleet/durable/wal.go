// Package durable is the fleet's crash-safety layer: a write-ahead log
// that journals job submissions (scenario spec + pre-resolved per-cell
// seeds) and a per-job ledger of completed cells, so a coordinator killed
// mid-sweep can restart, replay the log, and finish by dispatching only
// the unfinished cells. Because every cell's seed was resolved at submit
// time (grid-position-stable, PR 3's contract), a resumed sweep's final
// aggregates are byte-identical to an uninterrupted run.
//
// The file format is deliberately boring: an 8-byte magic+version header
// followed by length-prefixed, CRC32C-checksummed records. A torn tail —
// the expected shape after SIGKILL or power loss mid-append — is detected
// and truncated on open; the lost unsynced cells simply re-run. A checksum
// mismatch with more data behind it is real corruption and fails loudly.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// walMagic identifies a WAL file; the final byte is the format version.
// Bumping the version makes older daemons refuse newer logs (ErrVersion)
// instead of misparsing them.
const (
	walMagicPrefix = "USTAWAL"
	walVersion     = byte(1)
	walHeaderLen   = len(walMagicPrefix) + 1
)

// Frame layout: [4B LE payload length][1B record type][payload][4B CRC32C
// over type+payload].
const frameOverhead = 4 + 1 + 4

// castagnoli is the CRC32C table (the checksum storage systems use; it has
// hardware support on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrVersion reports a WAL written by a different (newer or older) format
// version — the file is intact but this binary must not reinterpret it.
var ErrVersion = errors.New("durable: unsupported WAL format version")

// ErrCorrupt reports a mid-file checksum or framing failure: unlike a torn
// tail, bytes after the bad record prove the file was damaged after it was
// written, so silently truncating would discard acknowledged state.
var ErrCorrupt = errors.New("durable: corrupt WAL")

// Record is one replayed WAL entry.
type Record struct {
	Type    byte
	Payload []byte
}

// WAL is an append-only record log over one file. Appends are
// fsync-batched: every SyncEvery-th record (and every explicit Sync)
// flushes to stable storage, bounding both the fsync rate under streaming
// cell completions and the number of acknowledged records a crash can
// lose. A WAL is not safe for concurrent use; callers serialize.
type WAL struct {
	f        *os.File
	path     string
	unsynced int
	// SyncEvery is the fsync batch size (records per fsync). Zero or
	// negative syncs on every append.
	SyncEvery int
	buf       []byte
}

// Create creates (or truncates) a WAL at path and writes the header,
// synced to disk before returning.
func Create(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &WAL{f: f, path: path}
	if _, err := f.Write(append([]byte(walMagicPrefix), walVersion)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// CreateExclusive is Create, but fails if the file already exists — the
// collision backstop behind restart-safe job IDs.
func CreateExclusive(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	w := &WAL{f: f, path: path}
	if _, err := f.Write(append([]byte(walMagicPrefix), walVersion)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Open opens an existing WAL, replays its intact records, truncates any
// torn tail (an incomplete header counts as one), and positions the file
// for appending. A zero-length file is initialized fresh. Mid-file damage
// returns ErrCorrupt; a foreign or future-version header returns
// ErrVersion wrapped with the observed byte.
func Open(path string) (*WAL, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := readAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &WAL{f: f, path: path}

	initFresh := func() (*WAL, []Record, error) {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.WriteAt(append([]byte(walMagicPrefix), walVersion), 0); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.Seek(int64(walHeaderLen), 0); err != nil {
			f.Close()
			return nil, nil, err
		}
		return w, nil, nil
	}

	if len(data) < walHeaderLen {
		// Empty file, or a crash mid-header-write: nothing was ever
		// acknowledged, start fresh.
		return initFresh()
	}
	if string(data[:len(walMagicPrefix)]) != walMagicPrefix {
		f.Close()
		return nil, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:walHeaderLen])
	}
	if v := data[len(walMagicPrefix)]; v != walVersion {
		f.Close()
		return nil, nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, walVersion)
	}

	var recs []Record
	off := walHeaderLen
	for off < len(data) {
		if off+4 > len(data) {
			break // torn tail: partial length prefix
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		end := off + 4 + 1 + n + 4
		if n < 0 || end < off || end > len(data) {
			break // torn tail: record extends past EOF
		}
		body := data[off+4 : off+4+1+n] // type byte + payload
		want := binary.LittleEndian.Uint32(data[off+4+1+n:])
		if crc32.Checksum(body, castagnoli) != want {
			if end == len(data) {
				break // torn tail: final record half-written
			}
			f.Close()
			return nil, nil, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		recs = append(recs, Record{Type: body[0], Payload: append([]byte(nil), body[1:]...)})
		off = end
	}
	if off < len(data) {
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(off), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return w, recs, nil
}

func readAll(f *os.File) ([]byte, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data := make([]byte, fi.Size())
	if _, err := f.ReadAt(data, 0); err != nil && fi.Size() > 0 {
		return nil, err
	}
	return data, nil
}

// Append writes one record. The write is atomic with respect to replay
// (a crash mid-append leaves a torn tail Open truncates) but not
// necessarily durable until the batch's fsync — callers that need a
// record on stable storage before proceeding follow with Sync.
func (w *WAL) Append(typ byte, payload []byte) error {
	n := len(payload)
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(n))
	w.buf = append(w.buf, typ)
	w.buf = append(w.buf, payload...)
	crc := crc32.Checksum(w.buf[4:], castagnoli)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc)
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	w.unsynced++
	if w.SyncEvery <= 1 || w.unsynced >= w.SyncEvery {
		return w.Sync()
	}
	return nil
}

// Sync flushes appended records to stable storage.
func (w *WAL) Sync() error {
	if w.unsynced == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.unsynced = 0
	return nil
}

// Close syncs and closes the file.
func (w *WAL) Close() error {
	err := w.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
