package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/analytics"
	"repro/internal/device"
)

// Record types. Unknown types fail replay: a log a newer daemon extended
// must not be half-understood.
const (
	// recSubmit opens a job log: the submission as received, before
	// expansion, so even a crash during predictor training recovers the job.
	recSubmit = byte(0x01)
	// recCells pins the expanded grid: one (name, seed) per cell, in grid
	// order. On resume the re-expanded grid is verified against it.
	recCells = byte(0x02)
	// recCell is one completed cell's ledger entry.
	recCell = byte(0x03)
	// recStatus terminates a job log ("done"/"failed"/"cancelled"). Logs
	// without one are non-terminal and resume on recovery.
	recStatus = byte(0x04)
)

// Submission is the journaled form of one job submission.
type Submission struct {
	// ID is the server-assigned job ID.
	ID string `json:"id"`
	// Spec is the scenario spec exactly as submitted (the same bytes
	// scenario.Parse accepted), re-parsed on recovery.
	Spec json.RawMessage `json:"spec"`
	// DeadlineSec is the sweep's wall-clock deadline at submission (0:
	// none); recovery re-applies it as a fresh window.
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
	// Event records the stepping-engine mode the sweep ran under (an
	// int-coded device.EventMode); a resume under a different mode is
	// refused rather than risking non-identical aggregates.
	Event int `json:"event,omitempty"`
}

// CellRef pins one expanded grid cell: its name and its pre-resolved
// device seed. The pair is what makes resume exact — a re-expansion that
// produces different names or seeds is a different sweep.
type CellRef struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
}

// CellResult is one completed cell's ledger entry: everything needed to
// restore its JobResult and its violation statistics without re-running
// it. Result travels with Trace and Records stripped (the per-sample
// history is the one thing not journaled — aggregates do not need it).
type CellResult struct {
	Index     int                      `json:"index"`
	Name      string                   `json:"name"`
	SeedUsed  int64                    `json:"seed_used"`
	Error     string                   `json:"error,omitempty"`
	Result    *device.RunResult        `json:"result,omitempty"`
	Violation analytics.ViolationAccum `json:"violation"`
}

// Status is the terminal record of a job log.
type Status struct {
	Status  string                  `json:"status"`
	Error   string                  `json:"error,omitempty"`
	Comfort []analytics.UserComfort `json:"comfort,omitempty"`
}

// Store manages one state directory of per-job WAL files
// (`<dir>/<jobID>.wal`).
type Store struct {
	dir string
	// SyncEvery is the per-log fsync batch size for cell ledger appends
	// (default 8). Submission, cell-table and terminal records always sync
	// immediately.
	SyncEvery int
}

// OpenStore opens (creating if needed) a state directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, SyncEvery: 8}, nil
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

func (s *Store) walPath(id string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\") || id == "." || id == ".." {
		return "", fmt.Errorf("durable: unsafe job ID %q", id)
	}
	return filepath.Join(s.dir, id+".wal"), nil
}

// Begin opens a fresh job log and journals the submission (synced before
// returning, so an accepted job survives an immediate crash). It fails if
// a log for the ID already exists — the job-ID collision backstop.
func (s *Store) Begin(sub Submission) (*JobLog, error) {
	path, err := s.walPath(sub.ID)
	if err != nil {
		return nil, err
	}
	w, err := CreateExclusive(path)
	if err != nil {
		return nil, err
	}
	w.SyncEvery = 1
	l := &JobLog{wal: w, syncEvery: s.SyncEvery}
	payload, err := json.Marshal(sub)
	if err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Append(recSubmit, payload); err != nil {
		w.Close()
		return nil, err
	}
	return l, nil
}

// JobLog is one job's append side of the WAL. Methods are safe for
// concurrent use; the first append failure latches — subsequent calls
// return it without touching the file — so a dying disk degrades a job to
// unjournaled exactly once instead of failing the sweep.
type JobLog struct {
	mu        sync.Mutex
	wal       *WAL
	syncEvery int
	err       error
	closed    bool
}

// Err returns the latched journal failure, if any.
func (l *JobLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

func (l *JobLog) append(typ byte, v any, sync bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		l.err = fmt.Errorf("durable: append to closed job log")
		return l.err
	}
	payload, err := json.Marshal(v)
	if err != nil {
		l.err = err
		return err
	}
	if sync {
		l.wal.SyncEvery = 1
	} else {
		l.wal.SyncEvery = l.syncEvery
	}
	if err := l.wal.Append(typ, payload); err != nil {
		l.err = err
		return err
	}
	return nil
}

// Cells journals the expanded cell table (synced: the table is what makes
// every later ledger entry interpretable).
func (l *JobLog) Cells(cells []CellRef) error { return l.append(recCells, cells, true) }

// CellDone appends one completed cell to the ledger, fsync-batched.
func (l *JobLog) CellDone(c CellResult) error { return l.append(recCell, c, false) }

// Finish journals the terminal status (synced).
func (l *JobLog) Finish(st Status) error { return l.append(recStatus, st, true) }

// Close syncs and closes the log file.
func (l *JobLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.err
	}
	l.closed = true
	if err := l.wal.Close(); err != nil && l.err == nil {
		l.err = err
	}
	return l.err
}

// RecoveredJob is one job log's replayed state.
type RecoveredJob struct {
	// ID is the job ID (from the file name; verified against the
	// submission record).
	ID string
	// Sub is the journaled submission (nil only when Err is set).
	Sub *Submission
	// Cells is the journaled cell table (nil: the crash predated
	// expansion; re-expand from Sub.Spec and journal it then).
	Cells []CellRef
	// Done maps full-grid cell index → ledger entry. Replaying a log twice
	// (or a duplicate append) keeps the last entry per index — replay is
	// idempotent.
	Done map[int]CellResult
	// Status is the terminal record (nil: non-terminal; resume it).
	Status *Status
	// Log is the reopened append side for non-terminal jobs (nil when Err
	// is set or the job is terminal).
	Log *JobLog
	// Err reports an unusable log (corruption, version skew, malformed
	// records). The job surfaces as failed rather than silently vanishing.
	Err error
}

// Recover replays every job log in the state directory, in job-ID order
// (numeric suffix order for `j<N>` IDs, lexicographic otherwise).
// Non-terminal jobs come back with an open Log ready for further appends.
func (s *Store) Recover() ([]RecoveredJob, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".wal") {
			continue
		}
		ids = append(ids, strings.TrimSuffix(e.Name(), ".wal"))
	}
	sort.Slice(ids, func(i, j int) bool {
		a, aok := numericSuffix(ids[i])
		b, bok := numericSuffix(ids[j])
		if aok && bok {
			return a < b
		}
		if aok != bok {
			return aok
		}
		return ids[i] < ids[j]
	})
	out := make([]RecoveredJob, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.recoverOne(id))
	}
	return out, nil
}

// recoverOne replays a single job log.
func (s *Store) recoverOne(id string) RecoveredJob {
	rj := RecoveredJob{ID: id}
	path, err := s.walPath(id)
	if err != nil {
		rj.Err = err
		return rj
	}
	w, recs, err := Open(path)
	if err != nil {
		rj.Err = err
		return rj
	}
	sub, cells, done, status, err := replay(recs)
	if err != nil {
		w.Close()
		rj.Err = fmt.Errorf("durable: job %s: %w", id, err)
		return rj
	}
	rj.Sub, rj.Cells, rj.Done, rj.Status = sub, cells, done, status
	if rj.Sub == nil {
		w.Close()
		rj.Err = fmt.Errorf("durable: job %s: log has no submission record", id)
		return rj
	}
	if rj.Sub.ID != id {
		w.Close()
		rj.Err = fmt.Errorf("durable: job log %s claims ID %q", id, rj.Sub.ID)
		return rj
	}
	if rj.Status != nil {
		// Terminal: nothing more will be appended.
		w.Close()
		return rj
	}
	rj.Log = &JobLog{wal: w, syncEvery: s.SyncEvery}
	return rj
}

// numericSuffix parses the `j<N>` job-ID convention; MaxSeq and recovery
// ordering share it.
func numericSuffix(id string) (int, bool) {
	if len(id) < 2 || id[0] != 'j' {
		return 0, false
	}
	n := 0
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// MaxSeq returns the highest numeric `j<N>` sequence among recovered jobs
// (0 when none) — what a restarted server seeds its ID counter with so it
// never reissues a recovered ID.
func MaxSeq(jobs []RecoveredJob) int {
	max := 0
	for _, rj := range jobs {
		if n, ok := numericSuffix(rj.ID); ok && n > max {
			max = n
		}
	}
	return max
}
