package durable

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/analytics"
	"repro/internal/fleet"
	"repro/internal/scenario"
)

// replay folds a job log's raw records into typed state. Later records
// win per cell index, so replaying a log twice is idempotent.
func replay(recs []Record) (sub *Submission, cells []CellRef, done map[int]CellResult, status *Status, err error) {
	done = map[int]CellResult{}
	for _, r := range recs {
		switch r.Type {
		case recSubmit:
			var s Submission
			if err = json.Unmarshal(r.Payload, &s); err != nil {
				err = fmt.Errorf("durable: submission record: %w", err)
				return
			}
			sub = &s
		case recCells:
			var cs []CellRef
			if err = json.Unmarshal(r.Payload, &cs); err != nil {
				err = fmt.Errorf("durable: cell table: %w", err)
				return
			}
			cells = cs
		case recCell:
			var c CellResult
			if err = json.Unmarshal(r.Payload, &c); err != nil {
				err = fmt.Errorf("durable: cell record: %w", err)
				return
			}
			done[c.Index] = c
		case recStatus:
			var st Status
			if err = json.Unmarshal(r.Payload, &st); err != nil {
				err = fmt.Errorf("durable: status record: %w", err)
				return
			}
			status = &st
		default:
			err = fmt.Errorf("durable: unknown record type 0x%02x", r.Type)
			return
		}
	}
	return
}

// GridCells extracts the journaled cell table from an expanded grid.
func GridCells(grid *scenario.Grid) []CellRef {
	out := make([]CellRef, len(grid.Points))
	for i, p := range grid.Points {
		out[i] = CellRef{Name: p.Name, Seed: p.Seed}
	}
	return out
}

// Plan is a verified resume: the full grid, the ledgered cells, and the
// indices still to run.
type Plan struct {
	Grid *scenario.Grid
	Done map[int]CellResult
	Todo []int
}

// NewPlan verifies a journaled cell table (and ledger) against a freshly
// re-expanded grid and returns the resume plan. Any mismatch — cell
// count, a cell's name or seed — means the spec no longer expands to the
// sweep the ledger describes, and resuming would silently mix physics; it
// fails with a descriptive error instead. Ledger entries are verified the
// same way. cells may be nil (crash before expansion): the plan is then
// simply "run everything".
func NewPlan(grid *scenario.Grid, cells []CellRef, done map[int]CellResult) (*Plan, error) {
	if cells != nil {
		if len(cells) != len(grid.Points) {
			return nil, fmt.Errorf("durable: journaled sweep has %d cells, spec expands to %d", len(cells), len(grid.Points))
		}
		for i, c := range cells {
			p := grid.Points[i]
			if c.Name != p.Name || c.Seed != p.Seed {
				return nil, fmt.Errorf("durable: cell %d mismatch: journal has (%s, seed %d), spec expands to (%s, seed %d)",
					i, c.Name, c.Seed, p.Name, p.Seed)
			}
		}
	}
	p := &Plan{Grid: grid, Done: map[int]CellResult{}}
	for idx, c := range done {
		if cells == nil {
			return nil, fmt.Errorf("durable: ledger entry for cell %d but no journaled cell table", idx)
		}
		if idx < 0 || idx >= len(grid.Points) {
			return nil, fmt.Errorf("durable: ledger entry for cell %d outside the %d-cell grid", idx, len(grid.Points))
		}
		if pt := grid.Points[idx]; c.Name != pt.Name {
			return nil, fmt.Errorf("durable: ledger cell %d named %q, grid cell is %q", idx, c.Name, pt.Name)
		}
		p.Done[idx] = c
	}
	for i := range grid.Points {
		if _, ok := p.Done[i]; !ok {
			p.Todo = append(p.Todo, i)
		}
	}
	return p, nil
}

// Complete reports whether nothing is left to run.
func (p *Plan) Complete() bool { return len(p.Todo) == 0 }

// SubGrid returns the grid restricted to the unfinished cells plus the
// subset→full index remap table. When nothing was recovered it returns
// the full grid and a nil remap (no translation layer needed).
func (p *Plan) SubGrid() (*scenario.Grid, []int, error) {
	if len(p.Done) == 0 {
		return p.Grid, nil, nil
	}
	sub, err := p.Grid.Subset(p.Todo)
	if err != nil {
		return nil, nil, err
	}
	// The remap must stay non-nil even when Todo is empty (every cell
	// ledgered): callers key the "merge restored cells around the live
	// subset" path off remap != nil.
	remap := make([]int, len(p.Todo))
	copy(remap, p.Todo)
	return sub, remap, nil
}

// RestoredResult rebuilds a ledgered cell's JobResult at its full-grid
// index. Journaled errors come back as plain errors — the original type
// is gone, but analytics only consume the message.
func RestoredResult(c CellResult) fleet.JobResult {
	r := fleet.JobResult{Index: c.Index, Name: c.Name, SeedUsed: c.SeedUsed, Result: c.Result}
	if c.Error != "" {
		r.Err = fmt.Errorf("%s", c.Error)
	}
	return r
}

// MergeInto fills the recovered cells' results into a full-grid result
// slice (live cells already hold theirs).
func (p *Plan) MergeInto(results []fleet.JobResult) {
	for idx, c := range p.Done {
		if idx >= 0 && idx < len(results) {
			results[idx] = RestoredResult(c)
		}
	}
}

// ApplyViolations applies the ledgered violation counters to the
// flattened stats. Call it after the live run's ViolationSink.Apply: live
// and recovered cells are disjoint, and a recovered index's live counter
// is empty (ApplyTo on N==0 is a no-op), so the two passes compose.
func (p *Plan) ApplyViolations(stats []analytics.JobStat) {
	for i := range stats {
		if c, ok := p.Done[stats[i].Index]; ok {
			c.Violation.ApplyTo(&stats[i])
		}
	}
}

// CellEntry builds one completed cell's ledger entry from its live
// result. acc carries the cell's streamed violation counters (trace-free
// runs); when nil, the counters are folded from the retained trace with
// the identical arithmetic the post-hoc path uses, so a restored cell's
// OverFrac/MeanExcessC are bit-equal either way. The result is copied
// with Trace and Records stripped — per-sample history is not journaled.
func CellEntry(res fleet.JobResult, limitC float64, acc *analytics.ViolationAccum) CellResult {
	c := CellResult{Index: res.Index, Name: res.Name, SeedUsed: res.SeedUsed}
	if res.Err != nil {
		c.Error = res.Err.Error()
	}
	if acc != nil {
		c.Violation = *acc
	}
	if res.Result != nil {
		cp := *res.Result
		if acc == nil && cp.Trace != nil {
			if s := cp.Trace.Lookup("skin_c"); s != nil {
				for _, v := range s.Values {
					c.Violation.Add(v, limitC)
				}
			}
		}
		cp.Trace = nil
		cp.Records = nil
		c.Result = &cp
	}
	return c
}

// OpenSweep opens (or creates) a single-sweep WAL for a local run — the
// `ustasim -wal` path. A fresh file is initialized with the submission
// and cell table. An existing non-empty file requires resume=true: its
// ledger is verified against the grid and returned as the plan; a
// non-empty file without resume is refused rather than overwritten. The
// journaled event mode must match the current run's.
func OpenSweep(path string, grid *scenario.Grid, spec json.RawMessage, event int, resume bool) (*JobLog, *Plan, error) {
	fi, statErr := os.Stat(path)
	fresh := os.IsNotExist(statErr) || (statErr == nil && fi.Size() == 0)
	if statErr != nil && !os.IsNotExist(statErr) {
		return nil, nil, statErr
	}
	if !fresh && !resume {
		return nil, nil, fmt.Errorf("durable: %s already journals a sweep; pass -resume to continue it or remove the file", path)
	}

	if fresh {
		w, err := Create(path)
		if err != nil {
			return nil, nil, err
		}
		w.SyncEvery = 1
		l := &JobLog{wal: w, syncEvery: 8}
		sub := Submission{ID: "sweep", Spec: spec, Event: event}
		payload, err := json.Marshal(sub)
		if err != nil {
			w.Close()
			return nil, nil, err
		}
		if err := w.Append(recSubmit, payload); err != nil {
			w.Close()
			return nil, nil, err
		}
		if err := l.Cells(GridCells(grid)); err != nil {
			w.Close()
			return nil, nil, err
		}
		plan, err := NewPlan(grid, GridCells(grid), nil)
		if err != nil {
			l.Close()
			return nil, nil, err
		}
		return l, plan, nil
	}

	w, recs, err := Open(path)
	if err != nil {
		return nil, nil, err
	}
	sub, cells, done, _, err := replay(recs)
	if err != nil {
		w.Close()
		return nil, nil, err
	}
	if sub == nil {
		// Header-only file (a crash before the submission synced): treat as
		// fresh by journaling submission + cells now.
		l := &JobLog{wal: w, syncEvery: 8}
		s := Submission{ID: "sweep", Spec: spec, Event: event}
		payload, merr := json.Marshal(s)
		if merr != nil {
			w.Close()
			return nil, nil, merr
		}
		w.SyncEvery = 1
		if aerr := w.Append(recSubmit, payload); aerr != nil {
			w.Close()
			return nil, nil, aerr
		}
		if cerr := l.Cells(GridCells(grid)); cerr != nil {
			w.Close()
			return nil, nil, cerr
		}
		plan, perr := NewPlan(grid, GridCells(grid), nil)
		if perr != nil {
			l.Close()
			return nil, nil, perr
		}
		return l, plan, nil
	}
	if sub.Event != event {
		w.Close()
		return nil, nil, fmt.Errorf("durable: %s was journaled under event mode %d, this run uses %d; resume with the original -event", path, sub.Event, event)
	}
	l := &JobLog{wal: w, syncEvery: 8}
	if cells == nil {
		// Crash between submission and expansion: journal the table now.
		cells = GridCells(grid)
		if err := l.Cells(cells); err != nil {
			w.Close()
			return nil, nil, err
		}
	}
	plan, err := NewPlan(grid, cells, done)
	if err != nil {
		l.Close()
		return nil, nil, err
	}
	return l, plan, nil
}
