package fleet

import (
	"sync"

	"repro/internal/device"
	"repro/internal/thermal"
)

// phonePool recycles device.Phone allocations across the jobs of one batch.
// Phone construction costs ~30 KB (thermal network, SoC, pack, four seeded
// sensors) per job; population sweeps run thousands of jobs over a handful
// of device configurations, so almost every job can reuse a phone built by
// an earlier one. Pools are keyed by the Job.Device pointer — jobs sharing
// a config value but not the pointer simply get separate pools — with nil
// keying the default configuration. Reuse is invisible to results:
// device.Phone.Reset restores a phone to a state byte-identical to fresh
// construction (the device tests pin that equivalence).
type phonePool struct {
	mu    sync.Mutex
	byCfg map[*device.Config]*sync.Pool
	// limit, when positive, caps how many distinct config keys the pool
	// tracks: inserting past it drops the whole map. Per-batch pools leave
	// it zero (the batch bounds their lifetime); persistent cross-run pools
	// set it so a stream of never-repeated Job.Device pointers cannot pin
	// an unbounded set of dead configs.
	limit int
}

// newPhonePool creates an empty pool for one batch. Scoping the pool to a
// batch (not the process) keeps the Job.Device key pointers live only as
// long as the batch that handed them out.
func newPhonePool() *phonePool {
	return &phonePool{byCfg: make(map[*device.Config]*sync.Pool)}
}

// maxPersistentConfigs bounds the config-key set of a persistent pool. A
// runner cycles through a handful of device configurations in practice;
// 64 distinct live keys means the caller is generating configs per run,
// and recycling stops paying anyway.
const maxPersistentConfigs = 64

// newPersistentPhonePool creates a pool meant to outlive any single batch:
// phone allocations carry over from one Run call to the next (the batched
// runner's waves need cohort-width simultaneous phones, so only cross-run
// reuse amortizes their construction). Contents remain reclaimable — the
// per-key stores are sync.Pools, which the GC empties under pressure.
func newPersistentPhonePool() *phonePool {
	return &phonePool{byCfg: make(map[*device.Config]*sync.Pool), limit: maxPersistentConfigs}
}

// get returns a previously pooled phone for the config key, or nil when the
// caller must construct one. A returned phone holds the state of its last
// run; callers must Reset it before use.
func (p *phonePool) get(key *device.Config) *device.Phone {
	p.mu.Lock()
	sp := p.byCfg[key]
	p.mu.Unlock()
	if sp == nil {
		return nil
	}
	ph, _ := sp.Get().(*device.Phone)
	return ph
}

// put returns a phone to the config key's pool.
func (p *phonePool) put(key *device.Config, ph *device.Phone) {
	if ph == nil {
		return
	}
	p.mu.Lock()
	sp := p.byCfg[key]
	if sp == nil {
		if p.limit > 0 && len(p.byCfg) >= p.limit {
			p.byCfg = make(map[*device.Config]*sync.Pool)
		}
		sp = &sync.Pool{}
		p.byCfg[key] = sp
	}
	p.mu.Unlock()
	sp.Put(ph)
}

// lockstepPool recycles thermal.Lockstep instances — and with them the
// StateBlock arenas and per-tick regrouping scratch — across the batched
// runner's waves. A wave's lockstep is shape-bound (node count × column
// capacity), so reuse goes through Lockstep.Reset: when a pooled
// instance cannot hold the next cohort the wave simply builds a fresh
// one, and the larger of the two returns to the pool afterwards. A nil
// *lockstepPool is valid and means "no recycling" (the per-Run batched
// path).
type lockstepPool struct {
	p sync.Pool
}

// get returns a lockstep enrolled over nets, recycled when a pooled
// instance fits the cohort's shape.
func (lp *lockstepPool) get(nets []*thermal.Network) (*thermal.Lockstep, error) {
	if lp != nil {
		if ls, ok := lp.p.Get().(*thermal.Lockstep); ok && ls != nil {
			if ls.Reset(nets) == nil {
				return ls, nil
			}
		}
	}
	return thermal.NewLockstep(nets)
}

// put returns a closed (scattered) lockstep to the pool.
func (lp *lockstepPool) put(ls *thermal.Lockstep) {
	if lp != nil && ls != nil {
		lp.p.Put(ls)
	}
}
