package fleet

import (
	"context"
	"math"
	"sync"

	"repro/internal/device"
	"repro/internal/thermal"
)

// DefaultBatchWidth bounds how many jobs of one cohort advance in a single
// lockstep wave. A wave's per-tick working set is every member phone's hot
// state; keeping it cache-sized beats maximal batching, and waves are also
// the unit of parallelism across the worker pool.
const DefaultBatchWidth = 32

// BatchRunner is the cohort-batched lockstep Runner: it groups a batch's
// jobs into cohorts that share a thermal propagator — keyed by the
// device's conductance fingerprint, its base step and the run's tick count
// — builds every cohort member's phone, and advances the whole cohort in
// lockstep, tick by tick, replacing N per-phone 8×8 mat-vecs with one
// fused mat-mat per tick (thermal.Lockstep). Per-phone work that cannot
// batch — workload sampling, the governor window, sensors, battery,
// logging — runs inside the lockstep loop through the same device.StepRun
// ticks the local runner executes, so results, traces and streamed
// telemetry are byte-identical to LocalRunner at any width or worker
// count. Jobs whose thermal configuration mutates mid-run (touch flips)
// regroup into per-propagator sub-cohorts each tick inside the Lockstep.
//
// Cohorts split into waves of at most Width jobs; waves fan out across
// Config.Workers exactly like local jobs do. Jobs that cannot join a
// cohort — nil workloads, invalid device configurations — degrade to the
// local per-job path with identical errors. Cancellation degrades to
// per-job context errors carrying each job's partial result, like the
// local runner's.
//
// Batching pays off when many jobs share a device configuration and
// duration (scenario grid sweeps: ambients, users, limits and schemes all
// share propagators); a batch of all-distinct configurations degenerates
// to single-job cohorts, which cost within noise of LocalRunner.
//
// When Config.Event selects an event mode, segmentation is per-phone, so
// a tick lockstep does not apply: each wave member runs its own event
// loop instead (same grouping, reporting and pooling; results match
// LocalRunner under the same mode byte for byte).
type BatchRunner struct {
	// Width caps jobs per lockstep wave (<= 0: DefaultBatchWidth).
	Width int

	// pool, when non-nil, persists phone allocations across Run calls
	// (NewBatchRunner sets it). A wave needs cohort-width simultaneous
	// phones, so unlike the sequential local path, a per-Run pool cannot
	// recycle within a run — every Run rebuilds the whole cohort (and
	// reseeds every sensor) from scratch. Carrying the pool across runs
	// removes that: run N+1 reuses run N's phones. The zero value keeps
	// the old per-Run scope.
	pool *phonePool

	// lsPool, when non-nil, recycles lockstep state blocks across waves
	// and Run calls (NewBatchRunner sets it alongside the phone pool): a
	// wave re-enrolls a pooled block via thermal.Lockstep.Reset instead
	// of allocating a fresh arena. nil keeps per-wave allocation.
	lsPool *lockstepPool
}

// NewBatchRunner returns a BatchRunner whose phone pool persists across
// Run calls — the configuration every long-lived caller (benchmarks,
// scenario services, worker daemons) wants. The runner is a value; copies
// share the pool, and concurrent Runs are safe.
func NewBatchRunner() BatchRunner {
	return BatchRunner{pool: newPersistentPhonePool(), lsPool: &lockstepPool{}}
}

// cohortKey groups jobs that can advance in lockstep: identical thermal
// propagator source (conductance fingerprint of the freshly built device),
// identical base tick, identical tick count.
type cohortKey struct {
	sig   uint64
	dt    float64
	steps int
}

// probeResult is one device configuration's cohort fingerprint.
type probeResult struct {
	sig uint64
	dt  float64
	ok  bool
}

// batchScratch recycles Run's grouping state — the probe and cohort maps
// and the keyOrder/solo/waves slices — across Run calls, so a steady-state
// caller (scenario services, benchmarks, worker daemons) regroups each
// batch without re-growing maps and slices. Purely an allocation concern:
// every field is rebuilt from the jobs each Run, so reuse cannot change
// results.
type batchScratch struct {
	probes   map[*device.Config]probeResult
	cohorts  map[cohortKey][]int
	keyOrder []cohortKey
	solo     []int
	waves    [][]int
}

var batchScratchPool = sync.Pool{New: func() any {
	return &batchScratch{
		probes:  map[*device.Config]probeResult{},
		cohorts: map[cohortKey][]int{},
	}
}}

// release scrubs the scratch for the next Run: probe entries are deleted
// (they depend on pool state), cohort member slices are truncated in place
// so their backing arrays survive for the recurring cohort keys of
// repeated identical batches.
func (s *batchScratch) release() {
	for k := range s.probes {
		delete(s.probes, k)
	}
	for k, v := range s.cohorts {
		s.cohorts[k] = v[:0]
	}
	s.keyOrder = s.keyOrder[:0]
	s.solo = s.solo[:0]
	s.waves = s.waves[:0]
	batchScratchPool.Put(s)
}

// Run implements Runner.
func (r BatchRunner) Run(ctx context.Context, cfg Config, jobs []Job) []JobResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	pool := r.pool
	if pool == nil {
		pool = newPhonePool()
	}
	report := ResultReporter(cfg, len(jobs))
	width := r.Width
	if width <= 0 {
		width = DefaultBatchWidth
	}

	sc := batchScratchPool.Get().(*batchScratch)
	defer sc.release()

	// Probe each distinct device configuration once: one throwaway-free
	// phone build yields the thermal fingerprint and lands in the pool for
	// the first real job to recycle, so probing costs nothing extra.
	probe := func(key *device.Config) probeResult {
		if pr, done := sc.probes[key]; done {
			return pr
		}
		devCfg := device.DefaultConfig()
		if key != nil {
			devCfg = *key
		}
		pr := probeResult{}
		if ph, err := device.New(devCfg, nil); err == nil {
			pr = probeResult{sig: ph.Network().Fingerprint(), dt: devCfg.StepSec, ok: true}
			pool.put(key, ph)
		}
		sc.probes[key] = pr
		return pr
	}

	keyOrder := sc.keyOrder
	solo := sc.solo
	for i := range jobs {
		job := &jobs[i]
		if job.Workload == nil {
			solo = append(solo, i)
			continue
		}
		if job.DeadlineSec > 0 {
			// A lockstep wave advances every member together; expiring one
			// mid-wave would force partial-wave bookkeeping for a job that is
			// by definition on a nondeterministic path already. Deadline jobs
			// run solo, where runJob's derived context enforces the bound.
			solo = append(solo, i)
			continue
		}
		pr := probe(job.Device)
		if !pr.ok || pr.dt <= 0 {
			solo = append(solo, i)
			continue
		}
		dur := job.DurSec
		if d := job.Workload.Duration(); dur <= 0 || dur > d {
			dur = d
		}
		k := cohortKey{sig: pr.sig, dt: pr.dt, steps: int(math.Round(dur / pr.dt))}
		// Stale keys from a previous Run linger truncated to length zero,
		// so emptiness — not presence — marks a key as new this Run.
		if len(sc.cohorts[k]) == 0 {
			keyOrder = append(keyOrder, k)
		}
		sc.cohorts[k] = append(sc.cohorts[k], i)
	}

	waves := sc.waves
	for _, k := range keyOrder {
		idxs := sc.cohorts[k]
		for start := 0; start < len(idxs); start += width {
			end := start + width
			if end > len(idxs) {
				end = len(idxs)
			}
			waves = append(waves, idxs[start:end])
		}
	}
	sc.keyOrder, sc.solo, sc.waves = keyOrder, solo, waves

	ForEach(len(waves)+len(solo), cfg.Workers, func(u int) {
		if u < len(waves) {
			runWave(ctx, &cfg, pool, r.lsPool, jobs, waves[u], results, report)
			return
		}
		i := solo[u-len(waves)]
		results[i] = runJob(ctx, &cfg, pool, i, jobs[i])
		report(results[i])
	})
	return results
}

// liveRun is one wave member mid-flight.
type liveRun struct {
	i     int
	job   *Job
	name  string
	seed  int64
	phone *device.Phone
	run   *device.StepRun
}

// finishRun closes a live run with err, records and reports its result,
// and returns the phone to the pool.
func finishRun(cfg *Config, pool *phonePool, lr *liveRun, err error, results []JobResult, report func(JobResult)) {
	res, rerr := lr.run.Finish(err)
	jr := JobResult{Index: lr.i, Name: lr.name, User: lr.job.User, SeedUsed: lr.seed, Result: res, Err: rerr}
	results[lr.i] = jr
	report(jr)
	pool.put(lr.job.Device, lr.phone)
}

// soloTicks drives one live run to completion without a lockstep — the
// degradation path when a wave cannot form one (and the finisher for the
// defensive step-count mismatch).
func soloTicks(ctx context.Context, cfg *Config, pool *phonePool, lr *liveRun, results []JobResult, report func(JobResult)) {
	net := lr.phone.Network()
	dt := lr.run.Dt()
	for lr.run.Done() < lr.run.Steps() {
		if err := ctx.Err(); err != nil {
			finishRun(cfg, pool, lr, err, results, report)
			return
		}
		lr.run.PreStep()
		net.Step(dt)
		lr.run.PostStep()
	}
	finishRun(cfg, pool, lr, nil, results, report)
}

// waveScratch recycles one wave's assembly state — the live-run table and
// the network gather list — across waves and Run calls. Waves run
// concurrently, so each runWave checks one out for its whole duration.
type waveScratch struct {
	live []liveRun
	nets []*thermal.Network
}

var waveScratchPool = sync.Pool{New: func() any { return new(waveScratch) }}

// releaseWave zeroes the scratch (liveRun holds phone pointers that must
// not outlive the wave in pooled memory) and returns it.
func releaseWave(ws *waveScratch, live []liveRun) {
	for i := range live {
		live[i] = liveRun{}
	}
	ws.live = live[:0]
	for i := range ws.nets {
		ws.nets[i] = nil
	}
	ws.nets = ws.nets[:0]
	waveScratchPool.Put(ws)
}

// runEventLive drives one live run through the event engine to completion
// (the batched runner's per-phone path when an event mode is selected —
// event segmentation is per-phone, so a lockstep does not apply).
func runEventLive(ctx context.Context, cfg *Config, pool *phonePool, lr *liveRun, results []JobResult, report func(JobResult)) {
	e := device.NewEventRun(lr.run, lr.job.Workload, cfg.Event)
	for e.Active() {
		if err := ctx.Err(); err != nil {
			finishRun(cfg, pool, lr, err, results, report)
			return
		}
		e.Segment()
	}
	finishRun(cfg, pool, lr, nil, results, report)
}

// runWave executes one cohort wave in lockstep (or, in event mode, runs
// its members' per-phone event loops).
func runWave(ctx context.Context, cfg *Config, pool *phonePool, lsp *lockstepPool, jobs []Job, idxs []int, results []JobResult, report func(JobResult)) {
	ws := waveScratchPool.Get().(*waveScratch)
	live := ws.live[:0]
	defer func() { releaseWave(ws, live) }()
	for _, i := range idxs {
		job := &jobs[i]
		jr := JobResult{Index: i, Name: job.Name, User: job.User}
		if jr.Name == "" {
			jr.Name = job.Workload.Name()
		}
		if err := ctx.Err(); err != nil {
			jr.Err = err
			results[i] = jr
			report(jr)
			continue
		}
		phone, seed, err := preparePhone(cfg, pool, i, job)
		if err != nil {
			jr.SeedUsed = seed
			jr.Err = err
			results[i] = jr
			report(jr)
			continue
		}
		live = append(live, liveRun{
			i: i, job: job, name: jr.Name, seed: seed, phone: phone,
			run: phone.StartRun(job.Workload, job.DurSec),
		})
	}
	if len(live) == 0 {
		return
	}
	if cfg.Event != device.EventOff {
		for li := range live {
			runEventLive(ctx, cfg, pool, &live[li], results, report)
		}
		return
	}
	// The cohort key pins a common step count; treat any mismatch (a
	// defensive impossibility) as a solo straggler rather than corrupting
	// the lockstep.
	steps := live[0].run.Steps()
	lock := live[:0]
	for li := range live {
		if live[li].run.Steps() != steps {
			soloTicks(ctx, cfg, pool, &live[li], results, report)
			continue
		}
		lock = append(lock, live[li])
	}
	live = lock
	if len(live) == 0 {
		return
	}
	nets := ws.nets[:0]
	for li := range live {
		nets = append(nets, live[li].phone.Network())
	}
	ws.nets = nets
	ls, err := lsp.get(nets)
	if err != nil {
		for li := range live {
			soloTicks(ctx, cfg, pool, &live[li], results, report)
		}
		return
	}
	dt := live[0].run.Dt()
	for tick := 0; tick < steps; tick++ {
		if err := ctx.Err(); err != nil {
			ls.Close()
			lsp.put(ls)
			for li := range live {
				finishRun(cfg, pool, &live[li], err, results, report)
			}
			return
		}
		for li := range live {
			live[li].run.PreStep()
		}
		ls.Step(dt)
		for li := range live {
			live[li].run.PostStep()
		}
	}
	ls.Close()
	lsp.put(ls)
	for li := range live {
		finishRun(cfg, pool, &live[li], nil, results, report)
	}
}
