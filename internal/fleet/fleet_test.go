package fleet

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestNormalizeWorkers is the one table for every parallelism knob in the
// codebase: worker pools, shard counts and ForEach all normalize through
// this helper, so zero/negative handling cannot drift per call site.
func TestNormalizeWorkers(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		in, want int
	}{
		{-100, procs},
		{-1, procs},
		{0, procs},
		{1, 1},
		{7, 7},
		{1024, 1024},
	}
	for _, tc := range cases {
		if got := NormalizeWorkers(tc.in); got != tc.want {
			t.Errorf("NormalizeWorkers(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	// The fleet constructor and the scheduling primitive agree with the
	// helper by construction — pin the visible surfaces.
	if got := New(Config{Workers: -3}).Workers(); got != procs {
		t.Errorf("New(Workers: -3).Workers() = %d, want %d", got, procs)
	}
	if got := New(Config{Workers: 5}).Workers(); got != 5 {
		t.Errorf("New(Workers: 5).Workers() = %d, want 5", got)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 57
		var hits [n]atomic.Int32
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("ForEach should not call fn for n <= 0")
	}
}

func TestDeriveSeedProperties(t *testing.T) {
	seen := map[int64]int{}
	for _, base := range []int64{0, 1, 42, -7} {
		for i := 0; i < 1000; i++ {
			s := DeriveSeed(base, i)
			if s == 0 {
				t.Fatalf("DeriveSeed(%d, %d) = 0", base, i)
			}
			if s != DeriveSeed(base, i) {
				t.Fatalf("DeriveSeed(%d, %d) not stable", base, i)
			}
			seen[s]++
		}
	}
	// 4000 derivations over 64 bits: any collision means a broken mix.
	for s, n := range seen {
		if n > 1 {
			t.Fatalf("seed %d derived %d times", s, n)
		}
	}
}
