package fleet

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 57
		var hits [n]atomic.Int32
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("ForEach should not call fn for n <= 0")
	}
}

func TestDeriveSeedProperties(t *testing.T) {
	seen := map[int64]int{}
	for _, base := range []int64{0, 1, 42, -7} {
		for i := 0; i < 1000; i++ {
			s := DeriveSeed(base, i)
			if s == 0 {
				t.Fatalf("DeriveSeed(%d, %d) = 0", base, i)
			}
			if s != DeriveSeed(base, i) {
				t.Fatalf("DeriveSeed(%d, %d) not stable", base, i)
			}
			seen[s]++
		}
	}
	// 4000 derivations over 64 bits: any collision means a broken mix.
	for s, n := range seen {
		if n > 1 {
			t.Fatalf("seed %d derived %d times", s, n)
		}
	}
}
