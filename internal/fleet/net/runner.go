package net

import (
	"context"
	"errors"
	"fmt"
	stdnet "net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/fleet/wire"
	"repro/internal/sink"
)

// DefaultHeartbeatTimeout is how long the coordinator tolerates a silent
// worker connection before declaring the host dead. Sample, result and
// heartbeat frames all refresh it, so only a worker that stopped making
// progress and stopped pulsing trips it.
const DefaultHeartbeatTimeout = 5 * DefaultHeartbeatInterval

// DefaultDialTimeout bounds connection establishment plus the hello
// handshake per worker connection.
const DefaultDialTimeout = 5 * time.Second

// defaultMaxRetries is how many times a work item survives worker loss
// before its remaining jobs fail.
const defaultMaxRetries = 3

// errNoSpec mirrors the shard runner's rule: only serializable jobs can
// cross a host boundary.
var errNoSpec = errors.New("net: job has no serializable spec (Job.Spec); only scenario-expanded or spec-carrying jobs can run on a networked runner")

// Runner is the multi-host fleet.Runner: it partitions jobs into work
// items, dispatches them to ustaworker daemons over TCP, and merges the
// streamed frames back into submission order. Seeds are resolved
// coordinator-side through fleet.EffectiveSeed before dispatch, so a
// distributed run is byte-identical to LocalRunner — including after a
// worker dies mid-shard and its unreported jobs are retried on a
// surviving host (telemetry for a retried job is buffered and flushed
// only when its result arrives, so a half-streamed first attempt leaves
// no trace). Hosts die by transport failure or heartbeat-deadline expiry
// and take no further work; when every host is dead the remaining jobs
// fail instead of hanging. The zero value is not useful; set Hosts.
type Runner struct {
	// Hosts is the static worker inventory, "host:port" per entry.
	Hosts []string
	// Predictor backs "usta" job specs in the workers; serialized once per
	// run and shipped inside every shard request.
	Predictor *core.Predictor
	// Batched selects the cohort-batched lockstep runner inside each
	// worker. Output is byte-identical either way.
	Batched bool
	// ShardSize is the number of jobs per dispatch unit (<= 0: the batch is
	// split into about four items per host, so one slow shard cannot strand
	// the run behind it).
	ShardSize int
	// MaxRetries is how many times a work item is re-dispatched after
	// worker loss before its unreported jobs fail (<= 0: 3).
	MaxRetries int
	// HeartbeatTimeout is the silent-connection budget before a host is
	// declared dead (<= 0: DefaultHeartbeatTimeout).
	HeartbeatTimeout time.Duration
	// DialTimeout bounds dial + hello handshake (<= 0: DefaultDialTimeout).
	DialTimeout time.Duration
	// Admission, when set, gates dispatch: every work item takes one token
	// per job before its shard request is written.
	Admission *TokenBucket
	// Logf, when set, receives one line per host-level event (connect,
	// death, retry). Nil is silent.
	Logf func(format string, args ...any)
}

// New creates a networked runner over the given worker addresses.
func New(hosts []string) *Runner { return &Runner{Hosts: hosts} }

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// workItem is one dispatch unit: a set of seeded, globally-indexed specs
// and the retry budget they have left.
type workItem struct {
	specs    []fleet.JobSpec
	attempts int
}

// dispatcher is the coordinator's work queue: host slots pull items, and
// failed items come back for retry. It tracks outstanding work and live
// hosts so idle slots wake up exactly when there is something to do — or
// when nothing ever will be again.
type dispatcher struct {
	mu          sync.Mutex
	cond        *sync.Cond
	pending     []*workItem
	outstanding int
	liveHosts   int
	cancelled   bool
	lastErr     error // last host-loss error, for jobs failed by host exhaustion
}

func newDispatcher(items []*workItem, hosts int) *dispatcher {
	d := &dispatcher{pending: items, liveHosts: hosts}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// next blocks until a work item is available and claims it, or returns nil
// when the run is over for this slot: queue drained with nothing in
// flight, every host dead, or the run cancelled.
func (d *dispatcher) next() *workItem {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.cancelled || d.liveHosts == 0 {
			return nil
		}
		if len(d.pending) > 0 {
			it := d.pending[0]
			d.pending = d.pending[1:]
			d.outstanding++
			return it
		}
		if d.outstanding == 0 {
			return nil
		}
		d.cond.Wait()
	}
}

// finish retires a claimed item (completed or permanently failed).
func (d *dispatcher) finish() {
	d.mu.Lock()
	d.outstanding--
	d.mu.Unlock()
	d.cond.Broadcast()
}

// requeue returns a claimed item to the queue for another attempt.
func (d *dispatcher) requeue(it *workItem) {
	d.mu.Lock()
	d.outstanding--
	d.pending = append(d.pending, it)
	d.mu.Unlock()
	d.cond.Broadcast()
}

// hostDown records the loss of a host and remembers why.
func (d *dispatcher) hostDown(err error) {
	d.mu.Lock()
	d.liveHosts--
	if err != nil {
		d.lastErr = err
	}
	d.mu.Unlock()
	d.cond.Broadcast()
}

// cancel aborts the run: blocked slots wake and exit.
func (d *dispatcher) cancel() {
	d.mu.Lock()
	d.cancelled = true
	d.mu.Unlock()
	d.cond.Broadcast()
}

// drain empties the pending queue, returning the stranded items (used
// after every slot has exited to fail whatever never ran).
func (d *dispatcher) drain() []*workItem {
	d.mu.Lock()
	defer d.mu.Unlock()
	items := d.pending
	d.pending = nil
	return items
}

// runState is the merge side of a run: results, received tracking, and
// the per-job telemetry buffers that make retry invisible to the sink.
type runState struct {
	mu       sync.Mutex
	results  []fleet.JobResult
	received []bool
	jobs     []fleet.Job
	report   func(fleet.JobResult)
	sink     sink.Sink
	buf      map[int][]device.Sample // global index → samples awaiting the job's result
}

// sample buffers one telemetry sample until its job's result arrives.
func (st *runState) sample(idx int, s device.Sample) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if idx < 0 || idx >= len(st.received) || st.received[idx] {
		return // late frame from a lost worker; the retry owns this job now
	}
	st.buf[idx] = append(st.buf[idx], s)
}

// result records a job result, flushing its buffered telemetry first so
// the sink sees each job's samples exactly once even across retries.
// Duplicate results (a lost worker's frame racing its replacement) are
// dropped.
func (st *runState) result(rf *wire.ResultFrame) {
	st.mu.Lock()
	defer st.mu.Unlock()
	idx := rf.Index
	if idx < 0 || idx >= len(st.received) || st.received[idx] {
		return
	}
	if st.sink != nil {
		for _, s := range st.buf[idx] {
			st.sink.Accept(sink.JobID(idx), s)
		}
		delete(st.buf, idx)
	}
	st.results[idx] = rf.Decode()
	st.received[idx] = true
	st.report(st.results[idx])
}

// fail marks every unreported job of an item failed with err.
func (st *runState) fail(it *workItem, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := range it.specs {
		idx := it.specs[i].Index
		if st.received[idx] {
			continue
		}
		delete(st.buf, idx)
		st.results[idx] = errResult(idx, &st.jobs[idx], err)
		st.received[idx] = true
		st.report(st.results[idx])
	}
}

// unreported builds the retry item for a lost shard: only the jobs the
// dead worker never reported, with their half-streamed telemetry dropped.
func (st *runState) unreported(it *workItem) *workItem {
	st.mu.Lock()
	defer st.mu.Unlock()
	retry := &workItem{attempts: it.attempts + 1}
	for i := range it.specs {
		idx := it.specs[i].Index
		if st.received[idx] {
			continue
		}
		delete(st.buf, idx) // partial samples from the lost attempt
		retry.specs = append(retry.specs, it.specs[i])
	}
	if len(retry.specs) == 0 {
		return nil
	}
	return retry
}

// errResult matches the local runner's failed-job shape.
func errResult(i int, job *fleet.Job, err error) fleet.JobResult {
	res := fleet.JobResult{Index: i, Name: job.Name, User: job.User, Err: err}
	if res.Name == "" && job.Workload != nil {
		res.Name = job.Workload.Name()
	}
	return res
}

// Run implements fleet.Runner. See the type comment for the contract.
func (r *Runner) Run(ctx context.Context, cfg fleet.Config, jobs []fleet.Job) []fleet.JobResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]fleet.JobResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	report := fleet.ResultReporter(cfg, len(jobs))
	st := &runState{
		results:  results,
		received: make([]bool, len(jobs)),
		jobs:     jobs,
		report:   report,
		sink:     cfg.Sink,
		buf:      make(map[int][]device.Sample),
	}
	failAll := func(err error) []fleet.JobResult {
		for i := range jobs {
			if !st.received[i] {
				results[i] = errResult(i, &jobs[i], err)
				report(results[i])
			}
		}
		return results
	}
	if len(r.Hosts) == 0 {
		return failAll(errors.New("net: no worker hosts configured"))
	}
	pred, err := wire.EncodePredictor(r.Predictor)
	if err != nil {
		return failAll(err)
	}

	// Seed and index every spec'd job now — determinism must not depend on
	// which host runs it or on how many attempts it takes. Spec-less jobs
	// cannot cross the wire and fail immediately.
	specs := make([]fleet.JobSpec, 0, len(jobs))
	for i := range jobs {
		if jobs[i].Spec == nil {
			st.results[i] = errResult(i, &jobs[i], errNoSpec)
			st.received[i] = true
			report(st.results[i])
			continue
		}
		spec := *jobs[i].Spec
		spec.Index = i
		spec.Seed = fleet.EffectiveSeed(cfg.Seed, i, &jobs[i])
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return results
	}

	// Partition into work items: a few per host so the queue can rebalance
	// around slow or dead workers.
	size := r.ShardSize
	if size <= 0 {
		size = (len(specs) + 4*len(r.Hosts) - 1) / (4 * len(r.Hosts))
	}
	var items []*workItem
	for start := 0; start < len(specs); start += size {
		end := start + size
		if end > len(specs) {
			end = len(specs)
		}
		items = append(items, &workItem{specs: specs[start:end]})
	}
	d := newDispatcher(items, len(r.Hosts))

	// Cancellation: poke every open connection's read deadline so blocked
	// slots wake immediately, observe ctx, send a best-effort cancel frame
	// and tear down.
	var connMu sync.Mutex
	conns := make(map[stdnet.Conn]struct{})
	trackConn := func(c stdnet.Conn, add bool) {
		connMu.Lock()
		if add {
			conns[c] = struct{}{}
		} else {
			delete(conns, c)
		}
		connMu.Unlock()
	}
	stop := context.AfterFunc(ctx, func() {
		d.cancel()
		connMu.Lock()
		for c := range conns {
			c.SetReadDeadline(time.Now())
		}
		connMu.Unlock()
	})
	defer stop()

	req := baseRequest{pred: pred, workers: cfg.Workers, wantSamples: cfg.Sink != nil, batched: r.Batched}
	var wg sync.WaitGroup
	for _, addr := range r.Hosts {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			r.runHost(ctx, addr, d, st, req, trackConn)
		}(addr)
	}
	wg.Wait()

	// Whatever is still pending after every slot exited can never run:
	// either all hosts died or the run was cancelled.
	strandErr := ctx.Err()
	if strandErr == nil {
		d.mu.Lock()
		strandErr = d.lastErr
		d.mu.Unlock()
		if strandErr == nil {
			strandErr = errors.New("net: no live worker hosts")
		}
	}
	for _, it := range d.drain() {
		st.fail(it, strandErr)
	}
	// Claimed-but-unfinished items were already failed or requeued by their
	// slots; a final sweep catches jobs stranded by cancellation races.
	st.mu.Lock()
	for i := range jobs {
		if !st.received[i] {
			st.results[i] = errResult(i, &jobs[i], strandErr)
			st.received[i] = true
			st.report(st.results[i])
		}
	}
	st.mu.Unlock()
	return results
}

// baseRequest carries the per-run constants every shard request shares.
type baseRequest struct {
	pred        []byte
	workers     int
	wantSamples bool
	batched     bool
}

// host is the per-address liveness record shared by its slots.
type host struct {
	addr string
	mu   sync.Mutex
	dead bool
}

func (h *host) markDead() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dead {
		return false
	}
	h.dead = true
	return true
}

func (h *host) isDead() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dead
}

// runHost manages one worker address for one run: a probe connection
// learns the daemon's capacity from its hello, then that many slot loops
// pull work items and execute them on their own connections. The first
// transport failure (or heartbeat-deadline expiry) on any slot marks the
// whole host dead — a killed daemon drops every connection at once, and a
// wedged one should not be trusted with more work.
func (r *Runner) runHost(ctx context.Context, addr string, d *dispatcher, st *runState, req baseRequest, trackConn func(stdnet.Conn, bool)) {
	h := &host{addr: addr}
	conn, capacity, err := r.dial(ctx, addr)
	if err != nil {
		r.logf("net: host %s: %v", addr, err)
		d.hostDown(fmt.Errorf("net: host %s: %w", addr, err))
		return
	}
	r.logf("net: host %s: connected, capacity %d", addr, capacity)

	var wg sync.WaitGroup
	for i := 0; i < capacity; i++ {
		var c stdnet.Conn
		if i == 0 {
			c = conn // the probe connection serves as the first slot
		} else {
			var cerr error
			c, _, cerr = r.dial(ctx, addr)
			if cerr != nil {
				// The daemon advertised more capacity than it can accept
				// right now; run with the slots that connected.
				r.logf("net: host %s: slot %d: %v", addr, i, cerr)
				break
			}
		}
		wg.Add(1)
		go func(c stdnet.Conn) {
			defer wg.Done()
			trackConn(c, true)
			defer func() {
				trackConn(c, false)
				c.Close()
			}()
			r.runSlot(ctx, h, c, d, st, req)
		}(c)
	}
	wg.Wait()
	if h.markDead() {
		// Clean exit: the queue drained. The host was never lost, so no
		// lastErr — just retire its dispatcher seat.
		d.hostDown(nil)
	}
}

// dial connects to a worker daemon and completes the hello handshake,
// returning the connection and the daemon's advertised capacity.
func (r *Runner) dial(ctx context.Context, addr string) (stdnet.Conn, int, error) {
	timeout := r.DialTimeout
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	dialer := &stdnet.Dialer{Timeout: timeout}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, 0, err
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	f, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("hello: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	if f.Type != wire.TypeHello {
		conn.Close()
		return nil, 0, fmt.Errorf("hello: expected a %s frame, got %s", wire.TypeHello, f.Type)
	}
	if f.Hello.Proto != wire.Version {
		conn.Close()
		return nil, 0, fmt.Errorf("hello: protocol version %d, want %d", f.Hello.Proto, wire.Version)
	}
	return conn, f.Hello.Capacity, nil
}

// runSlot is one in-flight-shard lane on one connection: claim an item,
// pass admission, ship it, merge the stream, repeat. Transport failures
// mark the host dead and requeue the item's unreported jobs; worker-side
// error frames are deterministic failures and are not retried.
func (r *Runner) runSlot(ctx context.Context, h *host, conn stdnet.Conn, d *dispatcher, st *runState, req baseRequest) {
	maxRetries := r.MaxRetries
	if maxRetries <= 0 {
		maxRetries = defaultMaxRetries
	}
	hbTimeout := r.HeartbeatTimeout
	if hbTimeout <= 0 {
		hbTimeout = DefaultHeartbeatTimeout
	}
	for {
		if h.isDead() {
			return
		}
		it := d.next()
		if it == nil {
			return
		}
		if r.Admission != nil {
			if err := r.Admission.Wait(ctx, len(it.specs)); err != nil {
				st.fail(it, err)
				d.finish()
				return
			}
		}
		err := r.streamItem(conn, it, st, req, hbTimeout)
		if err == nil {
			d.finish()
			continue
		}
		var werr workerError
		if errors.As(err, &werr) {
			// The worker rejected the request deterministically (bad
			// predictor, bad frame): retrying elsewhere reproduces the same
			// failure. The connection stays usable.
			st.fail(it, err)
			d.finish()
			continue
		}
		// Transport loss. Attribute the right cause, mark the host dead,
		// and give the unreported jobs to another host — unless the run is
		// cancelled or the item is out of attempts.
		if ctx.Err() != nil {
			// Best-effort cancel so a surviving worker stops burning cores;
			// the deadline poke already unblocked our read.
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			wire.WriteFrame(conn, &wire.Frame{V: wire.Version, Type: wire.TypeCancel})
			st.fail(it, ctx.Err())
			d.finish()
			return
		}
		err = fmt.Errorf("net: host %s: %w", h.addr, err)
		if h.markDead() {
			r.logf("%v: marking host dead", err)
			d.hostDown(err)
		}
		retry := st.unreported(it)
		switch {
		case retry == nil:
			// Every job was already reported before the stream died.
			d.finish()
		case retry.attempts > maxRetries:
			st.fail(retry, fmt.Errorf("%w (retries exhausted)", err))
			d.finish()
		default:
			r.logf("net: host %s: requeueing %d unreported jobs (attempt %d)", h.addr, len(retry.specs), retry.attempts)
			d.requeue(retry)
		}
		return
	}
}

// workerError wraps a worker-side error frame: deterministic, not
// retryable.
type workerError struct{ msg string }

func (e workerError) Error() string { return e.msg }

// streamItem ships one work item as a shard request and merges the frames
// streaming back until the worker's done frame. Heartbeats (and any other
// traffic) refresh the read deadline; hbTimeout of silence is a transport
// failure.
func (r *Runner) streamItem(conn stdnet.Conn, it *workItem, st *runState, req baseRequest, hbTimeout time.Duration) error {
	sreq := &wire.ShardRequest{
		Workers:     req.workers,
		Predictor:   req.pred,
		WantSamples: req.wantSamples,
		Batched:     req.batched,
		Jobs:        it.specs,
	}
	conn.SetWriteDeadline(time.Now().Add(hbTimeout))
	if err := wire.WriteFrame(conn, &wire.Frame{V: wire.Version, Type: wire.TypeShard, Shard: sreq}); err != nil {
		return fmt.Errorf("send shard: %w", err)
	}
	conn.SetWriteDeadline(time.Time{})
	for {
		conn.SetReadDeadline(time.Now().Add(hbTimeout))
		f, err := wire.ReadFrame(conn)
		if err != nil {
			var nerr stdnet.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				return fmt.Errorf("no heartbeat for %v: %w", hbTimeout, err)
			}
			return err
		}
		switch f.Type {
		case wire.TypeHeartbeat:
			// Liveness pulse only; the deadline reset above is the point.
		case wire.TypeSample:
			st.sample(f.Sample.Job, f.Sample.Sample)
		case wire.TypeResult:
			st.result(f.Result)
		case wire.TypeDone:
			conn.SetReadDeadline(time.Time{})
			return nil
		case wire.TypeError:
			conn.SetReadDeadline(time.Time{})
			return workerError{msg: fmt.Sprintf("worker: %s", f.Err)}
		default:
			return fmt.Errorf("unexpected %s frame mid-shard", f.Type)
		}
	}
}
