package net

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	stdnet "net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/fleet/wire"
	"repro/internal/sink"
)

// DefaultHeartbeatTimeout is how long the coordinator tolerates a silent
// worker connection before declaring the connection lost. Sample, result
// and heartbeat frames all refresh it, so only a worker that stopped
// making progress and stopped pulsing trips it.
const DefaultHeartbeatTimeout = 5 * DefaultHeartbeatInterval

// DefaultDialTimeout bounds connection establishment plus the hello
// handshake per worker connection.
const DefaultDialTimeout = 5 * time.Second

// defaultMaxRetries is how many times a work item survives worker loss
// before its remaining jobs fail.
const defaultMaxRetries = 3

// Recovery defaults. A host is never retired by a single transport
// failure: its supervisor redials under exponential backoff with seeded
// jitter, opens a circuit breaker after BreakerThreshold consecutive
// failures, and probes half-open after a growing cooldown.
const (
	DefaultBackoffBase      = 100 * time.Millisecond
	DefaultBackoffMax       = 5 * time.Second
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 2 * time.Second
	// DefaultAllDeadDeadline is how long the run tolerates zero connected
	// hosts (everything down or cooling off) before giving up on the
	// network: remaining jobs fail, or — with FallbackLocal — run on the
	// in-process LocalRunner.
	DefaultAllDeadDeadline = 30 * time.Second
	// defaultHedgeFloor is the minimum in-flight age before an adaptive
	// hedge fires, so sub-second shards never double-dispatch.
	defaultHedgeFloor = 500 * time.Millisecond
)

// errNoSpec mirrors the shard runner's rule: only serializable jobs can
// cross a host boundary.
var errNoSpec = errors.New("net: job has no serializable spec (Job.Spec); only scenario-expanded or spec-carrying jobs can run on a networked runner")

// Runner is the multi-host fleet.Runner: it partitions jobs into work
// items, dispatches them to ustaworker daemons over TCP, and merges the
// streamed frames back into submission order. Seeds are resolved
// coordinator-side through fleet.EffectiveSeed before dispatch, so a
// distributed run is byte-identical to LocalRunner — including after a
// worker dies mid-shard and its unreported jobs are retried on a
// surviving host (telemetry for a retried job is buffered per attempt and
// flushed only when its result arrives, so a half-streamed attempt leaves
// no trace).
//
// The runner is self-healing: each host runs under a supervisor that
// redials after transport loss with exponential backoff and seeded
// jitter, trips a circuit breaker (closed → open → half-open probe) after
// consecutive failures, and re-admits the host mid-run once it recovers.
// Idle capacity hedges long-running shards onto a second host with
// first-reporter-wins dedup. When no host stays connected past
// AllDeadDeadline the remaining jobs fail — or, with FallbackLocal, run
// on the in-process LocalRunner with the same pinned seeds. Per-host
// state is observable through Stats. The zero value is not useful; set
// Hosts.
type Runner struct {
	// Hosts is the static worker inventory, "host:port" per entry.
	Hosts []string
	// Predictor backs "usta" job specs in the workers; serialized once per
	// run and shipped inside every shard request.
	Predictor *core.Predictor
	// Batched selects the cohort-batched lockstep runner inside each
	// worker. Output is byte-identical either way.
	Batched bool
	// ShardSize is the number of jobs per dispatch unit (<= 0: the batch is
	// split into about four items per host, so one slow shard cannot strand
	// the run behind it).
	ShardSize int
	// MaxRetries is how many times a work item is re-dispatched after
	// worker loss before its unreported jobs fail (<= 0: 3).
	MaxRetries int
	// HeartbeatTimeout is the silent-connection budget before a connection
	// is declared lost (<= 0: DefaultHeartbeatTimeout). Write deadlines on
	// control frames derive from it too.
	HeartbeatTimeout time.Duration
	// DialTimeout bounds dial + hello handshake (<= 0: DefaultDialTimeout).
	DialTimeout time.Duration
	// BackoffBase is the first redial delay after a host failure
	// (<= 0: DefaultBackoffBase). Doubles per consecutive failure up to
	// BackoffMax, plus seeded jitter.
	BackoffBase time.Duration
	// BackoffMax caps the redial backoff (<= 0: DefaultBackoffMax).
	BackoffMax time.Duration
	// BreakerThreshold is how many consecutive failures open a host's
	// circuit breaker (<= 0: DefaultBreakerThreshold).
	BreakerThreshold int
	// BreakerCooldown is the first open-breaker cooldown before a
	// half-open probe (<= 0: DefaultBreakerCooldown). Doubles while the
	// probe keeps failing.
	BreakerCooldown time.Duration
	// AllDeadDeadline is how long the run tolerates zero connected hosts
	// before declaring the fleet down (<= 0: DefaultAllDeadDeadline).
	AllDeadDeadline time.Duration
	// FallbackLocal, when set, runs the remaining jobs on the in-process
	// LocalRunner instead of failing them once the fleet is declared down.
	// Seeds were resolved before dispatch, so fallback output is
	// byte-identical to what the workers would have produced.
	FallbackLocal bool
	// HedgeAfter tunes speculative re-dispatch of stuck shards: 0 hedges
	// adaptively once an item has been in flight 3× the observed p95 item
	// duration (500 ms floor, needs 4 completed items); a positive value
	// is an explicit threshold; negative disables hedging.
	HedgeAfter time.Duration
	// Admission, when set, gates dispatch: every primary work item takes
	// one token per job before its shard request is written. Hedges are
	// re-dispatches of already-admitted work and skip the gate.
	Admission *TokenBucket
	// Logf, when set, receives one line per host-level event (connect,
	// loss, backoff, breaker transition, retry, hedge). Nil is silent.
	Logf func(format string, args ...any)

	// stats holds the live *statsTracker of the most recent Run; read via
	// Stats. (atomic.Value is copy-safe here: JobServer clones the Runner
	// per job and each clone tracks its own run.)
	stats atomic.Value

	// statsDst, when non-nil, is the cell Run publishes its tracker to
	// instead of the receiver's own — set by PublishStatsTo on throwaway
	// copies so the original keeps observing the run.
	statsDst *atomic.Value
}

// New creates a networked runner over the given worker addresses.
func New(hosts []string) *Runner { return &Runner{Hosts: hosts} }

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

func (r *Runner) maxRetries() int {
	if r.MaxRetries > 0 {
		return r.MaxRetries
	}
	return defaultMaxRetries
}

func (r *Runner) hbTimeout() time.Duration {
	if r.HeartbeatTimeout > 0 {
		return r.HeartbeatTimeout
	}
	return DefaultHeartbeatTimeout
}

func (r *Runner) backoffBase() time.Duration {
	if r.BackoffBase > 0 {
		return r.BackoffBase
	}
	return DefaultBackoffBase
}

func (r *Runner) backoffMax() time.Duration {
	if r.BackoffMax > 0 {
		return r.BackoffMax
	}
	return DefaultBackoffMax
}

func (r *Runner) breakerThreshold() int {
	if r.BreakerThreshold > 0 {
		return r.BreakerThreshold
	}
	return DefaultBreakerThreshold
}

func (r *Runner) breakerCooldown() time.Duration {
	if r.BreakerCooldown > 0 {
		return r.BreakerCooldown
	}
	return DefaultBreakerCooldown
}

func (r *Runner) allDeadDeadline() time.Duration {
	if r.AllDeadDeadline > 0 {
		return r.AllDeadDeadline
	}
	return DefaultAllDeadDeadline
}

// writeTimeoutFor derives the control-frame write deadline from the
// heartbeat timeout: one heartbeat interval's worth, floored so a tiny
// test timeout cannot make writes fail spuriously.
func writeTimeoutFor(hb time.Duration) time.Duration {
	wt := hb / 5
	if wt < 50*time.Millisecond {
		wt = 50 * time.Millisecond
	}
	return wt
}

// jitter returns a seeded random delay in [0, base/2]; jr is owned by one
// supervisor goroutine.
func jitter(jr *rand.Rand, base time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	return time.Duration(jr.Int63n(int64(base)/2 + 1))
}

func hashAddr(addr string) int64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	return int64(h.Sum64())
}

// itemState is one dispatch unit's lifecycle record: the unreported specs
// it still owes, its retry budget, and the in-flight attempt accounting
// that makes hedging and requeueing race-free.
type itemState struct {
	specs    []fleet.JobSpec
	attempts int                 // failed dispatches consumed
	live     int                 // in-flight attempts (primary + hedge)
	done     bool                // completed or permanently failed
	hedged   bool                // a hedge is (or was) riding this flight
	owner    string              // host running the primary attempt
	started  time.Time           // when the current flight began
	badHosts map[string]struct{} // hosts that failed this item
}

// attempt is one dispatch of an item to one host. It doubles as the
// telemetry-buffer key, so a lost attempt's half-streamed samples can be
// dropped without touching a live sibling's.
type attempt struct {
	item  *itemState
	specs []fleet.JobSpec // snapshot of item.specs at claim time
	addr  string
	hedge bool
}

// dispatcher is the coordinator's work queue: host slots pull items,
// failed items come back for retry, idle slots hedge overdue flights, and
// an all-dead timer bounds how long the run waits for any host to come
// back. The run is over exactly when the queue and the in-flight set are
// both empty, or the run is cancelled, or the fleet is declared down.
type dispatcher struct {
	mu         sync.Mutex
	cond       *sync.Cond
	pending    []*itemState
	inflight   map[*itemState]struct{}
	connected  map[string]int // addr → live generations (0s removed)
	cancelled  bool
	fleetDown  bool
	overClosed bool
	over       chan struct{}
	lastErr    error
	durations  []time.Duration // completed item wall times, for the hedge p95
	hedgeAfter time.Duration
	allDead    time.Duration
	deadTimer  *time.Timer
	tk         *statsTracker
	logf       func(string, ...any)
}

func newDispatcher(items []*itemState, r *Runner, tk *statsTracker) *dispatcher {
	d := &dispatcher{
		pending:    items,
		inflight:   make(map[*itemState]struct{}),
		connected:  make(map[string]int),
		over:       make(chan struct{}),
		hedgeAfter: r.HedgeAfter,
		allDead:    r.allDeadDeadline(),
		tk:         tk,
		logf:       r.logf,
	}
	d.cond = sync.NewCond(&d.mu)
	d.mu.Lock()
	d.armAllDeadLocked()
	d.mu.Unlock()
	return d
}

// maybeOverLocked closes the run-over channel when the run's end
// condition holds. Callers hold d.mu.
func (d *dispatcher) maybeOverLocked() {
	if d.overClosed {
		return
	}
	if d.cancelled || d.fleetDown || (len(d.pending) == 0 && len(d.inflight) == 0) {
		d.overClosed = true
		close(d.over)
		if d.deadTimer != nil {
			d.deadTimer.Stop()
		}
	}
}

func (d *dispatcher) runOver() bool {
	select {
	case <-d.over:
		return true
	default:
		return false
	}
}

func (d *dispatcher) isFleetDown() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fleetDown
}

// armAllDeadLocked starts the zero-connected-hosts countdown. Callers
// hold d.mu.
func (d *dispatcher) armAllDeadLocked() {
	if d.overClosed || d.deadTimer != nil {
		return
	}
	d.deadTimer = time.AfterFunc(d.allDead, func() {
		d.mu.Lock()
		if len(d.connected) == 0 && !d.overClosed {
			d.fleetDown = true
			if d.lastErr == nil {
				d.lastErr = errors.New("net: no live worker hosts")
			}
			d.maybeOverLocked()
		}
		d.mu.Unlock()
		d.cond.Broadcast()
	})
}

// setConnected tracks a host generation coming up or down, driving the
// all-dead countdown: armed while nothing is connected, cancelled the
// moment any host (re)connects.
func (d *dispatcher) setConnected(addr string, up bool) {
	d.mu.Lock()
	if up {
		d.connected[addr]++
		if d.deadTimer != nil {
			d.deadTimer.Stop()
			d.deadTimer = nil
		}
	} else {
		if d.connected[addr]--; d.connected[addr] <= 0 {
			delete(d.connected, addr)
		}
		if len(d.connected) == 0 {
			d.armAllDeadLocked()
		}
	}
	d.mu.Unlock()
	d.cond.Broadcast()
}

// noteErr remembers the most recent host-level error for strand reports.
func (d *dispatcher) noteErr(err error) {
	if err == nil {
		return
	}
	d.mu.Lock()
	d.lastErr = err
	d.mu.Unlock()
}

// eligibleLocked reports whether addr may run it. A host that failed an
// item does not get it again while some other connected host could take
// it — but when nobody else can (single-host inventories, everyone else
// down or equally burned), the item goes back to the same host rather
// than starving.
func (d *dispatcher) eligibleLocked(it *itemState, addr string) bool {
	if _, bad := it.badHosts[addr]; !bad {
		return true
	}
	for a := range d.connected {
		if a == addr {
			continue
		}
		if _, bad := it.badHosts[a]; !bad {
			return false
		}
	}
	return true
}

// hedgeThresholdLocked returns the in-flight age beyond which an idle
// slot may hedge an item, or 0 when hedging is (currently) off.
func (d *dispatcher) hedgeThresholdLocked() time.Duration {
	if d.hedgeAfter < 0 {
		return 0
	}
	if d.hedgeAfter > 0 {
		return d.hedgeAfter
	}
	n := len(d.durations)
	if n < 4 {
		return 0
	}
	s := append([]time.Duration(nil), d.durations...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	th := 3 * s[(n*95)/100]
	if th < defaultHedgeFloor {
		th = defaultHedgeFloor
	}
	return th
}

// next blocks until addr has something to do and claims it: a pending
// item, or — when the queue is empty and another host's flight is
// overdue — a hedge on that flight. Returns nil when the run is over or
// this host's generation has failed.
func (d *dispatcher) next(addr string, g *hostGen) *attempt {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.cancelled || d.fleetDown || d.overClosed || (g != nil && g.isDown()) {
			return nil
		}
		if len(d.pending) == 0 && len(d.inflight) == 0 {
			d.maybeOverLocked()
			return nil
		}
		for i, it := range d.pending {
			if !d.eligibleLocked(it, addr) {
				continue
			}
			d.pending = append(d.pending[:i], d.pending[i+1:]...)
			it.owner = addr
			it.started = time.Now()
			it.live = 1
			it.hedged = false
			d.inflight[it] = struct{}{}
			return &attempt{item: it, specs: it.specs, addr: addr}
		}
		// Nothing claimable; consider hedging an overdue flight.
		if th := d.hedgeThresholdLocked(); th > 0 {
			now := time.Now()
			soonest := time.Duration(-1)
			for it := range d.inflight {
				if it.done || it.hedged || it.owner == addr {
					continue
				}
				if _, bad := it.badHosts[addr]; bad {
					continue
				}
				wait := th - now.Sub(it.started)
				if wait <= 0 {
					it.hedged = true
					it.live++
					d.tk.hedge()
					if d.logf != nil {
						d.logf("net: host %s: hedging %d-job shard stuck on %s for >%v", addr, len(it.specs), it.owner, th)
					}
					return &attempt{item: it, specs: it.specs, addr: addr, hedge: true}
				}
				if soonest < 0 || wait < soonest {
					soonest = wait
				}
			}
			if soonest >= 0 {
				// Re-check when the earliest flight crosses the threshold.
				t := time.AfterFunc(soonest+time.Millisecond, d.cond.Broadcast)
				d.cond.Wait()
				t.Stop()
				continue
			}
		}
		d.cond.Wait()
	}
}

// settle retires an attempt whose stream completed: ok for a full result
// stream, !ok for a deterministic worker-side failure. Idempotent across
// hedged siblings — the first reporter wins.
func (d *dispatcher) settle(at *attempt, dur time.Duration, ok bool) {
	d.mu.Lock()
	it := at.item
	it.live--
	if !it.done {
		it.done = true
		delete(d.inflight, it)
		if ok {
			d.durations = append(d.durations, dur)
			if at.hedge {
				d.tk.hedgeWin()
			}
			d.tk.itemDone(at.addr)
		}
	}
	d.maybeOverLocked()
	d.mu.Unlock()
	d.cond.Broadcast()
}

// abandon drops an attempt during run cancellation: accounting only, the
// final sweep owns the job results.
func (d *dispatcher) abandon(at *attempt) {
	d.mu.Lock()
	at.item.live--
	d.mu.Unlock()
	d.cond.Broadcast()
}

// lose records a transport-lost attempt. The item is requeued only by its
// last live attempt: while a hedged sibling is still streaming, the loss
// is silent. Returns whether the caller should log a requeue, whether the
// retry budget is exhausted (the caller fails retry), and the attempt
// count for logging.
func (d *dispatcher) lose(at *attempt, retry []fleet.JobSpec, maxRetries int, err error) (requeue, exhausted bool, attempts int) {
	d.mu.Lock()
	defer func() {
		d.maybeOverLocked()
		d.mu.Unlock()
		d.cond.Broadcast()
	}()
	it := at.item
	it.live--
	if it.badHosts == nil {
		it.badHosts = make(map[string]struct{})
	}
	it.badHosts[at.addr] = struct{}{}
	if err != nil {
		d.lastErr = err
	}
	if it.done || it.live > 0 {
		return false, false, it.attempts
	}
	if len(retry) == 0 {
		// Every job was reported before the stream died.
		it.done = true
		delete(d.inflight, it)
		return false, false, it.attempts
	}
	it.attempts++
	it.specs = retry
	delete(d.inflight, it)
	if it.attempts > maxRetries {
		it.done = true
		return false, true, it.attempts
	}
	it.hedged = false
	it.owner = ""
	d.pending = append(d.pending, it)
	return true, false, it.attempts
}

// cancel aborts the run: blocked slots and sleeping supervisors wake and
// exit.
func (d *dispatcher) cancel() {
	d.mu.Lock()
	d.cancelled = true
	d.maybeOverLocked()
	d.mu.Unlock()
	d.cond.Broadcast()
}

// strandErr picks the error stranded jobs are failed with.
func (d *dispatcher) strandErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lastErr != nil {
		return d.lastErr
	}
	return errors.New("net: no live worker hosts")
}

// sleep waits for dur, or until the run is over or ctx cancelled.
func (d *dispatcher) sleep(ctx context.Context, dur time.Duration) {
	t := time.NewTimer(dur)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	case <-d.over:
	}
}

// runState is the merge side of a run: results, received tracking, and
// the per-(job, attempt) telemetry buffers that make retries and hedges
// invisible to the sink — each job's samples reach it exactly once, from
// whichever attempt reported first.
type runState struct {
	mu       sync.Mutex
	results  []fleet.JobResult
	received []bool
	jobs     []fleet.Job
	report   func(fleet.JobResult)
	sink     sink.Sink
	buf      map[int]map[*attempt][]device.Sample
}

// sample buffers one telemetry sample under the attempt that streamed it.
func (st *runState) sample(idx int, at *attempt, s device.Sample) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if idx < 0 || idx >= len(st.received) || st.received[idx] {
		return // late frame from a lost or losing attempt
	}
	m := st.buf[idx]
	if m == nil {
		m = make(map[*attempt][]device.Sample)
		st.buf[idx] = m
	}
	m[at] = append(m[at], s)
}

// result records a job result, flushing the reporting attempt's buffered
// telemetry first. Duplicate results — a lost worker's frame racing its
// replacement, or a hedged sibling finishing second — are dropped, along
// with the loser's buffered samples.
func (st *runState) result(rf *wire.ResultFrame, at *attempt) {
	st.mu.Lock()
	defer st.mu.Unlock()
	idx := rf.Index
	if idx < 0 || idx >= len(st.received) || st.received[idx] {
		return
	}
	if st.sink != nil {
		for _, s := range st.buf[idx][at] {
			st.sink.Accept(sink.JobID(idx), s)
		}
	}
	delete(st.buf, idx)
	st.results[idx] = rf.Decode()
	st.received[idx] = true
	st.report(st.results[idx])
}

// failSpecs marks every unreceived job in specs failed with err.
func (st *runState) failSpecs(specs []fleet.JobSpec, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := range specs {
		idx := specs[i].Index
		if st.received[idx] {
			continue
		}
		delete(st.buf, idx)
		st.results[idx] = errResult(idx, &st.jobs[idx], err)
		st.received[idx] = true
		st.report(st.results[idx])
	}
}

// pendingSpecs filters specs down to the jobs still unreceived — what a
// fresh or hedged attempt actually needs to dispatch.
func (st *runState) pendingSpecs(specs []fleet.JobSpec) []fleet.JobSpec {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]fleet.JobSpec, 0, len(specs))
	for i := range specs {
		if !st.received[specs[i].Index] {
			out = append(out, specs[i])
		}
	}
	return out
}

// unreported builds the retry spec set for a lost attempt: the jobs it
// never reported, with its half-streamed telemetry dropped. A live hedged
// sibling's buffers are untouched.
func (st *runState) unreported(at *attempt) []fleet.JobSpec {
	st.mu.Lock()
	defer st.mu.Unlock()
	var retry []fleet.JobSpec
	for i := range at.specs {
		idx := at.specs[i].Index
		if st.received[idx] {
			continue
		}
		if m := st.buf[idx]; m != nil {
			delete(m, at)
		}
		retry = append(retry, at.specs[i])
	}
	return retry
}

// errResult matches the local runner's failed-job shape.
func errResult(i int, job *fleet.Job, err error) fleet.JobResult {
	res := fleet.JobResult{Index: i, Name: job.Name, User: job.User, Err: err}
	if res.Name == "" && job.Workload != nil {
		res.Name = job.Workload.Name()
	}
	return res
}

// Run implements fleet.Runner. See the type comment for the contract.
func (r *Runner) Run(ctx context.Context, cfg fleet.Config, jobs []fleet.Job) []fleet.JobResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]fleet.JobResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	report := fleet.ResultReporter(cfg, len(jobs))
	st := &runState{
		results:  results,
		received: make([]bool, len(jobs)),
		jobs:     jobs,
		report:   report,
		sink:     cfg.Sink,
		buf:      make(map[int]map[*attempt][]device.Sample),
	}
	failAll := func(err error) []fleet.JobResult {
		for i := range jobs {
			if !st.received[i] {
				results[i] = errResult(i, &jobs[i], err)
				report(results[i])
			}
		}
		return results
	}
	if len(r.Hosts) == 0 {
		return failAll(errors.New("net: no worker hosts configured"))
	}
	pred, err := wire.EncodePredictor(r.Predictor)
	if err != nil {
		return failAll(err)
	}

	// Seed and index every spec'd job now — determinism must not depend on
	// which host runs it, how many attempts it takes, or whether it ends
	// up on the local fallback. Spec-less jobs cannot cross the wire and
	// fail immediately.
	specs := make([]fleet.JobSpec, 0, len(jobs))
	seedOf := make(map[int]int64, len(jobs))
	for i := range jobs {
		if jobs[i].Spec == nil {
			st.results[i] = errResult(i, &jobs[i], errNoSpec)
			st.received[i] = true
			report(st.results[i])
			continue
		}
		spec := *jobs[i].Spec
		spec.Index = i
		spec.Seed = fleet.EffectiveSeed(cfg.Seed, i, &jobs[i])
		seedOf[i] = spec.Seed
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return results
	}

	// Partition into work items: a few per host so the queue can rebalance
	// around slow or recovering workers.
	size := r.ShardSize
	if size <= 0 {
		size = (len(specs) + 4*len(r.Hosts) - 1) / (4 * len(r.Hosts))
	}
	var items []*itemState
	for start := 0; start < len(specs); start += size {
		end := start + size
		if end > len(specs) {
			end = len(specs)
		}
		items = append(items, &itemState{specs: specs[start:end]})
	}
	tracker := newStatsTracker(r.Hosts)
	r.statsCell().Store(tracker)
	d := newDispatcher(items, r, tracker)

	// Cancellation: poke every open connection's read deadline so blocked
	// slots wake immediately, observe ctx, send a best-effort cancel frame
	// and tear down.
	var connMu sync.Mutex
	conns := make(map[stdnet.Conn]struct{})
	trackConn := func(c stdnet.Conn, add bool) {
		connMu.Lock()
		if add {
			conns[c] = struct{}{}
		} else {
			delete(conns, c)
		}
		connMu.Unlock()
	}
	stop := context.AfterFunc(ctx, func() {
		d.cancel()
		connMu.Lock()
		for c := range conns {
			c.SetReadDeadline(time.Now())
		}
		connMu.Unlock()
	})
	defer stop()
	// When the run ends while a stream is still in flight — a hedge's
	// losing sibling, or a worker replaying jobs another host already
	// reported — poke its read deadline so the slot unblocks now instead
	// of waiting out the stream.
	go func() {
		<-d.over
		connMu.Lock()
		for c := range conns {
			c.SetReadDeadline(time.Now())
		}
		connMu.Unlock()
	}()

	req := baseRequest{pred: pred, workers: cfg.Workers, wantSamples: cfg.Sink != nil, batched: r.Batched, event: int(cfg.Event)}
	var wg sync.WaitGroup
	for _, addr := range r.Hosts {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			r.superviseHost(ctx, addr, d, st, req, trackConn, tracker, cfg.Seed)
		}(addr)
	}
	wg.Wait()

	if d.isFleetDown() && r.FallbackLocal && ctx.Err() == nil {
		n := r.runFallback(ctx, cfg, st, seedOf)
		tracker.fallback(n)
		r.logf("net: fleet down past %v; ran %d remaining jobs on the local fallback", r.allDeadDeadline(), n)
	}

	// Whatever is still unreceived after every supervisor exited can never
	// run: the fleet went down (without fallback) or the run was
	// cancelled.
	strandErr := d.strandErr(ctx)
	st.mu.Lock()
	for i := range jobs {
		if !st.received[i] {
			st.results[i] = errResult(i, &jobs[i], strandErr)
			st.received[i] = true
			st.report(st.results[i])
		}
	}
	st.mu.Unlock()
	r.logf("net: run stats: %s", tracker.snapshot())
	return results
}

// runFallback executes the still-unreceived jobs on the in-process
// LocalRunner with their already-resolved seeds pinned, routing telemetry
// and results through the same merge state, and returns how many jobs it
// ran. Graceful degradation: a fleet-wide outage costs locality, not the
// run.
func (r *Runner) runFallback(ctx context.Context, cfg fleet.Config, st *runState, seedOf map[int]int64) int {
	var subJobs []fleet.Job
	var subIdx []int
	st.mu.Lock()
	for i := range st.jobs {
		if st.received[i] {
			continue
		}
		j := st.jobs[i]
		j.Seed = seedOf[i] // resolved pre-dispatch; pins byte-identity
		subJobs = append(subJobs, j)
		subIdx = append(subIdx, i)
	}
	st.mu.Unlock()
	if len(subJobs) == 0 {
		return 0
	}
	sub := fleet.Config{Workers: cfg.Workers, Seed: cfg.Seed}
	if st.sink != nil {
		sub.Sink = sink.Func(func(id sink.JobID, s device.Sample) {
			st.sink.Accept(sink.JobID(subIdx[int(id)]), s)
		})
	}
	res := fleet.LocalRunner{}.Run(ctx, sub, subJobs)
	st.mu.Lock()
	for k := range res {
		idx := subIdx[k]
		res[k].Index = idx
		st.results[idx] = res[k]
		st.received[idx] = true
		st.report(res[k])
	}
	st.mu.Unlock()
	return len(subJobs)
}

// baseRequest carries the per-run constants every shard request shares.
type baseRequest struct {
	pred        []byte
	workers     int
	wantSamples bool
	batched     bool
	event       int
}

// hostGen is one connected generation of a host: the slots it spawned
// share a failure record, and the first transport loss takes the whole
// generation down — a killed daemon drops every connection at once, and
// the supervisor owns redialing.
type hostGen struct {
	addr string
	d    *dispatcher
	mu   sync.Mutex
	down bool
	err  error
}

// fail records the generation's first failure and wakes blocked slots.
func (g *hostGen) fail(err error) bool {
	g.mu.Lock()
	first := !g.down
	if first {
		g.down = true
		g.err = err
	}
	g.mu.Unlock()
	if first {
		g.d.cond.Broadcast()
	}
	return first
}

func (g *hostGen) isDown() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.down
}

// superviseHost owns one worker address for the whole run: dial, run a
// generation of slots, and on failure back off exponentially (seeded
// jitter) and redial — opening the circuit breaker after consecutive
// failures and probing half-open after a cooldown. The host rejoins the
// dispatch pool the moment a generation connects; it is never retired
// while the run needs it.
func (r *Runner) superviseHost(ctx context.Context, addr string, d *dispatcher, st *runState, req baseRequest, trackConn func(stdnet.Conn, bool), tk *statsTracker, baseSeed int64) {
	base, maxB := r.backoffBase(), r.backoffMax()
	kOpen := r.breakerThreshold()
	coolBase := r.breakerCooldown()
	jr := rand.New(rand.NewSource(baseSeed ^ hashAddr(addr)))
	backoff, cooldown := base, coolBase
	fails := 0
	breaker := BreakerClosed
	note := func(err error) {
		tk.update(addr, func(h *HostStats) {
			h.Breaker = breaker
			h.ConsecutiveFails = fails
			if err != nil {
				h.LastErr = err.Error()
			}
		})
	}
	for gen := 0; ; gen++ {
		if d.runOver() || ctx.Err() != nil {
			return
		}
		if breaker == BreakerOpen {
			note(nil)
			r.logf("net: host %s: breaker open after %d consecutive failures; cooling down %v", addr, fails, cooldown)
			d.sleep(ctx, cooldown+jitter(jr, cooldown))
			if cooldown *= 2; cooldown > 4*maxB {
				cooldown = 4 * maxB
			}
			breaker = BreakerHalfOpen
			note(nil)
			continue
		}
		tk.update(addr, func(h *HostStats) { h.ConnectAttempts++ })
		conn, capacity, err := r.dial(ctx, addr)
		if err != nil {
			fails++
			err = fmt.Errorf("net: host %s: %w", addr, err)
			d.noteErr(err)
			if fails >= kOpen {
				breaker = BreakerOpen
				note(err)
				continue
			}
			note(err)
			r.logf("%v: redialing in ~%v (attempt %d)", err, backoff, fails)
			d.sleep(ctx, backoff+jitter(jr, backoff))
			if backoff *= 2; backoff > maxB {
				backoff = maxB
			}
			continue
		}
		halfOpen := breaker == BreakerHalfOpen
		tk.update(addr, func(h *HostStats) {
			h.Connected = true
			h.Capacity = capacity
			if gen > 0 {
				h.Redials++
			}
		})
		d.setConnected(addr, true)
		if halfOpen {
			r.logf("net: host %s: reconnected (half-open probe), capacity %d", addr, capacity)
		} else {
			r.logf("net: host %s: connected, capacity %d", addr, capacity)
		}
		genOK := r.runGeneration(ctx, addr, conn, capacity, halfOpen, d, st, req, trackConn, tk)
		d.setConnected(addr, false)
		tk.update(addr, func(h *HostStats) {
			h.Connected = false
			h.SlotsConnected = 0
		})
		if genOK {
			fails, backoff, cooldown = 0, base, coolBase
			breaker = BreakerClosed
		} else {
			fails++
			if fails >= kOpen {
				breaker = BreakerOpen
			}
		}
		note(nil)
		if d.runOver() {
			return
		}
		if breaker != BreakerOpen {
			d.sleep(ctx, backoff+jitter(jr, backoff))
			if backoff *= 2; backoff > maxB {
				backoff = maxB
			}
		}
	}
}

// runGeneration runs one connected generation: the probe connection
// serves as the first slot, and the rest of the daemon's advertised
// capacity is dialed alongside — with per-slot retry instead of silently
// running short. A half-open generation starts with just the probe slot
// and expands to full capacity on its first completed item (which also
// closes the breaker). Returns whether the generation completed at least
// one item.
func (r *Runner) runGeneration(ctx context.Context, addr string, conn0 stdnet.Conn, capacity int, halfOpen bool, d *dispatcher, st *runState, req baseRequest, trackConn func(stdnet.Conn, bool), tk *statsTracker) bool {
	g := &hostGen{addr: addr, d: d}
	var wg sync.WaitGroup
	var okMu sync.Mutex
	okItems := 0
	var expandOnce sync.Once
	var dialExtras func(n int)

	runSlotConn := func(c stdnet.Conn, onSuccess func()) {
		trackConn(c, true)
		tk.update(addr, func(h *HostStats) {
			h.SlotsConnected++
			h.SlotShortfall = h.Capacity - h.SlotsConnected
		})
		defer func() {
			tk.update(addr, func(h *HostStats) { h.SlotsConnected-- })
			trackConn(c, false)
			c.Close()
		}()
		r.runSlot(ctx, g, c, d, st, req, onSuccess)
	}
	onSuccess := func() {
		okMu.Lock()
		okItems++
		okMu.Unlock()
		if halfOpen {
			expandOnce.Do(func() {
				tk.update(addr, func(h *HostStats) { h.Breaker = BreakerClosed })
				if capacity > 1 {
					r.logf("net: host %s: probe shard completed; breaker closed, expanding to capacity %d", addr, capacity)
					dialExtras(capacity - 1)
				} else {
					r.logf("net: host %s: probe shard completed; breaker closed", addr)
				}
			})
		}
	}
	// dialExtras brings up n additional slots, each retrying its dial
	// under backoff instead of abandoning advertised capacity (the old
	// behavior silently ran the host short).
	dialExtras = func(n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				backoff := r.backoffBase()
				maxB := r.backoffMax()
				for {
					if g.isDown() || d.runOver() || ctx.Err() != nil {
						return
					}
					c, _, err := r.dial(ctx, addr)
					if err != nil {
						tk.update(addr, func(h *HostStats) {
							h.SlotShortfall = h.Capacity - h.SlotsConnected
							h.LastErr = err.Error()
						})
						r.logf("net: host %s: slot %d dial failed (%v); retrying in %v", addr, slot, err, backoff)
						d.sleep(ctx, backoff)
						if backoff *= 2; backoff > maxB {
							backoff = maxB
						}
						continue
					}
					runSlotConn(c, onSuccess)
					return
				}
			}(i)
		}
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		runSlotConn(conn0, onSuccess)
	}()
	if !halfOpen && capacity > 1 {
		dialExtras(capacity - 1)
	}
	wg.Wait()
	okMu.Lock()
	defer okMu.Unlock()
	return okItems > 0
}

// dial connects to a worker daemon and completes the hello handshake,
// returning the connection and the daemon's advertised capacity.
func (r *Runner) dial(ctx context.Context, addr string) (stdnet.Conn, int, error) {
	timeout := r.DialTimeout
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	dialer := &stdnet.Dialer{Timeout: timeout}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, 0, err
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	f, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("hello: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	if f.Type != wire.TypeHello {
		conn.Close()
		return nil, 0, fmt.Errorf("hello: expected a %s frame, got %s", wire.TypeHello, f.Type)
	}
	if f.Hello.Proto != wire.Version {
		conn.Close()
		return nil, 0, fmt.Errorf("hello: protocol version %d, want %d", f.Hello.Proto, wire.Version)
	}
	return conn, f.Hello.Capacity, nil
}

// runSlot is one in-flight-shard lane on one connection: claim an
// attempt, pass admission (primaries only — hedges re-dispatch admitted
// work), ship it, merge the stream, repeat. A transport failure takes the
// generation down, requeues the attempt's unreported jobs (unless a
// hedged sibling still owns them) and hands the connection back;
// worker-side error frames are deterministic failures and are not
// retried.
func (r *Runner) runSlot(ctx context.Context, g *hostGen, conn stdnet.Conn, d *dispatcher, st *runState, req baseRequest, onSuccess func()) {
	maxRetries := r.maxRetries()
	hbTimeout := r.hbTimeout()
	writeTO := writeTimeoutFor(hbTimeout)
	for {
		if g.isDown() || ctx.Err() != nil {
			return
		}
		at := d.next(g.addr, g)
		if at == nil {
			return
		}
		specs := st.pendingSpecs(at.specs)
		if len(specs) == 0 {
			d.settle(at, 0, true)
			continue
		}
		if r.Admission != nil && !at.hedge {
			if err := r.Admission.Wait(ctx, len(specs)); err != nil {
				st.failSpecs(specs, err)
				d.settle(at, 0, false)
				return
			}
		}
		start := time.Now()
		err := r.streamItem(conn, at, specs, st, req, hbTimeout)
		if err == nil {
			d.settle(at, time.Since(start), true)
			onSuccess()
			continue
		}
		var werr workerError
		if errors.As(err, &werr) {
			// The worker rejected the request deterministically (bad
			// predictor, bad frame): retrying elsewhere reproduces the same
			// failure. The connection stays usable.
			st.failSpecs(specs, err)
			d.settle(at, 0, false)
			continue
		}
		// Transport loss. Attribute the right cause, take the generation
		// down so the supervisor redials, and give the unreported jobs to
		// another attempt — unless the run is cancelled or the item is out
		// of attempts.
		if ctx.Err() != nil {
			// Best-effort cancel so a surviving worker stops burning cores;
			// the deadline poke already unblocked our read.
			conn.SetWriteDeadline(time.Now().Add(writeTO))
			wire.WriteFrame(conn, &wire.Frame{V: wire.Version, Type: wire.TypeCancel})
			d.abandon(at)
			return
		}
		err = fmt.Errorf("net: host %s: %w", g.addr, err)
		if g.fail(err) {
			r.logf("%v: connection lost; host backing off for redial", err)
		}
		retry := st.unreported(at)
		requeue, exhausted, attempts := d.lose(at, retry, maxRetries, err)
		switch {
		case exhausted:
			st.failSpecs(retry, fmt.Errorf("%w (retries exhausted)", err))
		case requeue:
			r.logf("net: host %s: requeueing %d unreported jobs (attempt %d)", g.addr, len(retry), attempts)
		}
		return
	}
}

// workerError wraps a worker-side error frame: deterministic, not
// retryable.
type workerError struct{ msg string }

func (e workerError) Error() string { return e.msg }

// streamItem ships one attempt's specs as a shard request and merges the
// frames streaming back until the worker's done frame. Heartbeats (and
// any other traffic) refresh the read deadline; hbTimeout of silence is a
// transport failure.
func (r *Runner) streamItem(conn stdnet.Conn, at *attempt, specs []fleet.JobSpec, st *runState, req baseRequest, hbTimeout time.Duration) error {
	sreq := &wire.ShardRequest{
		Workers:     req.workers,
		Predictor:   req.pred,
		WantSamples: req.wantSamples,
		Batched:     req.batched,
		Event:       req.event,
		Jobs:        specs,
	}
	conn.SetWriteDeadline(time.Now().Add(hbTimeout))
	if err := wire.WriteFrame(conn, &wire.Frame{V: wire.Version, Type: wire.TypeShard, Shard: sreq}); err != nil {
		return fmt.Errorf("send shard: %w", err)
	}
	conn.SetWriteDeadline(time.Time{})
	for {
		conn.SetReadDeadline(time.Now().Add(hbTimeout))
		f, err := wire.ReadFrame(conn)
		if err != nil {
			var nerr stdnet.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				return fmt.Errorf("no heartbeat for %v: %w", hbTimeout, err)
			}
			return err
		}
		switch f.Type {
		case wire.TypeHeartbeat:
			// Liveness pulse only; the deadline reset above is the point.
		case wire.TypeSample:
			st.sample(f.Sample.Job, at, f.Sample.Sample)
		case wire.TypeResult:
			st.result(f.Result, at)
		case wire.TypeDone:
			conn.SetReadDeadline(time.Time{})
			return nil
		case wire.TypeError:
			conn.SetReadDeadline(time.Time{})
			return workerError{msg: fmt.Sprintf("worker: %s", f.Err)}
		default:
			return fmt.Errorf("unexpected %s frame mid-shard", f.Type)
		}
	}
}

// Breaker states as surfaced in HostStats.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// HostStats is one host's supervisor state snapshot.
type HostStats struct {
	Addr             string `json:"addr"`
	Connected        bool   `json:"connected"`
	Breaker          string `json:"breaker"`
	ConnectAttempts  int    `json:"connect_attempts"`
	Redials          int    `json:"redials"`
	ConsecutiveFails int    `json:"consecutive_fails"`
	Capacity         int    `json:"capacity"`
	SlotsConnected   int    `json:"slots_connected"`
	SlotShortfall    int    `json:"slot_shortfall"`
	ItemsCompleted   int    `json:"items_completed"`
	LastErr          string `json:"last_err,omitempty"`
}

// RunnerStats is a point-in-time snapshot of a run's recovery machinery:
// per-host supervisor state plus fleet-level hedging and fallback
// counters.
type RunnerStats struct {
	Hosts        []HostStats `json:"hosts"`
	Hedges       int         `json:"hedges"`
	HedgeWins    int         `json:"hedge_wins"`
	FallbackUsed bool        `json:"fallback_used,omitempty"`
	FallbackJobs int         `json:"fallback_jobs,omitempty"`
}

// String renders the snapshot as one log-friendly line.
func (s RunnerStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hedges=%d wins=%d", s.Hedges, s.HedgeWins)
	if s.FallbackUsed {
		fmt.Fprintf(&b, " fallback=%d", s.FallbackJobs)
	}
	for _, h := range s.Hosts {
		fmt.Fprintf(&b, " | %s: breaker=%s connected=%v dials=%d redials=%d slots=%d/%d items=%d",
			h.Addr, h.Breaker, h.Connected, h.ConnectAttempts, h.Redials, h.SlotsConnected, h.Capacity, h.ItemsCompleted)
		if h.SlotShortfall > 0 {
			fmt.Fprintf(&b, " shortfall=%d", h.SlotShortfall)
		}
		if h.LastErr != "" {
			fmt.Fprintf(&b, " lastErr=%q", h.LastErr)
		}
	}
	return b.String()
}

// statsTracker is the mutable, locked store behind RunnerStats.
type statsTracker struct {
	mu           sync.Mutex
	order        []string
	hosts        map[string]*HostStats
	hedges       int
	hedgeWins    int
	fallbackUsed bool
	fallbackJobs int
}

func newStatsTracker(hosts []string) *statsTracker {
	t := &statsTracker{order: hosts, hosts: make(map[string]*HostStats, len(hosts))}
	for _, a := range hosts {
		t.hosts[a] = &HostStats{Addr: a, Breaker: BreakerClosed}
	}
	return t
}

func (t *statsTracker) update(addr string, fn func(*HostStats)) {
	t.mu.Lock()
	if h, ok := t.hosts[addr]; ok {
		fn(h)
	}
	t.mu.Unlock()
}

func (t *statsTracker) hedge() {
	t.mu.Lock()
	t.hedges++
	t.mu.Unlock()
}

func (t *statsTracker) hedgeWin() {
	t.mu.Lock()
	t.hedgeWins++
	t.mu.Unlock()
}

func (t *statsTracker) itemDone(addr string) {
	t.mu.Lock()
	if h, ok := t.hosts[addr]; ok {
		h.ItemsCompleted++
	}
	t.mu.Unlock()
}

func (t *statsTracker) fallback(jobs int) {
	t.mu.Lock()
	t.fallbackUsed = true
	t.fallbackJobs = jobs
	t.mu.Unlock()
}

func (t *statsTracker) snapshot() RunnerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := RunnerStats{
		Hosts:        make([]HostStats, 0, len(t.order)),
		Hedges:       t.hedges,
		HedgeWins:    t.hedgeWins,
		FallbackUsed: t.fallbackUsed,
		FallbackJobs: t.fallbackJobs,
	}
	for _, a := range t.order {
		if h, ok := t.hosts[a]; ok {
			s.Hosts = append(s.Hosts, *h)
		}
	}
	return s
}

// Stats snapshots the most recent (possibly in-progress) Run's recovery
// state. Before any Run it returns the zero RunnerStats.
func (r *Runner) Stats() RunnerStats {
	if t, ok := r.statsCell().Load().(*statsTracker); ok && t != nil {
		return t.snapshot()
	}
	return RunnerStats{}
}

// statsCell resolves where this runner's trackers live: its own cell, or
// the original's when PublishStatsTo redirected a copy.
func (r *Runner) statsCell() *atomic.Value {
	if r.statsDst != nil {
		return r.statsDst
	}
	return &r.stats
}

// PublishStatsTo makes the receiver's future Runs publish their recovery
// tracker into orig's stats cell (and Stats read from it), so a caller
// holding orig still observes runs executed on a modified copy.
// RunScenario uses this when it must attach a predictor or the batched
// flag to a caller-supplied networked runner; JobServer's per-job clones
// deliberately do NOT share, keeping one tracker per job.
func (r *Runner) PublishStatsTo(orig *Runner) { r.statsDst = orig.statsCell() }
