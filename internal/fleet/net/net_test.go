package net_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	stdnet "net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/fleet"
	fleetnet "repro/internal/fleet/net"
	"repro/internal/fleet/wire"
	"repro/internal/sink"
	"repro/internal/workload"
)

// specJobs builds n spec-carrying benchmark jobs (no predictor needed).
// Seeds are left unpinned so the tests exercise coordinator-side seed
// resolution against the local runner's.
func specJobs(n int, traceFree bool) []fleet.Job {
	jobs := make([]fleet.Job, n)
	for i := range jobs {
		spec := &fleet.JobSpec{
			Name:      fmt.Sprintf("job-%d", i),
			Workload:  fleet.WorkloadRef{Name: "skype", Seed: uint64(i)},
			DurSec:    30,
			TraceFree: traceFree,
		}
		jobs[i] = fleet.Job{
			Name:      spec.Name,
			Workload:  workload.ByName(spec.Workload.Name, spec.Workload.Seed),
			DurSec:    spec.DurSec,
			TraceFree: traceFree,
			Spec:      spec,
		}
	}
	return jobs
}

// tally is the order-insensitive telemetry fingerprint shared with the
// shard tests: per-job sample counts and skin-value sums (per-job delivery
// is FIFO on every path, so float sums are bit-comparable).
type tally struct {
	mu     sync.Mutex
	counts map[int]int
	sums   map[int]float64
}

func newTally() *tally { return &tally{counts: map[int]int{}, sums: map[int]float64{}} }

func (t *tally) sink() sink.Sink {
	return sink.Func(func(id sink.JobID, s device.Sample) {
		t.mu.Lock()
		t.counts[int(id)]++
		t.sums[int(id)] += s.SkinC
		t.mu.Unlock()
	})
}

// startServer runs an in-process worker daemon on a loopback port and
// returns its address. The daemon is shut down with the test.
func startServer(t *testing.T, s *fleetnet.Server) string {
	t.Helper()
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(context.Background(), ln) }()
	t.Cleanup(func() {
		s.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("server exited: %v", err)
		}
	})
	return ln.Addr().String()
}

// TestNetRunnerMatchesLocal is the distributed determinism contract: the
// same batch through two TCP worker daemons — batched or not — must be
// byte-identical to the in-process pool: results, seeds, telemetry.
func TestNetRunnerMatchesLocal(t *testing.T) {
	const n = 8
	cfg := fleet.Config{Workers: 2, Seed: 42}

	run := func(r fleet.Runner) ([]fleet.JobResult, *tally) {
		tl := newTally()
		c := cfg
		c.Sink = tl.sink()
		return r.Run(context.Background(), c, specJobs(n, true)), tl
	}

	ref, refTally := run(fleet.LocalRunner{})
	if err := fleet.FirstError(ref); err != nil {
		t.Fatal(err)
	}
	for _, batched := range []bool{false, true} {
		addr1 := startServer(t, &fleetnet.Server{Capacity: 2})
		addr2 := startServer(t, &fleetnet.Server{Capacity: 2})
		nr := fleetnet.New([]string{addr1, addr2})
		nr.Batched = batched
		nr.ShardSize = 2
		got, gotTally := run(nr)
		if err := fleet.FirstError(got); err != nil {
			t.Fatalf("batched=%v: %v", batched, err)
		}
		for i := range ref {
			a, b := ref[i], got[i]
			if b.Index != a.Index || b.Name != a.Name || b.SeedUsed != a.SeedUsed {
				t.Fatalf("batched=%v job %d: metadata diverged: %+v vs %+v", batched, i, b, a)
			}
			if b.Result.EnergyJ != a.Result.EnergyJ || b.Result.MaxSkinC != a.Result.MaxSkinC ||
				b.Result.AvgFreqMHz != a.Result.AvgFreqMHz || b.Result.WorkDone != a.Result.WorkDone {
				t.Fatalf("batched=%v job %d: aggregates diverged", batched, i)
			}
		}
		for i := 0; i < n; i++ {
			if gotTally.counts[i] != refTally.counts[i] || gotTally.sums[i] != refTally.sums[i] {
				t.Fatalf("batched=%v job %d: telemetry diverged: %d/%v samples vs local %d/%v",
					batched, i, gotTally.counts[i], gotTally.sums[i], refTally.counts[i], refTally.sums[i])
			}
		}
	}
}

// killingProxy fronts a real worker daemon and murders the connection
// after forwarding a fixed number of result frames — the observable
// signature of a worker killed mid-shard: some jobs reported, the stream
// cut, no done frame.
type killingProxy struct {
	ln           stdnet.Listener
	backend      string
	resultsUntil int
	once         sync.Once // only the first connection is murdered
	wg           sync.WaitGroup
}

func startKillingProxy(t *testing.T, backend string, resultsUntil int) *killingProxy {
	t.Helper()
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killingProxy{ln: ln, backend: backend, resultsUntil: resultsUntil}
	p.wg.Add(1)
	go p.serve(t)
	t.Cleanup(func() {
		ln.Close()
		p.wg.Wait()
	})
	return p
}

func (p *killingProxy) addr() string { return p.ln.Addr().String() }

func (p *killingProxy) serve(t *testing.T) {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		kill := false
		p.once.Do(func() { kill = true })
		p.wg.Add(1)
		go func(client stdnet.Conn, kill bool) {
			defer p.wg.Done()
			defer client.Close()
			server, err := stdnet.Dial("tcp", p.backend)
			if err != nil {
				return
			}
			defer server.Close()
			go func() {
				// Requests flow through untouched; a vanished client ends
				// the whole relay (closing server unblocks the other copy).
				io.Copy(server, client)
				server.Close()
			}()
			if !kill {
				io.Copy(client, server)
				return
			}
			// Forward frame-by-frame until enough results have passed, then
			// cut both sides mid-stream.
			results := 0
			for {
				f, err := wire.ReadFrame(server)
				if err != nil {
					return
				}
				if err := wire.WriteFrame(client, f); err != nil {
					return
				}
				if f.Type == wire.TypeResult {
					results++
					if results >= p.resultsUntil {
						return // defers close both conns: the "kill"
					}
				}
			}
		}(client, kill)
	}
}

// startSlowProxy fronts a backend with a fixed pre-handshake delay: the
// coordinator's hello read stalls that long before the relay starts. It
// keeps a host out of the early dispatch race so a test can steer which
// host claims the first work item.
func startSlowProxy(t *testing.T, backend string, delay time.Duration) string {
	t.Helper()
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			client, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(client stdnet.Conn) {
				defer wg.Done()
				defer client.Close()
				time.Sleep(delay)
				server, err := stdnet.Dial("tcp", backend)
				if err != nil {
					return
				}
				defer server.Close()
				go func() {
					io.Copy(server, client)
					server.Close()
				}()
				io.Copy(client, server)
			}(client)
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		wg.Wait()
	})
	return ln.Addr().String()
}

// TestNetRunnerWorkerLossRetry: a worker killed mid-shard keeps the jobs
// it reported, and only the unreported remainder is retried on the
// surviving host — with results and telemetry byte-identical to local,
// including the partially-streamed telemetry of retried jobs appearing
// exactly once.
func TestNetRunnerWorkerLossRetry(t *testing.T) {
	const n = 8
	cfg := fleet.Config{Workers: 2, Seed: 42}

	refTally := newTally()
	refCfg := cfg
	refCfg.Sink = refTally.sink()
	ref := fleet.LocalRunner{}.Run(context.Background(), refCfg, specJobs(n, true))
	if err := fleet.FirstError(ref); err != nil {
		t.Fatal(err)
	}

	// Host A is a real daemon behind a proxy that cuts the first connection
	// after one result frame; host B is healthy but held out of the early
	// dispatch race by a slow-start proxy, so A is guaranteed to claim the
	// first work item before dying. One shard of 4 jobs dies with 1 job
	// reported; its 3 unreported jobs must resurface on B.
	backend := startServer(t, &fleetnet.Server{Capacity: 1})
	proxy := startKillingProxy(t, backend, 1)
	healthyBackend := startServer(t, &fleetnet.Server{Capacity: 1})
	healthy := startSlowProxy(t, healthyBackend, 600*time.Millisecond)

	nr := fleetnet.New([]string{proxy.addr(), healthy})
	nr.ShardSize = 4
	nr.HeartbeatTimeout = 5 * time.Second
	var logMu sync.Mutex
	var logs []string
	nr.Logf = func(format string, args ...any) {
		logMu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		logMu.Unlock()
	}
	gotTally := newTally()
	gotCfg := cfg
	gotCfg.Sink = gotTally.sink()
	got := nr.Run(context.Background(), gotCfg, specJobs(n, true))
	if err := fleet.FirstError(got); err != nil {
		t.Fatalf("run with worker loss should fully recover: %v", err)
	}
	for i := range ref {
		a, b := ref[i], got[i]
		if b.SeedUsed != a.SeedUsed || b.Result.EnergyJ != a.Result.EnergyJ ||
			b.Result.MaxSkinC != a.Result.MaxSkinC || b.Result.WorkDone != a.Result.WorkDone {
			t.Fatalf("job %d diverged after retry", i)
		}
	}
	for i := 0; i < n; i++ {
		if gotTally.counts[i] != refTally.counts[i] || gotTally.sums[i] != refTally.sums[i] {
			t.Fatalf("job %d telemetry diverged after retry: %d/%v vs local %d/%v",
				i, gotTally.counts[i], gotTally.sums[i], refTally.counts[i], refTally.sums[i])
		}
	}
	logMu.Lock()
	defer logMu.Unlock()
	joined := strings.Join(logs, "\n")
	if !strings.Contains(joined, "connection lost") || !strings.Contains(joined, "requeueing") {
		t.Fatalf("expected connection-loss and requeue log lines, got:\n%s", joined)
	}
}

// TestNetRunnerHeartbeatDeadline: a worker that accepts a shard and then
// goes silent — no samples, no results, no heartbeats — is declared dead
// at the deadline and its jobs complete on the healthy host.
func TestNetRunnerHeartbeatDeadline(t *testing.T) {
	// The silent worker: speaks a correct hello, swallows the request, says
	// nothing ever again.
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	silentConns := make(chan stdnet.Conn, 16)
	defer func() {
		close(silentConns)
		for c := range silentConns {
			c.Close()
		}
	}()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			silentConns <- conn
			wire.WriteFrame(conn, &wire.Frame{V: wire.Version, Type: wire.TypeHello,
				Hello: &wire.HelloFrame{Proto: wire.Version, Capacity: 1}})
			// Read and ignore everything; never answer.
			go io.Copy(io.Discard, conn)
		}
	}()

	// The healthy host starts slow so the silent one is guaranteed to claim
	// a work item and wedge it.
	healthyBackend := startServer(t, &fleetnet.Server{Capacity: 2})
	healthy := startSlowProxy(t, healthyBackend, 600*time.Millisecond)
	nr := fleetnet.New([]string{ln.Addr().String(), healthy})
	nr.ShardSize = 2
	nr.HeartbeatTimeout = 300 * time.Millisecond
	// The silent host now recovers instead of dying; give the wedged items
	// retry headroom so they outlast its pre-breaker reclaim window.
	nr.MaxRetries = 6
	var logMu sync.Mutex
	var joined strings.Builder
	nr.Logf = func(format string, args ...any) {
		logMu.Lock()
		fmt.Fprintf(&joined, format+"\n", args...)
		logMu.Unlock()
	}
	results := nr.Run(context.Background(), fleet.Config{Workers: 2, Seed: 7}, specJobs(6, true))
	if err := fleet.FirstError(results); err != nil {
		t.Fatalf("jobs should have recovered on the healthy host: %v", err)
	}
	logMu.Lock()
	defer logMu.Unlock()
	if !strings.Contains(joined.String(), "no heartbeat for") {
		t.Fatalf("expected a heartbeat-deadline death, got:\n%s", joined.String())
	}
}

// TestServerMalformedFrames: protocol garbage over a real TCP connection —
// a bogus length prefix, a truncated frame, a non-shard frame — earns an
// error frame (where a reply is possible) and a closed connection, and the
// daemon keeps serving honest clients afterwards.
func TestServerMalformedFrames(t *testing.T) {
	addr := startServer(t, &fleetnet.Server{Capacity: 1})

	dial := func() stdnet.Conn {
		t.Helper()
		conn, err := stdnet.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		f, err := wire.ReadFrame(conn)
		if err != nil || f.Type != wire.TypeHello {
			t.Fatalf("hello: %v (%+v)", err, f)
		}
		return conn
	}

	// Garbage JSON inside a well-formed length prefix.
	conn := dial()
	payload := []byte("{\"v\":1,\"type\":")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	conn.Write(hdr[:])
	conn.Write(payload)
	f, err := wire.ReadFrame(conn)
	if err != nil || f.Type != wire.TypeError {
		t.Fatalf("garbage frame: want an error frame, got %+v err=%v", f, err)
	}
	if _, err := wire.ReadFrame(conn); !errors.Is(err, io.EOF) {
		t.Fatalf("connection should be closed after a protocol violation, got %v", err)
	}
	conn.Close()

	// An absurd length prefix must be rejected without allocating it.
	conn = dial()
	binary.BigEndian.PutUint32(hdr[:], 1<<31)
	conn.Write(hdr[:])
	if f, err := wire.ReadFrame(conn); err != nil || f.Type != wire.TypeError {
		t.Fatalf("oversized frame: want an error frame, got %+v err=%v", f, err)
	}
	conn.Close()

	// A truncated frame (length promised, bytes withheld, connection cut)
	// must not wedge the daemon.
	conn = dial()
	binary.BigEndian.PutUint32(hdr[:], 4096)
	conn.Write(hdr[:])
	conn.Write([]byte("{\"v\":1"))
	conn.Close()

	// A structurally valid frame of the wrong type mid-handshake.
	conn = dial()
	if err := wire.WriteFrame(conn, &wire.Frame{V: wire.Version, Type: wire.TypeDone}); err != nil {
		t.Fatal(err)
	}
	if f, err := wire.ReadFrame(conn); err != nil || f.Type != wire.TypeError {
		t.Fatalf("wrong-type frame: want an error frame, got %+v err=%v", f, err)
	}
	conn.Close()

	// The daemon survived all of it: an honest run still works.
	nr := fleetnet.New([]string{addr})
	results := nr.Run(context.Background(), fleet.Config{Workers: 1, Seed: 1}, specJobs(2, true))
	if err := fleet.FirstError(results); err != nil {
		t.Fatalf("daemon no longer serves honest clients: %v", err)
	}
}

// TestNetRunnerCancellation: cancelling the coordinator's context tears
// down every connection promptly and marks unfinished jobs with the
// context error, matching local-runner semantics.
func TestNetRunnerCancellation(t *testing.T) {
	longJobs := func(n int) []fleet.Job {
		jobs := make([]fleet.Job, n)
		for i := range jobs {
			spec := &fleet.JobSpec{
				Workload:  fleet.WorkloadRef{Name: "skype", Seed: 1},
				DurSec:    1800,
				TraceFree: true,
			}
			jobs[i] = fleet.Job{
				Workload:  workload.ByName(spec.Workload.Name, spec.Workload.Seed),
				DurSec:    spec.DurSec,
				TraceFree: true,
				Spec:      spec,
			}
		}
		return jobs
	}

	addr := startServer(t, &fleetnet.Server{Capacity: 2})

	// Pre-cancelled context: deterministic, nothing dispatched.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, r := range fleetnet.New([]string{addr}).Run(ctx, fleet.Config{Workers: 1, Seed: 1}, longJobs(4)) {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("pre-cancelled: job %d err = %v, want context.Canceled", i, r.Err)
		}
	}

	// Mid-run cancellation: every job either completed cleanly or carries
	// the context error, and the run returns promptly.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel2()
	}()
	start := time.Now()
	results := fleetnet.New([]string{addr}).Run(ctx2, fleet.Config{Workers: 1, Seed: 1}, longJobs(200))
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("run took %v after cancellation; connections were not torn down", elapsed)
	}
	cancelled := 0
	for i, r := range results {
		switch {
		case r.Err == nil && r.Result != nil:
		case errors.Is(r.Err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("job %d: unexpected outcome err=%v result=%v", i, r.Err, r.Result != nil)
		}
	}
	if cancelled == 0 {
		t.Fatal("200 long jobs all finished before a 50ms cancel; expected at least one cancellation")
	}
}

// TestNetRunnerAllHostsDown: unreachable inventory fails every job with a
// descriptive error instead of hanging.
func TestNetRunnerAllHostsDown(t *testing.T) {
	// A listener that is closed immediately: connection refused, fast.
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	nr := fleetnet.New([]string{addr})
	nr.DialTimeout = time.Second
	// Supervisors keep redialing a down host; bound how long the run waits
	// for anything to connect.
	nr.AllDeadDeadline = 500 * time.Millisecond
	results := nr.Run(context.Background(), fleet.Config{Seed: 1}, specJobs(3, true))
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("job %d should carry the dial failure", i)
		}
	}
}

// TestServerGracefulShutdown: Shutdown with a shard in flight lets it
// finish and flush — the client still receives every result and the done
// frame — then the connection closes.
func TestServerGracefulShutdown(t *testing.T) {
	s := &fleetnet.Server{Capacity: 1}
	addr := startServer(t, s)

	conn, err := stdnet.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	if f, err := wire.ReadFrame(conn); err != nil || f.Type != wire.TypeHello {
		t.Fatalf("hello: %v", err)
	}
	jobs := specJobs(2, true)
	req := &wire.ShardRequest{Workers: 1}
	for i := range jobs {
		spec := *jobs[i].Spec
		spec.Index = i
		spec.Seed = fleet.EffectiveSeed(7, i, &jobs[i])
		req.Jobs = append(req.Jobs, spec)
	}
	if err := wire.WriteFrame(conn, &wire.Frame{V: wire.Version, Type: wire.TypeShard, Shard: req}); err != nil {
		t.Fatal(err)
	}
	// Shutdown races the in-flight shard; the drain contract says we still
	// get both results and the done frame.
	shutdownDone := make(chan struct{})
	go func() {
		s.Shutdown()
		close(shutdownDone)
	}()
	results, done := 0, false
	for !done {
		f, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatalf("stream broke during graceful drain after %d results: %v", results, err)
		}
		switch f.Type {
		case wire.TypeResult:
			results++
		case wire.TypeDone:
			done = true
		case wire.TypeHeartbeat:
		default:
			t.Fatalf("unexpected %s frame during drain", f.Type)
		}
	}
	if results != 2 {
		t.Fatalf("drain delivered %d results, want 2", results)
	}
	<-shutdownDone
	if _, err := wire.ReadFrame(conn); err == nil {
		t.Fatal("connection should close after the drained shard")
	}
}

// TestTokenBucket covers the admission gate: burst spends, refill credits,
// Allow never blocks, Wait honors context.
func TestTokenBucket(t *testing.T) {
	b := fleetnet.NewTokenBucket(1000, 10)
	if !b.Allow(10) {
		t.Fatal("full burst should be admitted immediately")
	}
	if b.Allow(10) {
		t.Fatal("bucket should be empty")
	}
	// Refill at 1000/s: 10 tokens take ~10ms.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Wait(ctx, 10); err != nil {
		t.Fatalf("Wait should succeed after refill: %v", err)
	}
	// A request beyond burst is clamped, not deadlocked.
	if err := b.Wait(ctx, 50); err != nil {
		t.Fatalf("beyond-burst Wait should clamp and succeed: %v", err)
	}
	// Cancelled context unblocks an unsatisfiable wait.
	slow := fleetnet.NewTokenBucket(0.0001, 1)
	if !slow.Allow(1) {
		t.Fatal("initial burst")
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if err := slow.Wait(ctx2, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want DeadlineExceeded", err)
	}
}

// TestNetRunnerAdmission: the token bucket throttles dispatch without
// changing results.
func TestNetRunnerAdmission(t *testing.T) {
	addr := startServer(t, &fleetnet.Server{Capacity: 2})
	nr := fleetnet.New([]string{addr})
	nr.ShardSize = 1
	nr.Admission = fleetnet.NewTokenBucket(200, 2)
	results := nr.Run(context.Background(), fleet.Config{Workers: 1, Seed: 3}, specJobs(6, true))
	if err := fleet.FirstError(results); err != nil {
		t.Fatal(err)
	}
}

// TestNoGoroutineLeaks: a full life cycle — runs, worker loss, shutdown —
// returns the process to its baseline goroutine count.
func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	s1 := &fleetnet.Server{Capacity: 2}
	s2 := &fleetnet.Server{Capacity: 2}
	ln1, _ := stdnet.Listen("tcp", "127.0.0.1:0")
	ln2, _ := stdnet.Listen("tcp", "127.0.0.1:0")
	done1 := make(chan struct{})
	done2 := make(chan struct{})
	go func() { s1.Serve(context.Background(), ln1); close(done1) }()
	go func() { s2.Serve(context.Background(), ln2); close(done2) }()

	nr := fleetnet.New([]string{ln1.Addr().String(), ln2.Addr().String()})
	nr.ShardSize = 2
	if err := fleet.FirstError(nr.Run(context.Background(), fleet.Config{Workers: 1, Seed: 5}, specJobs(4, true))); err != nil {
		t.Fatal(err)
	}
	s1.Shutdown()
	s2.Shutdown()
	<-done1
	<-done2

	// Goroutines unwind asynchronously after conns close; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, after, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
