package net_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	fleetnet "repro/internal/fleet/net"
	"repro/internal/sink"
)

// collect drains the full bus stream into "job:t" strings.
func collect(t *testing.T, b *fleetnet.Bus) []string {
	t.Helper()
	var got []string
	err := b.Stream(context.Background(), func(job int, s device.Sample) error {
		got = append(got, fmt.Sprintf("%d:%g", job, s.TimeSec))
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	return got
}

// TestBusDoubleClose: Close is idempotent — a second Close neither panics
// nor disturbs subscribers that attached in between.
func TestBusDoubleClose(t *testing.T) {
	b := fleetnet.NewBus(2)
	b.Accept(0, device.Sample{TimeSec: 1})
	b.Accept(1, device.Sample{TimeSec: 2})
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, b); len(got) != 2 || got[0] != "0:1" || got[1] != "1:2" {
		t.Fatalf("stream after double close = %v", got)
	}
}

// TestBusSubscribeAfterClose: a subscriber attaching after the run ended
// still replays the complete ordered stream, and accepts arriving after
// Close are dropped rather than corrupting the finalized record.
func TestBusSubscribeAfterClose(t *testing.T) {
	b := fleetnet.NewBus(3)
	// Out-of-order arrival across jobs; in-order within each job.
	b.Accept(2, device.Sample{TimeSec: 5})
	b.Accept(0, device.Sample{TimeSec: 1})
	b.Accept(1, device.Sample{TimeSec: 3})
	b.Accept(1, device.Sample{TimeSec: 4})
	b.Accept(0, device.Sample{TimeSec: 2})
	b.Close()
	b.Accept(0, device.Sample{TimeSec: 99})  // late sample: dropped
	b.Accept(-1, device.Sample{TimeSec: 99}) // out of range: dropped
	b.Accept(3, device.Sample{TimeSec: 99})  // out of range: dropped
	b.Finish(7)                              // out of range: no-op

	want := []string{"0:1", "0:2", "1:3", "1:4", "2:5"}
	got := collect(t, b)
	if len(got) != len(want) {
		t.Fatalf("stream = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestBusStreamCancelNoLeak: subscribers blocked on a live bus unwind on
// context cancellation instead of leaking with the cond var forever.
func TestBusStreamCancelNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	b := fleetnet.NewBus(1) // never closed, never finished: streams must block
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = b.Stream(ctx, func(int, device.Sample) error { return nil })
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let them park in cond.Wait
	cancel()
	wg.Wait()
	for i, err := range errs {
		if err != context.Canceled {
			t.Fatalf("subscriber %d returned %v, want context.Canceled", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d now", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBusSlowSubscriberDoesNotBlock: the bus is pull-based, so a
// subscriber stalled inside its callback must not back-pressure the
// producer (Accept/Finish/Close stay non-blocking — job execution never
// waits on a telemetry reader) or starve other subscribers.
func TestBusSlowSubscriberDoesNotBlock(t *testing.T) {
	const jobs, perJob = 3, 50
	b := fleetnet.NewBus(jobs)

	stalled := make(chan struct{})
	release := make(chan struct{})
	slowDone := make(chan int, 1)
	go func() {
		n, first := 0, true
		b.Stream(context.Background(), func(int, device.Sample) error {
			if first {
				first = false
				close(stalled)
				<-release // park mid-callback while the producer runs
			}
			n++
			return nil
		})
		slowDone <- n
	}()

	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		for i := 0; i < perJob; i++ {
			for j := 0; j < jobs; j++ {
				b.Accept(sink.JobID(j), device.Sample{TimeSec: float64(i)})
			}
		}
		for j := 0; j < jobs; j++ {
			b.Finish(j)
		}
		b.Close()
	}()
	select {
	case <-stalled:
	case <-time.After(10 * time.Second):
		t.Fatal("slow subscriber never received a sample")
	}
	select {
	case <-prodDone:
	case <-time.After(10 * time.Second):
		t.Fatal("producer blocked by a stalled subscriber")
	}

	// A second subscriber drains the complete stream while the first is
	// still parked.
	if got := collect(t, b); len(got) != jobs*perJob {
		t.Fatalf("healthy subscriber saw %d samples, want %d", len(got), jobs*perJob)
	}

	close(release)
	select {
	case n := <-slowDone:
		if n != jobs*perJob {
			t.Fatalf("slow subscriber caught up to %d samples, want %d", n, jobs*perJob)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("slow subscriber never caught up after release")
	}
}

// TestBusAcceptIsSink compiles the Bus against the sink contract it claims
// to implement and exercises a live tail: samples accepted while a
// subscriber is mid-stream are delivered without re-subscribing.
func TestBusAcceptIsSink(t *testing.T) {
	var _ sink.Sink = fleetnet.NewBus(0)

	b := fleetnet.NewBus(2)
	got := make(chan string, 16)
	go b.Stream(context.Background(), func(job int, s device.Sample) error {
		got <- fmt.Sprintf("%d:%g", job, s.TimeSec)
		return nil
	})
	b.Accept(0, device.Sample{TimeSec: 1})
	if v := <-got; v != "0:1" {
		t.Fatalf("live tail delivered %q, want 0:1", v)
	}
	b.Finish(0)
	b.Accept(1, device.Sample{TimeSec: 2})
	if v := <-got; v != "1:2" {
		t.Fatalf("live tail delivered %q, want 1:2", v)
	}
	b.Close()
}
