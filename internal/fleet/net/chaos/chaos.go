// Package chaos is a deterministic fault-injection harness for the
// networked fleet: an in-process TCP proxy whose fault schedule — dial
// refusals, connection drops at frame N, per-frame delays, truncated and
// corrupted frames, listener blackouts — is derived entirely from a seed
// and per-connection/per-frame counters, never from wall-clock time. The
// same seed therefore produces the same fault pattern on every run, which
// is what lets the net runner's recovery tests assert byte-identity
// against LocalRunner under any schedule instead of hoping a flaky sleep
// lines up.
//
// Faults are injected on the worker→coordinator direction only (the
// frames that carry samples, results and heartbeats); requests pass
// through untouched so a fault always looks like a transport failure to
// the coordinator, exercising its requeue/redial machinery. Corruption is
// destructive by construction — the first payload byte becomes 0x00,
// which can never parse as a JSON frame — so a corrupted frame is always
// detected as wire.ErrBadFrame and can never silently alter telemetry.
//
// A fault budget caps total injections: once spent, the proxy runs clean,
// guaranteeing that a run with enough retries eventually completes.
package chaos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	stdnet "net"
	"sync"
	"time"
)

// Fault kinds, as recorded in Stats and chosen by the schedule.
const (
	FaultNone     = "none"
	FaultRefuse   = "refuse-dial"
	FaultDrop     = "drop"
	FaultCorrupt  = "corrupt"
	FaultTruncate = "truncate"
	FaultDelay    = "delay"
)

// Plan is the fault assignment for one proxied connection. Zero values
// mean "no fault of that kind".
type Plan struct {
	// Kind names the fault for logs/stats.
	Kind string
	// RefuseDial closes the client connection before relaying the hello:
	// the coordinator sees a dead dial and backs off.
	RefuseDial bool
	// DropAfterFrames cuts both directions after forwarding that many
	// worker frames (0 = disabled; the hello counts as frame 1).
	DropAfterFrames int
	// CorruptFrame overwrites the first payload byte of the Nth worker
	// frame with 0x00 — guaranteed wire.ErrBadFrame — then cuts.
	CorruptFrame int
	// TruncateFrame forwards only half of the Nth worker frame's payload,
	// then cuts mid-frame (io.ErrUnexpectedEOF on the coordinator).
	TruncateFrame int
	// DelayEvery pauses Delay before every Nth worker frame (0 = never).
	DelayEvery int
	// Delay is the per-DelayEvery pause.
	Delay time.Duration
}

// splitmix64 is the counter-based generator behind every schedule
// decision: stateless, so plan(seed, conn) is a pure function.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Schedule derives per-connection fault plans from a seed under a global
// fault budget.
type Schedule struct {
	// Seed drives every decision; two schedules with the same seed and
	// budget produce identical fault sequences.
	Seed int64
	// MaxFaults caps injected faults proxy-wide (<= 0: 8). Once spent,
	// every further connection runs clean.
	MaxFaults int
	// Override, when set, is consulted first for every connection: return
	// (plan, true) to use it verbatim (budget-exempt), or false to fall
	// through to the seeded draw. Tests use it to pin targeted fault
	// patterns; it must itself be deterministic in conn.
	Override func(conn int) (Plan, bool)

	mu   sync.Mutex
	used int
}

// NewSchedule builds a seeded schedule with the given fault budget.
func NewSchedule(seed int64, maxFaults int) *Schedule {
	return &Schedule{Seed: seed, MaxFaults: maxFaults}
}

func (s *Schedule) budget() int {
	if s.MaxFaults > 0 {
		return s.MaxFaults
	}
	return 8
}

// PlanFor returns the deterministic plan for the conn-th accepted
// connection (0-based). Drawing a faulty plan spends one unit of budget;
// a spent budget degrades every plan to clean.
func (s *Schedule) PlanFor(conn int) Plan {
	if s.Override != nil {
		if p, ok := s.Override(conn); ok {
			return p
		}
	}
	p := rawPlan(uint64(s.Seed), conn)
	if p.Kind == FaultNone {
		return p
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.used >= s.budget() {
		return Plan{Kind: FaultNone}
	}
	s.used++
	return p
}

// rawPlan is the pure seed → plan mapping, before budgeting.
func rawPlan(seed uint64, conn int) Plan {
	h := splitmix64(seed ^ splitmix64(uint64(conn)+1))
	h2 := splitmix64(h)
	switch h % 10 {
	case 0, 1: // 20%: refused dial
		return Plan{Kind: FaultRefuse, RefuseDial: true}
	case 2, 3: // 20%: drop mid-stream
		return Plan{Kind: FaultDrop, DropAfterFrames: int(h2%12) + 1}
	case 4: // 10%: corrupted frame
		return Plan{Kind: FaultCorrupt, CorruptFrame: int(h2%8) + 2}
	case 5: // 10%: truncated frame
		return Plan{Kind: FaultTruncate, TruncateFrame: int(h2%8) + 2}
	case 6, 7: // 20%: jittery link
		return Plan{Kind: FaultDelay, DelayEvery: int(h2%3) + 2,
			Delay: time.Duration(h2%20+1) * time.Millisecond}
	default: // 30%: clean connection
		return Plan{Kind: FaultNone}
	}
}

// Stats counts what the proxy actually did.
type Stats struct {
	Conns     int
	Frames    int
	Refused   int
	Drops     int
	Corrupted int
	Truncated int
	Delays    int
	Blackout  int // dials rejected by a blackout window
}

// Proxy is the fault-injecting TCP proxy. Start one in front of a worker
// daemon and point the coordinator at Addr.
type Proxy struct {
	ln      stdnet.Listener
	backend string
	sched   *Schedule
	logf    func(string, ...any)

	mu        sync.Mutex
	dials     int
	blackFrom int // dial-indexed blackout window [from, to)
	blackTo   int
	stats     Stats

	wg     sync.WaitGroup
	closed chan struct{}
}

// Start listens on a loopback port and relays to backend under the
// schedule. logf may be nil.
func Start(backend string, sched *Schedule, logf func(string, ...any)) (*Proxy, error) {
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, backend: backend, sched: sched, logf: logf, closed: make(chan struct{})}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr is the proxy's dialable address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops the listener and waits for every relay to unwind.
func (p *Proxy) Close() {
	select {
	case <-p.closed:
	default:
		close(p.closed)
	}
	p.ln.Close()
	p.wg.Wait()
}

// Stats snapshots the proxy's fault counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// SetBlackout rejects dials with index in [from, to) — a deterministic
// listener blackout window ("the daemon's port went dark for a while").
func (p *Proxy) SetBlackout(from, to int) {
	p.mu.Lock()
	p.blackFrom, p.blackTo = from, to
	p.mu.Unlock()
}

func (p *Proxy) log(format string, args ...any) {
	if p.logf != nil {
		p.logf(format, args...)
	}
}

func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		conn := p.dials
		p.dials++
		p.stats.Conns++
		blackout := conn >= p.blackFrom && conn < p.blackTo
		if blackout {
			p.stats.Blackout++
		}
		p.mu.Unlock()
		if blackout {
			p.log("chaos: conn %d: blackout, refusing dial", conn)
			client.Close()
			continue
		}
		plan := p.sched.PlanFor(conn)
		if plan.RefuseDial {
			p.count(func(s *Stats) { s.Refused++ })
			p.log("chaos: conn %d: refusing dial", conn)
			client.Close()
			continue
		}
		p.wg.Add(1)
		go func(client stdnet.Conn, conn int, plan Plan) {
			defer p.wg.Done()
			defer client.Close()
			server, err := stdnet.Dial("tcp", p.backend)
			if err != nil {
				return
			}
			defer server.Close()
			if plan.Kind != FaultNone {
				p.log("chaos: conn %d: plan %s %+v", conn, plan.Kind, plan)
			}
			// Requests pass through untouched; a vanished side ends the
			// relay (closing the peer unblocks the other copy).
			go func() {
				io.Copy(server, client)
				server.Close()
				client.Close()
			}()
			p.relay(client, server, conn, plan)
		}(client, conn, plan)
	}
}

// relay forwards worker frames to the client, injecting the plan's
// faults at their scheduled frame indices.
func (p *Proxy) relay(client, server stdnet.Conn, conn int, plan Plan) {
	frame := 0
	for {
		select {
		case <-p.closed:
			return
		default:
		}
		hdr, payload, err := readRawFrame(server)
		if err != nil {
			return
		}
		frame++
		p.count(func(s *Stats) { s.Frames++ })
		if plan.DelayEvery > 0 && frame%plan.DelayEvery == 0 {
			p.count(func(s *Stats) { s.Delays++ })
			select {
			case <-time.After(plan.Delay):
			case <-p.closed:
				return
			}
		}
		switch {
		case plan.CorruptFrame > 0 && frame == plan.CorruptFrame && len(payload) > 0:
			// 0x00 can never begin a JSON document: the coordinator is
			// guaranteed wire.ErrBadFrame, never a silently-wrong value.
			payload[0] = 0x00
			p.count(func(s *Stats) { s.Corrupted++ })
			p.log("chaos: conn %d: corrupting frame %d", conn, frame)
			client.Write(hdr)
			client.Write(payload)
			p.cut(client, server)
			return
		case plan.TruncateFrame > 0 && frame == plan.TruncateFrame && len(payload) > 1:
			p.count(func(s *Stats) { s.Truncated++ })
			p.log("chaos: conn %d: truncating frame %d", conn, frame)
			client.Write(hdr)
			client.Write(payload[:len(payload)/2])
			p.cut(client, server)
			return
		}
		if _, err := client.Write(hdr); err != nil {
			return
		}
		if _, err := client.Write(payload); err != nil {
			return
		}
		if plan.DropAfterFrames > 0 && frame >= plan.DropAfterFrames {
			p.count(func(s *Stats) { s.Drops++ })
			p.log("chaos: conn %d: dropping after frame %d", conn, frame)
			p.cut(client, server)
			return
		}
	}
}

func (p *Proxy) cut(client, server stdnet.Conn) {
	client.Close()
	server.Close()
}

func (p *Proxy) count(fn func(*Stats)) {
	p.mu.Lock()
	fn(&p.stats)
	p.mu.Unlock()
}

// readRawFrame reads one length-prefixed frame without decoding it,
// returning the 4-byte header and the payload.
func readRawFrame(r io.Reader) (hdr []byte, payload []byte, err error) {
	hdr = make([]byte, 4)
	if _, err = io.ReadFull(r, hdr); err != nil {
		return nil, nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n == 0 || n > 64<<20 {
		return nil, nil, fmt.Errorf("chaos: implausible frame length %d", n)
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return nil, nil, err
	}
	return hdr, payload, nil
}

// ErrClosed reports whether err is the uninteresting teardown error of a
// closed proxy listener.
func ErrClosed(err error) bool {
	return err == nil || errors.Is(err, stdnet.ErrClosed)
}
