package chaos

import (
	"testing"
	"time"
)

// TestScheduleDeterminism: same seed → identical plan sequence; different
// seeds diverge somewhere in the first few connections.
func TestScheduleDeterminism(t *testing.T) {
	a := NewSchedule(42, 1000)
	b := NewSchedule(42, 1000)
	for i := 0; i < 64; i++ {
		pa, pb := a.PlanFor(i), b.PlanFor(i)
		if pa != pb {
			t.Fatalf("conn %d: plans diverged under the same seed: %+v vs %+v", i, pa, pb)
		}
	}
	c := NewSchedule(43, 1000)
	same := true
	for i := 0; i < 64; i++ {
		if NewSchedule(42, 1000).PlanFor(i) != c.PlanFor(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 64-plan prefixes")
	}
}

// TestScheduleBudget: once the fault budget is spent, every plan is
// clean — the taper that guarantees chaotic runs terminate.
func TestScheduleBudget(t *testing.T) {
	s := NewSchedule(7, 3)
	faults := 0
	for i := 0; i < 200; i++ {
		if s.PlanFor(i).Kind != FaultNone {
			faults++
		}
	}
	if faults != 3 {
		t.Fatalf("budget of 3 allowed %d faults", faults)
	}
}

// TestScheduleMix: a large sample draws every fault kind, and fault
// parameters stay in their documented ranges.
func TestScheduleMix(t *testing.T) {
	kinds := map[string]int{}
	for i := 0; i < 500; i++ {
		p := rawPlan(99, i)
		kinds[p.Kind]++
		if p.DropAfterFrames < 0 || p.CorruptFrame < 0 || p.TruncateFrame < 0 {
			t.Fatalf("conn %d: negative frame index: %+v", i, p)
		}
		if p.Kind == FaultDelay && (p.Delay <= 0 || p.Delay > 20*time.Millisecond) {
			t.Fatalf("conn %d: delay out of range: %v", i, p.Delay)
		}
	}
	for _, k := range []string{FaultNone, FaultRefuse, FaultDrop, FaultCorrupt, FaultTruncate, FaultDelay} {
		if kinds[k] == 0 {
			t.Fatalf("500 plans never drew %s (mix: %v)", k, kinds)
		}
	}
}
