package net

import (
	"context"
	"sync"
	"time"
)

// TokenBucket is a classic rate/burst admission gate: Rate tokens refill
// per second up to Burst, one token admits one job. The coordinator drains
// it before dispatching a shard; the job server answers 429 when a
// submission cannot be admitted without waiting. The zero value is not
// useful; construct with NewTokenBucket.
type TokenBucket struct {
	rate  float64
	burst float64

	mu     sync.Mutex
	tokens float64
	last   time.Time
	now    func() time.Time // test hook
}

// NewTokenBucket creates a bucket refilling rate tokens per second with
// the given burst capacity (and that many tokens available immediately).
// rate <= 0 or burst <= 0 panic: an admission gate that can never admit is
// a configuration bug, not a policy.
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	if rate <= 0 || burst <= 0 {
		panic("net: token bucket needs positive rate and burst")
	}
	return &TokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), now: time.Now}
}

// refill credits tokens for the time elapsed since the last accounting.
// Callers hold mu.
func (b *TokenBucket) refill() {
	t := b.now()
	if !b.last.IsZero() {
		b.tokens += t.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = t
}

// Allow takes n tokens if they are available right now, reporting whether
// it did. n larger than the burst can never be admitted and reports false.
func (b *TokenBucket) Allow(n int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	if float64(n) > b.tokens {
		return false
	}
	b.tokens -= float64(n)
	return true
}

// Wait blocks until n tokens are available and takes them, or returns the
// context's error. n larger than the burst is clamped to the burst —
// callers admitting a shard bigger than the whole bucket should be slowed,
// not deadlocked.
func (b *TokenBucket) Wait(ctx context.Context, n int) error {
	if float64(n) > b.burst {
		n = int(b.burst)
	}
	for {
		b.mu.Lock()
		b.refill()
		if float64(n) <= b.tokens {
			b.tokens -= float64(n)
			b.mu.Unlock()
			return nil
		}
		wait := time.Duration((float64(n) - b.tokens) / b.rate * float64(time.Second))
		b.mu.Unlock()
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}
