package net_test

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet/durable"
	fleetnet "repro/internal/fleet/net"
)

// stateServer wires a JobServer to a durable store in dir, replays any
// existing logs, and serves it over httptest. Cleanup tears both down.
func stateServer(t *testing.T, dir string) (*fleetnet.JobServer, *httptest.Server) {
	t.Helper()
	store, err := durable.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	js := fleetnet.NewJobServer(nil) // local execution: deterministic
	js.Workers = 2
	js.Store = store
	if err := js.Recover(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(js.Handler())
	t.Cleanup(func() { js.Close() })
	t.Cleanup(ts.Close)
	return js, ts
}

// comfortJSON canonicalises a status body's comfort table for comparison.
// Both sides pass through the same decode/re-marshal, so equality here is
// equality of every float64 the analytics produced.
func comfortJSON(t *testing.T, body map[string]any) string {
	t.Helper()
	c, ok := body["comfort"]
	if !ok {
		t.Fatalf("status carries no comfort table: %v", body)
	}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestJobServerCrashRecoveryByteIdentity is the tentpole pin: run a sweep
// to completion under a state dir, then simulate crashes by truncating the
// job's WAL at several byte offsets — mid cell table, mid ledger, mid
// status record, and the intact file. Every restart must converge on a
// comfort table byte-identical to the uninterrupted run.
func TestJobServerCrashRecoveryByteIdentity(t *testing.T) {
	cleanDir := t.TempDir()
	_, ts := stateServer(t, cleanDir)
	id := submit(t, ts, e2eSpec)
	final := waitStatus(t, ts, id)
	if final["status"] != "done" {
		t.Fatalf("clean run finished %v", final)
	}
	want := comfortJSON(t, final)

	wal, err := os.ReadFile(filepath.Join(cleanDir, id+".wal"))
	if err != nil {
		t.Fatal(err)
	}
	// First frame is the submission record: [4B len][1B type][payload][4B crc]
	// after the 8-byte header. Cuts before its end model a crash before the
	// submit ack, where the job never existed from the client's view.
	submitEnd := 8 + 4 + 1 + int(binary.LittleEndian.Uint32(wal[8:])) + 4
	cuts := []int{
		submitEnd,                  // cell table lost: full re-run
		submitEnd + 10,             // torn mid cell table
		(submitEnd + len(wal)) / 2, // partial ledger survives
		len(wal) - 5,               // torn status record: all cells ledgered
		len(wal),                   // intact: terminal restore, no re-run
	}
	for _, cut := range cuts {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, id+".wal"), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, ts2 := stateServer(t, dir)
		got := waitStatus(t, ts2, id)
		if got["status"] != "done" {
			t.Fatalf("cut %d/%d: recovered job finished %v", cut, len(wal), got)
		}
		if g := comfortJSON(t, got); g != want {
			t.Fatalf("cut %d/%d: comfort diverged\n got %s\nwant %s", cut, len(wal), g, want)
		}
	}
}

// TestJobServerRestartUniqueIDs: after recovery the ID sequence resumes
// past every journaled job, so a new submission can never collide with a
// recovered one.
func TestJobServerRestartUniqueIDs(t *testing.T) {
	dir := t.TempDir()
	store, err := durable.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := store.Begin(durable.Submission{ID: "j3", Spec: json.RawMessage(e2eSpec)})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Finish(durable.Status{Status: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts := stateServer(t, dir)
	// The recovered terminal job is queryable.
	body := poll(t, ts, "j3")
	if body["status"] != "done" {
		t.Fatalf("recovered job j3 status = %v", body["status"])
	}
	// A fresh submission continues the sequence instead of reusing j1..j3.
	id := submit(t, ts, e2eSpec)
	if id != "j4" {
		t.Fatalf("post-recovery submission got ID %q, want j4", id)
	}
	if _, err := os.Stat(filepath.Join(dir, "j4.wal")); err != nil {
		t.Fatalf("new job not journaled: %v", err)
	}
	if waitStatus(t, ts, id)["status"] != "done" {
		t.Fatal("post-recovery submission did not complete")
	}
}

// TestJobServerUnjournaledDegradation: when the store cannot create the
// job's log (here: the path is occupied by a directory, which defeats even
// root), the server logs the failure, marks the job unjournaled, and still
// serves it from memory.
func TestJobServerUnjournaledDegradation(t *testing.T) {
	dir := t.TempDir()
	// Occupy j1.wal with a directory so CreateExclusive fails regardless of
	// the uid running the tests.
	if err := os.Mkdir(filepath.Join(dir, "j1.wal"), 0o755); err != nil {
		t.Fatal(err)
	}
	_, ts := stateServer(t, dir)
	id := submit(t, ts, e2eSpec)
	final := waitStatus(t, ts, id)
	if final["status"] != "done" {
		t.Fatalf("degraded job finished %v", final)
	}
	if final["unjournaled"] != true {
		t.Fatalf("degraded job not flagged unjournaled: %v", final)
	}
	if _, ok := final["comfort"]; !ok {
		t.Fatal("degraded job lost its analytics")
	}
	// The degradation is visible on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `usta_job_unjournaled{job="j1"} 1`) {
		t.Fatal("metrics do not report the unjournaled job")
	}
}

// TestJobServerDeadlineSurvivesRestart: a job that blows its wall-clock
// deadline fails with a deadline error, the failure is journaled as
// terminal, and a restart keeps it failed instead of re-wedging the server
// on the same doomed sweep.
func TestJobServerDeadlineSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := durable.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	js := fleetnet.NewJobServer(nil)
	js.Workers = 1
	js.Store = store
	js.JobDeadline = time.Millisecond
	ts := httptest.NewServer(js.Handler())

	id := submit(t, ts, longSpec)
	final := waitStatus(t, ts, id)
	if final["status"] != "failed" {
		t.Fatalf("deadlined job finished %v", final)
	}
	if msg, _ := final["error"].(string); !strings.Contains(msg, "deadline") {
		t.Fatalf("failure does not name the deadline: %v", final["error"])
	}
	if ds, _ := final["deadline_sec"].(float64); ds <= 0 {
		t.Fatalf("deadline_sec = %v, want > 0", final["deadline_sec"])
	}
	ts.Close()
	js.Close()

	// Restart over the same state dir: the failure is terminal, not re-run.
	_, ts2 := stateServer(t, dir)
	body := poll(t, ts2, id)
	if body["status"] != "failed" {
		t.Fatalf("restarted deadline job status = %v", body["status"])
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "deadline") {
		t.Fatalf("restart lost the deadline error: %v", body["error"])
	}
}
