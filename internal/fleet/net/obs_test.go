package net_test

// Observability-surface tests: the SSE snapshot stream, the determinism
// pin that anchors it (the final streamed aggregates must be byte-equal
// to the post-hoc analytics over the same run), and the /metrics +
// /fleet views of live RunnerStats under fault injection.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/device"
	"repro/internal/fleet"
	fleetnet "repro/internal/fleet/net"
	"repro/internal/fleet/net/chaos"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// obsSpec is a Table-1-shaped sweep with a real grid (2 workloads × 2
// participants × 2 ambients) so the streamed heat map and per-class
// histograms are non-trivial.
func obsSpec(traceFree bool) string {
	return fmt.Sprintf(`{
	  "version": 1,
	  "name": "obs-e2e",
	  "workloads": ["skype", "youtube"],
	  "population": ["a", "b"],
	  "ambients_c": [25, 35],
	  "schemes": [{"name": "baseline"}],
	  "duration": {"scale": 0.05},
	  "seeds": {"policy": "indexed", "base": 7},
	  "trace_free": %t
	}`, traceFree)
}

// sseSnap mirrors obs.Snapshot with the deterministic section kept raw,
// so equality checks compare the exact bytes that crossed the wire.
type sseSnap struct {
	Seq        int             `json:"seq"`
	Status     string          `json:"status"`
	Final      bool            `json:"final"`
	Done       int             `json:"done"`
	Failed     int             `json:"failed"`
	Total      int             `json:"total"`
	Samples    int64           `json:"samples"`
	Aggregates json.RawMessage `json:"aggregates"`
	SkinHist   []obs.ClassHist `json:"skin_hist"`
	Fleet      json.RawMessage `json:"fleet"`
}

// readSnapshots subscribes to a job's SSE stream and returns every
// snapshot frame until the server ends the stream on the final one.
func readSnapshots(t *testing.T, ts *httptest.Server, id string) []sseSnap {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var out []sseSnap
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "snapshot":
			var s sseSnap
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &s); err != nil {
				t.Fatalf("snapshot frame: %v", err)
			}
			out = append(out, s)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// referenceAggregates reruns the spec on the in-process pool and reduces
// it through the same post-hoc pipeline the job server uses (Flatten +
// ViolationSink + AggregatesFromStats), returning the marshaled bytes.
// The repo's determinism contract makes this the ground truth for any
// runner and worker count.
func referenceAggregates(t *testing.T, specJSON string) []byte {
	t.Helper()
	spec, err := scenario.Parse([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	devCfg := device.DefaultConfig()
	grid, err := spec.Expand(scenario.Env{Device: &devCfg})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fleet.Config{Workers: 2, Seed: spec.Seeds.Base}
	var vs *analytics.ViolationSink
	if spec.TraceFree {
		vs = analytics.NewViolationSink(grid.Limits())
		cfg.Sink = vs
	}
	results := fleet.New(cfg).Run(context.Background(), grid.Jobs)
	stats, err := analytics.Flatten(grid, results)
	if err != nil {
		t.Fatal(err)
	}
	if vs != nil {
		vs.Apply(stats)
	}
	data, err := json.Marshal(obs.AggregatesFromStats(stats))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestEventsFinalSnapshotMatchesAnalytics is the tentpole determinism
// pin: stream a job's aggregate snapshots over SSE through a real TCP
// worker daemon, and require the final frame's aggregates to be
// byte-equal to the post-hoc analytics of an independent local rerun —
// in both the traced and trace-free telemetry modes.
func TestEventsFinalSnapshotMatchesAnalytics(t *testing.T) {
	for _, traceFree := range []bool{false, true} {
		traceFree := traceFree
		t.Run(fmt.Sprintf("traceFree=%v", traceFree), func(t *testing.T) {
			worker := startServer(t, &fleetnet.Server{Capacity: 2})
			js := fleetnet.NewJobServer(fleetnet.New([]string{worker}))
			js.Workers = 2
			defer js.Close()
			ts := httptest.NewServer(js.Handler())
			defer ts.Close()

			specJSON := obsSpec(traceFree)
			id := submit(t, ts, specJSON)
			snaps := readSnapshots(t, ts, id)
			if len(snaps) == 0 {
				t.Fatal("no snapshots streamed")
			}
			for i := 1; i < len(snaps); i++ {
				if snaps[i].Seq <= snaps[i-1].Seq {
					t.Fatalf("snapshot seq not increasing: %d then %d", snaps[i-1].Seq, snaps[i].Seq)
				}
				if snaps[i].Done < snaps[i-1].Done {
					t.Fatalf("done count regressed: %d then %d", snaps[i-1].Done, snaps[i].Done)
				}
			}
			last := snaps[len(snaps)-1]
			if !last.Final || last.Status != "done" || last.Done != last.Total || last.Total != 8 {
				t.Fatalf("final frame = %+v", last)
			}
			if last.Samples <= 0 {
				t.Fatal("final frame aggregated no samples")
			}
			if len(last.SkinHist) != 2 {
				t.Fatalf("skin_hist classes = %d, want 2", len(last.SkinHist))
			}
			var total int64
			for _, h := range last.SkinHist {
				if h.Samples == 0 {
					t.Fatalf("class %s histogram empty", h.Class)
				}
				binned := h.Under + h.Over
				for _, n := range h.Bins {
					binned += n
				}
				if binned != h.Samples {
					t.Fatalf("class %s bins sum %d != samples %d", h.Class, binned, h.Samples)
				}
				total += h.Samples
			}
			if total != last.Samples {
				t.Fatalf("histogram total %d != samples %d", total, last.Samples)
			}

			// The pin: final streamed aggregates == post-hoc analytics.
			want := referenceAggregates(t, specJSON)
			if !bytes.Equal(last.Aggregates, want) {
				t.Fatalf("final aggregates diverge from post-hoc analytics:\n got: %s\nwant: %s",
					last.Aggregates, want)
			}
			// And they are non-trivial: both grid axes present.
			var agg struct {
				Comfort []obs.Comfort `json:"comfort"`
				HeatMap *obs.HeatMap  `json:"heat_map"`
			}
			if err := json.Unmarshal(last.Aggregates, &agg); err != nil {
				t.Fatal(err)
			}
			if len(agg.Comfort) != 2 {
				t.Fatalf("comfort rows = %d, want 2", len(agg.Comfort))
			}
			if agg.HeatMap == nil || len(agg.HeatMap.Rows) != 2 {
				t.Fatalf("heat map rows = %+v, want the 2 ambients", agg.HeatMap)
			}

			// A late subscriber gets exactly the final frame, with the
			// same aggregate bytes.
			late := readSnapshots(t, ts, id)
			if len(late) != 1 || !late[0].Final {
				t.Fatalf("late subscriber frames = %d (final=%v), want exactly the final frame",
					len(late), late[len(late)-1].Final)
			}
			if !bytes.Equal(late[0].Aggregates, want) {
				t.Fatal("late subscriber's final aggregates diverge")
			}

			// /metrics agrees with the final frame's sample counter.
			metrics := getBody(t, ts, "/metrics")
			wantLine := fmt.Sprintf("usta_job_samples_total{job=%q} %s", id,
				strconv.FormatFloat(float64(last.Samples), 'g', -1, 64))
			if !strings.Contains(metrics, wantLine) {
				t.Fatalf("metrics missing %q in:\n%s", wantLine, metrics)
			}
		})
	}
}

func getBody(t *testing.T, ts *httptest.Server, path string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status = %d", path, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestMetricsAndFleetUnderChaos is the live-stats acceptance criterion:
// during a chaos-injected run (connections dropped mid-stream, forcing
// redials), /fleet and /metrics expose the recovery counters of the
// job's runner clone.
func TestMetricsAndFleetUnderChaos(t *testing.T) {
	backend := startServer(t, &fleetnet.Server{Capacity: 1})
	sched := &chaos.Schedule{Override: func(conn int) (chaos.Plan, bool) {
		if conn < 2 {
			return chaos.Plan{Kind: chaos.FaultDrop, DropAfterFrames: 3}, true
		}
		return chaos.Plan{Kind: chaos.FaultNone}, true
	}}
	p := chaosProxy(t, backend, sched)

	nr := fastRecovery([]string{p.Addr()})
	nr.ShardSize = 2
	nr.MaxRetries = 20
	nr.Logf = t.Logf
	js := fleetnet.NewJobServer(nr)
	js.Workers = 2
	defer js.Close()
	ts := httptest.NewServer(js.Handler())
	defer ts.Close()

	id := submit(t, ts, obsSpec(true))

	// Poll /fleet while the job runs: the merged host table must be
	// serving live clone stats, not placeholders.
	sawHost := false
	deadline := time.Now().Add(60 * time.Second)
	for {
		var body struct {
			Hosts []struct {
				Addr     string `json:"addr"`
				Breaker  string `json:"breaker"`
				Capacity int    `json:"capacity"`
				Redials  int    `json:"redials"`
			} `json:"hosts"`
			Jobs []struct {
				ID     string `json:"id"`
				Status string `json:"status"`
			} `json:"jobs"`
		}
		if err := json.Unmarshal([]byte(getBody(t, ts, "/fleet")), &body); err != nil {
			t.Fatal(err)
		}
		if len(body.Jobs) != 1 || body.Jobs[0].ID != id {
			t.Fatalf("/fleet jobs = %+v", body.Jobs)
		}
		if len(body.Hosts) == 1 && body.Hosts[0].Addr == p.Addr() {
			sawHost = true
			if body.Hosts[0].Breaker == "" {
				t.Fatal("/fleet host has no breaker state")
			}
		}
		if body.Jobs[0].Status != "running" {
			if body.Jobs[0].Status != "done" {
				t.Fatalf("job finished %s", body.Jobs[0].Status)
			}
			if !sawHost {
				t.Fatal("/fleet never surfaced the worker host")
			}
			if body.Hosts[0].Redials < 1 {
				t.Fatalf("merged stats show no redials after chaos drops: %+v", body.Hosts)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job stuck")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// /metrics carries the same counters in exposition format.
	metrics := getBody(t, ts, "/metrics")
	redials := promValue(t, metrics, "usta_host_redials_total", p.Addr())
	if redials < 1 {
		t.Fatalf("usta_host_redials_total = %g, want >= 1 in:\n%s", redials, metrics)
	}
	if promValue(t, metrics, "usta_host_items_completed_total", p.Addr()) < 1 {
		t.Fatal("usta_host_items_completed_total not advanced")
	}
	if !strings.Contains(metrics, fmt.Sprintf("usta_job_done{job=%q} 8", id)) {
		t.Fatalf("metrics missing completed job gauge:\n%s", metrics)
	}
	// Breaker state is one-hot: exactly one state samples 1 for the host.
	ones := 0
	for _, state := range []string{"closed", "half-open", "open"} {
		re := regexp.MustCompile(fmt.Sprintf(`usta_host_breaker\{host=%q,state=%q\} (\d+)`, p.Addr(), state))
		m := re.FindStringSubmatch(metrics)
		if m == nil {
			t.Fatalf("metrics missing breaker state %s:\n%s", state, metrics)
		}
		if m[1] == "1" {
			ones++
		}
	}
	if ones != 1 {
		t.Fatalf("breaker one-hot sum = %d, want 1", ones)
	}
}

// promValue extracts one labeled sample value from an exposition body.
func promValue(t *testing.T, metrics, name, host string) float64 {
	t.Helper()
	re := regexp.MustCompile(fmt.Sprintf(`%s\{host=%q\} ([0-9.e+-]+)`, name, host))
	m := re.FindStringSubmatch(metrics)
	if m == nil {
		t.Fatalf("metrics missing %s{host=%q}:\n%s", name, host, metrics)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestEventsStalledClientDoesNotBlockJob: an SSE subscriber that never
// reads its stream must not stall job execution or other subscribers —
// the aggregator is pull-based, so a stalled client blocks only its own
// handler goroutine.
func TestEventsStalledClientDoesNotBlockJob(t *testing.T) {
	worker := startServer(t, &fleetnet.Server{Capacity: 2})
	js := fleetnet.NewJobServer(fleetnet.New([]string{worker}))
	js.Workers = 2
	defer js.Close()
	ts := httptest.NewServer(js.Handler())
	defer ts.Close()

	id := submit(t, ts, obsSpec(true))

	// Stalled client: issues the request, never reads the response body.
	stalled, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Body.Close()

	// A healthy subscriber still drains to the final frame, and the job
	// reaches a terminal status, with the stalled connection open
	// throughout.
	snaps := readSnapshots(t, ts, id)
	if len(snaps) == 0 || !snaps[len(snaps)-1].Final {
		t.Fatalf("healthy subscriber did not reach the final frame (%d frames)", len(snaps))
	}
	body := waitStatus(t, ts, id)
	if body["status"] != "done" {
		t.Fatalf("job status = %v", body["status"])
	}
}
