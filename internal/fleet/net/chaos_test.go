package net_test

// Chaos-harness integration tests: the self-healing contract of the
// networked runner, proven under deterministic fault injection. Every
// test in this file routes real TCP worker daemons through
// internal/fleet/net/chaos proxies and asserts the three invariants that
// survive any seeded schedule: results and telemetry byte-identical to
// LocalRunner, telemetry exactly-once despite retries and hedges, and
// jobs failing only when their retry budget is genuinely exhausted.

import (
	"context"
	"fmt"
	stdnet "net"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fleet"
	fleetnet "repro/internal/fleet/net"
	"repro/internal/fleet/net/chaos"
)

// chaosProxy fronts a backend with a fault-injecting proxy torn down with
// the test.
func chaosProxy(t *testing.T, backend string, sched *chaos.Schedule) *chaos.Proxy {
	t.Helper()
	p, err := chaos.Start(backend, sched, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// localRef runs the reference batch on LocalRunner and returns results +
// telemetry fingerprint.
func localRef(t *testing.T, cfg fleet.Config, n int) ([]fleet.JobResult, *tally) {
	t.Helper()
	tl := newTally()
	c := cfg
	c.Sink = tl.sink()
	ref := fleet.LocalRunner{}.Run(context.Background(), c, specJobs(n, true))
	if err := fleet.FirstError(ref); err != nil {
		t.Fatal(err)
	}
	return ref, tl
}

// assertIdentical checks results and telemetry byte-identity against the
// local reference.
func assertIdentical(t *testing.T, label string, ref, got []fleet.JobResult, refTally, gotTally *tally) {
	t.Helper()
	if err := fleet.FirstError(got); err != nil {
		t.Fatalf("%s: run should fully recover: %v", label, err)
	}
	for i := range ref {
		a, b := ref[i], got[i]
		if b.Index != a.Index || b.Name != a.Name || b.SeedUsed != a.SeedUsed {
			t.Fatalf("%s: job %d metadata diverged: %+v vs %+v", label, i, b, a)
		}
		if b.Result.EnergyJ != a.Result.EnergyJ || b.Result.MaxSkinC != a.Result.MaxSkinC ||
			b.Result.AvgFreqMHz != a.Result.AvgFreqMHz || b.Result.WorkDone != a.Result.WorkDone {
			t.Fatalf("%s: job %d aggregates diverged", label, i)
		}
	}
	for i := range ref {
		if gotTally.counts[i] != refTally.counts[i] || gotTally.sums[i] != refTally.sums[i] {
			t.Fatalf("%s: job %d telemetry diverged: %d/%v samples vs local %d/%v",
				label, i, gotTally.counts[i], gotTally.sums[i], refTally.counts[i], refTally.sums[i])
		}
	}
}

// fastRecovery returns a runner tuned for test-speed backoff/breaker
// cycles.
func fastRecovery(hosts []string) *fleetnet.Runner {
	nr := fleetnet.New(hosts)
	nr.BackoffBase = 10 * time.Millisecond
	nr.BackoffMax = 100 * time.Millisecond
	nr.BreakerCooldown = 50 * time.Millisecond
	return nr
}

// TestChaosByteIdentity is the headline acceptance test: for every
// seeded fault schedule — dial refusals, mid-stream drops, corrupted and
// truncated frames, jittery links — Table-1-style results and per-job
// telemetry through two chaotic hosts are byte-identical to LocalRunner.
func TestChaosByteIdentity(t *testing.T) {
	const n = 10
	cfg := fleet.Config{Workers: 2, Seed: 42}
	ref, refTally := localRef(t, cfg, n)

	for _, seed := range []int64{1, 2, 7, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			b1 := startServer(t, &fleetnet.Server{Capacity: 2})
			b2 := startServer(t, &fleetnet.Server{Capacity: 2})
			p1 := chaosProxy(t, b1, chaos.NewSchedule(seed, 6))
			p2 := chaosProxy(t, b2, chaos.NewSchedule(seed+1000, 6))

			nr := fastRecovery([]string{p1.Addr(), p2.Addr()})
			nr.ShardSize = 2
			nr.MaxRetries = 100 // fail only on genuine exhaustion, never under a bounded fault budget
			nr.HeartbeatTimeout = 2 * time.Second
			nr.Logf = t.Logf
			tl := newTally()
			c := cfg
			c.Sink = tl.sink()
			got := nr.Run(context.Background(), c, specJobs(n, true))
			assertIdentical(t, fmt.Sprintf("seed %d", seed), ref, got, refTally, tl)
			s1, s2 := p1.Stats(), p2.Stats()
			t.Logf("chaos stats: p1=%+v p2=%+v runner=%s", s1, s2, nr.Stats())
		})
	}
}

// TestChaosSingleHostRecovery is the transient-disconnect acceptance
// criterion: a single-host inventory whose connection is cut mid-stream
// (twice) completes the run with zero failed jobs — the host recovers
// via backoff redial instead of being retired.
func TestChaosSingleHostRecovery(t *testing.T) {
	const n = 6
	cfg := fleet.Config{Workers: 1, Seed: 9}
	ref, refTally := localRef(t, cfg, n)

	backend := startServer(t, &fleetnet.Server{Capacity: 1})
	sched := &chaos.Schedule{Override: func(conn int) (chaos.Plan, bool) {
		if conn < 2 {
			// Cut after the hello plus a couple of frames: a classic
			// network blip mid-shard.
			return chaos.Plan{Kind: chaos.FaultDrop, DropAfterFrames: 3}, true
		}
		return chaos.Plan{Kind: chaos.FaultNone}, true
	}}
	p := chaosProxy(t, backend, sched)

	nr := fastRecovery([]string{p.Addr()})
	nr.ShardSize = 2
	nr.MaxRetries = 10
	nr.Logf = t.Logf
	tl := newTally()
	c := cfg
	c.Sink = tl.sink()
	got := nr.Run(context.Background(), c, specJobs(n, true))
	assertIdentical(t, "single-host recovery", ref, got, refTally, tl)

	st := nr.Stats()
	if len(st.Hosts) != 1 || st.Hosts[0].Redials < 1 {
		t.Fatalf("host should have recovered via redial, stats: %s", st)
	}
}

// TestChaosBlackoutAndRestart: the worker daemon is killed and restarted
// mid-run while its listener also goes dark for a dial window — the run
// rides it out and stays byte-identical.
func TestChaosBlackoutAndRestart(t *testing.T) {
	const n = 8
	cfg := fleet.Config{Workers: 1, Seed: 11}
	ref, refTally := localRef(t, cfg, n)

	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	backendAddr := ln.Addr().String()
	worker := &fleetnet.Server{Capacity: 1}
	serveDone := make(chan struct{})
	go func() { worker.Serve(context.Background(), ln); close(serveDone) }()

	sched := &chaos.Schedule{Override: func(int) (chaos.Plan, bool) {
		return chaos.Plan{Kind: chaos.FaultNone}, true
	}}
	p := chaosProxy(t, backendAddr, sched)
	// Dials 1-2 land in a listener blackout: after the restart kill below,
	// the first redial attempts see a dark port before the new daemon is
	// up.
	p.SetBlackout(1, 3)

	nr := fastRecovery([]string{p.Addr()})
	nr.ShardSize = 2
	nr.MaxRetries = 20
	nr.Logf = t.Logf

	// Restart the worker after the second result: kill the daemon, then
	// bring a fresh one up on the same address. Event-driven, so the
	// restart always lands mid-run.
	var results32 atomic.Int32
	restarted := make(chan struct{})
	var worker2 *fleetnet.Server
	serve2Done := make(chan struct{})
	c := cfg
	tl := newTally()
	c.Sink = tl.sink()
	c.OnResult = func(fleet.JobResult) {
		if results32.Add(1) != 2 {
			return
		}
		go func() {
			defer close(restarted)
			worker.Shutdown()
			<-serveDone
			// The port is free once the old daemon exits; a fresh daemon
			// takes over the same address.
			ln2, err := stdnet.Listen("tcp", backendAddr)
			if err != nil {
				t.Errorf("restart listen: %v", err)
				close(serve2Done)
				return
			}
			worker2 = &fleetnet.Server{Capacity: 1}
			go func() { worker2.Serve(context.Background(), ln2); close(serve2Done) }()
		}()
	}
	got := nr.Run(context.Background(), c, specJobs(n, true))
	<-restarted
	assertIdentical(t, "blackout+restart", ref, got, refTally, tl)
	if worker2 != nil {
		worker2.Shutdown()
		<-serve2Done
	}
	if bs := p.Stats(); bs.Blackout == 0 {
		t.Logf("note: no dial landed in the blackout window (stats %+v)", bs)
	}
}

// TestChaosRetriesExhausted: under a schedule hostile enough that no
// attempt can ever stream a result, jobs fail — and they fail with the
// retries-exhausted cause, not a mystery error or a hang.
func TestChaosRetriesExhausted(t *testing.T) {
	backend := startServer(t, &fleetnet.Server{Capacity: 1})
	sched := &chaos.Schedule{Override: func(int) (chaos.Plan, bool) {
		// Every connection dies right after the hello: the handshake
		// succeeds, the shard never streams back.
		return chaos.Plan{Kind: chaos.FaultDrop, DropAfterFrames: 1}, true
	}}
	p := chaosProxy(t, backend, sched)

	nr := fastRecovery([]string{p.Addr()})
	nr.ShardSize = 2
	nr.MaxRetries = 2
	nr.Logf = t.Logf
	start := time.Now()
	results := nr.Run(context.Background(), fleet.Config{Workers: 1, Seed: 3}, specJobs(4, true))
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("exhaustion took %v; the run should fail fast once retries are spent", elapsed)
	}
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("job %d succeeded through a link that never delivers results", i)
		}
		if !strings.Contains(r.Err.Error(), "retries exhausted") {
			t.Fatalf("job %d failed with %q, want a retries-exhausted cause", i, r.Err)
		}
	}
}

// TestChaosLocalFallback: with every dial refused and FallbackLocal set,
// the run degrades to the in-process LocalRunner after AllDeadDeadline —
// and because seeds were resolved before dispatch, the fallback output is
// byte-identical to the reference.
func TestChaosLocalFallback(t *testing.T) {
	const n = 6
	cfg := fleet.Config{Workers: 2, Seed: 21}
	ref, refTally := localRef(t, cfg, n)

	backend := startServer(t, &fleetnet.Server{Capacity: 1})
	sched := &chaos.Schedule{Override: func(int) (chaos.Plan, bool) {
		return chaos.Plan{Kind: chaos.FaultRefuse, RefuseDial: true}, true
	}}
	p := chaosProxy(t, backend, sched)

	nr := fastRecovery([]string{p.Addr()})
	nr.FallbackLocal = true
	nr.AllDeadDeadline = 300 * time.Millisecond
	nr.Logf = t.Logf
	tl := newTally()
	c := cfg
	c.Sink = tl.sink()
	got := nr.Run(context.Background(), c, specJobs(n, true))
	assertIdentical(t, "local fallback", ref, got, refTally, tl)

	st := nr.Stats()
	if !st.FallbackUsed || st.FallbackJobs != n {
		t.Fatalf("expected all %d jobs on the local fallback, stats: %s", n, st)
	}
}

// TestChaosHedgedDispatch: a shard stuck behind a molasses link gets
// speculatively re-dispatched to the idle healthy host once it exceeds
// HedgeAfter; the first reporter wins, telemetry stays exactly-once, and
// the results are byte-identical.
func TestChaosHedgedDispatch(t *testing.T) {
	const n = 4
	cfg := fleet.Config{Workers: 1, Seed: 5}
	ref, refTally := localRef(t, cfg, n)

	slowBackend := startServer(t, &fleetnet.Server{Capacity: 1})
	sched := &chaos.Schedule{Override: func(int) (chaos.Plan, bool) {
		// Alive but glacial: every frame crawls, heartbeats included, so
		// the connection never trips the heartbeat deadline — only the
		// hedge can rescue the shard.
		return chaos.Plan{Kind: chaos.FaultDelay, DelayEvery: 1, Delay: 150 * time.Millisecond}, true
	}}
	slow := chaosProxy(t, slowBackend, sched)
	// The healthy host starts late so the molasses host is guaranteed to
	// claim the first shard; the healthy host then drains the queue and
	// goes idle — the hedge precondition.
	healthyBackend := startServer(t, &fleetnet.Server{Capacity: 1})
	healthy := startSlowProxy(t, healthyBackend, 400*time.Millisecond)

	nr := fleetnet.New([]string{slow.Addr(), healthy})
	nr.ShardSize = 2
	nr.HedgeAfter = 200 * time.Millisecond
	nr.Logf = t.Logf
	tl := newTally()
	c := cfg
	c.Sink = tl.sink()
	got := nr.Run(context.Background(), c, specJobs(n, true))
	assertIdentical(t, "hedged dispatch", ref, got, refTally, tl)

	st := nr.Stats()
	if st.Hedges < 1 {
		t.Fatalf("expected at least one hedge, stats: %s", st)
	}
	t.Logf("hedge stats: %s", st)
}

// assertStatsConsistent checks the invariants every RunnerStats snapshot
// must satisfy after a completed run, whatever the fault schedule:
// exactly-once item settlement, redials bounded by dial attempts, hedge
// wins bounded by hedges, and only legal breaker states.
func assertStatsConsistent(t *testing.T, st fleetnet.RunnerStats, wantItems int) {
	t.Helper()
	if st.HedgeWins > st.Hedges {
		t.Fatalf("hedge wins %d > hedges %d", st.HedgeWins, st.Hedges)
	}
	if !st.FallbackUsed && st.FallbackJobs != 0 {
		t.Fatalf("fallback jobs %d without fallback used", st.FallbackJobs)
	}
	items := 0
	for _, h := range st.Hosts {
		switch h.Breaker {
		case fleetnet.BreakerClosed, fleetnet.BreakerHalfOpen, fleetnet.BreakerOpen:
		default:
			t.Fatalf("host %s: illegal breaker state %q", h.Addr, h.Breaker)
		}
		if h.Redials > 0 && h.ConnectAttempts < h.Redials+1 {
			// Every redial is a successful reconnect, so it implies its own
			// dial attempt plus the generation-zero connect before it.
			t.Fatalf("host %s: %d redials but only %d dial attempts", h.Addr, h.Redials, h.ConnectAttempts)
		}
		if h.SlotsConnected > h.Capacity {
			t.Fatalf("host %s: %d slots connected > capacity %d", h.Addr, h.SlotsConnected, h.Capacity)
		}
		items += h.ItemsCompleted
	}
	// First-reporter-wins settles each shard at most once, so the sum is
	// bounded by the shard count — but a stream lost after its final
	// result requeues nothing and credits nobody, so it may undercount.
	if !st.FallbackUsed && (items < 1 || items > wantItems) {
		t.Fatalf("items completed sum %d, want within [1, %d]", items, wantItems)
	}
}

// TestChaosRunnerStatsConsistency: the recovery counters the
// observability surface republishes are themselves trustworthy. Three
// deterministic fault schedules each drive one counter family non-zero —
// redials, breaker trips, hedges — and every final snapshot satisfies
// the cross-counter invariants.
func TestChaosRunnerStatsConsistency(t *testing.T) {
	t.Run("redials", func(t *testing.T) {
		const n = 6
		backend := startServer(t, &fleetnet.Server{Capacity: 1})
		sched := &chaos.Schedule{Override: func(conn int) (chaos.Plan, bool) {
			if conn < 2 {
				return chaos.Plan{Kind: chaos.FaultDrop, DropAfterFrames: 3}, true
			}
			return chaos.Plan{Kind: chaos.FaultNone}, true
		}}
		p := chaosProxy(t, backend, sched)
		nr := fastRecovery([]string{p.Addr()})
		nr.ShardSize = 2
		nr.MaxRetries = 10
		nr.Logf = t.Logf
		if err := fleet.FirstError(nr.Run(context.Background(), fleet.Config{Workers: 1, Seed: 9}, specJobs(n, true))); err != nil {
			t.Fatal(err)
		}
		st := nr.Stats()
		assertStatsConsistent(t, st, n/2)
		if st.Hosts[0].Redials < 1 {
			t.Fatalf("two mid-stream drops produced no redials: %s", st)
		}
		if st.Hosts[0].ConnectAttempts < 3 {
			t.Fatalf("expected >= 3 dials (initial + 2 reconnects), got %d", st.Hosts[0].ConnectAttempts)
		}
	})

	t.Run("breaker", func(t *testing.T) {
		const n = 4
		backend := startServer(t, &fleetnet.Server{Capacity: 1})
		sched := &chaos.Schedule{Override: func(conn int) (chaos.Plan, bool) {
			if conn < 6 {
				// Enough consecutive dial refusals to trip the breaker
				// (threshold 3) through at least one open → half-open cycle.
				return chaos.Plan{Kind: chaos.FaultRefuse, RefuseDial: true}, true
			}
			return chaos.Plan{Kind: chaos.FaultNone}, true
		}}
		p := chaosProxy(t, backend, sched)
		nr := fastRecovery([]string{p.Addr()})
		nr.ShardSize = 2
		nr.MaxRetries = 10
		nr.Logf = t.Logf

		// Poll live stats while the run rides out the refusals: the open
		// breaker must be observable mid-run, not just inferable after.
		done := make(chan []fleet.JobResult, 1)
		go func() {
			done <- nr.Run(context.Background(), fleet.Config{Workers: 1, Seed: 17}, specJobs(n, true))
		}()
		sawOpen := false
		var results []fleet.JobResult
	poll:
		for {
			select {
			case results = <-done:
				break poll
			case <-time.After(time.Millisecond):
				if st := nr.Stats(); len(st.Hosts) == 1 && st.Hosts[0].Breaker != fleetnet.BreakerClosed {
					sawOpen = true
				}
			}
		}
		if err := fleet.FirstError(results); err != nil {
			t.Fatal(err)
		}
		if !sawOpen {
			t.Fatal("breaker never left closed despite 6 consecutive dial refusals")
		}
		st := nr.Stats()
		assertStatsConsistent(t, st, n/2)
		h := st.Hosts[0]
		if h.Breaker != fleetnet.BreakerClosed {
			t.Fatalf("breaker should close again after recovery, got %s", h.Breaker)
		}
		if h.ConnectAttempts < 7 {
			t.Fatalf("expected >= 7 dials (6 refused + success), got %d", h.ConnectAttempts)
		}
		if h.LastErr == "" {
			t.Fatal("six refused dials left no last error")
		}
	})

	t.Run("hedges", func(t *testing.T) {
		const n = 4
		slowBackend := startServer(t, &fleetnet.Server{Capacity: 1})
		sched := &chaos.Schedule{Override: func(int) (chaos.Plan, bool) {
			return chaos.Plan{Kind: chaos.FaultDelay, DelayEvery: 1, Delay: 150 * time.Millisecond}, true
		}}
		slow := chaosProxy(t, slowBackend, sched)
		healthyBackend := startServer(t, &fleetnet.Server{Capacity: 1})
		healthy := startSlowProxy(t, healthyBackend, 400*time.Millisecond)

		nr := fleetnet.New([]string{slow.Addr(), healthy})
		nr.ShardSize = 2
		nr.HedgeAfter = 200 * time.Millisecond
		nr.Logf = t.Logf
		if err := fleet.FirstError(nr.Run(context.Background(), fleet.Config{Workers: 1, Seed: 5}, specJobs(n, true))); err != nil {
			t.Fatal(err)
		}
		st := nr.Stats()
		assertStatsConsistent(t, st, n/2)
		if st.Hedges < 1 {
			t.Fatalf("molasses host produced no hedges: %s", st)
		}
	})
}

// TestChaosNoGoroutineLeaks: a chaotic run — drops, redials, breaker
// cycles — unwinds to the baseline goroutine count once daemons shut
// down. Mirrors TestNoGoroutineLeaks for the recovery machinery.
func TestChaosNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	s1 := &fleetnet.Server{Capacity: 2}
	ln1, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done1 := make(chan struct{})
	go func() { s1.Serve(context.Background(), ln1); close(done1) }()
	sched := chaos.NewSchedule(77, 4)
	p, err := chaos.Start(ln1.Addr().String(), sched, nil)
	if err != nil {
		t.Fatal(err)
	}

	nr := fastRecovery([]string{p.Addr()})
	nr.ShardSize = 2
	nr.MaxRetries = 50
	if err := fleet.FirstError(nr.Run(context.Background(), fleet.Config{Workers: 1, Seed: 13}, specJobs(4, true))); err != nil {
		t.Fatal(err)
	}
	p.Close()
	s1.Shutdown()
	<-done1

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			nb := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:nb])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
