package net_test

import (
	"bufio"
	"context"
	"encoding/json"
	stdnet "net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	fleetnet "repro/internal/fleet/net"
)

// e2eSpec is a small baseline-only sweep (no predictor training) so the
// round trip stays fast.
const e2eSpec = `{
  "version": 1,
  "name": "e2e",
  "workloads": ["skype", "youtube"],
  "schemes": [{"name": "baseline"}],
  "duration": {"scale": 0.05},
  "seeds": {"policy": "indexed", "base": 7},
  "trace_free": true
}`

// longSpec is a sweep big enough (13 workloads × 100 simulated hours)
// that a cancel or shutdown issued tens of milliseconds after submission
// always lands mid-run, never after completion.
const longSpec = `{
  "version": 1,
  "workloads": ["antutu-cpu", "antutu-cpu-gpu-ram", "antutu-userexp",
                "antutu-full", "antutu-cpu-90min", "antutu-tester",
                "gfxbench", "vellamo", "skype", "youtube", "record",
                "charging", "game"],
  "schemes": [{"name": "baseline"}],
  "duration": {"sec": 360000},
  "seeds": {"policy": "indexed", "base": 7},
  "trace_free": true
}`

// submit posts a spec and returns the job ID.
func submit(t *testing.T, ts *httptest.Server, spec string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var body struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.ID == "" {
		t.Fatal("submit returned no job id")
	}
	return body.ID
}

// poll fetches a job's status body.
func poll(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body
}

// waitStatus polls until the job reaches a terminal status.
func waitStatus(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		body := poll(t, ts, id)
		switch body["status"] {
		case "done", "failed", "cancelled":
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %v", id, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestJobServerRoundTrip is the ustafleetd e2e: submit a scenario over
// HTTP, poll to completion, stream the merged telemetry, and check the
// stream is JSONL ordered by submission index. The job executes through a
// real TCP worker daemon, so the whole service stack is on the wire.
func TestJobServerRoundTrip(t *testing.T) {
	worker := startServer(t, &fleetnet.Server{Capacity: 2})
	js := fleetnet.NewJobServer(fleetnet.New([]string{worker}))
	js.Workers = 2
	defer js.Close()
	ts := httptest.NewServer(js.Handler())
	defer ts.Close()

	id := submit(t, ts, e2eSpec)
	final := waitStatus(t, ts, id)
	if final["status"] != "done" {
		t.Fatalf("job finished %v", final)
	}
	if final["done"] != float64(2) || final["total"] != float64(2) {
		t.Fatalf("progress = %v/%v, want 2/2", final["done"], final["total"])
	}
	if _, ok := final["comfort"]; !ok {
		t.Fatalf("finished job carries no analytics: %v", final)
	}

	resp, err := http.Get(ts.URL + "/jobs/" + id + "/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("telemetry status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("telemetry content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines, lastJob := 0, 0
	for sc.Scan() {
		var row struct {
			Job  int     `json:"job"`
			T    float64 `json:"t"`
			Skin float64 `json:"skin_c"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("line %d is not JSON: %v (%q)", lines, err, sc.Text())
		}
		if row.Job < lastJob {
			t.Fatalf("line %d: job %d after job %d — stream not in submission order", lines, row.Job, lastJob)
		}
		lastJob = row.Job
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("telemetry stream was empty")
	}
	if lastJob != 1 {
		t.Fatalf("stream ended on job %d, want both jobs present", lastJob)
	}

	// Unknown jobs 404.
	if r404, err := http.Get(ts.URL + "/jobs/zzz"); err != nil {
		t.Fatal(err)
	} else {
		r404.Body.Close()
		if r404.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job status = %d", r404.StatusCode)
		}
	}
}

// TestJobServerCancel: a long-running job is cancelled over HTTP and
// reaches the cancelled status; the telemetry stream terminates.
func TestJobServerCancel(t *testing.T) {
	js := fleetnet.NewJobServer(nil) // local execution
	js.Workers = 1
	defer js.Close()
	ts := httptest.NewServer(js.Handler())
	defer ts.Close()

	id := submit(t, ts, longSpec)
	time.Sleep(50 * time.Millisecond)
	resp, err := http.Post(ts.URL+"/jobs/"+id+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	final := waitStatus(t, ts, id)
	if final["status"] != "cancelled" {
		t.Fatalf("status after cancel = %v", final["status"])
	}
}

// TestJobServerAdmission: submissions beyond the bucket's burst get 429.
func TestJobServerAdmission(t *testing.T) {
	js := fleetnet.NewJobServer(nil)
	js.Workers = 1
	js.Admission = fleetnet.NewTokenBucket(0.001, 1) // one admit, then dry for hours
	defer js.Close()
	ts := httptest.NewServer(js.Handler())
	defer ts.Close()

	id := submit(t, ts, e2eSpec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(e2eSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submission status = %d, want 429", resp.StatusCode)
	}
	if got := waitStatus(t, ts, id); got["status"] != "done" {
		t.Fatalf("admitted job finished %v", got)
	}
}

// TestJobServerBadSpec: malformed submissions are rejected with 400 and
// leave no job behind.
func TestJobServerBadSpec(t *testing.T) {
	js := fleetnet.NewJobServer(nil)
	defer js.Close()
	ts := httptest.NewServer(js.Handler())
	defer ts.Close()

	for _, body := range []string{"{", `{"version": 99}`, ""} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestJobServerShutdownMidRun: closing the server mid-run cancels the job
// and leaks no goroutines — the daemon-killed-mid-run contract.
func TestJobServerShutdownMidRun(t *testing.T) {
	before := runtime.NumGoroutine()

	worker := &fleetnet.Server{Capacity: 1}
	addr := startWorkerForLeakTest(t, worker)
	js := fleetnet.NewJobServer(fleetnet.New([]string{addr}))
	js.Workers = 1
	ts := httptest.NewServer(js.Handler())

	id := submit(t, ts, longSpec)
	time.Sleep(100 * time.Millisecond)
	js.Close() // kills the run mid-flight
	if got := poll(t, ts, id); got["status"] != "cancelled" && got["status"] != "failed" {
		t.Fatalf("status after shutdown = %v", got["status"])
	}
	ts.Close()
	worker.Shutdown()

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after shutdown: %d before, %d now\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestJobServerDrainLifecycle: once Close begins draining, new
// submissions get 503 with a Retry-After hint, a second Close is
// harmless, and finished jobs stay queryable for stragglers.
func TestJobServerDrainLifecycle(t *testing.T) {
	js := fleetnet.NewJobServer(nil)
	js.Workers = 1
	ts := httptest.NewServer(js.Handler())
	defer ts.Close()

	id := submit(t, ts, e2eSpec)
	if got := waitStatus(t, ts, id); got["status"] != "done" {
		t.Fatalf("pre-drain job finished %v", got)
	}
	js.Close()
	js.Close() // idempotent

	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(e2eSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("draining 503 carries no Retry-After header")
	}

	// The drained server still answers status queries for finished jobs.
	if got := poll(t, ts, id); got["status"] != "done" {
		t.Fatalf("post-drain status = %v, want done", got["status"])
	}
}

// startWorkerForLeakTest is startServer without t.Cleanup (the test
// shuts the server down itself to measure goroutines afterwards).
func startWorkerForLeakTest(t *testing.T, s *fleetnet.Server) string {
	t.Helper()
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(context.Background(), ln)
	return ln.Addr().String()
}
