package net

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/fleet/durable"
	"repro/internal/fleet/shard"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sink"
	"repro/internal/workload"
)

// JobServer is the persistent submit/poll side of the fleet service
// (`ustafleetd`): scenario specs come in over HTTP, run asynchronously on
// a fleet runner (multi-host through Runner, or the in-process pool), and
// are observable while running — status and progress by polling, ordered
// JSONL telemetry by streaming, and rolling aggregates over SSE.
// Endpoints:
//
//	POST /jobs                  submit a scenario spec (JSON body) → {"id": ...}
//	GET  /jobs                  list submitted jobs, submission order
//	GET  /jobs/{id}             status, progress, and (when done) analytics
//	POST /jobs/{id}/cancel      abort a running job
//	GET  /jobs/{id}/telemetry   JSONL sample stream merged into submission order
//	GET  /jobs/{id}/events      SSE stream of ordered aggregate snapshots
//	GET  /metrics               Prometheus text exposition (jobs, classes, hosts)
//	GET  /fleet                 merged per-host recovery/saturation table
//	GET  /                      embedded live dashboard (internal/obs)
//
// Construct with NewJobServer, mount Handler, Close on shutdown.
type JobServer struct {
	// Runner executes submitted sweeps (nil: the in-process pool). A
	// *Runner (multi-host coordinator) or *shard.Runner is copied per job
	// with the sweep's predictor injected, mirroring RunScenario.
	Runner fleet.Runner
	// Workers bounds each job's worker pool (<= 0: GOMAXPROCS).
	Workers int
	// Device is the base configuration grids expand against (nil: default).
	Device *device.Config
	// Predictor, when set, backs usta schemes without per-job training.
	Predictor *core.Predictor
	// Admission gates POST /jobs: a submission that cannot take a token
	// immediately is answered 429 (nil: always admit).
	Admission *TokenBucket
	// Store, when set, journals every submission and its completed-cell
	// ledger to a write-ahead log (`ustafleetd -state-dir`): finished jobs'
	// status and results survive a restart, and interrupted sweeps resume
	// by dispatching only unfinished cells — byte-identical to an
	// uninterrupted run, because every cell's seed was resolved at submit
	// time. Call Recover before serving. Journaling failures degrade the
	// affected job to unjournaled (logged once, visible in its status)
	// instead of failing submissions.
	Store *durable.Store
	// JobDeadline, when positive, bounds each sweep's wall-clock execution:
	// a job still running that long after submission (or recovery) fails
	// with a deadline error instead of pinning the server forever.
	JobDeadline time.Duration
	// Logf, when set, receives one line per job-lifecycle event.
	Logf func(format string, args ...any)

	mu     sync.Mutex
	jobs   map[string]*serverJob
	order  []string // job IDs in submission order
	seq    int
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	closed bool
}

// NewJobServer creates a job server executing on the given runner (nil:
// the in-process pool).
func NewJobServer(r fleet.Runner) *JobServer {
	ctx, cancel := context.WithCancel(context.Background())
	return &JobServer{Runner: r, jobs: make(map[string]*serverJob), ctx: ctx, cancel: cancel}
}

func (s *JobServer) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Close cancels every running job and waits for them to unwind. The
// handler keeps answering status queries afterwards; new submissions are
// rejected.
func (s *JobServer) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

// serverJob is one submitted sweep's lifecycle record.
type serverJob struct {
	id string

	mu          sync.Mutex
	status      string // "running", "done", "failed", "cancelled"
	done        int
	total       int
	errMsg      string
	comfort     []analytics.UserComfort
	userCancel  bool // POST /jobs/{id}/cancel (vs a server drain)
	unjournaled bool // journaling failed; job served from memory only
	resumed     int  // cells restored from the ledger instead of re-run
	deadlineSec float64

	bus      *Bus
	agg      *obs.Aggregator    // live aggregation state (nil until the grid exists)
	statsFn  func() RunnerStats // per-job runner-clone stats (nil off the networked runner)
	busReady chan struct{}      // closed once bus (and total) exist
	cancel   context.CancelFunc
	finished chan struct{}
	jlog     *durable.JobLog // nil: no store, or journaling degraded at Begin
}

// statusBody is the GET /jobs/{id} response shape.
type statusBody struct {
	ID      string                  `json:"id"`
	Status  string                  `json:"status"`
	Done    int                     `json:"done"`
	Total   int                     `json:"total"`
	Error   string                  `json:"error,omitempty"`
	Comfort []analytics.UserComfort `json:"comfort,omitempty"`
	// Unjournaled marks a job the state store could not journal (disk
	// full, permissions): it runs and serves from memory but will not
	// survive a restart.
	Unjournaled bool `json:"unjournaled,omitempty"`
	// Resumed counts cells restored from the ledger after a restart.
	Resumed int `json:"resumed,omitempty"`
	// DeadlineSec is the sweep's wall-clock deadline (0: none).
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
}

func (j *serverJob) snapshot() statusBody {
	j.mu.Lock()
	defer j.mu.Unlock()
	return statusBody{ID: j.id, Status: j.status, Done: j.done, Total: j.total,
		Error: j.errMsg, Comfort: j.comfort, Unjournaled: j.unjournaled,
		Resumed: j.resumed, DeadlineSec: j.deadlineSec}
}

// Handler returns the HTTP API.
func (s *JobServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /fleet", s.handleFleet)
	mux.HandleFunc("GET /{$}", s.handleDashboard)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *JobServer) lookup(r *http.Request) (*serverJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *JobServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	spec, err := scenario.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "scenario spec: %v", err)
		return
	}
	if s.Admission != nil && !s.Admission.Allow(1) {
		writeError(w, http.StatusTooManyRequests, "admission control: try again later")
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// Drains are brief: tell clients when to retry instead of letting
		// the closing listener cut them off mid-flight.
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "server draining; retry against a live replica")
		return
	}
	s.seq++
	id := fmt.Sprintf("j%d", s.seq)
	ctx, cancel := context.WithCancel(s.ctx)
	j := &serverJob{id: id, status: "running", cancel: cancel,
		deadlineSec: s.JobDeadline.Seconds(),
		busReady:    make(chan struct{}), finished: make(chan struct{})}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.wg.Add(1)
	s.mu.Unlock()
	if s.Store != nil {
		// Journal the submission (synced) before acknowledging: an accepted
		// job must survive an immediate crash. A store failure degrades the
		// job to unjournaled rather than rejecting the submission.
		jlog, err := s.Store.Begin(durable.Submission{
			ID: id, Spec: body, DeadlineSec: s.JobDeadline.Seconds()})
		if err != nil {
			s.journalDegraded(j, err)
		} else {
			j.jlog = jlog
		}
	}
	s.logf("net: job %s: submitted", id)
	go func() {
		defer s.wg.Done()
		defer cancel()
		if s.JobDeadline > 0 {
			var dcancel context.CancelFunc
			ctx, dcancel = context.WithTimeout(ctx, s.JobDeadline)
			defer dcancel()
		}
		s.execute(ctx, j, spec, nil)
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

// journalDegraded marks a job unjournaled after a state-store failure,
// logging the cause once; the job keeps running and serving from memory.
func (s *JobServer) journalDegraded(j *serverJob, err error) {
	j.mu.Lock()
	first := !j.unjournaled
	j.unjournaled = true
	j.mu.Unlock()
	if first {
		s.logf("net: job %s: state journaling disabled: %v (job continues unjournaled)", j.id, err)
	}
}

// journal applies one journaling operation, degrading the job on failure.
// The job log latches its first error, so a dead disk costs one failed
// syscall per call here, not a growing pile of them.
func (s *JobServer) journal(j *serverJob, op func(l *durable.JobLog) error) {
	j.mu.Lock()
	l := j.jlog
	j.mu.Unlock()
	if l == nil {
		return
	}
	if err := op(l); err != nil {
		s.journalDegraded(j, err)
	}
}

func (s *JobServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *JobServer) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	// User cancels journal a terminal record (the job must stay cancelled
	// across restarts); a server drain's cancellation must not, so that
	// drained jobs resume. The flag is how execute tells them apart.
	j.userCancel = true
	j.mu.Unlock()
	j.cancel()
	writeJSON(w, http.StatusOK, map[string]string{"id": j.id, "status": "cancelling"})
}

func (s *JobServer) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	// The bus exists once the grid is expanded; a submission that failed
	// before that closes busReady with a nil bus.
	select {
	case <-j.busReady:
	case <-r.Context().Done():
		return
	}
	j.mu.Lock()
	bus := j.bus
	j.mu.Unlock()
	if bus == nil {
		writeError(w, http.StatusConflict, "job produced no telemetry: %s", j.snapshot().Error)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	var buf []byte
	bus.Stream(r.Context(), func(job int, smp device.Sample) error {
		buf = sink.AppendJSONL(buf[:0], sink.JobID(job), smp)
		if _, err := w.Write(buf); err != nil {
			return err
		}
		if fl != nil {
			fl.Flush()
		}
		return nil
	})
}

// finishJob journals the terminal record when the outcome should survive
// a restart — everything except a drain's cancellation (and a cancelled
// run's ledger already skipped the cells the cancel interrupted), so a
// drained or killed coordinator resumes the sweep on recovery.
func (s *JobServer) finishJob(j *serverJob, st durable.Status) {
	j.mu.Lock()
	userCancel := j.userCancel
	l := j.jlog
	j.jlog = nil
	j.mu.Unlock()
	if l == nil {
		return
	}
	if st.Status != "cancelled" || userCancel {
		if err := l.Finish(st); err != nil {
			s.journalDegraded(j, err)
		}
	}
	if err := l.Close(); err != nil {
		s.journalDegraded(j, err)
	}
}

// execute runs one submitted sweep to completion, mirroring the public
// RunScenario pipeline (self-trained predictor, trace-free violation
// accumulation, analytics join) with the bus as the telemetry sink. rec,
// when non-nil, is the job's replayed WAL state: the run verifies the
// re-expanded grid against the journaled cell table, restores ledgered
// cells without re-running them, and dispatches only the remainder —
// byte-identical to an uninterrupted run, because every cell's seed was
// pinned at submit time.
func (s *JobServer) execute(ctx context.Context, j *serverJob, spec *scenario.Spec, rec *durable.RecoveredJob) {
	fail := func(err error) {
		j.mu.Lock()
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			j.status = "cancelled"
		} else {
			j.status = "failed"
		}
		j.errMsg = err.Error()
		agg, status := j.agg, j.status
		j.mu.Unlock()
		s.finishJob(j, durable.Status{Status: status, Error: err.Error()})
		if agg != nil {
			// Terminal frame for event-stream subscribers.
			agg.Finish(status)
		}
		// Unblock telemetry waiters whether or not a bus ever existed.
		select {
		case <-j.busReady:
		default:
			close(j.busReady)
		}
		close(j.finished)
		s.logf("net: job %s: %s: %v", j.id, j.snapshot().Status, err)
	}

	devCfg := device.DefaultConfig()
	if s.Device != nil {
		devCfg = *s.Device
	}
	pred := s.Predictor
	if pred == nil && spec.NeedsPredictor() {
		corpusSeed := spec.Predictor.CorpusSeed
		if corpusSeed == 0 {
			corpusSeed = 42
		}
		bs := workload.Benchmarks(corpusSeed)
		loads := make([]workload.Workload, len(bs))
		for i, b := range bs {
			loads[i] = b
		}
		corpus, err := core.CollectCorpusContext(ctx, devCfg, loads, spec.Predictor.CorpusPerRunSec, s.Workers)
		if err != nil {
			fail(fmt.Errorf("scenario corpus: %w", err))
			return
		}
		if pred, err = core.Train(corpus, nil); err != nil {
			fail(fmt.Errorf("scenario predictor: %w", err))
			return
		}
	}
	grid, err := spec.Expand(scenario.Env{Device: &devCfg, Predictor: pred})
	if err != nil {
		fail(err)
		return
	}

	// Resolve the resume plan: verify a recovered ledger against the
	// re-expanded grid, or journal the fresh cell table.
	var journaledCells []durable.CellRef
	done := map[int]durable.CellResult{}
	if rec != nil {
		journaledCells, done = rec.Cells, rec.Done
	}
	plan, err := durable.NewPlan(grid, journaledCells, done)
	if err != nil {
		fail(err)
		return
	}
	if journaledCells == nil {
		s.journal(j, func(l *durable.JobLog) error { return l.Cells(durable.GridCells(grid)) })
	}

	bus := NewBus(len(grid.Jobs))
	agg := obs.NewAggregator(grid)
	runner := s.jobRunner(pred)
	j.mu.Lock()
	j.bus = bus
	j.agg = agg
	j.total = len(grid.Jobs)
	j.resumed = len(plan.Done)
	if nr, ok := runner.(*Runner); ok {
		// The per-job clone owns the run's recovery stats; retain its
		// accessor so /fleet and /metrics see them, and poll it into the
		// job's own event-stream snapshots.
		j.statsFn = nr.Stats
		agg.FleetFn = func() any { return nr.Stats() }
	}
	j.mu.Unlock()
	close(j.busReady)

	// Restore ledgered cells before the live subset streams: the bus
	// closes their (empty) telemetry slots and the aggregator folds their
	// journaled violation counters through the same arithmetic as a live
	// completion. Ascending order keeps the replayed state deterministic.
	restoredIdx := make([]int, 0, len(plan.Done))
	for idx := range plan.Done {
		restoredIdx = append(restoredIdx, idx)
	}
	sort.Ints(restoredIdx)
	for _, idx := range restoredIdx {
		c := plan.Done[idx]
		bus.Finish(idx)
		agg.SeedJob(durable.RestoredResult(c), c.Violation)
		j.mu.Lock()
		j.done++
		j.mu.Unlock()
	}

	subGrid, remap, err := plan.SubGrid()
	if err != nil {
		fail(err)
		return
	}
	toFull := func(i int) int {
		if remap == nil {
			return i
		}
		return remap[i]
	}

	// Sinks are sized and indexed for the full grid; a subset run feeds
	// them through the remap adapter so ledger, bus and aggregator state
	// key on full-grid indices throughout.
	runSink := sink.Sink(sink.NewTee(bus, agg))
	var vs *analytics.ViolationSink
	if spec.TraceFree {
		vs = analytics.NewViolationSink(grid.Limits())
		runSink = sink.NewTee(vs, bus, agg)
	}
	if remap != nil {
		runSink = sink.NewRemap(runSink, remap)
	}
	limits := grid.Limits()
	cfg := fleet.Config{
		Workers: s.Workers,
		Seed:    spec.Seeds.Base,
		Sink:    runSink,
		OnResult: func(res fleet.JobResult) {
			full := res
			full.Index = toFull(res.Index)
			// Cells interrupted by cancellation (drain, deadline) are not
			// ledgered: their partial results must re-run on resume.
			if !errors.Is(res.Err, context.Canceled) && !errors.Is(res.Err, context.DeadlineExceeded) {
				var acc *analytics.ViolationAccum
				if vs != nil {
					a := vs.Accum(full.Index)
					acc = &a
				}
				entry := durable.CellEntry(full, limits[full.Index], acc)
				s.journal(j, func(l *durable.JobLog) error { return l.CellDone(entry) })
			}
			bus.Finish(full.Index)
			agg.JobDone(full)
			j.mu.Lock()
			j.done++
			j.mu.Unlock()
		},
		Runner: runner,
	}
	subResults := fleet.New(cfg).Run(ctx, subGrid.Jobs)
	bus.Close()

	// Merge: live subset results land at their full-grid indices, ledgered
	// cells are restored around them.
	results := subResults
	if remap != nil {
		results = make([]fleet.JobResult, len(grid.Jobs))
		for i, res := range subResults {
			res.Index = remap[i]
			results[res.Index] = res
		}
		plan.MergeInto(results)
	}
	stats, err := analytics.Flatten(grid, results)
	if err != nil {
		fail(err)
		return
	}
	if vs != nil {
		vs.Apply(stats)
	}
	plan.ApplyViolations(stats)
	comfort := analytics.ComfortByUser(stats)

	j.mu.Lock()
	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			j.status = "failed"
			j.errMsg = fmt.Sprintf("job deadline (%gs) exceeded", j.deadlineSec)
		} else {
			j.status = "cancelled"
			j.errMsg = err.Error()
		}
	} else if err := fleet.FirstError(results); err != nil {
		j.status = "failed"
		j.errMsg = err.Error()
	} else {
		j.status = "done"
	}
	j.comfort = comfort
	status, errMsg := j.status, j.errMsg
	j.mu.Unlock()
	s.finishJob(j, durable.Status{Status: status, Error: errMsg, Comfort: comfort})
	// Terminal frame: subscribers drain and disconnect on Final. The
	// aggregates it carries are pinned byte-equal to the post-hoc stats
	// computed above — see TestEventsFinalSnapshotMatchesAnalytics.
	agg.Finish(status)
	close(j.finished)
	s.logf("net: job %s: %s (%d jobs, %d resumed)", j.id, j.snapshot().Status, len(results), len(plan.Done))
}

// jobRunner resolves the per-job runner: the server's runner, copied with
// the sweep's predictor injected when it is a networked or shard
// coordinator (the server's own runner is never mutated — jobs run
// concurrently).
func (s *JobServer) jobRunner(pred *core.Predictor) fleet.Runner {
	switch r := s.Runner.(type) {
	case *Runner:
		cp := *r
		cp.Predictor = pred
		// Each job clone tracks its own run — never share a stats cell a
		// PublishStatsTo redirect may have left on the server's runner.
		cp.statsDst = nil
		return &cp
	case *shard.Runner:
		cp := *r
		if pred != nil {
			cp.Predictor = pred
		}
		return &cp
	default:
		return s.Runner
	}
}
