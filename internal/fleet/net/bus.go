package net

import (
	"context"
	"sync"

	"repro/internal/device"
	"repro/internal/sink"
)

// Bus is the job server's telemetry aggregation point: a sink.Sink that
// collects per-worker sample streams (arriving in any completion order)
// and replays them to subscribers merged into submission order — all of
// job 0's samples, then job 1's, and so on. Subscribers can attach at any
// time, including mid-run and after the run: each gets the full ordered
// stream from the beginning, streamed live as the emission frontier
// advances. A job's samples become emittable once every lower-indexed job
// has finished (its own may still be arriving — a subscriber tails them).
type Bus struct {
	mu      sync.Mutex
	cond    *sync.Cond
	samples [][]device.Sample
	done    []bool
	closed  bool
}

// NewBus creates a bus for a run of total jobs.
func NewBus(total int) *Bus {
	b := &Bus{samples: make([][]device.Sample, total), done: make([]bool, total)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Accept implements sink.Sink: samples accumulate per job. Out-of-range
// job IDs are dropped.
func (b *Bus) Accept(id sink.JobID, s device.Sample) {
	i := int(id)
	b.mu.Lock()
	if i < 0 || i >= len(b.samples) || b.done[i] {
		b.mu.Unlock()
		return
	}
	b.samples[i] = append(b.samples[i], s)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Finish marks job i complete: its sample list is final. The runner's
// OnResult hook calls this as results arrive.
func (b *Bus) Finish(i int) {
	b.mu.Lock()
	if i >= 0 && i < len(b.done) {
		b.done[i] = true
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Close ends the run: every job is finalized (failed jobs keep whatever
// partial telemetry they streamed) and subscribers drain to completion.
func (b *Bus) Close() error {
	b.mu.Lock()
	b.closed = true
	for i := range b.done {
		b.done[i] = true
	}
	b.mu.Unlock()
	b.cond.Broadcast()
	return nil
}

// Stream replays the merged telemetry to fn in submission order, blocking
// while the stream is live: samples of job i are delivered once jobs
// 0..i-1 have finished, tailing job i's own arrivals. It returns nil when
// the bus is closed and everything was delivered, or the context's error.
// fn errors abort the subscription.
func (b *Bus) Stream(ctx context.Context, fn func(job int, s device.Sample) error) error {
	// A cond var cannot select on ctx; a context watcher broadcasts so
	// waiting subscribers notice cancellation.
	stop := context.AfterFunc(ctx, func() { b.cond.Broadcast() })
	defer stop()

	// Cursor invariant: the cursor sits on job only after jobs 0..job-1
	// finished and were fully delivered, so delivering the cursor job's
	// samples as they arrive is always frontier-safe.
	job, off := 0, 0
	for {
		b.mu.Lock()
		var deliver device.Sample
		have := false
		for !have {
			if err := ctx.Err(); err != nil {
				b.mu.Unlock()
				return err
			}
			if job >= len(b.samples) {
				b.mu.Unlock()
				return nil
			}
			switch {
			case off < len(b.samples[job]):
				deliver = b.samples[job][off]
				have = true
			case b.done[job]:
				job, off = job+1, 0
			default:
				b.cond.Wait()
			}
		}
		b.mu.Unlock()
		if err := fn(job, deliver); err != nil {
			return err
		}
		off++
	}
}
