package net

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fleet/durable"
	"repro/internal/scenario"
)

// Recover replays the state store and restores every journaled job before
// the server starts answering requests. Terminal jobs (done, failed,
// cancelled by a user) come back queryable with their final status and
// comfort tables; non-terminal jobs — interrupted by a crash or a drain —
// relaunch immediately and resume from their completed-cell ledger,
// re-running only unfinished cells. The ID counter is seeded past every
// recovered ID so a restarted server never reissues one.
//
// Call once, after configuring the server and before serving; it is a
// no-op without a Store.
func (s *JobServer) Recover() error {
	if s.Store == nil {
		return nil
	}
	recs, err := s.Store.Recover()
	if err != nil {
		return err
	}
	for i := range recs {
		rec := &recs[i]
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			if rec.Log != nil {
				rec.Log.Close()
			}
			return fmt.Errorf("net: recover on closed server")
		}
		if n, ok := numericJobID(rec.ID); ok && n > s.seq {
			s.seq = n
		}
		if _, dup := s.jobs[rec.ID]; dup {
			s.mu.Unlock()
			if rec.Log != nil {
				rec.Log.Close()
			}
			continue
		}
		j := s.restoreJob(rec)
		s.jobs[rec.ID] = j
		s.order = append(s.order, rec.ID)
		s.mu.Unlock()
		s.logf("net: job %s: recovered (%s, %d cells ledgered)", rec.ID, j.snapshot().Status, len(rec.Done))
	}
	return nil
}

// restoreJob builds the serverJob for one replayed log and, for
// non-terminal jobs, relaunches execution. Caller holds s.mu.
func (s *JobServer) restoreJob(rec *durable.RecoveredJob) *serverJob {
	terminal := func(status, errMsg string, st *durable.Status) *serverJob {
		j := &serverJob{id: rec.ID, status: status, errMsg: errMsg,
			cancel:   func() {},
			busReady: make(chan struct{}), finished: make(chan struct{})}
		if st != nil {
			j.comfort = st.Comfort
			j.done = len(rec.Done)
			j.total = len(rec.Cells)
			if st.Status == "done" {
				// A clean finish completed every cell even if ledger batching
				// lost trailing entries.
				j.done = len(rec.Cells)
			}
		}
		if rec.Sub != nil {
			j.deadlineSec = rec.Sub.DeadlineSec
		}
		close(j.busReady) // no bus: telemetry answers 409, status works
		close(j.finished)
		return j
	}

	if rec.Err != nil {
		// Unreadable log: surface the job as failed instead of silently
		// dropping it; the file stays on disk for inspection.
		j := terminal("failed", fmt.Sprintf("state log unreadable: %v", rec.Err), nil)
		j.unjournaled = true
		return j
	}
	if rec.Status != nil {
		return terminal(rec.Status.Status, rec.Status.Error, rec.Status)
	}

	// Non-terminal: resume. The spec bytes were journaled exactly as
	// submitted, so re-parsing them is the same validation the original
	// submission passed.
	spec, err := scenario.Parse(rec.Sub.Spec)
	if err != nil {
		j := terminal("failed", fmt.Sprintf("recovered spec no longer parses: %v", err), nil)
		j.jlog = rec.Log
		s.finishJob(j, durable.Status{Status: j.status, Error: j.errMsg})
		return j
	}
	ctx, cancel := context.WithCancel(s.ctx)
	j := &serverJob{id: rec.ID, status: "running", cancel: cancel,
		deadlineSec: rec.Sub.DeadlineSec,
		resumed:     len(rec.Done),
		jlog:        rec.Log,
		busReady:    make(chan struct{}), finished: make(chan struct{})}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		if j.deadlineSec > 0 {
			// The deadline restarts as a fresh window: wall-clock spent before
			// the crash is unknowable and charging it would strand the resume.
			var dcancel context.CancelFunc
			ctx, dcancel = context.WithTimeout(ctx, time.Duration(j.deadlineSec*float64(time.Second)))
			defer dcancel()
		}
		s.execute(ctx, j, spec, rec)
	}()
	return j
}

// numericJobID parses the server's `j<N>` ID convention.
func numericJobID(id string) (int, bool) {
	if len(id) < 2 || id[0] != 'j' {
		return 0, false
	}
	n := 0
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}
