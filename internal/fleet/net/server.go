// Package net promotes the sharded fleet from subprocess pipes to a
// network service: the same versioned length-prefixed frames of
// internal/fleet/wire, moved onto TCP sockets. Three layers live here:
//
//   - Server: the long-lived worker daemon (`ustaworker -listen addr`). It
//     accepts connections, answers a hello handshake (protocol version +
//     shard capacity), executes ShardRequest frames through the same
//     shard.ServeRequest path the pipe worker uses, streams sample/result
//     frames back, and pulses heartbeats while a shard runs.
//   - Runner: the coordinator, a fleet.Runner over a static host inventory
//     with liveness (heartbeat read deadlines), per-worker in-flight caps,
//     retry-on-worker-loss that re-dispatches only the unreported jobs of
//     a lost shard, and token-bucket admission on job intake. Seeds are
//     resolved coordinator-side through fleet.EffectiveSeed, so a
//     distributed run is byte-identical to LocalRunner — even after a
//     worker dies mid-shard and its jobs are retried elsewhere.
//   - JobServer: a persistent submit/poll/cancel HTTP job service
//     (`ustafleetd`) whose telemetry endpoint streams JSONL merged into
//     submission order by Bus.
package net

import (
	"context"
	"errors"
	"fmt"
	"io"
	stdnet "net"
	"runtime"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/fleet/shard"
	"repro/internal/fleet/wire"
)

// DefaultHeartbeatInterval is how often a busy worker pulses a heartbeat
// frame. The coordinator's default read deadline is several intervals, so
// one delayed pulse never kills a healthy worker.
const DefaultHeartbeatInterval = 2 * time.Second

// Server is the worker daemon: a TCP front end over shard.ServeRequest.
// The zero value is usable; Capacity and HeartbeatInterval default at
// serve time.
type Server struct {
	// Capacity is the daemon's concurrent-shard limit, advertised in the
	// hello handshake and enforced with a semaphore across connections
	// (<= 0: GOMAXPROCS). The coordinator opens at most Capacity
	// simultaneous dispatch slots per host.
	Capacity int
	// HeartbeatInterval is the pulse period while a shard executes
	// (<= 0: DefaultHeartbeatInterval).
	HeartbeatInterval time.Duration
	// Logf, when set, receives one line per connection-level event (accept,
	// shard served, protocol error). Nil is silent.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	ln       stdnet.Listener
	conns    map[stdnet.Conn]struct{}
	draining bool
	wg       sync.WaitGroup
}

// capacity resolves the advertised concurrent-shard limit.
func (s *Server) capacity() int { return fleet.NormalizeWorkers(s.Capacity) }

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// ListenAndServe binds addr and serves until ctx is cancelled or Shutdown
// is called; the listen address becomes visible through Addr once bound.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := stdnet.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Addr reports the bound listen address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections on ln until ctx is cancelled or Shutdown is
// called, then waits for in-flight shards to finish. It returns nil on a
// clean shutdown.
func (s *Server) Serve(ctx context.Context, ln stdnet.Listener) error {
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		return errors.New("net: server already serving")
	}
	s.ln = ln
	s.conns = make(map[stdnet.Conn]struct{})
	s.mu.Unlock()

	// Shard executions across all connections share one capacity-wide
	// semaphore; extra connections queue instead of oversubscribing.
	sem := make(chan struct{}, s.capacity())

	stop := context.AfterFunc(ctx, func() { s.Shutdown() })
	defer stop()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			s.wg.Wait()
			if draining || ctx.Err() != nil {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handleConn(ctx, conn, sem)
		}()
	}
}

// Shutdown drains the daemon gracefully: stop accepting, let every
// in-flight shard finish and flush its frames, then close the connections.
// Safe to call concurrently and repeatedly.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Idle connections sit in a blocking read with no shard to finish;
	// close them so their handlers return. Busy handlers notice draining
	// after the in-flight shard completes.
	s.mu.Lock()
	for conn := range s.conns {
		if tc, ok := conn.(*stdnet.TCPConn); ok {
			tc.CloseRead()
		} else {
			conn.Close()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// inFrame is one read outcome from a connection's reader goroutine: a
// frame, or the error that ended the stream.
type inFrame struct {
	f   *wire.Frame
	err error
}

// handleConn speaks the daemon side of the protocol on one connection:
// hello, then a sequence of shard requests, each answered with streamed
// sample/result frames, heartbeats while busy, and a done (or error)
// frame. A cancel frame aborts the in-flight shard; a closed connection
// does the same (the coordinator is gone — stop burning cores).
//
// All reads flow through one reader goroutine feeding a channel, so the
// mid-shard cancel watcher and the between-shards request loop never
// contend for the stream (a polled read deadline could desync the frame
// boundary by timing out mid-frame).
func (s *Server) handleConn(ctx context.Context, conn stdnet.Conn, sem chan struct{}) {
	var wmu sync.Mutex
	write := func(f *wire.Frame) error {
		wmu.Lock()
		defer wmu.Unlock()
		return wire.WriteFrame(conn, f)
	}
	if err := write(&wire.Frame{V: wire.Version, Type: wire.TypeHello,
		Hello: &wire.HelloFrame{Proto: wire.Version, Capacity: s.capacity()}}); err != nil {
		s.logf("net: %s: hello: %v", conn.RemoteAddr(), err)
		return
	}

	frames := make(chan inFrame)
	connDone := make(chan struct{})
	defer close(connDone)
	go func() {
		defer close(frames)
		for {
			f, err := wire.ReadFrame(conn)
			select {
			case frames <- inFrame{f, err}:
			case <-connDone:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	hb := s.HeartbeatInterval
	if hb <= 0 {
		hb = DefaultHeartbeatInterval
	}
	for {
		var in inFrame
		var ok bool
		select {
		case in, ok = <-frames:
			if !ok {
				return
			}
		case <-ctx.Done():
			return
		}
		if in.err != nil {
			if !errors.Is(in.err, io.EOF) && !errors.Is(in.err, stdnet.ErrClosed) && !errors.Is(in.err, io.ErrUnexpectedEOF) {
				// A malformed frame is a protocol violation, not a crash:
				// report it and drop the connection.
				write(&wire.Frame{V: wire.Version, Type: wire.TypeError, Err: in.err.Error()})
				s.logf("net: %s: %v", conn.RemoteAddr(), in.err)
			}
			return
		}
		switch in.f.Type {
		case wire.TypeCancel, wire.TypeHeartbeat:
			// Nothing in flight; ignore.
			continue
		case wire.TypeShard:
		default:
			write(&wire.Frame{V: wire.Version, Type: wire.TypeError,
				Err: fmt.Sprintf("expected a %s frame, got %s", wire.TypeShard, in.f.Type)})
			s.logf("net: %s: unexpected %s frame", conn.RemoteAddr(), in.f.Type)
			return
		}

		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return
		}
		err := s.serveShard(ctx, in.f.Shard, write, frames, hb)
		<-sem
		if err != nil {
			if werr := write(&wire.Frame{V: wire.Version, Type: wire.TypeError, Err: err.Error()}); werr != nil {
				return
			}
			s.logf("net: %s: shard failed: %v", conn.RemoteAddr(), err)
			continue
		}
		if err := write(&wire.Frame{V: wire.Version, Type: wire.TypeDone}); err != nil {
			return
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return
		}
	}
}

// serveShard executes one shard with heartbeats pulsing and a concurrent
// watcher consuming the connection's frame channel for cancel requests (a
// read error there means the coordinator vanished — same response: cancel
// the shard).
func (s *Server) serveShard(ctx context.Context, req *wire.ShardRequest, write func(*wire.Frame) error, frames <-chan inFrame, hb time.Duration) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The worker splits its own cores across its capacity when the
	// coordinator left the pool width unset: a remote coordinator cannot
	// know this host's GOMAXPROCS.
	if req.Workers <= 0 {
		req.Workers = (runtime.GOMAXPROCS(0) + s.capacity() - 1) / s.capacity()
	}

	// Heartbeat pulse: keeps the coordinator's read deadline fed through
	// long, telemetry-free stretches of a shard.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if write(&wire.Frame{V: wire.Version, Type: wire.TypeHeartbeat}) != nil {
					cancel()
					return
				}
			case <-done:
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case in, ok := <-frames:
				if !ok || in.err != nil {
					// During a graceful drain, Shutdown closes the read side
					// of every connection — that must not abort the in-flight
					// shard (a dead coordinator still surfaces as write
					// failures). Outside a drain, a lost read side means the
					// coordinator is gone: stop burning cores.
					if !s.isDraining() {
						cancel()
					}
					return
				}
				if in.f.Type == wire.TypeCancel {
					cancel()
					return
				}
				// Any other frame mid-shard is out of protocol; tolerate it
				// rather than corrupting a running shard.
			case <-done:
				return
			}
		}
	}()

	err := shard.ServeRequest(runCtx, req, write)

	close(done)
	wg.Wait()
	if err == nil && runCtx.Err() != nil && ctx.Err() == nil {
		// The coordinator cancelled or vanished mid-shard; per-job context
		// errors already streamed (best effort). Surface it as a shard-level
		// error frame instead of a done frame.
		return runCtx.Err()
	}
	return err
}
