package net

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
)

// This file is the job server's observability surface: the SSE snapshot
// stream, the Prometheus exposition, the merged host table, and the
// embedded dashboard. The aggregation itself lives in internal/obs; the
// glue here is routing plus RunnerStats plumbing (the stats live on each
// job's runner clone, so the fleet-wide view merges across jobs).

// sseMinInterval paces snapshot frames when telemetry is flowing but no
// job has completed — frequent enough to feel live, coarse enough that a
// full analytics reduction per frame stays negligible.
const sseMinInterval = 250 * time.Millisecond

// handleEvents streams ordered aggregate snapshots as server-sent
// events: one "snapshot" event per frame, ending with the Final frame
// (whose aggregates are the run's post-hoc analytics, byte for byte).
// Subscribers connecting after completion receive exactly the final
// frame. A stalled client blocks only its own handler goroutine — the
// aggregator is pull-based, like the telemetry Bus.
func (s *JobServer) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	select {
	case <-j.busReady:
	case <-r.Context().Done():
		return
	}
	j.mu.Lock()
	agg := j.agg
	j.mu.Unlock()
	if agg == nil {
		writeError(w, http.StatusConflict, "job produced no telemetry: %s", j.snapshot().Error)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, cancel := agg.Watch()
	defer cancel()
	tick := time.NewTicker(sseMinInterval)
	defer tick.Stop()
	for {
		snap := agg.Snapshot()
		data, err := json.Marshal(snap)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: snapshot\ndata: %s\n\n", data); err != nil {
			return
		}
		fl.Flush()
		if snap.Final {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ch:
		case <-tick.C:
		}
	}
}

// handleList answers GET /jobs with every submitted job's status body,
// in submission order.
func (s *JobServer) handleList(w http.ResponseWriter, r *http.Request) {
	out := make([]statusBody, 0)
	for _, j := range s.jobsInOrder() {
		out = append(out, j.snapshot())
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDashboard serves the embedded single-file live dashboard.
func (s *JobServer) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(obs.DashboardHTML)
}

// fleetBody is the GET /fleet response: the merged host table plus each
// job's scalar status.
type fleetBody struct {
	RunnerStats
	Jobs []statusBody `json:"jobs"`
}

func (s *JobServer) handleFleet(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobsInOrder()
	body := fleetBody{RunnerStats: s.mergedStats(jobs), Jobs: make([]statusBody, 0, len(jobs))}
	for _, j := range jobs {
		body.Jobs = append(body.Jobs, j.snapshot())
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *JobServer) jobsInOrder() []*serverJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*serverJob, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// jobStatsView is one job's contribution to the merged fleet view.
type jobStatsView struct {
	stats   RunnerStats
	running bool
}

func (s *JobServer) statsViews(jobs []*serverJob) []jobStatsView {
	var views []jobStatsView
	for _, j := range jobs {
		j.mu.Lock()
		fn, running := j.statsFn, j.status == "running"
		j.mu.Unlock()
		if fn == nil {
			continue
		}
		views = append(views, jobStatsView{stats: fn(), running: running})
	}
	return views
}

// mergedStats folds per-job runner-clone stats into one fleet-wide host
// table. Counters (dials, redials, items, shortfall, hedges, fallback)
// are cumulative sums over every job. Gauges (connected, breaker state,
// slot occupancy) describe "now", so they come from running jobs only —
// slots sum across concurrent runs, the breaker reports the worst state
// — falling back to the most recent job's view when nothing is running.
func (s *JobServer) mergedStats(jobs []*serverJob) RunnerStats {
	views := s.statsViews(jobs)
	anyRunning := false
	for _, v := range views {
		if v.running {
			anyRunning = true
			break
		}
	}
	var out RunnerStats
	idx := map[string]int{}
	for _, v := range views {
		st := v.stats
		out.Hedges += st.Hedges
		out.HedgeWins += st.HedgeWins
		out.FallbackUsed = out.FallbackUsed || st.FallbackUsed
		out.FallbackJobs += st.FallbackJobs
		live := v.running || !anyRunning
		for _, h := range st.Hosts {
			i, ok := idx[h.Addr]
			if !ok {
				i = len(out.Hosts)
				idx[h.Addr] = i
				out.Hosts = append(out.Hosts, HostStats{Addr: h.Addr, Capacity: h.Capacity})
			}
			m := &out.Hosts[i]
			m.ConnectAttempts += h.ConnectAttempts
			m.Redials += h.Redials
			m.ItemsCompleted += h.ItemsCompleted
			m.SlotShortfall += h.SlotShortfall
			if h.Capacity > m.Capacity {
				m.Capacity = h.Capacity
			}
			if live {
				m.Connected = m.Connected || h.Connected
				m.SlotsConnected += h.SlotsConnected
				if breakerRank(h.Breaker) > breakerRank(m.Breaker) {
					m.Breaker = h.Breaker
				}
				if h.ConsecutiveFails > m.ConsecutiveFails {
					m.ConsecutiveFails = h.ConsecutiveFails
				}
				if h.LastErr != "" {
					m.LastErr = h.LastErr
				}
			}
		}
	}
	for i := range out.Hosts {
		if out.Hosts[i].Breaker == "" {
			out.Hosts[i].Breaker = BreakerClosed
		}
	}
	return out
}

func breakerRank(state string) int {
	switch state {
	case BreakerOpen:
		return 2
	case BreakerHalfOpen:
		return 1
	default:
		return 0
	}
}

// handleMetrics renders the Prometheus exposition: per-job progress,
// per-user-class sample counters, and the merged per-host recovery
// gauges. Families are emitted contiguously as the format requires.
func (s *JobServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobsInOrder()
	type jobView struct {
		id    string
		prog  obs.Progress
		hists []obs.ClassHist
	}
	var views []jobView
	for _, j := range jobs {
		j.mu.Lock()
		agg := j.agg
		j.mu.Unlock()
		if agg == nil {
			continue
		}
		views = append(views, jobView{id: j.id, prog: agg.Progress(), hists: agg.HistSnapshot()})
	}

	mw := &obs.MetricWriter{}
	jl := func(id string) []obs.Label { return []obs.Label{{Name: "job", Value: id}} }

	mw.Family("usta_job_total", "Jobs in the sweep's expanded grid.", "gauge")
	for _, v := range views {
		mw.Sample("usta_job_total", jl(v.id), float64(v.prog.Total))
	}
	mw.Family("usta_job_done", "Jobs completed so far.", "gauge")
	for _, v := range views {
		mw.Sample("usta_job_done", jl(v.id), float64(v.prog.Done))
	}
	mw.Family("usta_job_failed", "Jobs completed with an error.", "gauge")
	for _, v := range views {
		mw.Sample("usta_job_failed", jl(v.id), float64(v.prog.Failed))
	}
	mw.Family("usta_job_running", "1 while the sweep is executing.", "gauge")
	for _, v := range views {
		running := 0.0
		if !v.prog.Final {
			running = 1
		}
		mw.Sample("usta_job_running", jl(v.id), running)
	}
	mw.Family("usta_job_samples_total", "Telemetry samples aggregated.", "counter")
	for _, v := range views {
		mw.Sample("usta_job_samples_total", jl(v.id), float64(v.prog.Samples))
	}
	// Durability families cover every job (terminal recovered jobs have no
	// aggregator, so they come from the status snapshots, not views).
	snaps := make([]statusBody, 0, len(jobs))
	for _, j := range jobs {
		snaps = append(snaps, j.snapshot())
	}
	mw.Family("usta_job_resumed_cells", "Cells restored from the WAL ledger instead of re-run.", "gauge")
	for _, sb := range snaps {
		mw.Sample("usta_job_resumed_cells", jl(sb.ID), float64(sb.Resumed))
	}
	mw.Family("usta_job_unjournaled", "1 when state journaling failed and the job lives in memory only.", "gauge")
	for _, sb := range snaps {
		mw.Sample("usta_job_unjournaled", jl(sb.ID), b2f(sb.Unjournaled))
	}
	mw.Family("usta_job_deadline_seconds", "Wall-clock deadline bounding the sweep (0: none).", "gauge")
	for _, sb := range snaps {
		mw.Sample("usta_job_deadline_seconds", jl(sb.ID), sb.DeadlineSec)
	}
	mw.Family("usta_class_samples_total", "Telemetry samples per user class.", "counter")
	for _, v := range views {
		for _, h := range v.hists {
			mw.Sample("usta_class_samples_total",
				[]obs.Label{{Name: "job", Value: v.id}, {Name: "class", Value: h.Class}}, float64(h.Samples))
		}
	}
	mw.Family("usta_class_over_limit_total", "Samples above the class's skin limit.", "counter")
	for _, v := range views {
		for _, h := range v.hists {
			mw.Sample("usta_class_over_limit_total",
				[]obs.Label{{Name: "job", Value: v.id}, {Name: "class", Value: h.Class}}, float64(h.OverLimit))
		}
	}

	st := s.mergedStats(jobs)
	hl := func(addr string) []obs.Label { return []obs.Label{{Name: "host", Value: addr}} }
	mw.Family("usta_host_connected", "1 when any running job holds a connection to the host.", "gauge")
	for _, h := range st.Hosts {
		mw.Sample("usta_host_connected", hl(h.Addr), b2f(h.Connected))
	}
	mw.Family("usta_host_breaker", "One-hot circuit-breaker state per host.", "gauge")
	for _, h := range st.Hosts {
		for _, state := range []string{BreakerClosed, BreakerHalfOpen, BreakerOpen} {
			mw.Sample("usta_host_breaker",
				[]obs.Label{{Name: "host", Value: h.Addr}, {Name: "state", Value: state}}, b2f(h.Breaker == state))
		}
	}
	mw.Family("usta_host_capacity", "Advertised worker slot capacity.", "gauge")
	for _, h := range st.Hosts {
		mw.Sample("usta_host_capacity", hl(h.Addr), float64(h.Capacity))
	}
	mw.Family("usta_host_slots_connected", "Connected slots summed over running jobs.", "gauge")
	for _, h := range st.Hosts {
		mw.Sample("usta_host_slots_connected", hl(h.Addr), float64(h.SlotsConnected))
	}
	mw.Family("usta_host_connect_attempts_total", "Dial attempts, cumulative over jobs.", "counter")
	for _, h := range st.Hosts {
		mw.Sample("usta_host_connect_attempts_total", hl(h.Addr), float64(h.ConnectAttempts))
	}
	mw.Family("usta_host_redials_total", "Successful reconnects after a connection loss.", "counter")
	for _, h := range st.Hosts {
		mw.Sample("usta_host_redials_total", hl(h.Addr), float64(h.Redials))
	}
	mw.Family("usta_host_items_completed_total", "Work items completed per host.", "counter")
	for _, h := range st.Hosts {
		mw.Sample("usta_host_items_completed_total", hl(h.Addr), float64(h.ItemsCompleted))
	}
	mw.Family("usta_hedges_total", "Hedged (duplicate) work-item dispatches.", "counter")
	mw.Sample("usta_hedges_total", nil, float64(st.Hedges))
	mw.Family("usta_hedge_wins_total", "Hedged dispatches that settled first.", "counter")
	mw.Sample("usta_hedge_wins_total", nil, float64(st.HedgeWins))
	mw.Family("usta_fallback_jobs_total", "Jobs absorbed by the local fallback pool.", "counter")
	mw.Sample("usta_fallback_jobs_total", nil, float64(st.FallbackJobs))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	mw.WriteTo(w)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
