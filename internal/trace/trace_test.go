package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAppendAndLookup(t *testing.T) {
	ts := New("skin", "screen")
	ts.Append(0, 30, 28)
	ts.Append(1, 31, 29)
	if ts.Len() != 2 {
		t.Fatalf("Len = %d want 2", ts.Len())
	}
	s := ts.Lookup("skin")
	if s == nil || s.Values[1] != 31 {
		t.Fatalf("Lookup(skin) = %+v", s)
	}
	if ts.Lookup("missing") != nil {
		t.Fatal("Lookup(missing) should be nil")
	}
}

func TestAppendPanicsOnArityMismatch(t *testing.T) {
	ts := New("a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ts.Append(0, 1)
}

func TestWriteCSV(t *testing.T) {
	ts := New("skin", "freq")
	ts.Lookup("skin").Unit = "c"
	ts.Append(0, 30, 384)
	ts.Append(3, 31.5, 1512)
	var sb strings.Builder
	if err := ts.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d want 3:\n%s", len(lines), out)
	}
	if lines[0] != "time_s,skin_c,freq" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "3.000,31.5") {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 4, 1, 5})
	if s.Min != 1 || s.Max != 5 || s.Final != 5 || s.N != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Mean-2.8) > 1e-12 {
		t.Fatalf("Mean = %v want 2.8", s.Mean)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestFractionAbove(t *testing.T) {
	vs := []float64{1, 2, 3, 4}
	if got := FractionAbove(vs, 2); got != 0.5 {
		t.Fatalf("FractionAbove = %v want 0.5", got)
	}
	if got := FractionAbove(vs, 10); got != 0 {
		t.Fatalf("FractionAbove = %v want 0", got)
	}
	if got := FractionAbove(nil, 1); got != 0 {
		t.Fatalf("FractionAbove(nil) = %v want 0", got)
	}
	// Strictly above: equal values do not count.
	if got := FractionAbove([]float64{2, 2}, 2); got != 0 {
		t.Fatalf("FractionAbove(eq) = %v want 0", got)
	}
}

func TestFirstCrossing(t *testing.T) {
	times := []float64{0, 1, 2, 3}
	vals := []float64{30, 33, 36, 39}
	at, ok := FirstCrossing(times, vals, 35)
	if !ok || at != 2 {
		t.Fatalf("FirstCrossing = %v,%v want 2,true", at, ok)
	}
	if _, ok := FirstCrossing(times, vals, 100); ok {
		t.Fatal("FirstCrossing should report no crossing")
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(vs, 50); got != 5 {
		t.Fatalf("P50 = %v want 5", got)
	}
	if got := Percentile(vs, 0); got != 1 {
		t.Fatalf("P0 = %v want 1", got)
	}
	if got := Percentile(vs, 100); got != 10 {
		t.Fatalf("P100 = %v want 10", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("Percentile(nil) should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vs := []float64{3, 1, 2}
	Percentile(vs, 50)
	if vs[0] != 3 || vs[1] != 1 || vs[2] != 2 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

func TestSparkline(t *testing.T) {
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if got != "▁▂▃▄▅▆▇█" {
		t.Fatalf("Sparkline = %q", got)
	}
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty sparkline should be empty string")
	}
	if Sparkline([]float64{1}, 0) != "" {
		t.Fatal("zero-width sparkline should be empty string")
	}
}

func TestSparklineFlat(t *testing.T) {
	got := Sparkline([]float64{5, 5, 5, 5}, 4)
	if got != "▁▁▁▁" {
		t.Fatalf("flat sparkline = %q", got)
	}
}

func TestChartContainsExtremes(t *testing.T) {
	out := Chart([]float64{10, 20, 30, 40, 50}, 5, 4)
	if !strings.Contains(out, "50.00") || !strings.Contains(out, "10.00") {
		t.Fatalf("chart missing extremes:\n%s", out)
	}
	if strings.Count(out, "\n") != 4 {
		t.Fatalf("chart should have 4 lines:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	if Chart(nil, 10, 5) != "" {
		t.Fatal("empty chart should be empty string")
	}
}

// Property: Summarize bounds hold — Min <= Mean <= Max and Final is a
// member of the slice.
func TestSummarizeBoundsProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Final == clean[len(clean)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: FractionAbove is antitone in the threshold.
func TestFractionAboveAntitoneProperty(t *testing.T) {
	vs := []float64{30, 31, 33, 35, 37, 39, 41, 43}
	f := func(a, b float64) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return FractionAbove(vs, lo) >= FractionAbove(vs, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewWithCapPreallocates(t *testing.T) {
	ts := NewWithCap(100, "a", "b")
	if cap(ts.TimeSec) != 100 {
		t.Fatalf("time axis cap = %d want 100", cap(ts.TimeSec))
	}
	for _, s := range ts.Series {
		if cap(s.Values) != 100 {
			t.Fatalf("series %q cap = %d want 100", s.Name, cap(s.Values))
		}
	}
	for i := 0; i < 100; i++ {
		ts.Append(float64(i), 1, 2)
	}
	if ts.Len() != 100 || ts.Lookup("b").Values[99] != 2 {
		t.Fatal("append into preallocated series broken")
	}
	if got := NewWithCap(-5, "a"); got.Len() != 0 {
		t.Fatal("negative capacity should behave like New")
	}
}
