// Package trace records and summarizes simulation time series, exports them
// as CSV, and renders compact ASCII charts for the experiment harness
// output. Every figure in the reproduction is ultimately a set of Series.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is a named time series with a common time base held by its owner.
type Series struct {
	Name   string
	Unit   string
	Values []float64
}

// TimeSeries is a set of aligned series sharing one time axis.
type TimeSeries struct {
	TimeSec []float64
	Series  []*Series

	byName map[string]*Series
}

// New creates an empty TimeSeries with the given column names. Units can be
// attached afterwards via Lookup.
func New(names ...string) *TimeSeries { return NewWithCap(0, names...) }

// NewWithCap is New with every column (and the time axis) preallocated to
// hold rows entries, so appenders with a known row count — fixed-duration
// simulation runs — never regrow a column mid-loop.
func NewWithCap(rows int, names ...string) *TimeSeries {
	if rows < 0 {
		rows = 0
	}
	ts := &TimeSeries{byName: make(map[string]*Series, len(names))}
	if rows > 0 {
		ts.TimeSec = make([]float64, 0, rows)
	}
	for _, n := range names {
		s := &Series{Name: n}
		if rows > 0 {
			s.Values = make([]float64, 0, rows)
		}
		ts.Series = append(ts.Series, s)
		ts.byName[n] = s
	}
	return ts
}

// Append adds one row: a timestamp and one value per series, in declaration
// order. It panics if the value count does not match the series count —
// that is always a harness bug.
func (ts *TimeSeries) Append(t float64, values ...float64) {
	if len(values) != len(ts.Series) {
		panic(fmt.Sprintf("trace: Append got %d values for %d series", len(values), len(ts.Series)))
	}
	ts.TimeSec = append(ts.TimeSec, t)
	for i, v := range values {
		ts.Series[i].Values = append(ts.Series[i].Values, v)
	}
}

// Len returns the number of rows.
func (ts *TimeSeries) Len() int { return len(ts.TimeSec) }

// Lookup returns the series with the given name, or nil.
func (ts *TimeSeries) Lookup(name string) *Series { return ts.byName[name] }

// Reindex rebuilds the name index from the exported fields. A TimeSeries
// decoded from JSON (the shard runner ships run traces between processes)
// arrives without the unexported index, so Lookup would find nothing until
// it is reindexed. Like AddNode-order registration, the first series with
// a given name wins.
func (ts *TimeSeries) Reindex() {
	ts.byName = make(map[string]*Series, len(ts.Series))
	for _, s := range ts.Series {
		if _, ok := ts.byName[s.Name]; !ok {
			ts.byName[s.Name] = s
		}
	}
}

// WriteCSV writes the time series as CSV with a header row.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	cols := make([]string, 0, len(ts.Series)+1)
	cols = append(cols, "time_s")
	for _, s := range ts.Series {
		name := s.Name
		if s.Unit != "" {
			name += "_" + s.Unit
		}
		cols = append(cols, name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	row := make([]string, len(ts.Series)+1)
	for i, t := range ts.TimeSec {
		row[0] = fmt.Sprintf("%.3f", t)
		for j, s := range ts.Series {
			row[j+1] = fmt.Sprintf("%.4f", s.Values[i])
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Summary holds the standard statistics of a series.
type Summary struct {
	Min, Max, Mean, Final float64
	N                     int
}

// Summarize computes summary statistics over the series values.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := Summary{Min: values[0], Max: values[0], Final: values[len(values)-1], N: len(values)}
	var sum float64
	for _, v := range values {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(len(values))
	return s
}

// FractionAbove returns the fraction of samples strictly above the
// threshold.
func FractionAbove(values []float64, threshold float64) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v > threshold {
			n++
		}
	}
	return float64(n) / float64(len(values))
}

// FirstCrossing returns the time at which the series first exceeds the
// threshold, and whether it ever does.
func FirstCrossing(timeSec, values []float64, threshold float64) (float64, bool) {
	for i, v := range values {
		if v > threshold {
			return timeSec[i], true
		}
	}
	return 0, false
}

// Percentile returns the p-th percentile (0–100) of the values using
// nearest-rank on a sorted copy.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Sparkline renders values as a one-line unicode sparkline of the given
// width (downsampling by averaging buckets).
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	buckets := bucketMeans(values, width)
	lo, hi := buckets[0], buckets[0]
	for _, v := range buckets {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range buckets {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(ramp)-1))
		}
		b.WriteRune(ramp[idx])
	}
	return b.String()
}

// Chart renders a multi-line ASCII chart of the series: height rows by
// width columns, annotated with the min and max. Intended for harness
// stdout, not publication.
func Chart(values []float64, width, height int) string {
	if len(values) == 0 || width <= 0 || height <= 0 {
		return ""
	}
	buckets := bucketMeans(values, width)
	lo, hi := buckets[0], buckets[0]
	for _, v := range buckets {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", len(buckets)))
	}
	for c, v := range buckets {
		row := int((v - lo) / (hi - lo) * float64(height-1))
		grid[height-1-row][c] = '•'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8.2f ┤", hi)
	b.WriteString(string(grid[0]))
	b.WriteByte('\n')
	for r := 1; r < height-1; r++ {
		b.WriteString("         │")
		b.WriteString(string(grid[r]))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%8.2f ┤", lo)
	b.WriteString(string(grid[height-1]))
	b.WriteByte('\n')
	return b.String()
}

func bucketMeans(values []float64, width int) []float64 {
	if width > len(values) {
		width = len(values)
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		start := i * len(values) / width
		end := (i + 1) * len(values) / width
		if end <= start {
			end = start + 1
		}
		var s float64
		for _, v := range values[start:end] {
			s += v
		}
		out[i] = s / float64(end-start)
	}
	return out
}
