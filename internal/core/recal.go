package core

// Online recalibration — the "future work" extension sketched in
// DESIGN.md §8. A phone that still carries its calibration thermistors
// (e.g. a lab device, or a unit with a factory-calibrated case sensor) can
// refit the predictor from its own logging stream, adapting to conditions
// the original training corpus never saw: a different ambient, a new case,
// aged thermal paste. The controller semantics are unchanged — the
// recalibrator is a drop-in device.Controller that wraps USTA.

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/ml"
)

// Recalibrator wraps USTA, periodically retraining its predictor from the
// phone's thermistor-instrumented log.
type Recalibrator struct {
	// USTA is the wrapped controller; its Pred is replaced on retrain.
	USTA *USTA
	// RetrainEverySec is the retraining interval in run time.
	RetrainEverySec float64
	// MinRecords gates retraining until enough log has accumulated.
	MinRecords int
	// Factory builds the refitted models (nil = REPTree).
	Factory func() ml.Regressor

	// Retrains counts completed refits.
	Retrains int

	lastRetrain float64
}

var _ device.Controller = (*Recalibrator)(nil)

// NewRecalibrator wraps u with 5-minute retraining.
func NewRecalibrator(u *USTA) *Recalibrator {
	return &Recalibrator{USTA: u, RetrainEverySec: 300, MinRecords: 120}
}

// Name implements device.Controller.
func (r *Recalibrator) Name() string {
	return fmt.Sprintf("recal(%s)", r.USTA.Name())
}

// PeriodSec implements device.Controller (delegates to USTA's cadence).
func (r *Recalibrator) PeriodSec() float64 { return r.USTA.PeriodSec() }

// Reset implements device.Controller.
func (r *Recalibrator) Reset() {
	r.USTA.Reset()
	r.Retrains = 0
	r.lastRetrain = 0
}

// Act implements device.Controller: retrain when due, then delegate.
func (r *Recalibrator) Act(p *device.Phone) {
	every := r.RetrainEverySec
	if every <= 0 {
		every = 300
	}
	if p.Time()-r.lastRetrain >= every {
		if recs := p.Records(); len(recs) >= r.MinRecords {
			if pred, err := Train(recs, r.Factory); err == nil {
				r.USTA.Pred = pred
				r.Retrains++
			}
			// A failed refit (should not happen with a non-empty log)
			// keeps the previous predictor — never run uncontrolled.
			r.lastRetrain = p.Time()
		}
	}
	r.USTA.Act(p)
}
