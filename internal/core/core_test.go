package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/ml"
	"repro/internal/ml/linreg"
	"repro/internal/sensors"
	"repro/internal/workload"
)

// testCorpus builds a small but diverse training corpus quickly.
func testCorpus(t *testing.T) []sensors.Record {
	t.Helper()
	cfg := device.DefaultConfig()
	loads := []workload.Workload{
		workload.Skype(1),
		workload.Truncated{W: workload.AnTuTuCPU(2), Dur: 600},
		workload.StaircaseRamp(3, 0.05, 0.95, 8, 45),
		workload.Idle(240),
	}
	// Full-length Skype matters: the corpus must cover the hot regime
	// (skin ≈ 40 °C) or tree predictions saturate below reality.
	corpus := CollectCorpus(cfg, loads, 0)
	if len(corpus) < 1000 {
		t.Fatalf("corpus too small: %d records", len(corpus))
	}
	return corpus
}

func TestDatasetFromRecords(t *testing.T) {
	recs := []sensors.Record{
		{CPUTempC: 50, BatteryTempC: 30, Util: 0.5, FreqMHz: 1026, SkinTempC: 36, ScreenTempC: 34},
		{CPUTempC: 60, BatteryTempC: 33, Util: 0.9, FreqMHz: 1512, SkinTempC: 40, ScreenTempC: 37},
	}
	skin := DatasetFromRecords(recs, SkinTarget)
	screen := DatasetFromRecords(recs, ScreenTarget)
	if skin.Len() != 2 || screen.Len() != 2 {
		t.Fatal("dataset sizes wrong")
	}
	if skin.Y[0] != 36 || screen.Y[0] != 34 {
		t.Fatal("targets mis-assigned")
	}
	if skin.NumAttrs() != 4 {
		t.Fatalf("NumAttrs = %d want 4", skin.NumAttrs())
	}
	if skin.X[1][3] != 1512 {
		t.Fatal("feature order broken")
	}
}

func TestTargetString(t *testing.T) {
	if SkinTarget.String() != "skin" || ScreenTarget.String() != "screen" {
		t.Fatal("Target.String broken")
	}
}

func TestTrainRejectsEmptyCorpus(t *testing.T) {
	if _, err := Train(nil, nil); err == nil {
		t.Fatal("empty corpus accepted")
	}
}

func TestTrainedPredictorIsAccurate(t *testing.T) {
	// The headline claim: the predictor estimates skin temperature from
	// on-device observables with ≈1 % error (99.05 % accuracy). Verify the
	// default REPTree achieves a low cross-validated error rate on the
	// simulated corpus.
	corpus := testCorpus(t)
	d := DatasetFromRecords(corpus, SkinTarget)
	exp, pred, err := ml.CrossValidate(func() ml.Regressor {
		p, terr := Train(corpus, nil)
		if terr != nil {
			t.Fatal(terr)
		}
		return p.SkinModel
	}, d, 10, 1)
	_ = exp
	_ = pred
	if err != nil {
		t.Fatal(err)
	}
	rate := ml.ErrorRate(exp, pred)
	if rate > 3.0 {
		t.Fatalf("skin CV error rate = %.2f%%, want ≈1%%", rate)
	}
}

func TestPredictorEndToEnd(t *testing.T) {
	corpus := testCorpus(t)
	p, err := Train(corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	// In-sample sanity: average absolute error well below a degree.
	var maeSkin, maeScreen float64
	for _, r := range corpus {
		maeSkin += math.Abs(p.PredictSkin(r) - r.SkinTempC)
		maeScreen += math.Abs(p.PredictScreen(r) - r.ScreenTempC)
	}
	maeSkin /= float64(len(corpus))
	maeScreen /= float64(len(corpus))
	if maeSkin > 0.5 {
		t.Fatalf("in-sample skin MAE = %.3f °C", maeSkin)
	}
	if maeScreen > 0.5 {
		t.Fatalf("in-sample screen MAE = %.3f °C", maeScreen)
	}
}

func TestTrainWithCustomFactory(t *testing.T) {
	corpus := testCorpus(t)
	p, err := Train(corpus, func() ml.Regressor { return linreg.New() })
	if err != nil {
		t.Fatal(err)
	}
	if p.SkinModel.Name() != "LinearRegression" {
		t.Fatalf("factory ignored: %s", p.SkinModel.Name())
	}
}

func TestLadderPolicyBoundaries(t *testing.T) {
	top := 11
	cases := []struct {
		diff float64
		want int
	}{
		{5, 11}, {2.01, 11}, // free
		{2.0, 10}, {1.5, 10}, {1.01, 10}, // one level down
		{1.0, 9}, {0.75, 9}, {0.51, 9}, // two levels down
		{0.5, 0}, {0.2, 0}, {0, 0}, {-3, 0}, // minimum
	}
	for _, tc := range cases {
		if got := LadderPolicy(tc.diff, top); got != tc.want {
			t.Fatalf("LadderPolicy(%v) = %d want %d", tc.diff, got, tc.want)
		}
	}
}

func TestMarginLadderGeneralizesLadderPolicy(t *testing.T) {
	// With margin 2, MarginLadder must agree with LadderPolicy everywhere.
	std := MarginLadder(2)
	for d := -1.0; d <= 4.0; d += 0.05 {
		if std(d, 11) != LadderPolicy(d, 11) {
			t.Fatalf("MarginLadder(2) diverges from LadderPolicy at diff %.2f", d)
		}
	}
	// A wider margin activates earlier (more conservative).
	wide := MarginLadder(4)
	if wide(3, 11) >= 11 {
		t.Fatal("margin-4 ladder should already clamp at diff=3")
	}
	if LadderPolicy(3, 11) != 11 {
		t.Fatal("margin-2 ladder should be free at diff=3")
	}
	// Non-positive margins fall back to the paper default.
	if MarginLadder(0)(1.5, 11) != LadderPolicy(1.5, 11) {
		t.Fatal("MarginLadder(0) should default to margin 2")
	}
}

func TestHardPolicy(t *testing.T) {
	if HardPolicy(2.5, 11) != 11 || HardPolicy(1.9, 11) != 0 {
		t.Fatal("HardPolicy thresholds broken")
	}
}

func TestProportionalPolicy(t *testing.T) {
	if ProportionalPolicy(2, 11) != 11 || ProportionalPolicy(3, 11) != 11 {
		t.Fatal("proportional should be free above the margin")
	}
	if ProportionalPolicy(0, 11) != 0 || ProportionalPolicy(-1, 11) != 0 {
		t.Fatal("proportional should clamp to 0 at/below zero margin")
	}
	mid := ProportionalPolicy(1, 11)
	if mid <= 0 || mid >= 11 {
		t.Fatalf("proportional mid clamp = %d want strictly between", mid)
	}
}

// Property: every policy is monotone in the margin and in range.
func TestPolicyMonotoneProperty(t *testing.T) {
	policies := []Policy{LadderPolicy, HardPolicy, ProportionalPolicy}
	f := func(a, b float64, which uint8) bool {
		pol := policies[int(which)%len(policies)]
		d1 := math.Mod(a, 6)
		d2 := math.Mod(b, 6)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		c1 := pol(d1, 11)
		c2 := pol(d2, 11)
		return c1 <= c2 && c1 >= 0 && c2 <= 11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
