package core

// Predictor persistence: the paper's deployment story is "train offline in
// WEKA, ship the fitted tree to the phone". SavePredictor/LoadPredictor
// are that hand-off: a single JSON document with an algorithm tag and the
// two fitted per-target models.

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/ml"
	"repro/internal/ml/linreg"
	"repro/internal/ml/m5p"
	"repro/internal/ml/mlp"
	"repro/internal/ml/tree"
)

type persistedPredictor struct {
	Algorithm string          `json:"algorithm"`
	Skin      json.RawMessage `json:"skin"`
	Screen    json.RawMessage `json:"screen"`
}

func algorithmOf(r ml.Regressor) (string, error) {
	switch r.(type) {
	case *tree.Model:
		return "REPTree", nil
	case *m5p.Model:
		return "M5P", nil
	case *linreg.Model:
		return "LinearRegression", nil
	case *mlp.Model:
		return "MultilayerPerceptron", nil
	default:
		return "", fmt.Errorf("core: unsupported regressor type %T", r)
	}
}

func emptyModel(algorithm string) (ml.Regressor, error) {
	switch algorithm {
	case "REPTree":
		return &tree.Model{}, nil
	case "M5P":
		return &m5p.Model{}, nil
	case "LinearRegression":
		return &linreg.Model{}, nil
	case "MultilayerPerceptron":
		return &mlp.Model{}, nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", algorithm)
	}
}

// SavePredictor serializes a trained predictor to w. Both per-target models
// must be of the same supported algorithm.
func SavePredictor(w io.Writer, p *Predictor) error {
	if p == nil || p.SkinModel == nil || p.ScreenModel == nil {
		return fmt.Errorf("core: predictor is not fully trained")
	}
	algo, err := algorithmOf(p.SkinModel)
	if err != nil {
		return err
	}
	algo2, err := algorithmOf(p.ScreenModel)
	if err != nil {
		return err
	}
	if algo != algo2 {
		return fmt.Errorf("core: mixed-algorithm predictor (%s skin, %s screen) not supported", algo, algo2)
	}
	skin, err := json.Marshal(p.SkinModel)
	if err != nil {
		return fmt.Errorf("core: marshal skin model: %w", err)
	}
	screen, err := json.Marshal(p.ScreenModel)
	if err != nil {
		return fmt.Errorf("core: marshal screen model: %w", err)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(persistedPredictor{Algorithm: algo, Skin: skin, Screen: screen})
}

// LoadPredictor deserializes a predictor saved by SavePredictor.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	var pp persistedPredictor
	if err := json.NewDecoder(r).Decode(&pp); err != nil {
		return nil, fmt.Errorf("core: decode predictor: %w", err)
	}
	skin, err := emptyModel(pp.Algorithm)
	if err != nil {
		return nil, err
	}
	screen, err := emptyModel(pp.Algorithm)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(pp.Skin, skin); err != nil {
		return nil, fmt.Errorf("core: decode skin model: %w", err)
	}
	if err := json.Unmarshal(pp.Screen, screen); err != nil {
		return nil, fmt.Errorf("core: decode screen model: %w", err)
	}
	return &Predictor{SkinModel: skin, ScreenModel: screen}, nil
}
