package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/linreg"
	"repro/internal/ml/m5p"
	"repro/internal/ml/mlp"
	"repro/internal/sensors"
)

func persistCorpus() []sensors.Record {
	recs := make([]sensors.Record, 0, 400)
	for i := 0; i < 400; i++ {
		f := float64(i)
		recs = append(recs, sensors.Record{
			CPUTempC:     30 + f/10,
			BatteryTempC: 26 + f/25,
			Util:         float64(i%10) / 10,
			FreqMHz:      384 + float64(i%12)*100,
			SkinTempC:    26 + f/20,
			ScreenTempC:  25 + f/22,
		})
	}
	return recs
}

func roundTrip(t *testing.T, factory func() ml.Regressor) *Predictor {
	t.Helper()
	p, err := Train(persistCorpus(), factory)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SavePredictor(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Loaded predictor must agree with the original everywhere we probe.
	probe := persistCorpus()
	for i := 0; i < len(probe); i += 7 {
		r := probe[i]
		if got, want := back.PredictSkin(r), p.PredictSkin(r); got != want {
			t.Fatalf("skin prediction diverged after round trip: %v vs %v", got, want)
		}
		if got, want := back.PredictScreen(r), p.PredictScreen(r); got != want {
			t.Fatalf("screen prediction diverged after round trip: %v vs %v", got, want)
		}
	}
	return back
}

func TestPersistREPTree(t *testing.T) { roundTrip(t, nil) }

func TestPersistM5P(t *testing.T) {
	roundTrip(t, func() ml.Regressor { return m5p.New() })
}

func TestPersistLinearRegression(t *testing.T) {
	roundTrip(t, func() ml.Regressor { return linreg.New() })
}

func TestPersistMLP(t *testing.T) {
	roundTrip(t, func() ml.Regressor {
		m := mlp.New(3)
		m.Epochs = 20
		return m
	})
}

func TestSaveRejectsNilPredictor(t *testing.T) {
	var buf bytes.Buffer
	if err := SavePredictor(&buf, nil); err == nil {
		t.Fatal("nil predictor accepted")
	}
	if err := SavePredictor(&buf, &Predictor{}); err == nil {
		t.Fatal("empty predictor accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadPredictor(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadPredictor(strings.NewReader(`{"algorithm":"Mystery","skin":{},"screen":{}}`)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := LoadPredictor(strings.NewReader(`{"algorithm":"REPTree","skin":{"root":null},"screen":{"root":null}}`)); err == nil {
		t.Fatal("rootless tree accepted")
	}
}

func TestUnfittedModelsRefuseToMarshal(t *testing.T) {
	var buf bytes.Buffer
	p := &Predictor{SkinModel: &mlp.Model{}, ScreenModel: &mlp.Model{}}
	if err := SavePredictor(&buf, p); err == nil {
		t.Fatal("unfitted MLP marshalled")
	}
}
