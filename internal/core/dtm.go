package core

// CPUTempDTM models the platform's built-in dynamic thermal management
// (msm_thermal on the paper's Nexus 4): a reactive frequency clamp driven
// by the *die* temperature sensor with trip points far above anything skin
// comfort allows. It exists to make the paper's §III motivation
// executable: on every evaluation workload the die stays below the first
// trip point, so the stock DTM never intervenes — while the skin exceeds
// every participant's comfort limit. USTA fills exactly that gap.

import (
	"fmt"

	"repro/internal/device"
)

// CPUTempDTM is a trip-point die-temperature throttler.
type CPUTempDTM struct {
	// TripC are ascending die-temperature trip points; crossing trip i
	// clamps the maximum level down by StepsPerTrip·(i+1).
	TripC []float64
	// StepsPerTrip is the clamp depth per trip (1 = one OPP per trip).
	StepsPerTrip int
	// Period is the polling period in seconds (stock: 250 ms; 1 s here to
	// stay on the logging grid).
	Period float64

	// Activations counts polls that imposed a clamp.
	Activations int
}

var _ device.Controller = (*CPUTempDTM)(nil)

// NewCPUTempDTM returns the msm_thermal-like default: trips at 75/85/95 °C,
// two OPPs per trip.
func NewCPUTempDTM() *CPUTempDTM {
	return &CPUTempDTM{TripC: []float64{75, 85, 95}, StepsPerTrip: 2, Period: 1}
}

// Name implements device.Controller.
func (d *CPUTempDTM) Name() string { return "cpu-temp-dtm" }

// PeriodSec implements device.Controller.
func (d *CPUTempDTM) PeriodSec() float64 {
	if d.Period <= 0 {
		return 1
	}
	return d.Period
}

// Reset implements device.Controller.
func (d *CPUTempDTM) Reset() { d.Activations = 0 }

// Act implements device.Controller: read the die sensor from the logging
// record (the same observable the stock daemon polls) and clamp by trip
// count.
func (d *CPUTempDTM) Act(p *device.Phone) {
	rec, ok := p.LatestRecord()
	if !ok {
		return
	}
	tripped := 0
	for _, trip := range d.TripC {
		if rec.CPUTempC > trip {
			tripped++
		}
	}
	top := p.CPU().NumLevels() - 1
	clamp := top - tripped*d.StepsPerTrip
	if clamp < 0 {
		clamp = 0
	}
	if clamp < top {
		d.Activations++
	}
	p.CPU().SetMaxLevel(clamp)
}

// String describes the configuration.
func (d *CPUTempDTM) String() string {
	return fmt.Sprintf("cpu-temp-dtm(trips=%v, steps=%d)", d.TripC, d.StepsPerTrip)
}
