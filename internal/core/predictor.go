// Package core implements the paper's contribution: the run-time skin and
// screen temperature predictor learned from on-device observables, and the
// User-specific Skin Temperature-Aware (USTA) DVFS controller that uses it
// to keep the device below a per-user comfort limit.
//
// The division of labour mirrors the paper exactly:
//
//   - Training time: run workloads under the stock governor on a phone
//     instrumented with thermistors, log {CPU temp, battery temp, CPU
//     utilization, CPU frequency} plus the thermistor ground truth
//     (CollectCorpus), and fit a regressor per target (Train).
//   - Run time: every 3 seconds, assemble the same feature tuple from the
//     logging app, predict the skin temperature, and clamp the maximum CPU
//     frequency by how close the prediction is to the user's limit (USTA).
package core

import (
	"context"
	"fmt"

	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/ml"
	"repro/internal/ml/tree"
	"repro/internal/sensors"
	"repro/internal/workload"
)

// Target selects which thermistor the model predicts.
type Target int

// Prediction targets.
const (
	SkinTarget Target = iota
	ScreenTarget
)

// String returns the target name.
func (t Target) String() string {
	if t == ScreenTarget {
		return "screen"
	}
	return "skin"
}

// DatasetFromRecords converts logger records into an ml.Dataset with the
// paper's canonical feature order and the chosen thermistor as the label.
func DatasetFromRecords(recs []sensors.Record, target Target) *ml.Dataset {
	d := ml.NewDataset(sensors.FeatureNames...)
	for _, r := range recs {
		y := r.SkinTempC
		if target == ScreenTarget {
			y = r.ScreenTempC
		}
		d.Add(r.Features(), y)
	}
	return d
}

// CollectCorpus runs each workload on a fresh phone under the stock
// ondemand governor and returns the concatenated training log. maxPerRun
// truncates each workload (<= 0 runs them in full); tests use short
// truncations, the paper-scale experiments run everything.
//
// Deprecated: use CollectCorpusContext, which reports configuration errors
// and honors cancellation. CollectCorpus returns nil on invalid configs.
func CollectCorpus(cfg device.Config, loads []workload.Workload, maxPerRun float64) []sensors.Record {
	corpus, err := CollectCorpusContext(context.Background(), cfg, loads, maxPerRun, 0)
	if err != nil {
		return nil
	}
	return corpus
}

// CollectCorpusContext is CollectCorpus with cancellation and a bounded
// worker pool (workers <= 0: GOMAXPROCS). The runs are independent — one
// fresh phone per workload, seeds derived from the workload index — so the
// concatenated log is identical at any worker count: per-workload logs are
// collected in parallel but stitched together in input order.
func CollectCorpusContext(ctx context.Context, cfg device.Config, loads []workload.Workload, maxPerRun float64, workers int) ([]sensors.Record, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	per := make([][]sensors.Record, len(loads))
	errs := make([]error, len(loads))
	fleet.ForEach(len(loads), workers, func(i int) {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + int64(i+1)*1000
		p, err := device.New(runCfg, nil) // nil governor defaults to ondemand
		if err != nil {
			errs[i] = err
			return
		}
		res, err := p.RunContext(ctx, loads[i], maxPerRun)
		if err != nil {
			errs[i] = err
			return
		}
		per[i] = res.Records
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: corpus run %d (%s): %w", i, loads[i].Name(), err)
		}
	}
	var corpus []sensors.Record
	for _, recs := range per {
		corpus = append(corpus, recs...)
	}
	return corpus, nil
}

// Predictor predicts skin and screen temperatures from a logger record.
type Predictor struct {
	// SkinModel and ScreenModel are trained regressors over the canonical
	// feature tuple.
	SkinModel   ml.Regressor
	ScreenModel ml.Regressor
}

// Train fits a predictor on the corpus using the given model factory (one
// fresh model per target). Passing nil uses REPTree — the paper's choice
// for the run-time implementation ("REPtree builds faster than M5P and
// does not cause halting").
func Train(corpus []sensors.Record, factory func() ml.Regressor) (*Predictor, error) {
	if len(corpus) == 0 {
		return nil, fmt.Errorf("core: empty training corpus")
	}
	if factory == nil {
		factory = func() ml.Regressor { return tree.New(1) }
	}
	skin := factory()
	if err := skin.Fit(DatasetFromRecords(corpus, SkinTarget)); err != nil {
		return nil, fmt.Errorf("core: training skin model: %w", err)
	}
	screen := factory()
	if err := screen.Fit(DatasetFromRecords(corpus, ScreenTarget)); err != nil {
		return nil, fmt.Errorf("core: training screen model: %w", err)
	}
	return &Predictor{SkinModel: skin, ScreenModel: screen}, nil
}

// PredictSkin returns the predicted back-cover temperature for a record.
func (p *Predictor) PredictSkin(r sensors.Record) float64 {
	return p.SkinModel.Predict(r.Features())
}

// PredictScreen returns the predicted screen temperature for a record.
func (p *Predictor) PredictScreen(r sensors.Record) float64 {
	return p.ScreenModel.Predict(r.Features())
}
