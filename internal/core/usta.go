package core

import (
	"fmt"
	"math"

	"repro/internal/device"
)

// Policy maps the margin to the user's limit (limit − predicted skin, in
// °C) and the top DVFS level to a maximum-level clamp. Policies enable the
// controller-shape ablations; the paper's controller is LadderPolicy.
type Policy func(diffC float64, top int) int

// LadderPolicy is the paper's §III-B laddered clamp:
//
//	diff > 2.0 °C        → no clamp (baseline governor runs free)
//	1.0 < diff ≤ 2.0 °C  → maximum frequency lowered by one level
//	0.5 < diff ≤ 1.0 °C  → maximum frequency lowered by two levels
//	diff ≤ 0.5 °C        → minimum frequency level
func LadderPolicy(diffC float64, top int) int {
	return ladder(diffC, top, 2.0)
}

// MarginLadder generalizes LadderPolicy to an arbitrary activation margin:
// the ladder rungs sit at margin, margin/2 and margin/4 (the paper's 2, 1,
// 0.5 °C correspond to margin = 2). Used by the activation-margin
// ablation.
func MarginLadder(marginC float64) Policy {
	if marginC <= 0 {
		marginC = 2.0
	}
	return func(diffC float64, top int) int {
		return ladder(diffC, top, marginC)
	}
}

func ladder(diffC float64, top int, margin float64) int {
	switch {
	case diffC > margin:
		return top
	case diffC > margin/2:
		return top - 1
	case diffC > margin/4:
		return top - 2
	default:
		return 0
	}
}

// HardPolicy is the single-step ablation: full speed outside the activation
// margin, minimum frequency inside it.
func HardPolicy(diffC float64, top int) int {
	if diffC > 2.0 {
		return top
	}
	return 0
}

// ProportionalPolicy is the continuous ablation: the clamp scales linearly
// from the top level (diff ≥ 2 °C) down to the bottom (diff ≤ 0).
func ProportionalPolicy(diffC float64, top int) int {
	if diffC >= 2.0 {
		return top
	}
	if diffC <= 0 {
		return 0
	}
	return int(float64(top) * diffC / 2.0)
}

// USTA is the User-specific Skin Temperature-Aware DVFS controller. It
// implements device.Controller: every Period seconds it predicts the skin
// temperature from the latest logger record and clamps the CPU's maximum
// frequency according to the Policy. Between activations the baseline
// governor operates normally (under the standing clamp).
type USTA struct {
	// Pred supplies skin (and optionally screen) predictions.
	Pred *Predictor
	// SkinLimitC is the user's comfort limit for the back cover.
	SkinLimitC float64
	// ScreenLimitC, when positive, additionally clamps on the predicted
	// screen temperature (the paper suggests screen prediction during
	// calls; this is the extension discussed in §IV-A). Zero disables it.
	ScreenLimitC float64
	// Period is the prediction interval in seconds (paper: 3 s).
	Period float64
	// Policy maps margin to clamp; nil means LadderPolicy.
	Policy Policy

	// Activations counts the controller invocations that imposed a clamp
	// below the top level (i.e. USTA actually intervened).
	Activations int
	// Invocations counts all Act calls that had a record to act on.
	Invocations int
	// SkinPredictions / ScreenPredictions count model evaluations, the
	// §IV-A overhead currency (the paper's selective-prediction suggestion
	// is exactly "skip the screen model when its limit is not configured",
	// which this controller implements).
	SkinPredictions   int
	ScreenPredictions int
}

var _ device.Controller = (*USTA)(nil)

// NewUSTA returns the paper-configured controller: 3 s period, ladder
// policy, skin-only.
func NewUSTA(pred *Predictor, skinLimitC float64) *USTA {
	return &USTA{Pred: pred, SkinLimitC: skinLimitC, Period: 3}
}

// Name implements device.Controller.
func (u *USTA) Name() string {
	return fmt.Sprintf("usta(limit=%.1f)", u.SkinLimitC)
}

// PeriodSec implements device.Controller.
func (u *USTA) PeriodSec() float64 {
	if u.Period <= 0 {
		return 3
	}
	return u.Period
}

// Reset implements device.Controller.
func (u *USTA) Reset() {
	u.Activations = 0
	u.Invocations = 0
	u.SkinPredictions = 0
	u.ScreenPredictions = 0
}

// Act implements device.Controller: predict, compute the margin, clamp.
func (u *USTA) Act(p *device.Phone) {
	rec, ok := p.LatestRecord()
	if !ok {
		return // logging app has not produced a record yet
	}
	u.Invocations++
	pol := u.Policy
	if pol == nil {
		pol = LadderPolicy
	}
	top := p.CPU().NumLevels() - 1

	skin := u.Pred.PredictSkin(rec)
	u.SkinPredictions++
	if math.IsNaN(skin) || math.IsInf(skin, 0) {
		// A defective model must never unclamp a hot device or pin a cool
		// one; hold the previous decision.
		return
	}
	diff := u.SkinLimitC - skin
	clamp := pol(diff, top)

	if u.ScreenLimitC > 0 {
		screen := u.Pred.PredictScreen(rec)
		u.ScreenPredictions++
		if !math.IsNaN(screen) && !math.IsInf(screen, 0) {
			if c := pol(u.ScreenLimitC-screen, top); c < clamp {
				clamp = c
			}
		}
	}
	if clamp < 0 {
		clamp = 0
	}
	if clamp < top {
		u.Activations++
	}
	p.CPU().SetMaxLevel(clamp)
}
