package core

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/sensors"
	"repro/internal/workload"
)

// trainedPredictor caches a predictor across the USTA tests (training is
// the expensive part).
var cachedPredictor *Predictor

func predictor(t *testing.T) *Predictor {
	t.Helper()
	if cachedPredictor != nil {
		return cachedPredictor
	}
	cfg := device.DefaultConfig()
	loads := []workload.Workload{
		workload.Skype(11),
		workload.AnTuTuTester(12),
		workload.StaircaseRamp(13, 0.05, 0.95, 8, 45),
		workload.Idle(240),
	}
	// Full-length runs: the corpus must reach the hot regime, or the tree
	// saturates below the true temperatures and USTA never wakes up.
	corpus := CollectCorpus(cfg, loads, 0)
	p, err := Train(corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	cachedPredictor = p
	return p
}

func TestUSTAName(t *testing.T) {
	u := NewUSTA(nil, 37)
	if !strings.Contains(u.Name(), "37.0") {
		t.Fatalf("Name = %q", u.Name())
	}
	if u.PeriodSec() != 3 {
		t.Fatalf("PeriodSec = %v want 3", u.PeriodSec())
	}
	u.Period = -1
	if u.PeriodSec() != 3 {
		t.Fatal("non-positive period must default to 3")
	}
}

func TestUSTAReducesPeakSkinOnHotWorkload(t *testing.T) {
	// The paper's central claim (Figure 4 / Table 1): on a workload whose
	// baseline peak approaches or exceeds the limit, USTA cuts the peak
	// skin temperature at a modest frequency cost.
	pred := predictor(t)
	w := workload.Skype(21)

	base := device.MustNew(device.DefaultConfig(), nil).Run(w, 900)

	phone := device.MustNew(device.DefaultConfig(), nil)
	u := NewUSTA(pred, 37.0)
	phone.SetController(u)
	usta := phone.Run(w, 900)

	if usta.MaxSkinC >= base.MaxSkinC-0.5 {
		t.Fatalf("USTA peak %.2f did not improve on baseline %.2f", usta.MaxSkinC, base.MaxSkinC)
	}
	if usta.AvgFreqMHz >= base.AvgFreqMHz {
		t.Fatalf("USTA avg freq %.0f should be below baseline %.0f", usta.AvgFreqMHz, base.AvgFreqMHz)
	}
	if u.Activations == 0 {
		t.Fatal("USTA never activated on a hot workload")
	}
}

func TestUSTAHighLimitNeverActs(t *testing.T) {
	// Users with very high thresholds (like participant g at 42.8 °C on a
	// workload peaking in the 30s) must see stock behaviour.
	pred := predictor(t)
	w := workload.YouTube(22)

	base := device.MustNew(device.DefaultConfig(), nil).Run(w, 600)

	phone := device.MustNew(device.DefaultConfig(), nil)
	u := NewUSTA(pred, 42.8)
	phone.SetController(u)
	usta := phone.Run(w, 600)

	if u.Activations != 0 {
		t.Fatalf("USTA activated %d times on a cool workload with a 42.8 °C limit", u.Activations)
	}
	if usta.AvgFreqMHz != base.AvgFreqMHz {
		t.Fatalf("inactive USTA changed behaviour: %.1f vs %.1f MHz", usta.AvgFreqMHz, base.AvgFreqMHz)
	}
}

func TestUSTALowLimitPinsMinimumFrequency(t *testing.T) {
	// A limit far below what even an idle-ish phone reaches forces the
	// minimum level almost immediately.
	pred := predictor(t)
	phone := device.MustNew(device.DefaultConfig(), nil)
	u := NewUSTA(pred, 20.0) // below ambient+rise: always violated
	phone.SetController(u)
	res := phone.Run(workload.Skype(23), 300)
	// After the first activation (t≈3 s) the CPU must sit at 384 MHz.
	freqs := res.Trace.Lookup("freq_mhz").Values
	for i, f := range freqs {
		if res.Trace.TimeSec[i] > 6 && f > 384+1 {
			t.Fatalf("min-freq pin violated at t=%.0f: %.0f MHz", res.Trace.TimeSec[i], f)
		}
	}
}

func TestUSTAInvocationCadence(t *testing.T) {
	pred := predictor(t)
	phone := device.MustNew(device.DefaultConfig(), nil)
	u := NewUSTA(pred, 37)
	phone.SetController(u)
	phone.Run(workload.Skype(24), 60)
	// 60 s at a 3 s period ≈ 20 invocations (first needs a log record).
	if u.Invocations < 17 || u.Invocations > 21 {
		t.Fatalf("USTA ran %d times in 60 s, want ≈20", u.Invocations)
	}
}

func TestUSTAResetClearsCounters(t *testing.T) {
	pred := predictor(t)
	u := NewUSTA(pred, 30)
	phone := device.MustNew(device.DefaultConfig(), nil)
	phone.SetController(u)
	phone.Run(workload.Skype(25), 60)
	if u.Invocations == 0 {
		t.Fatal("expected invocations")
	}
	u.Reset()
	if u.Invocations != 0 || u.Activations != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestUSTAActWithoutRecordIsNoop(t *testing.T) {
	pred := predictor(t)
	u := NewUSTA(pred, 37)
	phone := device.MustNew(device.DefaultConfig(), nil)
	u.Act(phone) // no log record yet
	if u.Invocations != 0 {
		t.Fatal("Act without a record must not count as an invocation")
	}
	if phone.CPU().MaxLevel() != phone.CPU().NumLevels()-1 {
		t.Fatal("Act without a record must not clamp")
	}
}

func TestUSTAScreenLimitExtensionClampsHarder(t *testing.T) {
	pred := predictor(t)
	w := workload.Skype(26)

	skinOnly := device.MustNew(device.DefaultConfig(), nil)
	u1 := NewUSTA(pred, 40)
	skinOnly.SetController(u1)
	r1 := skinOnly.Run(w, 900)

	both := device.MustNew(device.DefaultConfig(), nil)
	u2 := NewUSTA(pred, 40)
	u2.ScreenLimitC = 33 // binding well before the 40 °C skin limit
	both.SetController(u2)
	r2 := both.Run(w, 900)

	if r2.AvgFreqMHz >= r1.AvgFreqMHz {
		t.Fatalf("screen limit should clamp harder: %.0f vs %.0f MHz", r2.AvgFreqMHz, r1.AvgFreqMHz)
	}
	if r2.MaxScreenC >= r1.MaxScreenC {
		t.Fatalf("screen limit should lower screen peak: %.2f vs %.2f", r2.MaxScreenC, r1.MaxScreenC)
	}
}

func TestUSTAPolicyAblationOrdering(t *testing.T) {
	// The hard policy sacrifices the most frequency; the ladder sits in
	// between free-running and hard clamping.
	pred := predictor(t)
	w := workload.Skype(27)
	run := func(pol Policy) *device.RunResult {
		phone := device.MustNew(device.DefaultConfig(), nil)
		u := NewUSTA(pred, 37)
		u.Policy = pol
		phone.SetController(u)
		return phone.Run(w, 900)
	}
	ladder := run(nil) // default LadderPolicy
	hard := run(HardPolicy)
	base := device.MustNew(device.DefaultConfig(), nil).Run(w, 900)

	if hard.AvgFreqMHz >= ladder.AvgFreqMHz {
		t.Fatalf("hard policy should cost more frequency: %.0f vs ladder %.0f", hard.AvgFreqMHz, ladder.AvgFreqMHz)
	}
	if ladder.AvgFreqMHz >= base.AvgFreqMHz {
		t.Fatalf("ladder should cost some frequency: %.0f vs base %.0f", ladder.AvgFreqMHz, base.AvgFreqMHz)
	}
	if hard.MaxSkinC > ladder.MaxSkinC+0.3 {
		t.Fatalf("hard policy should not run hotter: %.2f vs %.2f", hard.MaxSkinC, ladder.MaxSkinC)
	}
}

func TestUSTAWithStalePredictorStillBounded(t *testing.T) {
	// Failure injection: a predictor trained on a tiny, unrepresentative
	// corpus (idle only) misestimates — USTA must still keep the clamp
	// inside the valid level range and never crash.
	cfg := device.DefaultConfig()
	corpus := CollectCorpus(cfg, []workload.Workload{workload.Idle(300)}, 0)
	bad, err := Train(corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	phone := device.MustNew(device.DefaultConfig(), nil)
	u := NewUSTA(bad, 37)
	phone.SetController(u)
	res := phone.Run(workload.Skype(28), 300)
	if res.MaxSkinC <= 0 {
		t.Fatal("run produced no data")
	}
	lvl := phone.CPU().MaxLevel()
	if lvl < 0 || lvl >= phone.CPU().NumLevels() {
		t.Fatalf("clamp out of range: %d", lvl)
	}
}

func TestCollectCorpusSeparatesSeeds(t *testing.T) {
	cfg := device.DefaultConfig()
	a := CollectCorpus(cfg, []workload.Workload{workload.Idle(120)}, 0)
	b := CollectCorpus(cfg, []workload.Workload{workload.Idle(120)}, 0)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("corpus sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("CollectCorpus is not deterministic")
		}
	}
}

func TestPredictorMatchesRecordInterface(t *testing.T) {
	pred := predictor(t)
	rec := sensors.Record{CPUTempC: 60, BatteryTempC: 34, Util: 0.8, FreqMHz: 1350}
	s := pred.PredictSkin(rec)
	if s < 20 || s > 60 {
		t.Fatalf("implausible skin prediction %v", s)
	}
	sc := pred.PredictScreen(rec)
	if sc < 20 || sc > 60 {
		t.Fatalf("implausible screen prediction %v", sc)
	}
}
