package core

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/ml"
	"repro/internal/workload"
)

func TestRecalibratorRetrainsOnSchedule(t *testing.T) {
	pred := predictor(t)
	u := NewUSTA(pred, 37)
	r := NewRecalibrator(u)
	r.RetrainEverySec = 120
	r.MinRecords = 60

	phone := device.MustNew(device.DefaultConfig(), nil)
	phone.SetController(r)
	phone.Run(workload.Skype(31), 600)

	// 600 s with a 120 s interval: first retrain at ~120 s -> ~4-5 total.
	if r.Retrains < 3 || r.Retrains > 6 {
		t.Fatalf("retrains = %d, want ≈4-5 in 600 s at 120 s interval", r.Retrains)
	}
}

func TestRecalibratorAdaptsToAmbientShift(t *testing.T) {
	// A predictor trained at 25 °C ambient mis-estimates on a 33 °C day.
	// The recalibrating controller, refitting from the live log, must end
	// the run with a lower prediction error than the frozen controller.
	basePred := predictor(t) // trained at 25 °C

	hotCfg := device.DefaultConfig()
	hotCfg.Thermal.Ambient = 33

	lastErr := func(p *device.Phone, pred *Predictor) float64 {
		recs := p.Records()
		if len(recs) < 100 {
			t.Fatal("not enough records")
		}
		var mae float64
		n := 0
		for _, r := range recs[len(recs)-100:] {
			mae += math.Abs(pred.PredictSkin(r) - r.SkinTempC)
			n++
		}
		return mae / float64(n)
	}

	frozenPhone := device.MustNew(hotCfg, nil)
	frozen := NewUSTA(basePred, 40)
	frozenPhone.SetController(frozen)
	frozenPhone.Run(workload.Skype(32), 1200)
	frozenErr := lastErr(frozenPhone, frozen.Pred)

	recalPhone := device.MustNew(hotCfg, nil)
	ru := NewUSTA(basePred, 40)
	recal := NewRecalibrator(ru)
	recal.RetrainEverySec = 180
	recalPhone.SetController(recal)
	recalPhone.Run(workload.Skype(32), 1200)
	recalErr := lastErr(recalPhone, ru.Pred)

	if recal.Retrains == 0 {
		t.Fatal("recalibrator never retrained")
	}
	if recalErr >= frozenErr {
		t.Fatalf("recalibration did not improve prediction on an ambient shift: %.3f vs frozen %.3f °C MAE",
			recalErr, frozenErr)
	}
}

func TestRecalibratorNameAndReset(t *testing.T) {
	u := NewUSTA(nil, 37)
	r := NewRecalibrator(u)
	if r.Name() == "" || r.PeriodSec() != u.PeriodSec() {
		t.Fatal("delegation broken")
	}
	r.Retrains = 3
	r.lastRetrain = 100
	r.Reset()
	if r.Retrains != 0 || r.lastRetrain != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// nanModel always predicts NaN — the failure-injection stub.
type nanModel struct{}

func (nanModel) Name() string              { return "nan" }
func (nanModel) Fit(*ml.Dataset) error     { return nil }
func (nanModel) Predict([]float64) float64 { return math.NaN() }

func TestUSTANaNGuardHoldsLastClamp(t *testing.T) {
	phone := device.MustNew(device.DefaultConfig(), nil)
	u := NewUSTA(&Predictor{SkinModel: nanModel{}, ScreenModel: nanModel{}}, 37)
	phone.SetController(u)
	res := phone.Run(workload.Skype(33), 120)
	// The defective model must not have crashed the run nor moved the
	// clamp off the reset position.
	if res.MaxSkinC <= 0 {
		t.Fatal("run produced no data")
	}
	if phone.CPU().MaxLevel() != phone.CPU().NumLevels()-1 {
		t.Fatalf("NaN predictions moved the clamp to %d", phone.CPU().MaxLevel())
	}
	if u.Activations != 0 {
		t.Fatalf("NaN predictions counted as %d activations", u.Activations)
	}
}

func TestUSTASelectivePredictionSkipsScreen(t *testing.T) {
	pred := predictor(t)
	phone := device.MustNew(device.DefaultConfig(), nil)
	u := NewUSTA(pred, 37) // ScreenLimitC unset -> screen model never runs
	phone.SetController(u)
	phone.Run(workload.Skype(34), 120)
	if u.SkinPredictions == 0 {
		t.Fatal("no skin predictions")
	}
	if u.ScreenPredictions != 0 {
		t.Fatalf("screen model ran %d times with no screen limit configured", u.ScreenPredictions)
	}

	phone2 := device.MustNew(device.DefaultConfig(), nil)
	u2 := NewUSTA(pred, 37)
	u2.ScreenLimitC = 34
	phone2.SetController(u2)
	phone2.Run(workload.Skype(34), 120)
	if u2.ScreenPredictions == 0 {
		t.Fatal("screen model never ran with a screen limit configured")
	}
}
