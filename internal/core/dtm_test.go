package core

import (
	"testing"

	"repro/internal/device"
	"repro/internal/users"
	"repro/internal/workload"
)

func TestDTMNeverFiresOnPaperWorkloadsWhileComfortIsExceeded(t *testing.T) {
	// The paper's §III motivation, executable: run the hottest evaluation
	// workloads under the stock CPU-temperature DTM. The die never reaches
	// the first trip point — the DTM takes no action — yet the skin
	// exceeds every participant's comfort limit.
	pop := users.StudyPopulation()
	minLimit := pop[0].SkinLimitC
	maxLimit := pop[0].SkinLimitC
	for _, u := range pop {
		if u.SkinLimitC < minLimit {
			minLimit = u.SkinLimitC
		}
		if u.SkinLimitC > maxLimit {
			maxLimit = u.SkinLimitC
		}
	}

	for _, w := range []workload.Workload{workload.Skype(41), workload.AnTuTuTester(42)} {
		phone := device.MustNew(device.DefaultConfig(), nil)
		dtm := NewCPUTempDTM()
		phone.SetController(dtm)
		res := phone.Run(w, 0)

		if dtm.Activations != 0 {
			t.Fatalf("%s: stock DTM intervened %d times — die model too hot for the paper's regime",
				w.Name(), dtm.Activations)
		}
		if res.MaxDieC >= dtm.TripC[0] {
			t.Fatalf("%s: die peaked at %.1f °C, above the first trip", w.Name(), res.MaxDieC)
		}
		if res.MaxSkinC < minLimit {
			t.Fatalf("%s: skin peaked at %.1f °C without crossing even the most sensitive limit (%.1f)",
				w.Name(), res.MaxSkinC, minLimit)
		}
	}
}

func TestDTMDoesThrottleWhenDieActuallyOverheats(t *testing.T) {
	// Sanity: the DTM is functional — with trips lowered into the die's
	// operating range it clamps.
	phone := device.MustNew(device.DefaultConfig(), nil)
	dtm := NewCPUTempDTM()
	dtm.TripC = []float64{45, 50, 55}
	phone.SetController(dtm)
	res := phone.Run(workload.SquareWave(3, 10, 1.0, 0.95, 0.95, 600), 0)
	if dtm.Activations == 0 {
		t.Fatal("lowered trips never fired under a saturating load")
	}
	if res.MaxDieC > 70 {
		t.Fatalf("throttling failed to bound the die: %.1f °C", res.MaxDieC)
	}
}

func TestDTMClampDepthScalesWithTrips(t *testing.T) {
	// With trips deep inside the die's operating range the controller
	// settles into a throttled equilibrium: the die cools under the clamp
	// until only the lower trips remain active — reactive DTM oscillates
	// around its trip points rather than pinning the deepest clamp.
	phone := device.MustNew(device.DefaultConfig(), nil)
	dtm := NewCPUTempDTM()
	dtm.TripC = []float64{30, 40, 50}
	phone.SetController(dtm)
	res := phone.Run(workload.SquareWave(4, 10, 1.0, 0.95, 0.95, 120), 0)
	top := phone.CPU().NumLevels() - 1
	got := phone.CPU().MaxLevel()
	if got >= top {
		t.Fatalf("clamp = %d; expected a standing throttle below the top level", got)
	}
	if got < top-3*dtm.StepsPerTrip {
		t.Fatalf("clamp = %d deeper than all trips allow (%d)", got, top-3*dtm.StepsPerTrip)
	}
	if res.MaxDieC < 30 {
		t.Fatalf("die never reached the first trip: %.1f °C", res.MaxDieC)
	}
}

func TestDTMDefaultsAndReset(t *testing.T) {
	dtm := NewCPUTempDTM()
	if dtm.PeriodSec() != 1 {
		t.Fatalf("PeriodSec = %v", dtm.PeriodSec())
	}
	dtm.Period = -1
	if dtm.PeriodSec() != 1 {
		t.Fatal("non-positive period must default")
	}
	dtm.Activations = 5
	dtm.Reset()
	if dtm.Activations != 0 {
		t.Fatal("Reset did not clear")
	}
	if dtm.Name() == "" || dtm.String() == "" {
		t.Fatal("identity strings broken")
	}
}

func TestDTMNoRecordIsNoop(t *testing.T) {
	phone := device.MustNew(device.DefaultConfig(), nil)
	dtm := NewCPUTempDTM()
	dtm.Act(phone)
	if dtm.Activations != 0 || phone.CPU().MaxLevel() != phone.CPU().NumLevels()-1 {
		t.Fatal("Act without a record must be a no-op")
	}
}
