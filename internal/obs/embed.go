package obs

import _ "embed"

// DashboardHTML is the single-file live dashboard: vanilla HTML/JS that
// lists jobs, subscribes to a job's SSE snapshot stream, and renders the
// comfort distribution, violation heat map, per-host saturation, and
// activity sparkline. ustafleetd serves it at GET /.
//
//go:embed dashboard.html
var DashboardHTML []byte
