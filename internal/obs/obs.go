// Package obs is the live observability layer over a running fleet
// sweep: a streaming aggregation engine that consumes the same telemetry
// stream the analytics layer consumes post-hoc, and maintains rolling
// fleet-wide state in O(jobs) memory — fixed-bin skin-temperature
// histograms per user class, the ambient × limit violation heat map,
// per-job progress, and a time-bucketed activity ring for sparklines.
//
// The design constraint is determinism: the final snapshot of a run must
// be byte-equal to what internal/analytics computes post-hoc from the
// same results. The Aggregator therefore does no floating-point
// aggregation of its own across jobs — per-job violation state folds
// through analytics.ViolationAccum (the exact arithmetic, in the exact
// order, of the post-hoc path), and every snapshot reduces the per-job
// stats with the real analytics functions (ComfortByUser,
// ViolationHeatMap). Sample-count state (histograms, sparklines) is
// integer-only and order-independent.
package obs

import (
	"sync"
	"time"

	"repro/internal/analytics"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/scenario"
	"repro/internal/sink"
)

// Aggregator is one run's streaming aggregation state. Wire it as (or
// tee it into) the fleet sink, report completions through JobDone, and
// mark the end of the run with Finish; Snapshot may be called at any
// time from any goroutine. The zero value is not usable — construct
// with NewAggregator.
type Aggregator struct {
	// FleetFn, when set, is polled at snapshot time for a
	// JSON-marshalable fleet/host gauge payload (e.g. the networked
	// runner's RunnerStats). It is called without the aggregator lock
	// held and must be safe for concurrent use.
	FleetFn func() any

	mu      sync.Mutex
	stats   []analytics.JobStat
	acc     []analytics.ViolationAccum
	limits  []float64
	jobDone []bool
	classOf []int // job index → hists index
	hists   []ClassHist
	spark   sparkRing
	samples int64
	done    int
	failed  int
	status  string
	final   bool
	seq     int
	watch   map[chan struct{}]struct{}
	now     func() time.Time
}

// NewAggregator creates an aggregator for one expanded grid. Job metadata
// (grid coordinates, user classes, limits) is fixed up front; everything
// else streams in.
func NewAggregator(grid *scenario.Grid) *Aggregator {
	a := &Aggregator{
		stats:   make([]analytics.JobStat, len(grid.Points)),
		acc:     make([]analytics.ViolationAccum, len(grid.Points)),
		limits:  grid.Limits(),
		jobDone: make([]bool, len(grid.Points)),
		classOf: make([]int, len(grid.Points)),
		status:  "running",
		watch:   make(map[chan struct{}]struct{}),
		now:     time.Now,
	}
	histIdx := map[string]int{}
	for i, pt := range grid.Points {
		a.stats[i] = analytics.JobStat{Point: pt, OverFrac: nan(), MeanExcessC: nan()}
		hi, ok := histIdx[pt.UserID]
		if !ok {
			hi = len(a.hists)
			histIdx[pt.UserID] = hi
			a.hists = append(a.hists, newClassHist(pt.UserID, pt.LimitC))
		}
		a.classOf[i] = hi
	}
	return a
}

// Accept folds one telemetry sample into the rolling state. It
// implements sink.Sink and is safe for concurrent use; samples for jobs
// outside the grid are ignored.
func (a *Aggregator) Accept(job sink.JobID, s device.Sample) {
	i := int(job)
	a.mu.Lock()
	defer a.mu.Unlock()
	if i < 0 || i >= len(a.stats) || a.jobDone[i] {
		return
	}
	a.acc[i].Add(s.SkinC, a.limits[i])
	a.hists[a.classOf[i]].add(s.SkinC, a.limits[i])
	a.samples++
	a.spark.sample(a.now().Unix(), s.SkinC)
}

// Close implements sink.Sink; the aggregator holds no external
// resources, and its state stays queryable after the run.
func (a *Aggregator) Close() error { return nil }

// JobDone records one job's completion: the result (or error) joins the
// job's grid point, and the job's violation counters are reduced exactly
// as the post-hoc path reduces them. Samples for the job arriving after
// JobDone are dropped, mirroring the telemetry Bus.
func (a *Aggregator) JobDone(res fleet.JobResult) {
	a.mu.Lock()
	i := res.Index
	if i < 0 || i >= len(a.stats) || a.jobDone[i] {
		a.mu.Unlock()
		return
	}
	st := &a.stats[i]
	st.Result = res.Result
	st.Err = res.Err
	a.acc[i].ApplyTo(st)
	a.jobDone[i] = true
	a.done++
	if res.Err != nil {
		a.failed++
	}
	a.spark.job(a.now().Unix())
	a.mu.Unlock()
	a.notify()
}

// SeedJob restores one recovered cell into the rolling state: the
// ledgered result joins its grid point and the journaled violation
// counters are reduced through the same ApplyTo as a live completion, so
// a resumed run's final Aggregates stay byte-equal to an uninterrupted
// one. Sample-level extras (histograms, sparklines, sample count) are not
// restored — the pre-crash stream is gone and they sit outside the
// determinism pin. Call before the live subset starts streaming.
func (a *Aggregator) SeedJob(res fleet.JobResult, acc analytics.ViolationAccum) {
	a.mu.Lock()
	i := res.Index
	if i < 0 || i >= len(a.stats) || a.jobDone[i] {
		a.mu.Unlock()
		return
	}
	a.acc[i] = acc
	st := &a.stats[i]
	st.Result = res.Result
	st.Err = res.Err
	a.acc[i].ApplyTo(st)
	a.jobDone[i] = true
	a.done++
	if res.Err != nil {
		a.failed++
	}
	a.mu.Unlock()
	a.notify()
}

// Finish marks the run complete with its terminal status ("done",
// "failed", or "cancelled"). Snapshots taken afterwards carry Final=true
// and are stable: the aggregates they carry are the run's post-hoc
// analytics, byte for byte.
func (a *Aggregator) Finish(status string) {
	a.mu.Lock()
	a.status = status
	a.final = true
	a.mu.Unlock()
	a.notify()
}

// Progress is the cheap scalar view of the run — what /metrics scrapes
// and status lines want, without the analytics reduction Snapshot runs.
type Progress struct {
	Status  string
	Done    int
	Failed  int
	Total   int
	Samples int64
	Final   bool
}

// Progress returns the current scalar progress counters.
func (a *Aggregator) Progress() Progress {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Progress{Status: a.status, Done: a.done, Failed: a.failed,
		Total: len(a.stats), Samples: a.samples, Final: a.final}
}

// HistSnapshot returns a deep copy of the per-class skin histograms.
func (a *Aggregator) HistSnapshot() []ClassHist {
	a.mu.Lock()
	defer a.mu.Unlock()
	return copyHists(a.hists)
}

// Snapshot is one ordered frame of the SSE stream: monotonically
// increasing Seq, scalar progress, the deterministic Aggregates section,
// and the wall-clock-shaped extras (histograms, sparkline ring, fleet
// gauges) that live outside the determinism pin.
type Snapshot struct {
	Seq     int    `json:"seq"`
	Status  string `json:"status"`
	Final   bool   `json:"final"`
	Done    int    `json:"done"`
	Failed  int    `json:"failed"`
	Total   int    `json:"total"`
	Samples int64  `json:"samples"`
	// Aggregates is the deterministic section: on the final snapshot its
	// bytes equal the post-hoc analytics computation (AggregatesFromStats
	// over the flattened results).
	Aggregates Aggregates `json:"aggregates"`
	// SkinHist are the per-user-class fixed-bin skin-temperature
	// histograms (sample-level state the post-hoc path does not retain).
	SkinHist []ClassHist `json:"skin_hist"`
	// Spark is the recent-activity ring, oldest bucket first.
	Spark []SparkBucket `json:"spark,omitempty"`
	// Fleet is FleetFn's payload (e.g. net.RunnerStats), when wired.
	Fleet any `json:"fleet,omitempty"`
}

// Snapshot builds the current frame. Each call consumes one sequence
// number; frames read by one client are strictly ordered.
func (a *Aggregator) Snapshot() Snapshot {
	var fleetState any
	if fn := a.FleetFn; fn != nil {
		fleetState = fn()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq++
	return Snapshot{
		Seq:        a.seq,
		Status:     a.status,
		Final:      a.final,
		Done:       a.done,
		Failed:     a.failed,
		Total:      len(a.stats),
		Samples:    a.samples,
		Aggregates: AggregatesFromStats(a.stats),
		SkinHist:   copyHists(a.hists),
		Spark:      a.spark.snapshot(a.now().Unix()),
		Fleet:      fleetState,
	}
}

// Watch registers for change notification: the returned channel receives
// (with at-least-once coalescing) after every job completion and after
// Finish. Call cancel to unregister.
func (a *Aggregator) Watch() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	a.mu.Lock()
	a.watch[ch] = struct{}{}
	a.mu.Unlock()
	return ch, func() {
		a.mu.Lock()
		delete(a.watch, ch)
		a.mu.Unlock()
	}
}

func (a *Aggregator) notify() {
	a.mu.Lock()
	for ch := range a.watch {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	a.mu.Unlock()
}

func copyHists(hs []ClassHist) []ClassHist {
	out := make([]ClassHist, len(hs))
	for i, h := range hs {
		out[i] = h
		out[i].Bins = append([]int64(nil), h.Bins...)
	}
	return out
}
