package obs

import "math"

// sparkLen is the sparkline window: one bucket per second, two minutes
// deep. The ring is a fixed array — O(1) memory however long the run.
const sparkLen = 120

// SparkBucket is one second of fleet activity: samples ingested, jobs
// completed, and the hottest skin temperature seen (null when the bucket
// saw no samples).
type SparkBucket struct {
	// T is the bucket's unix second.
	T       int64 `json:"t"`
	Samples int64 `json:"samples"`
	Jobs    int   `json:"jobs"`
	// MaxSkinC is the bucket's peak skin temperature (null without samples).
	MaxSkinC Float `json:"max_skin_c"`
}

// sparkRing maps unix second t to slot t % sparkLen; a slot whose stored
// T disagrees with the incoming second is stale and is reset in place.
type sparkRing struct {
	slots [sparkLen]SparkBucket
}

func slot(t int64) int { return int(((t % sparkLen) + sparkLen) % sparkLen) }

func (r *sparkRing) at(t int64) *SparkBucket {
	s := &r.slots[slot(t)]
	if s.T != t {
		*s = SparkBucket{T: t, MaxSkinC: Float(math.NaN())}
	}
	return s
}

func (r *sparkRing) sample(t int64, skinC float64) {
	s := r.at(t)
	s.Samples++
	if math.IsNaN(float64(s.MaxSkinC)) || skinC > float64(s.MaxSkinC) {
		s.MaxSkinC = Float(skinC)
	}
}

func (r *sparkRing) job(t int64) {
	r.at(t).Jobs++
}

// snapshot returns the window's populated buckets, oldest first.
func (r *sparkRing) snapshot(now int64) []SparkBucket {
	var out []SparkBucket
	for t := now - sparkLen + 1; t <= now; t++ {
		s := r.slots[slot(t)]
		if s.T == t && (s.Samples > 0 || s.Jobs > 0) {
			out = append(out, s)
		}
	}
	return out
}
