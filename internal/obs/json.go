package obs

import (
	"math"
	"strconv"

	"repro/internal/analytics"
)

// Float is a float64 whose NaN marshals as JSON null (encoding/json
// rejects NaN outright). Analytics uses NaN for "no data" — empty heat
// map buckets, violation-free percentiles — so every analytics float
// crossing the wire rides this type.
type Float float64

// MarshalJSON renders NaN as null and everything else like float64.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) {
		return []byte("null"), nil
	}
	return []byte(strconv.FormatFloat(v, 'g', -1, 64)), nil
}

// UnmarshalJSON accepts null as NaN, numbers as themselves.
func (f *Float) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = Float(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

func nan() float64 { return math.NaN() }

// HeatMap is analytics.HeatMap projected into a JSON-safe shape: same
// axes, counts, and cell statistics, with NaN cells rendered as null.
type HeatMap struct {
	RowLabel   string    `json:"row_label"`
	ColLabel   string    `json:"col_label"`
	ValueLabel string    `json:"value_label"`
	Rows       []float64 `json:"rows"`
	Cols       []float64 `json:"cols"`
	Cells      [][]Float `json:"cells"`
	Counts     [][]int   `json:"counts"`
	P95        [][]Float `json:"p95"`
	P99        [][]Float `json:"p99"`
}

func heatMapJSON(h *analytics.HeatMap) *HeatMap {
	out := &HeatMap{
		RowLabel: h.RowLabel, ColLabel: h.ColLabel, ValueLabel: h.ValueLabel,
		Rows: h.Rows, Cols: h.Cols,
		Cells:  floatRows(h.Cells),
		Counts: h.Counts,
		P95:    floatRows(h.P95),
		P99:    floatRows(h.P99),
	}
	return out
}

func floatRows(rows [][]float64) [][]Float {
	out := make([][]Float, len(rows))
	for i, row := range rows {
		fr := make([]Float, len(row))
		for j, v := range row {
			fr[j] = Float(v)
		}
		out[i] = fr
	}
	return out
}

// Comfort is analytics.UserComfort in JSON-tagged form. Per-user means
// are NaN-free by construction (zero when no violation data), so plain
// float64 fields are safe here.
type Comfort struct {
	UserID       string  `json:"user_id"`
	LimitC       float64 `json:"limit_c"`
	N            int     `json:"n"`
	NViolation   int     `json:"n_violation"`
	MeanOverFrac float64 `json:"mean_over_frac"`
	MaxOverFrac  float64 `json:"max_over_frac"`
	MeanExcessC  float64 `json:"mean_excess_c"`
	MeanSlowdown float64 `json:"mean_slowdown"`
	MeanEnergyJ  float64 `json:"mean_energy_j"`
}

// Aggregates is the deterministic snapshot section: the paper-shaped
// reductions of the run so far, computed by the real analytics functions
// over the per-job stats. On a finished run this is — byte for byte —
// what the post-hoc pipeline (Flatten + ViolationSink.Apply +
// ComfortByUser + ViolationHeatMap) produces; the pinned equality test
// in internal/fleet/net enforces it.
type Aggregates struct {
	Comfort []Comfort `json:"comfort"`
	HeatMap *HeatMap  `json:"heat_map"`
}

// AggregatesFromStats reduces per-job stats to the Aggregates section.
// Both the live Aggregator (every snapshot) and the post-hoc reference
// path (tests, ustasim) call this one function, so equality of the two
// reduces to equality of the per-job stats feeding it.
func AggregatesFromStats(stats []analytics.JobStat) Aggregates {
	ucs := analytics.ComfortByUser(stats)
	comfort := make([]Comfort, len(ucs))
	for i, uc := range ucs {
		comfort[i] = Comfort{
			UserID: uc.UserID, LimitC: uc.LimitC,
			N: uc.N, NViolation: uc.NViolation,
			MeanOverFrac: uc.MeanOverFrac, MaxOverFrac: uc.MaxOverFrac,
			MeanExcessC:  uc.MeanExcessC,
			MeanSlowdown: uc.MeanSlowdown, MeanEnergyJ: uc.MeanEnergyJ,
		}
	}
	return Aggregates{Comfort: comfort, HeatMap: heatMapJSON(analytics.ViolationHeatMap(stats))}
}
