package obs

// Fixed histogram geometry: 0.5 °C bins spanning the plausible skin
// range. Samples outside land in the Under/Over overflow counters, so
// the memory footprint is constant regardless of run length.
const (
	HistMinC = 20.0
	HistMaxC = 60.0
	HistBins = 80
	histBinW = (HistMaxC - HistMinC) / HistBins
)

// ClassHist is one user class's fixed-bin skin-temperature histogram —
// the comfort distribution at sample granularity, which the post-hoc
// path cannot reconstruct once traces are dropped. Counts are integers,
// so the histogram is identical across worker counts and runners.
type ClassHist struct {
	// Class is the user ID ("default" for the zero user).
	Class string `json:"class"`
	// LimitC is the class's personal skin limit.
	LimitC float64 `json:"limit_c"`
	// Samples counts every sample; OverLimit those strictly above LimitC.
	Samples   int64 `json:"samples"`
	OverLimit int64 `json:"over_limit"`
	// Bins[i] counts samples in [HistMinC + i·0.5, HistMinC + (i+1)·0.5);
	// Under/Over catch samples outside the histogram span.
	Under int64   `json:"under"`
	Over  int64   `json:"over"`
	Bins  []int64 `json:"bins"`
}

func newClassHist(class string, limitC float64) ClassHist {
	return ClassHist{Class: class, LimitC: limitC, Bins: make([]int64, HistBins)}
}

func (h *ClassHist) add(skinC, limitC float64) {
	h.Samples++
	if skinC > limitC {
		h.OverLimit++
	}
	switch {
	case skinC < HistMinC:
		h.Under++
	case skinC >= HistMaxC:
		h.Over++
	default:
		i := int((skinC - HistMinC) / histBinW)
		if i >= HistBins { // guard the float boundary
			i = HistBins - 1
		}
		h.Bins[i]++
	}
}
