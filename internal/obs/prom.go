package obs

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// MetricWriter renders Prometheus text exposition format (version
// 0.0.4) without external dependencies. Families must be written as a
// unit — call Family once, then Sample for each labeled value — because
// the format requires a family's samples to follow its HELP/TYPE header
// contiguously.
type MetricWriter struct {
	b    bytes.Buffer
	seen map[string]bool
}

// Label is one name="value" metric label.
type Label struct {
	Name, Value string
}

// Family starts a metric family: HELP and TYPE headers, written once
// per name even if declared again.
func (w *MetricWriter) Family(name, help, typ string) {
	if w.seen == nil {
		w.seen = make(map[string]bool)
	}
	if w.seen[name] {
		return
	}
	w.seen[name] = true
	fmt.Fprintf(&w.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample appends one sample of the most recently declared family.
func (w *MetricWriter) Sample(name string, labels []Label, v float64) {
	w.b.WriteString(name)
	if len(labels) > 0 {
		w.b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.b.WriteByte(',')
			}
			// %q yields exactly the escaping the format mandates for
			// label values: backslash, double-quote, and newline.
			fmt.Fprintf(&w.b, "%s=%q", l.Name, l.Value)
		}
		w.b.WriteByte('}')
	}
	w.b.WriteByte(' ')
	w.b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	w.b.WriteByte('\n')
}

// WriteTo flushes the rendered exposition to w.
func (w *MetricWriter) WriteTo(dst io.Writer) (int64, error) {
	n, err := dst.Write(w.b.Bytes())
	return int64(n), err
}
