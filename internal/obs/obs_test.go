package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/scenario"
	"repro/internal/sink"
)

func TestClassHistBinning(t *testing.T) {
	h := newClassHist("a", 40)
	h.add(19.9, 40)  // below span
	h.add(60.0, 40)  // at the top edge: overflow by definition
	h.add(100.0, 40) // far above: overflow and over-limit
	h.add(20.0, 40)  // first bin, inclusive lower edge
	h.add(59.9, 40)  // last bin
	h.add(40.25, 40) // interior bin, just over the limit

	if h.Samples != 6 {
		t.Fatalf("samples = %d, want 6", h.Samples)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("overflow = under %d / over %d, want 1 / 2", h.Under, h.Over)
	}
	// Strictly-above semantics: 60, 100, 59.9 and 40.25 exceed the limit.
	if h.OverLimit != 4 {
		t.Fatalf("over limit = %d, want 4", h.OverLimit)
	}
	if h.Bins[0] != 1 || h.Bins[HistBins-1] != 1 || h.Bins[40] != 1 {
		t.Fatalf("bins misplaced: first=%d last=%d mid=%d", h.Bins[0], h.Bins[HistBins-1], h.Bins[40])
	}
	var binned int64
	for _, n := range h.Bins {
		binned += n
	}
	if binned+h.Under+h.Over != h.Samples {
		t.Fatalf("bins+overflow = %d, want %d", binned+h.Under+h.Over, h.Samples)
	}
}

func TestSparkRing(t *testing.T) {
	if got := slot(-3); got != 117 {
		t.Fatalf("slot(-3) = %d, want 117 (negative seconds must not index negatively)", got)
	}
	var r sparkRing
	r.sample(5, 37)
	r.sample(5, 39)
	r.sample(5, 38) // non-monotone arrival: max stays 39
	r.job(6)
	snap := r.snapshot(6)
	if len(snap) != 2 || snap[0].T != 5 || snap[1].T != 6 {
		t.Fatalf("snapshot = %+v, want buckets t=5,6 oldest first", snap)
	}
	if snap[0].Samples != 3 || float64(snap[0].MaxSkinC) != 39 {
		t.Fatalf("bucket 5 = %+v", snap[0])
	}
	if snap[1].Jobs != 1 || !math.IsNaN(float64(snap[1].MaxSkinC)) {
		t.Fatalf("bucket 6 = %+v, want 1 job and null max (no samples)", snap[1])
	}

	// A full window later the slot is stale and resets in place; the old
	// second no longer appears in the window.
	r.sample(5+sparkLen, 42)
	snap = r.snapshot(5 + sparkLen)
	if len(snap) != 2 || snap[0].T != 6 || snap[1].T != 5+sparkLen {
		t.Fatalf("post-wrap snapshot = %+v", snap)
	}
	if snap[1].Samples != 1 || float64(snap[1].MaxSkinC) != 42 {
		t.Fatalf("recycled bucket = %+v, want a fresh count", snap[1])
	}
}

func TestFloatJSON(t *testing.T) {
	type wrap struct {
		A Float `json:"a"`
		B Float `json:"b"`
	}
	data, err := json.Marshal(wrap{A: Float(math.NaN()), B: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(data); got != `{"a":null,"b":0.25}` {
		t.Fatalf("marshal = %s", got)
	}
	var back wrap
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(back.A)) || back.B != 0.25 {
		t.Fatalf("roundtrip = %+v", back)
	}
}

func TestMetricWriterFormat(t *testing.T) {
	mw := &MetricWriter{}
	mw.Family("x_total", "Help text.", "counter")
	mw.Sample("x_total", []Label{{Name: "host", Value: `a"b` + "\nc"}}, 1.5)
	mw.Family("x_total", "Duplicate declaration.", "counter") // dropped
	mw.Sample("x_total", nil, 2)
	var b strings.Builder
	if _, err := mw.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP x_total Help text.\n# TYPE x_total counter\n" +
		"x_total{host=\"a\\\"b\\nc\"} 1.5\n" +
		"x_total 2\n"
	if b.String() != want {
		t.Fatalf("exposition:\n got %q\nwant %q", b.String(), want)
	}
}

// obsGrid expands a 2-job grid (users a and b, one ambient, one 40 °C
// limit) for aggregator tests.
func obsGrid(t *testing.T) *scenario.Grid {
	t.Helper()
	spec, err := scenario.Parse([]byte(`{
	  "version": 1, "name": "unit",
	  "workloads": ["skype"],
	  "population": ["a", "b"],
	  "ambients_c": [30],
	  "limits_c": [40],
	  "schemes": [{"name": "baseline"}],
	  "duration": {"scale": 0.05},
	  "seeds": {"policy": "indexed", "base": 1}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	devCfg := device.DefaultConfig()
	grid, err := spec.Expand(scenario.Env{Device: &devCfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Points) != 2 {
		t.Fatalf("grid = %d points, want 2", len(grid.Points))
	}
	return grid
}

func TestAggregatorLifecycle(t *testing.T) {
	a := NewAggregator(obsGrid(t))
	a.now = func() time.Time { return time.Unix(1000, 0) }
	ch, cancel := a.Watch()
	defer cancel()

	// Job 0: one sample over the 40 °C limit by 1 °C, one under.
	a.Accept(0, device.Sample{SkinC: 41})
	a.Accept(0, device.Sample{SkinC: 39})
	// Job 1: always violating.
	a.Accept(1, device.Sample{SkinC: 45})
	// Outside the grid: ignored.
	a.Accept(99, device.Sample{SkinC: 70})
	a.Accept(-1, device.Sample{SkinC: 70})

	s1 := a.Snapshot()
	if s1.Samples != 3 || s1.Done != 0 || s1.Final {
		t.Fatalf("mid-run snapshot = %+v", s1)
	}
	// No job finished yet: the deterministic section is empty, exactly as
	// the post-hoc path would report a grid with no results.
	if len(s1.Aggregates.Comfort) != 0 {
		t.Fatalf("comfort before any completion = %+v", s1.Aggregates.Comfort)
	}
	if len(s1.Spark) != 1 || s1.Spark[0].Samples != 3 {
		t.Fatalf("spark = %+v", s1.Spark)
	}

	a.JobDone(fleet.JobResult{Index: 0, Result: &device.RunResult{}})
	select {
	case <-ch:
	default:
		t.Fatal("JobDone did not notify the watcher")
	}
	// Late and duplicate deliveries are dropped, mirroring the Bus.
	a.Accept(0, device.Sample{SkinC: 55})
	a.JobDone(fleet.JobResult{Index: 0, Result: &device.RunResult{}})
	a.JobDone(fleet.JobResult{Index: 1, Result: &device.RunResult{}})
	a.Finish("done")

	s2 := a.Snapshot()
	if s2.Seq <= s1.Seq {
		t.Fatalf("seq did not advance: %d then %d", s1.Seq, s2.Seq)
	}
	if !s2.Final || s2.Status != "done" || s2.Done != 2 || s2.Failed != 0 || s2.Samples != 3 {
		t.Fatalf("final snapshot = %+v", s2)
	}

	// The per-job fold matches the analytics arithmetic: job 0 violated in
	// 1 of 2 samples with 1 °C mean excess, job 1 in 1 of 1 with 5 °C.
	cs := s2.Aggregates.Comfort
	if len(cs) != 2 || cs[0].UserID != "a" || cs[1].UserID != "b" {
		t.Fatalf("comfort rows = %+v", cs)
	}
	if cs[0].NViolation != 1 || cs[0].MeanOverFrac != 0.5 || cs[0].MeanExcessC != 1 {
		t.Fatalf("user a comfort = %+v", cs[0])
	}
	if cs[1].MeanOverFrac != 1 || cs[1].MeanExcessC != 5 {
		t.Fatalf("user b comfort = %+v", cs[1])
	}
	hm := s2.Aggregates.HeatMap
	if hm == nil || len(hm.Rows) != 1 || len(hm.Cols) != 1 {
		t.Fatalf("heat map = %+v", hm)
	}
	if got := float64(hm.Cells[0][0]); got != 0.75 {
		t.Fatalf("heat cell = %g, want mean over-frac 0.75", got)
	}
	if hm.Counts[0][0] != 2 {
		t.Fatalf("heat count = %d, want 2", hm.Counts[0][0])
	}

	// Histograms ignored the dropped samples and kept class totals.
	for _, h := range s2.SkinHist {
		switch h.Class {
		case "a":
			if h.Samples != 2 || h.OverLimit != 1 {
				t.Fatalf("class a hist = %+v", h)
			}
		case "b":
			if h.Samples != 1 || h.OverLimit != 1 {
				t.Fatalf("class b hist = %+v", h)
			}
		default:
			t.Fatalf("unexpected class %q", h.Class)
		}
	}

	// Snapshot state is insulated from later mutation: the deep-copied
	// histogram must not alias the live bins.
	s2.SkinHist[0].Bins[0] = 999
	if a.HistSnapshot()[0].Bins[0] == 999 {
		t.Fatal("snapshot histograms alias the aggregator's bins")
	}
}

// TestAggregatorSinkContract compiles the Aggregator against sink.Sink.
func TestAggregatorSinkContract(t *testing.T) {
	var s sink.Sink = NewAggregator(obsGrid(t))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
