package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleNodeRelaxesToAmbient(t *testing.T) {
	n := NewNetwork(25)
	a := n.AddNode("a", 10, 60)
	n.ConnectAmbient(a, 5) // tau = 50 s
	for i := 0; i < 600; i++ {
		n.Step(1)
	}
	// After 12 tau the node must be at ambient.
	if got := n.Temp(a); math.Abs(got-25) > 0.01 {
		t.Fatalf("Temp = %v want ≈25", got)
	}
}

func TestSingleNodeExponentialDecayRate(t *testing.T) {
	n := NewNetwork(0)
	a := n.AddNode("a", 10, 100)
	n.ConnectAmbient(a, 5) // tau = C*R = 50 s
	n.Step(50)             // one time constant
	want := 100 * math.Exp(-1)
	if got := n.Temp(a); math.Abs(got-want) > 0.05 {
		t.Fatalf("after one tau Temp = %v want %v", got, want)
	}
}

func TestSteadyStateSingleNodeWithPower(t *testing.T) {
	n := NewNetwork(20)
	a := n.AddNode("a", 10, 20)
	n.ConnectAmbient(a, 4)
	n.SetPower(a, 2) // steady state = ambient + P*R = 28
	ss, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ss[a]-28) > 1e-9 {
		t.Fatalf("steady state = %v want 28", ss[a])
	}
	// Transient must converge to the same value.
	for i := 0; i < 1000; i++ {
		n.Step(1)
	}
	if math.Abs(n.Temp(a)-28) > 0.01 {
		t.Fatalf("transient settled at %v want 28", n.Temp(a))
	}
}

func TestTwoNodeHeatFlowsDownhill(t *testing.T) {
	n := NewNetwork(25)
	hot := n.AddNode("hot", 5, 80)
	cold := n.AddNode("cold", 5, 25)
	n.Connect(hot, cold, 2)
	n.ConnectAmbient(cold, 10)
	prevHot := n.Temp(hot)
	for i := 0; i < 50; i++ {
		n.Step(1)
		if n.Temp(hot) > prevHot+1e-9 {
			t.Fatalf("hot node warmed up with no power input at step %d", i)
		}
		prevHot = n.Temp(hot)
		if n.Temp(cold) > n.Temp(hot)+1e-9 {
			t.Fatalf("cold node exceeded hot node at step %d", i)
		}
	}
}

func TestIsolatedPairConservesEnergy(t *testing.T) {
	// Two coupled nodes with no bath: total heat content is invariant.
	n := NewNetwork(25)
	a := n.AddNode("a", 4, 90)
	b := n.AddNode("b", 8, 30)
	n.Connect(a, b, 3)
	before := n.TotalHeatContent()
	for i := 0; i < 200; i++ {
		n.Step(0.5)
	}
	after := n.TotalHeatContent()
	if math.Abs(before-after) > 1e-6*math.Abs(before) {
		t.Fatalf("heat content drifted: %v -> %v", before, after)
	}
	// And both ends converge to the capacitance-weighted mean.
	want := (4*90 + 8*30) / 12.0
	if math.Abs(n.Temp(a)-want) > 0.01 || math.Abs(n.Temp(b)-want) > 0.01 {
		t.Fatalf("converged to %v / %v want %v", n.Temp(a), n.Temp(b), want)
	}
}

func TestSteadyStateMatchesTransient(t *testing.T) {
	n := NewNetwork(22)
	a := n.AddNode("a", 3, 22)
	b := n.AddNode("b", 20, 22)
	c := n.AddNode("c", 40, 22)
	n.Connect(a, b, 2)
	n.Connect(b, c, 3)
	n.ConnectAmbient(c, 8)
	n.SetPower(a, 1.5)
	ss, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		n.Step(1)
	}
	for id := NodeID(0); id < 3; id++ {
		if math.Abs(n.Temp(id)-ss[id]) > 0.02 {
			t.Fatalf("node %d transient %v vs steady %v", id, n.Temp(id), ss[id])
		}
	}
}

func TestSteadyStateErrorWhenNoBath(t *testing.T) {
	n := NewNetwork(25)
	a := n.AddNode("a", 1, 25)
	b := n.AddNode("b", 1, 25)
	n.Connect(a, b, 1)
	n.SetPower(a, 1)
	if _, err := n.SteadyState(); err == nil {
		t.Fatal("expected singular steady state for bath-less powered network")
	}
}

func TestSteadyStateEmptyNetwork(t *testing.T) {
	n := NewNetwork(25)
	if _, err := n.SteadyState(); err == nil {
		t.Fatal("expected ErrEmpty")
	}
}

func TestEquilibrate(t *testing.T) {
	n := NewNetwork(30)
	a := n.AddNode("a", 5, 99)
	n.ConnectAmbient(a, 7)
	n.SetPower(a, 1)
	if err := n.Equilibrate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(n.Temp(a)-37) > 1e-9 {
		t.Fatalf("Equilibrate -> %v want 37", n.Temp(a))
	}
}

func TestBathConnectDisconnect(t *testing.T) {
	n := NewNetwork(25)
	a := n.AddNode("a", 10, 25)
	n.ConnectAmbient(a, 10)
	n.SetPower(a, 1)
	ref := n.AddBath(a, 33.5, 0) // disconnected hand
	ss1, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	// Connect the hand: since hand temp (33.5) < node steady temp (35),
	// the hand should pull the node down.
	n.SetBath(ref, 33.5, 20)
	ss2, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if !(ss2[a] < ss1[a]) {
		t.Fatalf("hand contact should cool a hot node: %v -> %v", ss1[a], ss2[a])
	}
	if ss2[a] < 33.5 {
		t.Fatalf("node cannot be pulled below the warmer of its baths' weighted range: %v", ss2[a])
	}
	// Disconnect again restores the original equilibrium.
	n.SetBath(ref, 33.5, 0)
	ss3, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ss3[a]-ss1[a]) > 1e-9 {
		t.Fatalf("disconnect did not restore equilibrium: %v vs %v", ss3[a], ss1[a])
	}
}

func TestSetAmbientShiftsEquilibrium(t *testing.T) {
	n := NewNetwork(20)
	a := n.AddNode("a", 5, 20)
	n.ConnectAmbient(a, 10)
	n.SetPower(a, 0.5)
	ss1, _ := n.SteadyState()
	n.SetAmbient(30)
	ss2, _ := n.SteadyState()
	if math.Abs((ss2[a]-ss1[a])-10) > 1e-9 {
		t.Fatalf("ambient +10 should shift equilibrium by +10, got %v", ss2[a]-ss1[a])
	}
}

func TestStepZeroOrNegativeIsNoop(t *testing.T) {
	n := NewNetwork(25)
	a := n.AddNode("a", 1, 50)
	n.ConnectAmbient(a, 1)
	n.Step(0)
	n.Step(-5)
	if n.Temp(a) != 50 {
		t.Fatalf("no-op step changed temperature to %v", n.Temp(a))
	}
}

func TestLargeStepStability(t *testing.T) {
	// A tiny capacitance next to a big conductance demands substepping;
	// a huge requested dt must not blow up.
	n := NewNetwork(25)
	a := n.AddNode("die", 0.5, 90)
	b := n.AddNode("case", 50, 25)
	n.Connect(a, b, 0.5)
	n.ConnectAmbient(b, 10)
	n.Step(120) // two minutes in one call
	if math.IsNaN(n.Temp(a)) || math.IsInf(n.Temp(a), 0) {
		t.Fatal("integrator blew up")
	}
	if n.Temp(a) < 24 || n.Temp(a) > 90 {
		t.Fatalf("implausible temperature %v", n.Temp(a))
	}
}

func TestLookupAndNames(t *testing.T) {
	n := NewNetwork(25)
	a := n.AddNode("alpha", 1, 25)
	if n.Name(a) != "alpha" {
		t.Fatalf("Name = %q", n.Name(a))
	}
	id, ok := n.Lookup("alpha")
	if !ok || id != a {
		t.Fatalf("Lookup = %v,%v", id, ok)
	}
	if _, ok := n.Lookup("missing"); ok {
		t.Fatal("Lookup found a missing node")
	}
	if n.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d", n.NumNodes())
	}
}

func TestTempsCopy(t *testing.T) {
	n := NewNetwork(25)
	n.AddNode("a", 1, 31)
	n.AddNode("b", 1, 32)
	got := n.Temps(nil)
	if len(got) != 2 || got[0] != 31 || got[1] != 32 {
		t.Fatalf("Temps = %v", got)
	}
	got[0] = 99
	if n.Temp(0) != 31 {
		t.Fatal("Temps must return a copy")
	}
}

func TestAddNodePanicsOnNonPositiveCapacitance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNetwork(25).AddNode("bad", 0, 25)
}

func TestConnectPanicsOnSelfLoop(t *testing.T) {
	n := NewNetwork(25)
	a := n.AddNode("a", 1, 25)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Connect(a, a, 1)
}

func TestConnectPanicsOnNonPositiveResistance(t *testing.T) {
	n := NewNetwork(25)
	a := n.AddNode("a", 1, 25)
	b := n.AddNode("b", 1, 25)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Connect(a, b, -1)
}

// Property: with zero power, every node's temperature stays within the
// convex hull of initial temperatures and bath temperatures.
func TestTemperatureBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		amb := 15 + rng.Float64()*20
		n := NewNetwork(amb)
		count := 2 + rng.Intn(5)
		lo, hi := amb, amb
		ids := make([]NodeID, count)
		for i := 0; i < count; i++ {
			t0 := 10 + rng.Float64()*80
			ids[i] = n.AddNode("n", 0.5+rng.Float64()*20, t0)
			if t0 < lo {
				lo = t0
			}
			if t0 > hi {
				hi = t0
			}
		}
		// Random spanning-tree-ish topology keeps everything connected.
		for i := 1; i < count; i++ {
			n.Connect(ids[i], ids[rng.Intn(i)], 0.5+rng.Float64()*10)
		}
		n.ConnectAmbient(ids[0], 1+rng.Float64()*10)
		for s := 0; s < 50; s++ {
			n.Step(rng.Float64() * 5)
			for _, id := range ids {
				v := n.Temp(id)
				if v < lo-1e-6 || v > hi+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: steady-state temperatures rise monotonically with injected power.
func TestSteadyStateMonotoneInPowerProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := NewNetwork(25)
		a := n.AddNode("a", 1, 25)
		b := n.AddNode("b", 5, 25)
		n.Connect(a, b, 0.5+rng.Float64()*5)
		n.ConnectAmbient(b, 0.5+rng.Float64()*10)
		p1 := rng.Float64() * 3
		p2 := p1 + 0.1 + rng.Float64()*2
		n.SetPower(a, p1)
		s1, err := n.SteadyState()
		if err != nil {
			return false
		}
		n.SetPower(a, p2)
		s2, err := n.SteadyState()
		if err != nil {
			return false
		}
		return s2[a] > s1[a] && s2[b] > s1[b]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupMapStaysCurrent(t *testing.T) {
	n := NewNetwork(25)
	a := n.AddNode("a", 1, 25)
	if id, ok := n.Lookup("a"); !ok || id != a {
		t.Fatalf("Lookup(a) = %v %v", id, ok)
	}
	// Adding a node after a lookup must invalidate the index.
	b := n.AddNode("b", 1, 25)
	if id, ok := n.Lookup("b"); !ok || id != b {
		t.Fatalf("Lookup(b) after AddNode = %v %v", id, ok)
	}
	if _, ok := n.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) reported true")
	}
	// Duplicate names resolve to the first registration.
	n.AddNode("a", 1, 25)
	if id, _ := n.Lookup("a"); id != a {
		t.Fatalf("duplicate name resolved to %v, want first node %v", id, a)
	}
}
