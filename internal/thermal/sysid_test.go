package thermal

import (
	"math"
	"testing"
)

// buildKnownNetwork returns a 3-node chain with known parameters plus the
// ground-truth conductances in edge order.
func buildKnownNetwork() (*Network, []float64, []float64, []SysIDEdge) {
	n := NewNetwork(25)
	a := n.AddNode("a", 2, 25)
	b := n.AddNode("b", 10, 25)
	c := n.AddNode("c", 20, 25)
	n.Connect(a, b, 2.5)    // g = 0.4
	n.Connect(b, c, 4.0)    // g = 0.25
	n.ConnectAmbient(c, 10) // g = 0.1
	caps := []float64{2, 10, 20}
	truth := []float64{0.4, 0.25, 0.1}
	edges := []SysIDEdge{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: AmbientNode}}
	return n, caps, truth, edges
}

// steppedSchedule excites the network with power steps so the fit is well
// posed.
func steppedSchedule(k int) []float64 {
	switch (k / 60) % 4 {
	case 0:
		return []float64{2, 0, 0}
	case 1:
		return []float64{0.2, 0.5, 0}
	case 2:
		return []float64{3, 0, 0.3}
	default:
		return []float64{0.5, 0, 0}
	}
}

func TestFitConductancesRecoversKnownNetwork(t *testing.T) {
	net, caps, truth, edges := buildKnownNetwork()
	tr := CollectSysIDTrace(net, 1.0, 600, 25, steppedSchedule)
	got, err := FitConductances(tr, caps, edges)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range truth {
		if math.Abs(got[i]-want)/want > 0.05 {
			t.Fatalf("edge %d: fitted g = %.4f want %.4f (±5%%)", i, got[i], want)
		}
	}
}

func TestFitConductancesFinerSamplingIsMoreAccurate(t *testing.T) {
	// Finite-difference bias shrinks with the sampling interval.
	err1 := fitError(t, 2.0, 300)
	err2 := fitError(t, 0.25, 2400)
	if err2 >= err1 {
		t.Fatalf("finer sampling should fit better: %.5f vs %.5f", err2, err1)
	}
}

func fitError(t *testing.T, dt float64, samples int) float64 {
	t.Helper()
	net, caps, truth, edges := buildKnownNetwork()
	tr := CollectSysIDTrace(net, dt, samples, 25, steppedSchedule)
	got, err := FitConductances(tr, caps, edges)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, want := range truth {
		sum += math.Abs(got[i]-want) / want
	}
	return sum / float64(len(truth))
}

func TestFitConductancesPhoneModelSubset(t *testing.T) {
	// Identify two key couplings of the full phone model from a simulated
	// logging session: die–pkg and cover-mid–ambient.
	cfg := DefaultPhoneConfig()
	net, p := NewPhone(cfg)
	caps := []float64{cfg.CapDie, cfg.CapPkg, cfg.CapPCB, cfg.CapBattery,
		cfg.CapCoverMid, cfg.CapCoverUpper, cfg.CapScreen, cfg.CapFrame}
	// Excite the die with power steps.
	schedule := func(k int) []float64 {
		pw := make([]float64, net.NumNodes())
		if (k/120)%2 == 0 {
			pw[p.Die] = 3
		} else {
			pw[p.Die] = 0.3
		}
		pw[p.Screen] = 0.4
		return pw
	}
	tr := CollectSysIDTrace(net, 0.5, 3600, cfg.Ambient, schedule)
	edges := []SysIDEdge{
		{A: int(p.Die), B: int(p.Pkg)},
		{A: int(p.Pkg), B: int(p.PCB)},
		{A: int(p.PCB), B: int(p.Battery)},
		{A: int(p.PCB), B: int(p.CoverMid)},
		{A: int(p.PCB), B: int(p.CoverUpper)},
		{A: int(p.Battery), B: int(p.CoverMid)},
		{A: int(p.PCB), B: int(p.Screen)},
		{A: int(p.PCB), B: int(p.Frame)},
		{A: int(p.Frame), B: int(p.CoverMid)},
		{A: int(p.Frame), B: int(p.Screen)},
		{A: int(p.CoverMid), B: AmbientNode},
		{A: int(p.CoverUpper), B: AmbientNode},
		{A: int(p.Screen), B: AmbientNode},
		{A: int(p.Frame), B: AmbientNode},
	}
	got, err := FitConductances(tr, caps, edges)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		idx  int
		want float64
	}{
		{0, 1 / cfg.ResDiePkg},
		{10, 1 / cfg.ResAmbCoverMid},
	}
	for _, c := range checks {
		if math.Abs(got[c.idx]-c.want)/c.want > 0.10 {
			t.Fatalf("edge %d: fitted g = %.4f want %.4f (±10%%)", c.idx, got[c.idx], c.want)
		}
	}
}

func TestFitConductancesInputValidation(t *testing.T) {
	good := SysIDTrace{DtSec: 1, Ambient: 25,
		Temps:  [][]float64{{25}, {26}},
		Powers: [][]float64{{1}, {1}},
	}
	caps := []float64{2}
	edges := []SysIDEdge{{A: 0, B: AmbientNode}}

	if _, err := FitConductances(good, nil, edges); err == nil {
		t.Fatal("no nodes accepted")
	}
	if _, err := FitConductances(SysIDTrace{DtSec: 1, Temps: [][]float64{{25}}}, caps, edges); err == nil {
		t.Fatal("single sample accepted")
	}
	bad := good
	bad.DtSec = 0
	if _, err := FitConductances(bad, caps, edges); err == nil {
		t.Fatal("zero dt accepted")
	}
	if _, err := FitConductances(good, caps, nil); err == nil {
		t.Fatal("no edges accepted")
	}
	if _, err := FitConductances(good, caps, []SysIDEdge{{A: 0, B: 7}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := FitConductances(good, caps, []SysIDEdge{{A: 0, B: 0}}); err == nil {
		t.Fatal("self edge accepted")
	}
	wide := good
	wide.Powers = [][]float64{{1, 2}, {1, 2}}
	if _, err := FitConductances(wide, caps, edges); err == nil {
		t.Fatal("wrong-width sample accepted")
	}
}

func TestFitConductancesSingleEdge(t *testing.T) {
	// One node, one ambient edge: g must match exactly (up to the finite
	// difference).
	n := NewNetwork(20)
	a := n.AddNode("a", 5, 60)
	n.ConnectAmbient(a, 8) // g = 0.125
	tr := CollectSysIDTrace(n, 0.5, 400, 20, func(int) []float64 { return []float64{0} })
	got, err := FitConductances(tr, []float64{5}, []SysIDEdge{{A: int(a), B: AmbientNode}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-0.125)/0.125 > 0.03 {
		t.Fatalf("single-edge fit = %v want 0.125", got[0])
	}
}
