package thermal

import "testing"

// BenchmarkPropagatorAdvance measures the single-network exact advance —
// the per-tick mat-vec the fleet hot loop was dominated by before cohort
// batching.
func BenchmarkPropagatorAdvance(b *testing.B) {
	net, nodes := NewPhone(DefaultPhoneConfig())
	net.SetPower(nodes.Die, 2.5)
	net.Step(0.05) // warm the propagator caches outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step(0.05)
	}
	b.ReportMetric(net.Temp(nodes.Die), "die-C")
}

// BenchmarkAdvanceBatch measures the lockstep cohort advance at several
// widths; ns/op is normalized per network-step, so the win over
// BenchmarkPropagatorAdvance is directly readable.
func BenchmarkAdvanceBatch(b *testing.B) {
	for _, cols := range []int{1, 8, 64, 256} {
		b.Run("cols-"+itoa(cols), func(b *testing.B) {
			nets := make([]*Network, cols)
			for i := range nets {
				net, nodes := NewPhone(DefaultPhoneConfig())
				net.SetPower(nodes.Die, 2.0+0.01*float64(i))
				nets[i] = net
			}
			ls, err := NewLockstep(nets)
			if err != nil {
				b.Fatal(err)
			}
			ls.Step(0.05) // warm caches
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ls.Step(0.05)
			}
			b.StopTimer()
			perStep := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(cols)
			b.ReportMetric(perStep, "ns/net-step")
			ls.Close()
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
