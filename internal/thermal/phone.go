package thermal

// This file builds the Nexus-4-like phone thermal network used throughout
// the reproduction. Node granularity follows the paper's instrumentation:
// the external thermistors sit at the back-cover midsection ("skin
// temperature"), back-cover upper section, and mid-screen; the built-in
// sensors report die (CPU) and battery temperatures.
//
// Parameter provenance: capacitances approximate component masses of a
// ~139 g smartphone times typical specific heats (glass ≈ 0.8 J/gK,
// Li-polymer ≈ 1.0 J/gK, PCB ≈ 0.9 J/gK); ambient resistances approximate
// natural convection + radiation from ~50–60 cm² faces (h ≈ 8–12 W/m²K).
// The combination is calibrated (see phone_test.go) so that a sustained
// CPU-saturating workload soaks the back cover from 25 °C ambient to the
// low-40s °C with a case time constant of a few minutes, while the die
// stays below the built-in CPU throttling trip point — exactly the regime
// the paper reports (§III: skin exceeds every user's comfort limit while
// CPU temperature never triggers the stock thermal governor).

// PhoneNodes names the nodes of the phone thermal network.
type PhoneNodes struct {
	Die        NodeID // CPU/GPU silicon (built-in "CPU temperature" sensor)
	Pkg        NodeID // SoC package + PoP memory
	PCB        NodeID // main board, shields, camera/ISP, RF
	Battery    NodeID // battery pack (built-in "battery temperature" sensor)
	CoverMid   NodeID // back cover midsection — the paper's "skin temperature"
	CoverUpper NodeID // back cover upper section (second thermistor)
	Screen     NodeID // display glass mid-point (third thermistor)
	Frame      NodeID // side frame / chassis

	// Hand is an initially-disconnected isothermal bath representing a palm
	// in contact with the back cover midsection. Use ApplyTouch rather than
	// connecting it directly: touch both couples the palm and blocks part
	// of the cover's convection to ambient.
	Hand BathRef
	// CoverMidAmbient is the cover-midsection convection path, exposed so
	// ApplyTouch can throttle it while the phone is held.
	CoverMidAmbient BathRef
}

// PhoneConfig holds the physical parameters of the phone model. All
// capacitances are J/K, resistances K/W, temperatures °C.
type PhoneConfig struct {
	Ambient float64

	CapDie, CapPkg, CapPCB, CapBattery    float64
	CapCoverMid, CapCoverUpper, CapScreen float64
	CapFrame                              float64
	ResDiePkg, ResPkgPCB, ResPCBBattery   float64
	ResPCBCoverMid, ResPCBCoverUpper      float64
	ResBatteryCoverMid, ResPCBScreen      float64
	ResPCBFrame, ResFrameCoverMid         float64
	ResFrameScreen                        float64
	ResAmbCoverMid, ResAmbCoverUpper      float64
	ResAmbScreen, ResAmbFrame             float64
	HandTemp, HandContactRes              float64
	// TouchAmbientFactor multiplies the cover-midsection ambient resistance
	// while the phone is held: a palm blocks natural convection from the
	// area it covers. Values > 1 mean a held phone sheds less heat there.
	TouchAmbientFactor float64
}

// DefaultPhoneConfig returns the calibrated Nexus-4-like parameter set.
func DefaultPhoneConfig() PhoneConfig {
	return PhoneConfig{
		Ambient: 25,

		CapDie:        2,
		CapPkg:        6,
		CapPCB:        18,
		CapBattery:    28,
		CapCoverMid:   9,
		CapCoverUpper: 7,
		CapScreen:     18,
		CapFrame:      11,

		ResDiePkg:          3.2,
		ResPkgPCB:          2.2,
		ResPCBBattery:      3.0,
		ResPCBCoverMid:     4.5,
		ResPCBCoverUpper:   5.5,
		ResBatteryCoverMid: 3.0,
		ResPCBScreen:       9.0,
		ResPCBFrame:        4.5,
		ResFrameCoverMid:   8.0,
		ResFrameScreen:     8.0,

		ResAmbCoverMid:   17,
		ResAmbCoverUpper: 19,
		ResAmbScreen:     10,
		ResAmbFrame:      22,

		HandTemp:           33.5,
		HandContactRes:     40,
		TouchAmbientFactor: 2.0,
	}
}

// NewPhone builds the phone network at thermal equilibrium with the
// configured ambient (all nodes start at cfg.Ambient) and returns the
// network together with the node handles.
func NewPhone(cfg PhoneConfig) (*Network, PhoneNodes) {
	n := NewNetwork(cfg.Ambient)
	var p PhoneNodes
	p.Die = n.AddNode("die", cfg.CapDie, cfg.Ambient)
	p.Pkg = n.AddNode("pkg", cfg.CapPkg, cfg.Ambient)
	p.PCB = n.AddNode("pcb", cfg.CapPCB, cfg.Ambient)
	p.Battery = n.AddNode("battery", cfg.CapBattery, cfg.Ambient)
	p.CoverMid = n.AddNode("cover-mid", cfg.CapCoverMid, cfg.Ambient)
	p.CoverUpper = n.AddNode("cover-upper", cfg.CapCoverUpper, cfg.Ambient)
	p.Screen = n.AddNode("screen", cfg.CapScreen, cfg.Ambient)
	p.Frame = n.AddNode("frame", cfg.CapFrame, cfg.Ambient)

	n.Connect(p.Die, p.Pkg, cfg.ResDiePkg)
	n.Connect(p.Pkg, p.PCB, cfg.ResPkgPCB)
	n.Connect(p.PCB, p.Battery, cfg.ResPCBBattery)
	n.Connect(p.PCB, p.CoverMid, cfg.ResPCBCoverMid)
	n.Connect(p.PCB, p.CoverUpper, cfg.ResPCBCoverUpper)
	n.Connect(p.Battery, p.CoverMid, cfg.ResBatteryCoverMid)
	n.Connect(p.PCB, p.Screen, cfg.ResPCBScreen)
	n.Connect(p.PCB, p.Frame, cfg.ResPCBFrame)
	n.Connect(p.Frame, p.CoverMid, cfg.ResFrameCoverMid)
	n.Connect(p.Frame, p.Screen, cfg.ResFrameScreen)

	p.CoverMidAmbient = n.ConnectAmbient(p.CoverMid, cfg.ResAmbCoverMid)
	n.ConnectAmbient(p.CoverUpper, cfg.ResAmbCoverUpper)
	n.ConnectAmbient(p.Screen, cfg.ResAmbScreen)
	n.ConnectAmbient(p.Frame, cfg.ResAmbFrame)

	p.Hand = n.AddBath(p.CoverMid, cfg.HandTemp, 0) // disconnected until touched
	return n, p
}

// ApplyTouch sets or clears hand contact on the back cover: touching
// couples the ~33.5 °C palm to the cover midsection and throttles that
// area's convection (the hand blocks airflow). The two effects roughly
// cancel on a warm device — the paper's §III-A observation that touch does
// not significantly alter exterior temperatures — while on a hot device the
// blocked convection dominates and the held phone runs slightly hotter.
func ApplyTouch(n *Network, p PhoneNodes, cfg PhoneConfig, touching bool) {
	factor := cfg.TouchAmbientFactor
	if factor <= 0 {
		factor = 1
	}
	if touching {
		n.SetBath(p.Hand, cfg.HandTemp, cfg.HandContactRes)
		n.SetBathResistance(p.CoverMidAmbient, cfg.ResAmbCoverMid*factor)
	} else {
		n.SetBath(p.Hand, cfg.HandTemp, 0)
		n.SetBathResistance(p.CoverMidAmbient, cfg.ResAmbCoverMid)
	}
}
