package thermal

import (
	"container/list"
	"sync"

	"repro/internal/mat"
)

// maxCachedPropagators bounds the per-network propagator cache. Simulated
// runs alternate between a handful of configurations (touching / not
// touching, occasionally a re-fitted conductance set), so a short MRU list
// captures effectively all transitions.
const maxCachedPropagators = 8

// propagator is the exact one-step advance map of the network's linear
// time-invariant transient for a fixed conductance configuration and step
// size:
//
//	T(t+dt) = A·T(t) + W·P + ambient·vAmb + vFixed
//
// where A = exp(M·dt) for the generator M = C⁻¹·(−G) and
// W = (∫₀^dt exp(M·s) ds)·C⁻¹ is the zero-order-hold input map. Power and
// bath temperatures are held constant across the step — the same
// assumption the per-tick RK4 integration makes — so the advance is exact
// for piecewise-constant inputs. Ambient changes stay free: the
// ambient-tracking bath term is kept factored as ambient·vAmb.
type propagator struct {
	sig uint64
	dt  float64

	a      []float64 // n×n row-major exp(M·dt)
	w      []float64 // n×n row-major ZOH input map (includes C⁻¹)
	vAmb   []float64 // W · (per-node ambient-tracking bath conductance)
	vFixed []float64 // W · (per-node Σ g_b·T_b over fixed-temperature baths)
}

type propKey struct {
	sig uint64
	dt  float64
}

// maxSharedPropagators bounds the shared cache with LRU eviction. Real
// fleets cycle through a handful of configurations per device; the bound
// guards scenario sweeps over many devices/ambients and randomized-dt test
// workloads, which would otherwise grow the cache for the life of the
// process. Each 8-node propagator is ~1 KiB, so the cap is ~0.5 MiB.
const maxSharedPropagators = 512

// propLRU is a size-capped LRU map of finished propagators. Entries are
// immutable after insertion; the lock only guards the map and recency
// list. Shared-cache traffic is rare — each Network front-runs it with its
// own MRU slice — so a single mutex (recency updates happen on reads too)
// costs nothing measurable.
type propLRU struct {
	mu    sync.Mutex
	max   int
	m     map[propKey]*list.Element
	order *list.List // front = most recently used

	// hits/misses count getOrBuild outcomes (guarded by mu); the cache-hit
	// unit tests read them via stats.
	hits, misses uint64
}

// propEntry is one LRU element payload.
type propEntry struct {
	key propKey
	p   *propagator
}

func newPropLRU(max int) *propLRU {
	return &propLRU{max: max, m: make(map[propKey]*list.Element), order: list.New()}
}

// get returns the cached propagator and refreshes its recency, or nil.
func (c *propLRU) get(key propKey) *propagator {
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.m[key]
	if el == nil {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(propEntry).p
}

// put inserts (or refreshes) a propagator, evicting the least recently
// used entry beyond the cap.
func (c *propLRU) put(key propKey, p *propagator) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.m[key]; el != nil {
		c.order.MoveToFront(el)
		el.Value = propEntry{key: key, p: p}
		return
	}
	c.m[key] = c.order.PushFront(propEntry{key: key, p: p})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.m, oldest.Value.(propEntry).key)
	}
}

// getOrBuild returns the cached propagator for key, building and caching
// it via build on a miss — one critical section for the whole
// lookup-miss-insert sequence, so a miss costs a single lock round trip
// (get-then-put took two) and two networks racing on the same key never
// compute the matrix exponential twice. build runs under the lock; that is
// deliberate: builds are rare (once per configuration × dt per process)
// and serializing them is what provides the dedup. A nil build result
// (degenerate configuration) is not cached, so callers retry — and fall
// back to RK4 — on every miss.
func (c *propLRU) getOrBuild(key propKey, build func() *propagator) *propagator {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.m[key]; el != nil {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(propEntry).p
	}
	c.misses++
	p := build()
	if p == nil {
		return nil
	}
	c.m[key] = c.order.PushFront(propEntry{key: key, p: p})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.m, oldest.Value.(propEntry).key)
	}
	return p
}

// stats reports the getOrBuild hit/miss counts.
func (c *propLRU) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// len reports the current entry count.
func (c *propLRU) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// sharedProps is the process-wide propagator cache. Fleet runs build one
// Network per job from identical configurations; sharing the finished
// (immutable) propagators across networks means each distinct
// (configuration, dt) pair pays the matrix exponential exactly once per
// process instead of once per job.
var sharedProps = newPropLRU(maxSharedPropagators)

// propagatorFor returns the cached propagator for the current configuration
// fingerprint and step size, building (and caching) it on a miss. The hit
// is moved to the front so recurring configurations stay O(1). It returns
// nil if the matrix exponential cannot be computed; callers fall back to
// RK4.
func (n *Network) propagatorFor(dt float64) *propagator {
	for i, p := range n.props {
		if p.sig == n.sig && p.dt == dt {
			if i != 0 {
				copy(n.props[1:i+1], n.props[:i])
				n.props[0] = p
			}
			return p
		}
	}
	key := propKey{sig: n.sig, dt: dt}
	p := sharedProps.getOrBuild(key, func() *propagator { return n.buildPropagator(dt) })
	if p == nil {
		return nil
	}
	if len(n.props) < maxCachedPropagators {
		n.props = append(n.props, nil)
	}
	copy(n.props[1:], n.props)
	n.props[0] = p
	return p
}

// buildPropagator computes the exponential propagator for the current
// configuration via scaling-and-squaring on the augmented generator
//
//	exp([[M·dt, I·dt], [0, 0]]) = [[A, S], [0, I]],  S = ∫₀^dt exp(M·s) ds
//
// which yields the state map and the input integral in one call.
func (n *Network) buildPropagator(dt float64) *propagator {
	ln := len(n.caps)
	aug := mat.NewDense(2*ln, 2*ln)
	for i := 0; i < ln; i++ {
		ci := n.caps[i]
		var gsum float64
		for _, e := range n.adj[i] {
			gsum += e.g
			aug.Set(i, int(e.other), aug.At(i, int(e.other))+e.g*dt/ci)
		}
		for _, b := range n.baths[i] {
			gsum += b.g
		}
		aug.Set(i, i, aug.At(i, i)-gsum*dt/ci)
		aug.Set(i, ln+i, dt)
	}
	e, err := mat.Exp(aug)
	if err != nil {
		return nil
	}
	p := &propagator{
		sig:    n.sig,
		dt:     dt,
		a:      make([]float64, ln*ln),
		w:      make([]float64, ln*ln),
		vAmb:   make([]float64, ln),
		vFixed: make([]float64, ln),
	}
	for i := 0; i < ln; i++ {
		for j := 0; j < ln; j++ {
			p.a[i*ln+j] = e.At(i, j)
			p.w[i*ln+j] = e.At(i, ln+j) / n.caps[j]
		}
	}
	// Split the bath drive into an ambient-tracking part (recombined with
	// the live ambient every step) and a fixed part folded in up front.
	gAmb := make([]float64, ln)
	fixed := make([]float64, ln)
	for i := 0; i < ln; i++ {
		for _, b := range n.baths[i] {
			if b.useAmbient {
				gAmb[i] += b.g
			} else {
				fixed[i] += b.g * b.temp
			}
		}
	}
	for i := 0; i < ln; i++ {
		row := p.w[i*ln : (i+1)*ln]
		var va, vf float64
		for j, wv := range row {
			va += wv * gAmb[j]
			vf += wv * fixed[j]
		}
		p.vAmb[i] = va
		p.vFixed[i] = vf
	}
	return p
}

// advance applies the propagator to the network state: one fused dense
// mat-vec over the temperatures and the power vector (mat.MulAddVec — the
// same kernel the batched cohort advance replays per column, which is what
// keeps lockstep runs bit-identical to solo ones). The state and scratch
// slices are swapped instead of copied.
func (p *propagator) advance(n *Network) {
	temps, out := n.temps, n.tmp
	mat.MulAddVec(len(temps), p.a, p.w, p.vAmb, p.vFixed, n.ambient, temps, n.power, out)
	n.temps, n.tmp = out, temps
}

// advanceBatch applies the propagator to a sub-cohort of state columns —
// those selected by idx, or all of them when idx is nil — with one fused
// mat-mat (mat.MulBatch). The caller (Lockstep) owns the column views and
// the plane swap.
func (p *propagator) advanceBatch(n int, amb []float64, xs, ys, outs [][]float64, idx []int) {
	mat.MulBatch(n, p.a, p.w, p.vAmb, p.vFixed, amb, xs, ys, outs, idx)
}
