package thermal

import (
	"math"
	"testing"
)

// heavyLoadPowers approximates a CPU-saturating benchmark at the top DVFS
// level: ~3.2 W in the die, ~0.35 W GPU/memory in the package, ~0.45 W
// display, ~0.25 W board-level (RF, regulators).
func heavyLoadPowers(n *Network, p PhoneNodes) {
	n.SetPower(p.Die, 3.2)
	n.SetPower(p.Pkg, 0.35)
	n.SetPower(p.Screen, 0.45)
	n.SetPower(p.PCB, 0.25)
}

func TestPhoneStartsAtAmbient(t *testing.T) {
	n, p := NewPhone(DefaultPhoneConfig())
	for id := NodeID(0); int(id) < n.NumNodes(); id++ {
		if n.Temp(id) != 25 {
			t.Fatalf("node %s starts at %v want 25", n.Name(id), n.Temp(id))
		}
	}
	_ = p
}

func TestPhoneHeavyLoadSteadyStateCalibration(t *testing.T) {
	// The calibration targets reproduce the paper's regime: a sustained
	// CPU-heavy workload pushes the back-cover midsection ("skin") into the
	// low-40s °C — beyond every participant's comfort limit (max 42.8 °C is
	// approached, min 34.0 °C far exceeded) — while the die stays well below
	// a ~100 °C built-in throttling trip point.
	n, p := NewPhone(DefaultPhoneConfig())
	heavyLoadPowers(n, p)
	ss, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	skin := ss[p.CoverMid]
	screen := ss[p.Screen]
	die := ss[p.Die]
	if skin < 40 || skin > 46 {
		t.Fatalf("heavy-load steady skin = %.1f °C, want 40–46", skin)
	}
	if screen < 35 || screen > 44 {
		t.Fatalf("heavy-load steady screen = %.1f °C, want 35–44", screen)
	}
	if screen >= skin {
		t.Fatalf("screen (%.1f) should run cooler than back cover (%.1f): heat sources sit nearer the cover", screen, skin)
	}
	if die < 50 || die > 95 {
		t.Fatalf("heavy-load steady die = %.1f °C, want 50–95 (below throttle trip)", die)
	}
	if ss[p.Battery] <= ss[p.CoverMid]-8 || ss[p.Battery] >= die {
		t.Fatalf("battery %.1f should sit between cover %.1f and die %.1f", ss[p.Battery], skin, die)
	}
}

func TestPhoneCaseTimeConstantMinutesScale(t *testing.T) {
	// The paper's user study saw every participant's limit crossed within
	// 7 minutes of a heavy benchmark. Check the skin node covers ~63 % of
	// its final rise within 2–8 minutes.
	n, p := NewPhone(DefaultPhoneConfig())
	heavyLoadPowers(n, p)
	ss, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	rise := ss[p.CoverMid] - 25
	target := 25 + rise*(1-math.Exp(-1))
	var reached float64 = -1
	for sec := 1; sec <= 1200; sec++ {
		n.Step(1)
		if n.Temp(p.CoverMid) >= target {
			reached = float64(sec)
			break
		}
	}
	if reached < 0 {
		t.Fatal("skin never reached 63% of final rise within 20 min")
	}
	if reached < 90 || reached > 540 {
		t.Fatalf("skin time constant = %.0f s, want minutes-scale (90–540 s)", reached)
	}
}

func TestPhoneDieRespondsFasterThanCase(t *testing.T) {
	n, p := NewPhone(DefaultPhoneConfig())
	heavyLoadPowers(n, p)
	n.Step(30) // 30 seconds of load
	dieRise := n.Temp(p.Die) - 25
	skinRise := n.Temp(p.CoverMid) - 25
	if dieRise < 5*skinRise {
		t.Fatalf("die should lead the case by a wide margin after 30 s: die +%.2f vs skin +%.2f", dieRise, skinRise)
	}
}

func TestPhoneIdleStaysNearAmbient(t *testing.T) {
	n, p := NewPhone(DefaultPhoneConfig())
	n.SetPower(p.Die, 0.08) // idle leakage + housekeeping
	n.SetPower(p.Screen, 0.0)
	ss, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if ss[p.CoverMid] > 27 {
		t.Fatalf("idle skin = %.1f °C, should stay near ambient", ss[p.CoverMid])
	}
}

func TestPhoneHandContactSmallEffectWhenHot(t *testing.T) {
	// Paper §III-A: human touch does not significantly alter exterior
	// temperatures, especially under active use. On a hot phone the warm
	// palm coupling and the blocked convection largely cancel: the net
	// shift must stay under 2 °C (slightly warmer, since the palm blocks
	// airflow from the hottest area).
	cfg := DefaultPhoneConfig()
	n, p := NewPhone(cfg)
	heavyLoadPowers(n, p)
	ssNoTouch, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	ApplyTouch(n, p, cfg, true)
	ssTouch, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	delta := ssTouch[p.CoverMid] - ssNoTouch[p.CoverMid]
	if math.Abs(delta) > 2 {
		t.Fatalf("touch changed hot skin by %.2f °C, want |Δ| < 2 °C", delta)
	}
	if delta <= 0 {
		t.Fatalf("holding a hot phone should net-warm the cover (blocked convection), got %+.2f", delta)
	}
}

func TestPhoneHandContactWarmsColdPhone(t *testing.T) {
	// An off, untouched phone sits at ambient; holding it should warm the
	// cover towards palm temperature (the paper's first two touch-study
	// configurations).
	cfg := DefaultPhoneConfig()
	n, p := NewPhone(cfg)
	ApplyTouch(n, p, cfg, true)
	ss, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if ss[p.CoverMid] <= 25 || ss[p.CoverMid] >= cfg.HandTemp {
		t.Fatalf("held idle phone skin = %.2f °C, want between ambient and palm", ss[p.CoverMid])
	}
}

func TestApplyTouchIsReversible(t *testing.T) {
	cfg := DefaultPhoneConfig()
	n, p := NewPhone(cfg)
	heavyLoadPowers(n, p)
	before, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	ApplyTouch(n, p, cfg, true)
	ApplyTouch(n, p, cfg, false)
	after, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if math.Abs(before[i]-after[i]) > 1e-9 {
			t.Fatalf("touch+release changed node %d equilibrium: %v -> %v", i, before[i], after[i])
		}
	}
}

func TestPhoneChargingWarmsBatterySide(t *testing.T) {
	// Charging dissipates heat in the battery; the cover midsection (which
	// sits over the battery) should warm more than the screen.
	n, p := NewPhone(DefaultPhoneConfig())
	n.SetPower(p.Battery, 0.9)
	n.SetPower(p.Die, 0.15)
	ss, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if ss[p.CoverMid] <= ss[p.Screen] {
		t.Fatalf("charging: cover %.2f should exceed screen %.2f", ss[p.CoverMid], ss[p.Screen])
	}
	if ss[p.CoverMid] < 27 || ss[p.CoverMid] > 36 {
		t.Fatalf("charging skin = %.1f °C, want a mild rise (27–36)", ss[p.CoverMid])
	}
}

func TestPhoneHigherAmbientShiftsEverything(t *testing.T) {
	cfg := DefaultPhoneConfig()
	cfg.Ambient = 35
	n, p := NewPhone(cfg)
	heavyLoadPowers(n, p)
	ss, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := DefaultPhoneConfig() // ambient 25
	n2, p2 := NewPhone(cfg2)
	heavyLoadPowers(n2, p2)
	ss2, err := n2.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	shift := ss[p.CoverMid] - ss2[p2.CoverMid]
	if math.Abs(shift-10) > 1e-6 {
		t.Fatalf("ambient +10 °C should shift skin by exactly +10 in a linear network, got %+.3f", shift)
	}
}
