package thermal

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"
)

// Tap couples a first-order observer state to a network node. The event
// engine uses taps for sensor lag filters: after each tick's thermal
// advance T' = A·T + b, a tap updates its state s' = (1-Alpha)·s +
// Alpha·T'[Node] — exactly the recurrence sensors.Sensor.Advance applies
// at a fixed dt. Folding the taps into the jump matrix is what lets a
// multi-tick jump land with the same lag states a tick-by-tick replay
// would produce (up to float summation order).
type Tap struct {
	Node  NodeID
	Alpha float64
}

// maxLadderLevels bounds the dt ladder: level k jumps 2^k ticks, so eight
// levels decompose any gap into chunks of at most 255 ticks. Segments in
// the event engine are clipped by logger emissions (every 20 ticks at the
// default configuration), so real jumps use the low levels; the headroom
// costs only ~2 KiB per level at phone scale.
const maxLadderLevels = 8

// ladderLevel holds the 2^k-tick jump pair over the augmented state
// z = [temps; tap states]:
//
//	z(t + 2^k·dt) = a·z(t) + j·b̃,   a = Ã^(2^k),  j = Σ_{i<2^k} Ã^i
//
// where Ã is the tap-augmented one-tick map and b̃ the (frozen) one-tick
// drive. Both are dim×dim row-major (j's action on the vector b̃ is all
// the engine needs, but keeping the full matrix makes level doubling a
// pair of mat-mats).
type ladderLevel struct {
	a []float64
	j []float64
}

// Ladder is a precomputed power-of-two jump table for one (configuration
// fingerprint, dt, tap set). It is safe to share across networks and
// goroutines: the levels are immutable after construction, the composite
// memo synchronizes internally, and per-jump state lives in
// LadderScratch.
type Ladder struct {
	sig  uint64
	dt   float64
	n    int // thermal nodes
	taps []Tap
	lv   []ladderLevel

	// Input-map rows of the base one-tick propagator, used to freeze the
	// drive vector b for a segment's held power/ambient.
	w      []float64
	vAmb   []float64
	vFixed []float64

	// Memoized fused k-tick propagators, indexed by tick count (see
	// composite). The memo is the only mutable part of a ladder; sharing
	// it across runs is what keeps fleet sweeps from rebuilding the same
	// handful of composites per job, and the flat array keeps the hit
	// path to one atomic load.
	compMu sync.Mutex
	comp   [1 << maxLadderLevels]atomic.Pointer[compositePair]
}

// Dt returns the base tick the ladder was built for.
func (l *Ladder) Dt() float64 { return l.dt }

// Sig returns the conductance fingerprint the ladder was built from.
func (l *Ladder) Sig() uint64 { return l.sig }

// MaxChunk returns the largest tick count one bit decomposition covers;
// longer jumps are applied in chunks of this size.
func (l *Ladder) MaxChunk() int { return 1<<len(l.lv) - 1 }

// LadderScratch holds one jump's working vectors. A zero value is ready;
// it grows on first use and is reusable (and intended to be reused)
// across jumps and ladders.
type LadderScratch struct {
	z, out, b []float64
	zb        []float64 // stacked [z; p] for the fused composite path
}

func (sc *LadderScratch) ensure(dim int) {
	if cap(sc.z) < dim {
		sc.z = make([]float64, dim)
		sc.out = make([]float64, dim)
		sc.b = make([]float64, dim)
		sc.zb = make([]float64, 2*dim)
	}
	sc.z, sc.out, sc.b = sc.z[:dim], sc.out[:dim], sc.b[:dim]
	sc.zb = sc.zb[:2*dim]
}

// ladderKey identifies a ladder in the shared cache.
type ladderKey struct {
	sig     uint64
	dt      float64
	tapsSig uint64
}

// tapsSig fingerprints a tap set (order-sensitive, like the engine's use).
func tapsSig(taps []Tap) uint64 {
	h := mix64(uint64(len(taps)))
	for _, tp := range taps {
		h = mix64(h ^ uint64(tp.Node)<<32 ^ math.Float64bits(tp.Alpha))
	}
	return h
}

// maxSharedLadders bounds the shared ladder cache. A ladder is ~20 KiB at
// phone scale (12×12 × 2 matrices × 8 levels), so the cap is ~1.3 MiB.
// Real fleets need two per device configuration (touching / not), keyed
// off the same fingerprints as the propagator cache.
const maxSharedLadders = 64

// ladderLRU mirrors propLRU for ladders: size-capped, immutable entries,
// one critical section per lookup-or-build so two networks racing on the
// same key build the ladder once.
type ladderLRU struct {
	mu    sync.Mutex
	max   int
	m     map[ladderKey]*list.Element
	order *list.List

	hits, misses uint64
}

type ladderEntry struct {
	key ladderKey
	l   *Ladder
}

func newLadderLRU(max int) *ladderLRU {
	return &ladderLRU{max: max, m: make(map[ladderKey]*list.Element), order: list.New()}
}

func (c *ladderLRU) getOrBuild(key ladderKey, build func() *Ladder) *Ladder {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.m[key]; el != nil {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(ladderEntry).l
	}
	c.misses++
	l := build()
	if l == nil {
		return nil
	}
	c.m[key] = c.order.PushFront(ladderEntry{key: key, l: l})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.m, oldest.Value.(ladderEntry).key)
	}
	return l
}

func (c *ladderLRU) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *ladderLRU) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// sharedLadders is the process-wide ladder cache, the event-engine
// counterpart of sharedProps.
var sharedLadders = newLadderLRU(maxSharedLadders)

// LadderFor returns the power-of-two jump ladder for the network's current
// conductance configuration, tick dt and tap set, building and caching it
// on first use. It returns nil when the network is forced onto RK4 or the
// underlying propagator cannot be built — callers fall back to
// tick-by-tick stepping (which is also the differential oracle).
func (n *Network) LadderFor(dt float64, taps []Tap) *Ladder {
	if n.forceRK4 || dt <= 0 || len(n.temps) == 0 {
		return nil
	}
	if n.dirty {
		n.refresh()
	}
	key := ladderKey{sig: n.sig, dt: dt, tapsSig: tapsSig(taps)}
	return sharedLadders.getOrBuild(key, func() *Ladder { return n.buildLadder(dt, taps) })
}

// buildLadder assembles the tap-augmented one-tick map from the cached
// base propagator and squares it up the ladder:
//
//	Ã = ⎡ A        0      ⎤    (per tap i, row n+i:
//	    ⎣ αᵢ·A[tᵢ] diag(1-αᵢ) ⎦   s' = (1-αᵢ)s + αᵢ·(A·T + b)[tᵢ])
//
//	a_{k+1} = a_k·a_k,   j_{k+1} = j_k + a_k·j_k,   j_0 = I
func (n *Network) buildLadder(dt float64, taps []Tap) *Ladder {
	base := n.propagatorFor(dt)
	if base == nil {
		return nil
	}
	ln := len(n.caps)
	dim := ln + len(taps)
	l := &Ladder{
		sig:    n.sig,
		dt:     dt,
		n:      ln,
		taps:   append([]Tap(nil), taps...),
		w:      base.w,
		vAmb:   base.vAmb,
		vFixed: base.vFixed,
		lv:     make([]ladderLevel, maxLadderLevels),
	}
	a0 := make([]float64, dim*dim)
	j0 := make([]float64, dim*dim)
	for i := 0; i < ln; i++ {
		copy(a0[i*dim:i*dim+ln], base.a[i*ln:(i+1)*ln])
	}
	for i, tp := range taps {
		r := ln + i
		src := base.a[int(tp.Node)*ln : (int(tp.Node)+1)*ln]
		for c := 0; c < ln; c++ {
			a0[r*dim+c] = tp.Alpha * src[c]
		}
		a0[r*dim+r] = 1 - tp.Alpha
	}
	for i := 0; i < dim; i++ {
		j0[i*dim+i] = 1
	}
	l.lv[0] = ladderLevel{a: a0, j: j0}
	for k := 1; k < maxLadderLevels; k++ {
		prev := l.lv[k-1]
		a := matSquare(prev.a, dim)
		j := matMulAdd(prev.a, prev.j, prev.j, dim)
		l.lv[k] = ladderLevel{a: a, j: j}
	}
	return l
}

// matSquare returns a·a for a dim×dim row-major matrix.
func matSquare(a []float64, dim int) []float64 {
	return matMulAdd(a, a, nil, dim)
}

// matMulAdd returns a·b (+ c when non-nil) for dim×dim row-major matrices.
func matMulAdd(a, b, c []float64, dim int) []float64 {
	out := make([]float64, dim*dim)
	if c != nil {
		copy(out, c)
	}
	for i := 0; i < dim; i++ {
		arow := a[i*dim : (i+1)*dim]
		orow := out[i*dim : (i+1)*dim]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[k*dim : (k+1)*dim]
			for jx, bv := range brow {
				orow[jx] += av * bv
			}
		}
	}
	return out
}

// Advance jumps the network and the tap states forward by ticks base
// steps under held inputs: the current injected power vector and ambient
// are frozen into the drive b̃, and the jump applies one fused matrix pair
// per set bit of the tick count — O(log ticks) dense applications instead
// of ticks of them. states must hold one value per tap (the sensor lag
// states) and is updated in place alongside the network temperatures.
//
// The result matches applying the one-tick propagator (and the tap
// recurrences) ticks times with the same held inputs, up to floating-point
// summation order; it is NOT the tick-by-tick simulation when inputs
// genuinely vary inside the gap — callers own the segmentation.
func (l *Ladder) Advance(net *Network, states []float64, ticks int, sc *LadderScratch) {
	if ticks <= 0 {
		return
	}
	ln, dim := l.n, l.n+len(l.taps)
	sc.ensure(dim)
	l.freeze(net, sc.b)
	z, out := sc.z, sc.out
	copy(z[:ln], net.temps)
	copy(z[ln:], states)
	maxChunk := l.MaxChunk()
	for ticks > 0 {
		chunk := ticks
		if chunk > maxChunk {
			chunk = maxChunk
		}
		ticks -= chunk
		for k := 0; chunk != 0; k, chunk = k+1, chunk>>1 {
			if chunk&1 == 0 {
				continue
			}
			lv := &l.lv[k]
			applyPair(lv.a, lv.j, z, sc.b, out, dim)
			z, out = out, z
		}
	}
	copy(net.temps, z[:ln])
	copy(states, z[ln:])
	sc.z, sc.out = z, out
}

// freeze assembles the held drive vector b̃ for the network's current
// injected power and ambient: b = W·p + ambient·vAmb + vFixed on the
// thermal rows, scaled by alpha on the tap rows.
func (l *Ladder) freeze(net *Network, b []float64) {
	ln := l.n
	pw := net.power
	for i := 0; i < ln; i++ {
		row := l.w[i*ln : (i+1)*ln]
		v := pw[:len(row)]
		acc := net.ambient*l.vAmb[i] + l.vFixed[i]
		var s1 float64
		j := 0
		for ; j+1 < len(row); j += 2 {
			acc += row[j] * v[j]
			s1 += row[j+1] * v[j+1]
		}
		for ; j < len(row); j++ {
			acc += row[j] * v[j]
		}
		b[i] = acc + s1
	}
	for i, tp := range l.taps {
		b[ln+i] = tp.Alpha * b[tp.Node]
	}
}

// applyPair computes out = a·z + j·b for one dim-row propagator pair.
func applyPair(a, j, z, b, out []float64, dim int) {
	for r := 0; r < dim; r++ {
		arow := a[r*dim : (r+1)*dim]
		jrow := j[r*dim : (r+1)*dim]
		var az, jb float64
		for c := 0; c < dim; c++ {
			az += arow[c] * z[c]
			jb += jrow[c] * b[c]
		}
		out[r] = az + jb
	}
}

// compositePair is the fused k-tick jump with the drive assembly folded
// in. Writing the held drive as b̃ = S·(W·p + ambient·vAmb + vFixed)
// (S maps the thermal drive onto the tap-augmented rows), the jump
// z(t+k·dt) = a·z(t) + j·b̃ precomposes into
//
//	out[r] = Σ ( [aT | j·S·W]·[T; p] )[r] + ambient·vAmb[r] + vFix[r]
//	       (+ diag[r-n]·state[r-n] on tap rows)
//
// exploiting the exact block structure of the tap-augmented propagator:
// temperature rows never read tap states, and a tap row's only tap-state
// coefficient is its own decayed diagonal. Packing only the structurally
// nonzero columns makes the hot path one 2n-wide dot product per row
// against the stacked temperature and power vector — no per-segment
// freeze, no multiplies against known zeros.
type compositePair struct {
	m    []float64 // dim×(2n) row-major [a·(thermal cols) | j·S·W]
	diag []float64 // per tap row, its composed self-coefficient Π(1-α)
	vAmb []float64 // j·S·vAmb, length dim
	vFix []float64 // j·S·vFixed, length dim
}

// composite returns the fused k-tick propagator, building and memoizing
// it on first use. Ladders are shared across runs and goroutines, so the
// memo slots are atomic pointers: the hit path (everything after
// warm-up) is a single atomic load; builds serialize on compMu and
// publish exactly one pair per k. k must be in (0, l.MaxChunk()].
func (l *Ladder) composite(k int) *compositePair {
	if p := l.comp[k].Load(); p != nil {
		return p
	}
	l.compMu.Lock()
	defer l.compMu.Unlock()
	if p := l.comp[k].Load(); p != nil {
		return p
	}
	dim := l.n + len(l.taps)
	var a, j []float64
	for lvl, rest := 0, k; rest != 0; lvl, rest = lvl+1, rest>>1 {
		if rest&1 == 0 {
			continue
		}
		lv := &l.lv[lvl]
		if a == nil {
			a = append([]float64(nil), lv.a...)
			j = append([]float64(nil), lv.j...)
			continue
		}
		// Compose the next set bit on top: z' = a_b·(a·z + j·b) + j_b·b,
		// the same LSB-first order Advance applies the levels in.
		a = matMulAdd(lv.a, a, nil, dim)
		j = matMulAdd(lv.a, j, lv.j, dim)
	}
	// Fold the drive assembly in: jS = j·S collapses the tap rows of b̃
	// (alpha-scaled copies of thermal rows) back onto the thermal drive,
	// then the input map W and the ambient/fixed vectors precompose.
	ln := l.n
	jS := make([]float64, dim*ln)
	for r := 0; r < dim; r++ {
		copy(jS[r*ln:(r+1)*ln], j[r*dim:r*dim+ln])
		for i, tp := range l.taps {
			jS[r*ln+int(tp.Node)] += j[r*dim+ln+i] * tp.Alpha
		}
	}
	wide := 2 * ln
	p := &compositePair{
		m:    make([]float64, dim*wide),
		diag: make([]float64, len(l.taps)),
		vAmb: make([]float64, dim),
		vFix: make([]float64, dim),
	}
	for i := range l.taps {
		p.diag[i] = a[(ln+i)*dim+ln+i]
	}
	for r := 0; r < dim; r++ {
		copy(p.m[r*wide:], a[r*dim:r*dim+ln])
		mrow := p.m[r*wide+ln : (r+1)*wide]
		var sa, sf float64
		for c := 0; c < ln; c++ {
			jv := jS[r*ln+c]
			sa += jv * l.vAmb[c]
			sf += jv * l.vFixed[c]
			wrow := l.w[c*ln : (c+1)*ln]
			for q, wv := range wrow {
				mrow[q] += jv * wv
			}
		}
		p.vAmb[r] = sa
		p.vFix[r] = sf
	}
	l.comp[k].Store(p)
	return p
}

// compositeCount reports how many fused propagators the ladder has
// memoized (tests pin the one-entry-per-k behaviour through it).
func (l *Ladder) compositeCount() int {
	n := 0
	for i := range l.comp {
		if l.comp[i].Load() != nil {
			n++
		}
	}
	return n
}

// AdvanceComposite is Advance with memoized fused k-tick propagators:
// one dense matrix application per jump instead of one per set bit of
// the tick count. Results match Advance up to floating-point summation
// order (the composite is built by multiplying the same ladder levels
// Advance applies one by one). Jumps longer than MaxChunk fall back to
// Advance's chunked path.
func (l *Ladder) AdvanceComposite(net *Network, states []float64, ticks int, sc *LadderScratch) {
	if ticks <= 0 {
		return
	}
	if ticks > l.MaxChunk() {
		l.Advance(net, states, ticks, sc)
		return
	}
	ln, dim := l.n, l.n+len(l.taps)
	sc.ensure(dim)
	zb, out := sc.zb, sc.out
	copy(zb[:ln], net.temps)
	copy(zb[ln:2*ln], net.power)
	p := l.composite(ticks)
	wide := 2 * ln
	amb := net.ambient
	m, vA, vF, diag := p.m, p.vAmb, p.vFix, p.diag
	if len(out) < dim || len(vA) < dim || len(vF) < dim || len(m) < dim*wide ||
		len(diag) < dim-ln || len(states) < dim-ln {
		panic("thermal: composite shape mismatch")
	}
	if ln == 8 && dim == 12 {
		// Phone-scale kernel: fixed-size array views let the compiler drop
		// every per-element bounds check and slice-header construction in
		// the hot loop (this call dominates event-driven fleet sweeps).
		vz := (*[16]float64)(zb[:16])
		o := (*[12]float64)(out[:12])
		a := (*[12]float64)(vA[:12])
		f := (*[12]float64)(vF[:12])
		for r := 0; r < 12; r++ {
			row := (*[16]float64)(m[r*16 : r*16+16])
			var s0, s1, s2, s3 float64
			for c := 0; c < 16; c += 4 {
				s0 += row[c] * vz[c]
				s1 += row[c+1] * vz[c+1]
				s2 += row[c+2] * vz[c+2]
				s3 += row[c+3] * vz[c+3]
			}
			o[r] = (s0 + s1) + (s2 + s3) + amb*a[r] + f[r]
		}
		for i := 0; i < 4; i++ {
			states[i] = o[8+i] + diag[i]*states[i]
		}
		copy(net.temps, out[:8])
		return
	}
	for r := 0; r < dim; r++ {
		row := m[r*wide : (r+1)*wide]
		v := zb[:len(row)]
		// Four accumulators break the FMA dependency chain; the fixed-size
		// sub-slices let the compiler drop bounds checks, and the split
		// summation is within the documented float-order tolerance.
		var s0, s1, s2, s3 float64
		c := 0
		for ; c+4 <= len(row); c += 4 {
			r4 := row[c : c+4 : c+4]
			v4 := v[c : c+4 : c+4]
			s0 += r4[0] * v4[0]
			s1 += r4[1] * v4[1]
			s2 += r4[2] * v4[2]
			s3 += r4[3] * v4[3]
		}
		for ; c < len(row); c++ {
			s0 += row[c] * v[c]
		}
		out[r] = (s0 + s1) + (s2 + s3) + amb*vA[r] + vF[r]
	}
	for i := 0; i < dim-ln; i++ {
		states[i] = out[ln+i] + diag[i]*states[i]
	}
	copy(net.temps, out[:ln])
}

// LadderCacheStats reports the shared ladder cache's size and
// hit/miss counters (tests pin LRU behaviour through it).
func LadderCacheStats() (size int, hits, misses uint64) {
	h, m := sharedLadders.stats()
	return sharedLadders.len(), h, m
}
