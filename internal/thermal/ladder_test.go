package thermal

import (
	"math"
	"testing"
)

// ladderPhone builds a fresh phone network with a representative power
// injection so jumps have something to integrate.
func ladderPhone(t *testing.T) (*Network, PhoneNodes) {
	t.Helper()
	net, nodes := NewPhone(DefaultPhoneConfig())
	net.SetPower(nodes.Die, 2.1)
	net.SetPower(nodes.Pkg, 0.4)
	net.SetPower(nodes.Battery, 0.15)
	net.SetPower(nodes.Screen, 0.45)
	return net, nodes
}

func ladderTaps(nodes PhoneNodes, dt float64) []Tap {
	// Alphas in the range the device's sensor lag filters use
	// (1 - exp(-dt/tau) for tau of 1-2 s at dt = 0.05).
	a := func(tau float64) float64 { return 1 - math.Exp(-dt/tau) }
	return []Tap{
		{Node: nodes.Die, Alpha: a(2.0)},
		{Node: nodes.Battery, Alpha: a(2.0)},
		{Node: nodes.CoverMid, Alpha: a(1.0)},
		{Node: nodes.Screen, Alpha: a(1.0)},
	}
}

// TestLadderJumpMatchesSequential pins the jump arithmetic: one Advance of
// N ticks must match N sequential one-tick advances (propagator steps plus
// the tap recurrence) to tight float tolerance, for a spread of tick
// counts crossing every ladder level and the chunking path.
func TestLadderJumpMatchesSequential(t *testing.T) {
	const dt = 0.05
	for _, ticks := range []int{1, 2, 3, 7, 19, 20, 64, 255, 256, 1000} {
		jumpNet, nodes := ladderPhone(t)
		seqNet, _ := ladderPhone(t)
		taps := ladderTaps(nodes, dt)
		l := jumpNet.LadderFor(dt, taps)
		if l == nil {
			t.Fatal("LadderFor returned nil on the default phone")
		}

		jumpStates := []float64{30, 29, 28, 27}
		seqStates := append([]float64(nil), jumpStates...)
		var sc LadderScratch
		l.Advance(jumpNet, jumpStates, ticks, &sc)

		for k := 0; k < ticks; k++ {
			seqNet.Step(dt)
			for i, tp := range taps {
				seqStates[i] += tp.Alpha * (seqNet.Temp(tp.Node) - seqStates[i])
			}
		}

		const tol = 1e-9
		for i := 0; i < jumpNet.NumNodes(); i++ {
			if d := math.Abs(jumpNet.Temp(NodeID(i)) - seqNet.Temp(NodeID(i))); d > tol {
				t.Fatalf("ticks=%d node %d: jump %.15g vs seq %.15g (|d|=%g)",
					ticks, i, jumpNet.Temp(NodeID(i)), seqNet.Temp(NodeID(i)), d)
			}
		}
		for i := range jumpStates {
			if d := math.Abs(jumpStates[i] - seqStates[i]); d > tol {
				t.Fatalf("ticks=%d tap %d: jump %.15g vs seq %.15g (|d|=%g)",
					ticks, i, jumpStates[i], seqStates[i], d)
			}
		}
	}
}

// TestLadderHeldAmbientAndPower pins that Advance freezes the drive at
// call time: two jumps with different held powers/ambients from the same
// state must differ, and match their own sequential replays.
func TestLadderHeldAmbientAndPower(t *testing.T) {
	const dt, ticks = 0.05, 37
	run := func(power, ambient float64) float64 {
		net, nodes := ladderPhone(t)
		net.SetAmbient(ambient)
		net.SetPower(nodes.Die, power)
		l := net.LadderFor(dt, nil)
		if l == nil {
			t.Fatal("nil ladder")
		}
		var sc LadderScratch
		l.Advance(net, nil, ticks, &sc)
		return net.Temp(nodes.Die)
	}
	hot := run(3.0, 25)
	cold := run(0.3, 25)
	colder := run(0.3, 10)
	if !(hot > cold && cold > colder) {
		t.Fatalf("held drive ordering violated: hot=%v cold=%v colder=%v", hot, cold, colder)
	}
}

// TestLadderCacheOnePerFingerprint pins the cache contract: repeated
// LadderFor calls for one configuration hit a single cached ladder, and a
// touch flip (new fingerprint) builds exactly one more — the two
// fingerprints an event-driven run alternates between.
func TestLadderCacheOnePerFingerprint(t *testing.T) {
	const dt = 0.05
	cfg := DefaultPhoneConfig()
	cfg.CapDie *= 1.000000123 // unique fingerprint: this test owns its cache entries
	net, nodes := NewPhone(cfg)
	taps := ladderTaps(nodes, dt)

	_, missesBefore := sharedLadders.stats()
	l1 := net.LadderFor(dt, taps)
	if l1 == nil {
		t.Fatal("nil ladder")
	}
	for i := 0; i < 5; i++ {
		if got := net.LadderFor(dt, taps); got != l1 {
			t.Fatal("repeat LadderFor did not return the cached ladder")
		}
	}
	ApplyTouch(net, nodes, cfg, true)
	lTouch := net.LadderFor(dt, taps)
	if lTouch == nil || lTouch == l1 {
		t.Fatalf("touch flip should build a distinct ladder (got %p vs %p)", lTouch, l1)
	}
	if lTouch.Sig() == l1.Sig() {
		t.Fatal("touch flip did not change the fingerprint")
	}
	ApplyTouch(net, nodes, cfg, false)
	if got := net.LadderFor(dt, taps); got != l1 {
		t.Fatal("untouch did not return to the original cached ladder")
	}
	_, missesAfter := sharedLadders.stats()
	if builds := missesAfter - missesBefore; builds != 2 {
		t.Fatalf("expected exactly 2 ladder builds (touch on/off), got %d", builds)
	}

	// A second network with the identical configuration shares the entry.
	net2, _ := NewPhone(cfg)
	if got := net2.LadderFor(dt, taps); got != l1 {
		t.Fatal("identical configuration on a fresh network missed the shared cache")
	}
}

// TestLadderCacheBounded pins LRU eviction: sweeping more distinct dts
// than the cap never grows the cache beyond it.
func TestLadderCacheBounded(t *testing.T) {
	net, nodes := NewPhone(DefaultPhoneConfig())
	taps := ladderTaps(nodes, 0.05)
	for i := 0; i < maxSharedLadders+40; i++ {
		dt := 0.01 + float64(i)*1e-5
		if net.LadderFor(dt, taps) == nil {
			t.Fatalf("nil ladder at dt=%v", dt)
		}
	}
	if n := sharedLadders.len(); n > maxSharedLadders {
		t.Fatalf("ladder cache grew to %d entries (cap %d)", n, maxSharedLadders)
	}
}

// TestLadderCompositeMatchesAdvance pins the fused-propagator fast path:
// AdvanceComposite must land on the same state as the per-set-bit Advance
// to tight float tolerance for every segment length the event engine
// produces (and the chunked fallback beyond MaxChunk), memoizing exactly
// one composite per (ladder, tick count) along the way.
func TestLadderCompositeMatchesAdvance(t *testing.T) {
	const dt = 0.05
	cfg := DefaultPhoneConfig()
	cfg.CapDie *= 1.000000456 // unique fingerprint: this test owns its ladder's memo
	mkNet := func() (*Network, PhoneNodes) {
		net, nodes := NewPhone(cfg)
		net.SetPower(nodes.Die, 2.1)
		net.SetPower(nodes.Pkg, 0.4)
		net.SetPower(nodes.Battery, 0.15)
		net.SetPower(nodes.Screen, 0.45)
		return net, nodes
	}
	var lad *Ladder
	lengths := []int{1, 2, 3, 7, 19, 20, 64, 255}
	for _, ticks := range lengths {
		compNet, nodes := mkNet()
		bitNet, _ := mkNet()
		taps := ladderTaps(nodes, dt)
		l := compNet.LadderFor(dt, taps)
		if l == nil {
			t.Fatal("nil ladder")
		}
		if lad == nil {
			lad = l
		} else if l != lad {
			t.Fatal("identical configurations produced distinct ladders")
		}
		compStates := []float64{30, 29, 28, 27}
		bitStates := append([]float64(nil), compStates...)
		var sc1, sc2 LadderScratch
		l.AdvanceComposite(compNet, compStates, ticks, &sc1)
		l.Advance(bitNet, bitStates, ticks, &sc2)

		const tol = 1e-9
		for i := 0; i < compNet.NumNodes(); i++ {
			if d := math.Abs(compNet.Temp(NodeID(i)) - bitNet.Temp(NodeID(i))); d > tol {
				t.Fatalf("ticks=%d node %d: composite %.15g vs advance %.15g (|d|=%g)",
					ticks, i, compNet.Temp(NodeID(i)), bitNet.Temp(NodeID(i)), d)
			}
		}
		for i := range compStates {
			if d := math.Abs(compStates[i] - bitStates[i]); d > tol {
				t.Fatalf("ticks=%d tap %d: composite %.15g vs advance %.15g (|d|=%g)",
					ticks, i, compStates[i], bitStates[i], d)
			}
		}
	}
	if got := lad.compositeCount(); got != len(lengths) {
		t.Fatalf("memo holds %d composites, want one per length = %d", got, len(lengths))
	}

	// Repeats of an already-seen length must not grow the memo, and a
	// jump past MaxChunk must take the chunked fallback without caching.
	net, _ := mkNet()
	states := []float64{30, 29, 28, 27}
	var sc LadderScratch
	lad.AdvanceComposite(net, states, 19, &sc)
	lad.AdvanceComposite(net, states, lad.MaxChunk()+1, &sc)
	if got := lad.compositeCount(); got != len(lengths) {
		t.Fatalf("memo grew to %d on repeat/overlong jumps, want %d", got, len(lengths))
	}
}

// TestLadderRK4Fallback pins the degradation contract: a network forced
// onto RK4 (the non-cacheable configuration) reports no ladder, so event
// callers fall back to tick stepping.
func TestLadderRK4Fallback(t *testing.T) {
	net, nodes := ladderPhone(t)
	net.UseRK4(true)
	if l := net.LadderFor(0.05, ladderTaps(nodes, 0.05)); l != nil {
		t.Fatal("RK4-forced network still produced a ladder")
	}
	net.UseRK4(false)
	if l := net.LadderFor(0.05, ladderTaps(nodes, 0.05)); l == nil {
		t.Fatal("ladder unavailable after releasing RK4")
	}
}
