package thermal

// This file is the cohort-batched lockstep engine: many same-shape
// networks advanced tick by tick with one fused mat-mat per propagator
// group instead of one mat-vec per network. The fleet's BatchRunner builds
// a Lockstep over the thermal networks of a cohort of phones, drives the
// per-phone (workload, governor, sensor) work itself, and calls Step once
// per tick. Trajectories are bit-identical to stepping each network alone:
// the batch kernel (mat.MulBatch) replays the single-column accumulation
// order exactly, and networks that cannot use a propagator this tick — a
// degenerate configuration or a forced-RK4 network — fall back to their
// ordinary integrator on their own borrowed column.

import "fmt"

// StateBlock is shared column-major storage for the mutable state of many
// equally-sized networks: three n×cols planes (temperatures, injected
// powers, integrator scratch) with column c of each plane occupying
// [c*n, (c+1)*n). Networks borrow their columns via Network.Gather, which
// keeps a cohort's state contiguous for the batched advance.
type StateBlock struct {
	n     int
	cols  int
	temps []float64
	power []float64
	tmp   []float64
}

// NewStateBlock allocates a block for cols networks of n nodes each.
func NewStateBlock(n, cols int) *StateBlock {
	if n <= 0 || cols <= 0 {
		panic(fmt.Sprintf("thermal: invalid state block %d×%d", n, cols))
	}
	// One backing allocation, planes sliced out of it: the advance streams
	// temps, power and tmp together, so keeping them in one arena keeps a
	// cohort's whole working set in adjacent cache lines.
	data := make([]float64, 3*n*cols)
	return &StateBlock{
		n:     n,
		cols:  cols,
		temps: data[: n*cols : n*cols],
		power: data[n*cols : 2*n*cols : 2*n*cols],
		tmp:   data[2*n*cols:],
	}
}

// column returns the three ln-length column views for column col.
func (b *StateBlock) column(col, ln int) (temps, power, tmp []float64) {
	if col < 0 || col >= b.cols {
		panic(fmt.Sprintf("thermal: state block column %d out of %d", col, b.cols))
	}
	off := col * b.n
	return b.temps[off : off+ln : off+ln],
		b.power[off : off+ln : off+ln],
		b.tmp[off : off+ln : off+ln]
}

// advGroup is one tick's set of columns sharing a live propagator.
type advGroup struct {
	p   *propagator
	idx []int // indices into Lockstep.nets
}

// Lockstep advances a set of equally-sized networks in lockstep, one tick
// at a time. Construction gathers every network into a shared StateBlock;
// each Step regroups the networks by their live propagator — networks
// whose configuration changed mid-run (a touch flip) simply land in a
// different sub-cohort that tick — and advances every group with one
// batched kernel call. Close scatters the state back so the networks own
// their storage again (fleet phone pooling depends on that).
//
// While a network is enrolled, advance it only through Step — never by
// calling Network.Step directly. Step maintains a double-buffering
// invariant across the whole cohort (every network's live temperatures sit
// in the same plane of the block, alternating each tick), which is what
// lets it reuse prebuilt column views instead of regathering slices every
// tick; a direct Step would swap one network's buffers out of phase.
type Lockstep struct {
	nets []*Network
	blk  *StateBlock

	// colA/colB are prebuilt column views of the two state planes, pow of
	// the power plane. parity selects the live plane: false means colA
	// holds the current temperatures and colB receives the advance.
	colA, colB, pow [][]float64
	parity          bool

	// Per-tick scratch, reused to keep Step allocation-free after the
	// first tick.
	amb    []float64
	props  []*propagator
	rk4    []int
	groups []advGroup
}

// NewLockstep enrolls the networks into a fresh shared StateBlock. All
// networks must have the same, nonzero node count.
func NewLockstep(nets []*Network) (*Lockstep, error) {
	n, err := lockstepShape(nets)
	if err != nil {
		return nil, err
	}
	ls := &Lockstep{blk: NewStateBlock(n, len(nets))}
	ls.enroll(nets)
	return ls, nil
}

// lockstepShape validates a cohort and returns its common node count.
func lockstepShape(nets []*Network) (int, error) {
	if len(nets) == 0 {
		return 0, fmt.Errorf("thermal: lockstep over zero networks")
	}
	n := len(nets[0].temps)
	if n == 0 {
		return 0, ErrEmpty
	}
	for i, net := range nets {
		if len(net.temps) != n {
			return 0, fmt.Errorf("thermal: lockstep network %d has %d nodes, want %d", i, len(net.temps), n)
		}
	}
	return n, nil
}

// Reset re-enrolls the lockstep over a fresh cohort after Close, reusing
// the shared StateBlock arena and every per-tick scratch slice — the
// wave-over-wave recycling the fleet's batched runner leans on. It fails
// without touching the receiver when the cohort's node count differs
// from the block's or exceeds its column capacity; the caller then
// constructs a new Lockstep.
func (ls *Lockstep) Reset(nets []*Network) error {
	n, err := lockstepShape(nets)
	if err != nil {
		return err
	}
	if ls.blk == nil || ls.blk.n != n || len(nets) > ls.blk.cols {
		blkN, blkCols := 0, 0
		if ls.blk != nil {
			blkN, blkCols = ls.blk.n, ls.blk.cols
		}
		return fmt.Errorf("thermal: lockstep reset: cohort %d×%d does not fit block %d×%d",
			n, len(nets), blkN, blkCols)
	}
	ls.enroll(nets)
	return nil
}

// enroll points the lockstep at a cohort: gather every network into its
// column and (re)build the column views and per-tick scratch, reusing
// whatever capacity an earlier enrollment left behind.
func (ls *Lockstep) enroll(nets []*Network) {
	ls.nets = nets
	ls.parity = false
	ls.colA = growCols(ls.colA, len(nets))
	ls.colB = growCols(ls.colB, len(nets))
	ls.pow = growCols(ls.pow, len(nets))
	if cap(ls.amb) < len(nets) {
		ls.amb = make([]float64, len(nets))
	}
	ls.amb = ls.amb[:len(nets)]
	if cap(ls.props) < len(nets) {
		ls.props = make([]*propagator, len(nets))
	}
	ls.props = ls.props[:len(nets)]
	ls.rk4 = ls.rk4[:0]
	// Drop the previous cohort's groups outright: their propagators (and
	// index scratch) belong to networks no longer enrolled.
	for i := range ls.groups {
		ls.groups[i] = advGroup{}
	}
	ls.groups = ls.groups[:0]
	for c, net := range nets {
		net.Gather(ls.blk, c)
		// Gather points the network at (temps, power, tmp) column views;
		// mirror them here so ticks never rebuild slice headers.
		ls.colA[c], ls.pow[c], ls.colB[c] = net.temps, net.power, net.tmp
	}
}

func growCols(s [][]float64, n int) [][]float64 {
	if cap(s) < n {
		return make([][]float64, n)
	}
	return s[:n]
}

// Networks returns the enrolled networks in column order.
func (ls *Lockstep) Networks() []*Network { return ls.nets }

// Step advances every enrolled network by dt seconds, exactly as if each
// had called Network.Step(dt) itself: per-network propagator resolution
// (honoring dirty configurations, the per-network MRU and the shared LRU),
// then one fused batched advance per distinct propagator, with RK4
// fallback for networks that cannot use one this tick. The common case —
// every network on the same propagator — is a single kernel call over the
// whole block with no per-tick bookkeeping beyond the ambient refresh.
func (ls *Lockstep) Step(dt float64) {
	if dt <= 0 {
		return
	}
	x, out := ls.colA, ls.colB
	if ls.parity {
		x, out = ls.colB, ls.colA
	}
	ls.rk4 = ls.rk4[:0]
	split := false
	var first *propagator
	for c, n := range ls.nets {
		ls.amb[c] = n.ambient
		var p *propagator
		if !n.forceRK4 {
			if n.dirty {
				n.refresh()
			}
			p = n.propagatorFor(dt)
		}
		ls.props[c] = p
		if p == nil {
			ls.rk4 = append(ls.rk4, c)
			split = true
		} else if first == nil {
			first = p
		} else if p != first {
			split = true
		}
	}
	switch {
	case !split && first != nil:
		first.advanceBatch(ls.blk.n, ls.amb, x, ls.pow, out, nil)
	case first != nil:
		ls.advanceGroups(x, out)
	}
	for _, c := range ls.rk4 {
		// The fallback integrates in place in the live column; copying the
		// result across restores the cohort-wide plane invariant before the
		// swap below.
		ls.nets[c].StepRK4(dt)
		copy(out[c], x[c])
	}
	for _, n := range ls.nets {
		n.temps, n.tmp = n.tmp, n.temps
	}
	ls.parity = !ls.parity
}

// advanceGroups handles a tick whose networks resolved to more than one
// propagator (mid-run configuration flips): one batched kernel call per
// distinct propagator over that sub-cohort's column indices.
func (ls *Lockstep) advanceGroups(x, out [][]float64) {
	for i := range ls.groups {
		ls.groups[i].idx = ls.groups[i].idx[:0]
	}
	for c, p := range ls.props {
		if p == nil {
			continue
		}
		placed := false
		for i := range ls.groups {
			if ls.groups[i].p == p {
				ls.groups[i].idx = append(ls.groups[i].idx, c)
				placed = true
				break
			}
		}
		if !placed {
			ls.groups = append(ls.groups, advGroup{p: p, idx: append(make([]int, 0, len(ls.nets)), c)})
		}
	}
	for i := range ls.groups {
		g := &ls.groups[i]
		if len(g.idx) == 0 {
			continue
		}
		g.p.advanceBatch(ls.blk.n, ls.amb, x, ls.pow, out, g.idx)
	}
	// Propagators come and go with configuration flips; drop groups that
	// went quiet so a long-running sweep cannot accumulate stale entries.
	if len(ls.groups) > 2*maxCachedPropagators {
		live := ls.groups[:0]
		for _, g := range ls.groups {
			if len(g.idx) > 0 {
				live = append(live, g)
			}
		}
		ls.groups = live
	}
}

// Close scatters every network's state back into its own storage and
// releases the block. The Lockstep must not be stepped afterwards.
func (ls *Lockstep) Close() {
	for _, n := range ls.nets {
		n.Scatter()
	}
}
